test/suite_energy.ml: Alcotest List Noc_energy Noc_graph Noc_util QCheck QCheck_alcotest
