test/suite_sim.ml: Alcotest Bytes List Noc_aes Noc_core Noc_energy Noc_graph Noc_primitives Noc_sim Noc_util Option Printf QCheck QCheck_alcotest
