test/suite_util.ml: Alcotest Array List Noc_util QCheck QCheck_alcotest String
