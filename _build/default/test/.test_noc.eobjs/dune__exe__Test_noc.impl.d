test/test_noc.ml: Alcotest Suite_aes Suite_apps Suite_core Suite_energy Suite_graph Suite_primitives Suite_sim Suite_tgff Suite_util
