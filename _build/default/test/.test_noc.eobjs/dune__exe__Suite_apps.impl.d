test/suite_apps.ml: Alcotest Array Complex Float List Noc_apps Noc_core Noc_energy Noc_graph Noc_primitives Noc_util Printf QCheck QCheck_alcotest
