test/suite_core.ml: Alcotest Array Filename Float Format Fun List Noc_aes Noc_core Noc_energy Noc_graph Noc_primitives Noc_tgff Noc_util Option QCheck QCheck_alcotest String Sys
