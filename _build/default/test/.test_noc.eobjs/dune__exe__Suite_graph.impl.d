test/suite_graph.ml: Alcotest Array Filename Fun Int List Noc_graph Noc_util Option Printf QCheck QCheck_alcotest String Sys Unix
