test/suite_primitives.ml: Alcotest Format List Noc_graph Noc_primitives Printf QCheck QCheck_alcotest String
