test/suite_aes.ml: Alcotest Array Bytes List Noc_aes Noc_core Noc_energy Noc_graph Noc_primitives Noc_sim QCheck QCheck_alcotest
