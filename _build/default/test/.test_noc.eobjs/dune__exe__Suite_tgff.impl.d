test/suite_tgff.ml: Alcotest List Noc_graph Noc_tgff Noc_util Printf QCheck QCheck_alcotest
