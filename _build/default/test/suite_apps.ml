(* Tests for the application workloads: distributed FFT (bit-exact against
   the sequential reference) and the multimedia benchmark ACGs. *)

module Fft = Noc_apps.Fft
module Mm = Noc_apps.Multimedia
module Acg = Noc_core.Acg
module Syn = Noc_core.Synthesis
module Bb = Noc_core.Branch_bound
module Prng = Noc_util.Prng

let close a b = Complex.norm (Complex.sub a b) < 1e-9

let arrays_close x y =
  Array.length x = Array.length y
  && Array.for_all2 (fun a b -> close a b) x y

let random_signal ~seed n =
  let rng = Prng.create ~seed in
  Array.init n (fun _ ->
      { Complex.re = Prng.float rng 2.0 -. 1.0; im = Prng.float rng 2.0 -. 1.0 })

(* -------------------------------------------------------------------- *)
(* Sequential FFT                                                        *)

let test_fft_impulse () =
  (* the DFT of a unit impulse is all ones *)
  let x = Array.make 16 Complex.zero in
  x.(0) <- Complex.one;
  let y = Fft.fft x in
  Array.iter (fun c -> Alcotest.(check bool) "flat spectrum" true (close c Complex.one)) y

let test_fft_constant () =
  (* the DFT of a constant is an impulse of height n at bin 0 *)
  let x = Array.make 8 Complex.one in
  let y = Fft.fft x in
  Alcotest.(check bool) "dc bin" true (close y.(0) { Complex.re = 8.0; im = 0.0 });
  for k = 1 to 7 do
    Alcotest.(check bool) "zero elsewhere" true (close y.(k) Complex.zero)
  done

let test_fft_matches_dft () =
  List.iter
    (fun n ->
      let x = random_signal ~seed:(100 + n) n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d" n)
        true
        (arrays_close (Fft.fft x) (Fft.dft x)))
    [ 2; 4; 8; 16; 32 ]

let test_fft_rejects_non_pow2 () =
  Alcotest.check_raises "n=6" (Invalid_argument "Fft.fft: length must be a power of two")
    (fun () -> ignore (Fft.fft (Array.make 6 Complex.zero)))

(* -------------------------------------------------------------------- *)
(* Distributed FFT                                                       *)

let fft_arches () =
  let acg = Fft.acg () in
  let d, _ = Bb.decompose ~library:(Noc_primitives.Library.default ()) acg in
  (acg, Syn.custom acg d, Syn.mesh ~rows:4 ~cols:4 acg)

let test_fft_acg_structure () =
  let acg = Fft.acg () in
  Alcotest.(check int) "16 cores" 16 (Acg.num_cores acg);
  (* 4 stages x 16 directed messages *)
  Alcotest.(check int) "64 flows" 64 (Acg.num_flows acg);
  (* hypercube pattern: every node talks to exactly 4 partners each way *)
  List.iter
    (fun v ->
      Alcotest.(check int) "out degree 4" 4
        (Noc_graph.Digraph.out_degree (Acg.graph acg) v))
    (Noc_graph.Digraph.vertex_list (Acg.graph acg));
  Alcotest.(check int) "complex volume" 128 (Acg.volume acg 1 9)

let test_distributed_fft_exact () =
  let _, custom, mesh = fft_arches () in
  let x = random_signal ~seed:7 16 in
  let expect = Fft.fft x in
  List.iter
    (fun (name, arch) ->
      let r = Fft.distributed ~arch x in
      Alcotest.(check bool) (name ^ " matches sequential fft") true
        (arrays_close r.Fft.output expect);
      Alcotest.(check bool) (name ^ " cycles positive") true (r.Fft.cycles > 0))
    [ ("custom", custom); ("mesh", mesh) ]

(* Under the wiring cost the greedy pass may interpret a node's four
   stage-partners as a broadcast primitive (link-neutral) whose tree
   routing lengthens individual stage messages; the energy cost rejects
   multi-hop matchings whose flows are temporally unrelated, and the
   resulting all-ring cover gives every FFT flow a direct link. *)
let energy_fft_custom () =
  let acg = Fft.acg () in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  let options = { (Bb.energy_options ~tech ~fp) with constraints = None } in
  let d, _ = Bb.decompose ~options ~library:(Noc_primitives.Library.default ()) acg in
  (acg, Syn.custom acg d)

let test_fft_energy_cover_is_direct () =
  let acg, custom = energy_fft_custom () in
  Alcotest.(check int) "hypercube links" 32 (Syn.link_count custom);
  Alcotest.(check int) "all flows direct" 1 (Syn.max_hops custom);
  Alcotest.(check (float 1e-9)) "avg 1 hop" 1.0 (Syn.avg_hops acg custom)

let test_distributed_fft_custom_faster () =
  let _, custom = energy_fft_custom () in
  let acg = Fft.acg () in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  let x = random_signal ~seed:9 16 in
  let rc = Fft.distributed ~arch:custom x in
  let rm = Fft.distributed ~arch:mesh x in
  Alcotest.(check bool) "custom needs fewer cycles" true (rc.Fft.cycles < rm.Fft.cycles);
  (* ...while the wiring-cost cover (broadcast trees) lengthens stage
     messages; both still compute the exact transform *)
  let _, wiring_custom, _ = fft_arches () in
  let rw = Fft.distributed ~arch:wiring_custom x in
  Alcotest.(check bool) "wiring-cost cover is multi-hop" true
    (Syn.max_hops wiring_custom > 1);
  Alcotest.(check bool) "still exact" true (arrays_close rw.Fft.output (Fft.fft x))

let test_distributed_fft_bad_size () =
  let _, custom, _ = fft_arches () in
  Alcotest.check_raises "8 samples" (Invalid_argument "Fft.distributed: need 16 samples")
    (fun () -> ignore (Fft.distributed ~arch:custom (Array.make 8 Complex.zero)))

let qcheck_distributed_fft =
  QCheck.Test.make ~name:"distributed FFT matches the reference on random signals"
    ~count:10 QCheck.small_int
    (fun seed ->
      let _, custom, _ = fft_arches () in
      let x = random_signal ~seed:(seed + 500) 16 in
      let r = Fft.distributed ~arch:custom x in
      arrays_close r.Fft.output (Fft.fft x))

(* -------------------------------------------------------------------- *)
(* Multimedia ACGs                                                       *)

let test_vopd_structure () =
  let acg = Mm.vopd () in
  Alcotest.(check int) "12 cores" 12 (Acg.num_cores acg);
  Alcotest.(check int) "14 flows" 14 (Acg.num_flows acg);
  (* the heaviest pipeline stages carry 362 MB/s = 2.896 Gbit/s *)
  Alcotest.(check (float 1e-6)) "bandwidth conversion" 2.896 (Acg.bandwidth acg 2 3);
  Alcotest.(check int) "volume scaling" (362 * 8) (Acg.volume acg 2 3);
  Alcotest.(check string) "names" "stripe_mem" (Mm.name_of Mm.vopd_names 5);
  Alcotest.(check string) "fallback" "core99" (Mm.name_of Mm.vopd_names 99)

let test_mpeg4_structure () =
  let acg = Mm.mpeg4 () in
  Alcotest.(check int) "12 cores" 12 (Acg.num_cores acg);
  (* sdram is the hub: it touches most cores *)
  let g = Acg.graph acg in
  Alcotest.(check bool) "hub degree" true (Noc_graph.Digraph.degree g 4 >= 12);
  Alcotest.(check string) "hub name" "sdram" (Mm.name_of Mm.mpeg4_names 4)

let test_multimedia_synthesis () =
  List.iter
    (fun (name, acg) ->
      let d, stats = Bb.decompose ~library:(Noc_primitives.Library.default ()) acg in
      Alcotest.(check bool)
        (name ^ " valid")
        true
        (Noc_core.Decomposition.is_valid_for acg d);
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite stats.Bb.best_cost);
      let arch = Syn.custom acg d in
      Alcotest.(check bool) (name ^ " routes valid") true (Syn.routes_valid arch);
      Alcotest.(check bool)
        (name ^ " deadlock free")
        true
        (Noc_core.Deadlock.is_deadlock_free arch))
    [ ("vopd", Mm.vopd ()); ("mpeg4", Mm.mpeg4 ()) ]

let test_multimedia_custom_beats_mesh_hops () =
  (* pipeline+hub traffic on a mesh takes detours; the customized topology
     gives every flow a direct link or a short primitive route *)
  List.iter
    (fun (name, acg) ->
      let d, _ = Bb.decompose ~library:(Noc_primitives.Library.default ()) acg in
      let custom = Syn.custom acg d in
      let mesh = Syn.mesh ~rows:3 ~cols:4 acg in
      Alcotest.(check bool)
        (name ^ " fewer avg hops")
        true
        (Syn.avg_hops acg custom <= Syn.avg_hops acg mesh))
    [ ("vopd", Mm.vopd ()); ("mpeg4", Mm.mpeg4 ()) ]

let suite =
  ( "apps",
    [
      Alcotest.test_case "fft: impulse" `Quick test_fft_impulse;
      Alcotest.test_case "fft: constant" `Quick test_fft_constant;
      Alcotest.test_case "fft matches dft" `Quick test_fft_matches_dft;
      Alcotest.test_case "fft rejects non-power-of-2" `Quick test_fft_rejects_non_pow2;
      Alcotest.test_case "fft acg structure (hypercube)" `Quick test_fft_acg_structure;
      Alcotest.test_case "distributed fft bit-exact" `Quick test_distributed_fft_exact;
      Alcotest.test_case "fft energy cover is direct" `Quick test_fft_energy_cover_is_direct;
      Alcotest.test_case "distributed fft: custom faster (energy cover)" `Quick
        test_distributed_fft_custom_faster;
      Alcotest.test_case "distributed fft: bad size" `Quick test_distributed_fft_bad_size;
      QCheck_alcotest.to_alcotest qcheck_distributed_fft;
      Alcotest.test_case "vopd structure" `Quick test_vopd_structure;
      Alcotest.test_case "mpeg4 structure" `Quick test_mpeg4_structure;
      Alcotest.test_case "multimedia synthesis" `Quick test_multimedia_synthesis;
      Alcotest.test_case "multimedia: custom <= mesh hops" `Quick
        test_multimedia_custom_beats_mesh_hops;
    ] )
