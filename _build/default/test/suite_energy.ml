(* Tests for the energy substrate: technology tables, the Eq. 1 bit-energy
   model, and the floorplanner. *)

module Tech = Noc_energy.Technology
module Fp = Noc_energy.Floorplan
module Em = Noc_energy.Energy_model
module Edge_map = Noc_graph.Digraph.Edge_map
module Prng = Noc_util.Prng

let t180 = Tech.cmos_180nm

(* -------------------------------------------------------------------- *)
(* Technology                                                            *)

let test_presets () =
  Alcotest.(check int) "three presets" 3 (List.length Tech.presets);
  (match Tech.find "cmos-130nm" with
  | Some t -> Alcotest.(check int) "feature" 130 t.Tech.feature_nm
  | None -> Alcotest.fail "130nm preset exists");
  Alcotest.(check bool) "unknown" true (Tech.find "cmos-7nm" = None);
  (* scaling sanity: smaller nodes use less energy per bit *)
  Alcotest.(check bool) "es scales down" true
    (Tech.cmos_100nm.Tech.es_bit < Tech.cmos_130nm.Tech.es_bit
    && Tech.cmos_130nm.Tech.es_bit < t180.Tech.es_bit)

let test_link_energy () =
  (* below one repeater spacing: pure wire *)
  let e1 = Tech.link_energy_per_bit t180 ~length_mm:2.0 in
  Alcotest.(check (float 1e-9)) "2mm wire" (2.0 *. t180.Tech.el_bit_per_mm) e1;
  (* past the spacing: one repeater *)
  let e2 = Tech.link_energy_per_bit t180 ~length_mm:3.0 in
  Alcotest.(check (float 1e-9)) "3mm wire + repeater"
    ((3.0 *. t180.Tech.el_bit_per_mm) +. t180.Tech.e_repeater)
    e2;
  Alcotest.(check (float 1e-9)) "zero length" 0.0 (Tech.link_energy_per_bit t180 ~length_mm:0.0);
  Alcotest.check_raises "negative length"
    (Invalid_argument "Technology.link_energy_per_bit: negative length") (fun () ->
      ignore (Tech.link_energy_per_bit t180 ~length_mm:(-1.0)))

(* -------------------------------------------------------------------- *)
(* Floorplan                                                             *)

let grid16 () = Fp.grid (Fp.uniform_cores ~n:16 ~size_mm:2.0)

let test_grid_placement () =
  let fp = grid16 () in
  Alcotest.(check int) "16 cores" 16 (List.length (Fp.cores fp));
  (* row-major: core 1 at (1,1), core 2 at (3,1), core 5 at (1,3) *)
  let x1, y1 = Fp.position fp 1 in
  Alcotest.(check (float 1e-9)) "core1 x" 1.0 x1;
  Alcotest.(check (float 1e-9)) "core1 y" 1.0 y1;
  let x2, _ = Fp.position fp 2 in
  Alcotest.(check (float 1e-9)) "core2 x" 3.0 x2;
  let _, y5 = Fp.position fp 5 in
  Alcotest.(check (float 1e-9)) "core5 y" 3.0 y5;
  Alcotest.(check bool) "mem" true (Fp.mem fp 16);
  Alcotest.(check bool) "not mem" false (Fp.mem fp 17)

let test_distances () =
  let fp = grid16 () in
  (* horizontal neighbors: one pitch *)
  Alcotest.(check (float 1e-9)) "adjacent" 2.0 (Fp.distance_mm fp 1 2);
  (* diagonal: manhattan sum *)
  Alcotest.(check (float 1e-9)) "diagonal" 4.0 (Fp.distance_mm fp 1 6);
  Alcotest.(check (float 1e-9)) "self" 0.0 (Fp.distance_mm fp 3 3);
  Alcotest.(check (list (float 1e-9))) "path lengths" [ 2.0; 2.0 ]
    (Fp.path_length_mm fp [ 1; 2; 3 ])

let test_area () =
  let fp = grid16 () in
  let w, h = Fp.bounding_box_mm fp in
  Alcotest.(check (float 1e-9)) "width" 8.0 w;
  Alcotest.(check (float 1e-9)) "height" 8.0 h;
  Alcotest.(check (float 1e-9)) "area" 64.0 (Fp.area_mm2 fp)

let test_wirelength () =
  let fp = grid16 () in
  let weights = Edge_map.of_seq (List.to_seq [ ((1, 2), 1.0); ((1, 16), 2.0) ]) in
  (* d(1,2)=2, d(1,16)=12 *)
  Alcotest.(check (float 1e-9)) "weighted sum" (2.0 +. 24.0) (Fp.wirelength fp ~weights)

let test_anneal_improves () =
  (* heavy flows between cores placed far apart: annealing must reduce the
     weighted wirelength *)
  let fp = grid16 () in
  let weights =
    Edge_map.of_seq
      (List.to_seq [ ((1, 16), 10.0); ((4, 13), 10.0); ((2, 15), 10.0); ((3, 14), 10.0) ])
  in
  let before = Fp.wirelength fp ~weights in
  let rng = Prng.create ~seed:11 in
  let fp' = Fp.anneal ~rng ~iterations:3000 ~weights fp in
  let after = Fp.wirelength fp' ~weights in
  Alcotest.(check bool) "improved" true (after < before);
  (* area unchanged: sites are fixed *)
  Alcotest.(check (float 1e-9)) "area preserved" (Fp.area_mm2 fp) (Fp.area_mm2 fp')

let test_anneal_deterministic () =
  let fp = grid16 () in
  let weights = Edge_map.of_seq (List.to_seq [ ((1, 16), 5.0); ((2, 9), 3.0) ]) in
  let a = Fp.anneal ~rng:(Prng.create ~seed:3) ~iterations:500 ~weights fp in
  let b = Fp.anneal ~rng:(Prng.create ~seed:3) ~iterations:500 ~weights fp in
  List.iter
    (fun c ->
      let id = c.Fp.id in
      Alcotest.(check bool) "same position" true (Fp.position a id = Fp.position b id))
    (Fp.cores fp)

(* -------------------------------------------------------------------- *)
(* Energy model (Eq. 1)                                                  *)

let test_hop_count () =
  Alcotest.(check int) "two hops" 2 (Em.hop_count [ 1; 2; 3 ]);
  Alcotest.check_raises "short path" (Invalid_argument "Energy_model.hop_count: path too short")
    (fun () -> ignore (Em.hop_count [ 1 ]))

let test_path_bit_energy () =
  let fp = grid16 () in
  (* direct neighbor: 2 routers + one 2mm link *)
  let e = Em.path_bit_energy ~tech:t180 ~fp [ 1; 2 ] in
  let expect = (2.0 *. t180.Tech.es_bit) +. Tech.link_energy_per_bit t180 ~length_mm:2.0 in
  Alcotest.(check (float 1e-9)) "direct" expect e;
  (* two-hop path: 3 routers + two links *)
  let e2 = Em.path_bit_energy ~tech:t180 ~fp [ 1; 2; 3 ] in
  let expect2 =
    (3.0 *. t180.Tech.es_bit) +. (2.0 *. Tech.link_energy_per_bit t180 ~length_mm:2.0)
  in
  Alcotest.(check (float 1e-9)) "two hops" expect2 e2;
  (* monotone: longer paths cost more *)
  Alcotest.(check bool) "monotone" true (e2 > e)

let test_edge_energy_scales_with_volume () =
  let fp = grid16 () in
  let e1 = Em.edge_energy ~tech:t180 ~fp ~volume_bits:1 [ 1; 2 ] in
  let e128 = Em.edge_energy ~tech:t180 ~fp ~volume_bits:128 [ 1; 2 ] in
  Alcotest.(check (float 1e-6)) "linear in volume" (128.0 *. e1) e128

let test_uniform_bit_energy () =
  let e = Em.uniform_bit_energy ~tech:t180 ~nhops:3 ~link_length_mm:2.0 in
  let expect =
    (3.0 *. t180.Tech.es_bit) +. (2.0 *. Tech.link_energy_per_bit t180 ~length_mm:2.0)
  in
  Alcotest.(check (float 1e-9)) "eq1" expect e;
  Alcotest.check_raises "nhops < 1"
    (Invalid_argument "Energy_model.uniform_bit_energy: nhops < 1") (fun () ->
      ignore (Em.uniform_bit_energy ~tech:t180 ~nhops:0 ~link_length_mm:1.0))

(* Property: path energy equals uniform formula on equal-pitch paths. *)
let qcheck_path_vs_uniform =
  QCheck.Test.make ~name:"grid path energy matches Eq. 1 with uniform links" ~count:50
    QCheck.(int_range 1 3)
    (fun k ->
      let fp = grid16 () in
      (* straight horizontal path 1 -> 2 -> ... of k hops, pitch 2mm *)
      let path = List.init (k + 1) (fun i -> i + 1) in
      let e_path = Em.path_bit_energy ~tech:t180 ~fp path in
      let e_uniform = Em.uniform_bit_energy ~tech:t180 ~nhops:(k + 1) ~link_length_mm:2.0 in
      abs_float (e_path -. e_uniform) < 1e-9)

let suite =
  ( "energy",
    [
      Alcotest.test_case "technology presets" `Quick test_presets;
      Alcotest.test_case "link energy with repeaters" `Quick test_link_energy;
      Alcotest.test_case "grid placement" `Quick test_grid_placement;
      Alcotest.test_case "manhattan distances" `Quick test_distances;
      Alcotest.test_case "bounding box and area" `Quick test_area;
      Alcotest.test_case "weighted wirelength" `Quick test_wirelength;
      Alcotest.test_case "annealing improves wirelength" `Quick test_anneal_improves;
      Alcotest.test_case "annealing deterministic" `Quick test_anneal_deterministic;
      Alcotest.test_case "hop count" `Quick test_hop_count;
      Alcotest.test_case "path bit energy (Eq. 1)" `Quick test_path_bit_energy;
      Alcotest.test_case "energy linear in volume" `Quick test_edge_energy_scales_with_volume;
      Alcotest.test_case "uniform bit energy" `Quick test_uniform_bit_energy;
      QCheck_alcotest.to_alcotest qcheck_path_vs_uniform;
    ] )
