(* Tests for the communication library: schedules, minimum gossip /
   broadcast graphs, routing extraction (paper Sections 3 and 4.5). *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module S = Noc_primitives.Schedule
module P = Noc_primitives.Primitive
module L = Noc_primitives.Library

(* -------------------------------------------------------------------- *)
(* Schedule semantics                                                    *)

let test_schedule_validity () =
  let impl = D.undirected_closure (G.path 3) in
  Alcotest.(check bool) "valid" true (S.is_valid ~impl [ [ S.Send (1, 2) ]; [ S.Exchange (2, 3) ] ]);
  (* vertex used twice in one round *)
  Alcotest.(check bool) "conflict" false
    (S.is_valid ~impl [ [ S.Send (1, 2); S.Send (2, 3) ] ]);
  (* non-adjacent pair *)
  Alcotest.(check bool) "non-edge" false (S.is_valid ~impl [ [ S.Send (1, 3) ] ]);
  (* self transaction *)
  Alcotest.(check bool) "self" false (S.is_valid ~impl:(G.complete 3) [ [ S.Exchange (2, 2) ] ])

let test_synchronous_semantics () =
  (* In one round, exchanges propagate start-of-round knowledge only:
     a chain (1,2) (3,4) in round 1 then (2,3) in round 2 must NOT give
     vertex 4 token 1 (4 exchanged before 3 knew 1). *)
  let impl = D.undirected_closure (G.path 4) in
  let s = [ [ S.Exchange (1, 2); S.Exchange (3, 4) ]; [ S.Exchange (2, 3) ] ] in
  let know = S.knowledge_after ~impl s in
  let k4 = D.Vmap.find 4 know in
  Alcotest.(check bool) "4 lacks 1" false (D.Vset.mem 1 k4);
  let k2 = D.Vmap.find 2 know in
  Alcotest.(check bool) "2 knows 4" true (D.Vset.mem 4 k2)

let test_lower_bounds () =
  Alcotest.(check int) "gossip 2" 1 (S.gossip_lower_bound 2);
  Alcotest.(check int) "gossip 4" 2 (S.gossip_lower_bound 4);
  Alcotest.(check int) "gossip 8" 3 (S.gossip_lower_bound 8);
  Alcotest.(check int) "gossip 3 (odd)" 3 (S.gossip_lower_bound 3);
  Alcotest.(check int) "gossip 5 (odd)" 4 (S.gossip_lower_bound 5);
  Alcotest.(check int) "broadcast 2" 1 (S.broadcast_lower_bound 2);
  Alcotest.(check int) "broadcast 5" 3 (S.broadcast_lower_bound 5);
  Alcotest.(check int) "broadcast 8" 3 (S.broadcast_lower_bound 8)

(* -------------------------------------------------------------------- *)
(* Gossip primitives (MGGs)                                              *)

let test_mgg4_structure () =
  let p = P.gossip 4 in
  Alcotest.(check string) "name" "MGG4" p.P.name;
  (* representation: complete digraph on 4 vertices *)
  Alcotest.(check int) "repr edges" 12 (P.repr_edge_count p);
  (* implementation: the 4-cycle of Fig. 1 - exactly 4 physical links *)
  Alcotest.(check int) "links" 4 (P.impl_link_count p);
  Alcotest.(check bool) "1-3 link" true (D.mem_edge p.P.impl 1 3);
  Alcotest.(check bool) "2-4 link" true (D.mem_edge p.P.impl 2 4);
  Alcotest.(check bool) "1-2 link" true (D.mem_edge p.P.impl 1 2);
  Alcotest.(check bool) "3-4 link" true (D.mem_edge p.P.impl 3 4);
  Alcotest.(check bool) "no 1-4 link" false (D.mem_edge p.P.impl 1 4);
  (* optimal: gossip among 4 in exactly 2 rounds *)
  Alcotest.(check int) "rounds" 2 (S.rounds p.P.schedule)

let test_mgg4_routing_paper_example () =
  (* Section 4.5: "if vertex 1 needs to send a message to vertex 4, then it
     will forward its message to vertex 3 first" *)
  let p = P.gossip 4 in
  match P.route p ~src:1 ~dst:4 with
  | Some path -> Alcotest.(check (list int)) "1 to 4 via 3" [ 1; 3; 4 ] path
  | None -> Alcotest.fail "route 1->4 must exist"

let test_gossip_optimal_rounds_pow2 () =
  List.iter
    (fun n ->
      let p = P.gossip n in
      Alcotest.(check int)
        (Printf.sprintf "MGG%d rounds" n)
        (S.gossip_lower_bound n) (S.rounds p.P.schedule))
    [ 2; 4; 8; 16 ]

let test_gossip_optimal_rounds_even () =
  (* Knödel-based schedules reach the even-size optimum ceil(log2 n) *)
  List.iter
    (fun n ->
      let p = P.gossip n in
      Alcotest.(check int)
        (Printf.sprintf "MGG%d optimal" n)
        (S.gossip_lower_bound n) (S.rounds p.P.schedule))
    [ 2; 4; 6; 8; 10; 12; 14; 16 ];
  (* odd sizes dock an extra vertex onto the even core: optimal for
     n = 3, 5 and within one extra round of the bound up to 13 *)
  List.iter
    (fun n ->
      let p = P.gossip n in
      Alcotest.(check bool)
        (Printf.sprintf "MGG%d near-optimal" n)
        true
        (S.rounds p.P.schedule <= S.gossip_lower_bound n + 1))
    [ 3; 5; 7; 9; 11; 13 ]

let test_gossip_completes_many_sizes () =
  List.iter
    (fun n ->
      let p = P.gossip n in
      Alcotest.(check bool)
        (Printf.sprintf "gossip %d completes" n)
        true
        (S.completes_gossip ~impl:p.P.impl p.P.schedule);
      Alcotest.(check bool)
        (Printf.sprintf "gossip %d schedule valid" n)
        true
        (S.is_valid ~impl:p.P.impl p.P.schedule))
    [ 2; 3; 4; 5; 6; 7; 8; 10; 12; 16 ]

let test_gossip_routes_total () =
  (* every ordered pair must have a route: gossip is all-to-all *)
  List.iter
    (fun n ->
      let p = P.gossip n in
      for src = 1 to n do
        for dst = 1 to n do
          if src <> dst then
            match P.route p ~src ~dst with
            | Some path ->
                Alcotest.(check int) "starts at src" src (List.hd path);
                Alcotest.(check int) "ends at dst" dst (List.nth path (List.length path - 1));
                (* consecutive vertices are physically linked *)
                let rec check = function
                  | a :: (b :: _ as rest) ->
                      Alcotest.(check bool) "link exists" true (D.mem_edge p.P.impl a b);
                      check rest
                  | _ -> ()
                in
                check path
            | None -> Alcotest.fail (Printf.sprintf "no route %d->%d in MGG%d" src dst n)
        done
      done)
    [ 2; 4; 6; 8 ]

let test_gossip_invalid () =
  Alcotest.check_raises "n=1" (Invalid_argument "Primitive.gossip: need n >= 2") (fun () ->
      ignore (P.gossip 1))

(* -------------------------------------------------------------------- *)
(* Broadcast primitives                                                  *)

let test_broadcast_structure () =
  let p = P.broadcast 4 in
  Alcotest.(check string) "name G123" "G123" p.P.name;
  Alcotest.(check int) "repr edges (star)" 3 (P.repr_edge_count p);
  (* binomial tree: n-1 links *)
  Alcotest.(check int) "links" 3 (P.impl_link_count p);
  Alcotest.(check int) "rounds" 2 (S.rounds p.P.schedule);
  let p5 = P.broadcast 5 in
  Alcotest.(check string) "name G124" "G124" p5.P.name;
  Alcotest.(check int) "G124 rounds" 3 (S.rounds p5.P.schedule)

let test_broadcast_optimal_rounds () =
  List.iter
    (fun n ->
      let p = P.broadcast n in
      Alcotest.(check int)
        (Printf.sprintf "broadcast %d rounds" n)
        (S.broadcast_lower_bound n) (S.rounds p.P.schedule);
      Alcotest.(check bool)
        (Printf.sprintf "broadcast %d completes" n)
        true
        (S.completes_broadcast ~impl:p.P.impl ~root:1 p.P.schedule))
    [ 2; 3; 4; 5; 6; 7; 8; 12; 16 ]

let test_broadcast_routes_from_root () =
  let p = P.broadcast 8 in
  for dst = 2 to 8 do
    match P.route p ~src:1 ~dst with
    | Some path -> Alcotest.(check int) "route ends" dst (List.nth path (List.length path - 1))
    | None -> Alcotest.fail "root must reach everyone"
  done

(* -------------------------------------------------------------------- *)
(* Paths and loops                                                       *)

let test_path_primitive () =
  let p = P.path 4 in
  Alcotest.(check string) "name" "P4" p.P.name;
  Alcotest.(check int) "repr edges" 3 (P.repr_edge_count p);
  Alcotest.(check int) "links" 3 (P.impl_link_count p);
  Alcotest.(check bool) "schedule valid" true (S.is_valid ~impl:p.P.impl p.P.schedule);
  (* at most 2 rounds: alternate edges *)
  Alcotest.(check bool) "pipeline rounds" true (S.rounds p.P.schedule <= 2);
  (* forward routes exist *)
  (match P.route p ~src:1 ~dst:4 with
  | Some path -> Alcotest.(check (list int)) "along path" [ 1; 2; 3; 4 ] path
  | None -> Alcotest.fail "forward route expected")

let test_loop_primitive () =
  let p = P.loop 4 in
  Alcotest.(check string) "name" "L4" p.P.name;
  Alcotest.(check int) "repr edges" 4 (P.repr_edge_count p);
  Alcotest.(check int) "links" 4 (P.impl_link_count p);
  Alcotest.(check int) "even loop rounds" 2 (S.rounds p.P.schedule);
  let p5 = P.loop 5 in
  Alcotest.(check int) "odd loop rounds" 3 (S.rounds p5.P.schedule);
  Alcotest.(check bool) "odd loop valid" true (S.is_valid ~impl:p5.P.impl p5.P.schedule);
  (* route wraps around the ring *)
  match P.route p ~src:4 ~dst:1 with
  | Some path -> Alcotest.(check (list int)) "wrap" [ 4; 1 ] path
  | None -> Alcotest.fail "ring route expected"

let test_loop_min_size () =
  Alcotest.check_raises "loop 2 rejected" (Invalid_argument "Primitive.loop: need n >= 3")
    (fun () -> ignore (P.loop 2))

(* -------------------------------------------------------------------- *)
(* Library                                                               *)

let test_default_library () =
  let lib = L.default () in
  Alcotest.(check (list string)) "catalog"
    [ "MGG4"; "G124"; "G123"; "L8"; "L7"; "L6"; "L5"; "L4"; "L3"; "P6"; "P5"; "P4"; "P3" ]
    (L.names lib);
  (* ids are 1-based and sequential *)
  List.iteri (fun i e -> Alcotest.(check int) "id" (i + 1) e.L.id) lib;
  (* no 2-vertex primitive: otherwise no remainder could ever exist *)
  List.iter
    (fun e -> Alcotest.(check bool) "size >= 3" true (P.size e.L.prim >= 3))
    lib

let test_library_lookup () =
  let lib = L.default () in
  (match L.find lib 1 with
  | Some e -> Alcotest.(check string) "id 1 is MGG4" "MGG4" e.L.prim.P.name
  | None -> Alcotest.fail "id 1 exists");
  Alcotest.(check bool) "id 99 missing" true (L.find lib 99 = None);
  (match L.find_by_name lib "L4" with
  | Some e -> Alcotest.(check int) "L4 id" 8 e.L.id
  | None -> Alcotest.fail "L4 exists");
  Alcotest.(check bool) "unknown name" true (L.find_by_name lib "XYZ" = None)

let test_library_max_diameter () =
  let lib = L.default () in
  (* P6 has diameter 5, the largest implementation in the default library *)
  Alcotest.(check int) "max diameter" 5 (L.max_diameter lib);
  let lib_min = L.minimal () in
  (* MGG4 impl diameter 2, G123 binomial tree diameter... root-leaf depth *)
  Alcotest.(check bool) "minimal diameter small" true (L.max_diameter lib_min <= 3)

let test_extended_library () =
  let lib = L.extended () in
  Alcotest.(check bool) "has MGG8" true (L.find_by_name lib "MGG8" <> None);
  Alcotest.(check bool) "has G127" true (L.find_by_name lib "G127" <> None)

(* -------------------------------------------------------------------- *)
(* Properties                                                            *)

let qcheck_gossip_completes =
  QCheck.Test.make ~name:"gossip schedules complete and are valid" ~count:20
    QCheck.(int_range 2 14)
    (fun n ->
      let p = P.gossip n in
      S.is_valid ~impl:p.P.impl p.P.schedule
      && S.completes_gossip ~impl:p.P.impl p.P.schedule)

let qcheck_broadcast_optimal =
  QCheck.Test.make ~name:"broadcast always completes in ceil(log2 n) rounds" ~count:20
    QCheck.(int_range 2 32)
    (fun n ->
      let p = P.broadcast n in
      S.rounds p.P.schedule = S.broadcast_lower_bound n
      && S.completes_broadcast ~impl:p.P.impl ~root:1 p.P.schedule)

let qcheck_routes_follow_links =
  QCheck.Test.make ~name:"all primitive routes follow physical links" ~count:20
    QCheck.(int_range 3 10)
    (fun n ->
      let prims = [ P.gossip n; P.broadcast n; P.path n; P.loop n ] in
      List.for_all
        (fun p ->
          let impl = p.P.impl in
          let ok = ref true in
          for src = 1 to n do
            for dst = 1 to n do
              match P.route p ~src ~dst with
              | Some (first :: rest) ->
                  let rec follow prev = function
                    | [] -> ()
                    | x :: tl ->
                        if not (D.mem_edge impl prev x) then ok := false;
                        follow x tl
                  in
                  if first <> src then ok := false;
                  follow first rest
              | Some [] -> ok := false
              | None -> ()
            done
          done;
          !ok)
        prims)

let test_pretty_printers () =
  let p = P.gossip 4 in
  let s1 = Format.asprintf "%a" P.pp p in
  Alcotest.(check bool) "primitive pp" true (String.length s1 > 0);
  let s2 = Format.asprintf "%a" S.pp p.P.schedule in
  Alcotest.(check bool) "schedule pp mentions rounds" true
    (String.length s2 > 0 && String.sub s2 0 5 = "round");
  let s3 = Format.asprintf "%a" L.pp (L.default ()) in
  Alcotest.(check bool) "library pp lists MGG4" true
    (let rec has i =
       i + 4 <= String.length s3 && (String.sub s3 i 4 = "MGG4" || has (i + 1))
     in
     has 0)

let suite =
  ( "primitives",
    [
      Alcotest.test_case "schedule validity" `Quick test_schedule_validity;
      Alcotest.test_case "synchronous round semantics" `Quick test_synchronous_semantics;
      Alcotest.test_case "telephone-model lower bounds" `Quick test_lower_bounds;
      Alcotest.test_case "MGG4 structure (Fig. 1)" `Quick test_mgg4_structure;
      Alcotest.test_case "MGG4 routing: 1 to 4 via 3 (Sec 4.5)" `Quick
        test_mgg4_routing_paper_example;
      Alcotest.test_case "gossip optimal rounds (powers of 2)" `Quick
        test_gossip_optimal_rounds_pow2;
      Alcotest.test_case "gossip optimal rounds (even sizes)" `Quick
        test_gossip_optimal_rounds_even;
      Alcotest.test_case "gossip completes, many sizes" `Quick test_gossip_completes_many_sizes;
      Alcotest.test_case "gossip routes are total" `Quick test_gossip_routes_total;
      Alcotest.test_case "gossip invalid size" `Quick test_gossip_invalid;
      Alcotest.test_case "broadcast structure" `Quick test_broadcast_structure;
      Alcotest.test_case "broadcast optimal rounds" `Quick test_broadcast_optimal_rounds;
      Alcotest.test_case "broadcast routes from root" `Quick test_broadcast_routes_from_root;
      Alcotest.test_case "path primitive" `Quick test_path_primitive;
      Alcotest.test_case "loop primitive" `Quick test_loop_primitive;
      Alcotest.test_case "loop minimum size" `Quick test_loop_min_size;
      Alcotest.test_case "default library catalog" `Quick test_default_library;
      Alcotest.test_case "library lookup" `Quick test_library_lookup;
      Alcotest.test_case "library max diameter" `Quick test_library_max_diameter;
      Alcotest.test_case "extended library" `Quick test_extended_library;
      Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
      QCheck_alcotest.to_alcotest qcheck_gossip_completes;
      QCheck_alcotest.to_alcotest qcheck_broadcast_optimal;
      QCheck_alcotest.to_alcotest qcheck_routes_follow_links;
    ] )
