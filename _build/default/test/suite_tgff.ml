(* Tests for the TGFF-style task-graph generator (Fig. 4a's benchmark
   source). *)

module D = Noc_graph.Digraph
module T = Noc_graph.Traversal
module Tg = Noc_tgff.Tgff
module Prng = Noc_util.Prng

let gen ?(seed = 1) params = Tg.generate ~rng:(Prng.create ~seed) params

let test_task_count () =
  List.iter
    (fun n ->
      let tg = gen { Tg.default_params with tasks = n } in
      Alcotest.(check int) (Printf.sprintf "%d tasks" n) n (D.num_vertices tg.Tg.graph))
    [ 1; 2; 5; 12; 18; 40 ]

let test_acyclic_and_connected () =
  for seed = 1 to 20 do
    let tg = gen ~seed { Tg.default_params with tasks = 15 } in
    Alcotest.(check bool) "acyclic" true (T.is_acyclic tg.Tg.graph);
    Alcotest.(check bool) "weakly connected" true (T.is_weakly_connected tg.Tg.graph)
  done

let test_rooted_at_one () =
  for seed = 1 to 10 do
    let tg = gen ~seed Tg.default_params in
    (* vertex 1 is the unique source of the skeleton; with extra edges it
       still has in-degree 0 because extras only go forward *)
    Alcotest.(check int) "root in-degree" 0 (D.in_degree tg.Tg.graph 1)
  done

let test_edge_attributes_in_range () =
  let p = { Tg.default_params with volume_range = (100, 200); bandwidth_range = (0.5, 0.9) } in
  let tg = gen p in
  D.iter_edges
    (fun u v ->
      let vol = D.Edge_map.find (u, v) tg.Tg.volume in
      Alcotest.(check bool) "volume in range" true (vol >= 100 && vol <= 200);
      let bw = D.Edge_map.find (u, v) tg.Tg.bandwidth in
      Alcotest.(check bool) "bandwidth in range" true (bw >= 0.5 && bw <= 0.9))
    tg.Tg.graph

let test_every_edge_has_attributes () =
  let tg = gen { Tg.default_params with tasks = 20; extra_edge_p = 0.1 } in
  D.iter_edges
    (fun u v ->
      Alcotest.(check bool) "volume present" true (D.Edge_map.mem (u, v) tg.Tg.volume);
      Alcotest.(check bool) "bandwidth present" true (D.Edge_map.mem (u, v) tg.Tg.bandwidth))
    tg.Tg.graph

let test_determinism () =
  let a = gen ~seed:9 Tg.automotive and b = gen ~seed:9 Tg.automotive in
  Alcotest.(check bool) "same graph" true (D.equal a.Tg.graph b.Tg.graph)

let test_presets () =
  Alcotest.(check int) "five presets" 5 (List.length Tg.presets);
  let auto = List.assoc "automotive" Tg.presets in
  Alcotest.(check int) "automotive has 18 tasks" 18 auto.Tg.tasks;
  List.iter
    (fun (name, p) ->
      let tg = gen p in
      Alcotest.(check int) name p.Tg.tasks (D.num_vertices tg.Tg.graph))
    Tg.presets

let qcheck_generator_wellformed =
  QCheck.Test.make ~name:"tgff graphs are connected dags of the right size" ~count:50
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, n) ->
      let tg = gen ~seed:(seed + 100) { Tg.default_params with tasks = n } in
      D.num_vertices tg.Tg.graph = n
      && T.is_acyclic tg.Tg.graph
      && T.is_weakly_connected tg.Tg.graph)

let suite =
  ( "tgff",
    [
      Alcotest.test_case "task count" `Quick test_task_count;
      Alcotest.test_case "acyclic and connected" `Quick test_acyclic_and_connected;
      Alcotest.test_case "rooted at vertex 1" `Quick test_rooted_at_one;
      Alcotest.test_case "edge attributes in range" `Quick test_edge_attributes_in_range;
      Alcotest.test_case "every edge has attributes" `Quick test_every_edge_has_attributes;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "presets" `Quick test_presets;
      QCheck_alcotest.to_alcotest qcheck_generator_wellformed;
    ] )
