(* Quickstart: synthesize a customized NoC topology for a small
   hand-written application.

   The application: core 1 streams configuration to cores 2-4 (a
   broadcast), cores 5-8 exchange state all-to-all (gossip), and core 4
   feeds core 5 point-to-point.

   Run with: dune exec examples/quickstart.exe *)

module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Decomp = Noc_core.Decomposition
module Syn = Noc_core.Synthesis

let acg =
  Acg.of_weighted_edges
    ([
       (* broadcast: 1 -> 2, 3, 4 *)
       (1, 2, 256, 0.2);
       (1, 3, 256, 0.2);
       (1, 4, 256, 0.2);
       (* point-to-point hand-off *)
       (4, 5, 64, 0.1);
     ]
    @ (* gossip among 5..8: every ordered pair *)
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u <> v then Some (u, v, 128, 0.4) else None)
          [ 5; 6; 7; 8 ])
      [ 5; 6; 7; 8 ])

let () =
  Format.printf "Input application:@.%a@." Acg.pp acg;

  (* 1. decompose the communication requirements into library primitives *)
  let library = Noc_primitives.Library.default () in
  let decomposition, stats = Bb.decompose ~library acg in
  Format.printf "Decomposition (%.3f s, %d search nodes):@." stats.Bb.elapsed_s stats.Bb.nodes;
  Format.printf "%a@." (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg) decomposition;

  (* 2. glue the optimal implementations into the customized topology *)
  let arch = Syn.custom acg decomposition in
  Format.printf "Synthesized architecture: %a@." Syn.pp arch;

  (* 3. routing comes for free from the primitives' optimal schedules *)
  (match Syn.route arch ~src:5 ~dst:8 with
  | Some path ->
      Format.printf "Route for flow 5 -> 8: %s@."
        (String.concat " -> " (List.map string_of_int path))
  | None -> ());

  (* 4. the routing is deadlock-free (channel dependency graph analysis) *)
  let report = Noc_core.Deadlock.analyze arch in
  Format.printf "Deadlock-free: %b (virtual channels needed: %d)@."
    (report.Noc_core.Deadlock.cdg_cycle = None)
    report.Noc_core.Deadlock.vcs_needed;

  (* 5. energy estimate against a 180nm floorplan *)
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:8 ~size_mm:2.0)
  in
  Format.printf "Eq. 5 communication energy: %.1f pJ per iteration@."
    (Syn.total_energy ~tech ~fp acg arch)
