(* Design-space exploration: ablations over the two ingredients the paper
   singles out for future work — the content of the communication library
   (Section 3: "it is desirable to select the best set of graphs to be
   included in the library") and the initial floorplan (Section 6:
   "relax the initial floorplan information").

   Run with: dune exec examples/design_space.exe *)

module L = Noc_primitives.Library
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Decomp = Noc_core.Decomposition
module Syn = Noc_core.Synthesis
module Fp = Noc_energy.Floorplan
module D = Noc_graph.Digraph

let () =
  let acg = Noc_aes.Distributed.acg () in

  (* -------- ablation 1: library content -------- *)
  Format.printf "=== Library ablation on the AES ACG ===@.";
  Format.printf "%-10s %-28s %8s %8s %10s@." "library" "primitives used" "cost"
    "remainder" "time (s)";
  List.iter
    (fun (name, lib) ->
      let d, stats = Bb.decompose ~library:lib acg in
      let used =
        Decomp.primitive_histogram d
        |> List.map (fun (n, k) -> Printf.sprintf "%dx%s" k n)
        |> String.concat " "
      in
      Format.printf "%-10s %-28s %8.0f %8d %10.3f@." name
        (if used = "" then "-" else used)
        stats.Bb.best_cost
        (D.num_edges d.Decomp.remainder)
        stats.Bb.elapsed_s)
    [
      ("default", L.default ());
      ("minimal", L.minimal ());
      ("extended", L.extended ());
    ];

  (* -------- ablation 2: floorplan quality -------- *)
  Format.printf "@.=== Floorplan ablation (Eq. 5 energy of the synthesized arch) ===@.";
  let library = L.default () in
  let d, _ = Bb.decompose ~library acg in
  let arch = Syn.custom acg d in
  let tech = Noc_energy.Technology.cmos_180nm in
  let weights =
    D.fold_edges
      (fun u v acc ->
        D.Edge_map.add (u, v) (float_of_int (Acg.volume acg u v)) acc)
      (Acg.graph acg) D.Edge_map.empty
  in
  let grid = Fp.grid (Fp.uniform_cores ~n:16 ~size_mm:2.0) in
  let rng = Noc_util.Prng.create ~seed:7 in
  (* a deliberately scrambled placement, then annealed back *)
  let scrambled =
    let ids = Array.init 16 (fun i -> i + 1) in
    Noc_util.Prng.shuffle rng ids;
    Fp.grid (List.init 16 (fun i -> { Fp.id = ids.(i); width_mm = 2.0; height_mm = 2.0 }))
  in
  let annealed = Fp.anneal ~rng ~iterations:4000 ~weights scrambled in
  List.iter
    (fun (name, fp) ->
      Format.printf "%-22s wirelength=%8.1f  energy=%10.1f pJ@." name
        (Fp.wirelength fp ~weights)
        (Syn.total_energy ~tech ~fp acg arch))
    [
      ("natural grid", grid); ("scrambled placement", scrambled);
      ("scrambled + annealed", annealed);
    ];
  Format.printf
    "@.(The decomposition is structural; the floorplan decides what Eq. 5 makes of it.)@."
