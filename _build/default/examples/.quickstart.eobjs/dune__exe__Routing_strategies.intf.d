examples/routing_strategies.mli:
