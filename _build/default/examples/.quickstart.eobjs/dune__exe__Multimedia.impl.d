examples/multimedia.ml: Format List Noc_apps Noc_core Noc_energy Noc_graph Noc_primitives
