examples/quickstart.mli:
