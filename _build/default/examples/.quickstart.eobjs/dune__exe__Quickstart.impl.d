examples/quickstart.ml: Format List Noc_core Noc_energy Noc_primitives String
