examples/random_benchmark.mli:
