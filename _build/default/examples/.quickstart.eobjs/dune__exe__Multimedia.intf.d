examples/multimedia.mli:
