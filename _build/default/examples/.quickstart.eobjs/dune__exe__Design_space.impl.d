examples/design_space.ml: Array Format List Noc_aes Noc_core Noc_energy Noc_graph Noc_primitives Noc_util Printf String
