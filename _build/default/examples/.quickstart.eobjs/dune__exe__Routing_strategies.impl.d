examples/routing_strategies.ml: Bytes Format List Noc_aes Noc_core Noc_graph Noc_primitives Noc_sim Noc_util
