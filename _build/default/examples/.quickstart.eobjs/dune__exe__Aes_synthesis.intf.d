examples/aes_synthesis.mli:
