examples/random_benchmark.ml: Array Format Noc_core Noc_graph Noc_primitives Noc_util Sys
