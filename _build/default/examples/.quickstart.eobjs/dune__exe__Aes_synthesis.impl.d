examples/aes_synthesis.ml: Bytes Format Noc_aes Noc_core Noc_energy Noc_primitives Noc_sim
