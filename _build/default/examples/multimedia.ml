(* Customized NoC synthesis for multimedia decoders — the application class
   the paper's introduction motivates ("typical SoCs consist of a number of
   heterogeneous devices ... that communicate using packet switching").

   Synthesizes architectures for the classic VOPD and MPEG-4 decoder task
   graphs and compares them against meshes.

   Run with: dune exec examples/multimedia.exe *)

module Mm = Noc_apps.Multimedia
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Syn = Noc_core.Synthesis
module D = Noc_graph.Digraph

let () =
  let tech = Noc_energy.Technology.cmos_180nm in
  let library = Noc_primitives.Library.default () in
  List.iter
    (fun (title, names, acg) ->
      Format.printf "=== %s (%d cores, %d flows) ===@." title (Acg.num_cores acg)
        (Acg.num_flows acg);
      (* the heaviest flows, by name *)
      let flows =
        D.fold_edges
          (fun u v acc -> ((u, v), Acg.bandwidth acg u v) :: acc)
          (Acg.graph acg) []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      List.iteri
        (fun i ((u, v), bw) ->
          if i < 3 then
            Format.printf "  %-12s -> %-12s %6.2f Gbit/s@." (Mm.name_of names u)
              (Mm.name_of names v) bw)
        flows;
      let d, stats = Bb.decompose ~library acg in
      let fp =
        Noc_energy.Floorplan.grid
          (Noc_energy.Floorplan.uniform_cores ~n:(Acg.num_cores acg) ~size_mm:2.0)
      in
      let report =
        Noc_core.Report.build ~tech ~fp
          ~constraints:(Noc_core.Constraints.of_technology tech)
          ~cost:Noc_core.Cost.Edge_count ~acg ~decomposition:d ~stats ()
      in
      Format.printf "%a@." Noc_core.Report.pp report;
      let custom = Syn.custom acg d in
      let mesh = Syn.mesh ~rows:3 ~cols:4 acg in
      Format.printf "vs 3x4 mesh: %d links (mesh %d), %.2f avg hops (mesh %.2f)@.@."
        (Syn.link_count custom) (Syn.link_count mesh) (Syn.avg_hops acg custom)
        (Syn.avg_hops acg mesh))
    [
      ("VOPD video object plane decoder", Mm.vopd_names, Mm.vopd ());
      ("MPEG-4 decoder", Mm.mpeg4_names, Mm.mpeg4 ());
    ]
