(* Fig. 5 style experiment: generate a random application graph (the paper
   used Pajek; we use a seeded random-graph generator), decompose it into
   communication primitives, and export both the input ACG and the
   synthesized topology as Graphviz DOT files.

   Run with: dune exec examples/random_benchmark.exe [-- seed]
   Writes random_acg.dot and random_topology.dot to the current directory. *)

module G = Noc_graph.Generators
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Decomp = Noc_core.Decomposition
module Syn = Noc_core.Synthesis

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42 in
  let rng = Noc_util.Prng.create ~seed in

  (* Plant recognizable communication patterns into background noise, the
     way the paper's Fig. 5 input hides one gossip and several broadcasts. *)
  let graph =
    G.planted ~rng ~n:8
      ~parts:[ G.complete 4; G.star 4; G.star 4; G.star 5 ]
  in
  let acg = Acg.uniform ~volume:64 ~bandwidth:0.2 graph in
  Format.printf "Random ACG (seed %d): %d vertices, %d edges@.@." seed
    (Acg.num_cores acg) (Acg.num_flows acg);

  let library = Noc_primitives.Library.default () in
  let d, stats = Bb.decompose ~library acg in
  Format.printf "Decomposed in %.3f s (%d nodes explored, %d branches pruned):@.%a@."
    stats.Bb.elapsed_s stats.Bb.nodes stats.Bb.pruned
    (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg)
    d;

  let arch = Syn.custom acg d in
  Format.printf "Synthesized: %a@." Syn.pp arch;

  let acg_dot = Noc_graph.Dot.to_dot ~name:"acg" (Acg.graph acg) in
  Noc_graph.Dot.write_file ~path:"random_acg.dot" acg_dot;
  let topo_dot =
    Noc_graph.Dot.to_dot ~name:"topology" ~undirected:true arch.Syn.topology
  in
  Noc_graph.Dot.write_file ~path:"random_topology.dot" topo_dot;
  Format.printf "Wrote random_acg.dot and random_topology.dot@."
