module D = Noc_graph.Digraph
module Vset = D.Vset
module Vmap = D.Vmap

type transaction = Exchange of int * int | Send of int * int

type round = transaction list

type t = round list

let endpoints = function Exchange (a, b) -> (a, b) | Send (a, b) -> (a, b)

let rounds = List.length

let pp_transaction ppf = function
  | Exchange (a, b) -> Format.fprintf ppf "(%d<->%d)" a b
  | Send (a, b) -> Format.fprintf ppf "(%d->%d)" a b

let pp ppf s =
  List.iteri
    (fun i r ->
      Format.fprintf ppf "round %d: %a@ " (i + 1)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_transaction)
        r)
    s

let is_valid ~impl s =
  List.for_all
    (fun r ->
      let used = Hashtbl.create 8 in
      List.for_all
        (fun tx ->
          let a, b = endpoints tx in
          let adjacent = D.mem_edge impl a b || D.mem_edge impl b a in
          let free = (not (Hashtbl.mem used a)) && not (Hashtbl.mem used b) in
          Hashtbl.replace used a true;
          Hashtbl.replace used b true;
          adjacent && free && a <> b)
        r)
    s

let initial_knowledge impl =
  D.fold_vertices (fun v acc -> Vmap.add v (Vset.singleton v) acc) impl Vmap.empty

let step_round know r =
  (* synchronous semantics: all transfers read the knowledge at the start of
     the round *)
  let get v = match Vmap.find_opt v know with Some s -> s | None -> Vset.singleton v in
  List.fold_left
    (fun acc tx ->
      match tx with
      | Exchange (a, b) ->
          let ka = get a and kb = get b in
          let acc = Vmap.add a (Vset.union (Vmap.find a acc) kb) acc in
          Vmap.add b (Vset.union (Vmap.find b acc) ka) acc
      | Send (a, b) ->
          let ka = get a in
          Vmap.add b (Vset.union (Vmap.find b acc) ka) acc)
    know r

let knowledge_after ~impl s =
  List.fold_left step_round (initial_knowledge impl) s

let completes_gossip ~impl s =
  let all = D.vertices impl in
  let know = knowledge_after ~impl s in
  Vset.for_all
    (fun v ->
      match Vmap.find_opt v know with Some k -> Vset.equal k all | None -> false)
    all

let completes_broadcast ~impl ~root s =
  let know = knowledge_after ~impl s in
  Vset.for_all
    (fun v ->
      match Vmap.find_opt v know with Some k -> Vset.mem root k | None -> false)
    (D.vertices impl)

let first_arrival_paths ~impl ~src s =
  if not (D.mem_vertex impl src) then Vmap.empty
  else begin
    (* paths.(v) = Some path once src's token reaches v *)
    let paths = ref (Vmap.add src [ src ] Vmap.empty) in
    let n = D.num_vertices impl in
    let apply_round r =
      (* snapshot: arrivals within a round are based on start-of-round state *)
      let snapshot = !paths in
      let transfer a b =
        match (Vmap.find_opt a snapshot, Vmap.find_opt b !paths) with
        | Some pa, None -> paths := Vmap.add b (pa @ [ b ]) !paths
        | _ -> ()
      in
      List.iter
        (fun tx ->
          match tx with
          | Exchange (a, b) ->
              transfer a b;
              transfer b a
          | Send (a, b) -> transfer a b)
        r
    in
    (* repeat the schedule cyclically a bounded number of times; gossip and
       broadcast schedules complete in one pass, path/loop pipelines may need
       several *)
    let max_passes = max 2 n in
    let pass = ref 0 in
    while Vmap.cardinal !paths < n && !pass < max_passes do
      incr pass;
      List.iter apply_round s
    done;
    !paths
  end

let gossip_lower_bound n =
  if n < 2 then invalid_arg "Schedule.gossip_lower_bound: need n >= 2";
  let rec lg acc k = if k >= n then acc else lg (acc + 1) (k * 2) in
  let ceil_log = lg 0 1 in
  if n mod 2 = 0 then ceil_log else ceil_log + 1

let broadcast_lower_bound n =
  if n < 1 then invalid_arg "Schedule.broadcast_lower_bound: need n >= 1";
  let rec lg acc k = if k >= n then acc else lg (acc + 1) (k * 2) in
  lg 0 1
