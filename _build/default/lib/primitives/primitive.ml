module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Vmap = D.Vmap
module Vset = D.Vset

type kind = Gossip of int | Broadcast of int | Path of int | Loop of int

type t = {
  name : string;
  kind : kind;
  repr : D.t;
  impl : D.t;
  schedule : Schedule.t;
  routes : int list Vmap.t Vmap.t;
}

let size p = D.num_vertices p.repr

let repr_edge_count p = D.num_edges p.repr

let impl_link_count p = D.undirected_edge_count p.impl

let route p ~src ~dst =
  match Vmap.find_opt src p.routes with
  | None -> None
  | Some m -> Vmap.find_opt dst m

let compute_routes impl schedule =
  D.fold_vertices
    (fun src acc ->
      Vmap.add src (Schedule.first_arrival_paths ~impl ~src schedule) acc)
    impl Vmap.empty

let make ~name ~kind ~repr ~impl ~schedule =
  if not (Schedule.is_valid ~impl schedule) then
    invalid_arg (Printf.sprintf "Primitive.make: invalid schedule for %s" name);
  { name; kind; repr; impl; schedule; routes = compute_routes impl schedule }

(* ---------------------------------------------------------------- *)
(* Gossip: minimum gossip graphs                                     *)

(* Dimension-sweep schedule on the hypercube: in round k every vertex
   exchanges with its neighbor across dimension k.  After sweeping all
   dimensions every vertex knows everything (classic result). *)
let hypercube_schedule d =
  let n = 1 lsl d in
  List.init d (fun k ->
      let rec collect v acc =
        if v >= n then acc
        else
          let w = v lxor (1 lsl k) in
          let acc = if v < w then Schedule.Exchange (v + 1, w + 1) :: acc else acc in
          collect (v + 1) acc
      in
      collect 0 [])

(* Knödel graph rounds: round k matches (top j) with (bottom (j + 2^k - 1)
   mod n/2); each vertex appears exactly once per round. *)
let knodel_rounds n =
  let half = n / 2 in
  let delta =
    let rec lg acc k = if k >= n then acc else lg (acc + 1) (k * 2) in
    let up = lg 0 1 in
    if 1 lsl up > n then up - 1 else up
  in
  let top j = j + 1 and bottom j = half + j + 1 in
  List.init (max 1 delta) (fun k ->
      List.init half (fun j ->
          Schedule.Exchange (top j, bottom ((j + (1 lsl k) - 1) mod half))))

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let rec even_gossip_impl_schedule n =
  if n = 2 then (G.complete 2, [ [ Schedule.Exchange (1, 2) ] ])
  else if n = 4 then
    (* the paper's MGG4: links 1-3, 2-4, 1-2, 3-4; rounds (1,3)(2,4) then
       (1,2)(3,4) (Fig. 1) *)
    let impl =
      D.of_edges [ (1, 3); (3, 1); (2, 4); (4, 2); (1, 2); (2, 1); (3, 4); (4, 3) ]
    in
    (impl, [ [ Schedule.Exchange (1, 3); Schedule.Exchange (2, 4) ];
             [ Schedule.Exchange (1, 2); Schedule.Exchange (3, 4) ] ])
  else if is_power_of_two n then
    let d =
      let rec lg acc k = if k >= n then acc else lg (acc + 1) (k * 2) in
      lg 0 1
    in
    (G.hypercube d, hypercube_schedule d)
  else begin
    (* general even n: Knödel graph; start with one dimension sweep and
       extend one round at a time (cycling through the dimensions) until
       gossip completes — this reaches the ceil(log2 n) optimum for the
       even sizes the library uses (6, 10, 12, ...) *)
    let impl = G.knodel n in
    let base = Array.of_list (knodel_rounds n) in
    let dims = Array.length base in
    let rec extend s k guard =
      if Schedule.completes_gossip ~impl s then s
      else if guard = 0 then
        invalid_arg "Primitive.gossip: Knödel schedule failed to complete"
      else extend (s @ [ base.(k mod dims) ]) (k + 1) (guard - 1)
    in
    (impl, extend (Array.to_list base) dims (4 * dims))
  end

and odd_gossip_impl_schedule n =
  (* even core on 1..n-1; vertex n docks at vertex 1 with one exchange at
     each end of the core schedule *)
  let core_impl, core_sched = even_gossip_impl_schedule (n - 1) in
  let impl = D.add_edge_pair core_impl 1 n in
  let sched = ([ Schedule.Exchange (n, 1) ] :: core_sched) @ [ [ Schedule.Exchange (n, 1) ] ] in
  (impl, sched)

let gossip n =
  if n < 2 then invalid_arg "Primitive.gossip: need n >= 2";
  let impl, schedule =
    if n mod 2 = 0 then even_gossip_impl_schedule n else odd_gossip_impl_schedule n
  in
  if not (Schedule.completes_gossip ~impl schedule) then
    invalid_arg (Printf.sprintf "Primitive.gossip: schedule incomplete for n=%d" n);
  make ~name:(Printf.sprintf "MGG%d" n) ~kind:(Gossip n) ~repr:(G.complete n) ~impl
    ~schedule

(* ---------------------------------------------------------------- *)
(* Broadcast: binomial trees                                         *)

let broadcast n =
  if n < 2 then invalid_arg "Primitive.broadcast: need n >= 2";
  (* binomial broadcast: in each round every informed vertex calls one new
     vertex; completes in ceil(log2 n) rounds with n-1 tree links *)
  let informed = ref [ 1 ] in
  let next = ref 2 in
  let impl = ref (D.add_vertex D.empty 1) in
  let schedule = ref [] in
  while !next <= n do
    let round = ref [] in
    let senders = !informed in
    List.iter
      (fun u ->
        if !next <= n then begin
          let v = !next in
          incr next;
          impl := D.add_edge_pair !impl u v;
          round := Schedule.Send (u, v) :: !round;
          informed := !informed @ [ v ]
        end)
      senders;
    schedule := List.rev !round :: !schedule
  done;
  let schedule = List.rev !schedule in
  let impl = !impl in
  if not (Schedule.completes_broadcast ~impl ~root:1 schedule) then
    invalid_arg "Primitive.broadcast: schedule incomplete";
  make
    ~name:(Printf.sprintf "G12%d" (n - 1))
    ~kind:(Broadcast n) ~repr:(G.star n) ~impl ~schedule

(* ---------------------------------------------------------------- *)
(* Paths and loops                                                   *)

let alternating_path_rounds n =
  let odd = ref [] and even = ref [] in
  for i = 1 to n - 1 do
    let tx = Schedule.Send (i, i + 1) in
    if i mod 2 = 1 then odd := tx :: !odd else even := tx :: !even
  done;
  match (!odd, !even) with
  | o, [] -> [ List.rev o ]
  | o, e -> [ List.rev o; List.rev e ]

let path n =
  if n < 2 then invalid_arg "Primitive.path: need n >= 2";
  let repr = G.path n in
  let impl = D.undirected_closure repr in
  make ~name:(Printf.sprintf "P%d" n) ~kind:(Path n) ~repr ~impl
    ~schedule:(alternating_path_rounds n)

let loop n =
  if n < 3 then invalid_arg "Primitive.loop: need n >= 3";
  let repr = G.loop n in
  let impl = D.undirected_closure repr in
  (* proper edge coloring of the cycle: 2 rounds when n is even, 3 when
     odd (the closing edge n->1 conflicts with edge 1->2 otherwise) *)
  let schedule =
    if n mod 2 = 0 then
      let closing = Schedule.Send (n, 1) in
      match alternating_path_rounds n with
      | [ o; e ] -> [ o; e @ [ closing ] ]
      | other -> other @ [ [ closing ] ]
    else alternating_path_rounds n @ [ [ Schedule.Send (n, 1) ] ]
  in
  make ~name:(Printf.sprintf "L%d" n) ~kind:(Loop n) ~repr ~impl ~schedule

let pp ppf p =
  Format.fprintf ppf "%s (|V|=%d, repr edges=%d, links=%d, rounds=%d)" p.name (size p)
    (repr_edge_count p) (impl_link_count p)
    (Schedule.rounds p.schedule)
