lib/primitives/primitive.ml: Array Format List Noc_graph Printf Schedule
