lib/primitives/primitive.mli: Format Noc_graph Schedule
