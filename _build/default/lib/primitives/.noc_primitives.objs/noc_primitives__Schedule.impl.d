lib/primitives/schedule.ml: Format Hashtbl List Noc_graph
