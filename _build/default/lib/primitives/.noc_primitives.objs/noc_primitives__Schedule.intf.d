lib/primitives/schedule.mli: Format Noc_graph
