lib/primitives/library.mli: Format Primitive
