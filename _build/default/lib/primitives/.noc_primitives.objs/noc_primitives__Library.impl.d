lib/primitives/library.ml: Format List Noc_graph Primitive
