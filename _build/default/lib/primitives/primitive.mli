(** Communication primitives: representation graph, optimal implementation
    graph and schedule (Fig. 1 of the paper).

    A primitive has two graph views:

    - the {e representation graph} is the traffic pattern the decomposition
      algorithm searches for in the ACG (gossiping among n nodes is the
      complete digraph K_n, broadcasting is an out-star, ...);
    - the {e implementation graph} is the physical topology that realizes
      the pattern in minimum time with few links (Minimum Gossip Graph,
      minimum-time broadcast tree, ...), together with a round-optimal
      {!Schedule.t}.

    Both graphs use the same canonical vertex names [1..n], so a matching of
    the representation graph into the ACG directly transfers the
    implementation graph onto the matched cores. *)

type kind =
  | Gossip of int  (** all-to-all among [n] vertices *)
  | Broadcast of int  (** vertex 1 to all of [2..n] *)
  | Path of int  (** pipeline [1 -> 2 -> ... -> n] *)
  | Loop of int  (** ring [1 -> 2 -> ... -> n -> 1] *)

type t = private {
  name : string;  (** e.g. ["MGG4"], ["G123"], ["L4"], ["P3"] *)
  kind : kind;
  repr : Noc_graph.Digraph.t;  (** pattern searched in the ACG *)
  impl : Noc_graph.Digraph.t;  (** physical links (symmetric digraph) *)
  schedule : Schedule.t;
  routes : int list Noc_graph.Digraph.Vmap.t Noc_graph.Digraph.Vmap.t;
      (** [routes src dst] is the first-arrival path [src; ...; dst] in the
          implementation graph, for every ordered pair that the
          representation graph connects (directly or transitively via the
          schedule). *)
}

val size : t -> int
(** Number of vertices of the representation graph. *)

val repr_edge_count : t -> int

val impl_link_count : t -> int
(** Number of physical (undirected) links of the implementation graph: the
    abstract wiring cost of the primitive used in the paper's printed
    decompositions. *)

val route : t -> src:int -> dst:int -> int list option
(** Routing path for a covered pair (canonical vertex names). *)

val gossip : int -> t
(** [gossip n] is the all-to-all primitive on [n >= 2] vertices.
    Implementations: single link for [n = 2]; the paper's MGG4 (the 4-cycle
    with its 2-round schedule) for [n = 4]; Knödel-graph constructions for
    larger even [n]; for odd [n], vertex [n] piggybacks on the even core
    with one extra round at each end.  The schedule always completes gossip
    (validated at construction). *)

val broadcast : int -> t
(** [broadcast n] is the one-to-(n-1) primitive ([n >= 2]), named [G12k]
    for k = n-1 as in the paper.  Implementation: binomial broadcast tree
    completing in ⌈log2 n⌉ rounds. *)

val path : int -> t
(** [path n] ([n >= 2]), named [Pn]: neighbor pipeline; the implementation
    is the path itself scheduled in two alternating rounds. *)

val loop : int -> t
(** [loop n] ([n >= 3]), named [Ln]: ring; two alternating rounds (three if
    [n] is odd). *)

val pp : Format.formatter -> t -> unit
