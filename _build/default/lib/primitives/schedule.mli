(** Round-based communication schedules in the telephone model.

    The implementation graphs of the communication library (Fig. 1 of the
    paper) come with schedules showing how the primitive completes in the
    minimum number of rounds: in each round a node takes part in at most one
    transaction (the classic telephone/gossip model the paper cites from
    Hedetniemi et al. and Hromkovic et al.).

    A schedule both certifies optimality of an implementation graph and
    yields the routing tables of Section 4.5: replaying the schedule tells
    every node through which neighbor information from any source first
    reaches it. *)

type transaction =
  | Exchange of int * int  (** bidirectional (telephone call), used by gossip *)
  | Send of int * int  (** one-way call [src, dst], used by broadcast/paths *)

type round = transaction list

type t = round list

val endpoints : transaction -> int * int

val rounds : t -> int

val pp : Format.formatter -> t -> unit

val is_valid : impl:Noc_graph.Digraph.t -> t -> bool
(** A schedule is valid for an implementation graph when every transaction
    uses an adjacent vertex pair of the graph (in either direction) and no
    vertex takes part in two transactions of the same round. *)

val knowledge_after : impl:Noc_graph.Digraph.t -> t -> Noc_graph.Digraph.Vset.t Noc_graph.Digraph.Vmap.t
(** [knowledge_after ~impl s] replays [s] once with synchronous-round
    semantics (information exchanged in a round is the information held at
    the {e start} of that round) and returns, for each vertex, the set of
    vertices whose initial token it has learned (every vertex knows its own
    token initially). *)

val completes_gossip : impl:Noc_graph.Digraph.t -> t -> bool
(** Every vertex ends up knowing every vertex's token. *)

val completes_broadcast : impl:Noc_graph.Digraph.t -> root:int -> t -> bool
(** Every vertex ends up knowing the root's token. *)

val first_arrival_paths :
  impl:Noc_graph.Digraph.t -> src:int -> t -> int list Noc_graph.Digraph.Vmap.t
(** [first_arrival_paths ~impl ~src s] replays the schedule (repeating it
    cyclically up to a small bound if one pass does not suffice) and returns,
    for every vertex [v] that learns [src]'s token, the path
    [[src; ...; v]] along which the token first reached [v].  This is
    exactly the paper's routing-table construction: the next hop from [src]
    towards [v] is the second vertex of the path. *)

val gossip_lower_bound : int -> int
(** Minimum number of rounds for gossiping among [n >= 2] vertices in the
    telephone model: ⌈log2 n⌉ for even [n], ⌈log2 n⌉ + 1 for odd [n > 1]. *)

val broadcast_lower_bound : int -> int
(** Minimum number of rounds to broadcast among [n >= 1] vertices:
    ⌈log2 n⌉. *)
