(** The communication library of Section 3: an ordered catalog of
    primitives, each with a numeric ID used in decomposition listings
    (the paper's output format ["1: MGG4, Mapping: ..."]). *)

type entry = { id : int; prim : Primitive.t }

type t = entry list

val make : Primitive.t list -> t
(** Numbers the primitives 1, 2, ... in the given order.  The order is the
    order in which the branch-and-bound algorithm tries them. *)

val default : unit -> t
(** The paper's library (Section 3, "minimum gossip and broadcast graphs
    that have efficient 2-D implementations and paths and loops of various
    sizes"):

    {v 1: MGG4   2: G124   3: G123   4: L8 ... 8: L4   9: L3
       10: P6 ... 13: P3 v}

    Deliberately excludes two-vertex primitives (a single link would match
    any edge and no remainder graph could ever arise, contradicting the
    paper's Fig. 2 and Fig. 6 outputs). *)

val extended : unit -> t
(** [default] plus larger gossip graphs (MGG6, MGG8) and broader broadcasts
    (G125, G126, G127): exercises the "further research on library design"
    the paper calls for. *)

val minimal : unit -> t
(** Only MGG4 and G123 — used in ablation experiments. *)

val find : t -> int -> entry option
(** Look up an entry by ID. *)

val find_by_name : t -> string -> entry option

val names : t -> string list

val max_diameter : t -> int
(** Largest implementation-graph diameter in the library: the paper's bound
    on the maximum hop count of any synthesized architecture
    (Section 4.3). *)

val pp : Format.formatter -> t -> unit
