type entry = { id : int; prim : Primitive.t }

type t = entry list

let make prims = List.mapi (fun i p -> { id = i + 1; prim = p }) prims

let default () =
  make
    [
      Primitive.gossip 4;
      Primitive.broadcast 5;
      (* G124 *)
      Primitive.broadcast 4;
      (* G123 *)
      Primitive.loop 8;
      Primitive.loop 7;
      Primitive.loop 6;
      Primitive.loop 5;
      Primitive.loop 4;
      Primitive.loop 3;
      Primitive.path 6;
      Primitive.path 5;
      Primitive.path 4;
      Primitive.path 3;
    ]

let extended () =
  make
    [
      Primitive.gossip 8;
      Primitive.gossip 6;
      Primitive.gossip 4;
      Primitive.broadcast 8;
      (* G127 *)
      Primitive.broadcast 7;
      Primitive.broadcast 6;
      Primitive.broadcast 5;
      Primitive.broadcast 4;
      Primitive.loop 8;
      Primitive.loop 7;
      Primitive.loop 6;
      Primitive.loop 5;
      Primitive.loop 4;
      Primitive.loop 3;
      Primitive.path 6;
      Primitive.path 5;
      Primitive.path 4;
      Primitive.path 3;
    ]

let minimal () = make [ Primitive.gossip 4; Primitive.broadcast 4 ]

let find lib id = List.find_opt (fun e -> e.id = id) lib

let find_by_name lib name = List.find_opt (fun e -> e.prim.Primitive.name = name) lib

let names lib = List.map (fun e -> e.prim.Primitive.name) lib

let max_diameter lib =
  List.fold_left
    (fun acc e ->
      match Noc_graph.Traversal.undirected_diameter e.prim.Primitive.impl with
      | Some d -> max acc d
      | None -> acc)
    0 lib

let pp ppf lib =
  List.iter
    (fun e -> Format.fprintf ppf "%2d: %a@." e.id Primitive.pp e.prim)
    lib
