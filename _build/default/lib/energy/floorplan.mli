(** Core placement.

    The paper assumes "an initial floorplanning step has been performed and
    optimized for chip area.  Hence, the core coordinates are given as
    inputs to the algorithm" (Section 4).  This module provides that step:
    cores with physical dimensions are placed on a grid, and a simulated
    annealing pass can permute the placement to reduce
    communication-weighted wirelength (which is what makes the energy cost
    of Eq. 5 meaningful).  Link lengths are Manhattan distances between core
    centers, the standard global-wire estimate. *)

type core = { id : int; width_mm : float; height_mm : float }

type t
(** A placement: every core has a center coordinate. *)

val cores : t -> core list

val position : t -> int -> float * float
(** Center coordinates of a core. @raise Not_found for unknown ids. *)

val mem : t -> int -> bool

val uniform_cores : n:int -> size_mm:float -> core list
(** [n] square cores of the given side. *)

val grid : ?cols:int -> core list -> t
(** Row-major grid placement (the paper's AES cores form a 4×4 grid).  Cell
    pitch is the maximum core dimension; [cols] defaults to
    ⌈sqrt n⌉. *)

val distance_mm : t -> int -> int -> float
(** Manhattan distance between two core centers. *)

val path_length_mm : t -> int list -> float list
(** Per-hop lengths along a vertex path: [path_length_mm fp [a;b;c]] is
    [[d(a,b); d(b,c)]]. *)

val bounding_box_mm : t -> float * float
(** Width and height of the occupied bounding box (core extents included). *)

val area_mm2 : t -> float

val wirelength : t -> weights:float Noc_graph.Digraph.Edge_map.t -> float
(** Σ weight(u,v) · distance(u,v) over the weighted edge map: the annealing
    objective. *)

val anneal :
  rng:Noc_util.Prng.t ->
  ?iterations:int ->
  ?t_start:float ->
  ?t_end:float ->
  weights:float Noc_graph.Digraph.Edge_map.t ->
  t ->
  t
(** Simulated annealing over placement swaps minimizing {!wirelength}.
    Deterministic for a given PRNG state.  Keeps grid sites fixed (area is
    preserved); only the core-to-site assignment changes. *)

val pp : Format.formatter -> t -> unit
