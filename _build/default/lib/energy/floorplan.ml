module Vmap = Noc_graph.Digraph.Vmap
module Edge_map = Noc_graph.Digraph.Edge_map
module Prng = Noc_util.Prng

type core = { id : int; width_mm : float; height_mm : float }

type t = { core_list : core list; pos : (float * float) Vmap.t }

let cores fp = fp.core_list

let position fp id =
  match Vmap.find_opt id fp.pos with
  | Some p -> p
  | None -> raise Not_found

let mem fp id = Vmap.mem id fp.pos

let uniform_cores ~n ~size_mm =
  List.init n (fun i -> { id = i + 1; width_mm = size_mm; height_mm = size_mm })

let grid ?cols core_list =
  let n = List.length core_list in
  if n = 0 then { core_list; pos = Vmap.empty }
  else begin
    let cols =
      match cols with
      | Some c when c > 0 -> c
      | Some _ -> invalid_arg "Floorplan.grid: cols must be positive"
      | None -> int_of_float (ceil (sqrt (float_of_int n)))
    in
    let pitch =
      List.fold_left (fun acc c -> max acc (max c.width_mm c.height_mm)) 0.0 core_list
    in
    let pos =
      List.fold_left
        (fun (i, acc) c ->
          let r = i / cols and cl = i mod cols in
          ( i + 1,
            Vmap.add c.id
              ((float_of_int cl *. pitch) +. (pitch /. 2.), (float_of_int r *. pitch) +. (pitch /. 2.))
              acc ))
        (0, Vmap.empty) core_list
      |> snd
    in
    { core_list; pos }
  end

let distance_mm fp a b =
  let xa, ya = position fp a and xb, yb = position fp b in
  abs_float (xa -. xb) +. abs_float (ya -. yb)

let path_length_mm fp path =
  let rec go = function
    | a :: (b :: _ as rest) -> distance_mm fp a b :: go rest
    | [ _ ] | [] -> []
  in
  go path

let bounding_box_mm fp =
  match fp.core_list with
  | [] -> (0., 0.)
  | _ ->
      let min_x, max_x, min_y, max_y =
        List.fold_left
          (fun (mnx, mxx, mny, mxy) c ->
            let x, y = position fp c.id in
            let hw = c.width_mm /. 2. and hh = c.height_mm /. 2. in
            (min mnx (x -. hw), max mxx (x +. hw), min mny (y -. hh), max mxy (y +. hh)))
          (infinity, neg_infinity, infinity, neg_infinity)
          fp.core_list
      in
      (max_x -. min_x, max_y -. min_y)

let area_mm2 fp =
  let w, h = bounding_box_mm fp in
  w *. h

let wirelength fp ~weights =
  Edge_map.fold
    (fun (u, v) w acc ->
      if mem fp u && mem fp v then acc +. (w *. distance_mm fp u v) else acc)
    weights 0.0

let anneal ~rng ?(iterations = 2000) ?(t_start = 1.0) ?(t_end = 0.01) ~weights fp =
  let ids = Array.of_list (List.map (fun c -> c.id) fp.core_list) in
  let n = Array.length ids in
  if n < 2 then fp
  else begin
    let current = ref fp.pos in
    let cost pos = wirelength { fp with pos } ~weights in
    let cur_cost = ref (cost !current) in
    let best = ref !current in
    let best_cost = ref !cur_cost in
    let cooling = (t_end /. t_start) ** (1.0 /. float_of_int (max 1 iterations)) in
    let temp = ref t_start in
    (* normalize acceptance by the initial cost scale *)
    let scale = if !cur_cost > 0. then !cur_cost else 1.0 in
    for _ = 1 to iterations do
      let i = Prng.int rng n and j = Prng.int rng n in
      if i <> j then begin
        let a = ids.(i) and b = ids.(j) in
        let pa = Vmap.find a !current and pb = Vmap.find b !current in
        let candidate = Vmap.add a pb (Vmap.add b pa !current) in
        let c = cost candidate in
        let delta = (c -. !cur_cost) /. scale in
        if delta < 0.0 || Prng.float rng 1.0 < exp (-.delta /. !temp) then begin
          current := candidate;
          cur_cost := c;
          if c < !best_cost then begin
            best := candidate;
            best_cost := c
          end
        end
      end;
      temp := !temp *. cooling
    done;
    { fp with pos = !best }
  end

let pp ppf fp =
  List.iter
    (fun c ->
      let x, y = position fp c.id in
      Format.fprintf ppf "core %d @ (%.2f, %.2f) [%.2fx%.2f mm]@." c.id x y c.width_mm
        c.height_mm)
    fp.core_list
