let hop_count path =
  let n = List.length path in
  if n < 2 then invalid_arg "Energy_model.hop_count: path too short";
  n - 1

let path_bit_energy ~tech ~fp path =
  let k = hop_count path in
  let links = Floorplan.path_length_mm fp path in
  let link_e =
    List.fold_left
      (fun acc len -> acc +. Technology.link_energy_per_bit tech ~length_mm:len)
      0.0 links
  in
  (float_of_int (k + 1) *. tech.Technology.es_bit) +. link_e

let edge_energy ~tech ~fp ~volume_bits path =
  float_of_int volume_bits *. path_bit_energy ~tech ~fp path

let uniform_bit_energy ~tech ~nhops ~link_length_mm =
  if nhops < 1 then invalid_arg "Energy_model.uniform_bit_energy: nhops < 1";
  (float_of_int nhops *. tech.Technology.es_bit)
  +. float_of_int (nhops - 1)
     *. Technology.link_energy_per_bit tech ~length_mm:link_length_mm
