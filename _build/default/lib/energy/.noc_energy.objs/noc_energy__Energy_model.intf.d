lib/energy/energy_model.mli: Floorplan Technology
