lib/energy/technology.ml: Format List
