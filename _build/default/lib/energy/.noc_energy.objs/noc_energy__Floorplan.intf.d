lib/energy/floorplan.mli: Format Noc_graph Noc_util
