lib/energy/energy_model.ml: Floorplan List Technology
