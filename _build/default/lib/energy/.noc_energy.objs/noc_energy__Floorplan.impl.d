lib/energy/floorplan.ml: Array Format List Noc_graph Noc_util
