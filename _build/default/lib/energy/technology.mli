(** Process-technology parameters for the bit-energy model.

    Section 3 of the paper: "ES_bit values for different process
    technologies, voltage levels, operating frequencies are also stored in
    the library", and EL_bit is stored {e per unit length} so that actual
    link energies can be derived from floorplan distances, "taking the
    repeaters into account".

    The presets below are representative of published NoC energy numbers of
    the paper's era (Hu & Marculescu DATE'03, Ye/Benini/De Micheli); they
    set the scale, while all comparisons in the experiments are ratios that
    do not depend on the absolute calibration. *)

type t = {
  name : string;
  feature_nm : int;  (** process feature size, nm *)
  voltage : float;  (** supply voltage, V *)
  frequency_mhz : float;  (** nominal network clock *)
  es_bit : float;  (** switch traversal energy per bit, pJ *)
  el_bit_per_mm : float;  (** link energy per bit per mm, pJ/mm *)
  repeater_spacing_mm : float;  (** one repeater inserted every this many mm *)
  e_repeater : float;  (** repeater energy per bit, pJ *)
  e_buffer_pj_per_flit_cycle : float;
      (** energy burned per buffered flit per cycle it waits in a router
          queue (FIFO retention + re-arbitration) *)
  router_clock_pj_per_port2_cycle : float;
      (** clocked overhead of a router per cycle and per squared port count
          (crossbar + arbiter complexity grows quadratically with radix,
          as in the Orion router power models), charged whether or not a
          flit moves *)
  link_bandwidth : float;  (** capacity of one link, Gbit/s *)
  max_bisection_links : int;
      (** wiring-resource limit: how many links the technology lets cross
          the die bisection (global-metal budget, Section 4.2) *)
}

val cmos_180nm : t
val cmos_130nm : t
val cmos_100nm : t

val presets : t list

val find : string -> t option
(** Look up a preset by [name]. *)

val link_energy_per_bit : t -> length_mm:float -> float
(** EL_bit for a physical link of the given length, pJ, including
    repeaters: [el_bit_per_mm * length + floor(length / spacing) *
    e_repeater]. *)

val pp : Format.formatter -> t -> unit
