(** The bit-energy model of Eq. 1:

    {v Ebit(i,j) = nhops * ES_bit + (nhops - 1) * EL_bit v}

    where ES_bit is the energy of one switch traversal and EL_bit the energy
    of one link traversal (a function of the physical link length, obtained
    from the floorplan).  We take [nhops] to be the number of {e routers}
    visited along a path — every core on the path, endpoints included, has a
    router — so a path over vertices [v0; ...; vk] visits [k + 1] routers
    and crosses exactly [nhops - 1 = k] physical links, which is the
    convention under which Eq. 1 is exact with per-link lengths. *)

val hop_count : int list -> int
(** Link hops of a vertex path ([length - 1]).
    @raise Invalid_argument on paths with fewer than 2 vertices. *)

val path_bit_energy : tech:Technology.t -> fp:Floorplan.t -> int list -> float
(** [path_bit_energy ~tech ~fp path] is the energy (pJ) to move one bit
    along [path]: [(k + 1) * es_bit + Σ_i EL_bit(l_i)] for the [k] physical
    links of the path, with lengths taken from the floorplan.
    @raise Invalid_argument on paths with fewer than 2 vertices. *)

val edge_energy :
  tech:Technology.t -> fp:Floorplan.t -> volume_bits:int -> int list -> float
(** Energy (pJ) to transport [volume_bits] bits along a path:
    [volume * path_bit_energy]. *)

val uniform_bit_energy : tech:Technology.t -> nhops:int -> link_length_mm:float -> float
(** Eq. 1 with a uniform link length (regular grids): [nhops * es_bit +
    (nhops - 1) * EL_bit(link_length)], where [nhops] counts routers.
    @raise Invalid_argument if [nhops < 1]. *)
