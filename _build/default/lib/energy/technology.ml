type t = {
  name : string;
  feature_nm : int;
  voltage : float;
  frequency_mhz : float;
  es_bit : float;
  el_bit_per_mm : float;
  repeater_spacing_mm : float;
  e_repeater : float;
  e_buffer_pj_per_flit_cycle : float;
  router_clock_pj_per_port2_cycle : float;
  link_bandwidth : float;
  max_bisection_links : int;
}

let cmos_180nm =
  {
    name = "cmos-180nm";
    feature_nm = 180;
    voltage = 1.8;
    frequency_mhz = 100.0;
    es_bit = 1.2;
    el_bit_per_mm = 0.12;
    repeater_spacing_mm = 2.5;
    e_repeater = 0.18;
    e_buffer_pj_per_flit_cycle = 0.35;
    router_clock_pj_per_port2_cycle = 0.6;
    link_bandwidth = 3.2;
    max_bisection_links = 16;
  }

let cmos_130nm =
  {
    name = "cmos-130nm";
    feature_nm = 130;
    voltage = 1.3;
    frequency_mhz = 250.0;
    es_bit = 0.55;
    el_bit_per_mm = 0.06;
    repeater_spacing_mm = 1.8;
    e_repeater = 0.08;
    e_buffer_pj_per_flit_cycle = 0.16;
    router_clock_pj_per_port2_cycle = 0.27;
    link_bandwidth = 8.0;
    max_bisection_links = 24;
  }

let cmos_100nm =
  {
    name = "cmos-100nm";
    feature_nm = 100;
    voltage = 1.0;
    frequency_mhz = 500.0;
    es_bit = 0.24;
    el_bit_per_mm = 0.025;
    repeater_spacing_mm = 1.2;
    e_repeater = 0.035;
    e_buffer_pj_per_flit_cycle = 0.07;
    router_clock_pj_per_port2_cycle = 0.12;
    link_bandwidth = 16.0;
    max_bisection_links = 32;
  }

let presets = [ cmos_180nm; cmos_130nm; cmos_100nm ]

let find name = List.find_opt (fun t -> t.name = name) presets

let link_energy_per_bit t ~length_mm =
  if length_mm < 0. then invalid_arg "Technology.link_energy_per_bit: negative length";
  let repeaters = int_of_float (length_mm /. t.repeater_spacing_mm) in
  (t.el_bit_per_mm *. length_mm) +. (float_of_int repeaters *. t.e_repeater)

let pp ppf t =
  Format.fprintf ppf "%s (%dnm, %.1fV, %.0fMHz, ES=%.2fpJ, EL=%.2fpJ/mm)" t.name
    t.feature_nm t.voltage t.frequency_mhz t.es_bit t.el_bit_per_mm
