(** Graphviz DOT export for inspection of ACGs and synthesized topologies. *)

val to_dot :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?edge_label:(int -> int -> string option) ->
  ?undirected:bool ->
  Digraph.t ->
  string
(** [to_dot g] renders [g] as a DOT digraph.  With [~undirected:true], pairs
    of antiparallel edges are merged into a single undirected edge and the
    output is a DOT [graph]. *)

val write_file : path:string -> string -> unit
(** Writes a DOT string to a file. *)
