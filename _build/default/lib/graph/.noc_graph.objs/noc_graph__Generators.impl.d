lib/graph/generators.ml: Array Digraph Hashtbl List Noc_util
