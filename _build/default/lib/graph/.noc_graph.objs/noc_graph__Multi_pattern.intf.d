lib/graph/multi_pattern.mli: Digraph Vf2
