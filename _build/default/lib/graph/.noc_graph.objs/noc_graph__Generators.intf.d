lib/graph/generators.mli: Digraph Noc_util
