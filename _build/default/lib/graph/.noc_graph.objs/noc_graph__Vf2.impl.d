lib/graph/vf2.ml: Array Digraph Hashtbl Int List Unix
