lib/graph/digraph.mli: Format Map Set
