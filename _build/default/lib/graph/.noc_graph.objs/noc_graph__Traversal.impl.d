lib/graph/traversal.ml: Array Digraph Hashtbl Int List Noc_util Queue Stack
