lib/graph/traversal.mli: Digraph Noc_util
