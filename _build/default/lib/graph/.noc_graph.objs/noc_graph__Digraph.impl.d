lib/graph/digraph.ml: Format Int List Map Set
