lib/graph/multi_pattern.ml: Array Digraph Hashtbl Int List Printf Vf2
