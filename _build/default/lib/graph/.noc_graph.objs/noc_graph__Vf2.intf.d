lib/graph/vf2.mli: Digraph
