let to_dot ?(name = "g") ?vertex_label ?edge_label ?(undirected = false) g =
  let buf = Buffer.create 1024 in
  let keyword = if undirected then "graph" else "digraph" in
  let arrow = if undirected then "--" else "->" in
  Buffer.add_string buf (Printf.sprintf "%s %s {\n" keyword name);
  List.iter
    (fun v ->
      match vertex_label with
      | Some f -> Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" v (f v))
      | None -> Buffer.add_string buf (Printf.sprintf "  %d;\n" v))
    (Digraph.vertex_list g);
  let emit u v =
    let label =
      match edge_label with
      | Some f -> ( match f u v with Some s -> Printf.sprintf " [label=\"%s\"]" s | None -> "")
      | None -> ""
    in
    Buffer.add_string buf (Printf.sprintf "  %d %s %d%s;\n" u arrow v label)
  in
  if undirected then begin
    let seen = Hashtbl.create 64 in
    Digraph.iter_edges
      (fun u v ->
        let key = (min u v, max u v) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key true;
          emit (fst key) (snd key)
        end)
      g
  end
  else Digraph.iter_edges emit g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)
