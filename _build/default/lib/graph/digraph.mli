(** Persistent directed graphs over integer vertices.

    This is the structural substrate of the whole project: Application
    Characterization Graphs, library primitives, implementation graphs and
    synthesized topologies are all values of {!t} (edge attributes such as
    communication volume live in separate maps keyed by {!Edge_map}).

    The module implements the graph algebra of the paper (Definitions 1 and
    2): {!union} is graph sum, {!diff_edges} is the remaining graph after a
    matched subgraph is subtracted.  Graphs are persistent so the
    branch-and-bound search can keep many partially-decomposed graphs alive
    with structural sharing. *)

module Vset : Set.S with type elt = int
module Vmap : Map.S with type key = int

module Edge : sig
  type t = int * int
  (** Directed edge [(src, dst)]. *)

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Edge_set : Set.S with type elt = Edge.t
module Edge_map : Map.S with type key = Edge.t

type t
(** A directed graph.  Self-loops are rejected; parallel edges do not
    exist (the edge set is a set). *)

val empty : t

val is_empty : t -> bool
(** [is_empty g] holds when [g] has no vertices. *)

val has_no_edges : t -> bool

val add_vertex : t -> int -> t

val add_edge : t -> int -> int -> t
(** [add_edge g u v] adds vertices [u], [v] and the edge [u -> v].
    @raise Invalid_argument on a self-loop. *)

val add_edge_pair : t -> int -> int -> t
(** [add_edge_pair g u v] adds both [u -> v] and [v -> u]. *)

val remove_edge : t -> int -> int -> t
(** Removes the edge if present; vertices are kept. *)

val remove_vertex : t -> int -> t
(** Removes a vertex and all incident edges. *)

val mem_vertex : t -> int -> bool
val mem_edge : t -> int -> int -> bool

val succ : t -> int -> Vset.t
(** Successors; empty set for unknown vertices. *)

val pred : t -> int -> Vset.t

val out_degree : t -> int -> int
val in_degree : t -> int -> int
val degree : t -> int -> int
(** [degree g v] is in-degree + out-degree. *)

val vertices : t -> Vset.t
val vertex_list : t -> int list
val num_vertices : t -> int
val num_edges : t -> int

val edges : t -> Edge.t list
(** All edges in lexicographic order. *)

val edge_set : t -> Edge_set.t

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (int -> int -> unit) -> t -> unit
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val of_edges : ?vertices:int list -> Edge.t list -> t
(** Builds a graph from an edge list, adding the optional isolated
    [vertices] as well. *)

val union : t -> t -> t
(** Graph sum (Definition 1): vertex and edge sets are unioned. *)

val diff_edges : t -> Edge.t list -> t
(** [diff_edges g es] is the remaining graph of Definition 2: the edges
    [es] are removed, every vertex is kept. *)

val induced : t -> Vset.t -> t
(** Subgraph induced by a vertex set. *)

val map_vertices : (int -> int) -> t -> t
(** Relabels vertices; the function must be injective on [vertices g].
    @raise Invalid_argument if two vertices collide. *)

val reverse : t -> t
(** Reverses every edge. *)

val undirected_closure : t -> t
(** Adds the reverse of every edge (symmetric closure). *)

val undirected_edge_count : t -> int
(** Number of unordered vertex pairs connected by at least one edge. *)

val equal : t -> t -> bool
(** Same vertex set and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: [{vertices=...; edges=...}]. *)
