module Vset = Set.Make (Int)
module Vmap = Map.Make (Int)

module Edge = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

  let pp ppf (u, v) = Format.fprintf ppf "%d->%d" u v
end

module Edge_set = Set.Make (Edge)
module Edge_map = Map.Make (Edge)

type t = {
  verts : Vset.t;
  succ : Vset.t Vmap.t;
  pred : Vset.t Vmap.t;
  n_edges : int;
}

let empty = { verts = Vset.empty; succ = Vmap.empty; pred = Vmap.empty; n_edges = 0 }

let is_empty g = Vset.is_empty g.verts

let has_no_edges g = g.n_edges = 0

let mem_vertex g v = Vset.mem v g.verts

let succ g v = match Vmap.find_opt v g.succ with Some s -> s | None -> Vset.empty

let pred g v = match Vmap.find_opt v g.pred with Some s -> s | None -> Vset.empty

let mem_edge g u v = Vset.mem v (succ g u)

let add_vertex g v = if mem_vertex g v then g else { g with verts = Vset.add v g.verts }

let add_edge g u v =
  if u = v then invalid_arg "Digraph.add_edge: self-loop";
  if mem_edge g u v then add_vertex (add_vertex g u) v
  else
    {
      verts = Vset.add u (Vset.add v g.verts);
      succ = Vmap.add u (Vset.add v (succ g u)) g.succ;
      pred = Vmap.add v (Vset.add u (pred g v)) g.pred;
      n_edges = g.n_edges + 1;
    }

let add_edge_pair g u v = add_edge (add_edge g u v) v u

let remove_edge g u v =
  if not (mem_edge g u v) then g
  else
    {
      g with
      succ = Vmap.add u (Vset.remove v (succ g u)) g.succ;
      pred = Vmap.add v (Vset.remove u (pred g v)) g.pred;
      n_edges = g.n_edges - 1;
    }

let remove_vertex g v =
  if not (mem_vertex g v) then g
  else
    let g = Vset.fold (fun w acc -> remove_edge acc v w) (succ g v) g in
    let g = Vset.fold (fun w acc -> remove_edge acc w v) (pred g v) g in
    {
      g with
      verts = Vset.remove v g.verts;
      succ = Vmap.remove v g.succ;
      pred = Vmap.remove v g.pred;
    }

let out_degree g v = Vset.cardinal (succ g v)
let in_degree g v = Vset.cardinal (pred g v)
let degree g v = out_degree g v + in_degree g v

let vertices g = g.verts
let vertex_list g = Vset.elements g.verts
let num_vertices g = Vset.cardinal g.verts
let num_edges g = g.n_edges

let fold_edges f g acc =
  Vmap.fold (fun u vs acc -> Vset.fold (fun v acc -> f u v acc) vs acc) g.succ acc

let iter_edges f g = fold_edges (fun u v () -> f u v) g ()

let fold_vertices f g acc = Vset.fold f g.verts acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let edge_set g = fold_edges (fun u v acc -> Edge_set.add (u, v) acc) g Edge_set.empty

let of_edges ?(vertices = []) es =
  let g = List.fold_left add_vertex empty vertices in
  List.fold_left (fun g (u, v) -> add_edge g u v) g es

let union a b =
  let g = Vset.fold (fun v acc -> add_vertex acc v) b.verts a in
  fold_edges (fun u v acc -> add_edge acc u v) b g

let diff_edges g es = List.fold_left (fun g (u, v) -> remove_edge g u v) g es

let induced g vs =
  let keep = Vset.inter vs g.verts in
  let base = Vset.fold (fun v acc -> add_vertex acc v) keep empty in
  fold_edges
    (fun u v acc -> if Vset.mem u keep && Vset.mem v keep then add_edge acc u v else acc)
    g base

let map_vertices f g =
  let base =
    Vset.fold
      (fun v acc ->
        let v' = f v in
        if mem_vertex acc v' then invalid_arg "Digraph.map_vertices: not injective"
        else add_vertex acc v')
      g.verts empty
  in
  fold_edges (fun u v acc -> add_edge acc (f u) (f v)) g base

let reverse g =
  let base = Vset.fold (fun v acc -> add_vertex acc v) g.verts empty in
  fold_edges (fun u v acc -> add_edge acc v u) g base

let undirected_closure g = fold_edges (fun u v acc -> add_edge acc v u) g g

let undirected_edge_count g =
  let pairs =
    fold_edges
      (fun u v acc -> Edge_set.add (if u < v then (u, v) else (v, u)) acc)
      g Edge_set.empty
  in
  Edge_set.cardinal pairs

let equal a b = Vset.equal a.verts b.verts && Edge_set.equal (edge_set a) (edge_set b)

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>{vertices=[%a];@ edges=[%a]}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Format.pp_print_int)
    (vertex_list g)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") Edge.pp)
    (edges g)
