(** Packets traversing the simulated network. *)

type t = {
  id : int;
  src : int;
  dst : int;
  size_flits : int;  (** serialization length in flits *)
  tag : int;  (** application-level tag (opaque to the network) *)
  payload : Bytes.t;  (** application payload (opaque to the network) *)
  route : int array;  (** precomputed vertex path, [route.(0) = src] *)
  injected_at : int;
}

val hops : t -> int
(** Number of physical links the packet crosses. *)

val pp : Format.formatter -> t -> unit
