(** Classic synthetic traffic patterns for NoC evaluation.

    Each pattern is a set of (source, destination) flows over row-major
    grid node ids (node at row r, column c of an R×C grid is
    [r*C + c + 1]), the standard benchmark family (transpose, bit
    reversal, bit complement, hotspot) used to stress interconnects beyond
    the application-specific ACGs. *)

val transpose : rows:int -> cols:int -> (int * int) list
(** Node (r, c) sends to node (c, r).  Requires [rows = cols]; nodes on
    the diagonal send nothing. @raise Invalid_argument otherwise. *)

val bit_reversal : nodes:int -> (int * int) list
(** Node with binary index b sends to the node whose index is b reversed;
    [nodes] must be a power of two.  Self-flows are dropped. *)

val bit_complement : nodes:int -> (int * int) list
(** Node i sends to node (~i) within the index width; [nodes] must be a
    power of two. *)

val hotspot : nodes:int -> target:int -> (int * int) list
(** Every node except [target] sends to [target].
    @raise Invalid_argument if the target is out of range. *)

val shuffle : nodes:int -> (int * int) list
(** Perfect shuffle: index rotated left by one bit; [nodes] must be a
    power of two.  Self-flows are dropped. *)

val to_acg : ?volume:int -> ?bandwidth:float -> (int * int) list -> Noc_core.Acg.t
(** Flows as a uniform ACG (default volume 8, bandwidth 0.1). *)
