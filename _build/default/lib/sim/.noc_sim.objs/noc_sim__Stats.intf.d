lib/sim/stats.mli: Format Network Noc_energy
