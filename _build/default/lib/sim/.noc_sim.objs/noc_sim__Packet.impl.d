lib/sim/packet.ml: Array Bytes Format
