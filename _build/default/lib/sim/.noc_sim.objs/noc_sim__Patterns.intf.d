lib/sim/patterns.mli: Noc_core
