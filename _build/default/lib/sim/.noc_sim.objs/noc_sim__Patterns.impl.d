lib/sim/patterns.ml: Fun List Noc_core Noc_graph Printf
