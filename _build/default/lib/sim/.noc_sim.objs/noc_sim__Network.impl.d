lib/sim/network.ml: Array Bytes Hashtbl Int List Noc_core Noc_graph Noc_util Option Packet Printf Queue
