lib/sim/packet.mli: Bytes Format
