lib/sim/sweep.mli: Noc_core Noc_util
