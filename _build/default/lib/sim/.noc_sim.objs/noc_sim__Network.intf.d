lib/sim/network.mli: Bytes Noc_core Noc_graph Noc_util Packet
