lib/sim/traffic.ml: List Network Noc_core Noc_graph Noc_util
