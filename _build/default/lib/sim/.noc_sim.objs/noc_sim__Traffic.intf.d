lib/sim/traffic.mli: Network Noc_core Noc_util
