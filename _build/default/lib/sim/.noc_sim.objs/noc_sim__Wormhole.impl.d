lib/sim/wormhole.ml: Array Bytes Hashtbl List Network Noc_core Noc_graph Option Packet Printf Stats
