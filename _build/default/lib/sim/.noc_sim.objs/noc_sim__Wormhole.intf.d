lib/sim/wormhole.mli: Bytes Noc_core Noc_graph Packet Stats
