lib/sim/stats.ml: Format List Network Noc_core Noc_energy Noc_graph Packet
