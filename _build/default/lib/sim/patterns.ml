let check_pow2 name nodes =
  if nodes <= 0 || nodes land (nodes - 1) <> 0 then
    invalid_arg (Printf.sprintf "Patterns.%s: nodes must be a power of two" name)

let bits nodes =
  let rec go acc k = if k >= nodes then acc else go (acc + 1) (k * 2) in
  go 0 1

let transpose ~rows ~cols =
  if rows <> cols then invalid_arg "Patterns.transpose: need a square grid";
  let id r c = (r * cols) + c + 1 in
  List.concat
    (List.init rows (fun r ->
         List.filter_map
           (fun c -> if r <> c then Some (id r c, id c r) else None)
           (List.init cols Fun.id)))

let bit_reversal ~nodes =
  check_pow2 "bit_reversal" nodes;
  let w = bits nodes in
  let reverse i =
    let r = ref 0 in
    for b = 0 to w - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (w - 1 - b))
    done;
    !r
  in
  List.filter_map
    (fun i ->
      let j = reverse i in
      if i <> j then Some (i + 1, j + 1) else None)
    (List.init nodes Fun.id)

let bit_complement ~nodes =
  check_pow2 "bit_complement" nodes;
  let mask = nodes - 1 in
  List.filter_map
    (fun i ->
      let j = lnot i land mask in
      if i <> j then Some (i + 1, j + 1) else None)
    (List.init nodes Fun.id)

let hotspot ~nodes ~target =
  if target < 1 || target > nodes then invalid_arg "Patterns.hotspot: target out of range";
  List.filter_map
    (fun i ->
      let v = i + 1 in
      if v <> target then Some (v, target) else None)
    (List.init nodes Fun.id)

let shuffle ~nodes =
  check_pow2 "shuffle" nodes;
  let w = bits nodes in
  let mask = nodes - 1 in
  List.filter_map
    (fun i ->
      let j = ((i lsl 1) lor (i lsr (w - 1))) land mask in
      if i <> j then Some (i + 1, j + 1) else None)
    (List.init nodes Fun.id)

let to_acg ?(volume = 8) ?(bandwidth = 0.1) flows =
  Noc_core.Acg.uniform ~volume ~bandwidth (Noc_graph.Digraph.of_edges flows)
