module D = Noc_graph.Digraph
module Edge_map = D.Edge_map

type config = {
  num_vcs : int;
  flit_bits : int;
}

let default_config = { num_vcs = 2; flit_bits = 8 }

type delivery = { packet : Packet.t; delivered_at : int }

(* A worm whose flits occupy the consecutive channel window [lo, head_ch]
   of its route (lo = 0 while flits are still entering at the source). *)
type worm = {
  packet : Packet.t;
  channels : D.Edge.t array;  (* c_0 .. c_{h-1} *)
  vcs : int array;  (* virtual channel used on each c_i *)
  mutable head_ch : int;  (* -1 before the head enters c_0 *)
  mutable src_remaining : int;
  mutable sink_received : int;
  mutable delivered : bool;
}

type t = {
  arch : Noc_core.Synthesis.t;
  cfg : config;
  mutable cycle : int;
  mutable next_id : int;
  (* (channel, vc) -> id of the worm holding it *)
  holders : (D.Edge.t * int, int) Hashtbl.t;
  mutable worms : worm list;  (* active, oldest first *)
  mutable delivered_rev : delivery list;
  mutable flit_hops : int;
  mutable link_flits : int Edge_map.t;
}

let create ?(config = default_config) arch =
  if config.num_vcs < 1 then invalid_arg "Wormhole.create: num_vcs must be >= 1";
  if config.flit_bits < 1 then invalid_arg "Wormhole.create: flit_bits must be >= 1";
  {
    arch;
    cfg = config;
    cycle = 0;
    next_id = 0;
    holders = Hashtbl.create 64;
    worms = [];
    delivered_rev = [];
    flit_hops = 0;
    link_flits = Edge_map.empty;
  }

let now t = t.cycle

(* channels of a vertex path *)
let channels_of path =
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | [ _ ] | [] -> []
  in
  Array.of_list (go path)

(* increasing-channel-order virtual channel discipline, capped at the
   available VCs (Noc_core.Deadlock.vc_of_hop's rule, computed locally so
   the engine does not depend on the route being an ACG flow) *)
let vc_assignment cfg channels =
  let n = Array.length channels in
  let vcs = Array.make n 0 in
  let vc = ref 0 in
  for i = 1 to n - 1 do
    if D.Edge.compare channels.(i) channels.(i - 1) <= 0 then incr vc;
    vcs.(i) <- min !vc (cfg.num_vcs - 1)
  done;
  vcs

let inject ?(tag = 0) ?(payload = Bytes.empty) ?(size_flits = 1) t ~src ~dst =
  if size_flits < 1 then invalid_arg "Wormhole.inject: size_flits must be >= 1";
  match Noc_core.Synthesis.route t.arch ~src ~dst with
  | None -> invalid_arg (Printf.sprintf "Wormhole.inject: no route %d->%d" src dst)
  | Some path ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let packet =
        {
          Packet.id;
          src;
          dst;
          size_flits;
          tag;
          payload;
          route = Array.of_list path;
          injected_at = t.cycle;
        }
      in
      let channels = channels_of path in
      let worm =
        {
          packet;
          channels;
          vcs = vc_assignment t.cfg channels;
          head_ch = -1;
          src_remaining = size_flits;
          sink_received = 0;
          delivered = false;
        }
      in
      t.worms <- t.worms @ [ worm ];
      id

let flits_in_net w =
  w.packet.Packet.size_flits - w.src_remaining - w.sink_received

let window w =
  (* channel indices currently holding flits of this worm *)
  let flits = flits_in_net w in
  if flits = 0 then None
  else begin
    let hi = w.head_ch in
    let lo = if w.src_remaining > 0 then 0 else hi - flits + 1 in
    Some (lo, hi)
  end

let step t =
  t.cycle <- t.cycle + 1;
  let used = Hashtbl.create 32 in
  let h_of w = Array.length w.channels in
  let try_advance w =
    if w.delivered then false
    else begin
      let h = h_of w in
      let draining = w.head_ch = h - 1 in
      (* the new window after a hypothetical advance *)
      let new_hi = if draining then h - 1 else w.head_ch + 1 in
      let entering = w.src_remaining > 0 in
      let sink_inc = if draining then 1 else 0 in
      let new_flits =
        w.packet.Packet.size_flits
        - (w.src_remaining - if entering then 1 else 0)
        - (w.sink_received + sink_inc)
      in
      if new_flits = 0 && sink_inc = 1 then begin
        (* the last flit exits the network: no link is used, the worm
           completes *)
        (match window w with
        | Some (lo, hi) ->
            for i = lo to hi do
              Hashtbl.remove t.holders (w.channels.(i), w.vcs.(i))
            done
        | None -> ());
        w.sink_received <- w.sink_received + 1;
        w.delivered <- true;
        t.delivered_rev <- { packet = w.packet; delivered_at = t.cycle } :: t.delivered_rev;
        true
      end
      else begin
        let new_lo =
          if w.src_remaining - (if entering then 1 else 0) > 0 then 0
          else new_hi - new_flits + 1
        in
        (* (a) a free virtual channel on the next link, when entering one *)
        let vc_ok =
          if draining then true
          else begin
            let key = (w.channels.(new_hi), w.vcs.(new_hi)) in
            match Hashtbl.find_opt t.holders key with
            | None -> true
            | Some id -> id = w.packet.Packet.id
          end
        in
        (* (b) every link of the new window is unused this cycle *)
        let links_ok =
          vc_ok
          &&
          let ok = ref true in
          for i = new_lo to new_hi do
            if Hashtbl.mem used w.channels.(i) then ok := false
          done;
          !ok
        in
        if not links_ok then false
        else begin
          (* commit: lock links, acquire/release VCs, shift flits *)
          for i = new_lo to new_hi do
            Hashtbl.replace used w.channels.(i) true;
            t.flit_hops <- t.flit_hops + 1;
            t.link_flits <-
              Edge_map.add
                w.channels.(i)
                (1 + Option.value ~default:0 (Edge_map.find_opt w.channels.(i) t.link_flits))
                t.link_flits
          done;
          if not draining then
            Hashtbl.replace t.holders (w.channels.(new_hi), w.vcs.(new_hi))
              w.packet.Packet.id;
          (match window w with
          | Some (lo, _) ->
              for i = lo to new_lo - 1 do
                Hashtbl.remove t.holders (w.channels.(i), w.vcs.(i))
              done
          | None -> ());
          w.head_ch <- new_hi;
          if entering then w.src_remaining <- w.src_remaining - 1;
          w.sink_received <- w.sink_received + sink_inc;
          true
        end
      end
    end
  in
  (* round-robin arbitration: rotate the starting worm each cycle *)
  let active = List.filter (fun w -> not w.delivered) t.worms in
  let n = List.length active in
  if n > 0 then begin
    let arr = Array.of_list active in
    let start = t.cycle mod n in
    let progressed = ref false in
    for k = 0 to n - 1 do
      let w = arr.((start + k) mod n) in
      if try_advance w then progressed := true
    done;
    ignore !progressed
  end;
  t.worms <- List.filter (fun w -> not w.delivered) t.worms

let pending t = List.length t.worms

let run_until_idle ?(max_cycles = 1_000_000) t =
  let start = t.cycle in
  let rec go () =
    if t.worms = [] then `Idle
    else if t.cycle - start >= max_cycles then `Limit
    else begin
      let before =
        List.map (fun w -> (w.head_ch, w.src_remaining, w.sink_received)) t.worms
      in
      step t;
      let after =
        List.map (fun w -> (w.head_ch, w.src_remaining, w.sink_received)) t.worms
      in
      (* the state is purely a function of worm positions and holds; if
         nothing moved and nothing was delivered, it never will *)
      if t.worms <> [] && List.length before = List.length after && before = after then
        `Deadlock
      else go ()
    end
  in
  go ()

let deliveries t = List.rev t.delivered_rev

let flit_hops t = t.flit_hops

let link_flits t = t.link_flits

let summary t =
  Stats.summarize
    (List.map
       (fun { packet; delivered_at } -> { Network.packet; delivered_at })
       (deliveries t))
