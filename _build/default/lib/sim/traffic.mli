(** Synthetic traffic generation.

    Flows mirror the ACG: each ACG edge becomes a flow whose injection rate
    is proportional to its bandwidth requirement.  Injection is Bernoulli
    per cycle (a discrete Poisson-like process), deterministic under the
    given PRNG. *)

type flow = { src : int; dst : int; size_flits : int; rate : float }
(** [rate] = expected injections per cycle, in [0, 1]. *)

val flows_of_acg : ?size_flits:int -> rate_scale:float -> Noc_core.Acg.t -> flow list
(** One flow per ACG edge with [rate = rate_scale * b(e) / max_b] (all
    zero-bandwidth edges get [rate_scale] — uniform load).  [size_flits]
    defaults to 1. *)

val run :
  rng:Noc_util.Prng.t ->
  net:Network.t ->
  flows:flow list ->
  cycles:int ->
  unit ->
  Network.delivery list
(** Drives the network for [cycles] cycles of random injection, then lets
    in-flight packets drain (bounded), returning all deliveries of the
    run. *)

val offered_load : flow list -> float
(** Sum of flow rates: expected packets injected per cycle. *)
