type t = {
  id : int;
  src : int;
  dst : int;
  size_flits : int;
  tag : int;
  payload : Bytes.t;
  route : int array;
  injected_at : int;
}

let hops t = Array.length t.route - 1

let pp ppf t =
  Format.fprintf ppf "pkt#%d %d->%d (%d flits, tag %d, t=%d)" t.id t.src t.dst
    t.size_flits t.tag t.injected_at
