(** Flit-level wormhole switching with virtual channels.

    The store-and-forward engine of {!Network} buffers whole packets per
    hop; real NoC prototypes of the paper's era (and its FPGA prototype's
    "packet switching") pipeline {e flits} through the network in wormhole
    fashion: the head flit reserves a virtual channel on each link it
    enters, body flits stream behind it, and the whole worm stalls in place
    — holding its channels — whenever the head blocks.  This engine models
    exactly that, with the textbook one-flit-per-VC buffer abstraction:

    - a packet of [n] flits occupies up to [n] consecutive channels of its
      (fixed) route;
    - each physical channel carries at most one flit per cycle (the VCs
      time-share the link);
    - a worm advances in lockstep — every flit moves one slot — when (a)
      its head can enter the next channel on a free virtual channel (or the
      sink consumes), and (b) it wins the link for every channel it
      occupies this cycle; otherwise it stalls in place;
    - virtual channels are allocated with the increasing-channel-order
      discipline of {!Noc_core.Deadlock.vc_of_hop}, capped at
      [num_vcs - 1].

    Because stalled worms hold their channels, routes with a cyclic channel
    dependency graph genuinely deadlock when [num_vcs] is too small —
    {!run_until_idle} returns [`Deadlock] — and become live again with the
    virtual channels {!Noc_core.Deadlock.analyze} prescribes.  The test
    suite demonstrates both outcomes on a wrap-around ring. *)

type config = {
  num_vcs : int;  (** virtual channels per physical link, >= 1 *)
  flit_bits : int;
}

val default_config : config
(** [num_vcs = 2], [flit_bits = 8]. *)

type delivery = { packet : Packet.t; delivered_at : int }

type t

val create : ?config:config -> Noc_core.Synthesis.t -> t

val now : t -> int

val inject :
  ?tag:int -> ?payload:Bytes.t -> ?size_flits:int -> t -> src:int -> dst:int -> int
(** Queues a worm at its source at the current cycle; returns the packet
    id.  @raise Invalid_argument if the architecture has no route. *)

val step : t -> unit

val pending : t -> int

val run_until_idle : ?max_cycles:int -> t -> [ `Idle | `Deadlock | `Limit ]
(** [`Deadlock] is returned when worms remain but none has advanced for a
    full topology-diameter's worth of cycles — with fixed routes and
    in-place stalling this is a genuine circular wait.  [`Limit] means the
    cycle budget ran out while progress was still being made. *)

val deliveries : t -> delivery list

val flit_hops : t -> int
(** Total flit-link traversals (for energy accounting, compatible with
    {!Stats}-style counting). *)

val link_flits : t -> int Noc_graph.Digraph.Edge_map.t

val summary : t -> Stats.summary
(** Convenience: {!Stats.summarize} over a compatible delivery view. *)
