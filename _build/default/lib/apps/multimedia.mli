(** Multimedia SoC benchmark ACGs.

    The application class that motivated application-specific NoC synthesis
    (the paper's introduction: "typical SoCs ... consist of a number of
    heterogeneous devices such as CPU or DSP cores, embedded memory and
    application specific components").  Two classic task graphs are
    provided, adapted from the published Video Object Plane Decoder and
    MPEG-4 decoder benchmarks used throughout the NoC-synthesis literature
    (Bertozzi et al., Murali & De Micheli): core counts and the traffic
    structure match the published graphs; bandwidths are the commonly
    quoted MB/s figures, converted to Gbit/s, and per-iteration volumes are
    scaled proportionally.

    Both graphs are hub-and-pipeline shaped — long processing pipelines
    plus memory hubs — the regime where customized topologies beat
    meshes. *)

val vopd_names : (int * string) list
(** Core id -> name for the 12-core VOPD. *)

val vopd : unit -> Noc_core.Acg.t
(** The Video Object Plane Decoder ACG (12 cores, 14 flows). *)

val mpeg4_names : (int * string) list
(** Core id -> name for the 12-core MPEG-4 decoder. *)

val mpeg4 : unit -> Noc_core.Acg.t
(** The MPEG-4 decoder ACG: a strong SDRAM hub plus peripheral flows
    (12 cores). *)

val name_of : (int * string) list -> int -> string
(** Lookup with a ["core<i>"] fallback. *)
