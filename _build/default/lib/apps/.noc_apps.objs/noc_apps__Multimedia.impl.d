lib/apps/multimedia.ml: List Noc_core Printf
