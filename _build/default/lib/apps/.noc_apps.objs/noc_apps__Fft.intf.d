lib/apps/fft.mli: Complex Noc_core Noc_sim
