lib/apps/fft.ml: Array Bytes Complex Int64 List Noc_core Noc_graph Noc_sim
