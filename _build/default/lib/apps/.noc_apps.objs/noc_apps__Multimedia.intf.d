lib/apps/multimedia.mli: Noc_core
