(** Radix-2 FFT, sequential reference and 16-node distributed version.

    The paper closes by noting that AES "is far from demonstrating the
    benefits of a networked implementation" because of its modest
    communication needs; the FFT butterfly is the canonical
    communication-dominated kernel, so it makes a natural second workload
    for the synthesized architectures.  Each of the 16 nodes holds one
    complex sample; stage s of the decimation-in-frequency butterfly
    exchanges values between nodes whose indices differ in bit s — the
    hypercube pattern.  The distributed computation runs cycle-accurately
    on any architecture that routes the FFT's flows and is validated
    against the sequential FFT. *)

val dft : Complex.t array -> Complex.t array
(** O(n²) discrete Fourier transform (the ground truth for tests). *)

val fft : Complex.t array -> Complex.t array
(** Radix-2 decimation-in-frequency FFT; the input length must be a power
    of two.  @raise Invalid_argument otherwise. *)

val acg : unit -> Noc_core.Acg.t
(** The 16-point FFT's communication pattern: for every stage distance
    d ∈ {8, 4, 2, 1}, node i exchanges one complex sample (128 bits) with
    node (i xor d); node ids are 1-based. *)

type result = {
  output : Complex.t array;
  cycles : int;
  summary : Noc_sim.Stats.summary;
  net : Noc_sim.Network.t;
}

val distributed :
  ?config:Noc_sim.Network.config ->
  ?butterfly_cycles:int ->
  arch:Noc_core.Synthesis.t ->
  Complex.t array ->
  result
(** Runs a 16-point FFT on the architecture (which must route all flows of
    {!acg}); [butterfly_cycles] (default 2) of local arithmetic per stage.
    The output is in natural order and numerically identical to {!fft}.
    @raise Invalid_argument unless the input has exactly 16 samples. *)
