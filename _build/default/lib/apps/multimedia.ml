(* Bandwidths below are MB/s figures as commonly quoted for these
   benchmarks; volume = bits communicated per decoded macroblock iteration,
   scaled as bandwidth * 8 (so relative weights match the bandwidths). *)

let make_acg edges =
  let quads =
    List.map (fun (u, v, mbps) -> (u, v, mbps * 8, float_of_int mbps *. 8.0 /. 1000.0)) edges
  in
  Noc_core.Acg.of_weighted_edges quads

let vopd_names =
  [
    (1, "vld");
    (2, "run_le_dec");
    (3, "inv_scan");
    (4, "acdc_pred");
    (5, "stripe_mem");
    (6, "iquant");
    (7, "idct");
    (8, "up_samp");
    (9, "vop_rec");
    (10, "pad");
    (11, "vop_mem");
    (12, "arm");
  ]

let vopd () =
  make_acg
    [
      (1, 2, 70);
      (2, 3, 362);
      (3, 4, 362);
      (4, 5, 49);
      (5, 6, 27);
      (4, 6, 313);
      (6, 7, 357);
      (7, 8, 353);
      (8, 9, 300);
      (9, 10, 313);
      (10, 11, 313);
      (11, 10, 94);
      (12, 7, 16);
      (10, 12, 16);
    ]

let mpeg4_names =
  [
    (1, "vu");
    (2, "au");
    (3, "med_cpu");
    (4, "sdram");
    (5, "sram1");
    (6, "sram2");
    (7, "idct");
    (8, "up_samp");
    (9, "bab");
    (10, "risc");
    (11, "rast");
    (12, "adsp");
  ]

let mpeg4 () =
  (* the published MPEG-4 graph is dominated by the SDRAM hub: most cores
     read from and write to it *)
  make_acg
    [
      (1, 4, 190);
      (4, 1, 60);
      (2, 4, 173);
      (4, 2, 60);
      (3, 4, 500);
      (4, 3, 250);
      (5, 4, 910);
      (4, 5, 32);
      (6, 4, 670);
      (4, 6, 173);
      (7, 4, 500);
      (8, 4, 250);
      (9, 4, 205);
      (10, 4, 500);
      (4, 10, 250);
      (11, 4, 95);
      (12, 4, 80);
      (10, 11, 60);
      (1, 2, 40);
    ]

let name_of names id =
  match List.assoc_opt id names with Some n -> n | None -> Printf.sprintf "core%d" id
