lib/tgff/tgff.ml: List Noc_graph Noc_util
