lib/tgff/tgff.mli: Noc_graph Noc_util
