(** A decomposition of an ACG (Eq. 2): an ordered list of matchings plus
    the remainder graph that matched nothing in the library. *)

type t = { matchings : Matching.t list; remainder : Noc_graph.Digraph.t }

val cost : Cost.t -> Acg.t -> t -> float
(** Eq. 3: sum of matching costs plus the remainder cost. *)

val covered_edges : t -> Noc_graph.Digraph.Edge.t list
(** Union of all matchings' covered edges (with multiplicity — a valid
    decomposition covers each edge once, see {!is_valid_for}). *)

val is_valid_for : Acg.t -> t -> bool
(** The matchings cover pairwise-disjoint edge sets and, together with the
    remainder's edges, partition the ACG's edges exactly (Eq. 2). *)

val primitive_histogram : t -> (string * int) list
(** How many times each primitive name was used, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** The paper's run listing (Section 5): one matching per line with
    increasing indentation, then the remainder:

    {v 1: MGG4,   Mapping: (1 1), (2 5), (3 9), (4 13)
  1: MGG4,   Mapping: (1 2), (2 6), (3 10), (4 14)
    ...
      0: Remaining Graph: 9->3, 10->4, ... v} *)

val pp_with_cost : Cost.t -> Acg.t -> Format.formatter -> t -> unit
(** ["COST: n"] header followed by {!pp}, matching the paper's AES output. *)
