(** Communication-library design space exploration.

    Section 3 of the paper: "since the final decomposition and the run time
    of the algorithm itself depend on the primitives in the library, it is
    desirable to select the best set of graphs to be included in the
    library.  While further research is needed in this area, we construct
    our current library using ..." — this module is that further research:
    given a pool of candidate primitives and a corpus of applications, it
    selects a library greedily by marginal benefit.

    The objective is lexicographic: first the summed decomposition cost
    over the corpus, then the summed remainder edge count (so structurally
    useful but cost-neutral primitives — loops, paths, broadcasts — are
    still selected once no primitive lowers the cost further). *)

type objective = {
  total_cost : float;  (** Σ over the corpus of the decomposition cost *)
  total_remainder : int;  (** Σ of remainder edge counts *)
  elapsed_s : float;  (** Σ of search times (reported, not optimized) *)
}

val evaluate :
  ?options:Branch_bound.options ->
  library:Noc_primitives.Library.t ->
  Acg.t list ->
  objective
(** Decomposes every corpus ACG with the library. *)

val better : objective -> objective -> bool
(** [better a b] iff [a] improves on [b] lexicographically
    (cost, then remainder). *)

val greedy_select :
  ?options:Branch_bound.options ->
  ?max_size:int ->
  pool:Noc_primitives.Primitive.t list ->
  corpus:Acg.t list ->
  unit ->
  Noc_primitives.Library.t * objective
(** Starts from the empty library (everything is remainder) and repeatedly
    adds the pool primitive with the best marginal improvement, stopping
    when no primitive strictly improves the objective or [max_size]
    (default 8) primitives have been chosen.  The resulting library is
    renumbered 1..k in selection order. *)
