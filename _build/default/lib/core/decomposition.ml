module D = Noc_graph.Digraph

type t = { matchings : Matching.t list; remainder : D.t }

let cost c acg t =
  List.fold_left
    (fun acc m -> acc +. Matching.cost c acg m)
    (Cost.remainder_cost c acg t.remainder)
    t.matchings

let covered_edges t = List.concat_map (fun m -> m.Matching.covered) t.matchings

let is_valid_for acg t =
  let covered = covered_edges t in
  let covered_set = D.Edge_set.of_list covered in
  (* disjoint: no edge covered twice *)
  List.length covered = D.Edge_set.cardinal covered_set
  (* remainder and covered are disjoint *)
  && D.Edge_set.is_empty (D.Edge_set.inter covered_set (D.edge_set t.remainder))
  (* together they are exactly the ACG's edges *)
  && D.Edge_set.equal
       (D.Edge_set.union covered_set (D.edge_set t.remainder))
       (D.edge_set (Acg.graph acg))

let primitive_histogram t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let name = (Matching.primitive m).Noc_primitives.Primitive.name in
      Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    t.matchings;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iteri
    (fun i m ->
      Format.fprintf ppf "%s%a@." (String.make (i * 2) ' ') Matching.pp m)
    t.matchings;
  let indent = String.make (List.length t.matchings * 2) ' ' in
  if D.has_no_edges t.remainder then
    Format.fprintf ppf "%s0: Remaining Graph: (empty)@." indent
  else begin
    let edges =
      D.edges t.remainder
      |> List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v)
      |> String.concat ", "
    in
    Format.fprintf ppf "%s0: Remaining Graph: %s@." indent edges
  end

let pp_with_cost c acg ppf t =
  let total = cost c acg t in
  (if Float.is_integer total then Format.fprintf ppf "COST: %.0f@." total
   else Format.fprintf ppf "COST: %.2f@." total);
  pp ppf t
