(** Application Characterization Graph (Section 4).

    Vertices are cores (the application is assumed already mapped), a
    directed edge [i -> j] means core [i] sends data to core [j], annotated
    with the communication volume [v(e)] (bits) and the required bandwidth
    [b(e)] (Gbit/s). *)

type t = private {
  graph : Noc_graph.Digraph.t;
  volume : int Noc_graph.Digraph.Edge_map.t;
  bandwidth : float Noc_graph.Digraph.Edge_map.t;
}

val make :
  graph:Noc_graph.Digraph.t ->
  ?volume:int Noc_graph.Digraph.Edge_map.t ->
  ?bandwidth:float Noc_graph.Digraph.Edge_map.t ->
  unit ->
  t
(** Attributes default to volume 1 and bandwidth 0 for edges missing from
    the maps; entries for non-edges are rejected.
    @raise Invalid_argument if an attribute key is not an edge of [graph]. *)

val of_weighted_edges : (int * int * int * float) list -> t
(** [(src, dst, volume, bandwidth)] quadruples. *)

val of_tgff : Noc_tgff.Tgff.t -> t
(** Adopts a generated task graph with its volumes and bandwidths. *)

val uniform : volume:int -> bandwidth:float -> Noc_graph.Digraph.t -> t
(** Same attributes on every edge. *)

val graph : t -> Noc_graph.Digraph.t

val volume : t -> int -> int -> int
(** Volume of an edge; 0 if the edge does not exist. *)

val bandwidth : t -> int -> int -> float

val num_cores : t -> int
val num_flows : t -> int

val total_volume : t -> int

val restrict : t -> Noc_graph.Digraph.t -> t
(** [restrict acg g] keeps only the edges of [g] (which must be a subgraph
    of the ACG's graph), preserving attributes: used to carry attributes
    onto remaining graphs during decomposition. *)

val pp : Format.formatter -> t -> unit
