(** Deadlock analysis of a synthesized architecture (Section 4.5: "the
    cycles that can cause deadlock can be detected and avoided by the
    algorithm, while it is also possible to eliminate such cycles by
    introducing virtual channels").

    The standard tool is Dally & Seitz's channel dependency graph (CDG):
    one vertex per directed physical channel, and an edge from channel
    [c1 = (a,b)] to channel [c2 = (b,c)] whenever some route uses [c1]
    immediately followed by [c2].  Routing is deadlock-free if the CDG is
    acyclic. *)

type report = {
  cdg_cycle : (int * int) list option;
      (** a cycle of channels witnessing the deadlock risk, if any *)
  vcs_needed : int;
      (** virtual channels sufficient to break all cycles with the
          increasing-channel-order discipline: 1 + the maximum number of
          order inversions along any single route (1 means no VCs beyond
          the base channel are needed) *)
}

val channel_dependency_graph : Synthesis.t -> ((int * int) * (int * int)) list
(** All CDG edges (pairs of consecutive channels over all routes),
    deduplicated. *)

val analyze : Synthesis.t -> report

val is_deadlock_free : Synthesis.t -> bool
(** True iff the CDG is acyclic (no virtual channels needed). *)

val vc_of_hop : Synthesis.t -> src:int -> dst:int -> hop:int -> int option
(** Virtual channel assigned to the [hop]-th channel (0-based) of a flow's
    route under the increasing-order discipline: a packet starts on VC 0
    and moves to the next VC whenever the channel order decreases.  Within
    one VC the traversed channels are strictly increasing, so each VC's
    restricted CDG is acyclic and the whole routing is deadlock-free with
    [vcs_needed] virtual channels. *)
