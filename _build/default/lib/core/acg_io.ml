module D = Noc_graph.Digraph

let to_string acg =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# src dst volume bandwidth\n";
  D.fold_vertices
    (fun v () ->
      if D.degree (Acg.graph acg) v = 0 then
        Buffer.add_string buf (Printf.sprintf "vertex %d\n" v))
    (Acg.graph acg) ();
  D.iter_edges
    (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %g\n" u v (Acg.volume acg u v) (Acg.bandwidth acg u v)))
    (Acg.graph acg);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let quads = ref [] in
  let verts = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "vertex"; v ] -> (
            match int_of_string_opt v with
            | Some v -> verts := v :: !verts
            | None ->
                invalid_arg
                  (Printf.sprintf "Acg_io.of_string: bad vertex id on line %d" (lineno + 1)))
        | [ u; v; vol; bw ] -> (
            match
              (int_of_string_opt u, int_of_string_opt v, int_of_string_opt vol,
               float_of_string_opt bw)
            with
            | Some u, Some v, Some vol, Some bw -> quads := (u, v, vol, bw) :: !quads
            | _ ->
                invalid_arg
                  (Printf.sprintf "Acg_io.of_string: bad edge on line %d" (lineno + 1)))
        | _ ->
            invalid_arg
              (Printf.sprintf "Acg_io.of_string: expected 'src dst volume bandwidth' on line %d"
                 (lineno + 1)))
    lines;
  let acg = Acg.of_weighted_edges (List.rev !quads) in
  let graph = List.fold_left D.add_vertex (Acg.graph acg) !verts in
  Acg.make ~graph
    ~volume:
      (List.fold_left
         (fun m (u, v, vol, _) -> D.Edge_map.add (u, v) vol m)
         D.Edge_map.empty (List.rev !quads))
    ~bandwidth:
      (List.fold_left
         (fun m (u, v, _, bw) -> D.Edge_map.add (u, v) bw m)
         D.Edge_map.empty (List.rev !quads))
    ()

let write_file ~path acg =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string acg))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
