module L = Noc_primitives.Library
module D = Noc_graph.Digraph

type objective = {
  total_cost : float;
  total_remainder : int;
  elapsed_s : float;
}

let evaluate ?(options = Branch_bound.default_options) ~library corpus =
  List.fold_left
    (fun acc acg ->
      let d, stats = Branch_bound.decompose ~options ~library acg in
      {
        total_cost = acc.total_cost +. stats.Branch_bound.best_cost;
        total_remainder =
          acc.total_remainder + D.num_edges d.Decomposition.remainder;
        elapsed_s = acc.elapsed_s +. stats.Branch_bound.elapsed_s;
      })
    { total_cost = 0.; total_remainder = 0; elapsed_s = 0. }
    corpus

let better a b =
  a.total_cost < b.total_cost -. 1e-9
  || (abs_float (a.total_cost -. b.total_cost) <= 1e-9
     && a.total_remainder < b.total_remainder)

let greedy_select ?options ?(max_size = 8) ~pool ~corpus () =
  let rec grow chosen current =
    if List.length chosen >= max_size then (chosen, current)
    else begin
      let candidates =
        List.filter (fun p -> not (List.memq p chosen)) pool
      in
      let best =
        List.fold_left
          (fun acc p ->
            let library = L.make (chosen @ [ p ]) in
            let o = evaluate ?options ~library corpus in
            match acc with
            | Some (_, best_o) when not (better o best_o) -> acc
            | _ -> if better o current then Some (p, o) else acc)
          None candidates
      in
      match best with
      | Some (p, o) -> grow (chosen @ [ p ]) o
      | None -> (chosen, current)
    end
  in
  let empty_obj = evaluate ?options ~library:(L.make []) corpus in
  let chosen, obj = grow [] empty_obj in
  (L.make chosen, obj)
