lib/core/acg.mli: Format Noc_graph Noc_tgff
