lib/core/mapping.mli: Acg Noc_graph Noc_util
