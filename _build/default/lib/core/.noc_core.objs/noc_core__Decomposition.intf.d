lib/core/decomposition.mli: Acg Cost Format Matching Noc_graph
