lib/core/constraints.ml: Format List Noc_energy Noc_graph Synthesis
