lib/core/cost.ml: Acg List Noc_energy Noc_graph Noc_primitives
