lib/core/synthesis.mli: Acg Decomposition Format Noc_energy Noc_graph Noc_util
