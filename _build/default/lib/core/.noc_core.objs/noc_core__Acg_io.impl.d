lib/core/acg_io.ml: Acg Buffer Fun List Noc_graph Printf String
