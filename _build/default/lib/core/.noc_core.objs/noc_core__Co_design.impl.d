lib/core/co_design.ml: Acg Branch_bound Decomposition List Noc_energy Noc_graph Option Synthesis
