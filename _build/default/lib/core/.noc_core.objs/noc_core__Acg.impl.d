lib/core/acg.ml: Format List Noc_graph Noc_tgff Printf
