lib/core/library_design.mli: Acg Branch_bound Noc_primitives
