lib/core/decomposition.ml: Acg Cost Float Format Hashtbl List Matching Noc_graph Noc_primitives Option Printf String
