lib/core/deadlock.mli: Synthesis
