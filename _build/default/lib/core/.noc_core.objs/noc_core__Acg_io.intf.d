lib/core/acg_io.mli: Acg
