lib/core/constraints.mli: Acg Format Noc_energy Noc_util Synthesis
