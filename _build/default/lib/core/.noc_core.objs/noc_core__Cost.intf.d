lib/core/cost.mli: Acg Noc_energy Noc_graph Noc_primitives
