lib/core/deadlock.ml: Hashtbl List Noc_graph Synthesis
