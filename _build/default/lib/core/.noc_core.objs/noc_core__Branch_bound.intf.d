lib/core/branch_bound.mli: Acg Constraints Cost Decomposition Noc_energy Noc_primitives Noc_util
