lib/core/report.ml: Acg Branch_bound Constraints Deadlock Decomposition Format List Noc_graph Noc_util Synthesis
