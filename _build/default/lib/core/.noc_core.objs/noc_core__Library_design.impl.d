lib/core/library_design.ml: Branch_bound Decomposition List Noc_graph Noc_primitives
