lib/core/co_design.mli: Acg Decomposition Noc_energy Noc_graph Noc_primitives Noc_util Synthesis
