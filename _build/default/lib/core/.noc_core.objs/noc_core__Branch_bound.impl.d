lib/core/branch_bound.ml: Acg Constraints Cost Decomposition Hashtbl List Matching Noc_graph Noc_primitives Noc_util Option Synthesis Unix
