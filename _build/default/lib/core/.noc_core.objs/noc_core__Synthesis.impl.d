lib/core/synthesis.ml: Acg Decomposition Format List Matching Noc_energy Noc_graph Option Printf
