lib/core/matching.mli: Acg Cost Format Noc_graph Noc_primitives
