lib/core/report.mli: Acg Branch_bound Constraints Cost Decomposition Format Noc_energy Noc_util
