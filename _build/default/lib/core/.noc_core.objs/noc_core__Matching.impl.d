lib/core/matching.ml: Cost Format List Noc_graph Noc_primitives Printf String
