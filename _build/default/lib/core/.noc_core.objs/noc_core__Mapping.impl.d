lib/core/mapping.ml: Acg Array List Noc_graph Noc_util Printf
