(** Floorplan / decomposition co-design.

    The paper assumes core coordinates are fixed by an initial
    area-optimized floorplan and lists relaxing that assumption as future
    work (Section 6: "it is possible to relax the initial floorplan
    information and solve the optimization problem for the general case").
    This module implements the natural alternating scheme:

    + decompose the ACG under the energy cost for the current placement;
    + synthesize the customized architecture;
    + re-place the cores by simulated annealing against the {e synthesized
      links'} traffic (volume-weighted wirelength — the placement now knows
      which wires will actually exist);
    + repeat while the Eq. 5 energy keeps improving.

    Deterministic for a given PRNG. *)

type iteration = {
  round : int;  (** 1-based *)
  energy_pj : float;  (** Eq. 5 energy of the synthesized architecture *)
  wirelength : float;  (** volume-weighted wirelength of its links *)
}

type result = {
  fp : Noc_energy.Floorplan.t;  (** best placement found *)
  decomposition : Decomposition.t;  (** decomposition under that placement *)
  arch : Synthesis.t;
  energy_pj : float;
  history : iteration list;  (** all rounds, in order *)
}

val link_volume_weights :
  Acg.t -> Synthesis.t -> float Noc_graph.Digraph.Edge_map.t
(** Traffic volume carried by each directed physical link of an
    architecture (flows' volumes summed along their routes): the annealing
    objective weights. *)

val optimize :
  ?rounds:int ->
  ?anneal_iterations:int ->
  rng:Noc_util.Prng.t ->
  tech:Noc_energy.Technology.t ->
  library:Noc_primitives.Library.t ->
  fp:Noc_energy.Floorplan.t ->
  Acg.t ->
  result
(** Runs up to [rounds] (default 4) alternating rounds, annealing with
    [anneal_iterations] (default 2000) swap attempts per round, and returns
    the lowest-energy round's artifacts.  The returned history always
    contains at least one entry (the initial placement's). *)
