module D = Noc_graph.Digraph
module Edge_map = D.Edge_map

type report = {
  cdg_cycle : (int * int) list option;
  vcs_needed : int;
}

let consecutive_channel_pairs path =
  let rec chans = function
    | a :: (b :: _ as rest) -> (a, b) :: chans rest
    | [ _ ] | [] -> []
  in
  let cs = chans path in
  let rec pairs = function
    | c1 :: (c2 :: _ as rest) -> (c1, c2) :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs cs

let channel_dependency_graph (arch : Synthesis.t) =
  let seen = Hashtbl.create 64 in
  Edge_map.fold
    (fun _ path acc ->
      List.fold_left
        (fun acc dep ->
          if Hashtbl.mem seen dep then acc
          else begin
            Hashtbl.replace seen dep true;
            dep :: acc
          end)
        acc
        (consecutive_channel_pairs path))
    arch.Synthesis.routes []
  |> List.rev

let route_channels path =
  let rec chans = function
    | a :: (b :: _ as rest) -> (a, b) :: chans rest
    | [ _ ] | [] -> []
  in
  chans path

let inversions path =
  let rec count = function
    | c1 :: (c2 :: _ as rest) ->
        (if D.Edge.compare c2 c1 <= 0 then 1 else 0) + count rest
    | [ _ ] | [] -> 0
  in
  count (route_channels path)

let analyze (arch : Synthesis.t) =
  (* build the CDG as a digraph over channel ids *)
  let chan_id = Hashtbl.create 64 in
  let id_chan = Hashtbl.create 64 in
  let next = ref 1 in
  let intern c =
    match Hashtbl.find_opt chan_id c with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.replace chan_id c i;
        Hashtbl.replace id_chan i c;
        i
  in
  let deps = channel_dependency_graph arch in
  let cdg =
    List.fold_left
      (fun g (c1, c2) -> D.add_edge g (intern c1) (intern c2))
      D.empty deps
  in
  let cdg_cycle =
    match Noc_graph.Traversal.find_cycle cdg with
    | Some ids -> Some (List.map (Hashtbl.find id_chan) ids)
    | None -> None
  in
  let vcs_needed =
    1
    + Edge_map.fold
        (fun _ path acc -> max acc (inversions path))
        arch.Synthesis.routes 0
  in
  (* without any CDG cycle a single channel class suffices regardless of
     inversions *)
  let vcs_needed = if cdg_cycle = None then 1 else vcs_needed in
  { cdg_cycle; vcs_needed }

let is_deadlock_free arch = (analyze arch).cdg_cycle = None

let vc_of_hop (arch : Synthesis.t) ~src ~dst ~hop =
  match Synthesis.route arch ~src ~dst with
  | None -> None
  | Some path ->
      let chans = route_channels path in
      if hop < 0 || hop >= List.length chans then None
      else begin
        let vc = ref 0 in
        let prev = ref None in
        let result = ref 0 in
        List.iteri
          (fun i c ->
            (match !prev with
            | Some p when D.Edge.compare c p <= 0 -> incr vc
            | Some _ | None -> ());
            prev := Some c;
            if i = hop then result := !vc)
          chans;
        Some !result
      end
