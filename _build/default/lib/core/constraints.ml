module Edge_map = Noc_graph.Digraph.Edge_map

type t = {
  link_bandwidth : float;
  max_bisection_links : int;
}

type violation =
  | Link_overload of { link : int * int; demand : float; capacity : float }
  | Bisection_exceeded of { links : int; budget : int }

let of_technology (tech : Noc_energy.Technology.t) =
  {
    link_bandwidth = tech.Noc_energy.Technology.link_bandwidth;
    max_bisection_links = tech.Noc_energy.Technology.max_bisection_links;
  }

let unconstrained = { link_bandwidth = infinity; max_bisection_links = max_int }

let check ~rng c acg arch =
  let load = Synthesis.link_load acg arch in
  let overloads =
    Edge_map.fold
      (fun link demand acc ->
        if demand > c.link_bandwidth then
          Link_overload { link; demand; capacity = c.link_bandwidth } :: acc
        else acc)
      load []
  in
  let bisection =
    if c.max_bisection_links = max_int then []
    else begin
      let links = Synthesis.bisection_links ~rng arch in
      if links > c.max_bisection_links then
        [ Bisection_exceeded { links; budget = c.max_bisection_links } ]
      else []
    end
  in
  List.rev overloads @ bisection

let satisfied ~rng c acg arch = check ~rng c acg arch = []

let pp_violation ppf = function
  | Link_overload { link = u, v; demand; capacity } ->
      Format.fprintf ppf "link %d-%d overloaded: demand %.3f > capacity %.3f" u v demand
        capacity
  | Bisection_exceeded { links; budget } ->
      Format.fprintf ppf "bisection needs %d links, budget is %d" links budget
