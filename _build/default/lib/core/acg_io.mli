(** Plain-text serialization of ACGs for the command-line tools.

    Format: one directed edge per line, [src dst volume bandwidth]
    (vertex ids and volume are integers, bandwidth a float); blank lines
    and lines starting with [#] are ignored.  Isolated vertices can be
    declared with [vertex <id>]. *)

val to_string : Acg.t -> string

val of_string : string -> Acg.t
(** @raise Invalid_argument on malformed input, with a line number. *)

val write_file : path:string -> Acg.t -> unit

val read_file : string -> Acg.t
(** @raise Sys_error if the file cannot be read, [Invalid_argument] on
    malformed content. *)
