module D = Noc_graph.Digraph
module L = Noc_primitives.Library
module P = Noc_primitives.Primitive

type neutral_strategy = Branch | Greedy

type options = {
  cost : Cost.t;
  constraints : Constraints.t option;
  max_matches_per_step : int;
  timeout_s : float option;
  max_nodes : int;
  allow_early_remainder : bool;
  role_aware : bool;
  canonical_order : bool;
  neutrals : neutral_strategy;
  approx_missing : int;
}

let default_options =
  {
    cost = Cost.Edge_count;
    constraints = None;
    max_matches_per_step = 1;
    timeout_s = None;
    max_nodes = 200_000;
    allow_early_remainder = true;
    role_aware = false;
    canonical_order = true;
    neutrals = Greedy;
    approx_missing = 0;
  }

let energy_options ~tech ~fp =
  {
    default_options with
    cost = Cost.Energy { tech; fp };
    constraints = Some (Constraints.of_technology tech);
    role_aware = true;
  }

type stats = {
  nodes : int;
  matches_tried : int;
  leaves : int;
  pruned : int;
  elapsed_s : float;
  timed_out : bool;
  best_cost : float;
  constraints_met : bool;
}

(* Enumerate up to [max_matches_per_step] candidate matchings of [entry] in
   [remaining].  Without role awareness, one representative per
   covered-edge set (the remaining graph after subtraction only depends on
   that set); with role awareness the cheapest representative per set is
   kept, because under an energy cost the vertex roles decide which flows
   ride multi-hop routes. *)
let candidate_matchings ~opts ~deadline ~acg entry remaining =
  let pattern = entry.L.prim.P.repr in
  let cap = opts.max_matches_per_step in
  if opts.approx_missing > 0 then begin
    (* relaxed matching: dedup by realized edge set, keep discovery order *)
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let count = ref 0 in
    let _ =
      Noc_graph.Vf2.iter_approx ?deadline ~max_missing:opts.approx_missing ~pattern
        ~target:remaining (fun a ->
          let matching = Matching.of_approx entry ~target:remaining a in
          let key = matching.Matching.covered in
          if key = [] || Hashtbl.mem seen key then `Continue
          else begin
            Hashtbl.replace seen key true;
            acc := (matching, Matching.cost opts.cost acg matching) :: !acc;
            incr count;
            if !count >= cap then `Stop else `Continue
          end)
    in
    List.rev !acc
  end
  else if opts.role_aware then begin
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    let hard_cap = max 32 (cap * 16) in
    let count = ref 0 in
    let _ =
      Noc_graph.Vf2.iter ?deadline ~pattern ~target:remaining (fun m ->
          let matching = Matching.of_vf2 entry m in
          let c = Matching.cost opts.cost acg matching in
          let key = matching.Matching.covered in
          (match Hashtbl.find_opt groups key with
          | None ->
              Hashtbl.replace groups key (matching, c);
              order := key :: !order
          | Some (_, best_c) -> if c < best_c then Hashtbl.replace groups key (matching, c));
          incr count;
          if !count >= hard_cap then `Stop else `Continue)
    in
    let keys = List.rev !order in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | k :: rest -> Hashtbl.find groups k :: take (n - 1) rest
    in
    take cap keys
  end
  else
    Noc_graph.Vf2.find_distinct_images ?deadline ~max_matches:cap ~pattern
      ~target:remaining ()
    |> List.map (fun m ->
           let matching = Matching.of_vf2 entry m in
           (matching, Matching.cost opts.cost acg matching))

(* A library entry is a "saver" when its implementation uses strictly fewer
   physical links than the number of ACG edges it covers (gossip graphs);
   every other primitive realizes its pattern at exactly dedicated-link
   cost, so it can never make a decomposition cheaper - under [Greedy] such
   neutral primitives are excluded from branching and recovered by a
   deterministic greedy pass at each leaf, which reproduces the paper's
   listings (loops, paths, broadcasts still appear in the output) while
   keeping the search tree driven by the primitives that matter. *)
let is_saver entry =
  let p = entry.L.prim in
  float_of_int (P.impl_link_count p) < float_of_int (P.repr_edge_count p) -. 1e-9

(* Deterministic completion: repeatedly take the first matching, in library
   order, whose cost does not exceed realizing its covered edges as
   dedicated links, and subtract it.  [compiled] holds the Messmer-Bunke
   style invariant screen (Section 5.1's decision-tree suggestion), so
   impossible patterns are rejected without any VF2 search. *)
let greedy_finish ~opts ~deadline ~acg ~library ~compiled remaining =
  let rec go rem acc_rev acc_cost =
    let alive = Noc_graph.Multi_pattern.survivors compiled rem in
    let next =
      List.find_map
        (fun entry ->
          if List.mem entry.L.id alive then
            match
              Noc_graph.Vf2.find_first ?deadline ~pattern:entry.L.prim.P.repr
                ~target:rem ()
            with
            | Some m ->
                let matching = Matching.of_vf2 entry m in
                let c = Matching.cost opts.cost acg matching in
                let direct =
                  Cost.remainder_cost opts.cost acg
                    (D.of_edges matching.Matching.covered)
                in
                if c <= direct +. 1e-9 then Some (matching, c) else None
            | None -> None
          else None)
        library
    in
    match next with
    | Some (matching, c) ->
        go
          (D.diff_edges rem matching.Matching.covered)
          (matching :: acc_rev) (acc_cost +. c)
    | None -> (acc_rev, rem, acc_cost)
  in
  go remaining [] 0.0

let decompose ?(options = default_options) ?rng ~library acg =
  let opts = options in
  let rng =
    match rng with Some r -> r | None -> Noc_util.Prng.create ~seed:0x5eed
  in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) opts.timeout_s in
  let min_ratio = Cost.min_link_ratio_of_library library in
  let best = ref None in
  let best_cost = ref infinity in
  let nodes = ref 0 in
  let matches_tried = ref 0 in
  let leaves = ref 0 in
  let pruned = ref 0 in
  let timed_out = ref false in
  let budget_exhausted () =
    if !nodes >= opts.max_nodes then begin
      timed_out := true;
      true
    end
    else
      match deadline with
      | Some d when Unix.gettimeofday () > d ->
          timed_out := true;
          true
      | Some _ | None -> false
  in
  let accept matchings_rev remaining total =
    let d =
      { Decomposition.matchings = List.rev matchings_rev; remainder = remaining }
    in
    let ok =
      match opts.constraints with
      | None -> true
      | Some c ->
          Constraints.satisfied ~rng c acg (Synthesis.of_decomposition acg d)
    in
    if ok then begin
      best := Some d;
      best_cost := total
    end
  in
  (* [min_id]: when canonical ordering is on, only primitives with id >=
     min_id may be matched below this node.  Decompositions are multisets
     of matchings, so exploring them in non-decreasing library order visits
     each multiset once instead of once per permutation. *)
  let branchable =
    match opts.neutrals with
    | Branch -> library
    | Greedy -> List.filter is_saver library
  in
  let compiled =
    Noc_graph.Multi_pattern.compile
      (List.map (fun e -> (e.L.id, e.L.prim.P.repr)) library)
  in
  let rec go remaining matchings_rev cost_so_far min_id =
    incr nodes;
    if budget_exhausted () then ()
    else begin
      let alive =
        Noc_graph.Multi_pattern.survivors ~slack:opts.approx_missing compiled remaining
      in
      let matched_any = ref false in
      List.iter
        (fun entry ->
          if
            ((not opts.canonical_order) || entry.L.id >= min_id)
            && List.mem entry.L.id alive
            && not (budget_exhausted ())
          then begin
            let cands = candidate_matchings ~opts ~deadline ~acg entry remaining in
            List.iter
              (fun (matching, c) ->
                matched_any := true;
                incr matches_tried;
                if not (budget_exhausted ()) then begin
                  let new_cost = cost_so_far +. c in
                  let rem' = D.diff_edges remaining matching.Matching.covered in
                  let lb = Cost.lower_bound opts.cost acg ~min_link_ratio:min_ratio rem' in
                  if new_cost +. lb < !best_cost then
                    go rem' (matching :: matchings_rev) new_cost entry.L.id
                  else incr pruned
                end)
              cands
          end)
        branchable;
      (* leaf: either nothing matched (the paper's rule) or early stop is
         allowed; neutral primitives are re-attached greedily so loops,
         paths and broadcasts still show up in the listing *)
      if (not !matched_any) || opts.allow_early_remainder then begin
        incr leaves;
        let extra_rev, rest, extra_cost =
          match opts.neutrals with
          | Branch -> ([], remaining, 0.0)
          | Greedy -> greedy_finish ~opts ~deadline ~acg ~library ~compiled remaining
        in
        let total =
          cost_so_far +. extra_cost +. Cost.remainder_cost opts.cost acg rest
        in
        if total < !best_cost then accept (extra_rev @ matchings_rev) rest total
      end
    end
  in
  go (Acg.graph acg) [] 0.0 0;
  let elapsed = Unix.gettimeofday () -. t0 in
  let decomp, met =
    match !best with
    | Some d -> (d, true)
    | None ->
        (* no complete decomposition was accepted (constraints rejected
           them all, or the budget ran out before the first leaf): fall
           back to the all-remainder decomposition so the caller still gets
           a valid covering, and report whether it satisfies the
           constraints *)
        let d = { Decomposition.matchings = []; remainder = Acg.graph acg } in
        let met =
          match opts.constraints with
          | None -> true
          | Some c ->
              Constraints.satisfied ~rng c acg (Synthesis.of_decomposition acg d)
        in
        (d, met)
  in
  let stats =
    {
      nodes = !nodes;
      matches_tried = !matches_tried;
      leaves = !leaves;
      pruned = !pruned;
      elapsed_s = elapsed;
      timed_out = !timed_out;
      best_cost =
        (if !best = None then Cost.remainder_cost opts.cost acg (Acg.graph acg)
         else !best_cost);
      constraints_met = met;
    }
  in
  (decomp, stats)
