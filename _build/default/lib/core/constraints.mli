(** Design-constraint checking (Section 4.2): a decomposition is legal only
    if (a) every physical link can carry the aggregate bandwidth of the
    flows routed over it, and (b) the synthesized architecture's bisection
    stays within the wiring resources the technology provides for network
    links. *)

type t = {
  link_bandwidth : float;  (** capacity of one physical link, Gbit/s *)
  max_bisection_links : int;  (** wiring-resource budget across the die bisection *)
}

type violation =
  | Link_overload of { link : int * int; demand : float; capacity : float }
  | Bisection_exceeded of { links : int; budget : int }

val of_technology : Noc_energy.Technology.t -> t

val unconstrained : t
(** Infinite capacity — used when only the cost objective matters. *)

val check : rng:Noc_util.Prng.t -> t -> Acg.t -> Synthesis.t -> violation list
(** Empty list = all constraints satisfied.  The bisection check uses the
    heuristic min-cut of {!Noc_graph.Traversal.min_bisection_cut}; the
    heuristic overestimates the true minimum cut, so a reported violation
    is conservative. *)

val satisfied : rng:Noc_util.Prng.t -> t -> Acg.t -> Synthesis.t -> bool

val pp_violation : Format.formatter -> violation -> unit
