(** Minimal ASCII chart rendering for benchmark output.

    Renders one or more (x, y) series into a character grid with axis
    ranges annotated — enough to show the {e shape} of a latency-vs-load or
    run-time-vs-size curve directly in the bench log. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** [render series] plots each named series with its own mark (['*'], ['+'],
    ['o'], ['x'], ...), shared axes covering the union of the data ranges,
    and a legend line.  Default grid is 64x16.  Series with no points are
    listed in the legend but plot nothing; an entirely empty input yields
    an ["(no data)"] placeholder. *)
