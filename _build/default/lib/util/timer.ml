let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, t1 -. t0)

let time_median ~repeats f =
  let repeats = max 1 repeats in
  let result = ref None in
  let samples =
    List.init repeats (fun _ ->
        let x, dt = time f in
        result := Some x;
        dt)
  in
  let sorted = List.sort compare samples in
  let median = List.nth sorted (repeats / 2) in
  match !result with
  | Some x -> (x, median)
  | None -> assert false
