let marks = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 16) ?(x_label = "x") ?(y_label = "y") series =
  let all_points = List.concat_map snd series in
  if all_points = [] then "(no data)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = fmin ys and y1 = fmax ys in
    let xspan = if x1 > x0 then x1 -. x0 else 1.0 in
    let yspan = if y1 > y0 then y1 -. y0 else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let mark = marks.(si mod Array.length marks) in
        List.iter
          (fun (x, y) ->
            let cx =
              int_of_float ((x -. x0) /. xspan *. float_of_int (width - 1))
            in
            let cy =
              height - 1
              - int_of_float ((y -. y0) /. yspan *. float_of_int (height - 1))
            in
            if cx >= 0 && cx < width && cy >= 0 && cy < height then
              grid.(cy).(cx) <- mark)
          pts)
      series;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    Buffer.add_string buf
      (Printf.sprintf "%s: %.4g .. %.4g   %s: %.4g .. %.4g\n" x_label x0 x1 y_label y0 y1);
    Array.iteri
      (fun row line ->
        let edge = if row = 0 || row = height - 1 then '+' else '|' in
        Buffer.add_char buf edge;
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf edge;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "legend:";
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s" marks.(si mod Array.length marks) name))
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
