lib/util/timer.mli:
