lib/util/prng.mli:
