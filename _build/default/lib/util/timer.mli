(** Wall-clock timing helpers for the run-time experiments (Fig. 4). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in seconds. *)

val time_median : repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (at least once) and
    returns the last result with the median elapsed time. *)
