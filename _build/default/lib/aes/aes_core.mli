(** AES-128 block cipher (FIPS-197), implemented from scratch.

    This is the reference implementation that the distributed 16-node NoC
    version ({!Distributed}) is validated against: the simulated network
    must produce bit-identical ciphertexts.  Encryption and decryption are
    both provided; test vectors come from FIPS-197 Appendix B/C. *)

type block = Bytes.t
(** 16 bytes. *)

type key = Bytes.t
(** 16 bytes. *)

val sbox : int -> int
(** Forward S-box lookup of a byte value. @raise Invalid_argument outside
    [0, 255]. *)

val inv_sbox : int -> int

val gf_mul : int -> int -> int
(** Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1. *)

val mix_single_column : int array -> int array
(** The MixColumns transform of one 4-byte column (values 0–255).  Exposed
    because the distributed implementation computes it per node.
    @raise Invalid_argument unless the input has length 4. *)

val inv_mix_single_column : int array -> int array

val expand_key : key -> Bytes.t array
(** The 11 round keys (16 bytes each) of the AES-128 key schedule.
    @raise Invalid_argument unless the key has 16 bytes. *)

val encrypt_block : key:key -> block -> block
(** @raise Invalid_argument unless key and block have 16 bytes. *)

val decrypt_block : key:key -> block -> block

val encrypt_ecb : key:key -> Bytes.t -> Bytes.t
(** Multi-block ECB encryption of a 16-byte-multiple buffer (enough for the
    throughput experiments; no padding). *)

val of_hex : string -> Bytes.t
(** Parses a hex string (no separators). @raise Invalid_argument on odd
    length or non-hex characters. *)

val to_hex : Bytes.t -> string
