(* GF(2^8) arithmetic via exp/log tables over the generator 3.  The S-box
   is derived (multiplicative inverse + affine transform) rather than
   transcribed, eliminating table-typo risk; FIPS-197 vectors in the test
   suite pin the result. *)

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

let exp_table, log_table =
  let exp = Array.make 512 0 in
  let log = Array.make 256 0 in
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log.(!x) <- i;
    (* multiply by the generator 3: x*3 = x*2 xor x *)
    x := xtime !x lxor !x
  done;
  for i = 255 to 511 do
    exp.(i) <- exp.(i - 255)
  done;
  (exp, log)

let gf_mul a b =
  if a < 0 || a > 255 || b < 0 || b > 255 then invalid_arg "Aes_core.gf_mul: byte range";
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let gf_inv a = if a = 0 then 0 else exp_table.(255 - log_table.(a))

let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xff

let sbox_table =
  Array.init 256 (fun i ->
      let b = gf_inv i in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let inv_sbox_table =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox_table;
  t

let sbox i =
  if i < 0 || i > 255 then invalid_arg "Aes_core.sbox: byte range";
  sbox_table.(i)

let inv_sbox i =
  if i < 0 || i > 255 then invalid_arg "Aes_core.inv_sbox: byte range";
  inv_sbox_table.(i)

type block = Bytes.t
type key = Bytes.t

let mix_single_column a =
  if Array.length a <> 4 then invalid_arg "Aes_core.mix_single_column: need 4 bytes";
  Array.init 4 (fun r ->
      gf_mul 2 a.(r) lxor gf_mul 3 a.((r + 1) mod 4) lxor a.((r + 2) mod 4)
      lxor a.((r + 3) mod 4))

let inv_mix_single_column a =
  if Array.length a <> 4 then invalid_arg "Aes_core.inv_mix_single_column: need 4 bytes";
  Array.init 4 (fun r ->
      gf_mul 0x0e a.(r) lxor gf_mul 0x0b a.((r + 1) mod 4)
      lxor gf_mul 0x0d a.((r + 2) mod 4)
      lxor gf_mul 0x09 a.((r + 3) mod 4))

(* State is a flat 16-int array: state.(r + 4*c) = FIPS state[r][c]; with
   this layout the input/output copy is the identity on byte order. *)

let sub_bytes st = Array.map (fun b -> sbox_table.(b)) st

let inv_sub_bytes st = Array.map (fun b -> inv_sbox_table.(b)) st

let shift_rows st =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      st.(r + (4 * ((c + r) mod 4))))

let inv_shift_rows st =
  Array.init 16 (fun i ->
      let r = i mod 4 and c = i / 4 in
      st.(r + (4 * ((c - r + 4) mod 4))))

let mix_columns st =
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    let col = Array.init 4 (fun r -> st.(r + (4 * c))) in
    let m = mix_single_column col in
    for r = 0 to 3 do
      out.(r + (4 * c)) <- m.(r)
    done
  done;
  out

let inv_mix_columns st =
  let out = Array.make 16 0 in
  for c = 0 to 3 do
    let col = Array.init 4 (fun r -> st.(r + (4 * c))) in
    let m = inv_mix_single_column col in
    for r = 0 to 3 do
      out.(r + (4 * c)) <- m.(r)
    done
  done;
  out

let add_round_key st rk = Array.mapi (fun i b -> b lxor Char.code (Bytes.get rk i)) st

let expand_key key =
  if Bytes.length key <> 16 then invalid_arg "Aes_core.expand_key: need a 16-byte key";
  (* 44 words of 4 bytes *)
  let w = Array.make 44 [| 0; 0; 0; 0 |] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> Char.code (Bytes.get key ((4 * i) + j)))
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let prev = w.(i - 1) in
    let tmp =
      if i mod 4 = 0 then begin
        let rotated = [| prev.(1); prev.(2); prev.(3); prev.(0) |] in
        let substituted = Array.map (fun b -> sbox_table.(b)) rotated in
        let out = Array.copy substituted in
        out.(0) <- out.(0) lxor !rcon;
        out
      end
      else prev
    in
    if i mod 4 = 0 then rcon := xtime !rcon;
    w.(i) <- Array.init 4 (fun j -> w.(i - 4).(j) lxor tmp.(j))
  done;
  Array.init 11 (fun round ->
      let rk = Bytes.create 16 in
      for c = 0 to 3 do
        for j = 0 to 3 do
          Bytes.set rk ((4 * c) + j) (Char.chr w.((4 * round) + c).(j))
        done
      done;
      rk)

let state_of_block b = Array.init 16 (fun i -> Char.code (Bytes.get b i))

let block_of_state st =
  let b = Bytes.create 16 in
  Array.iteri (fun i v -> Bytes.set b i (Char.chr v)) st;
  b

let encrypt_block ~key block =
  if Bytes.length key <> 16 then invalid_arg "Aes_core.encrypt_block: need a 16-byte key";
  if Bytes.length block <> 16 then
    invalid_arg "Aes_core.encrypt_block: need a 16-byte block";
  let rks = expand_key key in
  let st = ref (add_round_key (state_of_block block) rks.(0)) in
  for round = 1 to 9 do
    st := add_round_key (mix_columns (shift_rows (sub_bytes !st))) rks.(round)
  done;
  st := add_round_key (shift_rows (sub_bytes !st)) rks.(10);
  block_of_state !st

let decrypt_block ~key block =
  if Bytes.length key <> 16 then invalid_arg "Aes_core.decrypt_block: need a 16-byte key";
  if Bytes.length block <> 16 then
    invalid_arg "Aes_core.decrypt_block: need a 16-byte block";
  let rks = expand_key key in
  let st = ref (add_round_key (state_of_block block) rks.(10)) in
  st := inv_sub_bytes (inv_shift_rows !st);
  for round = 9 downto 1 do
    st := inv_sub_bytes (inv_shift_rows (inv_mix_columns (add_round_key !st rks.(round))))
  done;
  st := add_round_key !st rks.(0);
  block_of_state !st

let encrypt_ecb ~key data =
  let n = Bytes.length data in
  if n mod 16 <> 0 then invalid_arg "Aes_core.encrypt_ecb: length must be a multiple of 16";
  let out = Bytes.create n in
  for i = 0 to (n / 16) - 1 do
    let block = Bytes.sub data (16 * i) 16 in
    Bytes.blit (encrypt_block ~key block) 0 out (16 * i) 16
  done;
  out

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Aes_core.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Aes_core.of_hex: not a hex digit"
  in
  Bytes.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let to_hex b =
  String.concat ""
    (List.init (Bytes.length b) (fun i -> Printf.sprintf "%02x" (Char.code (Bytes.get b i))))
