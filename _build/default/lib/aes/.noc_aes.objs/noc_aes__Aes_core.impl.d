lib/aes/aes_core.ml: Array Bytes Char List Printf String
