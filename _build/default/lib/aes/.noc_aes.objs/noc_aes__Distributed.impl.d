lib/aes/distributed.ml: Aes_core Array Bytes Char List Noc_core Noc_graph Noc_sim
