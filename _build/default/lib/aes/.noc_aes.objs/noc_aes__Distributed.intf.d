lib/aes/distributed.mli: Bytes Noc_core Noc_sim
