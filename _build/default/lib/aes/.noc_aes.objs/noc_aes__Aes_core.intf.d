lib/aes/aes_core.mli: Bytes
