(* Diffs two persisted benchmark records and gates on regressions.

     compare.exe BASELINE.json CURRENT.json [--time-threshold PCT] [--threshold PCT]

   Exit codes: 0 = no regression, 1 = regression (or gated metric missing),
   2 = unreadable/invalid input.  The thresholds are percentages of the
   baseline value: --time-threshold applies to wall-clock metrics (default
   10), --threshold to everything else (default 2; non-timing corpus
   metrics are deterministic, so keep it tight). *)

module Record = Noc_benchkit.Record
module Regress = Noc_benchkit.Regress

let usage code =
  prerr_endline
    "usage: compare BASELINE.json CURRENT.json [--time-threshold PCT] [--threshold PCT]";
  exit code

let die m =
  prerr_endline ("compare: " ^ m);
  exit 2

let () =
  let time_limit = ref 10.0 in
  let limit = ref 2.0 in
  let files = ref [] in
  let float_arg name v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 -> f
    | _ -> die (Printf.sprintf "%s expects a non-negative number, got %S" name v)
  in
  let rec parse = function
    | [] -> ()
    | "--time-threshold" :: v :: rest ->
        time_limit := float_arg "--time-threshold" v;
        parse rest
    | "--threshold" :: v :: rest ->
        limit := float_arg "--threshold" v;
        parse rest
    | ("--help" | "-h") :: _ -> usage 0
    | f :: rest ->
        if String.length f > 1 && f.[0] = '-' then
          die (Printf.sprintf "unknown option %S" f)
        else files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_file, cur_file =
    match List.rev !files with [ b; c ] -> (b, c) | _ -> usage 2
  in
  let load f = match Record.load f with Ok j -> j | Error (`Msg m) -> die m in
  let base = load base_file and cur = load cur_file in
  match Regress.compare_records ~time_limit_pct:!time_limit ~limit_pct:!limit ~base ~cur ()
  with
  | Error (`Msg m) -> die m
  | Ok report ->
      Format.printf "%s -> %s@." base_file cur_file;
      Format.printf "%a" Regress.pp_report report;
      if Regress.ok report then exit 0 else exit 1
