(* Regenerates every table and figure of the paper's evaluation:

     fig2   - the decomposition-tree example of Fig. 2 (reconstructed)
     fig4a  - run time on TGFF-style task graphs (Fig. 4a)
     fig4b  - average run time on random (Pajek-style) graphs (Fig. 4b)
     fig5   - the random-benchmark decomposition listing (Fig. 5)
     fig6   - the AES ACG decomposition listing (Fig. 6 / Section 5.2)
     aes    - the prototype comparison table (Section 5.2 prose)
     ablate - library / beam ablations (design choices called out in DESIGN.md)
     corpus - the persisted benchmark corpus (smoke settings; `corpus-full`
              for the record settings — see lib/benchkit and `nocsynth bench`)
     micro  - Bechamel micro-benchmarks of the matching and search kernels

   Run all sections:        dune exec bench/main.exe
   Run one section:         dune exec bench/main.exe -- fig4a aes *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module L = Noc_primitives.Library
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Decomp = Noc_core.Decomposition
module Syn = Noc_core.Synthesis
module Dist = Noc_aes.Distributed

let ok_encrypt = function
  | Ok r -> r
  | Error (`Undrained n) ->
      failwith (Printf.sprintf "distributed AES did not drain: %d packets pending" n)
module Stats = Noc_sim.Stats
module Prng = Noc_util.Prng

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let default_library = L.default ()

let decompose_timed ?options ?budget acg =
  let (d, stats), wall =
    Noc_util.Timer.time (fun () ->
        Bb.decompose ?options ?budget ~library:default_library acg)
  in
  (d, stats, wall)

(* ------------------------------------------------------------------ *)
(* Fig. 2: the decomposition-tree example                               *)

(* The reconstructed Fig. 2 input lives in the benchmark corpus now (it is
   one of the persisted scenarios); see Noc_benchkit.Corpus. *)
let fig2_acg = Noc_benchkit.Corpus.fig2_acg

let fig2 () =
  section "Fig. 2 - decomposition tree example (reconstructed input)";
  let acg = fig2_acg () in
  Printf.printf "input: %d vertices, %d edges\n" (Acg.num_cores acg) (Acg.num_flows acg);
  (* the branching alternatives at the root, one per library graph, as in
     the figure *)
  Printf.printf "root branches (first matching per library graph):\n";
  List.iter
    (fun entry ->
      match
        Noc_graph.Vf2.find_first ~pattern:entry.L.prim.Noc_primitives.Primitive.repr
          ~target:(Acg.graph acg) ()
      with
      | Some m ->
          let matching = Noc_core.Matching.of_vf2 entry m in
          Format.printf "  %a@." Noc_core.Matching.pp matching
      | None -> ())
    default_library;
  let d, stats, wall = decompose_timed acg in
  Printf.printf "best decomposition (%.3f s, %d nodes):\n" wall stats.Bb.nodes;
  Format.printf "%a@." (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg) d;
  Printf.printf "paper's leftmost-branch cost: 16; ours: %.0f\n" stats.Bb.best_cost

(* ------------------------------------------------------------------ *)
(* Fig. 4a: run time on TGFF task graphs                                *)

(* Each size is decomposed twice: with the paper-literal strategy where
   every primitive takes part in the branching ([Branch]), and with the
   saver-driven strategy ([Greedy], this library's default).  The former
   reproduces the growth shape of the paper's run-time figures; the latter
   shows what the structural argument about cost-neutral primitives buys. *)
let runtime_row ?(timeout = 5.0) acgs =
  let avg xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  let measure ?budget options =
    List.fold_left
      (fun (ts, to_, nodes, pruned) acg ->
        let _, stats, wall = decompose_timed ~options ?budget acg in
        ( wall :: ts,
          (to_ + if stats.Bb.timed_out then 1 else 0),
          nodes + stats.Bb.nodes,
          pruned + stats.Bb.pruned ))
      ([], 0, 0, 0) acgs
  in
  let lit_t, lit_to, _, _ =
    measure
      ~budget:Bb.Budget.(default |> with_timeout_s (Some timeout))
      { Bb.default_options with neutrals = Bb.Branch }
  in
  let grd_t, _, grd_nodes, grd_pruned = measure Bb.default_options in
  let n = List.length acgs in
  (avg lit_t, List.fold_left max 0. lit_t, lit_to, avg grd_t, grd_nodes / n, grd_pruned / n)

let fig4a () =
  section "Fig. 4a - decomposition run time, TGFF-style task graphs";
  Printf.printf "%8s  %30s  %34s\n" "" "paper-literal branching" "saver-driven";
  Printf.printf "%8s %10s %10s %8s %14s %9s %9s\n" "nodes" "avg (s)" "max (s)" "timeouts"
    "avg (s)" "avg tree" "avg prune";
  List.iter
    (fun n ->
      let acgs =
        List.map
          (fun seed ->
            let rng = Prng.create ~seed in
            Acg.of_tgff
              (Noc_tgff.Tgff.generate ~rng { Noc_tgff.Tgff.default_params with tasks = n }))
          [ 1; 2; 3; 4; 5 ]
      in
      let lit_avg, lit_max, lit_to, grd_avg, grd_nodes, grd_pruned = runtime_row acgs in
      Printf.printf "%8d %10.4f %10.4f %8d %14.4f %9d %9d\n" n lit_avg lit_max lit_to
        grd_avg grd_nodes grd_pruned)
    [ 5; 8; 10; 12; 15; 18 ];
  Printf.printf "\npresets (the paper's 18-node automotive benchmark took 0.3 s in Matlab):\n";
  List.iter
    (fun (name, params) ->
      let rng = Prng.create ~seed:11 in
      let acg = Acg.of_tgff (Noc_tgff.Tgff.generate ~rng params) in
      let _, stats, wall = decompose_timed acg in
      Printf.printf "  %-12s %2d nodes  %8.4f s  cost %.0f  tree=%d pruned=%d\n" name
        (Acg.num_cores acg) wall stats.Bb.best_cost stats.Bb.nodes stats.Bb.pruned)
    Noc_tgff.Tgff.presets

(* ------------------------------------------------------------------ *)
(* Fig. 4b: run time on random (Pajek-style) graphs                     *)

let fig4b () =
  section "Fig. 4b - decomposition run time, random graphs (Pajek substitute)";
  Printf.printf "%8s  %30s  %34s\n" "" "paper-literal branching" "saver-driven";
  Printf.printf "%8s %10s %10s %8s %14s %9s %9s\n" "nodes" "avg (s)" "max (s)" "timeouts"
    "avg (s)" "avg tree" "avg prune";
  List.iter
    (fun n ->
      (* Pajek-era random networks: sparse, average degree ~ 3 *)
      let p = 3.0 /. float_of_int (n - 1) in
      let acgs =
        List.map
          (fun seed ->
            let rng = Prng.create ~seed in
            Acg.uniform ~volume:16 ~bandwidth:0.1 (G.erdos_renyi ~rng ~n ~p))
          [ 1; 2; 3; 4; 5 ]
      in
      let lit_avg, lit_max, lit_to, grd_avg, grd_nodes, grd_pruned = runtime_row acgs in
      Printf.printf "%8d %10.4f %10.4f %8d %14.4f %9d %9d\n" n lit_avg lit_max lit_to
        grd_avg grd_nodes grd_pruned)
    [ 10; 15; 20; 25; 30; 35; 40 ];
  Printf.printf
    "(paper: a 40-node graph decomposes in < 3 min in Matlab + C++ VF2; timeouts are\n\
    \ the 5 s per-instance budget the paper itself recommends in Section 5.1)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 5: the example random benchmark                                 *)

(* Reconstructed from the paper's printed decomposition; lives in the
   corpus (Noc_benchkit.Corpus) as the "fig5" scenario. *)
let fig5_acg = Noc_benchkit.Corpus.fig5_acg

let fig5 () =
  section "Fig. 5 - customized synthesis for the paper's random benchmark";
  let acg = fig5_acg () in
  Printf.printf "input (reconstructed from the paper's listing): %d vertices, %d edges\n"
    (Acg.num_cores acg) (Acg.num_flows acg);
  let d, _, wall = decompose_timed acg in
  Format.printf "%a@." (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg) d;
  Printf.printf "elapsed %.4f s (paper: < 0.1 s)\n" wall;
  Printf.printf "primitives used: %s\n  (paper: 1x MGG4, 3x G123, 1x G124, no remainder)\n"
    (Decomp.primitive_histogram d
    |> List.map (fun (n, k) -> Printf.sprintf "%dx %s" k n)
    |> String.concat ", ")

(* ------------------------------------------------------------------ *)
(* Fig. 6 + Section 5.2: AES                                            *)

let fig6 () =
  section "Fig. 6 - AES ACG decomposition (paper output: COST 28)";
  let acg = Dist.acg () in
  let d, stats, wall = decompose_timed acg in
  Format.printf "%a@." (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg) d;
  Printf.printf "elapsed %.4f s (paper: 0.58 s)\n" wall;
  Printf.printf "search tree: %d nodes, %d matchings, %d pruned, %d incumbent(s)\n"
    stats.Bb.nodes stats.Bb.matches_tried stats.Bb.pruned stats.Bb.incumbents

let aes_table () =
  section "Section 5.2 - prototype performance and energy comparison";
  let acg = Dist.acg () in
  let d, _, _ = decompose_timed acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  let key = Noc_aes.Aes_core.of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = Noc_aes.Aes_core.of_hex "00112233445566778899aabbccddeeff" in
  let expect = Noc_aes.Aes_core.encrypt_block ~key pt in
  let config = { Noc_sim.Network.default_config with router_delay = 3 } in
  let run arch =
    let r = ok_encrypt (Dist.encrypt ~config ~arch ~key pt) in
    assert (Bytes.equal r.Dist.ciphertext expect);
    let energy = Stats.total_energy_pj ~tech ~fp r.Dist.net in
    let power = Stats.avg_power_mw ~tech ~fp r.Dist.net in
    (r.Dist.cycles, r.Dist.summary.Stats.avg_latency, power, energy)
  in
  let mc, ml, mp, me = run mesh in
  let cc, cl, cp, ce = run custom in
  let thpt c = Dist.throughput_mbps ~cycles_per_block:c ~clock_mhz:100.0 in
  Printf.printf "%-22s %12s %12s %14s\n" "metric" "mesh" "customized" "custom/mesh";
  Printf.printf "%-22s %12d %12d %13.2fx\n" "cycles/block" mc cc
    (float_of_int cc /. float_of_int mc);
  Printf.printf "%-22s %12.1f %12.1f %13.2fx\n" "throughput (Mbps)" (thpt mc) (thpt cc)
    (thpt cc /. thpt mc);
  Printf.printf "%-22s %12.2f %12.2f %13.2fx\n" "avg latency (cycles)" ml cl (cl /. ml);
  Printf.printf "%-22s %12.2f %12.2f %13.2fx\n" "avg power (mW)" mp cp (cp /. mp);
  Printf.printf "%-22s %12.1f %12.1f %13.2fx\n" "energy/block (pJ)" me ce (ce /. me);
  Printf.printf "\npaper (Virtex-2 prototype @ 100 MHz):\n";
  Printf.printf "%-22s %12s %12s %14s\n" "cycles/block" "271" "199" "0.73x";
  Printf.printf "%-22s %12s %12s %14s\n" "throughput (Mbps)" "47.2" "64.3" "1.36x";
  Printf.printf "%-22s %12s %12s %14s\n" "avg latency (cycles)" "11.5" "9.6" "0.83x";
  Printf.printf "%-22s %12s %12s %14s\n" "avg power" "-" "-" "0.67x";
  Printf.printf "%-22s %12s %12s %14s\n" "energy/block (uJ)" "5.1" "2.5" "0.49x"

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let ablate () =
  section "Ablations - library content and branching width (AES ACG)";
  let acg = Dist.acg () in
  Printf.printf "library ablation:\n";
  List.iter
    (fun (name, lib) ->
      let (d, stats), wall = Noc_util.Timer.time (fun () -> Bb.decompose ~library:lib acg) in
      Printf.printf "  %-10s cost=%5.0f remainder=%2d links=%2d time=%.3fs\n" name
        stats.Bb.best_cost
        (D.num_edges d.Decomp.remainder)
        (Syn.link_count (Syn.custom acg d))
        wall)
    [ ("default", L.default ()); ("minimal", L.minimal ()); ("extended", L.extended ()) ];
  Printf.printf "branching-width ablation (matches per primitive per node):\n";
  List.iter
    (fun beam ->
      let options = { Bb.default_options with max_matches_per_step = beam } in
      let (_, stats), wall =
        Noc_util.Timer.time (fun () -> Bb.decompose ~options ~library:default_library acg)
      in
      Printf.printf "  beam=%2d cost=%5.0f nodes=%7d pruned=%7d time=%.3fs\n" beam
        stats.Bb.best_cost stats.Bb.nodes stats.Bb.pruned wall)
    [ 1; 2; 4 ];
  Printf.printf "router pipeline sensitivity (AES cycles/block, mesh vs custom):\n";
  let key = Noc_aes.Aes_core.of_hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let pt = Noc_aes.Aes_core.of_hex "3243f6a8885a308d313198a2e0370734" in
  let d, _, _ = decompose_timed acg in
  let custom = Syn.custom acg d and mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  List.iter
    (fun rd ->
      let config = { Noc_sim.Network.default_config with router_delay = rd } in
      let rm = ok_encrypt (Dist.encrypt ~config ~arch:mesh ~key pt) in
      let rc = ok_encrypt (Dist.encrypt ~config ~arch:custom ~key pt) in
      Printf.printf "  router_delay=%d: mesh=%4d custom=%4d (%.2fx)\n" rd rm.Dist.cycles
        rc.Dist.cycles
        (float_of_int rc.Dist.cycles /. float_of_int rm.Dist.cycles))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Extensions: routing policies and floorplan co-design (Section 6)     *)

let routing () =
  section "Extension - adaptive/stochastic routing (Sec. 6 future work)";
  let acg = Dist.acg () in
  let d, _, _ = decompose_timed acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  let config = { Noc_sim.Network.default_config with router_delay = 3 } in
  Printf.printf "AES round-burst traffic (10 rounds of ShiftRows + MixColumns):
";
  Printf.printf "%-12s %-10s %10s %12s
" "arch" "routing" "cycles" "avg latency";
  let shift_flows =
    List.concat_map
      (fun row ->
        List.filter_map
          (fun col ->
            let src = Dist.node_of ~row ~col in
            let dst = Dist.node_of ~row ~col:((col - row + 4) mod 4) in
            if src <> dst then Some (src, dst) else None)
          [ 0; 1; 2; 3 ])
      [ 1; 2; 3 ]
  in
  let mix_flows =
    List.concat_map
      (fun col ->
        List.concat_map
          (fun r1 ->
            List.filter_map
              (fun r2 ->
                if r1 <> r2 then Some (Dist.node_of ~row:r1 ~col, Dist.node_of ~row:r2 ~col)
                else None)
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  List.iter
    (fun (arch_name, arch) ->
      List.iter
        (fun (pol_name, policy) ->
          let net = Noc_sim.Network.create ~config ~policy arch in
          for _ = 1 to 10 do
            List.iter
              (fun (src, dst) ->
                ignore (Noc_sim.Network.inject ~size_flits:2 net ~src ~dst))
              shift_flows;
            (match Noc_sim.Network.run_until_idle net with
            | `Idle -> ()
            | `Limit _ -> failwith "hang");
            List.iter
              (fun (src, dst) ->
                ignore (Noc_sim.Network.inject ~size_flits:2 net ~src ~dst))
              mix_flows;
            match Noc_sim.Network.run_until_idle net with
            | `Idle -> ()
            | `Limit _ -> failwith "hang"
          done;
          let s = Stats.summarize (Noc_sim.Network.deliveries net) in
          Printf.printf "%-12s %-10s %10d %12.2f
" arch_name pol_name
            (Noc_sim.Network.now net) s.Stats.avg_latency)
        [
          ("fixed", Noc_sim.Network.Fixed);
          ("adaptive", Noc_sim.Network.Adaptive);
          ("oblivious", Noc_sim.Network.Oblivious (Prng.create ~seed:7));
        ])
    [ ("mesh", mesh); ("customized", custom) ];
  Printf.printf
    "(AES flows are row/column aligned - single minimal paths - so policies tie;
    \ see examples/routing_strategies.exe for a workload where adaptivity wins)
"

let codesign () =
  section "Extension - floorplan relaxation by co-design (Sec. 6 future work)";
  let acg = Dist.acg () in
  let tech = Noc_energy.Technology.cmos_180nm in
  let library = default_library in
  (* scrambled initial placement: the co-design loop must recover it *)
  let rng = Prng.create ~seed:19 in
  let ids = Array.init 16 (fun i -> i + 1) in
  Prng.shuffle rng ids;
  let scrambled =
    Noc_energy.Floorplan.grid
      (List.init 16 (fun i ->
           { Noc_energy.Floorplan.id = ids.(i); width_mm = 2.0; height_mm = 2.0 }))
  in
  let natural =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  List.iter
    (fun (name, fp) ->
      let r =
        Noc_core.Co_design.optimize ~rounds:4 ~anneal_iterations:3000 ~rng ~tech ~library
          ~fp acg
      in
      Printf.printf "%-22s rounds=%d
" name (List.length r.Noc_core.Co_design.history);
      List.iter
        (fun it ->
          Printf.printf "  round %d: energy=%10.1f pJ  wirelength=%10.1f
"
            it.Noc_core.Co_design.round it.Noc_core.Co_design.energy_pj
            it.Noc_core.Co_design.wirelength)
        r.Noc_core.Co_design.history;
      Printf.printf "  best: %10.1f pJ
" r.Noc_core.Co_design.energy_pj)
    [ ("natural grid", natural); ("scrambled placement", scrambled) ]

(* ------------------------------------------------------------------ *)
(* Extensions: load sweep and wormhole switching                        *)

let loadsweep () =
  section "Extension - latency vs offered load (customized vs mesh)";
  let acg = Dist.acg () in
  let d, _, _ = decompose_timed acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  let rates = [ 0.005; 0.01; 0.02; 0.04; 0.06; 0.08; 0.10; 0.14 ] in
  let run arch =
    let rng = Prng.create ~seed:23 in
    Noc_sim.Sweep.latency_vs_load ~rng ~arch ~acg ~cycles:1500 ~rates ()
  in
  let pm = run mesh and pc = run custom in
  Printf.printf "%10s  %22s  %22s
" "rate/flow" "mesh lat (thpt)" "custom lat (thpt)";
  List.iter2
    (fun m c ->
      Printf.printf "%10.3f  %12.2f (%6.3f)  %12.2f (%6.3f)
" m.Noc_sim.Sweep.rate
        m.Noc_sim.Sweep.avg_latency m.Noc_sim.Sweep.throughput c.Noc_sim.Sweep.avg_latency
        c.Noc_sim.Sweep.throughput)
    pm pc;
  (match
     ( Noc_sim.Sweep.saturation_rate pm,
       Noc_sim.Sweep.saturation_rate pc )
   with
  | Some rm, Some rc ->
      Printf.printf "saturation knees: mesh %.3f, customized %.3f per flow
" rm rc
  | Some rm, None -> Printf.printf "mesh saturates at %.3f; customized never does here
" rm
  | None, _ -> Printf.printf "no saturation in the swept range
");
  print_string
    (Noc_util.Ascii_plot.render ~width:60 ~height:14 ~x_label:"offered load (pkts/cycle)"
       ~y_label:"avg latency (cycles)"
       [
         ("mesh", Noc_sim.Sweep.to_series pm);
         ("customized", Noc_sim.Sweep.to_series pc);
       ])

let wormhole () =
  section "Extension - wormhole switching vs store-and-forward (AES bursts)";
  let acg = Dist.acg () in
  let d, _, _ = decompose_timed acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  let flows = D.edges (Acg.graph acg) in
  Printf.printf "one burst of all 60 AES flows, 4-flit packets:
";
  Printf.printf "%-12s %-18s %10s %12s
" "arch" "switching" "cycles" "avg latency";
  List.iter
    (fun (arch_name, arch) ->
      (* store-and-forward *)
      let net = Noc_sim.Network.create arch in
      List.iter
        (fun (src, dst) -> ignore (Noc_sim.Network.inject ~size_flits:4 net ~src ~dst))
        flows;
      (match Noc_sim.Network.run_until_idle net with
      | `Idle -> ()
      | `Limit _ -> failwith "hang");
      let s = Stats.summarize (Noc_sim.Network.deliveries net) in
      Printf.printf "%-12s %-18s %10d %12.2f
" arch_name "store-and-forward"
        (Noc_sim.Network.now net) s.Stats.avg_latency;
      (* wormhole, 2 VCs *)
      let wnet = Noc_sim.Wormhole.create arch in
      List.iter
        (fun (src, dst) -> ignore (Noc_sim.Wormhole.inject ~size_flits:4 wnet ~src ~dst))
        flows;
      (match Noc_sim.Wormhole.run_until_idle wnet with
      | `Idle -> ()
      | `Deadlock -> failwith "deadlock"
      | `Limit -> failwith "hang");
      let ws = Noc_sim.Wormhole.summary wnet in
      Printf.printf "%-12s %-18s %10d %12.2f
" arch_name "wormhole (2 VCs)"
        (Noc_sim.Wormhole.now wnet) ws.Stats.avg_latency)
    [ ("mesh", mesh); ("customized", custom) ]

(* ------------------------------------------------------------------ *)
(* Extension: further application workloads                             *)

let apps () =
  section "Extension - multimedia and FFT workloads";
  let tech = Noc_energy.Technology.cmos_180nm in
  (* multimedia benchmarks: synthesis summary vs a 3x4 mesh *)
  Printf.printf "%-8s %6s %6s %9s %9s %10s %10s %9s
" "app" "cores" "flows" "links"
    "mesh lnk" "avg hops" "mesh hops" "E ratio";
  List.iter
    (fun (name, acg) ->
      let fp =
        Noc_energy.Floorplan.grid
          (Noc_energy.Floorplan.uniform_cores ~n:(Acg.num_cores acg) ~size_mm:2.0)
      in
      let d, _ = Bb.decompose ~library:default_library acg in
      let custom = Syn.custom acg d in
      let mesh = Syn.mesh ~rows:3 ~cols:4 acg in
      let ec = Syn.total_energy ~tech ~fp acg custom in
      let em = Syn.total_energy ~tech ~fp acg mesh in
      Printf.printf "%-8s %6d %6d %9d %9d %10.2f %10.2f %8.2fx
" name
        (Acg.num_cores acg) (Acg.num_flows acg) (Syn.link_count custom)
        (Syn.link_count mesh) (Syn.avg_hops acg custom) (Syn.avg_hops acg mesh)
        (ec /. em))
    [ ("vopd", Noc_apps.Multimedia.vopd ()); ("mpeg4", Noc_apps.Multimedia.mpeg4 ()) ];
  (* distributed FFT: bit-exact on all architectures, cycles compared *)
  Printf.printf "
16-point distributed FFT (128-bit complex samples, energy-cost cover):
";
  let acg = Noc_apps.Fft.acg () in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  let options = { (Bb.energy_options ~tech ~fp) with constraints = None } in
  let d, _ = Bb.decompose ~options ~library:default_library acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  let x = Array.init 16 (fun i -> { Complex.re = float_of_int (i mod 5); im = 0.25 }) in
  let expect = Noc_apps.Fft.fft x in
  List.iter
    (fun (name, arch) ->
      let r = Noc_apps.Fft.distributed ~arch x in
      let ok =
        Array.for_all2
          (fun a b -> Complex.norm (Complex.sub a b) < 1e-9)
          r.Noc_apps.Fft.output expect
      in
      Printf.printf "  %-12s %4d cycles/transform  exact=%b  links=%d  max hops=%d
" name
        r.Noc_apps.Fft.cycles ok (Syn.link_count arch) (Syn.max_hops arch))
    [ ("mesh", mesh); ("customized", custom) ]

(* ------------------------------------------------------------------ *)
(* Extension: mapping-optimized mesh baseline (design-space dim. 3)     *)

let mapping () =
  section "Extension - energy-aware mapping for the mesh baseline";
  let key = Noc_aes.Aes_core.of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = Noc_aes.Aes_core.of_hex "00112233445566778899aabbccddeeff" in
  let config = { Noc_sim.Network.default_config with router_delay = 3 } in
  let acg = Dist.acg () in
  let rng = Prng.create ~seed:29 in
  let m = Noc_core.Mapping.optimize_mesh ~rng ~iterations:6000 ~rows:4 ~cols:4 acg in
  let hop_cost mm = Noc_core.Mapping.mesh_hop_cost ~rows:4 ~cols:4 acg mm in
  Printf.printf "volume-weighted hop cost: row-major %.0f, optimized %.0f
"
    (hop_cost (Noc_core.Mapping.identity acg))
    (hop_cost m);
  (* NOTE: remapping moves the AES state bytes to different tiles, so the
     distributed encryption must run on the remapped ACG's mesh while the
     byte orchestration still uses logical node ids; the mapping here only
     evaluates communication cost and cycle counts via burst replay. *)
  let replay arch =
    let net = Noc_sim.Network.create ~config arch in
    let g = Acg.graph acg in
    for _ = 1 to 10 do
      D.iter_edges
        (fun u v -> ignore (Noc_sim.Network.inject ~size_flits:2 net ~src:u ~dst:v))
        g;
      match Noc_sim.Network.run_until_idle net with
      | `Idle -> ()
      | `Limit _ -> failwith "hang"
    done;
    (Noc_sim.Network.now net, (Stats.summarize (Noc_sim.Network.deliveries net)).Stats.avg_latency)
  in
  let replay_mapped mm =
    let acg' = Noc_core.Mapping.apply mm acg in
    let arch = Syn.mesh ~rows:4 ~cols:4 acg' in
    let net = Noc_sim.Network.create ~config arch in
    let g = Acg.graph acg' in
    for _ = 1 to 10 do
      D.iter_edges
        (fun u v -> ignore (Noc_sim.Network.inject ~size_flits:2 net ~src:u ~dst:v))
        g;
      match Noc_sim.Network.run_until_idle net with
      | `Idle -> ()
      | `Limit _ -> failwith "hang"
    done;
    (Noc_sim.Network.now net, (Stats.summarize (Noc_sim.Network.deliveries net)).Stats.avg_latency)
  in
  let d, _, _ = decompose_timed acg in
  let custom = Syn.custom acg d in
  let c0, l0 = replay (Syn.mesh ~rows:4 ~cols:4 acg) in
  let c1, l1 = replay_mapped m in
  let c2, l2 = replay custom in
  Printf.printf "%-28s %10s %12s
" "configuration" "cycles" "avg latency";
  Printf.printf "%-28s %10d %12.2f
" "mesh, row-major mapping" c0 l0;
  Printf.printf "%-28s %10d %12.2f
" "mesh, optimized mapping" c1 l1;
  Printf.printf "%-28s %10d %12.2f
" "customized topology" c2 l2;
  (* the full bit-exact AES on the default mapping for reference *)
  let r = ok_encrypt (Dist.encrypt ~config ~arch:custom ~key pt) in
  Printf.printf "(bit-exact AES on the customized arch: %d cycles/block)
" r.Dist.cycles

(* ------------------------------------------------------------------ *)
(* Extension: library design exploration (Sec. 3's open question)       *)

let library () =
  section "Extension - communication-library selection over a corpus";
  let rng = Prng.create ~seed:31 in
  let corpus =
    [
      ("aes", Dist.acg ());
      ("vopd", Noc_apps.Multimedia.vopd ());
      ("mpeg4", Noc_apps.Multimedia.mpeg4 ());
      ("fft", Noc_apps.Fft.acg ());
      ( "tgff",
        Acg.of_tgff (Noc_tgff.Tgff.generate ~rng Noc_tgff.Tgff.automotive) );
    ]
  in
  Printf.printf "corpus: %s
"
    (String.concat ", " (List.map (fun (n, _) -> n) corpus));
  let acgs = List.map snd corpus in
  let pool =
    [
      Noc_primitives.Primitive.gossip 4;
      Noc_primitives.Primitive.gossip 6;
      Noc_primitives.Primitive.gossip 8;
      Noc_primitives.Primitive.broadcast 4;
      Noc_primitives.Primitive.broadcast 5;
      Noc_primitives.Primitive.broadcast 6;
      Noc_primitives.Primitive.loop 4;
      Noc_primitives.Primitive.loop 6;
      Noc_primitives.Primitive.loop 8;
      Noc_primitives.Primitive.path 3;
      Noc_primitives.Primitive.path 5;
    ]
  in
  let selected, obj =
    Noc_core.Library_design.greedy_select ~max_size:6 ~pool ~corpus:acgs ()
  in
  Printf.printf "selected library (in pick order): %s
"
    (String.concat ", " (L.names selected));
  Printf.printf "objective: total cost %.0f, total remainder %d edges
"
    obj.Noc_core.Library_design.total_cost obj.Noc_core.Library_design.total_remainder;
  let baseline = Noc_core.Library_design.evaluate ~library:default_library acgs in
  Printf.printf "paper's default library: total cost %.0f, total remainder %d edges
"
    baseline.Noc_core.Library_design.total_cost
    baseline.Noc_core.Library_design.total_remainder

(* ------------------------------------------------------------------ *)
(* Benchmark corpus (the persisted-record scenarios)                    *)

let corpus ?(settings = Noc_benchkit.Runner.smoke) () =
  section "Corpus - persisted benchmark scenarios (see `nocsynth bench`)";
  Format.printf "%a@." Noc_benchkit.Runner.pp_header ();
  List.iter
    (fun sc ->
      let r = Noc_benchkit.Runner.run ~settings sc in
      Format.printf "%a@." Noc_benchkit.Runner.pp_row r)
    (Noc_benchkit.Corpus.default ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)

let micro ?(quota = 0.5) () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let aes_graph = Acg.graph (Dist.acg ()) in
  let mgg4 = (Option.get (L.find_by_name default_library "MGG4")).L.prim in
  let mgg4_repr = mgg4.Noc_primitives.Primitive.repr in
  let tgff18 =
    let rng = Prng.create ~seed:11 in
    Acg.of_tgff (Noc_tgff.Tgff.generate ~rng Noc_tgff.Tgff.automotive)
  in
  let aes_acg = Dist.acg () in
  (* pre-frozen snapshots, as the branch-and-bound search uses them *)
  let mgg4_c = Noc_graph.Compact.freeze mgg4_repr in
  let aes_view = Noc_graph.Compact.(view (freeze aes_graph)) in
  (* Fig. 4b-style random ACGs (expected degree 3) for the domain-scaling
     rows.  The greedy search solves these at the root, so the scaling rows
     use the paper-literal branching strategy, whose tree is deep enough to
     fan out; 12 vertices keeps a single run in the tens of milliseconds. *)
  let fig4b n =
    let rng = Prng.create ~seed:3 in
    Acg.uniform ~volume:16 ~bandwidth:0.1
      (G.erdos_renyi ~rng ~n ~p:(3.0 /. float_of_int (n - 1)))
  in
  let fig4b16 = fig4b 16 in
  let fig4b12 = fig4b 12 in
  let literal = { Bb.default_options with neutrals = Bb.Branch } in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        Test.make ~name:"vf2(map): first MGG4 in AES ACG"
          (Staged.stage (fun () ->
               ignore
                 (Noc_graph.Vf2_map.find_first ~pattern:mgg4_repr ~target:aes_graph ())));
        Test.make ~name:"vf2: first MGG4 in AES ACG"
          (Staged.stage (fun () ->
               ignore (Noc_graph.Vf2.find_first ~pattern:mgg4_repr ~target:aes_graph ())));
        Test.make ~name:"vf2(map): distinct MGG4 images in AES"
          (Staged.stage (fun () ->
               ignore
                 (Noc_graph.Vf2_map.find_distinct_images ~max_matches:8
                    ~pattern:mgg4_repr ~target:aes_graph ())));
        Test.make ~name:"vf2: distinct MGG4 images in AES"
          (Staged.stage (fun () ->
               ignore
                 (Noc_graph.Vf2.find_distinct_images ~max_matches:8 ~pattern:mgg4_repr
                    ~target:aes_graph ())));
        Test.make ~name:"vf2(view): distinct MGG4 images in AES"
          (Staged.stage (fun () ->
               ignore
                 (Noc_graph.Vf2.find_distinct_images_view ~max_matches:8
                    ~pattern:mgg4_c ~target:aes_view ())));
        Test.make ~name:"decompose: AES ACG (Fig. 6)"
          (Staged.stage (fun () -> ignore (Bb.decompose ~library:default_library aes_acg)));
        Test.make ~name:"decompose: TGFF automotive (Fig. 4a)"
          (Staged.stage (fun () -> ignore (Bb.decompose ~library:default_library tgff18)));
        Test.make ~name:"decompose: random 16v (Fig. 4b)"
          (Staged.stage (fun () ->
               ignore (Bb.decompose ~library:default_library fig4b16)));
        Test.make ~name:"decompose[lit,domains=1]: random 12v"
          (Staged.stage (fun () ->
               ignore (Bb.decompose ~options:literal ~library:default_library fig4b12)));
        Test.make ~name:"decompose[lit,domains=2]: random 12v"
          (Staged.stage (fun () ->
               ignore
                 (Bb.decompose ~options:literal ~budget:Bb.Budget.(default |> with_domains 2)
                    ~library:default_library
                    fig4b12)));
        Test.make ~name:"decompose[lit,domains=4]: random 12v"
          (Staged.stage (fun () ->
               ignore
                 (Bb.decompose ~options:literal ~budget:Bb.Budget.(default |> with_domains 4)
                    ~library:default_library
                    fig4b12)));
        Test.make ~name:"build: gossip primitive MGG8"
          (Staged.stage (fun () -> ignore (Noc_primitives.Primitive.gossip 8)));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) ->
      if ns > 1e6 then Printf.printf "  %-45s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "  %-45s %10.1f ns/run\n" name ns)
    rows;
  let est name = List.assoc_opt ("kernels/" ^ name) rows in
  (match (est "vf2(map): distinct MGG4 images in AES", est "vf2: distinct MGG4 images in AES")
   with
  | Some m, Some c when c > 0. ->
      Printf.printf "  vf2 distinct-images speedup (map -> compact): %.2fx\n" (m /. c)
  | _ -> ());
  (match
     ( est "decompose[lit,domains=1]: random 12v",
       est "decompose[lit,domains=4]: random 12v" )
   with
  | Some s1, Some s4 when s4 > 0. ->
      let _, st1 = Bb.decompose ~options:literal ~library:default_library fig4b12 in
      let _, st4 =
        Bb.decompose ~options:literal
          ~budget:Bb.Budget.(default |> with_domains 4)
          ~library:default_library fig4b12
      in
      Printf.printf
        "  decompose speedup (1 -> 4 domains): %.2fx on %d core(s) (best cost %.0f = %.0f)\n"
        (s1 /. s4)
        (Domain.recommended_domain_count ())
        st1.Bb.best_cost st4.Bb.best_cost
  | _ -> ())

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig2", fig2);
    ("fig4a", fig4a);
    ("fig4b", fig4b);
    ("fig5", fig5);
    ("fig6", fig6);
    ("aes", aes_table);
    ("ablate", ablate);
    ("routing", routing);
    ("codesign", codesign);
    ("loadsweep", loadsweep);
    ("wormhole", wormhole);
    ("apps", apps);
    ("mapping", mapping);
    ("library", library);
    ("corpus", fun () -> corpus ());
    ("corpus-full", fun () -> corpus ~settings:Noc_benchkit.Runner.full ());
    ("micro", fun () -> micro ());
    (* a seconds-long variant for the bench-smoke alias: same rows, tiny
       measurement quota *)
    ("micro-smoke", fun () -> micro ~quota:0.02 ());
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
