(* nocsynth: command-line front-end for the NoC communication architecture
   synthesis flow.

     nocsynth generate ...   make an ACG (TGFF-style task graph or random)
     nocsynth decompose ...  run the branch-and-bound decomposition
     nocsynth synth ...      decompose + glue + deadlock report (+ DOT)
     nocsynth simulate ...   customized vs mesh under random traffic
     nocsynth aes            the paper's Section 5.2 experiment
     nocsynth bench ...      run the benchmark corpus, write BENCH_<rev>.json
     nocsynth explore ...    multi-objective Pareto exploration of the corpus
     nocsynth faults ...     fault-injection campaigns (+ optional hardening)

   All diagnostics go through Logs to stderr; stdout carries only data
   (listings, reports, ACG text, and the --metrics JSON), so outputs can
   be piped.  Unreadable or malformed ACG files exit with code 2. *)

open Cmdliner

module Acg = Noc_core.Acg
module Acg_io = Noc_core.Acg_io
module Bb = Noc_core.Branch_bound
module Decomp = Noc_core.Decomposition
module D = Noc_graph.Digraph
module Syn = Noc_core.Synthesis
module L = Noc_primitives.Library
module Fp = Noc_energy.Floorplan
module Tech = Noc_energy.Technology
module Obs = Noc_obs.Obs

let setup_logs () =
  Logs.set_reporter
    (Logs.format_reporter ~app:Format.err_formatter ~dst:Format.err_formatter ());
  Logs.set_level (Some Logs.Info)

(* exit code 2: input problems, as distinct from cmdliner's 124/125 *)
let load_acg file =
  match Acg_io.load file with
  | Ok acg -> acg
  | Error (`Msg m) ->
      Logs.err (fun k -> k "%s" m);
      exit 2

(* ------------------------------------------------------------------ *)
(* shared arguments                                                     *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed (deterministic runs).")

let library_arg =
  let lib_enum =
    Arg.enum [ ("default", `Default); ("minimal", `Minimal); ("extended", `Extended) ]
  in
  Arg.(
    value & opt lib_enum `Default
    & info [ "library" ] ~docv:"LIB" ~doc:"Communication library: default, minimal or extended.")

let resolve_library = function
  | `Default -> L.default ()
  | `Minimal -> L.minimal ()
  | `Extended -> L.extended ()

let acg_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ACG" ~doc:"ACG file (see Acg_io format).")

let beam_arg =
  Arg.(
    value & opt int 1
    & info [ "beam" ] ~docv:"K"
        ~doc:"Matches of each primitive expanded per search node (the paper uses 1).")

let timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Wall-clock budget for the search.")

let node_budget_arg =
  Arg.(
    value & opt int Bb.Budget.default.Bb.Budget.max_nodes
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Search-tree node budget (backstop).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for the branch-and-bound search (1 = sequential). Domains \
              run a work-stealing deque scheduler with a shared incumbent bound; \
              completed searches return results identical to the sequential search. \
              Clamped to the machine's recommended domain count \
              (override: \\$NOCSYNTH_MAX_DOMAINS).")

let portfolio_flag =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:"Race one search instance per branch ordering (canonical, coverage-first, \
              ratio-first), splitting the domains across them; the returned \
              decomposition is the best incumbent across instances.")

let fallback_flag =
  Arg.(
    value & flag
    & info [ "fallback" ]
        ~doc:"Seed the search with the deterministic greedy completion so a budget \
              exhaustion still returns a feasible decomposition, with the optimality \
              gap reported.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON file of the run (load it in Perfetto or \
              about://tracing).")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print a JSON metrics summary on stdout (human output moves to stderr).")

let cost_arg =
  let cost_enum = Arg.enum [ ("edge", `Edge); ("energy", `Energy) ] in
  Arg.(
    value & opt cost_enum `Edge
    & info [ "cost" ] ~docv:"COST"
        ~doc:"Cost function: abstract link count (edge) or Eq. 5 energy against a grid \
              floorplan (energy).")

let tech_arg =
  Arg.(
    value & opt string "cmos-180nm"
    & info [ "tech" ] ~docv:"NODE" ~doc:"Technology preset (cmos-180nm, cmos-130nm, cmos-100nm).")

let grid_floorplan acg =
  let n = Acg.num_cores acg in
  Fp.grid (Fp.uniform_cores ~n ~size_mm:2.0)

let resolve_tech name =
  match Tech.find name with
  | Some t -> t
  | None -> failwith (Printf.sprintf "unknown technology %S" name)

let make_options ?(portfolio = false) ?(fallback = false) ~cost ~tech ~acg ~beam () =
  let cost_fn =
    match cost with
    | `Edge -> Noc_core.Cost.Edge_count
    | `Energy -> Noc_core.Cost.Energy { tech = resolve_tech tech; fp = grid_floorplan acg }
  in
  {
    Bb.default_options with
    cost = cost_fn;
    max_matches_per_step = beam;
    role_aware = (match cost with `Energy -> true | `Edge -> false);
    portfolio;
    fallback;
  }

(* budget-exhaustion diagnostics shared by decompose and synth *)
let warn_anytime (st : Bb.stats) =
  if st.Bb.timed_out then begin
    (match st.Bb.gap_pct with
    | Some gap ->
        Logs.warn (fun k ->
            k "search budget exhausted; best incumbent shown (optimality gap <= %.1f%%)"
              gap)
    | None -> Logs.warn (fun k -> k "search budget exhausted; best incumbent shown"));
    if st.Bb.fallback_used then
      Logs.info (fun k -> k "greedy anytime fallback supplied the result")
  end;
  match st.Bb.winner with
  | Some w -> Logs.info (fun k -> k "portfolio winner: %s ordering" w)
  | None -> ()

let make_budget ~timeout ~node_budget ~domains =
  Bb.Budget.(
    default |> with_timeout_s timeout |> with_max_nodes node_budget |> with_domains domains)

let make_observer ~trace ~metrics =
  if trace <> None || metrics then Obs.create () else Obs.disabled

let write_trace observe = function
  | None -> ()
  | Some path ->
      Obs.Trace.write observe ~path;
      Logs.info (fun k -> k "wrote trace %s" path)

let float_metrics kvs = List.map (fun (k, v) -> (k, Obs.Json.Float v)) kvs

(* ------------------------------------------------------------------ *)
(* generate                                                             *)

let generate_cmd =
  let kind =
    let kind_enum = Arg.enum [ ("tgff", `Tgff); ("random", `Random) ] in
    Arg.(value & opt kind_enum `Random & info [ "kind" ] ~docv:"KIND" ~doc:"tgff or random.")
  in
  let nodes = Arg.(value & opt int 12 & info [ "nodes" ] ~docv:"N" ~doc:"Vertex count.") in
  let density =
    Arg.(value & opt float 0.2 & info [ "density" ] ~docv:"P" ~doc:"Edge probability (random).")
  in
  let preset =
    Arg.(
      value & opt (some string) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:"TGFF preset: automotive, consumer, networking, office, telecom.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run kind nodes density preset seed out =
    let rng = Noc_util.Prng.create ~seed in
    let acg =
      match kind with
      | `Random ->
          Acg.uniform ~volume:64 ~bandwidth:0.2
            (Noc_graph.Generators.erdos_renyi ~rng ~n:nodes ~p:density)
      | `Tgff ->
          let params =
            match preset with
            | Some name -> (
                match List.assoc_opt name Noc_tgff.Tgff.presets with
                | Some p -> p
                | None -> failwith (Printf.sprintf "unknown preset %S" name))
            | None -> { Noc_tgff.Tgff.default_params with tasks = nodes }
          in
          Acg.of_tgff (Noc_tgff.Tgff.generate ~rng params)
    in
    match out with
    | Some path ->
        Acg_io.write_file ~path acg;
        Logs.app (fun k ->
            k "wrote %s (%d cores, %d flows)" path (Acg.num_cores acg) (Acg.num_flows acg))
    | None -> print_string (Acg_io.to_string acg)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate an application characterization graph.")
    Term.(const run $ kind $ nodes $ density $ preset $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* decompose                                                            *)

let decompose_cmd =
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print search statistics.")
  in
  let run file lib cost tech beam timeout node_budget domains portfolio fallback stats
      trace metrics =
    let acg = load_acg file in
    let library = resolve_library lib in
    let options = make_options ~portfolio ~fallback ~cost ~tech ~acg ~beam () in
    let budget = make_budget ~timeout ~node_budget ~domains in
    let observe = make_observer ~trace ~metrics in
    let d, st = Bb.decompose ~options ~budget ~observe ~library acg in
    let listing = Format.asprintf "%a" (Decomp.pp_with_cost options.Bb.cost acg) d in
    (* with --metrics, stdout is reserved for the JSON *)
    if metrics then Logs.app (fun k -> k "%s" listing) else print_string listing;
    warn_anytime st;
    if stats then begin
      let line =
        Printf.sprintf "nodes=%d matches=%d leaves=%d pruned=%d incumbents=%d elapsed=%.3fs"
          st.Bb.nodes st.Bb.matches_tried st.Bb.leaves st.Bb.pruned st.Bb.incumbents
          st.Bb.elapsed_s
      in
      if metrics then Logs.app (fun k -> k "%s" line) else print_endline line
    end;
    write_trace observe trace;
    if metrics then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("search", Bb.stats_to_json st);
                ("observer", Obs.Json.Obj (Obs.metrics observe));
              ]))
  in
  Cmd.v
    (Cmd.info "decompose" ~doc:"Decompose an ACG into communication primitives.")
    Term.(
      const run $ acg_file_arg $ library_arg $ cost_arg $ tech_arg $ beam_arg $ timeout_arg
      $ node_budget_arg $ domains_arg $ portfolio_flag $ fallback_flag $ stats_flag
      $ trace_arg $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* synth                                                                *)

let synth_cmd =
  let dot_out =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the synthesized topology as Graphviz DOT.")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Check the technology's bandwidth and bisection constraints.")
  in
  let run file lib cost tech beam timeout node_budget domains portfolio fallback dot check
      trace metrics =
    let acg = load_acg file in
    let library = resolve_library lib in
    let options = make_options ~portfolio ~fallback ~cost ~tech ~acg ~beam () in
    let budget = make_budget ~timeout ~node_budget ~domains in
    let observe = make_observer ~trace ~metrics in
    let d, stats = Bb.decompose ~options ~budget ~observe ~library acg in
    warn_anytime stats;
    let tech' = resolve_tech tech in
    let fp = grid_floorplan acg in
    let constraints =
      if check then Some (Noc_core.Constraints.of_technology tech') else None
    in
    let report =
      Obs.span observe ~cat:"synth" "build-report" (fun () ->
          Noc_core.Report.build ~tech:tech' ~fp ?constraints ~cost:options.Bb.cost ~acg
            ~decomposition:d ~stats ())
    in
    if metrics then Logs.app (fun k -> k "%s" (Noc_core.Report.to_string report))
    else Format.printf "%a@." Noc_core.Report.pp report;
    (match dot with
    | Some path ->
        let arch = Syn.custom acg d in
        Noc_graph.Dot.write_file ~path
          (Noc_graph.Dot.to_dot ~name:"topology" ~undirected:true arch.Syn.topology);
        Logs.app (fun k -> k "wrote %s" path)
    | None -> ());
    write_trace observe trace;
    if metrics then print_endline (Obs.Json.to_string (Noc_core.Report.to_json report))
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize the customized architecture for an ACG.")
    Term.(
      const run $ acg_file_arg $ library_arg $ cost_arg $ tech_arg $ beam_arg $ timeout_arg
      $ node_budget_arg $ domains_arg $ portfolio_flag $ fallback_flag $ dot_out
      $ check_flag $ trace_arg $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* simulate                                                             *)

let simulate_cmd =
  let acg_file_opt =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"ACG"
          ~doc:
            "ACG file (see Acg_io format).  When omitted, the benchmark corpus is run \
             instead (see $(b,--scenario)).")
  in
  let rows = Arg.(value & opt int 4 & info [ "rows" ] ~docv:"R" ~doc:"Mesh rows.") in
  let cols = Arg.(value & opt int 4 & info [ "cols" ] ~docv:"C" ~doc:"Mesh columns.") in
  let cycles =
    Arg.(value & opt int 2000 & info [ "cycles" ] ~docv:"N" ~doc:"Injection cycles.")
  in
  let rate =
    Arg.(value & opt float 0.05 & info [ "rate" ] ~docv:"P" ~doc:"Peak injection rate per flow.")
  in
  let policy_arg =
    let policy_enum =
      Arg.enum [ ("fixed", `Fixed); ("adaptive", `Adaptive); ("oblivious", `Oblivious) ]
    in
    Arg.(
      value & opt policy_enum `Fixed
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Routing policy: fixed, adaptive or oblivious (coarse engine only).")
  in
  let engine_arg =
    let engine_enum =
      Arg.enum
        (List.map (fun k -> (Noc_sim.Engine.kind_name k, k)) Noc_sim.Engine.all_kinds)
    in
    Arg.(
      value & opt engine_enum Noc_sim.Engine.Coarse
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Simulation fidelity: $(b,coarse) (store-and-forward with contention and \
             energy accounting), $(b,wormhole) (lockstep worms over virtual channels) \
             or $(b,flit) (cycle-accurate VOQ routers with round-robin allocation, \
             credit backpressure and byte-serial links).")
  in
  let scenario_arg =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Corpus scenario to simulate (repeatable; default when no ACG file is \
             given: all).  Each scenario is decomposed, glued and driven with one \
             packet per flow on the selected engine; exits 1 if any scenario fails to \
             drain cleanly.")
  in
  let size_flits_arg =
    Arg.(
      value & opt int 4
      & info [ "size-flits" ] ~docv:"N" ~doc:"Packet size in flits (engine bursts).")
  in
  (* corpus mode: every picked scenario must drain cleanly on the chosen
     engine — the @flit-smoke CI gate runs exactly this with --engine flit *)
  let run_corpus ~engine ~library ~size_flits ~metrics scenarios =
    let say s = if metrics then Logs.app (fun k -> k "%s" s) else print_endline s in
    let corpus = Noc_benchkit.Corpus.default () in
    let picked =
      match scenarios with
      | [] -> corpus
      | names ->
          List.map
            (fun n ->
              match Noc_benchkit.Corpus.find n corpus with
              | Some s -> s
              | None ->
                  Logs.err (fun k -> k "unknown scenario %S" n);
                  exit 2)
            names
    in
    say
      (Printf.sprintf "%-22s %-8s %-8s %8s %8s %10s %6s" "scenario" "engine" "status"
         "cycles" "packets" "avg lat" "cons");
    let failed = ref false in
    List.iter
      (fun (s : Noc_benchkit.Corpus.scenario) ->
        let d, _ = Bb.decompose ~library s.Noc_benchkit.Corpus.acg in
        let arch = Syn.custom s.Noc_benchkit.Corpus.acg d in
        let net = Noc_sim.Engine.create engine arch in
        let flows = ref 0 in
        D.iter_edges
          (fun src dst ->
            incr flows;
            ignore (Noc_sim.Engine.inject ~size_flits net ~src ~dst))
          (Acg.graph s.Noc_benchkit.Corpus.acg);
        let verdict = Noc_sim.Engine.run_until_idle net in
        let summary = Noc_sim.Engine.summary net in
        let conserved =
          match Noc_sim.Engine.flitsim net with
          | Some f -> Noc_sim.Flitsim.conservation_ok f
          | None -> true
        in
        let ok =
          verdict = Noc_sim.Engine.Idle
          && summary.Noc_sim.Stats.packets = !flows
          && conserved
        in
        if not ok then failed := true;
        if Noc_sim.Engine.vc_truncated net then
          Logs.warn (fun k ->
              k
                "%s: VC assignment truncated (num_vcs too small) — a deadlock verdict \
                 here is attributable to under-provisioned VCs"
                s.Noc_benchkit.Corpus.name);
        say
          (Printf.sprintf "%-22s %-8s %-8s %8d %8d %10.2f %6s" s.Noc_benchkit.Corpus.name
             (Noc_sim.Engine.name net)
             (Noc_sim.Engine.verdict_name verdict)
             (Noc_sim.Engine.now net) summary.Noc_sim.Stats.packets
             summary.Noc_sim.Stats.avg_latency
             (if conserved then "ok" else "BROKEN")))
      picked;
    if !failed then begin
      Logs.err (fun k -> k "simulate: at least one scenario failed to drain cleanly");
      exit 1
    end
  in
  let run file lib tech rows cols cycles rate policy engine scenarios size_flits seed
      trace metrics =
    let library = resolve_library lib in
    match (file, scenarios) with
    | None, _ | _, _ :: _ -> run_corpus ~engine ~library ~size_flits ~metrics scenarios
    | Some file, [] ->
        let acg = load_acg file in
        let observe = make_observer ~trace ~metrics in
        let d, _ = Bb.decompose ~observe ~library acg in
        let tech' = resolve_tech tech in
        (* the floorplan must place every mesh tile: routes may pass through
           tiles that host no core *)
        let fp =
          Fp.grid ~cols
            (Fp.uniform_cores ~n:(max (Acg.num_cores acg) (rows * cols)) ~size_mm:2.0)
        in
        let mk_policy () =
          match policy with
          | `Fixed -> Noc_sim.Network.Fixed
          | `Adaptive -> Noc_sim.Network.Adaptive
          | `Oblivious -> Noc_sim.Network.Oblivious (Noc_util.Prng.create ~seed:(seed + 1))
        in
        let header =
          Printf.sprintf "%-12s %8s %10s %10s %12s %10s %8s" "arch" "packets" "avg lat"
            "thpt" "energy (pJ)" "power(mW)" "verdict"
        in
        if metrics then Logs.app (fun k -> k "%s" header) else print_endline header;
        let arch_metrics =
          List.map
            (fun (name, arch) ->
              match engine with
              | Noc_sim.Engine.Coarse ->
                  (* the coarse engine keeps its richer pipeline: routing
                     policies, contention counters and energy accounting *)
                  let net = Noc_sim.Network.create ~policy:(mk_policy ()) arch in
                  let rng = Noc_util.Prng.create ~seed in
                  let flows = Noc_sim.Traffic.flows_of_acg ~rate_scale:rate acg in
                  let ds =
                    Obs.span observe ~cat:"sim" name (fun () ->
                        Noc_sim.Traffic.run ~rng ~net ~flows ~cycles ())
                  in
                  let s = Noc_sim.Stats.summarize ds in
                  let row =
                    Printf.sprintf "%-12s %8d %10.2f %10.3f %12.1f %10.2f %8s" name
                      s.Noc_sim.Stats.packets s.Noc_sim.Stats.avg_latency
                      s.Noc_sim.Stats.throughput
                      (Noc_sim.Stats.total_energy_pj ~tech:tech' ~fp net)
                      (Noc_sim.Stats.avg_power_mw ~tech:tech' ~fp net)
                      "idle"
                  in
                  if metrics then Logs.app (fun k -> k "%s" row) else print_endline row;
                  (* surface the per-router/per-link activity as observer
                     counters so they land in the trace too *)
                  if Obs.enabled observe then
                    List.iter
                      (fun (key, v) ->
                        Obs.Gauge.set (Obs.gauge observe (Printf.sprintf "%s.%s" name key)) v)
                      (Noc_sim.Network.metrics net);
                  ( name,
                    Obs.Json.Obj
                      (float_metrics
                         (Noc_sim.Stats.summary_metrics s
                         @ Noc_sim.Network.metrics net
                         @ Noc_sim.Stats.energy_metrics ~tech:tech' ~fp net)) )
              | _ ->
                  (* higher-fidelity engines: Bernoulli traffic on the ACG
                     flows, as in Sweep.latency_vs_load (no energy model) *)
                  let net = Noc_sim.Engine.create engine arch in
                  let rng = Noc_util.Prng.create ~seed in
                  let edges = D.edges (Acg.graph acg) in
                  let verdict =
                    Obs.span observe ~cat:"sim" name (fun () ->
                        for _ = 1 to cycles do
                          List.iter
                            (fun (src, dst) ->
                              if Noc_util.Prng.bernoulli rng rate then
                                ignore (Noc_sim.Engine.inject ~size_flits net ~src ~dst))
                            edges;
                          Noc_sim.Engine.step net
                        done;
                        Noc_sim.Engine.run_until_idle ~max_cycles:200_000 net)
                  in
                  if Noc_sim.Engine.vc_truncated net then
                    Logs.warn (fun k ->
                        k
                          "%s: VC assignment truncated (num_vcs too small) — a deadlock \
                           verdict here is attributable to under-provisioned VCs"
                          name);
                  let s = Noc_sim.Engine.summary net in
                  let row =
                    Printf.sprintf "%-12s %8d %10.2f %10.3f %12s %10s %8s" name
                      s.Noc_sim.Stats.packets s.Noc_sim.Stats.avg_latency
                      s.Noc_sim.Stats.throughput "-" "-"
                      (Noc_sim.Engine.verdict_name verdict)
                  in
                  if metrics then Logs.app (fun k -> k "%s" row) else print_endline row;
                  ( name,
                    Obs.Json.Obj
                      (float_metrics
                         (Noc_sim.Stats.summary_metrics s @ Noc_sim.Engine.metrics net)) ))
            [ ("customized", Syn.custom acg d); ("mesh", Syn.mesh ~rows ~cols acg) ]
        in
        write_trace observe trace;
        if metrics then print_endline (Obs.Json.to_string (Obs.Json.Obj arch_metrics))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Simulate ACG traffic on customized vs mesh (or drive the benchmark corpus) at \
          a selectable engine fidelity.")
    Term.(
      const run $ acg_file_opt $ library_arg $ tech_arg $ rows $ cols $ cycles $ rate
      $ policy_arg $ engine_arg $ scenario_arg $ size_flits_arg $ seed_arg $ trace_arg
      $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* codesign                                                             *)

let codesign_cmd =
  let rounds =
    Arg.(value & opt int 4 & info [ "rounds" ] ~docv:"N" ~doc:"Co-design rounds.")
  in
  let run file lib tech rounds seed =
    let acg = load_acg file in
    let library = resolve_library lib in
    let tech' = resolve_tech tech in
    let fp = grid_floorplan acg in
    let rng = Noc_util.Prng.create ~seed in
    let r = Noc_core.Co_design.optimize ~rounds ~rng ~tech:tech' ~library ~fp acg in
    List.iter
      (fun it ->
        Format.printf "round %d: energy=%.1f pJ wirelength=%.1f@."
          it.Noc_core.Co_design.round it.Noc_core.Co_design.energy_pj
          it.Noc_core.Co_design.wirelength)
      r.Noc_core.Co_design.history;
    Format.printf "best energy: %.1f pJ@." r.Noc_core.Co_design.energy_pj;
    Format.printf "%a@."
      (Noc_core.Decomposition.pp_with_cost Noc_core.Cost.Edge_count acg)
      r.Noc_core.Co_design.decomposition
  in
  Cmd.v
    (Cmd.info "codesign"
       ~doc:"Jointly optimize the floorplan and the decomposition (Sec. 6 future work).")
    Term.(const run $ acg_file_arg $ library_arg $ tech_arg $ rounds $ seed_arg)

(* ------------------------------------------------------------------ *)
(* aes                                                                  *)

let aes_cmd =
  let run tech =
    let acg = Noc_aes.Distributed.acg () in
    let library = L.default () in
    let d, _ = Bb.decompose ~library acg in
    Format.printf "%a@." (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg) d;
    let tech' = resolve_tech tech in
    let fp = grid_floorplan acg in
    let key = Noc_aes.Aes_core.of_hex "000102030405060708090a0b0c0d0e0f" in
    let pt = Noc_aes.Aes_core.of_hex "00112233445566778899aabbccddeeff" in
    let config = { Noc_sim.Network.default_config with router_delay = 3 } in
    List.iter
      (fun (name, arch) ->
        let r =
          match Noc_aes.Distributed.encrypt ~config ~arch ~key pt with
          | Ok r -> r
          | Error (`Undrained n) ->
              Logs.err (fun m ->
                  m "%s: distributed AES did not drain (%d packets pending)" name n);
              exit 1
        in
        Format.printf
          "%-12s cycles/block=%4d thpt=%6.1f Mbps lat=%6.2f power=%6.2f mW energy=%9.1f pJ@."
          name r.Noc_aes.Distributed.cycles
          (Noc_aes.Distributed.throughput_mbps
             ~cycles_per_block:r.Noc_aes.Distributed.cycles ~clock_mhz:100.0)
          r.Noc_aes.Distributed.summary.Noc_sim.Stats.avg_latency
          (Noc_sim.Stats.avg_power_mw ~tech:tech' ~fp r.Noc_aes.Distributed.net)
          (Noc_sim.Stats.total_energy_pj ~tech:tech' ~fp r.Noc_aes.Distributed.net))
      [
        ("mesh", Syn.mesh ~rows:4 ~cols:4 acg);
        ("customized", Syn.custom acg d);
      ]
  in
  Cmd.v
    (Cmd.info "aes" ~doc:"Run the distributed-AES prototype comparison (Section 5.2).")
    Term.(const run $ tech_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                 *)

module Fz = Noc_oracle.Fuzz

let fuzz_cmd =
  let cases_arg =
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc:"Random ACG cases to run.")
  in
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"CI settings: caps the run at 40 cases — seconds in total.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Crash corpus replayed before fuzzing (a missing directory replays \
                nothing).")
  in
  let save_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-dir" ] ~docv:"DIR"
          ~doc:"Where shrunk counterexamples are written (default: the corpus \
                directory).")
  in
  let replay_only_flag =
    Arg.(
      value & flag & info [ "replay-only" ] ~doc:"Only replay the corpus; no new cases.")
  in
  let property_arg =
    Arg.(
      value & opt_all string []
      & info [ "property" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Restrict to one property (repeatable). Available: %s."
               (String.concat ", " Fz.property_names)))
  in
  let run cases smoke seed corpus save_dir replay_only props lib trace metrics =
    let library = resolve_library lib in
    let observe = make_observer ~trace ~metrics in
    let say s = if metrics then Logs.app (fun k -> k "%s" s) else print_endline s in
    let corpus_n, corpus_failures = Fz.replay ~observe ~library ~dir:corpus () in
    say
      (Printf.sprintf "corpus: %d case%s replayed, %d failure%s" corpus_n
         (if corpus_n = 1 then "" else "s")
         (List.length corpus_failures)
         (if List.length corpus_failures = 1 then "" else "s"));
    List.iter
      (fun (file, d) -> say (Printf.sprintf "  CORPUS FAIL %s: %s" file d))
      corpus_failures;
    let report =
      if replay_only then None
      else begin
        let cases = if smoke then min cases 40 else cases in
        let properties = match props with [] -> None | ps -> Some ps in
        let r = Fz.run ~observe ~library ?properties ~seed ~cases () in
        say (Format.asprintf "%a" Fz.pp_report r);
        let dir = Option.value save_dir ~default:corpus in
        List.iter
          (fun f ->
            match Fz.save_failure ~dir f with
            | path -> say (Printf.sprintf "  saved %s" path)
            | exception Sys_error m ->
                Logs.warn (fun k -> k "could not save counterexample: %s" m))
          r.Fz.failures;
        Some r
      end
    in
    write_trace observe trace;
    if metrics then begin
      let fuzz_json =
        match report with
        | None -> Obs.Json.Null
        | Some r ->
            Obs.Json.Obj
              [
                ("cases", Obs.Json.Int r.Fz.cases);
                ("properties", Obs.Json.Int r.Fz.properties);
                ("failures", Obs.Json.Int (List.length r.Fz.failures));
                ("shrink_steps", Obs.Json.Int r.Fz.shrink_steps);
                ("elapsed_s", Obs.Json.Float r.Fz.elapsed_s);
              ]
      in
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("corpus_cases", Obs.Json.Int corpus_n);
                ("corpus_failures", Obs.Json.Int (List.length corpus_failures));
                ("fuzz", fuzz_json);
                ("metrics", Obs.Json.Obj (Obs.metrics observe));
              ]))
    end;
    let failed =
      corpus_failures <> []
      || (match report with Some r -> r.Fz.failures <> [] | None -> false)
    in
    if failed then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing against the reference oracles: replay the crash corpus, \
          then run random ACGs through every property (decomposition vs exhaustive \
          optimum, bisection vs brute force, VF2 vs naive enumeration, cost \
          recomputation, CDG deadlock check, Eq. 2 partition, route validity), \
          shrinking and saving any counterexample.  Exits 1 on any failure.")
    Term.(
      const run $ cases_arg $ smoke_flag $ seed_arg $ corpus_arg $ save_dir_arg
      $ replay_only_flag $ property_arg $ library_arg $ trace_arg $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* faults                                                               *)

module Campaign = Noc_resil.Campaign

let faults_cmd =
  let campaign_arg =
    let campaign_enum = Arg.enum [ ("single-link", `Single); ("multi-link", `Multi) ] in
    Arg.(
      value & opt campaign_enum `Single
      & info [ "campaign" ] ~docv:"KIND"
          ~doc:"single-link (exhaustive, one run per physical link) or multi-link \
                (sampled simultaneous failures).")
  in
  let links_arg =
    Arg.(
      value & opt int 2
      & info [ "links" ] ~docv:"K" ~doc:"Simultaneous link failures per multi-link run.")
  in
  let samples_arg =
    Arg.(
      value & opt int 20
      & info [ "samples" ] ~docv:"N" ~doc:"Sampled fault sets per multi-link campaign.")
  in
  let scenario_arg =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Restrict to one corpus scenario (repeatable; default: all).")
  in
  let harden_flag =
    Arg.(
      value & flag
      & info [ "harden" ]
          ~doc:"Add minimum-cost spare links (Eq. 1 link cost) until no single link \
                failure can disconnect a flow, then run the campaign on the hardened \
                architecture.")
  in
  let run campaign links samples scenarios harden seed lib trace metrics =
    let library = resolve_library lib in
    let observe = make_observer ~trace ~metrics in
    let say s = if metrics then Logs.app (fun k -> k "%s" s) else print_endline s in
    let corpus = Noc_benchkit.Corpus.default () in
    let picked =
      match scenarios with
      | [] -> corpus
      | names ->
          List.map
            (fun n ->
              match Noc_benchkit.Corpus.find n corpus with
              | Some s -> s
              | None ->
                  Logs.err (fun k -> k "unknown scenario %S" n);
                  exit 2)
            names
    in
    let spec =
      match campaign with
      | `Single -> Campaign.Single_link
      | `Multi -> Campaign.Multi_link { links; samples }
    in
    say
      (Printf.sprintf "%-20s %6s %6s %8s %8s %6s %6s %9s" "scenario" "links" "runs"
         "min dlv" "max lat" "disc" "crit" "survives");
    let reports =
      List.map
        (fun (s : Noc_benchkit.Corpus.scenario) ->
          let acg = s.Noc_benchkit.Corpus.acg in
          let d, _ = Bb.decompose ~observe ~library acg in
          let arch = Syn.custom acg d in
          let arch, spares =
            if harden then begin
              let tech = Tech.cmos_180nm and fp = grid_floorplan acg in
              let arch', spares = Syn.harden ~tech ~fp arch in
              List.iter
                (fun (a, b) ->
                  Logs.info (fun k -> k "%s: spare link %d-%d" s.Noc_benchkit.Corpus.name a b))
                spares;
              (arch', spares)
            end
            else (arch, [])
          in
          let rep =
            Campaign.run ~observe ~name:s.Noc_benchkit.Corpus.name ~seed ~spec acg arch
          in
          say
            (Printf.sprintf "%-20s %6d %6d %8.3f %8.2f %6d %6d %9s"
               rep.Campaign.scenario
               (List.length (Noc_resil.Fault.undirected_links arch))
               (List.length rep.Campaign.runs)
               rep.Campaign.min_delivered_fraction rep.Campaign.max_latency_factor
               rep.Campaign.worst_disconnected_pairs rep.Campaign.critical_links
               (if rep.Campaign.survives_all then "yes" else "NO"));
          (* the worst offenders, for targeted hardening *)
          List.iteri
            (fun i (c : Campaign.link_criticality) ->
              if i < 3 && (c.Campaign.delivered_fraction < 1.0 || c.Campaign.disconnected_pairs > 0)
              then
                say
                  (Printf.sprintf "  critical link %d-%d: delivered %.3f, %d pair(s) cut"
                     (fst c.Campaign.link) (snd c.Campaign.link)
                     c.Campaign.delivered_fraction c.Campaign.disconnected_pairs))
            rep.Campaign.criticality;
          (rep, spares))
        picked
    in
    write_trace observe trace;
    if metrics then begin
      let report_json ((rep : Campaign.report), spares) =
        ( rep.Campaign.scenario,
          Obs.Json.Obj
            [
              ("runs", Obs.Json.Int (List.length rep.Campaign.runs));
              ("min_delivered_fraction", Obs.Json.Float rep.Campaign.min_delivered_fraction);
              ("max_latency_factor", Obs.Json.Float rep.Campaign.max_latency_factor);
              ( "worst_disconnected_pairs",
                Obs.Json.Int rep.Campaign.worst_disconnected_pairs );
              ("critical_links", Obs.Json.Int rep.Campaign.critical_links);
              ("survives_all", Obs.Json.Bool rep.Campaign.survives_all);
              ("stranded", Obs.Json.Int rep.Campaign.stranded_total);
              ( "spares",
                Obs.Json.List
                  (List.map
                     (fun (a, b) ->
                       Obs.Json.List [ Obs.Json.Int a; Obs.Json.Int b ])
                     spares) );
            ] )
      in
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              (List.map report_json reports
              @ [ ("metrics", Obs.Json.Obj (Obs.metrics observe)) ])))
    end;
    (* a stranded packet means the fault subsystem failed to classify it:
       that is a bug, not a degraded-but-correct outcome *)
    let stranded =
      List.fold_left (fun n ((r : Campaign.report), _) -> n + r.Campaign.stranded_total) 0 reports
    in
    if stranded > 0 then begin
      Logs.err (fun k -> k "%d packet(s) neither delivered nor dropped" stranded);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-injection campaigns on the synthesized corpus architectures: fail links \
          mid-flight (exhaustively one at a time, or sampled multi-link sets), measure \
          delivered fraction, latency degradation and per-link criticality, and \
          optionally harden the topology with spare links until any single link \
          failure is survivable.  Exits 1 if any packet is left unclassified.")
    Term.(
      const run $ campaign_arg $ links_arg $ samples_arg $ scenario_arg $ harden_flag
      $ seed_arg $ library_arg $ trace_arg $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* bench                                                                *)

let resolve_rev = function
  | Some r -> r
  | None -> (
      match Sys.getenv_opt "NOCSYNTH_REV" with
      | Some r when r <> "" -> r
      | _ -> (
          (* best effort: outside a git checkout (or a sandboxed build) the
             record is simply stamped "dev" *)
          try
            let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
            let line = try input_line ic with End_of_file -> "" in
            match Unix.close_process_in ic with
            | Unix.WEXITED 0 when line <> "" -> line
            | _ -> "dev"
          with _ -> "dev"))

let bench_cmd =
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI settings: single domain, short sweeps — seconds for the whole corpus.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Record file to write (default BENCH_<rev>.json).")
  in
  let rev_arg =
    Arg.(
      value & opt (some string) None
      & info [ "rev" ] ~docv:"REV"
          ~doc:"Revision stamp for the record (default: \\$NOCSYNTH_REV, then git, then \
                'dev').")
  in
  let tier_arg =
    let tier_enum =
      Arg.enum
        [ ("default", `Default); ("scale", `Scale); ("scale-smoke", `Scale_smoke) ]
    in
    Arg.(
      value & opt tier_enum `Default
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "Corpus tier: the persisted default corpus, the 64-1024-core scaling tier \
             (scale), or its 64/128-core CI smoke prefix (scale-smoke).  The scale \
             tiers run budget-bounded anytime searches with the greedy fallback and \
             skip the simulation stages.")
  in
  let run smoke tier out rev lib trace metrics =
    let settings, scenarios, mode =
      match tier with
      | `Scale -> (Noc_benchkit.Runner.scale, Noc_benchkit.Corpus.scale (), "scale")
      | `Scale_smoke ->
          ( Noc_benchkit.Runner.scale_smoke,
            Noc_benchkit.Corpus.scale_smoke (),
            "scale-smoke" )
      | `Default ->
          ( (if smoke then Noc_benchkit.Runner.smoke else Noc_benchkit.Runner.full),
            Noc_benchkit.Corpus.default (),
            if smoke then "smoke" else "full" )
    in
    let library = resolve_library lib in
    let observe = make_observer ~trace ~metrics in
    let rev = resolve_rev rev in
    let say s = if metrics then Logs.app (fun k -> k "%s" s) else print_endline s in
    say (Format.asprintf "%a" Noc_benchkit.Runner.pp_header ());
    let results =
      List.map
        (fun sc ->
          let r = Noc_benchkit.Runner.run ~observe ~library ~settings sc in
          say (Format.asprintf "%a" Noc_benchkit.Runner.pp_row r);
          r)
        scenarios
    in
    let record = Noc_benchkit.Record.to_json ~rev ~mode results in
    let path = Option.value out ~default:(Printf.sprintf "BENCH_%s.json" rev) in
    Noc_benchkit.Record.write ~path record;
    Logs.info (fun k -> k "wrote %s (%d scenarios)" path (List.length results));
    write_trace observe trace;
    if metrics then print_endline (Obs.Json.to_string record)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the benchmark corpus (decompose, synth, deadlock check, wormhole \
          simulation, load sweep) and persist a BENCH_<rev>.json record; compare two \
          records with bench/compare.exe.")
    Term.(
      const run $ smoke_flag $ tier_arg $ out $ rev_arg $ library_arg $ trace_arg
      $ metrics_flag)

(* ------------------------------------------------------------------ *)
(* explore                                                              *)

module Explore = Noc_explore.Explore

let explore_cmd =
  let scenario_arg =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Restrict to one corpus scenario (repeatable; default: all 12).")
  in
  let points_arg =
    Arg.(
      value & opt int 64
      & info [ "points" ] ~docv:"N"
          ~doc:"Design points evaluated per scenario (0 = the whole space).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the fronts to FILE: CSV when the name ends in .csv, JSON \
                otherwise (default: JSON on stdout with --metrics, table only \
                without).")
  in
  let baseline_arg =
    Arg.(
      value & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Gate against a committed front record (a previous --out JSON file): \
                exit 1 when any scenario's front is empty, smaller than the \
                baseline's, or covers less hypervolume.")
  in
  (* the front record is a set of per-scenario Explore.to_json objects *)
  let set_json results =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "nocsynth-explore-set");
        ("version", Obs.Json.Int 1);
        ( "scenarios",
          Obs.Json.List
            (List.map (fun (name, axes, r) -> Explore.to_json ~name axes r) results) );
      ]
  in
  let load_baseline path =
    let contents = In_channel.with_open_text path In_channel.input_all in
    match Obs.Json.parse contents with
    | Error (`Msg m) ->
        Logs.err (fun k -> k "%s: %s" path m);
        exit 2
    | Ok json -> (
        match Obs.Json.member "scenarios" json with
        | Some (Obs.Json.List scenarios) ->
            List.filter_map
              (fun s ->
                match
                  ( Obs.Json.member "scenario" s,
                    Obs.Json.member "front_size" s,
                    Option.bind (Obs.Json.member "hypervolume" s) Obs.Json.to_float )
                with
                | Some (Obs.Json.Str name), Some (Obs.Json.Int fs), Some hv ->
                    Some (name, (fs, hv))
                | _ -> None)
              scenarios
        | _ ->
            Logs.err (fun k -> k "%s: not a nocsynth-explore-set record" path);
            exit 2)
  in
  let run scenarios points seed domains lib trace metrics out baseline =
    (* worker count, like everywhere else, respects the machine clamp; the
       front does not depend on it, only wall-clock does *)
    let domains = max 1 (min domains (Bb.domain_cap ())) in
    let library = resolve_library lib in
    let observe = make_observer ~trace ~metrics in
    let say s = if metrics then Logs.app (fun k -> k "%s" s) else print_endline s in
    let corpus = Noc_benchkit.Corpus.default () in
    let picked =
      match scenarios with
      | [] -> corpus
      | names ->
          List.map
            (fun n ->
              match Noc_benchkit.Corpus.find n corpus with
              | Some s -> s
              | None ->
                  Logs.err (fun k -> k "unknown scenario %S" n);
                  exit 2)
            names
    in
    say
      (Printf.sprintf "%-22s %6s %7s %6s %14s" "scenario" "space" "points" "front"
         "hypervolume");
    let results =
      List.map
        (fun (s : Noc_benchkit.Corpus.scenario) ->
          let name = s.Noc_benchkit.Corpus.name in
          let acg = s.Noc_benchkit.Corpus.acg in
          let axes = Explore.axes ~seed ~library acg in
          let r = Explore.run ~observe ~domains ~points ~seed axes acg in
          say
            (Printf.sprintf "%-22s %6d %7d %6d %14.2f" name r.Explore.space
               (Array.length r.Explore.evaluated)
               (List.length r.Explore.front)
               r.Explore.hypervolume);
          (name, axes, r))
        picked
    in
    (match out with
    | None -> ()
    | Some path ->
        let text =
          if Filename.check_suffix path ".csv" then
            String.concat "\n"
              ((Explore.csv_header
               :: List.concat_map
                    (fun (name, axes, r) -> Explore.to_csv_rows ~name axes r)
                    results)
              @ [ "" ])
          else Obs.Json.to_string (set_json results) ^ "\n"
        in
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
        Logs.info (fun k -> k "wrote %s (%d scenario(s))" path (List.length results)));
    write_trace observe trace;
    if metrics then print_endline (Obs.Json.to_string (set_json results));
    let failures = ref 0 in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          incr failures;
          Logs.err (fun k -> k "%s" m))
        fmt
    in
    List.iter
      (fun (name, _, (r : Explore.result)) ->
        if r.Explore.front = [] then fail "%s: empty Pareto front" name)
      results;
    (match baseline with
    | None -> ()
    | Some path ->
        let base = load_baseline path in
        List.iter
          (fun (name, _, (r : Explore.result)) ->
            match List.assoc_opt name base with
            | None -> Logs.warn (fun k -> k "%s: not in baseline %s" name path)
            | Some (base_fs, base_hv) ->
                let fs = List.length r.Explore.front in
                if fs < base_fs then
                  fail "%s: front size %d below baseline %d" name fs base_fs;
                (* exact reruns reproduce the baseline bit-for-bit; the
                   epsilon only forgives float noise, not regressions *)
                let tol = 1e-6 *. Float.max 1.0 (Float.abs base_hv) in
                if r.Explore.hypervolume < base_hv -. tol then
                  fail "%s: hypervolume %.6f below baseline %.6f" name
                    r.Explore.hypervolume base_hv)
          results);
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Multi-objective design-space exploration: sample the mapping x \
          library-subset x bandwidth-provisioning space of each corpus scenario, \
          score every point as (energy, latency, area) through the decomposition \
          pipeline, and report the Pareto front and its dominated hypervolume.  \
          Deterministic for a fixed seed regardless of --domains.  With --baseline, \
          exits 1 on an empty front or a front-size/hypervolume regression.")
    Term.(
      const run $ scenario_arg $ points_arg $ seed_arg $ domains_arg $ library_arg
      $ trace_arg $ metrics_flag $ out_arg $ baseline_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                                *)

module Serve = Noc_serve

let serve_cmd =
  let library_name = function
    | `Default -> "default"
    | `Minimal -> "minimal"
    | `Extended -> "extended"
  in
  let replay_arg =
    Arg.(
      value & opt (some int) None
      & info [ "replay" ] ~docv:"N"
          ~doc:
            "Load-test mode: replay 3*N requests (per base ACG one fresh request, one \
             duplicate and one vertex-permuted copy) through a fresh daemon and report \
             requests/sec and cache hit rates, instead of serving stdin.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Replay base ACGs from this directory instead of the seeded generator.")
  in
  let cache_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"Result-cache capacity (LRU entries).")
  in
  let assert_hit_arg =
    Arg.(
      value & opt (some float) None
      & info [ "assert-hit-rate" ] ~docv:"R"
          ~doc:
            "Load-test gate: exit 1 when the repeated-half hit rate is below R or a \
             cache hit is not byte-identical to its original miss.")
  in
  let chaos_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos" ] ~docv:"N"
          ~doc:
            "Chaos mode: drive N seeded adversarial requests (malformed inputs, \
             starved budgets, injected faults, overload bursts) through a fresh \
             daemon and gate the crash-only contract — zero daemon deaths, one typed \
             reply per request, preserved cache behaviour for the well-formed subset. \
             Exits 1 when the gate fails.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int Serve.Daemon.default_config.Serve.Daemon.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission bound: batch requests beyond the first N are shed with a typed \
             'shed' error instead of queued.")
  in
  let max_cores_arg =
    Arg.(
      value & opt int Serve.Daemon.default_config.Serve.Daemon.max_cores
      & info [ "max-cores" ] ~docv:"N"
          ~doc:
            "Input-size guard: ACGs with more than N cores are rejected with a typed \
             'bad_request' error before any search work.")
  in
  let snapshot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:
            "Crash-only cache persistence: restore the result cache from PATH at \
             startup (a corrupt or missing snapshot is discarded for a cold start, \
             never an error) and write a checksummed snapshot back on clean exit.")
  in
  let run replay corpus cache_capacity assert_hit chaos max_inflight max_cores snapshot
      seed timeout node_budget domains lib trace metrics =
    let observe = make_observer ~trace ~metrics in
    let budget = make_budget ~timeout ~node_budget ~domains in
    let library = library_name lib in
    (match (chaos, replay) with
    | Some requests, _ ->
        let stats =
          Serve.Chaos.run ~seed ~requests ~max_inflight ~cache_capacity ~observe ()
        in
        let say s = if metrics then Logs.app (fun k -> k "%s" s) else print_endline s in
        say (Format.asprintf "%a" Serve.Chaos.pp stats);
        if metrics then
          print_endline
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    ("chaos", Serve.Chaos.to_json stats);
                    ("metrics", Obs.Json.Obj (Obs.metrics observe));
                  ]));
        write_trace observe trace;
        (match Serve.Chaos.gate stats with
        | Ok () ->
            Logs.info (fun k ->
                k "chaos gate passed: %d requests, %d replies, 0 deaths" stats.requests
                  stats.Serve.Chaos.replies)
        | Error msg ->
            Logs.err (fun k -> k "chaos gate failed: %s" msg);
            exit 1)
    | None, Some cases ->
        let stats =
          Serve.Replay.run ~seed ~cases ?corpus_dir:corpus ~cache_capacity ~library
            ~budget ~observe ()
        in
        let say s = if metrics then Logs.app (fun k -> k "%s" s) else print_endline s in
        say (Format.asprintf "%a" Serve.Replay.pp stats);
        if metrics then
          print_endline
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    ("requests", Obs.Json.Int stats.Serve.Replay.requests);
                    ("unique", Obs.Json.Int stats.Serve.Replay.unique);
                    ("rps", Obs.Json.Float stats.Serve.Replay.rps);
                    ("hit_rate", Obs.Json.Float stats.Serve.Replay.hit_rate);
                    ( "repeated_hit_rate",
                      Obs.Json.Float stats.Serve.Replay.repeated_hit_rate );
                    ("byte_identical", Obs.Json.Bool stats.Serve.Replay.byte_identical);
                    ("metrics", Obs.Json.Obj (Obs.metrics observe));
                  ]));
        write_trace observe trace;
        let gate_failed =
          match assert_hit with
          | None -> false
          | Some r ->
              stats.Serve.Replay.repeated_hit_rate < r
              || not stats.Serve.Replay.byte_identical
        in
        if gate_failed then begin
          Logs.err (fun k ->
              k "replay gate failed: repeated-half hit rate %.2f (want >= %.2f), \
                 byte-identical %b"
                stats.Serve.Replay.repeated_hit_rate
                (Option.value ~default:0.0 assert_hit)
                stats.Serve.Replay.byte_identical);
          exit 1
        end
    | None, None ->
        let config =
          { Serve.Daemon.default_config with Serve.Daemon.max_inflight; max_cores }
        in
        let daemon = Serve.Daemon.create ~cache_capacity ~config ~observe () in
        (match snapshot with
        | None -> ()
        | Some path -> (
            match Serve.Cache.restore (Serve.Daemon.cache daemon) ~path with
            | Ok n -> Logs.info (fun k -> k "restored %d cache entr(ies) from %s" n path)
            | Error (`Msg m) ->
                Logs.warn (fun k -> k "cold start, snapshot discarded: %s" m)));
        let ls = Serve.Daemon.run_loop ~library ~budget daemon stdin stdout in
        let c = Serve.Daemon.cache_stats daemon in
        Logs.info (fun k ->
            k
              "served %d request(s) (%d ok / %d errors / %d shed); cache: %d hits / %d \
               misses / %d evictions"
              ls.Serve.Daemon.served ls.Serve.Daemon.ok ls.Serve.Daemon.errors
              ls.Serve.Daemon.shed c.Serve.Cache.hits c.Serve.Cache.misses
              c.Serve.Cache.evictions);
        (match snapshot with
        | None -> ()
        | Some path ->
            Serve.Cache.snapshot (Serve.Daemon.cache daemon) ~path;
            Logs.info (fun k -> k "cache snapshot written to %s" path));
        write_trace observe trace)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the synthesis service: read ACG file paths from stdin (one per line, \
          'quit' or EOF to stop) and answer each with a JSON response comparing the \
          synthesized custom topology against 2D-mesh and sparse-Hamming regular \
          alternatives.  Identical and isomorphic requests are answered from a \
          content-addressed cache keyed by the canonical ACG hash.  Every request \
          gets exactly one reply: failures are typed JSON errors (bad_request, \
          over_budget, shed, internal), never a dead daemon.  With --replay, \
          load-test the pipeline instead and report requests/sec and cache hit \
          rates.  With --chaos, run the seeded adversarial gate.")
    Term.(
      const run $ replay_arg $ corpus_arg $ cache_arg $ assert_hit_arg $ chaos_arg
      $ max_inflight_arg $ max_cores_arg $ snapshot_arg $ seed_arg $ timeout_arg
      $ node_budget_arg $ domains_arg $ library_arg $ trace_arg $ metrics_flag)

let main =
  Cmd.group
    (Cmd.info "nocsynth" ~version:"1.0.0"
       ~doc:"Energy- and performance-driven NoC communication architecture synthesis")
    [
      generate_cmd;
      decompose_cmd;
      synth_cmd;
      simulate_cmd;
      codesign_cmd;
      aes_cmd;
      bench_cmd;
      explore_cmd;
      fuzz_cmd;
      faults_cmd;
      serve_cmd;
    ]

let () =
  setup_logs ();
  exit (Cmd.eval main)
