(* The paper's flagship experiment (Section 5.2): distribute AES-128 over
   16 NoC nodes, synthesize a customized communication architecture for its
   traffic, and compare it against a standard 4x4 mesh on throughput,
   latency, power and energy per encrypted block.

   Run with: dune exec examples/aes_synthesis.exe *)

module A = Noc_aes.Aes_core
module Dist = Noc_aes.Distributed

let ok_encrypt = function
  | Ok r -> r
  | Error (`Undrained n) ->
      failwith (Printf.sprintf "distributed AES did not drain: %d packets pending" n)
module Bb = Noc_core.Branch_bound
module Decomp = Noc_core.Decomposition
module Syn = Noc_core.Synthesis
module Stats = Noc_sim.Stats

let () =
  (* the Fig. 6a application characterization graph *)
  let acg = Dist.acg () in
  Format.printf "AES ACG: %d cores, %d flows@.@." (Noc_core.Acg.num_cores acg)
    (Noc_core.Acg.num_flows acg);

  (* decomposition: reproduces the paper's listing (COST: 28) *)
  let library = Noc_primitives.Library.default () in
  let d, stats = Bb.decompose ~library acg in
  Format.printf "Decomposition found in %.2f s:@.%a@." stats.Bb.elapsed_s
    (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg)
    d;

  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  Format.printf "custom: %a@.mesh:   %a@.@." Syn.pp custom Syn.pp mesh;

  (* encrypt the FIPS-197 test vector on both architectures *)
  let key = A.of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = A.of_hex "00112233445566778899aabbccddeeff" in
  let expect = A.encrypt_block ~key pt in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  let config = { Noc_sim.Network.default_config with router_delay = 3 } in
  let run name arch =
    let r = ok_encrypt (Dist.encrypt ~config ~arch ~key pt) in
    assert (Bytes.equal r.Dist.ciphertext expect);
    let energy = Stats.total_energy_pj ~tech ~fp r.Dist.net in
    let power = Stats.avg_power_mw ~tech ~fp r.Dist.net in
    Format.printf
      "%-10s cycles/block=%4d  throughput=%6.1f Mbps  avg latency=%6.2f cy  power=%6.2f \
       mW  energy/block=%8.1f pJ@."
      name r.Dist.cycles
      (Dist.throughput_mbps ~cycles_per_block:r.Dist.cycles ~clock_mhz:100.0)
      r.Dist.summary.Stats.avg_latency power energy;
    (r.Dist.cycles, energy)
  in
  Format.printf "Ciphertext (both architectures, bit-exact): %s@.@." (A.to_hex expect);
  let mc, me = run "mesh" mesh in
  let cc, ce = run "customized" custom in
  Format.printf
    "@.customized vs mesh: %+.0f%% throughput, %.0f%% of the cycles, %.0f%% of the \
     energy per block@."
    ((float_of_int mc /. float_of_int cc -. 1.) *. 100.)
    (100. *. float_of_int cc /. float_of_int mc)
    (100. *. ce /. me)
