(* Routing-strategy exploration — the paper's Section 6 future work:
   "the possibility of using adaptive or stochastic routing strategies
   should be investigated."

   The distributed AES block is encrypted on both the customized
   architecture and the 4x4 mesh under three routing policies:
     fixed      - the paper's setting (XY / schedule-derived tables)
     adaptive   - minimal adaptive, least-backlog output selection
     oblivious  - minimal stochastic (uniform over minimal next hops)

   Run with: dune exec examples/routing_strategies.exe *)

module Dist = Noc_aes.Distributed

let ok_encrypt = function
  | Ok r -> r
  | Error (`Undrained n) ->
      failwith (Printf.sprintf "distributed AES did not drain: %d packets pending" n)
module Net = Noc_sim.Network
module Syn = Noc_core.Synthesis

let () =
  let acg = Dist.acg () in
  let library = Noc_primitives.Library.default () in
  let d, _ = Noc_core.Branch_bound.decompose ~library acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  let key = Noc_aes.Aes_core.of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = Noc_aes.Aes_core.of_hex "00112233445566778899aabbccddeeff" in
  let expect = Noc_aes.Aes_core.encrypt_block ~key pt in
  let config = { Net.default_config with router_delay = 3 } in
  Format.printf "%-12s %-10s %14s %12s@." "arch" "routing" "cycles/block" "avg latency";
  (* --- fixed policy: the full bit-exact encryption --- *)
  List.iter
    (fun (arch_name, arch) ->
      let r = ok_encrypt (Dist.encrypt ~config ~arch ~key pt) in
      assert (Bytes.equal r.Dist.ciphertext expect);
      Format.printf "%-12s %-10s %14d %12.2f@." arch_name "fixed" r.Dist.cycles
        r.Dist.summary.Noc_sim.Stats.avg_latency)
    [ ("mesh", mesh); ("customized", custom) ];
  (* --- adaptive / oblivious: same offered traffic, phase-level replay --- *)
  let phase_traffic arch policy =
    let net = Net.create ~config ~policy arch in
    (* one AES round's communication: ShiftRows then MixColumns bursts *)
    let burst flows =
      List.iter (fun (src, dst) -> ignore (Net.inject ~size_flits:2 net ~src ~dst)) flows;
      match Net.run_until_idle net with `Idle -> () | `Limit _ -> failwith "hang"
    in
    let shift_flows =
      List.concat_map
        (fun row ->
          List.filter_map
            (fun col ->
              let src = Dist.node_of ~row ~col in
              let dst = Dist.node_of ~row ~col:((col - row + 4) mod 4) in
              if src <> dst then Some (src, dst) else None)
            [ 0; 1; 2; 3 ])
        [ 1; 2; 3 ]
    in
    let mix_flows =
      List.concat_map
        (fun col ->
          List.concat_map
            (fun r1 ->
              List.filter_map
                (fun r2 ->
                  if r1 <> r2 then
                    Some (Dist.node_of ~row:r1 ~col, Dist.node_of ~row:r2 ~col)
                  else None)
                [ 0; 1; 2; 3 ])
            [ 0; 1; 2; 3 ])
        [ 0; 1; 2; 3 ]
    in
    for _ = 1 to 10 do
      burst shift_flows;
      burst mix_flows
    done;
    let s = Noc_sim.Stats.summarize (Net.deliveries net) in
    (Net.now net, s.Noc_sim.Stats.avg_latency)
  in
  List.iter
    (fun (arch_name, arch) ->
      List.iter
        (fun (pol_name, policy) ->
          let cycles, lat = phase_traffic arch policy in
          Format.printf "%-12s %-10s %14d %12.2f@." arch_name pol_name cycles lat)
        [
          ("fixed*", Net.Fixed);
          ("adaptive", Net.Adaptive);
          ("oblivious", Net.Oblivious (Noc_util.Prng.create ~seed:7));
        ])
    [ ("mesh", mesh); ("customized", custom) ];
  Format.printf
    "@.(fixed = full bit-exact encryption; fixed*/adaptive/oblivious replay the@.\
    \ per-round communication bursts only, so compare within the starred rows)@.";
  (* AES flows are row/column aligned, so they have a single minimal path
     and adaptivity cannot help - itself a finding.  Transpose traffic
     (node (r,c) -> node (c,r)) has many minimal paths and shows the
     difference. *)
  Format.printf "@.transpose traffic on the 4x4 mesh (8 bursts of 12 diagonal flows):@.";
  Format.printf "%-10s %10s %12s@." "routing" "cycles" "avg latency";
  let transpose_flows =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun c ->
            if r <> c then Some (Dist.node_of ~row:r ~col:c, Dist.node_of ~row:c ~col:r)
            else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let diag_acg =
    Noc_core.Acg.uniform ~volume:8 ~bandwidth:0.1
      (Noc_graph.Digraph.of_edges transpose_flows)
  in
  let mesh_diag = Syn.mesh ~rows:4 ~cols:4 diag_acg in
  List.iter
    (fun (pol_name, policy) ->
      let net = Net.create ~config ~policy mesh_diag in
      for _ = 1 to 8 do
        List.iter
          (fun (src, dst) -> ignore (Net.inject ~size_flits:2 net ~src ~dst))
          transpose_flows;
        match Net.run_until_idle net with `Idle -> () | `Limit _ -> failwith "hang"
      done;
      let s = Noc_sim.Stats.summarize (Net.deliveries net) in
      Format.printf "%-10s %10d %12.2f@." pol_name (Net.now net)
        s.Noc_sim.Stats.avg_latency)
    [
      ("fixed", Net.Fixed);
      ("adaptive", Net.Adaptive);
      ("oblivious", Net.Oblivious (Noc_util.Prng.create ~seed:7));
    ];
  (* a burst on a single two-path flow shows the adaptive win directly:
     fixed XY forces every packet over the same channel, adaptive splits
     the burst across both minimal paths *)
  Format.printf "@.burst of 8 x 4-flit packets, corner to corner on a 2x2 mesh:@.";
  let one_flow =
    Noc_core.Acg.uniform ~volume:8 ~bandwidth:0.1 (Noc_graph.Digraph.of_edges [ (1, 4) ])
  in
  let mesh22 = Syn.mesh ~rows:2 ~cols:2 one_flow in
  List.iter
    (fun (pol_name, policy) ->
      let net = Net.create ~policy mesh22 in
      for _ = 1 to 8 do
        ignore (Net.inject ~size_flits:4 net ~src:1 ~dst:4)
      done;
      (match Net.run_until_idle net with `Idle -> () | `Limit _ -> failwith "hang");
      Format.printf "  %-10s drains in %d cycles@." pol_name (Net.now net))
    [
      ("fixed", Net.Fixed);
      ("adaptive", Net.Adaptive);
      ("oblivious", Net.Oblivious (Noc_util.Prng.create ~seed:7));
    ]
