(* Differential suites: the optimized production paths against the
   brute-force reference oracles of lib/oracle, on deterministic random
   ACGs (the same generator the `nocsynth fuzz` harness uses), plus unit
   tests pinning the oracles themselves to hand-checkable answers. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Vf2 = Noc_graph.Vf2
module P = Noc_primitives.Primitive
module L = Noc_primitives.Library
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Cost = Noc_core.Cost
module Decomp = Noc_core.Decomposition
module Syn = Noc_core.Synthesis
module Dead = Noc_core.Deadlock
module Prng = Noc_util.Prng
module Iso = Noc_oracle.Iso
module Bisection = Noc_oracle.Bisection
module Exact = Noc_oracle.Exact
module Recost = Noc_oracle.Recost
module Cdg = Noc_oracle.Cdg
module Fuzz = Noc_oracle.Fuzz

let lib = L.default

(* -------------------------------------------------------------------- *)
(* Oracle unit tests: answers small enough to verify by hand             *)

let test_iso_known_counts () =
  (* a single directed edge into K3: every ordered pair, 3 x 2 *)
  Alcotest.(check int) "edge into K3" 6 (Iso.count ~pattern:(G.path 2) ~target:(G.complete 3));
  (* K4 into K4: all 4! bijections *)
  Alcotest.(check int) "K4 into K4" 24 (Iso.count ~pattern:(G.complete 4) ~target:(G.complete 4));
  (* out-star with 2 leaves into K3: 3 centers x 2 leaf orders *)
  Alcotest.(check int) "star3 into K3" 6 (Iso.count ~pattern:(G.star 3) ~target:(G.complete 3));
  (* directed 3-loop into K4: pick 3 of 4 vertices in cyclic order: 4*3*2 *)
  Alcotest.(check int) "loop3 into K4" 24 (Iso.count ~pattern:(G.loop 3) ~target:(G.complete 4));
  (* no monomorphism into a too-small or edge-free target *)
  Alcotest.(check int) "K4 into K3" 0 (Iso.count ~pattern:(G.complete 4) ~target:(G.complete 3));
  Alcotest.(check int) "edge into empty" 0
    (Iso.count ~pattern:(G.path 2) ~target:(D.add_vertex (D.add_vertex D.empty 1) 2))

let test_iso_covered_sets_k4 () =
  (* every monomorphism of K4 into K4 covers the same 12 directed edges *)
  let sets = Iso.covered_sets ~pattern:(G.complete 4) ~target:(G.complete 4) in
  Alcotest.(check int) "one covered set" 1 (List.length sets);
  Alcotest.(check int) "twelve edges" 12 (List.length (List.hd sets))

let test_bisection_known () =
  (* 4-loop: any balanced split of a cycle cuts exactly 2 adjacent pairs
     when the halves are contiguous *)
  let _, cut = Bisection.min_cut (G.loop 4) in
  Alcotest.(check int) "loop4" 2 cut;
  (* K4: every 2|2 split crosses 2*2 pairs *)
  let _, cut = Bisection.min_cut (G.complete 4) in
  Alcotest.(check int) "K4" 4 cut;
  (* out-star on 5: put two leaves on one side, center and the rest on the
     other: only 2 center-leaf pairs cross *)
  let _, cut = Bisection.min_cut (G.star 5) in
  Alcotest.(check int) "star5" 2 cut;
  (* empty graph *)
  let half, cut = Bisection.min_cut D.empty in
  Alcotest.(check int) "empty cut" 0 cut;
  Alcotest.(check bool) "empty half" true (D.Vset.is_empty half)

let test_exact_known () =
  (* K4 is one MGG4 matching: 4 links instead of 12 remainder edges *)
  Alcotest.(check (float 1e-9)) "K4" 4.0 (Exact.optimal_cost ~library:(lib ()) (G.complete 4));
  (* a 4-loop matches no saver: dedicated links *)
  Alcotest.(check (float 1e-9)) "loop4" 4.0 (Exact.optimal_cost ~library:(lib ()) (G.loop 4));
  (* two disjoint K4s: 8 links *)
  let two_k4 = D.union (G.complete 4) (D.map_vertices (fun v -> v + 4) (G.complete 4)) in
  Alcotest.(check (float 1e-9)) "two K4s" 8.0 (Exact.optimal_cost ~library:(lib ()) two_k4);
  (* K4 plus one stray edge *)
  let k4_plus = D.add_edge (G.complete 4) 4 5 in
  Alcotest.(check (float 1e-9)) "K4 + edge" 5.0 (Exact.optimal_cost ~library:(lib ()) k4_plus);
  (* saver-only restriction loses nothing (documented claim), checked with
     the full library on graphs small enough for both *)
  for seed = 0 to 39 do
    let rng = Prng.create ~seed:(seed + 7000) in
    let g = G.erdos_renyi ~rng ~n:(Prng.int_in rng 3 6) ~p:0.4 in
    let a = Exact.optimal_cost ~library:(lib ()) g in
    let b = Exact.optimal_cost ~all_primitives:true ~library:(lib ()) g in
    if abs_float (a -. b) > 1e-9 then
      Alcotest.failf "seed %d: saver-only %g <> all-primitives %g" seed a b
  done

let test_cdg_known () =
  (* XY routing on a 2x2 mesh is deadlock-free, by both checkers *)
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (G.complete 4) in
  let arch = Syn.mesh ~rows:2 ~cols:2 acg in
  Alcotest.(check bool) "mesh oracle" true (Cdg.is_deadlock_free arch);
  Alcotest.(check bool) "mesh prod" true (Dead.is_deadlock_free arch);
  (* all-clockwise 2-hop routes around a 4-ring close a CDG cycle *)
  let ring = G.bidirectional_ring 4 in
  let routes =
    List.fold_left
      (fun m (s, d, path) -> D.Edge_map.add (s, d) path m)
      D.Edge_map.empty
      [ (1, 3, [ 1; 2; 3 ]); (2, 4, [ 2; 3; 4 ]); (3, 1, [ 3; 4; 1 ]); (4, 2, [ 4; 1; 2 ]) ]
  in
  let arch = Syn.make ~topology:ring ~routes () in
  Alcotest.(check bool) "ring oracle" false (Cdg.is_deadlock_free arch);
  Alcotest.(check bool) "ring prod" false (Dead.is_deadlock_free arch);
  Alcotest.(check bool) "ring analyze" true ((Dead.analyze arch).Dead.cdg_cycle <> None)

let test_recost_known () =
  (* Edge_count recost of a hand decomposition: MGG4 has 4 physical links,
     remainder charges its directed edges *)
  let g = D.add_edge (G.complete 4) 4 5 in
  let acg = Acg.uniform ~volume:8 ~bandwidth:0.1 g in
  let d, _ = Bb.decompose ~library:(lib ()) acg in
  Alcotest.(check (float 1e-9)) "recost = production (edge count)"
    (Decomp.cost Cost.Edge_count acg d)
    (Recost.decomposition_cost Cost.Edge_count acg d);
  Alcotest.(check (float 1e-9)) "optimal cost on K4+edge" 5.0
    (Recost.decomposition_cost Cost.Edge_count acg d)

(* -------------------------------------------------------------------- *)
(* Differential qcheck suites: each >= 200 cases under a fixed seed.     *)
(* A case is one random ACG from the fuzz generator; the named property   *)
(* runs the production path against its oracle and explains any split.    *)

let differential name property base_seed count =
  QCheck.Test.make ~name ~count
    QCheck.(int_range 0 (count * 4))
    (fun k ->
      let acg = Fuzz.gen_acg ~rng:(Prng.create ~seed:(base_seed + k)) in
      match Fuzz.check ~library:(lib ()) property acg with
      | Ok () -> true
      | Error detail -> QCheck.Test.fail_reportf "seed %d: %s" (base_seed + k) detail)

let qcheck_decompose_oracle = differential "decompose = exhaustive enumeration (oracle)" "decompose-oracle" 10_000 200
let qcheck_bisection_oracle = differential "min bisection >= brute force (oracle)" "bisection-oracle" 20_000 200
let qcheck_vf2_naive = differential "VF2 engines = naive enumeration (oracle)" "vf2-naive" 30_000 200
let qcheck_cost_recompute = differential "costs = first-principles Eq.1/Eq.5 (oracle)" "cost-recompute" 40_000 200
let qcheck_deadlock_cdg = differential "deadlock check = independent CDG (oracle)" "deadlock-cdg" 50_000 200
let qcheck_edge_partition = differential "decomposition partitions ACG edges (Eq. 2)" "edge-partition" 60_000 200
let qcheck_routes_valid = differential "synthesized routes exist and carry the load" "routes-valid" 70_000 200

(* The acceptance check: on 500 fixed-seed random ACGs with n <= 8 the
   default branch-and-bound search attains exactly the exhaustive oracle's
   optimal cost.  The default options' beam of one matching per primitive
   per node never loses the optimum at these sizes because the only saver
   in the default library is MGG4 and early remainder is allowed; the
   fuzz generator's large size class (12-16-core communities graphs, with
   several competing MGG4 sites) is outside that claim — there beam-1 is
   a heuristic, and the differential decompose-oracle property brackets it
   between the optimum and the all-remainder cost instead. *)
let test_decompose_equals_oracle_500 () =
  for seed = 0 to 499 do
    let acg = Fuzz.gen_acg ~rng:(Prng.create ~seed) in
    if D.num_vertices (Acg.graph acg) <= 8 then begin
      let oracle = Exact.optimal_cost ~library:(lib ()) (Acg.graph acg) in
      let _, stats = Bb.decompose ~library:(lib ()) acg in
      if abs_float (stats.Bb.best_cost -. oracle) > 1e-9 then
        Alcotest.failf "seed %d: decompose cost %g, exhaustive optimum %g" seed
          stats.Bb.best_cost oracle
    end
  done

(* -------------------------------------------------------------------- *)
(* Fuzz harness self-tests                                               *)

let test_fuzz_run_clean () =
  let r = Fuzz.run ~library:(lib ()) ~seed:4242 ~cases:50 () in
  Alcotest.(check int) "cases" 50 r.Fuzz.cases;
  Alcotest.(check int) "all properties" (List.length Fuzz.property_names) r.Fuzz.properties;
  Alcotest.(check int) "no failures" 0 (List.length r.Fuzz.failures)

let test_fuzz_observed_counters () =
  let observe = Noc_obs.Obs.create () in
  let _ = Fuzz.run ~observe ~library:(lib ()) ~seed:1 ~cases:5 () in
  let m = Noc_obs.Obs.metrics observe in
  Alcotest.(check bool) "fuzz.cases counter" true (List.mem_assoc "fuzz.cases" m);
  Alcotest.(check (option (float 0.)))
    "counted 5 cases" (Some 5.)
    (Option.bind (List.assoc_opt "fuzz.cases" m) Noc_obs.Obs.Json.to_float)

let test_fuzz_shrink_minimizes () =
  (* plant a deliberately broken "property" through the public surface:
     shrink against bisection-oracle on a passing case is the identity *)
  let acg = Fuzz.gen_acg ~rng:(Prng.create ~seed:99) in
  let small, steps = Fuzz.shrink ~library:(lib ()) ~property:"bisection-oracle" acg in
  Alcotest.(check int) "no shrink on a passing case" 0 steps;
  Alcotest.(check bool) "unchanged" true (D.equal (Acg.graph small) (Acg.graph acg))

let test_fuzz_save_and_replay () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "nocsynth-fuzz-test" in
  let f =
    {
      Fuzz.property = "edge-partition";
      case_seed = 123;
      detail = "synthetic failure record for the round-trip test";
      acg = Fuzz.gen_acg ~rng:(Prng.create ~seed:123);
      shrink_steps = 0;
    }
  in
  let path = Fuzz.save_failure ~dir f in
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  (* the recorded property passes on this ACG, so replay reports no failure *)
  let n, failures = Fuzz.replay ~library:(lib ()) ~dir () in
  Sys.remove path;
  Alcotest.(check int) "one corpus case" 1 n;
  Alcotest.(check int) "no failures" 0 (List.length failures)

let test_fuzz_replay_missing_dir () =
  let n, failures = Fuzz.replay ~library:(lib ()) ~dir:"no-such-directory" () in
  Alcotest.(check int) "zero cases" 0 n;
  Alcotest.(check int) "zero failures" 0 (List.length failures)

let test_fuzz_unknown_property () =
  (match Fuzz.check "no-such-property" (Acg.uniform ~volume:1 ~bandwidth:0. (G.path 2)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown property accepted");
  Alcotest.check_raises "run rejects unknown names"
    (Invalid_argument "Fuzz.run: unknown property \"nope\"") (fun () ->
      ignore (Fuzz.run ~properties:[ "nope" ] ~seed:0 ~cases:1 ()))

(* The persisted crash corpus: every entry is a (shrunk) input that once
   broke a property; replaying them keeps old bugs fixed. *)
let test_corpus_replay () =
  let n, failures = Fuzz.replay ~library:(lib ()) ~dir:"corpus" () in
  Alcotest.(check bool) "corpus is not empty" true (n > 0);
  match failures with
  | [] -> ()
  | (file, d) :: _ -> Alcotest.failf "%d corpus failure(s); first: %s: %s" (List.length failures) file d

let suite =
  ( "oracle",
    [
      Alcotest.test_case "iso: known match counts" `Quick test_iso_known_counts;
      Alcotest.test_case "iso: K4 covered sets" `Quick test_iso_covered_sets_k4;
      Alcotest.test_case "bisection: known optima" `Quick test_bisection_known;
      Alcotest.test_case "exact: known optima + saver-only claim" `Quick test_exact_known;
      Alcotest.test_case "cdg: mesh free, cyclic ring not" `Quick test_cdg_known;
      Alcotest.test_case "recost: hand-checked costs" `Quick test_recost_known;
      QCheck_alcotest.to_alcotest qcheck_decompose_oracle;
      QCheck_alcotest.to_alcotest qcheck_bisection_oracle;
      QCheck_alcotest.to_alcotest qcheck_vf2_naive;
      QCheck_alcotest.to_alcotest qcheck_cost_recompute;
      QCheck_alcotest.to_alcotest qcheck_deadlock_cdg;
      QCheck_alcotest.to_alcotest qcheck_edge_partition;
      QCheck_alcotest.to_alcotest qcheck_routes_valid;
      Alcotest.test_case "decompose = oracle on 500 seeded ACGs" `Slow
        test_decompose_equals_oracle_500;
      Alcotest.test_case "fuzz: clean run" `Quick test_fuzz_run_clean;
      Alcotest.test_case "fuzz: observer counters" `Quick test_fuzz_observed_counters;
      Alcotest.test_case "fuzz: shrink is identity on passing cases" `Quick
        test_fuzz_shrink_minimizes;
      Alcotest.test_case "fuzz: save/replay round trip" `Quick test_fuzz_save_and_replay;
      Alcotest.test_case "fuzz: replay of a missing dir" `Quick test_fuzz_replay_missing_dir;
      Alcotest.test_case "fuzz: unknown properties rejected" `Quick test_fuzz_unknown_property;
      Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    ] )
