(* The observability layer: JSON emission, domain-safe counters, the Chrome
   trace sink, and — most importantly — the differential guarantee that
   attaching an observer changes NOTHING about what the engines compute. *)

module Obs = Noc_obs.Obs
module J = Obs.Json
module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Decomp = Noc_core.Decomposition
module Syn = Noc_core.Synthesis
module L = Noc_primitives.Library
module Prng = Noc_util.Prng

let lib () = L.default ()

(* ------------------------------------------------------------------ *)
(* The emitted JSON is read back with the library's own [Json.parse]
   (promoted out of this file when the benchmark record tooling needed it):
   if this round-trips, Perfetto will read the trace too. *)

let parse_json (s : string) : J.t =
  match J.parse s with
  | Ok v -> v
  | Error (`Msg m) -> Alcotest.failf "bad JSON: %s" m

let member = J.member

(* ------------------------------------------------------------------ *)
(* JSON emission                                                        *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "line\nbreak \"quoted\" back\\slash\ttab");
        ("ctl", J.Str "\001\031");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("whole", J.Float 3.0);
        ("nan", J.Float Float.nan);
        ("inf", J.Float Float.infinity);
        ("b", J.Bool true);
        ("l", J.List [ J.Int 1; J.Null; J.Str "x" ]);
        ("empty_o", J.Obj []);
        ("empty_l", J.List []);
      ]
  in
  let parsed = parse_json (J.to_string v) in
  let get k = Option.get (member k parsed) in
  Alcotest.(check string)
    "string with escapes" "line\nbreak \"quoted\" back\\slash\ttab"
    (match get "s" with J.Str s -> s | _ -> "?");
  Alcotest.(check string)
    "control chars round-trip" "\001\031"
    (match get "ctl" with J.Str s -> s | _ -> "?");
  Alcotest.(check bool) "int" true (get "i" = J.Int (-42));
  Alcotest.(check bool) "float" true (get "f" = J.Float 1.5);
  (* whole floats render as integers; both are the same JSON number *)
  Alcotest.(check bool) "whole float" true (get "whole" = J.Int 3);
  Alcotest.(check bool) "nan -> null" true (get "nan" = J.Null);
  Alcotest.(check bool) "inf -> null" true (get "inf" = J.Null);
  Alcotest.(check bool) "nested list" true (get "l" = J.List [ J.Int 1; J.Null; J.Str "x" ]);
  Alcotest.(check bool) "empty containers" true
    (get "empty_o" = J.Obj [] && get "empty_l" = J.List [])

(* ------------------------------------------------------------------ *)
(* Counters, gauges, the observer registry                              *)

let test_counters_across_domains () =
  let obs = Obs.create () in
  let c = Obs.counter obs "hits" in
  let worker () =
    (* every domain asks the registry for the same name *)
    let c' = Obs.counter obs "hits" in
    for _ = 1 to 10_000 do
      Obs.Counter.incr c'
    done
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join doms;
  Alcotest.(check int) "4 x 10k increments, no lost updates" 40_000 (Obs.Counter.get c);
  Obs.Gauge.set (Obs.gauge obs "depth") 7.5;
  Alcotest.(check (float 0.0)) "gauge last-write" 7.5 (Obs.Gauge.get (Obs.gauge obs "depth"));
  (* counters first, then gauges, each group sorted by name *)
  match Obs.metrics obs with
  | [ ("hits", J.Int 40_000); ("depth", J.Float 7.5) ] -> ()
  | m -> Alcotest.failf "unexpected metrics: %s" (J.to_string (J.Obj m))

let test_disabled_observer_is_inert () =
  let obs = Obs.disabled in
  Alcotest.(check bool) "disabled" false (Obs.enabled obs);
  let r = Obs.span obs "work" (fun () -> 41 + 1) in
  Alcotest.(check int) "span runs the body" 42 r;
  Obs.instant obs "nothing";
  Obs.sample obs "nothing" 1.0;
  Obs.Counter.incr (Obs.counter obs "scratch");
  Alcotest.(check (list (pair string Alcotest.reject))) "no metrics" [] (Obs.metrics obs);
  match parse_json (Obs.Trace.to_string obs) with
  | J.Obj [ ("traceEvents", J.List []) ] -> ()
  | other -> Alcotest.failf "disabled trace not empty: %s" (J.to_string other)

let test_trace_shape () =
  let obs = Obs.create () in
  let x = Obs.span obs ~cat:"t" ~args:[ ("k", J.Int 1) ] "outer" (fun () ->
      Obs.instant obs "mark";
      Obs.sample obs "load" 0.5;
      17)
  in
  Alcotest.(check int) "span result" 17 x;
  Obs.Counter.add (Obs.counter obs "n") 3;
  let j = parse_json (Obs.Trace.to_string obs) in
  let events =
    match member "traceEvents" j with
    | Some (J.List es) -> es
    | _ -> Alcotest.fail "no traceEvents"
  in
  Alcotest.(check bool) "at least mark+load+outer+final n" true (List.length events >= 4);
  List.iter
    (fun e ->
      (match member "name" e with
      | Some (J.Str _) -> ()
      | _ -> Alcotest.fail "event without name");
      (match member "ph" e with
      | Some (J.Str ("X" | "i" | "C")) -> ()
      | _ -> Alcotest.fail "event with unknown phase");
      match member "ts" e with
      | Some (J.Float _ | J.Int _) -> ()
      | _ -> Alcotest.fail "event without timestamp")
    events;
  let phases =
    List.filter_map (fun e -> match member "ph" e with Some (J.Str p) -> Some p | _ -> None) events
  in
  Alcotest.(check bool) "has a complete span" true (List.mem "X" phases);
  Alcotest.(check bool) "has an instant" true (List.mem "i" phases);
  Alcotest.(check bool) "has counter samples" true (List.mem "C" phases);
  match member "displayTimeUnit" j with
  | Some (J.Str "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing"

let test_span_records_on_raise () =
  let obs = Obs.create () in
  (try Obs.span obs "boom" (fun () -> failwith "x") with Failure _ -> ());
  let j = parse_json (Obs.Trace.to_string obs) in
  match member "traceEvents" j with
  | Some (J.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "span lost on exception"

(* ------------------------------------------------------------------ *)
(* Differential: observation changes nothing                            *)

let render acg d = Format.asprintf "%a" (Decomp.pp_with_cost Noc_core.Cost.Edge_count acg) d

let same_result ?options ?budget acg =
  let d0, s0 = Bb.decompose ?options ?budget ~library:(lib ()) acg in
  let obs = Obs.create () in
  let d1, s1 = Bb.decompose ?options ?budget ~observe:obs ~library:(lib ()) acg in
  render acg d0 = render acg d1
  && s0.Bb.best_cost = s1.Bb.best_cost
  && s0.Bb.nodes = s1.Bb.nodes
  && s0.Bb.matches_tried = s1.Bb.matches_tried

let test_fig5_listing_observed () =
  let acg = Suite_core.fig5_acg () in
  let obs = Obs.create () in
  let d, s = Bb.decompose ~observe:obs ~library:(lib ()) acg in
  let plain, s0 = Bb.decompose ~library:(lib ()) acg in
  Alcotest.(check string) "sequential listing identical under observation"
    (render acg plain) (render acg d);
  Alcotest.(check (float 1e-9)) "cost 17" 17.0 s.Bb.best_cost;
  Alcotest.(check int) "same tree" s0.Bb.nodes s.Bb.nodes;
  let obs4 = Obs.create () in
  let d4, s4 =
    Bb.decompose
      ~budget:Bb.Budget.(default |> with_domains 4)
      ~observe:obs4 ~library:(lib ()) acg
  in
  Alcotest.(check string) "4-domain listing identical under observation"
    (render acg plain) (render acg d4);
  Alcotest.(check (float 1e-9)) "cost 17 (domains)" 17.0 s4.Bb.best_cost;
  (* the instrumented run populated the observer *)
  Alcotest.(check bool) "search.nodes counter present" true
    (List.mem_assoc "search.nodes" (Obs.metrics obs))

let test_fig6_listing_observed () =
  let acg = Noc_aes.Distributed.acg () in
  let plain, _ = Bb.decompose ~library:(lib ()) acg in
  let obs = Obs.create () in
  let d, s = Bb.decompose ~observe:obs ~library:(lib ()) acg in
  Alcotest.(check string) "AES listing identical under observation"
    (render acg plain) (render acg d);
  Alcotest.(check (float 1e-9)) "COST: 28" 28.0 s.Bb.best_cost;
  Alcotest.(check bool) "vf2 probes counted" true (s.Bb.vf2.Bb.probes > 0)

let qcheck_observer_differential =
  QCheck.Test.make ~name:"decompose: observer on/off bit-identical (sequential)"
    ~count:15
    QCheck.(pair small_int (int_range 6 12))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 9200) in
      let g = G.erdos_renyi ~rng ~n ~p:(3.0 /. float_of_int (n - 1)) in
      let acg = Acg.uniform ~volume:16 ~bandwidth:0.1 g in
      same_result acg)

let qcheck_observer_differential_parallel =
  QCheck.Test.make ~name:"decompose: observer on/off bit-identical (4 domains)"
    ~count:8
    QCheck.(pair small_int (int_range 6 11))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 9300) in
      let g = G.erdos_renyi ~rng ~n ~p:(3.0 /. float_of_int (n - 1)) in
      let acg = Acg.uniform ~volume:16 ~bandwidth:0.1 g in
      same_result ~budget:Bb.Budget.(default |> with_domains 4) acg)

let test_vf2_instr_order_unchanged () =
  let aes = Acg.graph (Noc_aes.Distributed.acg ()) in
  let mgg4 = (Option.get (L.find_by_name (lib ()) "MGG4")).L.prim in
  let pattern = Noc_graph.Compact.freeze mgg4.Noc_primitives.Primitive.repr in
  let target = Noc_graph.Compact.(view (freeze aes)) in
  let plain = Noc_graph.Vf2.find_distinct_images_view ~pattern ~target () in
  let instr = Noc_graph.Vf2.Instr.create () in
  let counted = Noc_graph.Vf2.find_distinct_images_view ~instr ~pattern ~target () in
  let render ms = List.map D.Vmap.bindings ms in
  Alcotest.(check bool) "same matches, same order" true (render plain = render counted);
  Alcotest.(check bool) "probes counted" true (Noc_graph.Vf2.Instr.probes instr > 0);
  Alcotest.(check bool) "backtracks counted" true
    (Noc_graph.Vf2.Instr.backtracks instr > 0)

(* ------------------------------------------------------------------ *)
(* Budget                                                               *)

let test_budget_limits_search () =
  let acg = Suite_core.fig2_acg () in
  let _, s1 =
    Bb.decompose
      ~options:{ Bb.default_options with neutrals = Bb.Branch }
      ~budget:Bb.Budget.(default |> with_max_nodes 50)
      ~library:(lib ()) acg
  in
  Alcotest.(check bool) "hits the node budget" true s1.Bb.timed_out;
  Alcotest.(check bool) "nodes bounded" true (s1.Bb.nodes <= 51);
  let _, s2 =
    Bb.decompose
      ~options:{ Bb.default_options with neutrals = Bb.Branch }
      ~budget:Bb.Budget.default ~library:(lib ()) acg
  in
  Alcotest.(check bool) "default budget completes the search" true
    (not s2.Bb.timed_out);
  let b = Bb.Budget.(default |> with_timeout_s (Some 1.0) |> with_domains 3) in
  Alcotest.(check bool) "builders" true
    (b.Bb.Budget.timeout_s = Some 1.0
    && b.Bb.Budget.domains = 3
    && b.Bb.Budget.max_nodes = Bb.Budget.default.Bb.Budget.max_nodes)

let test_stats_json () =
  let acg = Noc_aes.Distributed.acg () in
  let obs = Obs.create () in
  let _, s = Bb.decompose ~observe:obs ~library:(lib ()) acg in
  let j = parse_json (J.to_string (Bb.stats_to_json s)) in
  let int_at k =
    match member k j with
    | Some (J.Int i) -> i
    | other ->
        Alcotest.failf "field %s: %s" k
          (match other with Some o -> J.to_string o | None -> "missing")
  in
  Alcotest.(check int) "nodes" s.Bb.nodes (int_at "nodes");
  Alcotest.(check int) "pruned" s.Bb.pruned (int_at "pruned");
  Alcotest.(check int) "incumbents" s.Bb.incumbents (int_at "incumbents");
  Alcotest.(check bool) "found at least one incumbent" true (s.Bb.incumbents >= 1);
  (match member "per_primitive" j with
  | Some (J.Obj prims) -> (
      match List.assoc_opt "MGG4" prims with
      | Some p ->
          Alcotest.(check bool) "MGG4 attempted" true
            (match member "attempts" p with Some (J.Int a) -> a > 0 | _ -> false)
      | None -> Alcotest.fail "per_primitive lacks MGG4")
  | _ -> Alcotest.fail "per_primitive missing");
  match member "vf2" j with
  | Some v ->
      Alcotest.(check bool) "vf2 probes in json" true
        (match member "probes" v with Some (J.Int p) -> p > 0 | _ -> false)
  | None -> Alcotest.fail "vf2 missing"

(* ------------------------------------------------------------------ *)
(* End-to-end: decompose with a trace file                              *)

let test_decompose_trace_smoke () =
  let acg = Noc_aes.Distributed.acg () in
  let obs = Obs.create () in
  let _ =
    Bb.decompose
      ~budget:Bb.Budget.(default |> with_domains 2)
      ~observe:obs ~library:(lib ()) acg
  in
  let path = Filename.temp_file "nocsynth_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.write obs ~path;
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let j = parse_json text in
      let events =
        match member "traceEvents" j with
        | Some (J.List es) -> es
        | _ -> Alcotest.fail "traceEvents missing"
      in
      Alcotest.(check bool) "trace has events" true (events <> []);
      let names =
        List.filter_map
          (fun e -> match member "name" e with Some (J.Str s) -> Some s | _ -> None)
          events
      in
      Alcotest.(check bool) "search span present" true
        (List.mem "branch-and-bound" names);
      Alcotest.(check bool) "incumbent event present" true (List.mem "incumbent" names);
      Alcotest.(check bool) "final counters sampled" true
        (List.mem "search.nodes" names);
      (* per-domain utilization gauges from the parallel driver *)
      Alcotest.(check bool) "domain busy gauges" true
        (List.exists
           (fun n ->
             String.length n > 14 && String.sub n 0 14 = "search.domain.")
           names))

(* ------------------------------------------------------------------ *)
(* Simulator metrics                                                    *)

let test_network_metrics_and_contention () =
  let acg = Noc_aes.Distributed.acg () in
  let arch = Syn.mesh ~rows:4 ~cols:4 acg in
  let net = Noc_sim.Network.create arch in
  Alcotest.(check int) "no contention initially" 0 (Noc_sim.Network.contention_events net);
  (* two packets fighting for the same output channel in the same cycle;
     routes only exist for ACG flows, so pick a real one *)
  let src, dst = List.hd (D.edges (Acg.graph acg)) in
  ignore (Noc_sim.Network.inject ~size_flits:4 net ~src ~dst);
  ignore (Noc_sim.Network.inject ~size_flits:4 net ~src ~dst);
  (match Noc_sim.Network.run_until_idle net with
  | `Idle -> ()
  | `Limit _ -> Alcotest.fail "network did not drain");
  Alcotest.(check bool) "contention observed" true
    (Noc_sim.Network.contention_events net >= 1);
  Alcotest.(check int) "both delivered" 2 (Noc_sim.Network.delivered_count net);
  let m = Noc_sim.Network.metrics net in
  List.iter
    (fun key ->
      Alcotest.(check bool) key true (List.mem_assoc key m))
    [
      "cycles"; "injected"; "delivered"; "in_network"; "flit_hops";
      "buffer_flit_cycles"; "queued_flits"; "contention_events";
    ];
  Alcotest.(check (float 0.0)) "injected metric" 2.0 (List.assoc "injected" m);
  Alcotest.(check bool) "per-link flits reported" true
    (List.exists (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "link.") m);
  Alcotest.(check bool) "per-router flits reported" true
    (List.exists (fun (k, _) -> String.length k > 7 && String.sub k 0 7 = "router.") m);
  (* energy metrics are finite and consistent with the direct calls *)
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  let em = Noc_sim.Stats.energy_metrics ~tech ~fp net in
  Alcotest.(check (float 1e-9)) "total energy metric matches"
    (Noc_sim.Stats.total_energy_pj ~tech ~fp net)
    (List.assoc "total_energy_pj" em);
  Alcotest.(check bool) "avg power present" true (List.mem_assoc "avg_power_mw" em)

let suite =
  ( "obs",
    [
      Alcotest.test_case "json round-trip with escapes" `Quick test_json_roundtrip;
      Alcotest.test_case "counters across 4 domains" `Quick test_counters_across_domains;
      Alcotest.test_case "disabled observer is inert" `Quick test_disabled_observer_is_inert;
      Alcotest.test_case "trace event shape" `Quick test_trace_shape;
      Alcotest.test_case "span survives exceptions" `Quick test_span_records_on_raise;
      Alcotest.test_case "Fig. 5 listing under observation" `Quick
        test_fig5_listing_observed;
      Alcotest.test_case "Fig. 6 listing under observation" `Quick
        test_fig6_listing_observed;
      Alcotest.test_case "vf2 instrumentation keeps order" `Quick
        test_vf2_instr_order_unchanged;
      Alcotest.test_case "budget limits the search" `Quick test_budget_limits_search;
      Alcotest.test_case "stats to json" `Quick test_stats_json;
      Alcotest.test_case "decompose trace smoke" `Quick test_decompose_trace_smoke;
      Alcotest.test_case "network metrics + contention" `Quick
        test_network_metrics_and_contention;
      QCheck_alcotest.to_alcotest qcheck_observer_differential;
      QCheck_alcotest.to_alcotest qcheck_observer_differential_parallel;
    ] )
