(* Service-layer suite: the canonical-hash contract (cross-checked against
   the exhaustive isomorphism oracle on small ACGs), the daemon's
   content-addressed cache, and the replay load driver.  Everything here
   leans on one invariant: the response bytes are a pure function of the
   cache key, so isomorphic requests are indistinguishable on the wire. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Prng = Noc_util.Prng
module Proto = Noc_serve.Proto
module Daemon = Noc_serve.Daemon
module Replay = Noc_serve.Replay
module Iso = Noc_oracle.Iso

let is_canon h = String.length h >= 6 && String.equal (String.sub h 0 6) "canon:"

(* random attributed ACG on <= 8 vertices, attributes drawn from a tiny
   alphabet so independently generated pairs collide structurally often
   enough to exercise the oracle cross-check in both directions *)
let small_acg ~rng ~n =
  let g = G.erdos_renyi ~rng ~n ~p:0.35 in
  let g = if D.num_edges g = 0 then D.add_edge g 1 2 else g in
  let quads =
    D.fold_edges
      (fun u v acc ->
        (u, v, 1 + Prng.int rng 3, 0.5 *. float_of_int (Prng.int rng 3)) :: acc)
      g []
  in
  Acg.of_weighted_edges quads

let quadruples acg =
  D.fold_edges
    (fun u v acc -> (u, v, Acg.volume acg u v, Acg.bandwidth acg u v) :: acc)
    (Acg.graph acg) []
  |> List.rev

(* ground-truth attributed-graph isomorphism by exhaustive enumeration:
   equal vertex and edge counts make any monomorphism a bijection, so it
   only remains to check the attributes ride along *)
let acg_isomorphic a b =
  let ga = Acg.graph a and gb = Acg.graph b in
  D.num_vertices ga = D.num_vertices gb
  && D.num_edges ga = D.num_edges gb
  && List.exists
       (fun m ->
         D.fold_edges
           (fun u v ok ->
             let u' = D.Vmap.find u m and v' = D.Vmap.find v m in
             ok
             && Acg.volume a u v = Acg.volume b u' v'
             && Acg.bandwidth a u v = Acg.bandwidth b u' v')
           ga true)
       (Iso.find_all ~pattern:ga ~target:gb)

(* Property: isomorphic relabelings never change the canonical hash. *)
let qcheck_hash_permutation_invariant =
  QCheck.Test.make ~name:"canonical hash is permutation-invariant" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 9000) in
      let acg = Noc_oracle.Fuzz.gen_acg ~rng in
      let h = Acg.canonical_hash acg in
      (not (is_canon h))
      || String.equal h (Acg.canonical_hash (Replay.permute ~rng acg))
         && String.equal h (Acg.canonical_hash (Replay.permute ~rng acg)))

(* Property: on small ACGs the hash decides isomorphism exactly — equal
   hashes iff the exhaustive oracle finds an attribute-preserving
   bijection.  The pair generator mixes permutations (isomorphic by
   construction), single-attribute mutations (almost never isomorphic) and
   independent graphs, so both sides of the iff are exercised. *)
let qcheck_hash_decides_isomorphism =
  QCheck.Test.make ~name:"hash equality coincides with oracle isomorphism"
    ~count:80
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, which) ->
      let rng = Prng.create ~seed:(seed + 4000) in
      let n = 3 + Prng.int rng 6 in
      let a = small_acg ~rng ~n in
      let b =
        match which with
        | 0 -> Replay.permute ~rng a
        | 1 ->
            (* bump one volume: same shape, different attributed graph *)
            let quads =
              match quadruples a with
              | (u, v, vol, bw) :: rest -> (u, v, vol + 1, bw) :: rest
              | [] -> assert false
            in
            Replay.permute ~rng (Acg.of_weighted_edges quads)
        | _ -> small_acg ~rng ~n
      in
      let ha = Acg.canonical_hash a and hb = Acg.canonical_hash b in
      (not (is_canon ha && is_canon hb))
      || Bool.equal (String.equal ha hb) (acg_isomorphic a b))

let short_budget = Bb.Budget.(default |> with_timeout_s (Some 1.0))

(* Property (cache determinism): a batch through one daemon and solo
   requests through a fresh daemon each produce byte-identical responses,
   whether an entry came from the search or from the cache. *)
let qcheck_batch_matches_solo =
  QCheck.Test.make ~name:"batched and solo responses are byte-identical"
    ~count:15 QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 500) in
      let a = Noc_oracle.Fuzz.gen_acg ~rng and b = Noc_oracle.Fuzz.gen_acg ~rng in
      (* duplicates and a permuted copy inside the stream: the batch path
         must serve them from cache yet stay indistinguishable *)
      let stream = [ a; b; a; Replay.permute ~rng a; b ] in
      let reqs = List.map (fun g -> Proto.Request.make ~budget:short_budget g) stream in
      let batched = Daemon.serve_batch (Daemon.create ()) reqs in
      let solo =
        List.map (fun r -> Daemon.solve (Daemon.create ()) r) reqs
      in
      List.for_all2
        (fun (x : Daemon.outcome) (y : Daemon.outcome) ->
          String.equal x.Daemon.bytes y.Daemon.bytes
          && String.equal
               (Proto.Response.to_string x.Daemon.response)
               x.Daemon.bytes)
        batched solo)

let test_batch_dedup () =
  let rng = Prng.create ~seed:11 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create () in
  let reqs =
    List.map
      (fun g -> Proto.Request.make ~budget:short_budget g)
      [ a; a; Replay.permute ~rng a ]
  in
  let outcomes = Daemon.serve_batch daemon reqs in
  let statuses = List.map (fun (o : Daemon.outcome) -> o.Daemon.status) outcomes in
  Alcotest.(check int) "one key" 1
    (List.sort_uniq compare (List.map (fun (o : Daemon.outcome) -> o.Daemon.key) outcomes)
    |> List.length);
  Alcotest.(check bool) "first misses" true (List.hd statuses = Daemon.Miss);
  Alcotest.(check int) "rest hit" 2
    (List.length (List.filter (fun s -> s = Daemon.Hit) statuses));
  let c = Daemon.cache_stats daemon in
  Alcotest.(check int) "cache hits" 2 c.Noc_serve.Cache.hits;
  Alcotest.(check int) "cache misses" 1 c.Noc_serve.Cache.misses

let test_cache_eviction () =
  let rng = Prng.create ~seed:3 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng and b = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create ~cache_capacity:1 () in
  let solve g = Daemon.solve daemon (Proto.Request.make ~budget:short_budget g) in
  ignore (solve a);
  ignore (solve b);
  (* capacity 1: b evicted a, so a misses again *)
  let o = solve a in
  Alcotest.(check bool) "a recomputed" true (o.Daemon.status = Daemon.Miss);
  let c = Daemon.cache_stats daemon in
  Alcotest.(check bool) "evictions counted" true (c.Noc_serve.Cache.evictions >= 2);
  Alcotest.(check int) "bounded size" 1 c.Noc_serve.Cache.size

let test_domains_not_in_key () =
  let rng = Prng.create ~seed:21 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create () in
  let solve budget = Daemon.solve daemon (Proto.Request.make ~budget a) in
  let o1 = solve Bb.Budget.(short_budget |> with_domains 1) in
  let o2 = solve Bb.Budget.(short_budget |> with_domains 4) in
  Alcotest.(check string) "same key" o1.Daemon.key o2.Daemon.key;
  Alcotest.(check bool) "domains=4 hits" true (o2.Daemon.status = Daemon.Hit);
  let o3 = solve Bb.Budget.(short_budget |> with_max_nodes 123) in
  Alcotest.(check bool) "max_nodes is keyed" true
    (not (String.equal o1.Daemon.key o3.Daemon.key))

let test_bad_request () =
  let rng = Prng.create ~seed:9 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create () in
  match Daemon.solve daemon (Proto.Request.make ~library:"no-such-library" a) with
  | exception Daemon.Bad_request _ -> ()
  | _ -> Alcotest.fail "expected Bad_request"

let test_replay_driver () =
  let s = Replay.run ~seed:5 ~cases:4 ~budget:short_budget () in
  Alcotest.(check int) "three requests per base" 12 s.Replay.requests;
  Alcotest.(check int) "misses = unique keys" s.Replay.unique s.Replay.misses;
  Alcotest.(check (float 1e-9)) "repeated half always hits" 1.0
    s.Replay.repeated_hit_rate;
  Alcotest.(check bool) "hits byte-identical" true s.Replay.byte_identical;
  Alcotest.(check int) "nothing evicted" 0 s.Replay.evictions;
  Alcotest.(check bool) "throughput measured" true (s.Replay.rps > 0.0)

let test_replay_deterministic_responses () =
  (* same seed, fresh daemons: the response byte streams must agree *)
  let run () = Replay.run ~seed:13 ~cases:3 ~budget:short_budget () in
  let a = run () and b = run () in
  Alcotest.(check int) "unique" a.Replay.unique b.Replay.unique;
  Alcotest.(check int) "hits" a.Replay.hits b.Replay.hits;
  Alcotest.(check bool) "both byte-identical" true
    (a.Replay.byte_identical && b.Replay.byte_identical)

let suite =
  ( "serve",
    [
      QCheck_alcotest.to_alcotest qcheck_hash_permutation_invariant;
      QCheck_alcotest.to_alcotest qcheck_hash_decides_isomorphism;
      QCheck_alcotest.to_alcotest qcheck_batch_matches_solo;
      Alcotest.test_case "batch dedup" `Quick test_batch_dedup;
      Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
      Alcotest.test_case "domains excluded from cache key" `Quick
        test_domains_not_in_key;
      Alcotest.test_case "unknown library rejected" `Quick test_bad_request;
      Alcotest.test_case "replay driver" `Quick test_replay_driver;
      Alcotest.test_case "replay deterministic" `Quick
        test_replay_deterministic_responses;
    ] )
