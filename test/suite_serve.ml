(* Service-layer suite: the canonical-hash contract (cross-checked against
   the exhaustive isomorphism oracle on small ACGs), the daemon's
   content-addressed cache, and the replay load driver.  Everything here
   leans on one invariant: the response bytes are a pure function of the
   cache key, so isomorphic requests are indistinguishable on the wire. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Prng = Noc_util.Prng
module Proto = Noc_serve.Proto
module Daemon = Noc_serve.Daemon
module Cache = Noc_serve.Cache
module Chaos = Noc_serve.Chaos
module Replay = Noc_serve.Replay
module Iso = Noc_oracle.Iso

let ok_exn = function
  | Ok (o : Daemon.outcome) -> o
  | Error e -> Alcotest.fail ("unexpected error reply: " ^ Proto.Error.to_string e)

let is_canon h = String.length h >= 6 && String.equal (String.sub h 0 6) "canon:"

(* random attributed ACG on <= 8 vertices, attributes drawn from a tiny
   alphabet so independently generated pairs collide structurally often
   enough to exercise the oracle cross-check in both directions *)
let small_acg ~rng ~n =
  let g = G.erdos_renyi ~rng ~n ~p:0.35 in
  let g = if D.num_edges g = 0 then D.add_edge g 1 2 else g in
  let quads =
    D.fold_edges
      (fun u v acc ->
        (u, v, 1 + Prng.int rng 3, 0.5 *. float_of_int (Prng.int rng 3)) :: acc)
      g []
  in
  Acg.of_weighted_edges quads

let quadruples acg =
  D.fold_edges
    (fun u v acc -> (u, v, Acg.volume acg u v, Acg.bandwidth acg u v) :: acc)
    (Acg.graph acg) []
  |> List.rev

(* ground-truth attributed-graph isomorphism by exhaustive enumeration:
   equal vertex and edge counts make any monomorphism a bijection, so it
   only remains to check the attributes ride along *)
let acg_isomorphic a b =
  let ga = Acg.graph a and gb = Acg.graph b in
  D.num_vertices ga = D.num_vertices gb
  && D.num_edges ga = D.num_edges gb
  && List.exists
       (fun m ->
         D.fold_edges
           (fun u v ok ->
             let u' = D.Vmap.find u m and v' = D.Vmap.find v m in
             ok
             && Acg.volume a u v = Acg.volume b u' v'
             && Acg.bandwidth a u v = Acg.bandwidth b u' v')
           ga true)
       (Iso.find_all ~pattern:ga ~target:gb)

(* Property: isomorphic relabelings never change the canonical hash. *)
let qcheck_hash_permutation_invariant =
  QCheck.Test.make ~name:"canonical hash is permutation-invariant" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 9000) in
      let acg = Noc_oracle.Fuzz.gen_acg ~rng in
      let h = Acg.canonical_hash acg in
      (not (is_canon h))
      || String.equal h (Acg.canonical_hash (Replay.permute ~rng acg))
         && String.equal h (Acg.canonical_hash (Replay.permute ~rng acg)))

(* Property: on small ACGs the hash decides isomorphism exactly — equal
   hashes iff the exhaustive oracle finds an attribute-preserving
   bijection.  The pair generator mixes permutations (isomorphic by
   construction), single-attribute mutations (almost never isomorphic) and
   independent graphs, so both sides of the iff are exercised. *)
let qcheck_hash_decides_isomorphism =
  QCheck.Test.make ~name:"hash equality coincides with oracle isomorphism"
    ~count:80
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, which) ->
      let rng = Prng.create ~seed:(seed + 4000) in
      let n = 3 + Prng.int rng 6 in
      let a = small_acg ~rng ~n in
      let b =
        match which with
        | 0 -> Replay.permute ~rng a
        | 1 ->
            (* bump one volume: same shape, different attributed graph *)
            let quads =
              match quadruples a with
              | (u, v, vol, bw) :: rest -> (u, v, vol + 1, bw) :: rest
              | [] -> assert false
            in
            Replay.permute ~rng (Acg.of_weighted_edges quads)
        | _ -> small_acg ~rng ~n
      in
      let ha = Acg.canonical_hash a and hb = Acg.canonical_hash b in
      (not (is_canon ha && is_canon hb))
      || Bool.equal (String.equal ha hb) (acg_isomorphic a b))

let short_budget = Bb.Budget.(default |> with_timeout_s (Some 1.0))

(* Property (cache determinism): a batch through one daemon and solo
   requests through a fresh daemon each produce byte-identical responses,
   whether an entry came from the search or from the cache. *)
let qcheck_batch_matches_solo =
  QCheck.Test.make ~name:"batched and solo responses are byte-identical"
    ~count:15 QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 500) in
      let a = Noc_oracle.Fuzz.gen_acg ~rng and b = Noc_oracle.Fuzz.gen_acg ~rng in
      (* duplicates and a permuted copy inside the stream: the batch path
         must serve them from cache yet stay indistinguishable *)
      let stream = [ a; b; a; Replay.permute ~rng a; b ] in
      let reqs = List.map (fun g -> Proto.Request.make ~budget:short_budget g) stream in
      let batched = Daemon.serve_batch (Daemon.create ()) reqs in
      let solo =
        List.map (fun r -> Daemon.solve_exn (Daemon.create ()) r) reqs
      in
      List.for_all2
        (fun reply (y : Daemon.outcome) ->
          match reply with
          | Error _ -> false
          | Ok (x : Daemon.outcome) ->
              String.equal x.Daemon.bytes y.Daemon.bytes
              && String.equal
                   (Proto.Response.to_string x.Daemon.response)
                   x.Daemon.bytes)
        batched solo)

let test_batch_dedup () =
  let rng = Prng.create ~seed:11 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create () in
  let reqs =
    List.map
      (fun g -> Proto.Request.make ~budget:short_budget g)
      [ a; a; Replay.permute ~rng a ]
  in
  let outcomes = List.map ok_exn (Daemon.serve_batch daemon reqs) in
  let statuses = List.map (fun (o : Daemon.outcome) -> o.Daemon.status) outcomes in
  Alcotest.(check int) "one key" 1
    (List.sort_uniq compare (List.map (fun (o : Daemon.outcome) -> o.Daemon.key) outcomes)
    |> List.length);
  Alcotest.(check bool) "first misses" true (List.hd statuses = Daemon.Miss);
  Alcotest.(check int) "rest hit" 2
    (List.length (List.filter (fun s -> s = Daemon.Hit) statuses));
  let c = Daemon.cache_stats daemon in
  Alcotest.(check int) "cache hits" 2 c.Noc_serve.Cache.hits;
  Alcotest.(check int) "cache misses" 1 c.Noc_serve.Cache.misses

let test_cache_eviction () =
  let rng = Prng.create ~seed:3 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng and b = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create ~cache_capacity:1 () in
  let solve g = Daemon.solve_exn daemon (Proto.Request.make ~budget:short_budget g) in
  ignore (solve a);
  ignore (solve b);
  (* capacity 1: b evicted a, so a misses again *)
  let o = solve a in
  Alcotest.(check bool) "a recomputed" true (o.Daemon.status = Daemon.Miss);
  let c = Daemon.cache_stats daemon in
  Alcotest.(check bool) "evictions counted" true (c.Noc_serve.Cache.evictions >= 2);
  Alcotest.(check int) "bounded size" 1 c.Noc_serve.Cache.size

let test_domains_not_in_key () =
  let rng = Prng.create ~seed:21 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create () in
  let solve budget = Daemon.solve_exn daemon (Proto.Request.make ~budget a) in
  let o1 = solve Bb.Budget.(short_budget |> with_domains 1) in
  let o2 = solve Bb.Budget.(short_budget |> with_domains 4) in
  Alcotest.(check string) "same key" o1.Daemon.key o2.Daemon.key;
  Alcotest.(check bool) "domains=4 hits" true (o2.Daemon.status = Daemon.Hit);
  let o3 = solve Bb.Budget.(short_budget |> with_max_nodes 123) in
  Alcotest.(check bool) "max_nodes is keyed" true
    (not (String.equal o1.Daemon.key o3.Daemon.key))

let test_bad_request () =
  let rng = Prng.create ~seed:9 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create () in
  (match Daemon.solve daemon (Proto.Request.make ~library:"no-such-library" a) with
  | Error (Proto.Error.Bad_request _) -> ()
  | Error e -> Alcotest.fail ("wrong error class: " ^ Proto.Error.class_name e)
  | Ok _ -> Alcotest.fail "expected a bad_request reply");
  (* request isolation: the daemon keeps serving after the error *)
  let o = ok_exn (Daemon.solve daemon (Proto.Request.make ~budget:short_budget a)) in
  Alcotest.(check bool) "daemon survives" true (o.Daemon.status = Daemon.Miss);
  let es = Daemon.error_stats daemon in
  Alcotest.(check int) "error counted" 1 es.Daemon.bad_request;
  Alcotest.(check int) "every reply counted" 2 es.Daemon.replies

let test_over_budget () =
  let rng = Prng.create ~seed:14 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create () in
  let dead = Bb.Budget.(default |> with_timeout_s (Some 0.0)) in
  (match Daemon.solve daemon (Proto.Request.make ~budget:dead a) with
  | Error (Proto.Error.Over_budget _) -> ()
  | Error e -> Alcotest.fail ("wrong error class: " ^ Proto.Error.class_name e)
  | Ok _ -> Alcotest.fail "expected an over_budget reply");
  Alcotest.(check int) "counted" 1 (Daemon.error_stats daemon).Daemon.over_budget

let test_oversized_rejected () =
  let rng = Prng.create ~seed:15 in
  let a = small_acg ~rng ~n:8 in
  let config = { Daemon.default_config with Daemon.max_cores = 4 } in
  let daemon = Daemon.create ~config () in
  match Daemon.solve daemon (Proto.Request.make ~budget:short_budget a) with
  | Error (Proto.Error.Bad_request _) -> ()
  | Error e -> Alcotest.fail ("wrong error class: " ^ Proto.Error.class_name e)
  | Ok _ -> Alcotest.fail "expected oversized ACG to be rejected"

let test_injected_fault_isolated () =
  let rng = Prng.create ~seed:16 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let arm = ref true in
  let fault_hook () =
    let fire = !arm in
    arm := false;
    fire
  in
  let daemon = Daemon.create ~fault_hook () in
  let req = Proto.Request.make ~budget:short_budget a in
  (match Daemon.solve daemon req with
  | Error (Proto.Error.Internal _) -> ()
  | Error e -> Alcotest.fail ("wrong error class: " ^ Proto.Error.class_name e)
  | Ok _ -> Alcotest.fail "expected the injected fault to surface as internal");
  (* the failed request was not cached and the daemon still answers it *)
  let o = ok_exn (Daemon.solve daemon req) in
  Alcotest.(check bool) "recomputed after fault" true (o.Daemon.status = Daemon.Miss);
  Alcotest.(check int) "internal counted" 1
    (Daemon.error_stats daemon).Daemon.internal

let test_batch_shedding () =
  let rng = Prng.create ~seed:17 in
  let acgs = List.init 4 (fun _ -> Noc_oracle.Fuzz.gen_acg ~rng) in
  let config = { Daemon.default_config with Daemon.max_inflight = 2 } in
  let daemon = Daemon.create ~config () in
  let reqs = List.map (fun g -> Proto.Request.make ~budget:short_budget g) acgs in
  let replies = Daemon.serve_batch daemon reqs in
  let shed = function Error (Proto.Error.Shed _) -> true | _ -> false in
  Alcotest.(check (list bool)) "first max_inflight admitted, rest shed"
    [ false; false; true; true ] (List.map shed replies);
  Alcotest.(check int) "shed counted" 2 (Daemon.error_stats daemon).Daemon.shed

let test_solve_text_guards () =
  let daemon =
    Daemon.create
      ~config:{ Daemon.default_config with Daemon.max_request_bytes = 64 }
      ()
  in
  (match Daemon.solve_text daemon ~id:"garbage" "\255\000 not an acg" with
  | Error (Proto.Error.Bad_request _) -> ()
  | _ -> Alcotest.fail "garbage bytes must be a bad_request");
  match Daemon.solve_text daemon ~id:"big" (String.make 100 'x') with
  | Error (Proto.Error.Bad_request _) -> ()
  | _ -> Alcotest.fail "oversized text must be a bad_request"

let test_cache_capacity_zero () =
  (* capacity 0 = caching disabled: add is a no-op, every lookup misses *)
  let c = Cache.create ~capacity:0 ~observe:Noc_obs.Obs.disabled () in
  let rng = Prng.create ~seed:19 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let daemon = Daemon.create ~cache_capacity:0 () in
  let o1 = ok_exn (Daemon.solve daemon (Proto.Request.make ~budget:short_budget a)) in
  Cache.add c o1.Daemon.key (o1.Daemon.bytes, o1.Daemon.response);
  Alcotest.(check bool) "add is a no-op" true (Cache.find c o1.Daemon.key = None);
  Alcotest.(check int) "stays empty" 0 (Cache.stats c).Cache.size;
  let o2 = ok_exn (Daemon.solve daemon (Proto.Request.make ~budget:short_budget a)) in
  Alcotest.(check bool) "duplicate recomputed" true (o2.Daemon.status = Daemon.Miss);
  Alcotest.(check string) "still deterministic" o1.Daemon.bytes o2.Daemon.bytes;
  Alcotest.check_raises "negative capacity rejected"
    (Invalid_argument "Cache.create: capacity must be >= 0") (fun () ->
      ignore (Cache.create ~capacity:(-1) ~observe:Noc_obs.Obs.disabled ()))

let test_cache_capacity_one () =
  let c = Cache.create ~capacity:1 ~observe:Noc_obs.Obs.disabled ()
  and resp o = (o.Daemon.bytes, o.Daemon.response) in
  let rng = Prng.create ~seed:20 in
  let daemon = Daemon.create () in
  let solve g = ok_exn (Daemon.solve daemon (Proto.Request.make ~budget:short_budget g)) in
  let oa = solve (Noc_oracle.Fuzz.gen_acg ~rng) in
  let ob = solve (Noc_oracle.Fuzz.gen_acg ~rng) in
  Cache.add c oa.Daemon.key (resp oa);
  Alcotest.(check bool) "a cached" true (Cache.find c oa.Daemon.key <> None);
  Cache.add c ob.Daemon.key (resp ob);
  Alcotest.(check bool) "b evicted a" true (Cache.find c oa.Daemon.key = None);
  Alcotest.(check bool) "b cached" true (Cache.find c ob.Daemon.key <> None);
  Alcotest.(check int) "bounded" 1 (Cache.stats c).Cache.size

let with_temp_file f =
  let path = Filename.temp_file "nocsynth-test" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
      f path)

let test_snapshot_roundtrip () =
  let rng = Prng.create ~seed:23 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng and b = Noc_oracle.Fuzz.gen_acg ~rng in
  let d1 = Daemon.create () in
  let solve d g = ok_exn (Daemon.solve d (Proto.Request.make ~budget:short_budget g)) in
  let oa = solve d1 a and _ob = solve d1 b in
  with_temp_file (fun path ->
      Cache.snapshot (Daemon.cache d1) ~path;
      let d2 = Daemon.create () in
      (match Cache.restore (Daemon.cache d2) ~path with
      | Ok n -> Alcotest.(check int) "both entries restored" 2 n
      | Error (`Msg m) -> Alcotest.fail ("restore failed: " ^ m));
      (* a warm duplicate through the restored daemon hits byte-identically *)
      let oa' = solve d2 a in
      Alcotest.(check bool) "restored hit" true (oa'.Daemon.status = Daemon.Hit);
      Alcotest.(check string) "restored bytes identical" oa.Daemon.bytes oa'.Daemon.bytes;
      Alcotest.(check int) "restored size" 2 (Cache.stats (Daemon.cache d2)).Cache.size)

(* Property: a snapshot with any single byte flipped or any truncation is
   detected — restore reports an error, leaves the cache cold and never
   raises. *)
let qcheck_corrupt_snapshot_cold_start =
  QCheck.Test.make ~name:"corrupt snapshot -> clean cold start" ~count:40
    QCheck.(pair small_int small_int)
    (fun (seed, pos_seed) ->
      let rng = Prng.create ~seed:(seed + 7700) in
      let a = Noc_oracle.Fuzz.gen_acg ~rng in
      let d = Daemon.create () in
      let _ =
        match Daemon.solve d (Proto.Request.make ~budget:short_budget a) with
        | Ok o -> o
        | Error _ -> QCheck.assume_fail ()
      in
      with_temp_file (fun path ->
          Cache.snapshot (Daemon.cache d) ~path;
          let body = In_channel.with_open_bin path In_channel.input_all in
          let n = String.length body in
          let corrupt =
            if pos_seed mod 2 = 0 && n > 1 then
              (* truncate strictly short of the full file *)
              String.sub body 0 (1 + (pos_seed mod (n - 1)))
            else begin
              let bs = Bytes.of_string body in
              let i = pos_seed mod n in
              Bytes.set bs i (Char.chr ((Char.code (Bytes.get bs i) + 1) land 0xff));
              Bytes.to_string bs
            end
          in
          Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc corrupt);
          let fresh = Cache.create ~capacity:16 ~observe:Noc_obs.Obs.disabled () in
          match Cache.restore fresh ~path with
          | Ok _ -> false (* corruption must never restore silently *)
          | Error (`Msg _) -> (Cache.stats fresh).Cache.size = 0
          | exception _ -> false))

let test_restore_missing_file () =
  let c = Cache.create ~capacity:4 ~observe:Noc_obs.Obs.disabled () in
  (match Cache.restore c ~path:"/nonexistent/nocsynth.snap" with
  | Ok _ -> Alcotest.fail "missing snapshot cannot restore"
  | Error (`Msg _) -> ());
  Alcotest.(check int) "cold" 0 (Cache.stats c).Cache.size

let test_response_json_roundtrip () =
  let rng = Prng.create ~seed:27 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let o = ok_exn (Daemon.solve (Daemon.create ()) (Proto.Request.make ~budget:short_budget a)) in
  match Proto.Response.of_string o.Daemon.bytes with
  | Error (`Msg m) -> Alcotest.fail ("response failed to parse back: " ^ m)
  | Ok r ->
      Alcotest.(check string) "wire round-trip is the identity" o.Daemon.bytes
        (Proto.Response.to_string r)

let test_run_loop_counts () =
  let rng = Prng.create ~seed:29 in
  let a = Noc_oracle.Fuzz.gen_acg ~rng in
  let acg_path = Filename.temp_file "nocsynth-test" ".acg" in
  let in_path = Filename.temp_file "nocsynth-test" ".in" in
  let out_path = Filename.temp_file "nocsynth-test" ".out" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ acg_path; in_path; out_path ])
    (fun () ->
      Out_channel.with_open_bin acg_path (fun oc ->
          Out_channel.output_string oc (Noc_core.Acg_io.to_string a));
      Out_channel.with_open_bin in_path (fun oc ->
          Out_channel.output_string oc
            (String.concat "\n"
               [ acg_path; "# comment"; ""; "/nonexistent/path.acg"; acg_path; "quit";
                 acg_path ]));
      let daemon = Daemon.create () in
      let ls =
        In_channel.with_open_bin in_path (fun ic ->
            Out_channel.with_open_bin out_path (fun oc ->
                Daemon.run_loop ~budget:short_budget daemon ic oc))
      in
      (* every request line counted, comments/blanks skipped, quit stops
         the loop before the trailing request *)
      Alcotest.(check int) "served" 3 ls.Daemon.served;
      Alcotest.(check int) "ok" 2 ls.Daemon.ok;
      Alcotest.(check int) "errors" 1 ls.Daemon.errors;
      Alcotest.(check int) "shed" 0 ls.Daemon.shed;
      let lines =
        In_channel.with_open_bin out_path In_channel.input_all
        |> String.trim |> String.split_on_char '\n'
      in
      Alcotest.(check int) "one wire reply per request" 3 (List.length lines);
      List.iter
        (fun l ->
          match Noc_obs.Obs.Json.parse l with
          | Ok _ -> ()
          | Error (`Msg m) -> Alcotest.fail ("unparseable wire reply: " ^ m))
        lines)

let test_chaos_gate () =
  let stats = Chaos.run ~seed:7 ~requests:80 ~wf_timeout_s:0.05 () in
  (match Chaos.gate stats with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("chaos gate failed: " ^ m));
  Alcotest.(check int) "zero deaths" 0 stats.Chaos.deaths;
  Alcotest.(check int) "typed reply per request" stats.Chaos.requests
    stats.Chaos.replies

let test_replay_driver () =
  let s = Replay.run ~seed:5 ~cases:4 ~budget:short_budget () in
  Alcotest.(check int) "three requests per base" 12 s.Replay.requests;
  Alcotest.(check int) "misses = unique keys" s.Replay.unique s.Replay.misses;
  Alcotest.(check (float 1e-9)) "repeated half always hits" 1.0
    s.Replay.repeated_hit_rate;
  Alcotest.(check bool) "hits byte-identical" true s.Replay.byte_identical;
  Alcotest.(check int) "nothing evicted" 0 s.Replay.evictions;
  Alcotest.(check bool) "throughput measured" true (s.Replay.rps > 0.0)

let test_replay_deterministic_responses () =
  (* same seed, fresh daemons: the response byte streams must agree *)
  let run () = Replay.run ~seed:13 ~cases:3 ~budget:short_budget () in
  let a = run () and b = run () in
  Alcotest.(check int) "unique" a.Replay.unique b.Replay.unique;
  Alcotest.(check int) "hits" a.Replay.hits b.Replay.hits;
  Alcotest.(check bool) "both byte-identical" true
    (a.Replay.byte_identical && b.Replay.byte_identical)

let suite =
  ( "serve",
    [
      QCheck_alcotest.to_alcotest qcheck_hash_permutation_invariant;
      QCheck_alcotest.to_alcotest qcheck_hash_decides_isomorphism;
      QCheck_alcotest.to_alcotest qcheck_batch_matches_solo;
      Alcotest.test_case "batch dedup" `Quick test_batch_dedup;
      Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
      Alcotest.test_case "domains excluded from cache key" `Quick
        test_domains_not_in_key;
      Alcotest.test_case "unknown library rejected" `Quick test_bad_request;
      Alcotest.test_case "dead deadline is over_budget" `Quick test_over_budget;
      Alcotest.test_case "oversized ACG rejected" `Quick test_oversized_rejected;
      Alcotest.test_case "injected fault isolated" `Quick test_injected_fault_isolated;
      Alcotest.test_case "batch shedding" `Quick test_batch_shedding;
      Alcotest.test_case "solve_text guards" `Quick test_solve_text_guards;
      Alcotest.test_case "cache capacity 0" `Quick test_cache_capacity_zero;
      Alcotest.test_case "cache capacity 1" `Quick test_cache_capacity_one;
      Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_corrupt_snapshot_cold_start;
      Alcotest.test_case "restore missing file" `Quick test_restore_missing_file;
      Alcotest.test_case "response JSON round-trip" `Quick
        test_response_json_roundtrip;
      Alcotest.test_case "run_loop counts every reply" `Quick test_run_loop_counts;
      Alcotest.test_case "chaos gate" `Quick test_chaos_gate;
      Alcotest.test_case "replay driver" `Quick test_replay_driver;
      Alcotest.test_case "replay deterministic" `Quick
        test_replay_deterministic_responses;
    ] )
