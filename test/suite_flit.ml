(* Tests for the cycle-accurate flit engine stack (lib/sim: Credit,
   Router, Flitsim, Engine) and the wormhole fixes that rode along with
   it: zero-hop worms, O(1) injection, VC-cap truncation reporting.

   The differential qcheck suites cross-validate the three fidelity
   levels on the same random ACGs the oracle harness uses: every engine
   must deliver exactly the injected packet set, the flit engine's
   conservation invariant must hold after every cycle, and deeper VOQs
   must never slow a burst down. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Syn = Noc_core.Synthesis
module Dead = Noc_core.Deadlock
module L = Noc_primitives.Library
module Prng = Noc_util.Prng
module Fuzz = Noc_oracle.Fuzz
module Credit = Noc_sim.Credit
module Flit = Noc_sim.Flitsim
module Worm = Noc_sim.Wormhole
module Engine = Noc_sim.Engine
module Packet = Noc_sim.Packet
module Edge_map = D.Edge_map

let lib = L.default

(* a line 0 - 1 - ... - h with the single flow 0 -> h routed along it *)
let line_arch h =
  let topology = ref (D.add_vertex D.empty 0) in
  for v = 1 to h do
    topology := D.add_edge !topology (v - 1) v
  done;
  let route = List.init (h + 1) Fun.id in
  Syn.make ~topology:!topology ~routes:(Edge_map.singleton (0, h) route) ()

(* the documented uncontended flit latency (flitsim.mli), valid when
   [fifo_depth >= 1 + ceil ((router_delay + 1) / phits_per_flit)] *)
let expected_latency ~h ~n ~p ~rd =
  if h = 0 then 1 + rd + (n - 1) else 1 + rd + (h * (rd + p)) + ((n - 1) * p)

(* ---------------------------------------------------------------- *)
(* Credit counters                                                  *)

let test_credit_basics () =
  let c = Credit.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Credit.capacity c);
  Alcotest.(check bool) "take 1" true (Credit.take c);
  Alcotest.(check bool) "take 2" true (Credit.take c);
  Alcotest.(check bool) "exhausted" false (Credit.take c);
  Alcotest.(check int) "none left" 0 (Credit.available c);
  Credit.put c;
  Alcotest.(check bool) "replenished" true (Credit.take c);
  Alcotest.(check bool) "balanced at 2 outstanding" true (Credit.balanced c ~outstanding:2);
  Alcotest.check_raises "capacity >= 1 enforced"
    (Invalid_argument "Credit.create: capacity must be >= 1") (fun () ->
      ignore (Credit.create ~capacity:0));
  Credit.put c;
  Credit.put c;
  Alcotest.check_raises "over-return rejected"
    (Invalid_argument "Credit.put: counter already full") (fun () -> Credit.put c)

(* ---------------------------------------------------------------- *)
(* Flit engine: pinned uncontended latencies                        *)

let single_packet_latency ~cfg ~h ~n =
  let f = Flit.create ~config:cfg (line_arch h) in
  ignore (Flit.inject ~size_flits:n f ~src:0 ~dst:h);
  (match Flit.run_until_idle f with
  | `Idle -> ()
  | `Deadlock -> Alcotest.fail "deadlock on an uncontended line"
  | `Limit _ -> Alcotest.fail "limit on an uncontended line");
  Alcotest.(check bool) "conservation" true (Flit.conservation_ok f);
  match Flit.deliveries f with
  | [ d ] -> d.Flit.delivered_at - d.Flit.packet.Packet.injected_at
  | ds -> Alcotest.failf "expected 1 delivery, got %d" (List.length ds)

let test_flit_latency_formula () =
  (* all combos satisfy the depth condition in flitsim.mli, so the
     closed-form latency is exact, not just an upper bound *)
  let cases =
    [
      (* h, n, config *)
      (3, 5, Flit.default_config);
      (1, 1, Flit.default_config);
      (4, 8, { Flit.fifo_depth = 3; flit_bits = 8; phit_bits = 8; router_delay = 1 });
      (4, 8, { Flit.fifo_depth = 5; flit_bits = 8; phit_bits = 8; router_delay = 3 });
      (2, 3, { Flit.fifo_depth = 4; flit_bits = 32; phit_bits = 16; router_delay = 2 });
    ]
  in
  List.iter
    (fun (h, n, cfg) ->
      let p = Flit.phits_per_flit cfg in
      Alcotest.(check int)
        (Printf.sprintf "h=%d n=%d p=%d rd=%d" h n p cfg.Flit.router_delay)
        (expected_latency ~h ~n ~p ~rd:cfg.Flit.router_delay)
        (single_packet_latency ~cfg ~h ~n))
    cases

let test_flit_zero_hop () =
  (* src = dst: the packet still serializes through the local (NI ->
     ejection) VOQ, one flit per cycle, without touching any link *)
  let cfg = Flit.default_config in
  Alcotest.(check int) "zero-hop latency"
    (expected_latency ~h:0 ~n:5 ~p:(Flit.phits_per_flit cfg) ~rd:cfg.Flit.router_delay)
    (single_packet_latency ~cfg ~h:0 ~n:5);
  let f = Flit.create (line_arch 0) in
  ignore (Flit.inject ~size_flits:4 f ~src:0 ~dst:0);
  ignore (Flit.run_until_idle f);
  Alcotest.(check int) "no link traversals" 0 (Flit.flit_hops f)

let test_flit_accounting () =
  let f = Flit.create (line_arch 3) in
  ignore (Flit.inject ~size_flits:4 f ~src:0 ~dst:3);
  ignore (Flit.inject ~size_flits:2 f ~src:0 ~dst:3);
  Alcotest.(check int) "injected flits" 6 (Flit.injected_flits f);
  (match Flit.run_until_idle f with
  | `Idle -> ()
  | _ -> Alcotest.fail "line burst must drain");
  Alcotest.(check int) "delivered flits" 6 (Flit.delivered_flits f);
  Alcotest.(check int) "nothing in flight" 0 (Flit.in_flight_flits f);
  Alcotest.(check int) "flit hops = flits x hops" 18 (Flit.flit_hops f);
  Alcotest.(check bool) "buffers were occupied" true (Flit.buffer_flit_cycles f > 0)

(* ---------------------------------------------------------------- *)
(* Engine dispatch                                                  *)

let test_engine_dispatch () =
  List.iter
    (fun k ->
      Alcotest.(check (option reject))
        (Engine.kind_name k ^ " name round-trips")
        None
        (if Engine.kind_of_name (Engine.kind_name k) = Some k then None else Some ()))
    Engine.all_kinds;
  Alcotest.(check (option reject)) "unknown engine name" None (Engine.kind_of_name "exact");
  let arch = line_arch 2 in
  List.iter
    (fun k ->
      let net = Engine.create k arch in
      Alcotest.(check string) "name" (Engine.kind_name k) (Engine.name net);
      ignore (Engine.inject ~size_flits:2 net ~src:0 ~dst:2);
      match Engine.run_until_idle net with
      | Engine.Idle ->
          Alcotest.(check int)
            (Engine.kind_name k ^ " delivers")
            1
            (List.length (Engine.deliveries net))
      | v -> Alcotest.failf "%s: %s" (Engine.kind_name k) (Engine.verdict_name v))
    Engine.all_kinds

(* ---------------------------------------------------------------- *)
(* Wormhole regressions                                             *)

let test_wormhole_zero_hop () =
  (* regression: a src = dst worm used to be marked delivered after a
     single flit no matter its length; now the whole worm must drain
     through the local port, one flit per cycle *)
  let w = Worm.create (line_arch 0) in
  ignore (Worm.inject ~size_flits:3 w ~src:0 ~dst:0);
  (match Worm.run_until_idle w with
  | `Idle -> ()
  | `Deadlock -> Alcotest.fail "zero-hop worm deadlocked"
  | `Limit -> Alcotest.fail "zero-hop worm never drained");
  (match Worm.deliveries w with
  | [ d ] ->
      Alcotest.(check int) "latency = size_flits" 3
        (d.Worm.delivered_at - d.Worm.packet.Packet.injected_at)
  | ds -> Alcotest.failf "expected 1 delivery, got %d" (List.length ds));
  Alcotest.(check int) "no link traversals" 0 (Worm.flit_hops w)

let test_wormhole_mass_injection () =
  (* regression for the quadratic [worms @ [worm]] injection path: a
     burst of hundreds of worms must drain completely and in bounded
     time through the growable-array queue *)
  let w = Worm.create (line_arch 4) in
  for _ = 1 to 300 do
    ignore (Worm.inject ~size_flits:2 w ~src:0 ~dst:4)
  done;
  Alcotest.(check int) "pending" 300 (Worm.pending w);
  (match Worm.run_until_idle ~max_cycles:10_000 w with
  | `Idle -> ()
  | _ -> Alcotest.fail "mass burst must drain");
  Alcotest.(check int) "all delivered" 300 (List.length (Worm.deliveries w))

let test_wormhole_vc_truncation () =
  (* the route 4 -> 1 -> 2 on a 4-ring (vertices 1..4) needs 2 VCs under
     the increasing-order discipline (channel order wraps at
     (4,1) -> (1,2)); with num_vcs = 1 the assignment is capped and the
     engine must say so *)
  let arch =
    Syn.make ~topology:(G.loop 4) ~routes:(Edge_map.singleton (4, 2) [ 4; 1; 2 ]) ()
  in
  let starved = Worm.create ~config:{ Worm.num_vcs = 1; flit_bits = 8 } arch in
  ignore (Worm.inject ~size_flits:2 starved ~src:4 ~dst:2);
  Alcotest.(check bool) "truncation flagged" true (Worm.vc_truncated starved);
  Alcotest.(check int) "discipline wanted 2 VCs" 2 (Worm.vcs_required starved);
  Alcotest.(check int) "one worm truncated" 1 (Worm.vc_truncated_count starved);
  (* the same flow with enough VCs is sound and must not warn *)
  let ok = Worm.create arch in
  ignore (Worm.inject ~size_flits:2 ok ~src:4 ~dst:2);
  Alcotest.(check bool) "no truncation at num_vcs = 2" false (Worm.vc_truncated ok);
  (match Worm.run_until_idle ok with
  | `Idle -> ()
  | _ -> Alcotest.fail "sound assignment must drain")

(* ---------------------------------------------------------------- *)
(* Differential qcheck suites (>= 200 cases each, fixed seeds)       *)

(* decompose + glue a random fuzz ACG, burst one packet per flow *)
let random_case seed =
  let acg = Fuzz.gen_acg ~rng:(Prng.create ~seed) in
  let d, _ = Bb.decompose ~library:(lib ()) acg in
  (acg, Syn.custom acg d)

let burst ?wormhole_config ?flit_config kind acg arch =
  let net = Engine.create ?wormhole_config ?flit_config kind arch in
  D.iter_edges
    (fun src dst -> ignore (Engine.inject ~size_flits:2 net ~src ~dst))
    (Acg.graph acg);
  let verdict = Engine.run_until_idle net in
  (net, verdict)

let delivery_set net =
  Engine.deliveries net
  |> List.map (fun (d : Noc_sim.Network.delivery) ->
         (d.packet.Packet.id, d.packet.Packet.src, d.packet.Packet.dst))
  |> List.sort compare

let qcheck_engines_agree =
  QCheck.Test.make ~name:"flit = wormhole = coarse on fuzz ACGs (deliveries)" ~count:200
    QCheck.(int_range 0 800)
    (fun k ->
      let seed = 80_000 + k in
      let acg, arch = random_case seed in
      (* a generous VC budget keeps the wormhole assignment sound on
         arbitrary routes, so both reference engines must drain *)
      let wormhole_config = { Worm.num_vcs = 16; flit_bits = 8 } in
      let coarse, cv = burst Engine.Coarse acg arch in
      let worm, wv = burst ~wormhole_config Engine.Wormhole acg arch in
      if cv <> Engine.Idle then
        QCheck.Test.fail_reportf "seed %d: coarse verdict %s" seed (Engine.verdict_name cv);
      if wv <> Engine.Idle then
        QCheck.Test.fail_reportf "seed %d: wormhole verdict %s" seed (Engine.verdict_name wv);
      let flit, fv = burst Engine.Flit acg arch in
      (match fv with
      | Engine.Idle ->
          if delivery_set flit <> delivery_set worm then
            QCheck.Test.fail_reportf "seed %d: flit/wormhole delivery sets differ" seed
      | Engine.Deadlock ->
          (* the flit engine has no VCs, so it may genuinely deadlock —
             but only where the single-channel CDG is cyclic *)
          if Dead.is_deadlock_free arch then
            QCheck.Test.fail_reportf "seed %d: flit deadlock on an acyclic CDG" seed
      | Engine.Limit n ->
          QCheck.Test.fail_reportf "seed %d: flit hit the cycle limit (%d pending)" seed n);
      if delivery_set coarse <> delivery_set worm then
        QCheck.Test.fail_reportf "seed %d: coarse/wormhole delivery sets differ" seed;
      (match Engine.flitsim flit with
      | Some f ->
          if not (Flit.conservation_ok f) then
            QCheck.Test.fail_reportf "seed %d: flit conservation broken" seed
      | None -> ());
      true)

let qcheck_conservation_every_cycle =
  QCheck.Test.make ~name:"flit conservation holds after every cycle" ~count:200
    QCheck.(int_range 0 800)
    (fun k ->
      let seed = 90_000 + k in
      let acg, arch = random_case seed in
      let f = Flit.create arch in
      let flows = D.edges (Acg.graph acg) in
      (* stagger the injections so arrivals, credit returns and NI pushes
         overlap in as many phase combinations as possible *)
      List.iteri
        (fun i (src, dst) ->
          ignore (Flit.inject ~size_flits:(1 + (i mod 3)) f ~src ~dst);
          Flit.step f;
          if not (Flit.conservation_ok f) then
            QCheck.Test.fail_reportf "seed %d: conservation broken at cycle %d" seed
              (Flit.now f))
        flows;
      let budget = ref 5_000 in
      while Flit.pending f > 0 && !budget > 0 do
        decr budget;
        Flit.step f;
        if not (Flit.conservation_ok f) then
          QCheck.Test.fail_reportf "seed %d: conservation broken at cycle %d" seed
            (Flit.now f)
      done;
      (* cyclic-CDG cases may deadlock with flits parked in VOQs; the
         invariant must hold there too, which the loop above checked *)
      true)

let qcheck_deeper_fifos_monotone =
  QCheck.Test.make ~name:"deeper FIFOs never slow an uncontended burst" ~count:200
    QCheck.(int_range 0 800)
    (fun k ->
      let h = 1 + (k mod 5) and n = 1 + (k mod 4) and packets = 2 + (k mod 4) in
      let makespan depth =
        let cfg = { Flit.default_config with Flit.fifo_depth = depth } in
        let f = Flit.create ~config:cfg (line_arch h) in
        for _ = 1 to packets do
          ignore (Flit.inject ~size_flits:n f ~src:0 ~dst:h)
        done;
        match Flit.run_until_idle f with
        | `Idle -> Flit.now f
        | _ -> QCheck.Test.fail_reportf "line burst failed at depth %d" depth
      in
      let shallow = makespan 1 and deep = makespan 4 in
      if deep > shallow then
        QCheck.Test.fail_reportf "h=%d n=%d x%d: depth 4 takes %d > depth 1's %d" h n
          packets deep shallow;
      true)

let suite =
  ( "flit",
    [
      Alcotest.test_case "credit counters" `Quick test_credit_basics;
      Alcotest.test_case "flit: pinned latency formula" `Quick test_flit_latency_formula;
      Alcotest.test_case "flit: zero-hop serialization" `Quick test_flit_zero_hop;
      Alcotest.test_case "flit: accounting" `Quick test_flit_accounting;
      Alcotest.test_case "engine: dispatch" `Quick test_engine_dispatch;
      Alcotest.test_case "wormhole: zero-hop worm (regression)" `Quick test_wormhole_zero_hop;
      Alcotest.test_case "wormhole: 300-worm burst (regression)" `Quick
        test_wormhole_mass_injection;
      Alcotest.test_case "wormhole: VC-cap truncation (regression)" `Quick
        test_wormhole_vc_truncation;
      QCheck_alcotest.to_alcotest qcheck_engines_agree;
      QCheck_alcotest.to_alcotest qcheck_conservation_every_cycle;
      QCheck_alcotest.to_alcotest qcheck_deeper_fifos_monotone;
    ] )
