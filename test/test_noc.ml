let () =
  Alcotest.run "noc"
    [
      Suite_util.suite;
      Suite_graph.suite;
      Suite_tgff.suite;
      Suite_primitives.suite;
      Suite_energy.suite;
      Suite_core.suite;
      Suite_obs.suite;
      Suite_oracle.suite;
      Suite_sim.suite;
      Suite_resil.suite;
      Suite_aes.suite;
      Suite_apps.suite;
      Suite_benchkit.suite;
    ]
