(* The suite exercises multi-domain search paths (work stealing, portfolio)
   even on single-core CI boxes: lift the recommended-domain-count clamp so
   ~domains:4 really runs 4 workers (oversubscribed, but correct). *)
let () = Unix.putenv "NOCSYNTH_MAX_DOMAINS" "8"

let () =
  Alcotest.run "noc"
    [
      Suite_util.suite;
      Suite_graph.suite;
      Suite_tgff.suite;
      Suite_primitives.suite;
      Suite_energy.suite;
      Suite_core.suite;
      Suite_scale.suite;
      Suite_obs.suite;
      Suite_oracle.suite;
      Suite_explore.suite;
      Suite_sim.suite;
      Suite_flit.suite;
      Suite_resil.suite;
      Suite_aes.suite;
      Suite_apps.suite;
      Suite_benchkit.suite;
      Suite_serve.suite;
    ]
