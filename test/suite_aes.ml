(* Tests for AES-128 (FIPS-197 vectors) and the distributed 16-node NoC
   implementation (Section 5.2): the simulated network must produce
   bit-identical ciphertexts on every architecture. *)

module A = Noc_aes.Aes_core
module Dist = Noc_aes.Distributed

let ok_encrypt = function
  | Ok r -> r
  | Error (`Undrained n) ->
      failwith (Printf.sprintf "distributed AES did not drain: %d packets pending" n)
module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Syn = Noc_core.Synthesis
module Bb = Noc_core.Branch_bound
module L = Noc_primitives.Library

let hex = A.of_hex

(* -------------------------------------------------------------------- *)
(* Reference AES                                                         *)

let test_hex_roundtrip () =
  let b = hex "00ff10ab" in
  Alcotest.(check string) "roundtrip" "00ff10ab" (A.to_hex b);
  Alcotest.check_raises "odd" (Invalid_argument "Aes_core.of_hex: odd length") (fun () ->
      ignore (hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Aes_core.of_hex: not a hex digit")
    (fun () -> ignore (hex "zz"))

let test_sbox_known_values () =
  (* FIPS-197 Fig. 7 *)
  Alcotest.(check int) "sbox 0x00" 0x63 (A.sbox 0x00);
  Alcotest.(check int) "sbox 0x01" 0x7c (A.sbox 0x01);
  Alcotest.(check int) "sbox 0x53" 0xed (A.sbox 0x53);
  Alcotest.(check int) "sbox 0xff" 0x16 (A.sbox 0xff);
  (* inverse is an inverse *)
  for i = 0 to 255 do
    Alcotest.(check int) "inv" i (A.inv_sbox (A.sbox i))
  done

let test_gf_mul () =
  (* FIPS-197 Section 4.2 example: 57 x 83 = c1 *)
  Alcotest.(check int) "57*83" 0xc1 (A.gf_mul 0x57 0x83);
  Alcotest.(check int) "x*1" 0x57 (A.gf_mul 0x57 0x01);
  Alcotest.(check int) "x*0" 0 (A.gf_mul 0x57 0x00);
  Alcotest.(check int) "57*13" 0xfe (A.gf_mul 0x57 0x13)

let test_mix_column_example () =
  (* FIPS-197 Appendix B round 1: column [d4 bf 5d 30] -> [04 66 81 e5] *)
  let out = A.mix_single_column [| 0xd4; 0xbf; 0x5d; 0x30 |] in
  Alcotest.(check (array int)) "mixed" [| 0x04; 0x66; 0x81; 0xe5 |] out;
  let back = A.inv_mix_single_column out in
  Alcotest.(check (array int)) "inverse" [| 0xd4; 0xbf; 0x5d; 0x30 |] back

let test_key_expansion () =
  (* FIPS-197 Appendix A.1: last round key of the 2b7e... key *)
  let rks = A.expand_key (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  Alcotest.(check int) "11 round keys" 11 (Array.length rks);
  Alcotest.(check string) "round 10 key" "d014f9a8c9ee2589e13f0cc8b6630ca6"
    (A.to_hex rks.(10));
  Alcotest.(check string) "round 1 key" "a0fafe1788542cb123a339392a6c7605"
    (A.to_hex rks.(1))

let test_fips_appendix_b () =
  (* FIPS-197 Appendix B *)
  let key = hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let pt = hex "3243f6a8885a308d313198a2e0370734" in
  Alcotest.(check string) "ciphertext" "3925841d02dc09fbdc118597196a0b32"
    (A.to_hex (A.encrypt_block ~key pt))

let test_fips_appendix_c () =
  (* FIPS-197 Appendix C.1 *)
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let pt = hex "00112233445566778899aabbccddeeff" in
  let ct = A.encrypt_block ~key pt in
  Alcotest.(check string) "ciphertext" "69c4e0d86a7b0430d8cdb78070b4c55a" (A.to_hex ct);
  Alcotest.(check string) "decrypt" (A.to_hex pt) (A.to_hex (A.decrypt_block ~key ct))

let test_ecb () =
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let pt = hex "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff" in
  let ct = A.encrypt_ecb ~key pt in
  Alcotest.(check int) "length" 32 (Bytes.length ct);
  Alcotest.(check string) "both blocks equal" (A.to_hex (Bytes.sub ct 0 16))
    (A.to_hex (Bytes.sub ct 16 16));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Aes_core.encrypt_ecb: length must be a multiple of 16") (fun () ->
      ignore (A.encrypt_ecb ~key (Bytes.create 17)))

let test_bad_sizes () =
  Alcotest.check_raises "bad key" (Invalid_argument "Aes_core.expand_key: need a 16-byte key")
    (fun () -> ignore (A.expand_key (Bytes.create 8)));
  Alcotest.check_raises "bad block"
    (Invalid_argument "Aes_core.encrypt_block: need a 16-byte block") (fun () ->
      ignore (A.encrypt_block ~key:(Bytes.create 16) (Bytes.create 8)))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"decrypt inverts encrypt on random blocks" ~count:100
    QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (string_of_size (QCheck.Gen.return 16)))
    (fun (k, p) ->
      let key = Bytes.of_string k and pt = Bytes.of_string p in
      Bytes.equal pt (A.decrypt_block ~key (A.encrypt_block ~key pt)))

(* -------------------------------------------------------------------- *)
(* Distributed AES                                                       *)

let test_node_mapping () =
  Alcotest.(check int) "(0,0)" 1 (Dist.node_of ~row:0 ~col:0);
  Alcotest.(check int) "(3,3)" 16 (Dist.node_of ~row:3 ~col:3);
  Alcotest.(check (pair int int)) "inverse" (2, 1) (Dist.pos_of 10);
  (* first state column on nodes 1, 5, 9, 13 as in the paper's listing *)
  Alcotest.(check (list int)) "first column" [ 1; 5; 9; 13 ]
    (List.init 4 (fun r -> Dist.node_of ~row:r ~col:0));
  Alcotest.check_raises "bad row" (Invalid_argument "Distributed.node_of: row/col in [0,3]")
    (fun () -> ignore (Dist.node_of ~row:4 ~col:0))

let test_acg_structure () =
  let acg = Dist.acg () in
  Alcotest.(check int) "16 cores" 16 (Acg.num_cores acg);
  (* 4 columns x 12 gossip edges + 3 rows x 4 shift edges *)
  Alcotest.(check int) "60 flows" 60 (Acg.num_flows acg);
  (* volumes: 72 bits on mix edges, 80 on shift edges *)
  Alcotest.(check int) "mix volume" 72 (Acg.volume acg 1 5);
  Alcotest.(check int) "shift volume" 80 (Acg.volume acg 5 8);
  (* row 0 has no shift edges *)
  Alcotest.(check int) "no row-0 shifts" 0 (Acg.volume acg 1 2)

let arch_pair () =
  let acg = Dist.acg () in
  let d, _ = Bb.decompose ~library:(L.default ()) acg in
  (acg, Syn.custom acg d, Syn.mesh ~rows:4 ~cols:4 acg)

let test_distributed_correct_on_mesh () =
  let _, _, mesh = arch_pair () in
  let key = hex "2b7e151628aed2a6abf7158809cf4f3c" in
  let pt = hex "3243f6a8885a308d313198a2e0370734" in
  let r = ok_encrypt (Dist.encrypt ~arch:mesh ~key pt) in
  Alcotest.(check string) "bit-exact on mesh" "3925841d02dc09fbdc118597196a0b32"
    (A.to_hex r.Dist.ciphertext)

let test_distributed_correct_on_custom () =
  let _, custom, _ = arch_pair () in
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let pt = hex "00112233445566778899aabbccddeeff" in
  let r = ok_encrypt (Dist.encrypt ~arch:custom ~key pt) in
  Alcotest.(check string) "bit-exact on custom" "69c4e0d86a7b0430d8cdb78070b4c55a"
    (A.to_hex r.Dist.ciphertext)

let test_custom_faster_than_mesh () =
  let _, custom, mesh = arch_pair () in
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let pt = hex "00112233445566778899aabbccddeeff" in
  let rc = ok_encrypt (Dist.encrypt ~arch:custom ~key pt) in
  let rm = ok_encrypt (Dist.encrypt ~arch:mesh ~key pt) in
  Alcotest.(check bool) "fewer cycles per block" true (rc.Dist.cycles < rm.Dist.cycles);
  Alcotest.(check bool) "lower avg latency" true
    (rc.Dist.summary.Noc_sim.Stats.avg_latency < rm.Dist.summary.Noc_sim.Stats.avg_latency)

let test_undrained_is_typed_error () =
  (* a cycle budget far below one round's traffic: encrypt must come back
     with a typed error naming the pending packets, not raise or hang *)
  let _, custom, _ = arch_pair () in
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let pt = hex "00112233445566778899aabbccddeeff" in
  match Dist.encrypt ~max_cycles:3 ~arch:custom ~key pt with
  | Ok _ -> Alcotest.fail "3 cycles cannot drain a ShiftRows burst"
  | Error (`Undrained pending) ->
      Alcotest.(check bool) "pending packets reported" true (pending > 0)

let test_custom_lower_energy () =
  let _, custom, mesh = arch_pair () in
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let pt = hex "00112233445566778899aabbccddeeff" in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp = Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0) in
  let rc = ok_encrypt (Dist.encrypt ~arch:custom ~key pt) in
  let rm = ok_encrypt (Dist.encrypt ~arch:mesh ~key pt) in
  let ec = Noc_sim.Stats.total_energy_pj ~tech ~fp rc.Dist.net in
  let em = Noc_sim.Stats.total_energy_pj ~tech ~fp rm.Dist.net in
  Alcotest.(check bool) "custom needs less energy per block" true (ec < em)

let test_throughput_formula () =
  (* the paper's numbers: 271 cycles/block at 100 MHz = 47.2 Mbps *)
  let t = Dist.throughput_mbps ~cycles_per_block:271 ~clock_mhz:100.0 in
  Alcotest.(check bool) "matches paper" true (abs_float (t -. 47.2) < 0.05);
  let t2 = Dist.throughput_mbps ~cycles_per_block:199 ~clock_mhz:100.0 in
  Alcotest.(check bool) "custom 64.3" true (abs_float (t2 -. 64.3) < 0.05)

let test_deterministic_run () =
  let _, custom, _ = arch_pair () in
  let key = hex "000102030405060708090a0b0c0d0e0f" in
  let pt = hex "00112233445566778899aabbccddeeff" in
  let a = ok_encrypt (Dist.encrypt ~arch:custom ~key pt) in
  let b = ok_encrypt (Dist.encrypt ~arch:custom ~key pt) in
  Alcotest.(check int) "same cycle count" a.Dist.cycles b.Dist.cycles

let qcheck_distributed_matches_reference =
  QCheck.Test.make ~name:"distributed AES is bit-exact on random inputs" ~count:10
    QCheck.(pair (string_of_size (QCheck.Gen.return 16)) (string_of_size (QCheck.Gen.return 16)))
    (fun (k, p) ->
      let key = Bytes.of_string k and pt = Bytes.of_string p in
      let acg = Dist.acg () in
      let d, _ = Bb.decompose ~library:(L.default ()) acg in
      let custom = Syn.custom acg d in
      let r = ok_encrypt (Dist.encrypt ~arch:custom ~key pt) in
      Bytes.equal r.Dist.ciphertext (A.encrypt_block ~key pt))

let suite =
  ( "aes",
    [
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "sbox known values" `Quick test_sbox_known_values;
      Alcotest.test_case "gf multiplication" `Quick test_gf_mul;
      Alcotest.test_case "mix column (FIPS example)" `Quick test_mix_column_example;
      Alcotest.test_case "key expansion (FIPS A.1)" `Quick test_key_expansion;
      Alcotest.test_case "encrypt (FIPS B)" `Quick test_fips_appendix_b;
      Alcotest.test_case "encrypt/decrypt (FIPS C.1)" `Quick test_fips_appendix_c;
      Alcotest.test_case "ecb mode" `Quick test_ecb;
      Alcotest.test_case "bad sizes rejected" `Quick test_bad_sizes;
      QCheck_alcotest.to_alcotest qcheck_roundtrip;
      Alcotest.test_case "node/state mapping" `Quick test_node_mapping;
      Alcotest.test_case "Fig 6a ACG structure" `Quick test_acg_structure;
      Alcotest.test_case "distributed bit-exact on mesh" `Quick test_distributed_correct_on_mesh;
      Alcotest.test_case "distributed bit-exact on custom" `Quick
        test_distributed_correct_on_custom;
      Alcotest.test_case "custom beats mesh: cycles and latency" `Quick
        test_custom_faster_than_mesh;
      Alcotest.test_case "custom beats mesh: energy per block" `Quick test_custom_lower_energy;
      Alcotest.test_case "undrained run is a typed error" `Quick
        test_undrained_is_typed_error;
      Alcotest.test_case "throughput formula (Sec 5.2)" `Quick test_throughput_formula;
      Alcotest.test_case "simulation deterministic" `Quick test_deterministic_run;
      QCheck_alcotest.to_alcotest qcheck_distributed_matches_reference;
    ] )
