(* Tests for the noc_util substrate: deterministic PRNG and timing. *)

module Prng = Noc_util.Prng

let test_determinism () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create ~seed:1 in
  let b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_replays () =
  let a = Prng.create ~seed:7 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)

let test_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  Alcotest.(check bool) "split differs" true (Prng.bits64 a <> Prng.bits64 b)

let test_int_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_in_bounds () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done

let test_int_invalid () =
  let g = Prng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0));
  Alcotest.check_raises "bad range" (Invalid_argument "Prng.int_in: hi < lo") (fun () ->
      ignore (Prng.int_in g 3 2))

let test_float_bounds () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 2.5)
  done

let test_bernoulli_extremes () =
  let g = Prng.create ~seed:13 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli g 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli g 1.0)
  done

let test_bernoulli_rate () =
  let g = Prng.create ~seed:17 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_shuffle_permutation () =
  let g = Prng.create ~seed:19 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_choose () =
  let g = Prng.create ~seed:23 in
  for _ = 1 to 100 do
    let x = Prng.choose g [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem x [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Prng.choose g []))

let test_sample () =
  let g = Prng.create ~seed:29 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let s = Prng.sample g 3 xs in
  Alcotest.(check int) "size" 3 (List.length s);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "member" true (List.mem x xs)) s;
  Alcotest.(check int) "k >= n returns all" 8 (List.length (Prng.sample g 10 xs))

let test_timer () =
  let x, dt = Noc_util.Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.);
  let x, dt = Noc_util.Timer.time_median ~repeats:3 (fun () -> 7) in
  Alcotest.(check int) "median result" 7 x;
  Alcotest.(check bool) "median non-negative" true (dt >= 0.)

let test_ascii_plot () =
  let s =
    Noc_util.Ascii_plot.render ~width:20 ~height:6 ~x_label:"load" ~y_label:"lat"
      [ ("a", [ (0.0, 1.0); (1.0, 2.0) ]); ("b", [ (0.5, 1.5) ]) ]
  in
  Alcotest.(check bool) "has marks" true (String.contains s '*' && String.contains s '+');
  Alcotest.(check bool) "has legend" true (String.contains s 'a' && String.contains s 'b');
  Alcotest.(check bool) "has ranges" true (String.length s > 50);
  Alcotest.(check string) "empty input" "(no data)\n" (Noc_util.Ascii_plot.render []);
  (* single point: degenerate spans must not crash *)
  let one = Noc_util.Ascii_plot.render [ ("p", [ (3.0, 3.0) ]) ] in
  Alcotest.(check bool) "single point ok" true (String.contains one '*')

(* Regression for the modulo-bias bug: with a plain [r mod bound] draw the
   low residues of a non-power-of-two bound are systematically favoured.
   Rejection sampling makes every bucket equally likely, so over many draws
   each bucket count must sit close to n/bound. *)
let check_uniform ~seed ~bound ~draws =
  let g = Prng.create ~seed in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let x = Prng.int g bound in
    counts.(x) <- counts.(x) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d of bound %d within 10%% (got %d, want ~%.0f)" i bound c
           expected)
        true (dev < 0.10))
    counts

let test_int_uniform_non_pow2 () =
  (* bounds that are not powers of two are exactly the ones modulo bias hits *)
  check_uniform ~seed:101 ~bound:6 ~draws:60_000;
  check_uniform ~seed:103 ~bound:10 ~draws:60_000;
  check_uniform ~seed:107 ~bound:7 ~draws:70_000

let qcheck_int_uniform_buckets =
  QCheck.Test.make ~name:"prng int buckets roughly uniform for non-pow2 bounds" ~count:20
    QCheck.(pair small_int (int_range 3 17))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let draws = 4_000 * bound in
      let counts = Array.make bound 0 in
      for _ = 1 to draws do
        let x = Prng.int g bound in
        counts.(x) <- counts.(x) + 1
      done;
      let expected = float_of_int draws /. float_of_int bound in
      Array.for_all
        (fun c -> Float.abs (float_of_int c -. expected) /. expected < 0.20)
        counts)

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"prng int stays in bounds for random bounds" ~count:200
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let g = Prng.create ~seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let suite =
  ( "util",
    [
      Alcotest.test_case "prng determinism" `Quick test_determinism;
      Alcotest.test_case "prng seeds differ" `Quick test_different_seeds;
      Alcotest.test_case "prng copy replays" `Quick test_copy_replays;
      Alcotest.test_case "prng split independent" `Quick test_split_independent;
      Alcotest.test_case "prng int bounds" `Quick test_int_bounds;
      Alcotest.test_case "prng int_in bounds" `Quick test_int_in_bounds;
      Alcotest.test_case "prng invalid args" `Quick test_int_invalid;
      Alcotest.test_case "prng float bounds" `Quick test_float_bounds;
      Alcotest.test_case "prng bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "prng bernoulli rate" `Quick test_bernoulli_rate;
      Alcotest.test_case "prng shuffle is a permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "prng choose" `Quick test_choose;
      Alcotest.test_case "prng sample" `Quick test_sample;
      Alcotest.test_case "prng int uniform at non-pow2 bounds" `Quick
        test_int_uniform_non_pow2;
      Alcotest.test_case "timer" `Quick test_timer;
      Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
      QCheck_alcotest.to_alcotest qcheck_int_uniformish;
      QCheck_alcotest.to_alcotest qcheck_int_uniform_buckets;
    ] )
