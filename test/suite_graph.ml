(* Tests for the noc_graph substrate: digraph algebra, traversals,
   generators and the VF2 matching engine. *)

module D = Noc_graph.Digraph
module T = Noc_graph.Traversal
module G = Noc_graph.Generators
module V = Noc_graph.Vf2
module Prng = Noc_util.Prng

let dg = Alcotest.testable D.pp D.equal

(* -------------------------------------------------------------------- *)
(* Digraph basics                                                        *)

let test_empty () =
  Alcotest.(check bool) "empty" true (D.is_empty D.empty);
  Alcotest.(check int) "no vertices" 0 (D.num_vertices D.empty);
  Alcotest.(check int) "no edges" 0 (D.num_edges D.empty)

let test_add_edge () =
  let g = D.add_edge D.empty 1 2 in
  Alcotest.(check bool) "edge" true (D.mem_edge g 1 2);
  Alcotest.(check bool) "no reverse" false (D.mem_edge g 2 1);
  Alcotest.(check int) "two vertices" 2 (D.num_vertices g);
  Alcotest.(check int) "one edge" 1 (D.num_edges g);
  (* idempotent *)
  let g2 = D.add_edge g 1 2 in
  Alcotest.(check int) "still one edge" 1 (D.num_edges g2)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self-loop")
    (fun () -> ignore (D.add_edge D.empty 3 3))

let test_remove_edge () =
  let g = D.of_edges [ (1, 2); (2, 3) ] in
  let g = D.remove_edge g 1 2 in
  Alcotest.(check bool) "gone" false (D.mem_edge g 1 2);
  Alcotest.(check bool) "vertex kept" true (D.mem_vertex g 1);
  Alcotest.(check int) "one left" 1 (D.num_edges g);
  (* removing a missing edge is a no-op *)
  Alcotest.(check dg) "noop" g (D.remove_edge g 1 2)

let test_remove_vertex () =
  let g = D.of_edges [ (1, 2); (2, 3); (3, 1) ] in
  let g = D.remove_vertex g 2 in
  Alcotest.(check bool) "vertex gone" false (D.mem_vertex g 2);
  Alcotest.(check int) "edges pruned" 1 (D.num_edges g);
  Alcotest.(check bool) "3->1 kept" true (D.mem_edge g 3 1)

let test_degrees () =
  let g = D.of_edges [ (1, 2); (1, 3); (2, 1) ] in
  Alcotest.(check int) "out 1" 2 (D.out_degree g 1);
  Alcotest.(check int) "in 1" 1 (D.in_degree g 1);
  Alcotest.(check int) "deg 1" 3 (D.degree g 1);
  Alcotest.(check int) "out unknown" 0 (D.out_degree g 99)

let test_union () =
  let a = D.of_edges [ (1, 2) ] in
  let b = D.of_edges ~vertices:[ 9 ] [ (2, 3) ] in
  let u = D.union a b in
  Alcotest.(check int) "vertices" 4 (D.num_vertices u);
  Alcotest.(check int) "edges" 2 (D.num_edges u);
  Alcotest.(check bool) "isolated kept" true (D.mem_vertex u 9)

let test_diff_edges () =
  (* Definition 2: vertices are preserved, only edges subtracted *)
  let g = D.of_edges [ (1, 2); (2, 3); (3, 1) ] in
  let r = D.diff_edges g [ (1, 2); (3, 1) ] in
  Alcotest.(check int) "vertices kept" 3 (D.num_vertices r);
  Alcotest.(check int) "one edge" 1 (D.num_edges r);
  Alcotest.(check bool) "2->3 kept" true (D.mem_edge r 2 3)

let test_induced () =
  let g = D.of_edges [ (1, 2); (2, 3); (3, 4); (4, 1) ] in
  let s = D.induced g (D.Vset.of_list [ 1; 2; 3 ]) in
  Alcotest.(check int) "vertices" 3 (D.num_vertices s);
  Alcotest.(check int) "edges" 2 (D.num_edges s)

let test_map_vertices () =
  let g = D.of_edges [ (1, 2); (2, 3) ] in
  let h = D.map_vertices (fun v -> v * 10) g in
  Alcotest.(check bool) "10->20" true (D.mem_edge h 10 20);
  Alcotest.check_raises "collision" (Invalid_argument "Digraph.map_vertices: not injective")
    (fun () -> ignore (D.map_vertices (fun _ -> 5) g))

let test_reverse () =
  let g = D.of_edges [ (1, 2); (2, 3) ] in
  let r = D.reverse g in
  Alcotest.(check bool) "2->1" true (D.mem_edge r 2 1);
  Alcotest.(check bool) "not 1->2" false (D.mem_edge r 1 2);
  Alcotest.(check dg) "double reverse" g (D.reverse r)

let test_undirected_counts () =
  let g = D.of_edges [ (1, 2); (2, 1); (2, 3) ] in
  Alcotest.(check int) "unordered pairs" 2 (D.undirected_edge_count g);
  let c = D.undirected_closure g in
  Alcotest.(check int) "closure edges" 4 (D.num_edges c)

(* -------------------------------------------------------------------- *)
(* Traversal                                                             *)

let test_bfs () =
  let g = G.path 5 in
  let d = T.bfs_distances g 1 in
  Alcotest.(check int) "dist to 5" 4 (D.Vmap.find 5 d);
  Alcotest.(check int) "dist to 1" 0 (D.Vmap.find 1 d);
  (* direction matters *)
  let d5 = T.bfs_distances g 5 in
  Alcotest.(check bool) "1 unreachable from 5" false (D.Vmap.mem 1 d5)

let test_shortest_path () =
  let g = G.mesh ~rows:3 ~cols:3 in
  (match T.shortest_path g 1 9 with
  | Some p ->
      Alcotest.(check int) "length" 5 (List.length p);
      Alcotest.(check int) "starts" 1 (List.hd p);
      Alcotest.(check int) "ends" 9 (List.nth p 4)
  | None -> Alcotest.fail "should be reachable");
  let g2 = G.path 3 in
  Alcotest.(check bool) "unreachable" true (T.shortest_path g2 3 1 = None);
  (match T.shortest_path g2 2 2 with
  | Some [ 2 ] -> ()
  | _ -> Alcotest.fail "trivial path")

let test_components () =
  let g = D.union (G.loop 3) (D.map_vertices (fun v -> v + 10) (G.loop 4)) in
  let comps = T.weakly_connected_components g in
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check int) "largest first" 4 (D.Vset.cardinal (List.hd comps));
  Alcotest.(check bool) "not connected" false (T.is_weakly_connected g);
  Alcotest.(check bool) "loop connected" true (T.is_weakly_connected (G.loop 5));
  Alcotest.(check bool) "empty connected" true (T.is_weakly_connected D.empty)

let test_scc () =
  let g = D.of_edges [ (1, 2); (2, 3); (3, 1); (3, 4); (4, 5) ] in
  let sccs = T.strongly_connected_components g in
  let sizes = List.sort compare (List.map D.Vset.cardinal sccs) in
  Alcotest.(check (list int)) "scc sizes" [ 1; 1; 3 ] sizes

let test_topo () =
  let g = D.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  (match T.topological_sort g with
  | Some order ->
      let pos v = Option.get (List.find_index (Int.equal v) order) in
      D.iter_edges (fun u v -> Alcotest.(check bool) "order" true (pos u < pos v)) g
  | None -> Alcotest.fail "dag expected");
  Alcotest.(check bool) "cycle has no topo" true (T.topological_sort (G.loop 3) = None);
  Alcotest.(check bool) "acyclic" true (T.is_acyclic g);
  Alcotest.(check bool) "cyclic" false (T.is_acyclic (G.loop 3))

let test_find_cycle () =
  (match T.find_cycle (G.loop 4) with
  | Some c -> Alcotest.(check int) "cycle length" 4 (List.length c)
  | None -> Alcotest.fail "loop has a cycle");
  Alcotest.(check bool) "dag has none" true (T.find_cycle (G.path 5) = None);
  (* returned cycle is a real edge cycle *)
  let g = D.of_edges [ (1, 2); (2, 3); (3, 2); (3, 4) ] in
  match T.find_cycle g with
  | Some c ->
      let arr = Array.of_list c in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        Alcotest.(check bool) "edge exists" true (D.mem_edge g arr.(i) arr.((i + 1) mod n))
      done
  | None -> Alcotest.fail "2-3 cycle expected"

let test_diameter () =
  Alcotest.(check (option int)) "path diam" (Some 4) (T.diameter (G.path 5));
  Alcotest.(check (option int)) "mesh diam" (Some 4) (T.undirected_diameter (G.mesh ~rows:3 ~cols:3));
  Alcotest.(check (option int)) "single vertex" None (T.diameter (D.add_vertex D.empty 1));
  Alcotest.(check (option int)) "disconnected" None
    (T.undirected_diameter (D.of_edges ~vertices:[ 9 ] [ (1, 2) ]))

let test_bisection () =
  (* two K4s joined by a single bidirectional bridge: optimal bisection cuts
     exactly that one pair *)
  let k4a = G.complete 4 in
  let k4b = D.map_vertices (fun v -> v + 4) (G.complete 4) in
  let g = D.add_edge_pair (D.union k4a k4b) 1 5 in
  let rng = Prng.create ~seed:5 in
  let part, cut = T.min_bisection_cut ~sweeps:10 ~rng g in
  Alcotest.(check int) "balanced" 4 (D.Vset.cardinal part);
  Alcotest.(check int) "cut=1" 1 cut

let test_bisection_deterministic_under_seed () =
  (* Same seed, fresh PRNG: the refinement must land on the identical
     partition and cut.  Guards both the PRNG stream semantics and the
     closure-hoisting rewrite inside min_bisection_cut. *)
  let g = G.erdos_renyi ~rng:(Prng.create ~seed:77) ~n:14 ~p:0.3 in
  let run () =
    let rng = Prng.create ~seed:9 in
    T.min_bisection_cut ~sweeps:8 ~rng g
  in
  let part1, cut1 = run () in
  let part2, cut2 = run () in
  Alcotest.(check int) "same cut" cut1 cut2;
  Alcotest.(check (list int))
    "same partition" (D.Vset.elements part1) (D.Vset.elements part2)

(* -------------------------------------------------------------------- *)
(* Generators                                                            *)

let test_structured_generators () =
  Alcotest.(check int) "path edges" 4 (D.num_edges (G.path 5));
  Alcotest.(check int) "loop edges" 5 (D.num_edges (G.loop 5));
  Alcotest.(check int) "star edges" 5 (D.num_edges (G.star 6));
  Alcotest.(check int) "complete edges" 12 (D.num_edges (G.complete 4));
  Alcotest.(check int) "ring edges" 8 (D.num_edges (G.bidirectional_ring 4));
  Alcotest.(check int) "mesh 3x3 links" 12 (D.undirected_edge_count (G.mesh ~rows:3 ~cols:3));
  Alcotest.(check int) "torus 3x3 links" 18 (D.undirected_edge_count (G.torus ~rows:3 ~cols:3));
  Alcotest.(check int) "hypercube 3 links" 12 (D.undirected_edge_count (G.hypercube 3))

let test_knodel () =
  (* W(2,4) is the 4-cycle: 4 undirected links, all degrees 2 *)
  let k4 = G.knodel 4 in
  Alcotest.(check int) "knodel4 vertices" 4 (D.num_vertices k4);
  Alcotest.(check int) "knodel4 links" 4 (D.undirected_edge_count k4);
  List.iter
    (fun v -> Alcotest.(check int) "degree 2" 2 (D.Vset.cardinal (D.succ k4 v)))
    (D.vertex_list k4);
  (* W(3,8): 12 undirected links, 3-regular *)
  let k8 = G.knodel 8 in
  Alcotest.(check int) "knodel8 links" 12 (D.undirected_edge_count k8);
  List.iter
    (fun v -> Alcotest.(check int) "degree 3" 3 (D.Vset.cardinal (D.succ k8 v)))
    (D.vertex_list k8);
  Alcotest.check_raises "odd rejected" (Invalid_argument "Generators.knodel: need positive even n")
    (fun () -> ignore (G.knodel 5))

let test_random_generators () =
  let rng = Prng.create ~seed:1 in
  let g = G.erdos_renyi ~rng ~n:20 ~p:0.2 in
  Alcotest.(check int) "n vertices" 20 (D.num_vertices g);
  let g0 = G.erdos_renyi ~rng ~n:10 ~p:0.0 in
  Alcotest.(check int) "p=0 no edges" 0 (D.num_edges g0);
  let g1 = G.erdos_renyi ~rng ~n:10 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 90 (D.num_edges g1);
  let gm = G.gnm ~rng ~n:12 ~m:30 in
  Alcotest.(check int) "exact m" 30 (D.num_edges gm);
  let gm_cap = G.gnm ~rng ~n:4 ~m:100 in
  Alcotest.(check int) "m capped" 12 (D.num_edges gm_cap);
  let dag = G.random_dag ~rng ~n:15 ~p:0.3 in
  Alcotest.(check bool) "dag acyclic" true (T.is_acyclic dag)

let test_generator_determinism () =
  let g1 = G.erdos_renyi ~rng:(Prng.create ~seed:9) ~n:15 ~p:0.3 in
  let g2 = G.erdos_renyi ~rng:(Prng.create ~seed:9) ~n:15 ~p:0.3 in
  Alcotest.(check dg) "same seed same graph" g1 g2

let test_planted () =
  let rng = Prng.create ~seed:4 in
  let g = G.planted ~rng ~n:12 ~parts:[ G.complete 4; G.loop 4 ] in
  Alcotest.(check int) "vertices" 12 (D.num_vertices g);
  (* the planted K4 must be findable *)
  Alcotest.(check bool) "k4 found" true (V.exists ~pattern:(G.complete 4) ~target:g ());
  Alcotest.(check bool) "loop found" true (V.exists ~pattern:(G.loop 4) ~target:g ())

let test_dot () =
  let g = D.of_edges [ (1, 2); (2, 1); (2, 3) ] in
  let s = Noc_graph.Dot.to_dot g in
  Alcotest.(check bool) "digraph" true (String.length s > 0 && String.sub s 0 7 = "digraph");
  let u = Noc_graph.Dot.to_dot ~undirected:true g in
  Alcotest.(check bool) "graph" true (String.sub u 0 5 = "graph");
  (* labels and file output *)
  let l =
    Noc_graph.Dot.to_dot
      ~vertex_label:(fun v -> Printf.sprintf "core%d" v)
      ~edge_label:(fun a b -> if a = 1 && b = 2 then Some "hot" else None)
      g
  in
  Alcotest.(check bool) "vertex labels" true
    (let rec has i =
       i + 5 <= String.length l && (String.sub l i 5 = "core1" || has (i + 1))
     in
     has 0);
  let path = Filename.temp_file "graph" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Noc_graph.Dot.write_file ~path s;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check int) "file written" (String.length s) len)

(* -------------------------------------------------------------------- *)
(* VF2                                                                   *)

let count_matches pattern target =
  List.length (V.find_all ~pattern ~target ())

let test_vf2_k4_in_k5 () =
  (* K4 -> K5: all 5*4*3*2 injections are monomorphisms *)
  Alcotest.(check int) "monomorphism count" 120 (count_matches (G.complete 4) (G.complete 5));
  (* but only C(5,4)=5 distinct covered edge sets *)
  Alcotest.(check int) "distinct images" 5
    (List.length (V.find_distinct_images ~pattern:(G.complete 4) ~target:(G.complete 5) ()))

let test_vf2_no_match () =
  Alcotest.(check bool) "k4 not in c4" false
    (V.exists ~pattern:(G.complete 4) ~target:(G.knodel 4) ());
  Alcotest.(check bool) "loop5 not in loop4" false
    (V.exists ~pattern:(G.loop 5) ~target:(G.loop 4) ())

let test_vf2_loop_in_mesh () =
  (* a directed 4-cycle exists in a bidirectional mesh (around a unit square) *)
  Alcotest.(check bool) "loop4 in mesh" true
    (V.exists ~pattern:(G.loop 4) ~target:(G.mesh ~rows:2 ~cols:2) ());
  (* a directed 3-cycle does not exist in a bipartite mesh *)
  Alcotest.(check bool) "loop3 not in mesh" false
    (V.exists ~pattern:(G.loop 3) ~target:(G.mesh ~rows:3 ~cols:3) ())

let test_vf2_path_directed () =
  let target = G.path 6 in
  (* directed path of 3 vertices appears 4 times in path of 6 *)
  Alcotest.(check int) "path3 in path6" 4 (count_matches (G.path 3) target)

let test_vf2_star () =
  (* star with 3 leaves in K4: 4 roots * 3! leaf arrangements *)
  Alcotest.(check int) "star count" 24 (count_matches (G.star 4) (G.complete 4))

let test_vf2_all_results_valid () =
  let rng = Prng.create ~seed:31 in
  let target = G.erdos_renyi ~rng ~n:12 ~p:0.3 in
  let pattern = G.loop 4 in
  let ms = V.find_all ~pattern ~target () in
  List.iter
    (fun m ->
      Alcotest.(check bool) "valid monomorphism" true (V.is_monomorphism ~pattern ~target m))
    ms

let test_vf2_max_matches () =
  let ms = V.find_all ~max_matches:7 ~pattern:(G.complete 3) ~target:(G.complete 5) () in
  Alcotest.(check int) "capped" 7 (List.length ms)

let test_vf2_deadline () =
  (* an already-expired deadline must time out quickly and return no match *)
  let deadline = Unix.gettimeofday () -. 1.0 in
  let outcome =
    V.iter ~deadline ~pattern:(G.complete 6) ~target:(G.complete 12) (fun _ -> `Continue)
  in
  Alcotest.(check bool) "timed out" true (outcome = V.Timed_out)

let test_vf2_empty_pattern () =
  Alcotest.(check int) "empty pattern no matches" 0 (count_matches D.empty (G.complete 3))

let test_vf2_edge_image () =
  let pattern = G.path 3 in
  let target = G.path 5 in
  match V.find_first ~pattern ~target () with
  | Some m ->
      let img = V.edge_image ~pattern m in
      Alcotest.(check int) "two edges" 2 (List.length img);
      List.iter
        (fun (u, v) -> Alcotest.(check bool) "edge in target" true (D.mem_edge target u v))
        img
  | None -> Alcotest.fail "path3 must embed in path5"

(* Property: a randomly relabelled subgraph of a random graph always embeds. *)
let qcheck_vf2_planted =
  QCheck.Test.make ~name:"vf2 finds planted subgraphs" ~count:50
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, which) ->
      let rng = Prng.create ~seed:(seed + 1000) in
      let part =
        match which with
        | 0 -> G.complete 3
        | 1 -> G.loop 4
        | 2 -> G.star 4
        | _ -> G.path 4
      in
      let target = G.planted ~rng ~n:10 ~parts:[ part ] in
      V.exists ~pattern:part ~target ())

(* Property: subtracting a found match's edge image strictly decreases the
   edge count by the pattern's edge count. *)
let qcheck_vf2_subtract =
  QCheck.Test.make ~name:"match subtraction removes exactly pattern edges" ~count:50
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 2000) in
      let target = G.planted ~rng ~n:9 ~parts:[ G.loop 4; G.path 3 ] in
      let pattern = G.loop 4 in
      match V.find_first ~pattern ~target () with
      | None -> false
      | Some m ->
          let img = V.edge_image ~pattern m in
          let r = D.diff_edges target img in
          D.num_edges r = D.num_edges target - D.num_edges pattern
          && D.num_vertices r = D.num_vertices target)

(* -------------------------------------------------------------------- *)
(* Multi-pattern screening                                               *)

module MP = Noc_graph.Multi_pattern

let library_patterns () =
  [ (1, G.complete 4); (2, G.star 4); (3, G.loop 4); (4, G.path 3) ]

let test_multi_pattern_survivors () =
  let t = MP.compile (library_patterns ()) in
  (* a sparse path: K4 and star-with-degree-3 cannot embed *)
  let target = G.path 5 in
  let surv = MP.survivors t target in
  Alcotest.(check bool) "K4 screened out" false (List.mem 1 surv);
  Alcotest.(check bool) "star screened out" false (List.mem 2 surv);
  Alcotest.(check bool) "path survives" true (List.mem 4 surv);
  (* the loop passes the degree screen (necessary, not sufficient) and is
     only rejected by the full search *)
  Alcotest.(check (list int)) "complement" [ 1; 2 ] (MP.screened_out t target);
  Alcotest.(check bool) "loop fails the full search" true
    (MP.find_first t ~id:3 target = None)

let test_multi_pattern_no_false_negatives () =
  let t = MP.compile (library_patterns ()) in
  let rng = Prng.create ~seed:61 in
  for _ = 1 to 20 do
    let target = G.erdos_renyi ~rng ~n:10 ~p:0.3 in
    let surv = MP.survivors t target in
    List.iter
      (fun (id, pattern) ->
        if V.exists ~pattern ~target () then
          Alcotest.(check bool)
            (Printf.sprintf "pattern %d must survive" id)
            true (List.mem id surv))
      (library_patterns ())
  done

let test_multi_pattern_find () =
  let t = MP.compile (library_patterns ()) in
  let target = G.complete 5 in
  (match MP.find_first t ~id:1 target with
  | Some m ->
      Alcotest.(check bool) "valid" true
        (V.is_monomorphism ~pattern:(G.complete 4) ~target m)
  | None -> Alcotest.fail "K4 embeds in K5");
  Alcotest.(check bool) "screened find is None" true
    (MP.find_first t ~id:1 (G.path 4) = None);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Multi_pattern.find_first: unknown id 99") (fun () ->
      ignore (MP.find_first t ~id:99 target));
  let hits = MP.matching_patterns t target in
  (* K5 contains all four patterns *)
  Alcotest.(check (list int)) "all match" [ 1; 2; 3; 4 ] (List.map fst hits)

let test_multi_pattern_duplicate_id () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Multi_pattern.compile: duplicate id 1") (fun () ->
      ignore (MP.compile [ (1, G.path 2); (1, G.path 3) ]))

(* -------------------------------------------------------------------- *)
(* Approximate matching                                                  *)

let test_approx_near_gossip () =
  (* K4 minus one edge: no exact MGG4 pattern, but 1-tolerant matching *)
  let target = D.remove_edge (G.complete 4) 1 4 in
  Alcotest.(check bool) "no exact match" false
    (V.exists ~pattern:(G.complete 4) ~target ());
  (match V.find_first_approx ~max_missing:1 ~pattern:(G.complete 4) ~target () with
  | Some a ->
      Alcotest.(check int) "one missing edge" 1 (List.length a.V.missing);
      (* the missing pattern edge maps onto the removed target edge *)
      let u, v = List.hd a.V.missing in
      let mu = D.Vmap.find u a.V.approx_mapping and mv = D.Vmap.find v a.V.approx_mapping in
      Alcotest.(check (pair int int)) "maps to the hole" (1, 4) (mu, mv)
  | None -> Alcotest.fail "1-tolerant match expected");
  Alcotest.(check bool) "0-tolerant rejects" true
    (V.find_first_approx ~max_missing:0 ~pattern:(G.complete 4) ~target () = None)

let test_approx_zero_equals_exact () =
  let rng = Prng.create ~seed:71 in
  for _ = 1 to 10 do
    let target = G.erdos_renyi ~rng ~n:8 ~p:0.35 in
    let pattern = G.loop 4 in
    let exact = List.length (V.find_all ~pattern ~target ()) in
    let approx =
      List.length (V.find_all_approx ~max_missing:0 ~pattern ~target ())
    in
    Alcotest.(check int) "same count" exact approx
  done

let test_covered_edge_image () =
  let target = D.remove_edge (G.complete 4) 1 4 in
  match V.find_first_approx ~max_missing:1 ~pattern:(G.complete 4) ~target () with
  | Some a ->
      let covered =
        V.covered_edge_image ~pattern:(G.complete 4) ~target a.V.approx_mapping
      in
      Alcotest.(check int) "11 of 12 covered" 11 (List.length covered);
      List.iter
        (fun (u, v) -> Alcotest.(check bool) "real edge" true (D.mem_edge target u v))
        covered
  | None -> Alcotest.fail "match expected"

let qcheck_approx_budget_respected =
  QCheck.Test.make ~name:"approximate matches never exceed the miss budget" ~count:30
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, budget) ->
      let rng = Prng.create ~seed:(seed + 3000) in
      let target = G.erdos_renyi ~rng ~n:8 ~p:0.3 in
      let pattern = G.complete 4 in
      V.find_all_approx ~max_missing:budget ~max_matches:20 ~pattern ~target ()
      |> List.for_all (fun a -> List.length a.V.missing <= budget))

(* -------------------------------------------------------------------- *)
(* Compact CSR snapshots and the compact VF2 engine                      *)

module C = Noc_graph.Compact
module Vm = Noc_graph.Vf2_map

let random_digraph rng ~n ~p =
  (* sparse vertex ids, so dense renumbering is actually exercised *)
  G.erdos_renyi ~rng ~n ~p |> D.map_vertices (fun v -> (v * 3) + 7)

let test_compact_basics () =
  let g = D.of_edges [ (10, 20); (10, 30); (20, 30); (30, 10) ] in
  let c = C.freeze g in
  let v = C.view c in
  Alcotest.(check int) "vertices" 3 (C.num_vertices v);
  Alcotest.(check int) "edges" 4 (C.num_edges v);
  Alcotest.(check bool) "mem" true (C.mem_edge v 10 20);
  Alcotest.(check bool) "absent" false (C.mem_edge v 20 10);
  Alcotest.(check bool) "foreign vertex" false (C.mem_edge v 10 99);
  Alcotest.(check dg) "roundtrip" g (C.to_digraph v);
  let v' = C.delete_edges v [ (10, 20); (30, 10) ] in
  Alcotest.(check int) "edges after delete" 2 (C.num_edges v');
  Alcotest.(check bool) "deleted" false (C.mem_edge v' 10 20);
  Alcotest.(check bool) "survivor" true (C.mem_edge v' 20 30);
  Alcotest.(check dg) "delete = diff_edges" (D.diff_edges g [ (10, 20); (30, 10) ])
    (C.to_digraph v');
  (* the base view is unaffected *)
  Alcotest.(check int) "base intact" 4 (C.num_edges v)

let qcheck_compact_matches_digraph =
  QCheck.Test.make ~name:"compact view agrees with the digraph algebra" ~count:100
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 7100) in
      let g = random_digraph rng ~n ~p:0.3 in
      let v = C.view (C.freeze g) in
      (* delete a pseudo-random half of the edges, in two rounds so the
         overlay merge path is exercised *)
      let doomed = List.filteri (fun i _ -> i mod 2 = 0) (D.edges g) in
      let d1 = List.filteri (fun i _ -> i mod 4 = 0) (D.edges g) in
      let v' = C.delete_edges (C.delete_edges v d1) doomed in
      let g' = D.diff_edges g doomed in
      D.equal (C.to_digraph v) g
      && D.equal (C.to_digraph v') g'
      && C.num_edges v' = D.num_edges g'
      && D.fold_vertices
           (fun u acc ->
             acc
             && D.fold_vertices
                  (fun w acc -> acc && C.mem_edge v' u w = D.mem_edge g' u w)
                  g true)
           g true)

let vmap_bindings m = D.Vmap.bindings m

let qcheck_vf2_compact_equals_map =
  QCheck.Test.make
    ~name:"compact VF2 enumerates exactly the map-based engine's matches" ~count:60
    QCheck.(triple small_int (int_range 2 8) (int_range 4 16))
    (fun (seed, np, nt) ->
      let rng = Prng.create ~seed:(seed + 4600) in
      let pattern = G.erdos_renyi ~rng ~n:np ~p:0.5 in
      let target = random_digraph rng ~n:nt ~p:0.35 in
      let all_c =
        Noc_graph.Vf2.find_all ~max_matches:200 ~pattern ~target ()
        |> List.map vmap_bindings
      in
      let all_m =
        Vm.find_all ~max_matches:200 ~pattern ~target () |> List.map vmap_bindings
      in
      let img_c =
        Noc_graph.Vf2.find_distinct_images ~max_matches:50 ~pattern ~target ()
        |> List.map (fun m -> Noc_graph.Vf2.edge_image ~pattern m)
      in
      let img_m =
        Vm.find_distinct_images ~max_matches:50 ~pattern ~target ()
        |> List.map (fun m -> Vm.edge_image ~pattern m)
      in
      all_c = all_m && img_c = img_m)

let qcheck_vf2_approx_compact_equals_map =
  QCheck.Test.make
    ~name:"compact approximate VF2 matches the map-based engine" ~count:40
    QCheck.(triple small_int (int_range 2 6) (int_range 4 12))
    (fun (seed, np, nt) ->
      let rng = Prng.create ~seed:(seed + 8200) in
      let pattern = G.erdos_renyi ~rng ~n:np ~p:0.6 in
      let target = random_digraph rng ~n:nt ~p:0.3 in
      let norm (a : Noc_graph.Vf2.approx) =
        (vmap_bindings a.Noc_graph.Vf2.approx_mapping, a.Noc_graph.Vf2.missing)
      in
      let norm_m (a : Vm.approx) = (vmap_bindings a.Vm.approx_mapping, a.Vm.missing) in
      let ac =
        Noc_graph.Vf2.find_all_approx ~max_matches:100 ~max_missing:1 ~pattern ~target ()
        |> List.map norm
      in
      let am =
        Vm.find_all_approx ~max_matches:100 ~max_missing:1 ~pattern ~target ()
        |> List.map norm_m
      in
      ac = am)

let suite =
  ( "graph",
    [
      Alcotest.test_case "empty graph" `Quick test_empty;
      Alcotest.test_case "add edge" `Quick test_add_edge;
      Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
      Alcotest.test_case "remove edge" `Quick test_remove_edge;
      Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
      Alcotest.test_case "degrees" `Quick test_degrees;
      Alcotest.test_case "union (Def 1)" `Quick test_union;
      Alcotest.test_case "diff_edges (Def 2)" `Quick test_diff_edges;
      Alcotest.test_case "induced subgraph" `Quick test_induced;
      Alcotest.test_case "map vertices" `Quick test_map_vertices;
      Alcotest.test_case "reverse" `Quick test_reverse;
      Alcotest.test_case "undirected counts" `Quick test_undirected_counts;
      Alcotest.test_case "bfs distances" `Quick test_bfs;
      Alcotest.test_case "shortest path" `Quick test_shortest_path;
      Alcotest.test_case "weak components" `Quick test_components;
      Alcotest.test_case "strongly connected components" `Quick test_scc;
      Alcotest.test_case "topological sort" `Quick test_topo;
      Alcotest.test_case "find cycle" `Quick test_find_cycle;
      Alcotest.test_case "diameter" `Quick test_diameter;
      Alcotest.test_case "bisection heuristic" `Quick test_bisection;
      Alcotest.test_case "bisection deterministic under seed" `Quick
        test_bisection_deterministic_under_seed;
      Alcotest.test_case "structured generators" `Quick test_structured_generators;
      Alcotest.test_case "knodel graphs" `Quick test_knodel;
      Alcotest.test_case "random generators" `Quick test_random_generators;
      Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
      Alcotest.test_case "planted generator" `Quick test_planted;
      Alcotest.test_case "dot export" `Quick test_dot;
      Alcotest.test_case "vf2 k4 in k5" `Quick test_vf2_k4_in_k5;
      Alcotest.test_case "vf2 no match" `Quick test_vf2_no_match;
      Alcotest.test_case "vf2 loop in mesh" `Quick test_vf2_loop_in_mesh;
      Alcotest.test_case "vf2 directed paths" `Quick test_vf2_path_directed;
      Alcotest.test_case "vf2 star count" `Quick test_vf2_star;
      Alcotest.test_case "vf2 results valid" `Quick test_vf2_all_results_valid;
      Alcotest.test_case "vf2 max matches" `Quick test_vf2_max_matches;
      Alcotest.test_case "vf2 deadline" `Quick test_vf2_deadline;
      Alcotest.test_case "vf2 empty pattern" `Quick test_vf2_empty_pattern;
      Alcotest.test_case "vf2 edge image" `Quick test_vf2_edge_image;
      Alcotest.test_case "multi-pattern survivors" `Quick test_multi_pattern_survivors;
      Alcotest.test_case "multi-pattern has no false negatives" `Quick
        test_multi_pattern_no_false_negatives;
      Alcotest.test_case "multi-pattern find" `Quick test_multi_pattern_find;
      Alcotest.test_case "multi-pattern duplicate id" `Quick test_multi_pattern_duplicate_id;
      Alcotest.test_case "approx: near-gossip matched" `Quick test_approx_near_gossip;
      Alcotest.test_case "approx: zero tolerance = exact" `Quick test_approx_zero_equals_exact;
      Alcotest.test_case "approx: covered edge image" `Quick test_covered_edge_image;
      QCheck_alcotest.to_alcotest qcheck_approx_budget_respected;
      QCheck_alcotest.to_alcotest qcheck_vf2_planted;
      QCheck_alcotest.to_alcotest qcheck_vf2_subtract;
      Alcotest.test_case "compact snapshot basics" `Quick test_compact_basics;
      QCheck_alcotest.to_alcotest qcheck_compact_matches_digraph;
      QCheck_alcotest.to_alcotest qcheck_vf2_compact_equals_map;
      QCheck_alcotest.to_alcotest qcheck_vf2_approx_compact_equals_map;
    ] )
