(* Tests for the fault-injection and graceful-degradation subsystem
   (lib/resil + the fault-aware simulator): fault model, static rerouting,
   mid-flight failures, drop classification, transient repair, hardening
   and campaign determinism. *)

module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Syn = Noc_core.Synthesis
module Net = Noc_sim.Network
module Fault = Noc_resil.Fault
module Reroute = Noc_resil.Reroute
module Campaign = Noc_resil.Campaign
module Prng = Noc_util.Prng
module Fuzz = Noc_oracle.Fuzz

let add_pair g (u, v) = D.add_edge (D.add_edge g u v) v u

let topology_of pairs = List.fold_left add_pair D.empty pairs

(* Diamond: 1-2-4 and 1-3-4; the single flow is routed over the top (via
   2), so killing link 1-2 leaves a live detour through 3. *)
let diamond_arch () =
  let topology = topology_of [ (1, 2); (2, 4); (1, 3); (3, 4) ] in
  let routes = D.Edge_map.singleton (1, 4) [ 1; 2; 4 ] in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (D.of_edges [ (1, 4) ]) in
  (acg, Syn.make ~topology ~routes ())

(* Line: 1-2-3; no redundancy at all. *)
let line_arch () =
  let topology = topology_of [ (1, 2); (2, 3) ] in
  let routes =
    D.Edge_map.of_seq (List.to_seq [ ((1, 3), [ 1; 2; 3 ]); ((1, 2), [ 1; 2 ]) ])
  in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (D.of_edges [ (1, 3); (1, 2) ]) in
  (acg, Syn.make ~topology ~routes ())

let idle_exn net =
  match Net.run_until_idle net with
  | `Idle -> ()
  | `Limit n -> Alcotest.failf "network did not drain: %d packet(s) pending" n

(* ---------------------------------------------------------------- *)
(* Fault model                                                      *)

let test_fault_model () =
  let f = Fault.link 7 3 in
  Alcotest.(check bool) "link endpoints normalized" true (f.Fault.target = Fault.Link (3, 7));
  Alcotest.(check int) "default strike cycle" 1 f.Fault.at;
  let _, arch = diamond_arch () in
  Alcotest.(check (list (pair int int)))
    "undirected links, sorted"
    [ (1, 2); (1, 3); (2, 4); (3, 4) ]
    (Fault.undirected_links arch);
  let sweep = Fault.single_link_campaign arch in
  Alcotest.(check int) "one fault set per link" 4 (List.length sweep);
  List.iter
    (fun set -> Alcotest.(check int) "singleton sets" 1 (List.length set))
    sweep;
  let multi arch =
    Fault.multi_link_campaign ~rng:(Prng.create ~seed:9) ~links:2 ~samples:6 arch
  in
  Alcotest.(check bool) "multi-link sampling deterministic" true (multi arch = multi arch);
  List.iter
    (fun set ->
      Alcotest.(check int) "requested set size" 2 (List.length set);
      let links = List.map (fun f -> f.Fault.target) set in
      Alcotest.(check int)
        "distinct links per set" 2
        (List.length (List.sort_uniq compare links)))
    (multi arch)

(* ---------------------------------------------------------------- *)
(* Static rerouting                                                 *)

let test_reroute_diamond () =
  let _, arch = diamond_arch () in
  let o = Reroute.apply arch ~faults:[ Fault.link 1 2 ] in
  Alcotest.(check (list (pair int int))) "nothing kept" [] o.Reroute.kept;
  Alcotest.(check (list (pair int int))) "flow rerouted" [ (1, 4) ] o.Reroute.rerouted;
  Alcotest.(check (list (pair int int))) "nothing disconnected" [] o.Reroute.disconnected;
  Alcotest.(check (option (list int)))
    "detour through 3" (Some [ 1; 3; 4 ])
    (Syn.route o.Reroute.arch ~src:1 ~dst:4);
  Alcotest.(check bool) "degraded routes valid" true (Syn.routes_valid o.Reroute.arch)

let test_reroute_disconnects () =
  let _, arch = line_arch () in
  let o = Reroute.apply arch ~faults:[ Fault.link 2 3 ] in
  Alcotest.(check (list (pair int int))) "short flow kept" [ (1, 2) ] o.Reroute.kept;
  Alcotest.(check (list (pair int int))) "cut flow reported" [ (1, 3) ] o.Reroute.disconnected;
  Alcotest.(check (option (list int)))
    "cut flow dropped from the table" None
    (Syn.route o.Reroute.arch ~src:1 ~dst:3)

let test_reroute_dead_switch () =
  let _, arch = line_arch () in
  let o = Reroute.apply arch ~faults:[ Fault.switch 2 ] in
  (* switch 2 takes both flows with it *)
  Alcotest.(check (list (pair int int)))
    "both flows disconnected"
    [ (1, 2); (1, 3) ]
    o.Reroute.disconnected

(* ---------------------------------------------------------------- *)
(* Fault-aware simulation                                           *)

let test_midflight_failure_rerouted () =
  let _, arch = diamond_arch () in
  let net = Net.create arch in
  let id = Net.inject ~size_flits:2 net ~src:1 ~dst:4 in
  Net.fail_link_at net ~at:2 1 2;
  idle_exn net;
  Alcotest.(check int) "delivered" 1 (Net.delivered_count net);
  Alcotest.(check int) "nothing dropped" 0 (Net.dropped_count net);
  (match Net.route_taken net id with
  | None -> Alcotest.fail "delivered packet has a path"
  | Some path ->
      let rec crosses = function
        | a :: (b :: _ as rest) -> ((a, b) = (1, 2) || (a, b) = (2, 1)) || crosses rest
        | _ -> false
      in
      Alcotest.(check bool) "path avoids the dead link" false (crosses path));
  Alcotest.(check (list (pair int int))) "link still down" [ (1, 2) ] (Net.failed_links net)

let test_permanent_disconnection_drops () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let _ = Net.inject ~size_flits:2 net ~src:1 ~dst:3 in
  Net.fail_link_at net ~at:1 2 3;
  idle_exn net;
  Alcotest.(check int) "not delivered" 0 (Net.delivered_count net);
  Alcotest.(check int) "classified as dropped" 1 (Net.dropped_count net);
  Alcotest.(check (list pass)) "nothing stranded" [] (Net.stranded net);
  match Net.drops net with
  | [ { Net.reason = Net.No_route; _ } ] -> ()
  | [ { Net.reason; _ } ] ->
      Alcotest.failf "expected No_route, got %s"
        (Format.asprintf "%a" Net.pp_drop_reason reason)
  | ds -> Alcotest.failf "expected one drop, got %d" (List.length ds)

let test_transient_failure_heals () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let _ = Net.inject ~size_flits:2 net ~src:1 ~dst:3 in
  Net.fail_link_at net ~at:1 ~repair_at:60 2 3;
  idle_exn net;
  Alcotest.(check int) "delivered after the repair" 1 (Net.delivered_count net);
  Alcotest.(check int) "nothing dropped" 0 (Net.dropped_count net);
  Alcotest.(check bool) "source NI retried" true (Net.retries net > 0);
  Alcotest.(check (list (pair int int))) "link back up" [] (Net.failed_links net);
  match Net.deliveries net with
  | [ { Net.delivered_at; _ } ] ->
      Alcotest.(check bool) "delivery waited for the repair" true (delivered_at >= 60)
  | _ -> Alcotest.fail "one delivery expected"

let test_dead_destination_drops_at_injection () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  Net.fail_switch net 3;
  let _ = Net.inject net ~src:1 ~dst:3 in
  Alcotest.(check int) "dropped immediately" 1 (Net.dropped_count net);
  (match Net.drops net with
  | [ { Net.reason = Net.Switch_failed; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Switch_failed drop");
  idle_exn net

let test_midflight_switch_failure () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let _ = Net.inject ~size_flits:2 net ~src:1 ~dst:3 in
  Net.fail_switch_at net ~at:3 2;
  idle_exn net;
  Alcotest.(check int) "injected = delivered + dropped" 1
    (Net.delivered_count net + Net.dropped_count net);
  Alcotest.(check int) "not delivered (2 was the only via)" 0 (Net.delivered_count net);
  Alcotest.(check (list int)) "switch listed" [ 2 ] (Net.failed_switches net)

let test_limit_reports_stranded () =
  let _, arch = diamond_arch () in
  let net = Net.create arch in
  let id = Net.inject ~size_flits:2 net ~src:1 ~dst:4 in
  (match Net.run_until_idle ~max_cycles:2 net with
  | `Limit 1 -> ()
  | `Limit n -> Alcotest.failf "expected 1 pending, got %d" n
  | `Idle -> Alcotest.fail "2 cycles cannot drain a 2-flit packet");
  (match Net.stranded net with
  | [ p ] -> Alcotest.(check int) "stranded packet identified" id p.Noc_sim.Packet.id
  | ps -> Alcotest.failf "expected 1 stranded packet, got %d" (List.length ps));
  idle_exn net;
  Alcotest.(check (list pass)) "stranded clears at idle" [] (Net.stranded net)

(* ---------------------------------------------------------------- *)
(* Hardening and campaigns                                          *)

let harden_ctx () =
  let acg, arch = line_arch () in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp = Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:3 ~size_mm:2.0) in
  (acg, arch, Syn.harden ~tech ~fp arch)

let test_harden_adds_spares () =
  let _, arch, (hardened, spares) = harden_ctx () in
  Alcotest.(check bool) "the line needs spares" true (spares <> []);
  Alcotest.(check bool)
    "hardened has more links" true
    (Syn.link_count hardened > Syn.link_count arch);
  Alcotest.(check bool) "original routes preserved" true (Syn.routes_valid hardened);
  (* now no single link failure may disconnect any flow *)
  List.iter
    (fun link ->
      let o = Reroute.apply hardened ~faults:[ (fun (u, v) -> Fault.link u v) link ] in
      Alcotest.(check (list (pair int int)))
        "no disconnection under any single-link failure" [] o.Reroute.disconnected)
    (Fault.undirected_links hardened)

let test_campaign_classifies_everything () =
  let acg, arch = line_arch () in
  let rep = Campaign.run ~name:"line" ~seed:7 ~spec:Campaign.Single_link acg arch in
  Alcotest.(check int) "one run per link" 2 (List.length rep.Campaign.runs);
  Alcotest.(check int) "nothing stranded" 0 rep.Campaign.stranded_total;
  List.iter
    (fun (r : Campaign.run_result) ->
      Alcotest.(check int)
        "delivered + dropped = injected" r.Campaign.injected
        (r.Campaign.delivered + r.Campaign.dropped))
    (rep.Campaign.baseline :: rep.Campaign.runs);
  (* cutting either line link loses exactly one of the two flows *)
  Alcotest.(check bool) "the line does not survive" false rep.Campaign.survives_all;
  Alcotest.(check int) "both links critical" 2 rep.Campaign.critical_links;
  Alcotest.(check int)
    "criticality covers every link" 2
    (List.length rep.Campaign.criticality)

let test_campaign_hardened_survives () =
  let acg, _, (hardened, _) = harden_ctx () in
  let rep = Campaign.run ~name:"line+" ~seed:7 ~spec:Campaign.Single_link acg hardened in
  Alcotest.(check bool) "hardened line survives" true rep.Campaign.survives_all;
  Alcotest.(check (float 1e-9))
    "delivered fraction 1.0" 1.0 rep.Campaign.min_delivered_fraction;
  Alcotest.(check int) "no critical links left" 0 rep.Campaign.critical_links

let test_campaign_deterministic () =
  let acg, arch = diamond_arch () in
  let spec = Campaign.Multi_link { links = 2; samples = 5 } in
  let run () = Campaign.run ~name:"diamond" ~seed:11 ~spec acg arch in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical reports for one seed" true (a = b);
  Alcotest.(check int) "sampled size" 5 (List.length a.Campaign.runs)

(* ---------------------------------------------------------------- *)
(* Differential property (shared with the fuzz harness)             *)

let qcheck_reroute_avoids_faults =
  QCheck.Test.make ~name:"reroute avoids failed links (oracle path search)" ~count:200
    QCheck.(int_range 0 800)
    (fun k ->
      let acg = Fuzz.gen_acg ~rng:(Prng.create ~seed:(80_000 + k)) in
      match
        Fuzz.check ~library:(Noc_primitives.Library.default ()) "reroute-avoids-faults"
          acg
      with
      | Ok () -> true
      | Error detail -> QCheck.Test.fail_reportf "seed %d: %s" (80_000 + k) detail)

let suite =
  ( "resil",
    [
      Alcotest.test_case "fault model" `Quick test_fault_model;
      Alcotest.test_case "reroute: diamond detour" `Quick test_reroute_diamond;
      Alcotest.test_case "reroute: disconnection" `Quick test_reroute_disconnects;
      Alcotest.test_case "reroute: dead switch" `Quick test_reroute_dead_switch;
      Alcotest.test_case "sim: mid-flight failure rerouted" `Quick
        test_midflight_failure_rerouted;
      Alcotest.test_case "sim: permanent cut drops" `Quick
        test_permanent_disconnection_drops;
      Alcotest.test_case "sim: transient failure heals" `Quick test_transient_failure_heals;
      Alcotest.test_case "sim: dead destination" `Quick
        test_dead_destination_drops_at_injection;
      Alcotest.test_case "sim: mid-flight switch failure" `Quick
        test_midflight_switch_failure;
      Alcotest.test_case "sim: limit reports stranded" `Quick test_limit_reports_stranded;
      Alcotest.test_case "harden adds spares" `Quick test_harden_adds_spares;
      Alcotest.test_case "campaign classifies everything" `Quick
        test_campaign_classifies_everything;
      Alcotest.test_case "campaign: hardened survives" `Quick
        test_campaign_hardened_survives;
      Alcotest.test_case "campaign deterministic" `Quick test_campaign_deterministic;
      QCheck_alcotest.to_alcotest qcheck_reroute_avoids_faults;
    ] )
