(* Tests for the large-scale search machinery: work-stealing parallel
   decomposition, the branch-ordering portfolio, the anytime/greedy
   fallback, budget resolution/clamping, and the benchkit scaling tier.

   test_noc.ml sets NOCSYNTH_MAX_DOMAINS=8 before Alcotest runs, so
   multi-domain paths really execute even on a single-CPU CI box. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module L = Noc_primitives.Library
module Acg = Noc_core.Acg
module Decomp = Noc_core.Decomposition
module Bb = Noc_core.Branch_bound
module Prng = Noc_util.Prng
module Corpus = Noc_benchkit.Corpus

let lib () = L.default ()

(* sparse random ACGs of the shape the scaling corpus uses; small enough
   that every search completes within the default 200k-node budget, which
   is what scopes the determinism guarantee *)
let sparse_acg ~seed ~n =
  let rng = Prng.create ~seed in
  let g = G.erdos_renyi ~rng ~n ~p:(3.0 /. float_of_int (n - 1)) in
  Acg.uniform ~volume:8 ~bandwidth:0.05 g

(* -------------------------------------------------------------------- *)
(* Budget resolution and the domain clamp                                *)

let test_domain_cap_env () =
  (* the harness exports NOCSYNTH_MAX_DOMAINS=8 *)
  Alcotest.(check int) "cap follows the env override" 8 (Bb.domain_cap ())

let test_resolve_budget_clamps () =
  let b = Bb.resolve_budget ~budget:Bb.Budget.(default |> with_domains 64) () in
  Alcotest.(check int) "over-ask clamps to the cap" (Bb.domain_cap ())
    b.Bb.Budget.domains;
  let b = Bb.resolve_budget ~budget:Bb.Budget.(default |> with_domains 0) () in
  Alcotest.(check int) "zero domains becomes one" 1 b.Bb.Budget.domains;
  let b = Bb.resolve_budget ~budget:Bb.Budget.(default |> with_domains (-3)) () in
  Alcotest.(check int) "negative domains becomes one" 1 b.Bb.Budget.domains

let test_resolve_budget_preserves_limits () =
  (* clamping only touches domains: time and node limits pass through *)
  let b =
    Bb.resolve_budget
      ~budget:Bb.Budget.(default |> with_timeout_s (Some 1.5) |> with_max_nodes 123)
      ()
  in
  Alcotest.(check (option (float 1e-9))) "timeout preserved" (Some 1.5)
    b.Bb.Budget.timeout_s;
  Alcotest.(check int) "max_nodes preserved" 123 b.Bb.Budget.max_nodes

let test_resolve_budget_default () =
  (* no budget resolves to the default *)
  let b = Bb.resolve_budget () in
  Alcotest.(check (option (float 1e-9))) "no timeout" None b.Bb.Budget.timeout_s;
  Alcotest.(check int) "default max_nodes" Bb.Budget.default.Bb.Budget.max_nodes
    b.Bb.Budget.max_nodes;
  Alcotest.(check int) "one domain" 1 b.Bb.Budget.domains

let test_ordering_names_roundtrip () =
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Bb.ordering_name o ^ " round-trips")
        true
        (Bb.ordering_of_string (Bb.ordering_name o) = Some o))
    Bb.all_orderings

(* -------------------------------------------------------------------- *)
(* Work stealing: parallel cost = sequential cost                        *)

let qcheck_ws_cost_equals_sequential =
  QCheck.Test.make
    ~name:"work-stealing search (8 domains) reports the sequential cost" ~count:200
    QCheck.(pair small_int (int_range 5 10))
    (fun (seed, n) ->
      let acg = sparse_acg ~seed:(seed + 7100) ~n in
      let d1, s1 = Bb.decompose ~library:(lib ()) acg in
      let d8, s8 = Bb.decompose ~budget:Bb.Budget.(default |> with_domains 8) ~library:(lib ()) acg in
      if s1.Bb.timed_out || s8.Bb.timed_out then
        (* anytime result: only validity and feasibility are guaranteed *)
        Decomp.is_valid_for acg d8 && s8.Bb.best_cost < infinity
      else
        s1.Bb.best_cost = s8.Bb.best_cost
        && Decomp.is_valid_for acg d1
        && Decomp.is_valid_for acg d8)

let test_ws_counters () =
  (* the parallel engine reports its scheduler counters *)
  let acg = Corpus.clustered ~seed:3 ~n:32 in
  let _, st = Bb.decompose ~budget:Bb.Budget.(default |> with_domains 8) ~library:(lib ()) acg in
  Alcotest.(check bool) "at least one task" true (st.Bb.tasks >= 1);
  Alcotest.(check bool) "steals are non-negative" true (st.Bb.steals >= 0);
  let _, st1 = Bb.decompose ~library:(lib ()) acg in
  Alcotest.(check int) "sequential run is one task" 1 st1.Bb.tasks

(* -------------------------------------------------------------------- *)
(* Portfolio: the raced winner is never worse than any single ordering   *)

let qcheck_portfolio_never_worse =
  QCheck.Test.make
    ~name:"portfolio winner <= every single branch ordering" ~count:30
    QCheck.(pair small_int (int_range 6 11))
    (fun (seed, n) ->
      let acg = sparse_acg ~seed:(seed + 8200) ~n in
      let singles =
        List.map
          (fun ordering ->
            Bb.decompose
              ~options:{ Bb.default_options with ordering }
              ~library:(lib ()) acg)
          Bb.all_orderings
      in
      let _, sp =
        Bb.decompose
          ~options:{ Bb.default_options with portfolio = true }
          ~budget:Bb.Budget.(default |> with_domains 3)
          ~library:(lib ()) acg
      in
      if sp.Bb.timed_out || List.exists (fun (_, s) -> s.Bb.timed_out) singles then
        true (* exhausted searches are anytime results; no ranking claim *)
      else
        sp.Bb.winner <> None
        && List.for_all
             (fun (_, s) -> sp.Bb.best_cost <= s.Bb.best_cost +. 1e-9)
             singles)

(* -------------------------------------------------------------------- *)
(* Anytime fallback: budget exhaustion still yields a feasible answer    *)

let check_fallback_feasible acg =
  let options = { Bb.default_options with fallback = true } in
  let budget = Bb.Budget.(default |> with_timeout_s None |> with_max_nodes 10) in
  let d, st = Bb.decompose ~options ~budget ~library:(lib ()) acg in
  Decomp.is_valid_for acg d
  && Float.is_finite st.Bb.best_cost
  && st.Bb.best_cost <= float_of_int (D.num_edges (Acg.graph acg)) +. 1e-9
  && (match st.Bb.gap_pct with
     | Some g -> st.Bb.timed_out && g >= 0.0
     | None -> true)

let qcheck_fallback_always_feasible =
  QCheck.Test.make
    ~name:"fallback under a starved budget is always constraint-feasible" ~count:50
    QCheck.(pair small_int (int_range 12 24))
    (fun (seed, n) -> check_fallback_feasible (sparse_acg ~seed:(seed + 9400) ~n))

let test_fallback_scale_clustered () =
  (* a scaling-tier-sized input under a starved budget: the greedy seed
     guarantees a feasible decomposition with a reported gap *)
  let acg = Corpus.clustered ~seed:3 ~n:128 in
  let options = { Bb.default_options with fallback = true } in
  let budget = Bb.Budget.(default |> with_timeout_s None |> with_max_nodes 5) in
  let d, st = Bb.decompose ~options ~budget ~library:(lib ()) acg in
  Alcotest.(check bool) "valid decomposition" true (Decomp.is_valid_for acg d);
  Alcotest.(check bool) "budget exhausted" true st.Bb.timed_out;
  Alcotest.(check bool) "finite incumbent" true (Float.is_finite st.Bb.best_cost);
  Alcotest.(check bool) "gap reported" true (st.Bb.gap_pct <> None);
  Alcotest.(check bool) "gap non-negative" true
    (match st.Bb.gap_pct with Some g -> g >= 0.0 | None -> false)

(* -------------------------------------------------------------------- *)
(* Scaling corpus tier                                                   *)

let test_scale_corpus_shape () =
  let tier = Corpus.scale () in
  Alcotest.(check int) "three families x five sizes" 15 (List.length tier);
  let smoke = Corpus.scale_smoke () in
  Alcotest.(check int) "smoke slice is the two small sizes" 6 (List.length smoke);
  List.iter
    (fun (s : Corpus.scenario) ->
      Alcotest.(check string) (s.name ^ " kind") "scale" s.kind;
      Alcotest.(check bool)
        (s.name ^ " has flows")
        true
        (D.num_edges (Acg.graph s.acg) > 0))
    tier;
  (* generators are seeded: regenerating gives identical graphs *)
  List.iter2
    (fun (a : Corpus.scenario) (b : Corpus.scenario) ->
      Alcotest.(check bool) (a.name ^ " is reproducible") true
        (D.edges (Acg.graph a.acg) = D.edges (Acg.graph b.acg)))
    smoke
    (Corpus.scale_smoke ())

let suite =
  ( "scale",
    [
      Alcotest.test_case "domain cap follows the env override" `Quick test_domain_cap_env;
      Alcotest.test_case "resolve_budget clamps domains" `Quick test_resolve_budget_clamps;
      Alcotest.test_case "resolve_budget preserves time and node limits" `Quick
        test_resolve_budget_preserves_limits;
      Alcotest.test_case "resolve_budget defaults" `Quick test_resolve_budget_default;
      Alcotest.test_case "ordering names round-trip" `Quick test_ordering_names_roundtrip;
      Alcotest.test_case "work-stealing scheduler counters" `Quick test_ws_counters;
      Alcotest.test_case "fallback on a 128-core clustered graph" `Quick
        test_fallback_scale_clustered;
      Alcotest.test_case "scale corpus shape" `Quick test_scale_corpus_shape;
      QCheck_alcotest.to_alcotest qcheck_ws_cost_equals_sequential;
      QCheck_alcotest.to_alcotest qcheck_portfolio_never_worse;
      QCheck_alcotest.to_alcotest qcheck_fallback_always_feasible;
    ] )
