(* Tests for the benchmark corpus, runner, record schema and regression
   gate (lib/benchkit). *)

module Corpus = Noc_benchkit.Corpus
module Runner = Noc_benchkit.Runner
module Record = Noc_benchkit.Record
module Regress = Noc_benchkit.Regress
module J = Noc_obs.Obs.Json
module Acg = Noc_core.Acg

(* ---------------------------------------------------------------- *)
(* Corpus                                                           *)

let test_corpus_shape () =
  let scenarios = Corpus.default () in
  Alcotest.(check bool) "at least 10 scenarios" true (List.length scenarios >= 10);
  let names = List.map (fun s -> s.Corpus.name) scenarios in
  Alcotest.(check int)
    "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Corpus.name ^ " kind known") true
        (List.mem s.Corpus.kind [ "paper"; "app"; "tgff"; "random" ]);
      Alcotest.(check bool)
        (s.Corpus.name ^ " non-empty") true
        (Acg.num_flows s.Corpus.acg > 0))
    scenarios;
  Alcotest.(check bool) "find hits" true (Corpus.find "aes" scenarios <> None);
  Alcotest.(check (option reject)) "find misses" None (Corpus.find "nope" scenarios)

let test_corpus_deterministic () =
  (* seeded generators: building the corpus twice yields identical graphs *)
  let once () =
    Corpus.default ()
    |> List.map (fun s ->
           (s.Corpus.name, Acg.num_flows s.Corpus.acg, Acg.total_volume s.Corpus.acg))
  in
  Alcotest.(check (list (triple string int int))) "same corpus" (once ()) (once ())

(* ---------------------------------------------------------------- *)
(* Runner                                                           *)

let smoke_result =
  (* one small scenario through the full flow; shared across tests *)
  lazy
    (let s = List.hd (Corpus.default ()) in
     Runner.run ~settings:Runner.smoke s)

let test_runner_sanity () =
  let r = Lazy.force smoke_result in
  Alcotest.(check string) "name" "fig2" r.Runner.name;
  Alcotest.(check bool) "cores" true (r.Runner.cores > 0);
  Alcotest.(check bool) "flows" true (r.Runner.flows > 0);
  Alcotest.(check int)
    "one search sample per domain count"
    (List.length Runner.smoke.Runner.domains)
    (List.length r.Runner.search);
  List.iter
    (fun s ->
      Alcotest.(check bool) "wall_s >= 0" true (s.Runner.wall_s >= 0.);
      Alcotest.(check bool) "nodes > 0" true (s.Runner.nodes > 0);
      Alcotest.(check bool) "cost finite" true (Float.is_finite s.Runner.best_cost))
    r.Runner.search;
  Alcotest.(check bool) "links" true (r.Runner.links > 0);
  Alcotest.(check bool) "energy positive" true (r.Runner.energy_pj > 0.);
  Alcotest.(check int)
    "one burst row per engine fidelity" 2
    (List.length r.Runner.engines);
  List.iter
    (fun (e : Runner.engine_sample) ->
      Alcotest.(check bool) (e.Runner.engine ^ " delivered") true (e.Runner.e_delivered > 0))
    r.Runner.engines;
  (match (Runner.engine_row r "wormhole", Runner.engine_row r "flit") with
  | Some wh, Some fl ->
      Alcotest.(check int)
        "both fidelities deliver the same packet count" wh.Runner.e_delivered
        fl.Runner.e_delivered;
      Alcotest.(check bool)
        "no VC truncation on the corpus head" false wh.Runner.e_vc_truncated
  | _ -> Alcotest.fail "missing engine burst row");
  Alcotest.(check int)
    "one sweep sample per rate"
    (List.length Runner.smoke.Runner.sweep_rates)
    (List.length r.Runner.sweep);
  let rs = r.Runner.resilience in
  Alcotest.(check bool)
    "resilience fraction in [0,1]" true
    (rs.Runner.min_delivered_fraction >= 0. && rs.Runner.min_delivered_fraction <= 1.);
  Alcotest.(check bool)
    "resilience latency factor sane" true
    (rs.Runner.max_latency_factor >= 1. || rs.Runner.max_latency_factor = 0.);
  Alcotest.(check int) "resilience strands nothing" 0 rs.Runner.resil_stranded;
  let sv = r.Runner.serve in
  Alcotest.(check int) "serve mix size" 9 sv.Runner.serve_requests;
  Alcotest.(check int) "serve ok (wf mix + admitted burst)" 6 sv.Runner.serve_ok;
  Alcotest.(check int) "serve hits (dup + permutations + burst)" 5 sv.Runner.serve_hits;
  Alcotest.(check (float 1e-9)) "serve hit rate" (5.0 /. 6.0) sv.Runner.serve_hit_rate;
  Alcotest.(check bool) "serve responses byte-identical" true sv.Runner.serve_byte_identical;
  Alcotest.(check bool) "serve rps positive" true (sv.Runner.serve_rps > 0.);
  Alcotest.(check int) "serve errors (unknown lib + dead deadline)" 2
    sv.Runner.serve_errors;
  Alcotest.(check int) "serve shed (3-burst through 2 slots)" 1 sv.Runner.serve_shed;
  Alcotest.(check (float 1e-9)) "serve error rate" (2.0 /. 9.0) sv.Runner.serve_error_rate;
  Alcotest.(check (float 1e-9)) "serve shed rate" (1.0 /. 9.0) sv.Runner.serve_shed_rate;
  Alcotest.(check bool) "serve snapshot restore" true sv.Runner.serve_restore_ok

(* ---------------------------------------------------------------- *)
(* Record                                                           *)

let record_of_result r = Record.to_json ~created_unix_s:0. ~rev:"test" ~mode:"smoke" [ r ]

let test_record_roundtrip () =
  let j = record_of_result (Lazy.force smoke_result) in
  (match Record.check_schema j with
  | Ok () -> ()
  | Error (`Msg m) -> Alcotest.failf "schema: %s" m);
  (* serialized form parses back and flattens to the same metrics *)
  match J.parse (J.to_string j) with
  | Error (`Msg m) -> Alcotest.failf "reparse: %s" m
  | Ok j' ->
      Alcotest.(check (list (pair string (float 1e-9))))
        "flatten survives a round-trip" (Record.flatten j) (Record.flatten j')

let test_record_flatten_keys () =
  let flat = Record.flatten (record_of_result (Lazy.force smoke_result)) in
  let has key = List.mem_assoc key flat in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " present") true (has k))
    [
      "schema_version";
      "scenarios.fig2.search.d1.wall_s";
      "scenarios.fig2.search.d1.nodes";
      "scenarios.fig2.energy_pj";
      "scenarios.fig2.engines.wormhole.avg_latency";
      "scenarios.fig2.engines.flit.avg_latency";
      "scenarios.fig2.engines.wormhole.vc_truncated";
      "scenarios.fig2.resilience.min_delivered_fraction";
      "scenarios.fig2.resilience.critical_links";
      "scenarios.fig2.resilience.survives_single_link";
    ]

(* ---------------------------------------------------------------- *)
(* Regression gate                                                  *)

(* multiply the named numeric member of each scenario object *)
let scale_metric key factor json =
  let rec go = function
    | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               if k = key then
                 match v with
                 | J.Float f -> (k, J.Float (f *. factor))
                 | J.Int i -> (k, J.Float (float_of_int i *. factor))
                 | other -> (k, go other)
               else (k, go v))
             fields)
    | J.List xs -> J.List (List.map go xs)
    | leaf -> leaf
  in
  go json

let compare_exn ?time_limit_pct ~base ~cur () =
  match Regress.compare_records ?time_limit_pct ~base ~cur () with
  | Ok report -> report
  | Error (`Msg m) -> Alcotest.failf "compare: %s" m

let test_regress_identical_passes () =
  let j = record_of_result (Lazy.force smoke_result) in
  let report = compare_exn ~base:j ~cur:j () in
  Alcotest.(check bool) "ok" true (Regress.ok report);
  Alcotest.(check int) "no regressions" 0 (List.length report.Regress.regressions);
  Alcotest.(check bool) "gated something" true (report.Regress.checked > 0)

let test_regress_flags_slowdown () =
  (* the acceptance case: a +20%-and-then-some wall-clock regression must
     trip the gate even under the default 10% timing threshold *)
  let base = record_of_result (Lazy.force smoke_result) in
  (* +25% and +0.1 s, comfortably past both the pct and min_abs floors *)
  let rec bump = function
    | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "wall_s", J.Float f -> (k, J.Float ((f *. 1.25) +. 0.1))
               | _ -> (k, bump v))
             fields)
    | J.List xs -> J.List (List.map bump xs)
    | leaf -> leaf
  in
  let cur = bump base in
  let report = compare_exn ~base ~cur () in
  Alcotest.(check bool) "gate trips" false (Regress.ok report);
  Alcotest.(check bool)
    "a wall_s metric is named" true
    (List.exists
       (fun v ->
         String.length v.Regress.metric >= 6
         && String.sub v.Regress.metric (String.length v.Regress.metric - 6) 6 = "wall_s")
       report.Regress.regressions)

let test_regress_flags_energy () =
  let base = record_of_result (Lazy.force smoke_result) in
  let cur = scale_metric "energy_pj" 1.21 base in
  let report = compare_exn ~base ~cur () in
  Alcotest.(check bool) "gate trips" false (Regress.ok report);
  Alcotest.(check bool)
    "energy metric flagged" true
    (List.exists
       (fun v -> v.Regress.metric = "scenarios.fig2.energy_pj")
       report.Regress.regressions)

let test_regress_improvement_not_flagged () =
  (* faster is fine: a large wall-clock drop lands in improvements *)
  let base = record_of_result (Lazy.force smoke_result) in
  let cur = scale_metric "energy_pj" 0.5 base in
  let report = compare_exn ~base ~cur () in
  Alcotest.(check bool) "ok" true (Regress.ok report);
  Alcotest.(check bool)
    "recorded as improvement" true
    (report.Regress.improvements <> [])

let test_regress_missing_metric () =
  let base = record_of_result (Lazy.force smoke_result) in
  let rec drop = function
    | J.Obj fields ->
        J.Obj
          (fields
          |> List.filter (fun (k, _) -> k <> "energy_pj")
          |> List.map (fun (k, v) -> (k, drop v)))
    | J.List xs -> J.List (List.map drop xs)
    | leaf -> leaf
  in
  let report = compare_exn ~base ~cur:(drop base) () in
  Alcotest.(check bool) "gate trips" false (Regress.ok report);
  Alcotest.(check (list string))
    "missing named" [ "scenarios.fig2.energy_pj" ] report.Regress.missing

let test_regress_schema_mismatch () =
  let base = record_of_result (Lazy.force smoke_result) in
  match Regress.compare_records ~base ~cur:(J.Obj [ ("schema", J.Str "other") ]) () with
  | Ok _ -> Alcotest.fail "expected schema error"
  | Error (`Msg _) -> ()

let suite =
  ( "benchkit",
    [
      Alcotest.test_case "corpus shape" `Quick test_corpus_shape;
      Alcotest.test_case "corpus deterministic" `Quick test_corpus_deterministic;
      Alcotest.test_case "runner smoke sanity" `Quick test_runner_sanity;
      Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
      Alcotest.test_case "record flatten keys" `Quick test_record_flatten_keys;
      Alcotest.test_case "regress: identical passes" `Quick test_regress_identical_passes;
      Alcotest.test_case "regress: slowdown flagged" `Quick test_regress_flags_slowdown;
      Alcotest.test_case "regress: energy flagged" `Quick test_regress_flags_energy;
      Alcotest.test_case "regress: improvement ok" `Quick test_regress_improvement_not_flagged;
      Alcotest.test_case "regress: missing metric" `Quick test_regress_missing_metric;
      Alcotest.test_case "regress: schema mismatch" `Quick test_regress_schema_mismatch;
    ] )
