(* Tests for the paper's core contribution: ACG handling, cost functions,
   matchings, the branch-and-bound decomposition (Section 4), constraint
   checking, architecture synthesis and deadlock analysis. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module L = Noc_primitives.Library
module P = Noc_primitives.Primitive
module Acg = Noc_core.Acg
module Cost = Noc_core.Cost
module Matching = Noc_core.Matching
module Decomp = Noc_core.Decomposition
module Bb = Noc_core.Branch_bound
module Syn = Noc_core.Synthesis
module Cons = Noc_core.Constraints
module Dead = Noc_core.Deadlock
module Prng = Noc_util.Prng

let lib () = L.default ()

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let edge_count = Cost.Edge_count

(* -------------------------------------------------------------------- *)
(* Acg                                                                   *)

let test_acg_basics () =
  let acg = Acg.of_weighted_edges [ (1, 2, 100, 0.5); (2, 3, 50, 0.2) ] in
  Alcotest.(check int) "cores" 3 (Acg.num_cores acg);
  Alcotest.(check int) "flows" 2 (Acg.num_flows acg);
  Alcotest.(check int) "volume" 100 (Acg.volume acg 1 2);
  Alcotest.(check (float 1e-9)) "bandwidth" 0.2 (Acg.bandwidth acg 2 3);
  Alcotest.(check int) "non-edge volume" 0 (Acg.volume acg 3 1);
  Alcotest.(check int) "total" 150 (Acg.total_volume acg)

let test_acg_defaults () =
  let acg = Acg.make ~graph:(G.loop 3) () in
  Alcotest.(check int) "default volume 1" 1 (Acg.volume acg 1 2);
  Alcotest.(check (float 1e-9)) "default bandwidth 0" 0.0 (Acg.bandwidth acg 1 2)

let test_acg_rejects_bad_keys () =
  let vol = D.Edge_map.singleton (7, 9) 5 in
  Alcotest.check_raises "attr on non-edge"
    (Invalid_argument "Acg.make: volume attribute on non-edge 7->9") (fun () ->
      ignore (Acg.make ~graph:(G.loop 3) ~volume:vol ()))

let test_acg_uniform_and_restrict () =
  let acg = Acg.uniform ~volume:7 ~bandwidth:0.3 (G.complete 4) in
  Alcotest.(check int) "uniform volume" 7 (Acg.volume acg 2 3);
  let sub = D.of_edges [ (1, 2); (3, 4) ] in
  let r = Acg.restrict acg sub in
  Alcotest.(check int) "restricted flows" 2 (Acg.num_flows r);
  Alcotest.(check int) "attrs preserved" 7 (Acg.volume r 1 2);
  Alcotest.check_raises "restrict beyond acg"
    (Invalid_argument "Acg.restrict: 1->9 not in the ACG") (fun () ->
      ignore (Acg.restrict acg (D.of_edges [ (1, 9) ])))

let test_acg_of_tgff () =
  let rng = Prng.create ~seed:21 in
  let tg = Noc_tgff.Tgff.generate ~rng Noc_tgff.Tgff.default_params in
  let acg = Acg.of_tgff tg in
  Alcotest.(check int) "cores" (D.num_vertices tg.Noc_tgff.Tgff.graph) (Acg.num_cores acg);
  (* every edge has its generated volume *)
  D.iter_edges
    (fun u v ->
      Alcotest.(check bool) "volume positive" true (Acg.volume acg u v > 0))
    (Acg.graph acg)

(* -------------------------------------------------------------------- *)
(* Cost                                                                  *)

let test_min_link_ratio () =
  (* MGG4: 4 links / 12 covered edges = 1/3, the library minimum *)
  let r = Cost.min_link_ratio_of_library (lib ()) in
  Alcotest.(check (float 1e-9)) "ratio" (1.0 /. 3.0) r

let test_remainder_cost_edge_count () =
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.loop 5) in
  Alcotest.(check (float 1e-9)) "edges" 5.0
    (Cost.remainder_cost edge_count acg (Acg.graph acg))

let test_lower_bound_admissible () =
  (* the lower bound must never exceed the true optimal cost *)
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.complete 4) in
  let lb = Cost.lower_bound edge_count acg ~min_link_ratio:(1.0 /. 3.0) (Acg.graph acg) in
  let _, stats = Bb.decompose ~library:(lib ()) acg in
  Alcotest.(check bool) "admissible" true (lb <= stats.Bb.best_cost +. 1e-9)

(* -------------------------------------------------------------------- *)
(* Matching                                                              *)

let find_matching entry target =
  match Noc_graph.Vf2.find_first ~pattern:entry.L.prim.P.repr ~target () with
  | Some m -> Matching.of_vf2 entry m
  | None -> Alcotest.fail "expected a match"

let test_matching_covered_and_impl () =
  let entry = Option.get (L.find_by_name (lib ()) "MGG4") in
  let target = G.complete 4 in
  let m = find_matching entry target in
  Alcotest.(check int) "covers all 12 edges" 12 (List.length m.Matching.covered);
  let impl = Matching.impl_in_acg m in
  Alcotest.(check int) "4 physical links" 4 (D.undirected_edge_count impl)

let test_matching_routes () =
  let entry = Option.get (L.find_by_name (lib ()) "MGG4") in
  let m = find_matching entry (G.complete 4) in
  let routes = Matching.routes m in
  Alcotest.(check int) "route per covered edge" 12 (List.length routes);
  let impl = Matching.impl_in_acg m in
  List.iter
    (fun ((u, v), path) ->
      Alcotest.(check int) "starts" u (List.hd path);
      Alcotest.(check int) "ends" v (List.nth path (List.length path - 1));
      let rec ok = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "link" true (D.mem_edge impl a b);
            ok rest
        | _ -> ()
      in
      ok path)
    routes

let test_matching_cost_edge_count () =
  let entry = Option.get (L.find_by_name (lib ()) "L4") in
  let m = find_matching entry (G.loop 4) in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.loop 4) in
  Alcotest.(check (float 1e-9)) "4 links" 4.0 (Matching.cost edge_count acg m)

let test_matching_pp_format () =
  let entry = Option.get (L.find_by_name (lib ()) "MGG4") in
  let m = find_matching entry (G.complete 4) in
  let s = Format.asprintf "%a" Matching.pp m in
  Alcotest.(check bool) "paper format" true
    (String.length s > 0 && String.sub s 0 1 = "1" && contains s "MGG4"
    && contains s "Mapping:")

(* -------------------------------------------------------------------- *)
(* Branch and bound: structural results                                  *)

let decompose ?options ?budget acg = Bb.decompose ?options ?budget ~library:(lib ()) acg

let test_decompose_planted_k4 () =
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.complete 4) in
  let d, stats = decompose acg in
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for acg d);
  Alcotest.(check (float 1e-9)) "cost 4 (one MGG4)" 4.0 stats.Bb.best_cost;
  Alcotest.(check (list (pair string int))) "histogram" [ ("MGG4", 1) ]
    (Decomp.primitive_histogram d);
  Alcotest.(check bool) "empty remainder" true (D.has_no_edges d.Decomp.remainder)

let test_decompose_star () =
  (* a 1-to-3 broadcast pattern: G123 must cover it with 3 links *)
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.star 4) in
  let d, stats = decompose acg in
  Alcotest.(check (float 1e-9)) "cost 3" 3.0 stats.Bb.best_cost;
  Alcotest.(check (list (pair string int))) "one G123" [ ("G123", 1) ]
    (Decomp.primitive_histogram d)

let test_decompose_loop () =
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.loop 6) in
  let d, _ = decompose acg in
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for acg d);
  Alcotest.(check (list (pair string int))) "one L6" [ ("L6", 1) ]
    (Decomp.primitive_histogram d)

let test_decompose_unmatchable () =
  (* two antiparallel edges match nothing in the default library *)
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (D.of_edges [ (1, 2); (2, 1) ]) in
  let d, stats = decompose acg in
  Alcotest.(check int) "no matchings" 0 (List.length d.Decomp.matchings);
  Alcotest.(check int) "remainder 2 edges" 2 (D.num_edges d.Decomp.remainder);
  Alcotest.(check (float 1e-9)) "cost 2" 2.0 stats.Bb.best_cost

let test_decompose_empty () =
  let acg = Acg.make ~graph:(D.add_vertex D.empty 1) () in
  let d, stats = decompose acg in
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for acg d);
  Alcotest.(check (float 1e-9)) "zero cost" 0.0 stats.Bb.best_cost

let test_decompose_disjoint_planted () =
  (* K4 on 1..4 plus L4 on 5..8: optimal cost 4 + 4 *)
  let g =
    D.union (G.complete 4) (D.map_vertices (fun v -> v + 4) (G.loop 4))
  in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  let d, stats = decompose acg in
  Alcotest.(check (float 1e-9)) "cost 8" 8.0 stats.Bb.best_cost;
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for acg d);
  Alcotest.(check (list (pair string int))) "histogram" [ ("L4", 1); ("MGG4", 1) ]
    (Decomp.primitive_histogram d)

let test_decompose_timeout () =
  let rng = Prng.create ~seed:77 in
  let g = G.erdos_renyi ~rng ~n:20 ~p:0.3 in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  let budget = Bb.Budget.(default |> with_timeout_s (Some 0.0)) in
  let d, stats = decompose ~budget acg in
  Alcotest.(check bool) "flagged" true stats.Bb.timed_out;
  Alcotest.(check bool) "still valid" true (Decomp.is_valid_for acg d)

let test_decompose_node_budget () =
  let rng = Prng.create ~seed:78 in
  let g = G.erdos_renyi ~rng ~n:16 ~p:0.4 in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  (* Branch mode keeps neutral primitives in the tree: big enough to hit
     a 10-node budget *)
  let options = { Bb.default_options with neutrals = Bb.Branch } in
  let _, stats = decompose ~options ~budget:Bb.Budget.(default |> with_max_nodes 10) acg in
  Alcotest.(check bool) "budget hit" true stats.Bb.timed_out;
  Alcotest.(check bool) "nodes bounded" true (stats.Bb.nodes <= 11)

let test_decompose_deterministic () =
  let rng = Prng.create ~seed:5 in
  let g = G.erdos_renyi ~rng ~n:10 ~p:0.25 in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  let d1, s1 = decompose acg in
  let d2, s2 = decompose acg in
  Alcotest.(check (float 1e-9)) "same cost" s1.Bb.best_cost s2.Bb.best_cost;
  Alcotest.(check int) "same matchings" (List.length d1.Decomp.matchings)
    (List.length d2.Decomp.matchings)

let test_wider_search_not_worse () =
  let rng = Prng.create ~seed:15 in
  let g = G.planted ~rng ~n:10 ~parts:[ G.complete 4; G.loop 5; G.star 4 ] in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  let _, s1 = decompose acg in
  let options = { Bb.default_options with max_matches_per_step = 4 } in
  let _, s4 = decompose ~options acg in
  Alcotest.(check bool) "wider beam is never worse" true
    (s4.Bb.best_cost <= s1.Bb.best_cost +. 1e-9)

(* -------------------------------------------------------------------- *)
(* The AES reproduction (Fig. 6, Section 5.2)                            *)

let aes_acg () = Noc_aes.Distributed.acg ()

let test_aes_decomposition_matches_paper () =
  let acg = aes_acg () in
  let d, stats = decompose acg in
  (* the paper's printed result: COST: 28 *)
  Alcotest.(check (float 1e-9)) "COST: 28" 28.0 stats.Bb.best_cost;
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for acg d);
  (* 4 gossip columns + 2 loops, row 3 remains *)
  Alcotest.(check (list (pair string int))) "histogram" [ ("L4", 2); ("MGG4", 4) ]
    (Decomp.primitive_histogram d);
  Alcotest.(check int) "remainder edges (third row)" 4 (D.num_edges d.Decomp.remainder);
  (* the four MGG4s sit exactly on the state columns *)
  let mgg4_vertex_sets =
    List.filter_map
      (fun m ->
        if (Matching.primitive m).P.name = "MGG4" then
          Some
            (List.sort_uniq compare
               (List.concat_map (fun (u, v) -> [ u; v ]) m.Matching.covered))
        else None)
      d.Decomp.matchings
  in
  Alcotest.(check (list (list int)))
    "columns 1,5,9,13 / 2,6,10,14 / 3,7,11,15 / 4,8,12,16"
    [ [ 1; 5; 9; 13 ]; [ 2; 6; 10; 14 ]; [ 3; 7; 11; 15 ]; [ 4; 8; 12; 16 ] ]
    (List.sort compare mgg4_vertex_sets)

let test_aes_remainder_is_third_row () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let expected = D.Edge_set.of_list [ (9, 11); (11, 9); (10, 12); (12, 10) ] in
  Alcotest.(check bool) "row 3 two-cycles" true
    (D.Edge_set.equal expected (D.edge_set d.Decomp.remainder))

let test_aes_listing_format () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let s = Format.asprintf "%a" (Decomp.pp_with_cost edge_count acg) d in
  Alcotest.(check bool) "has COST header" true
    (String.length s >= 8 && String.sub s 0 8 = "COST: 28");
  Alcotest.(check bool) "first column mapping" true
    (contains s "Mapping: (1 1), (2 5), (3 9), (4 13)");
  Alcotest.(check bool) "remaining graph line" true (contains s "0: Remaining Graph:")

(* -------------------------------------------------------------------- *)
(* Energy-cost decomposition                                             *)

let energy_setup () =
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp = Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0) in
  (tech, fp)

let test_energy_decomposition_valid () =
  let tech, fp = energy_setup () in
  let acg = aes_acg () in
  let options = { (Bb.energy_options ~tech ~fp) with constraints = None } in
  let d, stats =
    decompose ~options ~budget:Bb.Budget.(default |> with_max_nodes 2_000) acg
  in
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for acg d);
  Alcotest.(check bool) "finite cost" true (Float.is_finite stats.Bb.best_cost);
  (* the chosen decomposition's energy beats the all-remainder solution
     or equals it (early remainder is allowed) *)
  let all_remainder =
    Cost.remainder_cost (Cost.Energy { tech; fp }) acg (Acg.graph acg)
  in
  Alcotest.(check bool) "no worse than dedicated links" true
    (stats.Bb.best_cost <= all_remainder +. 1e-6)

let test_energy_cost_respects_volume () =
  let tech, fp = energy_setup () in
  let cost = Cost.Energy { tech; fp } in
  let entry = Option.get (L.find_by_name (lib ()) "MGG4") in
  let m = find_matching entry (G.complete 4) in
  let light = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.complete 4) in
  let heavy = Acg.uniform ~volume:100 ~bandwidth:0.0 (G.complete 4) in
  let cl = Matching.cost cost light m and ch = Matching.cost cost heavy m in
  Alcotest.(check (float 1e-6)) "linear in volume" (100.0 *. cl) ch

(* -------------------------------------------------------------------- *)
(* Synthesis                                                             *)

let test_synthesis_custom_structure () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  (* 4 MGG4 (4 links) + 2 L4 (4 links) + remainder 4 directed edges = 2
     bidirectional links *)
  Alcotest.(check int) "26 links" 26 (Syn.link_count arch);
  Alcotest.(check bool) "routes valid" true (Syn.routes_valid arch);
  Alcotest.(check int) "max 2 hops (MGG4 diagonals)" 2 (Syn.max_hops arch);
  Alcotest.(check bool) "degree-matched routers" true
    (arch.Syn.uniform_router_ports = None)

let test_synthesis_mesh_structure () =
  let acg = aes_acg () in
  let arch = Syn.mesh ~rows:4 ~cols:4 acg in
  Alcotest.(check int) "24 links" 24 (Syn.link_count arch);
  Alcotest.(check bool) "routes valid" true (Syn.routes_valid arch);
  Alcotest.(check (option int)) "uniform 5-port routers" (Some 5)
    arch.Syn.uniform_router_ports;
  (* XY on a corner-to-corner flow: along row 0 first, then down column 3 *)
  let diag = Acg.uniform ~volume:1 ~bandwidth:0.0 (D.of_edges [ (1, 16) ]) in
  let arch2 = Syn.mesh ~rows:4 ~cols:4 diag in
  match Syn.route arch2 ~src:1 ~dst:16 with
  | Some path -> Alcotest.(check (list int)) "xy path" [ 1; 2; 3; 4; 8; 12; 16 ] path
  | None -> Alcotest.fail "mesh routes its acg flows"

let test_synthesis_mesh_rejects_outside () =
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (D.of_edges [ (1, 99) ]) in
  Alcotest.check_raises "outside grid"
    (Invalid_argument "Synthesis.mesh: core 99 outside 4x4 grid") (fun () ->
      ignore (Syn.mesh ~rows:4 ~cols:4 acg))

let test_next_hop () =
  let acg = aes_acg () in
  let arch = Syn.mesh ~rows:4 ~cols:4 acg in
  (* flow 1 -> 9 goes down column 0: 1, 5, 9 *)
  Alcotest.(check (option int)) "at source" (Some 5) (Syn.next_hop arch ~node:1 ~src:1 ~dst:9);
  Alcotest.(check (option int)) "midway" (Some 9) (Syn.next_hop arch ~node:5 ~src:1 ~dst:9);
  Alcotest.(check (option int)) "at sink" None (Syn.next_hop arch ~node:9 ~src:1 ~dst:9);
  Alcotest.(check (option int)) "not on route" None (Syn.next_hop arch ~node:2 ~src:1 ~dst:9)

let test_avg_hops_custom_beats_mesh () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  Alcotest.(check bool) "customized has fewer average hops" true
    (Syn.avg_hops acg custom < Syn.avg_hops acg mesh)

let test_total_energy_custom_beats_mesh () =
  let tech, fp = energy_setup () in
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let custom = Syn.custom acg d in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg in
  Alcotest.(check bool) "Eq. 5 energy lower on customized" true
    (Syn.total_energy ~tech ~fp acg custom < Syn.total_energy ~tech ~fp acg mesh)

let test_link_load () =
  let acg = Acg.of_weighted_edges [ (1, 2, 1, 0.5); (1, 3, 1, 0.25) ] in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  let load = Syn.link_load acg arch in
  (* all flows route somewhere; total load over links = sum of bandwidth x hops *)
  let total = D.Edge_map.fold (fun _ l acc -> acc +. l) load 0.0 in
  Alcotest.(check bool) "positive load" true (total >= 0.75 -. 1e-9)

(* -------------------------------------------------------------------- *)
(* Constraints                                                           *)

let test_constraints_unconstrained () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  let rng = Prng.create ~seed:1 in
  Alcotest.(check bool) "passes" true (Cons.satisfied ~rng Cons.unconstrained acg arch)

let test_constraints_link_overload () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  let rng = Prng.create ~seed:1 in
  let tight = { Cons.link_bandwidth = 1e-6; max_bisection_links = max_int } in
  let vs = Cons.check ~rng tight acg arch in
  Alcotest.(check bool) "overloads reported" true
    (List.exists (function Cons.Link_overload _ -> true | _ -> false) vs)

let test_constraints_bisection () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  let rng = Prng.create ~seed:1 in
  let tight = { Cons.link_bandwidth = infinity; max_bisection_links = 0 } in
  let vs = Cons.check ~rng tight acg arch in
  Alcotest.(check bool) "bisection reported" true
    (List.exists (function Cons.Bisection_exceeded _ -> true | _ -> false) vs)

let test_constraints_of_technology () =
  let c = Cons.of_technology Noc_energy.Technology.cmos_180nm in
  Alcotest.(check (float 1e-9)) "bw" 3.2 c.Cons.link_bandwidth;
  Alcotest.(check int) "bisection" 16 c.Cons.max_bisection_links

let test_infeasible_constraints_fallback () =
  let acg = aes_acg () in
  let rng = Prng.create ~seed:2 in
  let impossible = { Cons.link_bandwidth = infinity; max_bisection_links = 0 } in
  (* with no feasible incumbent nothing ever prunes, so bound the search *)
  let options = { Bb.default_options with constraints = Some impossible } in
  let d, stats =
    Bb.decompose ~options
      ~budget:Bb.Budget.(default |> with_max_nodes 300)
      ~rng ~library:(lib ()) acg
  in
  Alcotest.(check bool) "flagged unmet" false stats.Bb.constraints_met;
  Alcotest.(check bool) "fallback still valid" true (Decomp.is_valid_for acg d)

(* -------------------------------------------------------------------- *)
(* Deadlock                                                              *)

let test_mesh_xy_deadlock_free () =
  (* classic result: dimension-ordered routing on a mesh is deadlock-free *)
  let acg = aes_acg () in
  let arch = Syn.mesh ~rows:4 ~cols:4 acg in
  Alcotest.(check bool) "xy acyclic cdg" true (Dead.is_deadlock_free arch);
  Alcotest.(check int) "1 vc" 1 (Dead.analyze arch).Dead.vcs_needed

let test_custom_deadlock_report () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  let report = Dead.analyze arch in
  Alcotest.(check bool) "vcs positive" true (report.Dead.vcs_needed >= 1);
  (* schedule-derived primitive routes plus direct links: CDG is acyclic
     here (verified once, pinned as a regression) *)
  Alcotest.(check bool) "deadlock free" true (report.Dead.cdg_cycle = None)

let test_cdg_edges () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  let deps = Dead.channel_dependency_graph arch in
  (* only multi-hop routes (MGG4 diagonals) create dependencies *)
  Alcotest.(check bool) "some dependencies" true (List.length deps > 0);
  List.iter
    (fun ((_, b), (c, _)) ->
      Alcotest.(check int) "channels chain through a shared router" b c)
    deps

let test_vc_of_hop () =
  let acg = aes_acg () in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  (* find a two-hop flow *)
  let two_hop =
    D.Edge_map.fold
      (fun (s, t) path acc -> if List.length path = 3 then Some (s, t) else acc)
      arch.Syn.routes None
  in
  match two_hop with
  | None -> Alcotest.fail "aes custom arch has 2-hop routes"
  | Some (src, dst) ->
      Alcotest.(check (option int)) "hop 0 on vc0" (Some 0)
        (Dead.vc_of_hop arch ~src ~dst ~hop:0);
      Alcotest.(check bool) "hop 1 assigned" true
        (Dead.vc_of_hop arch ~src ~dst ~hop:1 <> None);
      Alcotest.(check (option int)) "hop out of range" None
        (Dead.vc_of_hop arch ~src ~dst ~hop:5)

(* -------------------------------------------------------------------- *)
(* Approximate matching in the decomposition                             *)

let test_approx_decomposition () =
  (* K4 with one edge knocked out: exact matching leaves 11 dedicated
     links; 1-tolerant matching still implements it as an MGG4 (4 links) *)
  let g = D.remove_edge (G.complete 4) 1 4 in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  let exact_d, exact_stats = decompose acg in
  Alcotest.(check (float 1e-9)) "exact cost = 11 dedicated links" 11.0
    exact_stats.Bb.best_cost;
  (* neutral primitives (broadcasts) may still structure the traffic, but
     no gossip graph matches exactly *)
  Alcotest.(check bool) "no exact MGG4" true
    (not (List.mem_assoc "MGG4" (Decomp.primitive_histogram exact_d)));
  let options = { Bb.default_options with approx_missing = 1 } in
  let d, stats = decompose ~options acg in
  Alcotest.(check (float 1e-9)) "approx cost = 4 links" 4.0 stats.Bb.best_cost;
  Alcotest.(check (list (pair string int))) "MGG4 used" [ ("MGG4", 1) ]
    (Decomp.primitive_histogram d);
  (* still a valid decomposition: only real edges are covered *)
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for acg d);
  (* and the synthesized architecture still routes every flow *)
  Alcotest.(check bool) "routes valid" true (Syn.routes_valid (Syn.custom acg d))

let test_approx_does_not_invent_flows () =
  let g = D.remove_edge (G.complete 4) 1 4 in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  let options = { Bb.default_options with approx_missing = 1 } in
  let d, _ = decompose ~options acg in
  let m = List.hd d.Decomp.matchings in
  Alcotest.(check int) "covers 11 real edges" 11 (List.length m.Matching.covered);
  List.iter
    (fun (u, v) -> Alcotest.(check bool) "acg edge" true (D.mem_edge g u v))
    m.Matching.covered

(* -------------------------------------------------------------------- *)
(* Co-design (floorplan relaxation)                                      *)

let test_link_volume_weights () =
  let acg = Acg.of_weighted_edges [ (1, 2, 10, 0.1); (2, 3, 5, 0.1) ] in
  let d, _ = decompose acg in
  let arch = Syn.custom acg d in
  let w = Noc_core.Co_design.link_volume_weights acg arch in
  (* remainder direct links: each flow loads exactly its own link *)
  Alcotest.(check (float 1e-9)) "flow 1->2" 10.0
    (Option.value ~default:0.0 (D.Edge_map.find_opt (1, 2) w));
  Alcotest.(check (float 1e-9)) "flow 2->3" 5.0
    (Option.value ~default:0.0 (D.Edge_map.find_opt (2, 3) w))

let test_co_design_improves_or_equals () =
  let acg = aes_acg () in
  let tech = Noc_energy.Technology.cmos_180nm in
  (* a scrambled initial placement: co-design must recover most of it *)
  let rng = Prng.create ~seed:9 in
  let ids = Array.init 16 (fun i -> i + 1) in
  Prng.shuffle rng ids;
  let fp =
    Noc_energy.Floorplan.grid
      (List.init 16 (fun i ->
           { Noc_energy.Floorplan.id = ids.(i); width_mm = 2.0; height_mm = 2.0 }))
  in
  let library = lib () in
  let r =
    Noc_core.Co_design.optimize ~rounds:3 ~anneal_iterations:1500 ~rng ~tech ~library ~fp
      acg
  in
  let first = List.hd r.Noc_core.Co_design.history in
  Alcotest.(check bool) "history non-empty" true
    (List.length r.Noc_core.Co_design.history >= 1);
  Alcotest.(check bool) "energy never worse than round 1" true
    (r.Noc_core.Co_design.energy_pj
    <= first.Noc_core.Co_design.energy_pj +. 1e-6);
  Alcotest.(check bool) "decomposition still valid" true
    (Decomp.is_valid_for acg r.Noc_core.Co_design.decomposition)

let test_co_design_deterministic () =
  let acg = aes_acg () in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  let library = lib () in
  let run seed =
    let rng = Prng.create ~seed in
    (Noc_core.Co_design.optimize ~rounds:2 ~anneal_iterations:500 ~rng ~tech ~library ~fp
       acg)
      .Noc_core.Co_design.energy_pj
  in
  Alcotest.(check (float 1e-9)) "same seed same result" (run 4) (run 4)

(* -------------------------------------------------------------------- *)
(* ACG serialization                                                     *)

module Io = Noc_core.Acg_io

let parse_exn s =
  match Io.parse s with
  | Ok acg -> acg
  | Error (`Msg m) -> Alcotest.failf "parse failed: %s" m

let test_acg_io_roundtrip () =
  let acg = Acg.of_weighted_edges [ (1, 2, 100, 0.5); (2, 3, 50, 0.25); (7, 1, 8, 1.5) ] in
  let acg' = parse_exn (Io.to_string acg) in
  Alcotest.(check int) "cores" (Acg.num_cores acg) (Acg.num_cores acg');
  Alcotest.(check int) "flows" (Acg.num_flows acg) (Acg.num_flows acg');
  Alcotest.(check int) "volume" 100 (Acg.volume acg' 1 2);
  Alcotest.(check (float 1e-9)) "bandwidth" 0.25 (Acg.bandwidth acg' 2 3)

let test_acg_io_isolated_vertices () =
  let g = D.add_vertex (D.of_edges [ (1, 2) ]) 9 in
  let acg = Acg.uniform ~volume:4 ~bandwidth:0.1 g in
  let acg' = parse_exn (Io.to_string acg) in
  Alcotest.(check int) "isolated vertex kept" 3 (Acg.num_cores acg');
  Alcotest.(check bool) "vertex 9" true (D.mem_vertex (Acg.graph acg') 9)

let test_acg_io_comments_and_blanks () =
  let acg = parse_exn "# a comment

1 2 64 0.5

# another
2 3 32 0.1
" in
  Alcotest.(check int) "two flows" 2 (Acg.num_flows acg)

let check_parse_error name expected input =
  match Io.parse input with
  | Ok _ -> Alcotest.failf "%s: parse unexpectedly succeeded" name
  | Error (`Msg m) -> Alcotest.(check string) name expected m

let test_acg_io_errors () =
  check_parse_error "garbage"
    "line 1, column 1: expected 'src dst volume bandwidth' or 'vertex <id>'"
    "what is this";
  check_parse_error "bad destination" "line 2, column 3: bad destination vertex 'x'"
    "1 2 64 0.5\n1 x 64 0.5";
  check_parse_error "bad bandwidth" "line 1, column 8: bad bandwidth 'fast'"
    "1 2 64 fast";
  check_parse_error "bad vertex" "line 1, column 8: bad vertex id 'abc'" "vertex abc";
  check_parse_error "bad volume" "line 1, column 5: bad volume '64.5'" "1 2 64.5 0.5";
  check_parse_error "bad source" "line 3, column 1: bad source vertex 'one'"
    "1 2 64 0.5\n# fine so far\none 2 64 0.5";
  check_parse_error "missing field"
    "line 1, column 1: expected 'src dst volume bandwidth' or 'vertex <id>'" "1 2 64";
  check_parse_error "extra field"
    "line 1, column 1: expected 'src dst volume bandwidth' or 'vertex <id>'"
    "1 2 64 0.5 extra";
  check_parse_error "bare vertex keyword"
    "line 1, column 1: expected 'src dst volume bandwidth' or 'vertex <id>'" "vertex";
  (* flows connect two distinct cores: a self-loop is a parse error with a
     position, not an Invalid_argument escaping from the graph layer *)
  check_parse_error "self-loop" "line 2, column 1: self-loop 3 -> 3 is not a flow"
    "1 2 64 0.5\n3 3 5 0.5";
  check_parse_error "duplicate edge" "line 3, column 1: duplicate edge 1 -> 2"
    "1 2 64 0.5\n2 3 32 0.1\n1 2 9 0.9"

let test_acg_io_load () =
  let acg = aes_acg () in
  let path = Filename.temp_file "acg_load" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file ~path acg;
      match Io.load path with
      | Ok acg' -> Alcotest.(check int) "flows" (Acg.num_flows acg) (Acg.num_flows acg')
      | Error (`Msg m) -> Alcotest.failf "load failed: %s" m);
  (match Io.load "/nonexistent/definitely-missing.acg" with
  | Ok _ -> Alcotest.fail "load of a missing file succeeded"
  | Error (`Msg _) -> ());
  let bad = Filename.temp_file "acg_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      let oc = open_out bad in
      output_string oc "1 2 64 0.5\noops\n";
      close_out oc;
      match Io.load bad with
      | Ok _ -> Alcotest.fail "load of malformed file succeeded"
      | Error (`Msg m) ->
          Alcotest.(check bool) "message carries the path" true
            (String.length m > String.length bad
            && String.sub m 0 (String.length bad) = bad);
          Alcotest.(check bool) "message carries line/column" true
            (let rec contains i =
               i + 6 <= String.length m && (String.sub m i 6 = "line 2" || contains (i + 1))
             in
             contains 0))

let test_acg_io_file_roundtrip () =
  let acg = aes_acg () in
  let path = Filename.temp_file "acg" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_file ~path acg;
      let acg' =
        match Io.load path with
        | Ok acg -> acg
        | Error (`Msg m) -> Alcotest.failf "load failed: %s" m
      in
      Alcotest.(check int) "flows" (Acg.num_flows acg) (Acg.num_flows acg');
      Alcotest.(check int) "volume preserved" (Acg.volume acg 1 5) (Acg.volume acg' 1 5))

(* -------------------------------------------------------------------- *)
(* Report                                                                *)

let test_report_contents () =
  let acg = aes_acg () in
  let d, stats = decompose acg in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:16 ~size_mm:2.0)
  in
  let r =
    Noc_core.Report.build ~tech ~fp
      ~constraints:(Noc_core.Constraints.of_technology tech)
      ~cost:Cost.Edge_count ~acg ~decomposition:d ~stats ()
  in
  Alcotest.(check int) "cores" 16 r.Noc_core.Report.acg_cores;
  Alcotest.(check int) "links" 26 r.Noc_core.Report.links;
  Alcotest.(check bool) "deadlock free" true r.Noc_core.Report.deadlock_free;
  Alcotest.(check bool) "energy present" true (r.Noc_core.Report.energy_pj <> None);
  let text = Noc_core.Report.to_string r in
  Alcotest.(check bool) "has listing" true (contains text "COST: 28");
  Alcotest.(check bool) "has primitives" true (contains text "MGG4");
  Alcotest.(check bool) "has search line" true (contains text "search:")

let test_report_without_optionals () =
  let acg = Acg.of_weighted_edges [ (1, 2, 1, 0.1) ] in
  let d, stats = decompose acg in
  let r = Noc_core.Report.build ~cost:Cost.Edge_count ~acg ~decomposition:d ~stats () in
  Alcotest.(check bool) "no energy" true (r.Noc_core.Report.energy_pj = None);
  Alcotest.(check (list string)) "no violations" [] r.Noc_core.Report.violations;
  Alcotest.(check bool) "renders" true (String.length (Noc_core.Report.to_string r) > 0)

(* -------------------------------------------------------------------- *)
(* Golden listing: the paper's Fig. 5 benchmark, reconstructed exactly   *)

let fig5_acg () =
  let gossip vs g =
    List.fold_left
      (fun g u ->
        List.fold_left (fun g v -> if u <> v then D.add_edge g u v else g) g vs)
      g vs
  in
  let star root leaves g = List.fold_left (fun g v -> D.add_edge g root v) g leaves in
  let g =
    D.empty
    |> gossip [ 1; 2; 5; 6 ]
    |> star 3 [ 2; 5; 6 ]
    |> star 7 [ 3; 5; 6 ]
    |> star 8 [ 1; 3; 6; 7 ]
    |> star 4 [ 5; 6; 7 ]
  in
  Acg.uniform ~volume:32 ~bandwidth:0.1 g

let test_fig5_golden_listing () =
  let acg = fig5_acg () in
  let d, _ = decompose acg in
  let listing = Format.asprintf "%a" (Decomp.pp_with_cost edge_count acg) d in
  let golden =
    "COST: 17\n\
     1: MGG4,\tMapping: (1 1), (2 2), (3 5), (4 6)\n\
    \  2: G124,\tMapping: (1 8), (2 1), (3 3), (4 6), (5 7)\n\
    \    3: G123,\tMapping: (1 3), (2 2), (3 5), (4 6)\n\
    \      3: G123,\tMapping: (1 4), (2 5), (3 6), (4 7)\n\
    \        3: G123,\tMapping: (1 7), (2 3), (3 5), (4 6)\n\
    \          0: Remaining Graph: (empty)\n"
  in
  Alcotest.(check string) "byte-identical listing" golden listing

(* -------------------------------------------------------------------- *)
(* Mapping (the third design-space dimension)                            *)

module Map_ = Noc_core.Mapping

let test_mapping_identity_apply () =
  let acg = aes_acg () in
  let m = Map_.identity acg in
  let acg' = Map_.apply m acg in
  Alcotest.(check int) "same flows" (Acg.num_flows acg) (Acg.num_flows acg');
  Alcotest.(check int) "same volume" (Acg.volume acg 1 5) (Acg.volume acg' 1 5)

let test_mapping_apply_relabels () =
  let acg = Acg.of_weighted_edges [ (1, 2, 10, 0.5) ] in
  let m = D.Vmap.of_seq (List.to_seq [ (1, 7); (2, 3) ]) in
  let acg' = Map_.apply m acg in
  Alcotest.(check int) "edge moved" 10 (Acg.volume acg' 7 3);
  Alcotest.(check int) "old edge gone" 0 (Acg.volume acg' 1 2);
  Alcotest.(check (float 1e-9)) "bandwidth follows" 0.5 (Acg.bandwidth acg' 7 3)

let test_mapping_optimize_improves () =
  (* two chatty cores initially placed at opposite mesh corners *)
  let acg = Acg.of_weighted_edges [ (1, 16, 1000, 1.0); (16, 1, 1000, 1.0) ] in
  let rng = Prng.create ~seed:3 in
  let m = Map_.optimize_mesh ~rng ~rows:4 ~cols:4 acg in
  let before = Map_.mesh_hop_cost ~rows:4 ~cols:4 acg (Map_.identity acg) in
  let after = Map_.mesh_hop_cost ~rows:4 ~cols:4 acg m in
  Alcotest.(check bool) "improved" true (after < before);
  (* optimum: adjacent tiles, one hop each way = 2000 *)
  Alcotest.(check (float 1e-9)) "optimal" 2000.0 after

let test_mapping_optimized_mesh_still_works () =
  (* remapping the AES cores and simulating on the mesh must still work *)
  let acg = aes_acg () in
  let rng = Prng.create ~seed:8 in
  let m = Map_.optimize_mesh ~rng ~iterations:2000 ~rows:4 ~cols:4 acg in
  let acg' = Map_.apply m acg in
  let mesh = Syn.mesh ~rows:4 ~cols:4 acg' in
  Alcotest.(check bool) "routes valid" true (Syn.routes_valid mesh);
  let before = Map_.mesh_hop_cost ~rows:4 ~cols:4 acg (Map_.identity acg) in
  let after = Map_.mesh_hop_cost ~rows:4 ~cols:4 acg m in
  Alcotest.(check bool) "no worse" true (after <= before)

let test_mapping_too_many_cores () =
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (G.complete 5) in
  Alcotest.check_raises "5 cores, 4 tiles"
    (Invalid_argument "Mapping.optimize_mesh: more cores than tiles") (fun () ->
      ignore (Map_.optimize_mesh ~rng:(Prng.create ~seed:1) ~rows:2 ~cols:2 acg))

(* -------------------------------------------------------------------- *)
(* Library design exploration (Section 3's open question)                *)

module Ld = Noc_core.Library_design

let test_library_evaluate () =
  let corpus = [ Acg.uniform ~volume:1 ~bandwidth:0.0 (G.complete 4) ] in
  let o_full = Ld.evaluate ~library:(lib ()) corpus in
  Alcotest.(check (float 1e-9)) "K4 costs 4" 4.0 o_full.Ld.total_cost;
  Alcotest.(check int) "no remainder" 0 o_full.Ld.total_remainder;
  let o_empty = Ld.evaluate ~library:(L.make []) corpus in
  Alcotest.(check (float 1e-9)) "empty library = dedicated links" 12.0
    o_empty.Ld.total_cost

let test_library_better () =
  let mk c r = { Ld.total_cost = c; total_remainder = r; elapsed_s = 0. } in
  Alcotest.(check bool) "lower cost wins" true (Ld.better (mk 4. 9) (mk 12. 0));
  Alcotest.(check bool) "tie broken by remainder" true (Ld.better (mk 4. 0) (mk 4. 3));
  Alcotest.(check bool) "worse both" false (Ld.better (mk 5. 3) (mk 4. 0))

let test_library_greedy_select () =
  (* a corpus with one gossip group and one broadcast: the selection must
     pick MGG4 (cost saver) first, then a star-structuring primitive *)
  let corpus =
    [
      Acg.uniform ~volume:1 ~bandwidth:0.0 (G.complete 4);
      Acg.uniform ~volume:1 ~bandwidth:0.0 (G.star 4);
    ]
  in
  let pool =
    [
      Noc_primitives.Primitive.gossip 4;
      Noc_primitives.Primitive.broadcast 4;
      Noc_primitives.Primitive.loop 5;
    ]
  in
  let selected, obj = Ld.greedy_select ~pool ~corpus () in
  let names = L.names selected in
  Alcotest.(check bool) "picks MGG4" true (List.mem "MGG4" names);
  Alcotest.(check bool) "picks G123" true (List.mem "G123" names);
  Alcotest.(check bool) "skips the useless loop" false (List.mem "L5" names);
  Alcotest.(check (float 1e-9)) "cost 4 + 3" 7.0 obj.Ld.total_cost;
  Alcotest.(check int) "fully structured" 0 obj.Ld.total_remainder;
  (* the first pick is the cost saver *)
  Alcotest.(check string) "gossip first" "MGG4" (List.hd names)

(* -------------------------------------------------------------------- *)
(* Remaining corners                                                     *)

let test_violation_printers () =
  let s1 =
    Format.asprintf "%a" Cons.pp_violation
      (Cons.Link_overload { link = (1, 2); demand = 5.0; capacity = 3.2 })
  in
  Alcotest.(check bool) "overload text" true (contains s1 "link 1-2 overloaded");
  let s2 =
    Format.asprintf "%a" Cons.pp_violation (Cons.Bisection_exceeded { links = 9; budget = 4 })
  in
  Alcotest.(check bool) "bisection text" true (contains s2 "bisection needs 9")

let test_energy_listing_format () =
  (* non-integer costs print with two decimals *)
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp =
    Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:4 ~size_mm:2.0)
  in
  let cost = Cost.Energy { tech; fp } in
  let acg = Acg.uniform ~volume:3 ~bandwidth:0.1 (G.complete 4) in
  let options = { Bb.default_options with cost; role_aware = true } in
  let d, _ = decompose ~options acg in
  let s = Format.asprintf "%a" (Decomp.pp_with_cost cost acg) d in
  Alcotest.(check bool) "has COST header" true (String.sub s 0 5 = "COST:");
  Alcotest.(check bool) "decimal cost" true (contains s ".")

let test_acg_pp () =
  let acg = Acg.of_weighted_edges [ (1, 2, 10, 0.5) ] in
  let s = Format.asprintf "%a" Acg.pp acg in
  Alcotest.(check bool) "mentions cores" true (contains s "2 cores");
  Alcotest.(check bool) "mentions flow" true (contains s "1 -> 2")

let test_non_canonical_order_same_cost () =
  let rng = Prng.create ~seed:55 in
  let g = G.planted ~rng ~n:9 ~parts:[ G.complete 4; G.loop 4 ] in
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
  let _, s1 = decompose acg in
  let options = { Bb.default_options with canonical_order = false } in
  let _, s2 = decompose ~options acg in
  Alcotest.(check (float 1e-9)) "same best cost" s1.Bb.best_cost s2.Bb.best_cost

(* -------------------------------------------------------------------- *)
(* Properties                                                            *)

(* Section 4.3: "the maximum number of hops between any two nodes in the
   customized architecture will be bounded by the largest diameter in the
   communication library" (plus direct remainder links, which are 1 hop). *)
let qcheck_hop_bound =
  QCheck.Test.make ~name:"max hops bounded by the library's largest diameter" ~count:25
    QCheck.(pair small_int (int_range 6 12))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 2500) in
      let g = G.erdos_renyi ~rng ~n ~p:0.3 in
      let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
      let d, _ = Bb.decompose ~library:(lib ()) acg in
      let arch = Syn.custom acg d in
      Syn.max_hops arch <= max 1 (Noc_primitives.Library.max_diameter (lib ())))

let qcheck_decomposition_always_valid =
  QCheck.Test.make ~name:"decomposition partitions the ACG edges" ~count:25
    QCheck.(pair small_int (int_range 6 12))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 500) in
      let g = G.erdos_renyi ~rng ~n ~p:0.25 in
      let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
      let d, _ = Bb.decompose ~library:(lib ()) acg in
      Decomp.is_valid_for acg d)

let qcheck_synthesis_routes_valid =
  QCheck.Test.make ~name:"synthesized routes always follow physical links" ~count:25
    QCheck.(pair small_int (int_range 6 12))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 900) in
      let g = G.erdos_renyi ~rng ~n ~p:0.25 in
      let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
      let d, _ = Bb.decompose ~library:(lib ()) acg in
      Syn.routes_valid (Syn.custom acg d))

let qcheck_cost_never_exceeds_all_remainder =
  QCheck.Test.make
    ~name:"optimal cost never exceeds the dedicated-link (all-remainder) cost" ~count:25
    QCheck.(pair small_int (int_range 5 10))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 1300) in
      let g = G.erdos_renyi ~rng ~n ~p:0.3 in
      let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 g in
      let _, stats = Bb.decompose ~library:(lib ()) acg in
      stats.Bb.best_cost <= float_of_int (D.num_edges g) +. 1e-9)

(* -------------------------------------------------------------------- *)
(* Parallel decomposition: domains > 1 must reproduce the sequential      *)
(* search bit for bit (deterministic constraint checks)                   *)

(* the bench's reconstruction of the paper's Fig. 2 input: K4 on {1..4},
   a 4-loop on {5..8}, 8 stray edges *)
let fig2_acg () =
  let g = G.complete 4 in
  let g =
    List.fold_left (fun g (u, v) -> D.add_edge g u v) g
      [ (5, 6); (6, 7); (7, 8); (8, 5) ]
  in
  let g =
    List.fold_left (fun g (u, v) -> D.add_edge g u v) g
      [ (1, 5); (5, 1); (2, 6); (6, 2); (3, 7); (7, 3); (4, 8); (8, 4) ]
  in
  Acg.uniform ~volume:16 ~bandwidth:0.1 g

let render_decomp acg d = Format.asprintf "%a" (Decomp.pp_with_cost edge_count acg) d

(* The determinism guarantee is scoped to completed searches: when the
   node budget is exhausted mid-run, which subtrees were visited before
   the shared counter ran out depends on worker scheduling, so the
   anytime incumbent of an exhausted parallel search may legally differ
   from the sequential one.  For those cases we only require a valid,
   feasibility-equivalent answer. *)
let check_parallel_equals_sequential ?options acg =
  let d1, s1 = Bb.decompose ?options ~library:(lib ()) acg in
  let d4, s4 =
    Bb.decompose ?options ~budget:Bb.Budget.(default |> with_domains 4) ~library:(lib ()) acg
  in
  if s1.Bb.timed_out || s4.Bb.timed_out then
    Decomp.is_valid_for acg d4
    && s1.Bb.constraints_met = s4.Bb.constraints_met
    && s4.Bb.best_cost < infinity
  else
    s1.Bb.best_cost = s4.Bb.best_cost
    && s1.Bb.constraints_met = s4.Bb.constraints_met
    && render_decomp acg d1 = render_decomp acg d4

let test_parallel_fig2 () =
  Alcotest.(check bool) "fig2: 4 domains = sequential" true
    (check_parallel_equals_sequential (fig2_acg ()));
  let d, stats =
    Bb.decompose ~budget:Bb.Budget.(default |> with_domains 4) ~library:(lib ()) (fig2_acg ())
  in
  Alcotest.(check (float 1e-9)) "fig2 cost is the paper's 16" 16.0 stats.Bb.best_cost;
  Alcotest.(check bool) "valid" true (Decomp.is_valid_for (fig2_acg ()) d)

let qcheck_parallel_equals_sequential =
  QCheck.Test.make ~name:"decompose with 4 domains = sequential on random ACGs"
    ~count:20
    QCheck.(pair small_int (int_range 6 14))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 3100) in
      let g = G.erdos_renyi ~rng ~n ~p:(3.0 /. float_of_int (n - 1)) in
      let acg = Acg.uniform ~volume:8 ~bandwidth:0.05 g in
      check_parallel_equals_sequential acg)

let qcheck_parallel_equals_sequential_beam =
  QCheck.Test.make
    ~name:"decompose with 4 domains = sequential (beam 2, literal branching)" ~count:8
    QCheck.(pair small_int (int_range 5 9))
    (fun (seed, n) ->
      let rng = Prng.create ~seed:(seed + 6400) in
      let g = G.erdos_renyi ~rng ~n ~p:0.35 in
      let acg = Acg.uniform ~volume:4 ~bandwidth:0.02 g in
      let options =
        { Bb.default_options with max_matches_per_step = 2; neutrals = Bb.Branch }
      in
      check_parallel_equals_sequential ~options acg)

let suite =
  ( "core",
    [
      Alcotest.test_case "acg basics" `Quick test_acg_basics;
      Alcotest.test_case "acg defaults" `Quick test_acg_defaults;
      Alcotest.test_case "acg rejects attrs on non-edges" `Quick test_acg_rejects_bad_keys;
      Alcotest.test_case "acg uniform and restrict" `Quick test_acg_uniform_and_restrict;
      Alcotest.test_case "acg from tgff" `Quick test_acg_of_tgff;
      Alcotest.test_case "library min link ratio" `Quick test_min_link_ratio;
      Alcotest.test_case "remainder cost (edge count)" `Quick test_remainder_cost_edge_count;
      Alcotest.test_case "lower bound admissible" `Quick test_lower_bound_admissible;
      Alcotest.test_case "matching covered edges and links" `Quick test_matching_covered_and_impl;
      Alcotest.test_case "matching routes" `Quick test_matching_routes;
      Alcotest.test_case "matching cost (edge count)" `Quick test_matching_cost_edge_count;
      Alcotest.test_case "matching paper output format" `Quick test_matching_pp_format;
      Alcotest.test_case "decompose K4" `Quick test_decompose_planted_k4;
      Alcotest.test_case "decompose star" `Quick test_decompose_star;
      Alcotest.test_case "decompose loop" `Quick test_decompose_loop;
      Alcotest.test_case "decompose unmatchable" `Quick test_decompose_unmatchable;
      Alcotest.test_case "decompose empty" `Quick test_decompose_empty;
      Alcotest.test_case "decompose disjoint planted" `Quick test_decompose_disjoint_planted;
      Alcotest.test_case "decompose timeout" `Quick test_decompose_timeout;
      Alcotest.test_case "decompose node budget" `Quick test_decompose_node_budget;
      Alcotest.test_case "decompose deterministic" `Quick test_decompose_deterministic;
      Alcotest.test_case "wider beam never worse" `Quick test_wider_search_not_worse;
      Alcotest.test_case "AES: COST 28, 4xMGG4 + 2xL4 (Fig. 6)" `Quick
        test_aes_decomposition_matches_paper;
      Alcotest.test_case "AES: remainder is the third row" `Quick
        test_aes_remainder_is_third_row;
      Alcotest.test_case "AES: listing format" `Quick test_aes_listing_format;
      Alcotest.test_case "energy decomposition valid" `Quick test_energy_decomposition_valid;
      Alcotest.test_case "energy cost linear in volume" `Quick test_energy_cost_respects_volume;
      Alcotest.test_case "synthesis: custom structure" `Quick test_synthesis_custom_structure;
      Alcotest.test_case "synthesis: mesh structure" `Quick test_synthesis_mesh_structure;
      Alcotest.test_case "synthesis: mesh bounds" `Quick test_synthesis_mesh_rejects_outside;
      Alcotest.test_case "routing table next hops" `Quick test_next_hop;
      Alcotest.test_case "custom beats mesh on hops" `Quick test_avg_hops_custom_beats_mesh;
      Alcotest.test_case "custom beats mesh on Eq.5 energy" `Quick
        test_total_energy_custom_beats_mesh;
      Alcotest.test_case "link load aggregation" `Quick test_link_load;
      Alcotest.test_case "constraints: unconstrained" `Quick test_constraints_unconstrained;
      Alcotest.test_case "constraints: link overload" `Quick test_constraints_link_overload;
      Alcotest.test_case "constraints: bisection" `Quick test_constraints_bisection;
      Alcotest.test_case "constraints from technology" `Quick test_constraints_of_technology;
      Alcotest.test_case "infeasible constraints fallback" `Quick
        test_infeasible_constraints_fallback;
      Alcotest.test_case "mesh XY is deadlock free" `Quick test_mesh_xy_deadlock_free;
      Alcotest.test_case "custom arch deadlock report" `Quick test_custom_deadlock_report;
      Alcotest.test_case "cdg edges chain" `Quick test_cdg_edges;
      Alcotest.test_case "vc assignment per hop" `Quick test_vc_of_hop;
      Alcotest.test_case "approx matching in decomposition" `Quick test_approx_decomposition;
      Alcotest.test_case "approx covers only real flows" `Quick
        test_approx_does_not_invent_flows;
      Alcotest.test_case "co-design link weights" `Quick test_link_volume_weights;
      Alcotest.test_case "co-design improves energy" `Quick test_co_design_improves_or_equals;
      Alcotest.test_case "co-design deterministic" `Quick test_co_design_deterministic;
      Alcotest.test_case "acg io roundtrip" `Quick test_acg_io_roundtrip;
      Alcotest.test_case "acg io isolated vertices" `Quick test_acg_io_isolated_vertices;
      Alcotest.test_case "acg io comments" `Quick test_acg_io_comments_and_blanks;
      Alcotest.test_case "acg io errors" `Quick test_acg_io_errors;
      Alcotest.test_case "acg io result-typed load" `Quick test_acg_io_load;
      Alcotest.test_case "acg io file roundtrip" `Quick test_acg_io_file_roundtrip;
      Alcotest.test_case "report contents" `Quick test_report_contents;
      Alcotest.test_case "report without optionals" `Quick test_report_without_optionals;
      Alcotest.test_case "Fig. 5 golden listing" `Quick test_fig5_golden_listing;
      Alcotest.test_case "library evaluate" `Quick test_library_evaluate;
      Alcotest.test_case "library objective order" `Quick test_library_better;
      Alcotest.test_case "library greedy selection" `Quick test_library_greedy_select;
      Alcotest.test_case "violation printers" `Quick test_violation_printers;
      Alcotest.test_case "energy listing format" `Quick test_energy_listing_format;
      Alcotest.test_case "acg pretty printer" `Quick test_acg_pp;
      Alcotest.test_case "non-canonical order same cost" `Quick
        test_non_canonical_order_same_cost;
      Alcotest.test_case "mapping identity" `Quick test_mapping_identity_apply;
      Alcotest.test_case "mapping relabels attributes" `Quick test_mapping_apply_relabels;
      Alcotest.test_case "mapping optimization improves" `Quick test_mapping_optimize_improves;
      Alcotest.test_case "optimized mapping still simulates" `Quick
        test_mapping_optimized_mesh_still_works;
      Alcotest.test_case "mapping rejects oversubscription" `Quick test_mapping_too_many_cores;
      QCheck_alcotest.to_alcotest qcheck_hop_bound;
      QCheck_alcotest.to_alcotest qcheck_decomposition_always_valid;
      QCheck_alcotest.to_alcotest qcheck_synthesis_routes_valid;
      QCheck_alcotest.to_alcotest qcheck_cost_never_exceeds_all_remainder;
      Alcotest.test_case "parallel decompose: Fig. 2" `Quick test_parallel_fig2;
      QCheck_alcotest.to_alcotest qcheck_parallel_equals_sequential;
      QCheck_alcotest.to_alcotest qcheck_parallel_equals_sequential_beam;
    ] )
