(* Tests for the multi-objective exploration driver: Pareto dominance and
   archive maintenance, hypervolume (three independent algorithms), the
   design-space axes, determinism of the sharded driver, the brute-force
   front oracle, and the Mapping permutation helpers the driver rides on
   (which had no dedicated suite before this one).

   The qcheck properties run the real decompose->synthesize pipeline, so
   the generated ACGs stay at 3-5 cores with the minimal library: a full
   property run is a few seconds, not minutes. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module L = Noc_primitives.Library
module Acg = Noc_core.Acg
module Mapping = Noc_core.Mapping
module Ws = Noc_core.Ws
module Prng = Noc_util.Prng
module Pareto = Noc_explore.Pareto
module E = Noc_explore.Explore
module F = Noc_oracle.Front
module Obs = Noc_obs.Obs

let mini () = L.minimal ()

(* random small ACG with varied volumes, so objective vectors actually
   spread out instead of collapsing onto a handful of ties *)
let gen_acg ~seed ~n =
  let rng = Prng.create ~seed in
  let g = G.erdos_renyi ~rng ~n ~p:0.6 in
  match D.edges g with
  | [] -> Acg.of_weighted_edges [ (1, 2, 8, 0.1) ]
  | edges ->
      Acg.of_weighted_edges
        (List.map
           (fun (u, v) ->
             (u, v, Prng.int_in rng 1 64, float_of_int (Prng.int_in rng 0 40) /. 100.0))
           edges)

(* random vectors on a coarse grid: ties and exact dominance both occur *)
let gen_vectors ~seed ~n =
  let rng = Prng.create ~seed in
  List.init n (fun _ ->
      {
        Pareto.energy_pj = float_of_int (Prng.int_in rng 0 12);
        latency = float_of_int (Prng.int_in rng 0 12);
        area_mm2 = float_of_int (Prng.int_in rng 0 12);
      })

let explore ~seed ?(domains = 1) ?(points = 16) acg =
  let axes = E.axes ~seed ~library:(mini ()) acg in
  (axes, E.run ~domains ~points ~seed axes acg)

(* -------------------------------------------------------------------- *)
(* Pareto machinery                                                      *)

let test_dominates_basics () =
  let v e l a = { Pareto.energy_pj = e; latency = l; area_mm2 = a } in
  Alcotest.(check bool) "strictly better dominates" true
    (Pareto.dominates (v 1. 1. 1.) (v 2. 2. 2.));
  Alcotest.(check bool) "better on one axis suffices" true
    (Pareto.dominates (v 1. 2. 2.) (v 2. 2. 2.));
  Alcotest.(check bool) "equal vectors do not dominate" false
    (Pareto.dominates (v 1. 1. 1.) (v 1. 1. 1.));
  Alcotest.(check bool) "trade-off does not dominate" false
    (Pareto.dominates (v 1. 3. 1.) (v 2. 2. 2.))

let test_reference_point_dominates_all () =
  let vs = gen_vectors ~seed:3 ~n:20 in
  let r = Pareto.reference_point vs in
  List.iter
    (fun v -> Alcotest.(check bool) "strictly inside the reference" true
        (v.Pareto.energy_pj < r.Pareto.energy_pj
        && v.Pareto.latency < r.Pareto.latency
        && v.Pareto.area_mm2 < r.Pareto.area_mm2))
    vs

let qcheck_archive_order_invariant =
  QCheck.Test.make ~name:"archive front is invariant under insertion order" ~count:200
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, n) ->
      let entries =
        List.mapi (fun id vec -> { Pareto.vec; id }) (gen_vectors ~seed ~n)
      in
      let shuffled =
        let arr = Array.of_list entries in
        Prng.shuffle (Prng.create ~seed:(seed + 1)) arr;
        Array.to_list arr
      in
      Pareto.entries (Pareto.of_entries entries)
      = Pareto.entries (Pareto.of_entries shuffled)
      && Pareto.entries (Pareto.of_entries entries) = Pareto.filter_reference entries)

let qcheck_hv_three_algorithms_agree =
  QCheck.Test.make
    ~name:"hypervolume: slab sweep = inclusion-exclusion = cell grid" ~count:200
    QCheck.(pair small_int (int_range 1 10))
    (fun (seed, n) ->
      let vs = gen_vectors ~seed ~n in
      let ref_point = Pareto.reference_point vs in
      let sweep = Pareto.hypervolume ~ref_point vs in
      let ie = F.hypervolume_ie ~ref_point vs in
      let grid = F.hypervolume_grid ~ref_point vs in
      let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a) in
      close sweep ie && close sweep grid)

let qcheck_hv_monotone =
  QCheck.Test.make
    ~name:"hypervolume is monotone non-decreasing under point arrival" ~count:200
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let vs = gen_vectors ~seed ~n in
      (* the reference is fixed up front, as the driver fixes it per run *)
      let ref_point = Pareto.reference_point vs in
      let hvs =
        List.mapi (fun i _ -> Pareto.hypervolume ~ref_point (List.filteri (fun j _ -> j <= i) vs)) vs
      in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) ->
            (* float slack: each prefix re-sums different slab partitions *)
            b >= a -. (1e-9 *. Float.max 1.0 (Float.abs a)) && non_decreasing rest
        | _ -> true
      in
      non_decreasing hvs)

(* -------------------------------------------------------------------- *)
(* The driver: dominance and determinism properties                      *)

let qcheck_front_nondominated =
  QCheck.Test.make ~name:"no front point dominates another" ~count:200
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let _, r = explore ~seed:(seed + 100) (gen_acg ~seed:(seed + 100) ~n) in
      List.for_all
        (fun (p : E.point) ->
          List.for_all
            (fun (q : E.point) -> not (Pareto.dominates p.E.vec q.E.vec) || p == q)
            r.E.front)
        r.E.front)

let qcheck_evaluated_on_or_dominated =
  QCheck.Test.make
    ~name:"every evaluated point is on the front or dominated by it" ~count:200
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let _, r = explore ~seed:(seed + 200) (gen_acg ~seed:(seed + 200) ~n) in
      Array.for_all
        (fun (p : E.point) ->
          List.exists (fun (q : E.point) -> q.E.index = p.E.index) r.E.front
          || List.exists
               (fun (q : E.point) ->
                 Pareto.dominates q.E.vec p.E.vec || q.E.vec = p.E.vec)
               r.E.front)
        r.E.evaluated)

let qcheck_front_order_invariant =
  QCheck.Test.make
    ~name:"front is invariant under point-evaluation order" ~count:200
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let _, r = explore ~seed:(seed + 300) (gen_acg ~seed:(seed + 300) ~n) in
      let entries =
        Array.to_list (Array.map (fun (p : E.point) -> { Pareto.vec = p.E.vec; id = p.E.index }) r.E.evaluated)
      in
      let reversed = List.rev entries in
      let shuffled =
        let arr = Array.of_list entries in
        Prng.shuffle (Prng.create ~seed) arr;
        Array.to_list arr
      in
      let front es = Pareto.entries (Pareto.of_entries es) in
      front entries = front reversed && front entries = front shuffled)

let qcheck_front_domains_invariant =
  QCheck.Test.make ~name:"front is identical under 1 and 4 domains" ~count:200
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let acg = gen_acg ~seed:(seed + 400) ~n in
      let _, r1 = explore ~seed:(seed + 400) ~domains:1 acg in
      let _, r4 = explore ~seed:(seed + 400) ~domains:4 acg in
      let indices (r : E.result) = List.map (fun (p : E.point) -> p.E.index) r.E.front in
      indices r1 = indices r4
      && r1.E.hypervolume = r4.E.hypervolume
      && Array.length r1.E.evaluated = Array.length r4.E.evaluated)

(* -------------------------------------------------------------------- *)
(* The exhaustive oracle                                                 *)

let qcheck_oracle_front_equality =
  QCheck.Test.make
    ~name:"full enumeration recovers the oracle front exactly" ~count:40
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let acg = gen_acg ~seed:(seed + 500) ~n in
      let library = mini () in
      let o = F.compute ~library acg in
      let axes = E.axes ~max_mappings:720 ~seed:0 ~library acg in
      let r = E.run ~points:0 ~seed:0 axes acg in
      let key (p : E.point) = (p.E.index, p.E.vec) in
      let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a) in
      List.map key r.E.front = List.map key o.F.front
      && close r.E.hypervolume o.F.hypervolume
      && r.E.space = List.length o.F.points)

let qcheck_oracle_sampled_subset =
  QCheck.Test.make
    ~name:"sampling restricts the oracle front, never invents energy/latency/area wins"
    ~count:40
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let acg = gen_acg ~seed:(seed + 600) ~n in
      let library = mini () in
      let o = F.compute ~library acg in
      let axes = E.axes ~max_mappings:720 ~seed:0 ~library acg in
      let r = E.run ~points:20 ~seed:(seed + 600) axes acg in
      let sampled =
        Array.to_list (Array.map (fun (p : E.point) -> p.E.index) r.E.evaluated)
      in
      let in_sampled_front i =
        List.exists (fun (p : E.point) -> p.E.index = i) r.E.front
      in
      (* every oracle-front point the sample evaluated survives sampling *)
      List.for_all
        (fun (p : E.point) ->
          (not (List.mem p.E.index sampled)) || in_sampled_front p.E.index)
        o.F.front)

let test_oracle_six_core_unit () =
  (* the largest admissible oracle input: every one of the 6! x subsets x
     scales = 4320 design points evaluated on both sides *)
  let acg =
    Acg.of_weighted_edges
      [
        (1, 2, 64, 0.2); (2, 3, 32, 0.1); (3, 4, 64, 0.2);
        (4, 5, 16, 0.05); (5, 6, 48, 0.15); (6, 1, 32, 0.1); (1, 4, 8, 0.02);
      ]
  in
  let library = mini () in
  let o = F.compute ~library acg in
  let axes = E.axes ~max_mappings:720 ~seed:0 ~library acg in
  let r = E.run ~points:0 ~domains:4 ~seed:0 axes acg in
  Alcotest.(check int) "whole space evaluated" 4320 (Array.length r.E.evaluated);
  Alcotest.(check bool) "fronts identical" true
    (List.map (fun (p : E.point) -> p.E.index) r.E.front
    = List.map (fun (p : E.point) -> p.E.index) o.F.front);
  Alcotest.(check (float 1e-6)) "hypervolume identical" o.F.hypervolume r.E.hypervolume

let chain_acg n =
  Acg.of_weighted_edges (List.init (n - 1) (fun i -> (i + 1, i + 2, 8, 0.1)))

let test_oracle_guard () =
  let acg = chain_acg 7 in
  Alcotest.check_raises "7 cores rejected"
    (Invalid_argument "Front.compute: 7 cores exceed the 6-core exhaustive guard")
    (fun () -> ignore (F.compute ~library:(mini ()) acg))

(* -------------------------------------------------------------------- *)
(* Axes, evaluation and exporters                                        *)

let test_axes_shape () =
  let acg = gen_acg ~seed:11 ~n:4 in
  let axes = E.axes ~seed:11 ~library:(L.default ()) acg in
  (* 4 cores -> all 24 permutations; the default library has one saver
     (MGG4: 4 links for 12 covered edges), so two subsets *)
  Alcotest.(check int) "all permutations" 24 (Array.length axes.E.mappings);
  Alcotest.(check bool) "identity first" true
    (axes.E.mappings.(0) = Mapping.identity acg);
  Alcotest.(check (list string)) "subset labels" [ "full"; "neutral" ]
    (Array.to_list (Array.map fst axes.E.subsets));
  Alcotest.(check int) "space size" (24 * 2 * 3) (E.space_size axes)

let test_axes_sampled_mappings () =
  let acg = gen_acg ~seed:12 ~n:8 in
  let axes = E.axes ~seed:12 ~library:(mini ()) acg in
  (* 8! is past the default cap: identity + 23 distinct random draws *)
  Alcotest.(check int) "capped mapping axis" 24 (Array.length axes.E.mappings);
  Alcotest.(check bool) "identity first" true (axes.E.mappings.(0) = Mapping.identity acg);
  let images =
    Array.to_list
      (Array.map (fun m -> List.map snd (D.Vmap.bindings m)) axes.E.mappings)
  in
  Alcotest.(check int) "mappings are distinct" 24
    (List.length (List.sort_uniq compare images))

let test_evaluate_out_of_range () =
  let acg = gen_acg ~seed:13 ~n:3 in
  let axes = E.axes ~seed:13 ~library:(mini ()) acg in
  let space = E.space_size axes in
  Alcotest.check_raises "index out of range"
    (Invalid_argument
       (Printf.sprintf "Explore.evaluate: index %d outside space of %d points" space space))
    (fun () -> ignore (E.evaluate axes acg space))

let test_bw_scale_tradeoff () =
  (* same mapping and subset, wider links: latency never worse, area
     strictly larger - the provisioning axis is a genuine trade-off *)
  let acg = gen_acg ~seed:14 ~n:4 in
  let axes = E.axes ~seed:14 ~library:(mini ()) acg in
  let p_low = E.evaluate axes acg 0 and p_high = E.evaluate axes acg 2 in
  Alcotest.(check bool) "scales decoded in order" true
    (p_low.E.bw_scale < p_high.E.bw_scale);
  Alcotest.(check bool) "wider links never slower" true
    (p_high.E.vec.Pareto.latency <= p_low.E.vec.Pareto.latency);
  Alcotest.(check bool) "wider links cost area" true
    (p_high.E.vec.Pareto.area_mm2 > p_low.E.vec.Pareto.area_mm2);
  Alcotest.(check (float 1e-9)) "energy is scale-independent"
    p_low.E.vec.Pareto.energy_pj p_high.E.vec.Pareto.energy_pj

let test_exporters () =
  let acg = gen_acg ~seed:15 ~n:4 in
  let axes, r = explore ~seed:15 acg in
  let json = E.to_json ~name:"t" axes r in
  (match Obs.Json.parse (Obs.Json.to_string json) with
  | Error (`Msg m) -> Alcotest.fail ("emitted JSON does not parse: " ^ m)
  | Ok round ->
      Alcotest.(check bool) "front_size serialized" true
        (Obs.Json.member "front_size" round = Some (Obs.Json.Int (List.length r.E.front))));
  let rows = E.to_csv_rows ~name:"t" axes r in
  Alcotest.(check int) "one CSV row per front point" (List.length r.E.front)
    (List.length rows);
  let cols s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun row ->
      Alcotest.(check int) "row arity matches the header" (cols E.csv_header) (cols row))
    rows

let test_observer_metrics () =
  let acg = gen_acg ~seed:16 ~n:4 in
  let axes = E.axes ~seed:16 ~library:(mini ()) acg in
  let observe = Obs.create () in
  let r = E.run ~observe ~points:8 ~seed:16 axes acg in
  let metrics = Obs.metrics observe in
  Alcotest.(check (option (float 1e-9))) "points counter"
    (Some (float_of_int (Array.length r.E.evaluated)))
    (Option.bind (List.assoc_opt "explore.points" metrics) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "front gauge"
    (Some (float_of_int (List.length r.E.front)))
    (Option.bind (List.assoc_opt "explore.front_size" metrics) Obs.Json.to_float);
  Alcotest.(check (option (float 1e-9))) "hv gauge" (Some r.E.hypervolume)
    (Option.bind (List.assoc_opt "explore.hv" metrics) Obs.Json.to_float)

(* -------------------------------------------------------------------- *)
(* Ws.map: the shared deterministic parallel map                         *)

let test_ws_map_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f i = (i * 7) mod 31 in
  let seq, s1 = Ws.map ~domains:1 f input in
  let par, s4 = Ws.map ~domains:4 f input in
  Alcotest.(check bool) "identical results in index order" true (seq = par);
  Alcotest.(check bool) "identical to Array.map" true (par = Array.map f input);
  Alcotest.(check int) "sequential runs one worker" 1 s1.Ws.workers;
  Alcotest.(check int) "parallel runs four workers" 4 s4.Ws.workers

let test_ws_map_propagates_exceptions () =
  Alcotest.check_raises "worker exception reaches the caller" Exit (fun () ->
      ignore (Ws.map ~domains:4 (fun i -> if i = 17 then raise Exit else i) (Array.init 32 Fun.id)))

(* -------------------------------------------------------------------- *)
(* Mapping helpers (backfill: Mapping had no dedicated tests)            *)

let qcheck_apply_preserves_volume =
  QCheck.Test.make
    ~name:"Mapping.apply preserves total volume and flow count" ~count:200
    QCheck.(pair small_int (int_range 3 6))
    (fun (seed, n) ->
      let acg = gen_acg ~seed:(seed + 700) ~n in
      let m = Mapping.random ~rng:(Prng.create ~seed) acg in
      let acg' = Mapping.apply m acg in
      Acg.total_volume acg' = Acg.total_volume acg
      && Acg.num_flows acg' = Acg.num_flows acg
      && Acg.num_cores acg' = Acg.num_cores acg)

let qcheck_identity_cost_is_direct_hop_sum =
  QCheck.Test.make
    ~name:"identity mapping's mesh cost equals the direct hop sum" ~count:200
    QCheck.(pair small_int (int_range 3 6))
    (fun (seed, n) ->
      let acg = gen_acg ~seed:(seed + 800) ~n in
      let cols = 3 in
      let manhattan a b =
        let ra = (a - 1) / cols and ca = (a - 1) mod cols in
        let rb = (b - 1) / cols and cb = (b - 1) mod cols in
        abs (ra - rb) + abs (ca - cb)
      in
      let direct =
        D.fold_edges
          (fun u v acc -> acc +. float_of_int (Acg.volume acg u v * manhattan u v))
          (Acg.graph acg) 0.0
      in
      Mapping.mesh_hop_cost ~rows:3 ~cols acg (Mapping.identity acg) = direct)

let qcheck_apply_roundtrip =
  QCheck.Test.make
    ~name:"Mapping.apply round-trips through the inverse permutation" ~count:200
    QCheck.(pair small_int (int_range 3 6))
    (fun (seed, n) ->
      let acg = gen_acg ~seed:(seed + 900) ~n in
      let m = Mapping.random ~rng:(Prng.create ~seed:(seed + 900)) acg in
      let inverse = D.Vmap.fold (fun k v acc -> D.Vmap.add v k acc) m D.Vmap.empty in
      let back = Mapping.apply inverse (Mapping.apply m acg) in
      let edge_attrs a =
        List.map (fun (u, v) -> (u, v, Acg.volume a u v, Acg.bandwidth a u v))
          (D.edges (Acg.graph a))
      in
      List.sort compare (D.vertex_list (Acg.graph back))
      = List.sort compare (D.vertex_list (Acg.graph acg))
      && edge_attrs back = edge_attrs acg)

let test_mapping_all_lexicographic () =
  let acg = Acg.of_weighted_edges [ (1, 2, 1, 0.0); (2, 3, 1, 0.0) ] in
  let images = List.map (fun m -> List.map snd (D.Vmap.bindings m)) (Mapping.all acg) in
  Alcotest.(check (list (list int))) "3! permutations in lexicographic order"
    [ [1;2;3]; [1;3;2]; [2;1;3]; [2;3;1]; [3;1;2]; [3;2;1] ]
    images

let test_mapping_all_guard () =
  let acg = chain_acg 8 in
  Alcotest.check_raises "8 cores exceed the default guard"
    (Invalid_argument "Mapping.all: 8 cores exceed the 7-core enumeration guard")
    (fun () -> ignore (Mapping.all acg))

let test_mesh_hop_cost_unmapped_raises () =
  (* the historical behaviour was a bare Not_found escaping from Vmap *)
  let acg = Acg.of_weighted_edges [ (1, 2, 4, 0.0) ] in
  Alcotest.check_raises "unmapped core is an Invalid_argument"
    (Invalid_argument "Mapping.mesh_hop_cost: core 2 not mapped")
    (fun () ->
      ignore (Mapping.mesh_hop_cost ~rows:2 ~cols:2 acg (D.Vmap.singleton 1 1)))

let suite =
  ( "explore",
    [
      Alcotest.test_case "dominance basics" `Quick test_dominates_basics;
      Alcotest.test_case "reference point strictly dominates all vectors" `Quick
        test_reference_point_dominates_all;
      QCheck_alcotest.to_alcotest qcheck_archive_order_invariant;
      QCheck_alcotest.to_alcotest qcheck_hv_three_algorithms_agree;
      QCheck_alcotest.to_alcotest qcheck_hv_monotone;
      QCheck_alcotest.to_alcotest qcheck_front_nondominated;
      QCheck_alcotest.to_alcotest qcheck_evaluated_on_or_dominated;
      QCheck_alcotest.to_alcotest qcheck_front_order_invariant;
      QCheck_alcotest.to_alcotest qcheck_front_domains_invariant;
      QCheck_alcotest.to_alcotest qcheck_oracle_front_equality;
      QCheck_alcotest.to_alcotest qcheck_oracle_sampled_subset;
      Alcotest.test_case "6-core exhaustive oracle equality" `Quick
        test_oracle_six_core_unit;
      Alcotest.test_case "oracle rejects 7 cores" `Quick test_oracle_guard;
      Alcotest.test_case "axes shape on an enumerable scenario" `Quick test_axes_shape;
      Alcotest.test_case "axes sample distinct mappings past the cap" `Quick
        test_axes_sampled_mappings;
      Alcotest.test_case "evaluate rejects out-of-range indices" `Quick
        test_evaluate_out_of_range;
      Alcotest.test_case "bandwidth provisioning is a real trade-off" `Quick
        test_bw_scale_tradeoff;
      Alcotest.test_case "JSON and CSV exporters" `Quick test_exporters;
      Alcotest.test_case "observer counters and gauges" `Quick test_observer_metrics;
      Alcotest.test_case "Ws.map equals the sequential map" `Quick
        test_ws_map_matches_sequential;
      Alcotest.test_case "Ws.map propagates worker exceptions" `Quick
        test_ws_map_propagates_exceptions;
      QCheck_alcotest.to_alcotest qcheck_apply_preserves_volume;
      QCheck_alcotest.to_alcotest qcheck_identity_cost_is_direct_hop_sum;
      QCheck_alcotest.to_alcotest qcheck_apply_roundtrip;
      Alcotest.test_case "Mapping.all is lexicographic, identity first" `Quick
        test_mapping_all_lexicographic;
      Alcotest.test_case "Mapping.all guards large cores" `Quick test_mapping_all_guard;
      Alcotest.test_case "mesh_hop_cost reports unmapped cores" `Quick
        test_mesh_hop_cost_unmapped_raises;
    ] )
