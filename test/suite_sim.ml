(* Tests for the cycle-accurate NoC simulator: delivery semantics, latency
   arithmetic, contention serialization, determinism, activity counters and
   the power/energy accounting. *)

module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Acg = Noc_core.Acg
module Syn = Noc_core.Synthesis
module Net = Noc_sim.Network
module Stats = Noc_sim.Stats
module Traffic = Noc_sim.Traffic
module Prng = Noc_util.Prng

(* A 1x4 mesh (a path) carrying flows along it: easy to reason about. *)
let line_arch () =
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (D.of_edges [ (1, 2); (1, 4); (2, 3) ]) in
  (acg, Syn.mesh ~rows:1 ~cols:4 acg)

let test_single_packet_latency () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  (* router_delay=1, link_delay=1, 1 flit: src router (1 cycle) + 1 link
     (1 cycle) + dst router (1 cycle) = delivered at cycle 3 *)
  let _ = Net.inject net ~src:1 ~dst:2 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  match Net.deliveries net with
  | [ { Net.delivered_at; packet } ] ->
      Alcotest.(check int) "one hop latency" 3 delivered_at;
      Alcotest.(check int) "injected at 0" 0 packet.Noc_sim.Packet.injected_at
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 delivery, got %d" (List.length ds))

let test_multi_hop_latency () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  (* 3 hops: per hop link(1) + router(1), plus source router 1 -> 7 cycles *)
  let _ = Net.inject net ~src:1 ~dst:4 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  match Net.deliveries net with
  | [ { Net.delivered_at; _ } ] -> Alcotest.(check int) "three hops" 7 delivered_at
  | _ -> Alcotest.fail "one delivery expected"

let test_serialization_delay () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  (* 4 flits over one hop: tail arrives link_delay + flits - 1 after grant *)
  let _ = Net.inject ~size_flits:4 net ~src:1 ~dst:2 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  match Net.deliveries net with
  | [ { Net.delivered_at; _ } ] -> Alcotest.(check int) "serialized" 6 delivered_at
  | _ -> Alcotest.fail "one delivery expected"

let test_contention_serializes () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  (* two packets from 1 to 2 compete for channel (1,2): second is delayed
     by the first's serialization *)
  let _ = Net.inject net ~src:1 ~dst:2 in
  let _ = Net.inject net ~src:1 ~dst:2 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  let ds = Net.deliveries net in
  Alcotest.(check int) "both delivered" 2 (List.length ds);
  let times = List.map (fun d -> d.Net.delivered_at) ds |> List.sort compare in
  Alcotest.(check (list int)) "one cycle apart" [ 3; 4 ] times

let test_fifo_order_on_channel () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let id1 = Net.inject net ~src:1 ~dst:2 in
  let id2 = Net.inject net ~src:1 ~dst:2 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  (match Net.deliveries net with
  | [ a; b ] ->
      Alcotest.(check int) "first injected first delivered" id1
        a.Net.packet.Noc_sim.Packet.id;
      Alcotest.(check int) "second" id2 b.Net.packet.Noc_sim.Packet.id
  | _ -> Alcotest.fail "two deliveries expected")

let test_inject_no_route () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  Alcotest.check_raises "no route" (Invalid_argument "Network.inject: no route 4->1")
    (fun () -> ignore (Net.inject net ~src:4 ~dst:1))

let test_bad_config () =
  let _, arch = line_arch () in
  Alcotest.check_raises "bad delays" (Invalid_argument "Network.create: delays must be >= 1")
    (fun () ->
      ignore (Net.create ~config:{ Net.router_delay = 0; link_delay = 1; flit_bits = 8 } arch))

let test_drain_deliveries () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let _ = Net.inject net ~src:1 ~dst:2 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  Alcotest.(check int) "first drain" 1 (List.length (Net.drain_deliveries net));
  Alcotest.(check int) "second drain empty" 0 (List.length (Net.drain_deliveries net));
  (* cumulative list unaffected *)
  Alcotest.(check int) "deliveries kept" 1 (List.length (Net.deliveries net))

let test_activity_counters () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let _ = Net.inject net ~src:1 ~dst:4 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  Alcotest.(check int) "3 link traversals" 3 (Net.flit_hops net);
  let total_switch =
    D.Vmap.fold (fun _ f acc -> acc + f) (Net.switch_flits net) 0
  in
  Alcotest.(check int) "4 router visits" 4 total_switch;
  let l12 = Option.value ~default:0 (D.Edge_map.find_opt (1, 2) (Net.link_flits net)) in
  Alcotest.(check int) "link 1-2 carried 1 flit" 1 l12

let test_payload_carried () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let payload = Bytes.of_string "x" in
  let _ = Net.inject ~payload ~tag:42 net ~src:1 ~dst:4 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  match Net.deliveries net with
  | [ { Net.packet; _ } ] ->
      Alcotest.(check string) "payload" "x" (Bytes.to_string packet.Noc_sim.Packet.payload);
      Alcotest.(check int) "tag" 42 packet.Noc_sim.Packet.tag
  | _ -> Alcotest.fail "one delivery expected"

let test_determinism () =
  let acg = Noc_aes.Distributed.acg () in
  let arch = Syn.mesh ~rows:4 ~cols:4 acg in
  let run () =
    let net = Net.create arch in
    let rng = Prng.create ~seed:3 in
    let flows = Traffic.flows_of_acg ~rate_scale:0.05 acg in
    let ds = Traffic.run ~rng ~net ~flows ~cycles:500 () in
    (List.length ds, (Stats.summarize ds).Stats.avg_latency)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_summary_empty () =
  let s = Stats.summarize [] in
  Alcotest.(check int) "no packets" 0 s.Stats.packets;
  Alcotest.(check (float 1e-9)) "zero latency" 0.0 s.Stats.avg_latency

let test_summary_fields () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  let _ = Net.inject net ~src:1 ~dst:2 in
  let _ = Net.inject net ~src:1 ~dst:4 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  let s = Stats.summarize (Net.deliveries net) in
  Alcotest.(check int) "packets" 2 s.Stats.packets;
  Alcotest.(check int) "min" 3 s.Stats.min_latency;
  (* both flows contend for channel (1,2); the 3-hop packet loses one
     arbitration round: 7 + 1 *)
  Alcotest.(check int) "max" 8 s.Stats.max_latency;
  Alcotest.(check (float 1e-9)) "avg" 5.5 s.Stats.avg_latency;
  Alcotest.(check (float 1e-9)) "avg hops" 2.0 s.Stats.avg_hops

let test_energy_accounting () =
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp = Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:4 ~size_mm:2.0) in
  let acg = Acg.uniform ~volume:8 ~bandwidth:0.1 (D.of_edges [ (1, 2) ]) in
  let arch = Syn.mesh ~rows:2 ~cols:2 acg in
  let net = Net.create arch in
  let _ = Net.inject net ~src:1 ~dst:2 in
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  (* one flit of 8 bits: 2 switch visits + one 2mm link *)
  let expect_dyn =
    (2.0 *. 8.0 *. tech.Noc_energy.Technology.es_bit)
    +. (8.0 *. Noc_energy.Technology.link_energy_per_bit tech ~length_mm:2.0)
  in
  Alcotest.(check (float 1e-6)) "dynamic energy" expect_dyn
    (Stats.dynamic_energy_pj ~tech ~fp net);
  Alcotest.(check bool) "clock energy positive" true (Stats.clock_energy_pj ~tech net > 0.);
  Alcotest.(check bool) "total >= dynamic" true
    (Stats.total_energy_pj ~tech ~fp net >= Stats.dynamic_energy_pj ~tech ~fp net);
  Alcotest.(check bool) "power positive" true (Stats.avg_power_mw ~tech ~fp net > 0.)

let test_buffer_occupancy_counted () =
  let _, arch = line_arch () in
  let net = Net.create arch in
  (* heavy contention on channel (1,2) *)
  for _ = 1 to 10 do
    ignore (Net.inject ~size_flits:4 net ~src:1 ~dst:2)
  done;
  (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang");
  Alcotest.(check bool) "queue occupancy recorded" true (Net.buffer_flit_cycles net > 0)

let test_traffic_uniform_when_no_bandwidth () =
  (* zero-bandwidth ACGs fall back to uniform rates *)
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.0 (D.of_edges [ (1, 2); (2, 3) ]) in
  let flows = Traffic.flows_of_acg ~rate_scale:0.07 acg in
  List.iter
    (fun f -> Alcotest.(check (float 1e-9)) "uniform rate" 0.07 f.Traffic.rate)
    flows

let test_wormhole_empty_summary () =
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (D.of_edges [ (1, 2) ]) in
  let arch = Syn.mesh ~rows:1 ~cols:2 acg in
  let net = Noc_sim.Wormhole.create arch in
  let s = Noc_sim.Wormhole.summary net in
  Alcotest.(check int) "no packets" 0 s.Stats.packets;
  Alcotest.(check bool) "idle immediately" true
    (Noc_sim.Wormhole.run_until_idle net = `Idle)

let test_traffic_rates () =
  let acg = Noc_aes.Distributed.acg () in
  let flows = Traffic.flows_of_acg ~rate_scale:0.1 acg in
  Alcotest.(check int) "one flow per edge" (Acg.num_flows acg) (List.length flows);
  List.iter
    (fun f -> Alcotest.(check bool) "rate bounded" true (f.Traffic.rate <= 0.1 +. 1e-9))
    flows;
  Alcotest.(check bool) "offered load positive" true (Traffic.offered_load flows > 0.)

let test_traffic_run_delivers () =
  let acg = Noc_aes.Distributed.acg () in
  let arch = Syn.mesh ~rows:4 ~cols:4 acg in
  let net = Net.create arch in
  let rng = Prng.create ~seed:7 in
  let flows = Traffic.flows_of_acg ~rate_scale:0.02 acg in
  let ds = Traffic.run ~rng ~net ~flows ~cycles:1000 () in
  Alcotest.(check bool) "packets delivered" true (List.length ds > 0);
  Alcotest.(check int) "none stuck" 0 (Net.pending net)

(* -------------------------------------------------------------------- *)
(* Routing policies (adaptive / stochastic, the paper's Sec. 6)          *)

let diag_mesh () =
  (* a 2x2 mesh with one corner-to-corner flow: two minimal paths *)
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (D.of_edges [ (1, 4) ]) in
  (acg, Syn.mesh ~rows:2 ~cols:2 acg)

let deliver_all net =
  match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "hang"

let test_fixed_route_taken () =
  let _, arch = diag_mesh () in
  let net = Net.create arch in
  let id = Net.inject net ~src:1 ~dst:4 in
  deliver_all net;
  (* XY: column first -> 1, 2, 4 *)
  Alcotest.(check (option (list int))) "planned path" (Some [ 1; 2; 4 ])
    (Net.route_taken net id)

let test_adaptive_minimal () =
  let _, arch = diag_mesh () in
  let net = Net.create ~policy:Net.Adaptive arch in
  let id = Net.inject net ~src:1 ~dst:4 in
  deliver_all net;
  match Net.route_taken net id with
  | Some path ->
      Alcotest.(check int) "minimal length" 3 (List.length path);
      Alcotest.(check int) "starts" 1 (List.hd path);
      Alcotest.(check int) "ends" 4 (List.nth path 2)
  | None -> Alcotest.fail "trace recorded"

let test_adaptive_spreads_load () =
  (* two simultaneous packets on the same corner-to-corner flow: the
     adaptive policy must send them over the two disjoint minimal paths *)
  let _, arch = diag_mesh () in
  let net = Net.create ~policy:Net.Adaptive arch in
  let id1 = Net.inject ~size_flits:4 net ~src:1 ~dst:4 in
  let id2 = Net.inject ~size_flits:4 net ~src:1 ~dst:4 in
  deliver_all net;
  let p1 = Option.get (Net.route_taken net id1) in
  let p2 = Option.get (Net.route_taken net id2) in
  Alcotest.(check bool) "disjoint middles" true (List.nth p1 1 <> List.nth p2 1)

let test_adaptive_faster_under_contention () =
  let _, arch = diag_mesh () in
  let run policy =
    let net = Net.create ~policy arch in
    for _ = 1 to 8 do
      ignore (Net.inject ~size_flits:4 net ~src:1 ~dst:4)
    done;
    deliver_all net;
    Net.now net
  in
  Alcotest.(check bool) "adaptive drains faster than fixed" true
    (run Net.Adaptive < run Net.Fixed)

let test_oblivious_deterministic_and_minimal () =
  let _, arch = diag_mesh () in
  let run seed =
    let net = Net.create ~policy:(Net.Oblivious (Prng.create ~seed)) arch in
    let ids = List.init 6 (fun _ -> Net.inject net ~src:1 ~dst:4) in
    deliver_all net;
    List.map (fun id -> Option.get (Net.route_taken net id)) ids
  in
  let a = run 3 and b = run 3 in
  Alcotest.(check bool) "same seed same paths" true (a = b);
  List.iter (fun p -> Alcotest.(check int) "minimal" 3 (List.length p)) a

let test_adaptive_on_custom_topology () =
  (* adaptive routing also works on a synthesized architecture *)
  let acg = Noc_aes.Distributed.acg () in
  let d, _ =
    Noc_core.Branch_bound.decompose ~library:(Noc_primitives.Library.default ()) acg
  in
  let arch = Syn.custom acg d in
  let net = Net.create ~policy:Net.Adaptive arch in
  let flows = Traffic.flows_of_acg ~rate_scale:0.05 acg in
  let rng = Prng.create ~seed:5 in
  let ds = Traffic.run ~rng ~net ~flows ~cycles:300 () in
  Alcotest.(check bool) "delivers" true (List.length ds > 0);
  Alcotest.(check int) "drains" 0 (Net.pending net)

(* -------------------------------------------------------------------- *)
(* Traffic patterns and load sweeps                                      *)

module Pat = Noc_sim.Patterns
module Sweep = Noc_sim.Sweep

let test_patterns_structure () =
  let t = Pat.transpose ~rows:4 ~cols:4 in
  Alcotest.(check int) "transpose flows" 12 (List.length t);
  Alcotest.(check bool) "(0,1)->(1,0)" true (List.mem (2, 5) t);
  Alcotest.check_raises "non-square" (Invalid_argument "Patterns.transpose: need a square grid")
    (fun () -> ignore (Pat.transpose ~rows:2 ~cols:4));
  let br = Pat.bit_reversal ~nodes:8 in
  (* indices 0..7: reversal swaps 1<->4, 3<->6; 0,2,5,7 are palindromes *)
  Alcotest.(check int) "bit reversal flows" 4 (List.length br);
  Alcotest.(check bool) "1->4 (001->100)" true (List.mem (2, 5) br);
  let bc = Pat.bit_complement ~nodes:8 in
  Alcotest.(check int) "bit complement flows" 8 (List.length bc);
  Alcotest.(check bool) "0->7" true (List.mem (1, 8) bc);
  let hs = Pat.hotspot ~nodes:6 ~target:3 in
  Alcotest.(check int) "hotspot flows" 5 (List.length hs);
  List.iter (fun (_, d) -> Alcotest.(check int) "to target" 3 d) hs;
  let sh = Pat.shuffle ~nodes:8 in
  Alcotest.(check bool) "shuffle 1->2 (001->010)" true (List.mem (2, 3) sh);
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Patterns.bit_reversal: nodes must be a power of two") (fun () ->
      ignore (Pat.bit_reversal ~nodes:6))

let test_pattern_acg () =
  let acg = Pat.to_acg ~volume:16 (Pat.transpose ~rows:4 ~cols:4) in
  Alcotest.(check int) "flows" 12 (Acg.num_flows acg);
  Alcotest.(check int) "volume" 16 (Acg.volume acg 2 5)

let test_latency_vs_load () =
  let acg = Pat.to_acg (Pat.transpose ~rows:4 ~cols:4) in
  let arch = Syn.mesh ~rows:4 ~cols:4 acg in
  let rng = Prng.create ~seed:13 in
  let points =
    Sweep.latency_vs_load ~rng ~arch ~acg ~cycles:400 ~rates:[ 0.01; 0.05; 0.3 ] ()
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  let lats = List.map (fun p -> p.Sweep.avg_latency) points in
  (* latency grows with offered load *)
  Alcotest.(check bool) "monotone-ish" true
    (List.nth lats 0 <= List.nth lats 2);
  List.iter
    (fun p -> Alcotest.(check bool) "delivered some" true (p.Sweep.delivered > 0))
    points;
  (* series view matches points *)
  Alcotest.(check int) "series length" 3 (List.length (Sweep.to_series points))

let test_saturation_detection () =
  let mk rate lat =
    {
      Sweep.rate;
      offered = rate;
      delivered = 10;
      avg_latency = lat;
      throughput = 0.1;
    }
  in
  Alcotest.(check (option (float 1e-9))) "knee found" (Some 0.3)
    (Sweep.saturation_rate [ mk 0.1 5.0; mk 0.2 8.0; mk 0.3 25.0 ]);
  Alcotest.(check (option (float 1e-9))) "no knee" None
    (Sweep.saturation_rate [ mk 0.1 5.0; mk 0.2 6.0 ]);
  Alcotest.(check (option (float 1e-9))) "empty" None (Sweep.saturation_rate [])

let test_saturation_skips_zero_delivery_baseline () =
  (* Regression: a leading point that delivered nothing has avg_latency = 0.
     The old code took it as the baseline, treated base as 1.0 and then
     declared the first real point (latency 5 > 4) saturated.  The baseline
     must instead come from the first point that actually delivered. *)
  let mk ?(delivered = 10) rate lat =
    { Sweep.rate; offered = rate; delivered; avg_latency = lat; throughput = 0.1 }
  in
  let pts =
    [ mk ~delivered:0 0.05 0.0; mk 0.1 5.0; mk 0.2 8.0; mk 0.3 30.0 ]
  in
  Alcotest.(check (option (float 1e-9)))
    "knee at the real blow-up, not the first delivering point" (Some 0.3)
    (Sweep.saturation_rate pts);
  (* zero-delivery points never count as the knee themselves *)
  let stalled = [ mk 0.1 5.0; mk ~delivered:0 0.2 0.0; mk 0.3 30.0 ] in
  Alcotest.(check (option (float 1e-9)))
    "stalled mid-point skipped" (Some 0.3)
    (Sweep.saturation_rate stalled);
  (* if nothing was ever delivered there is no baseline and no knee *)
  Alcotest.(check (option (float 1e-9)))
    "all-stalled sweep has no knee" None
    (Sweep.saturation_rate [ mk ~delivered:0 0.1 0.0; mk ~delivered:0 0.2 0.0 ])

(* -------------------------------------------------------------------- *)
(* Wormhole switching                                                    *)

module W = Noc_sim.Wormhole

let line_arch_flow h =
  (* a straight 1 x (h+1) mesh carrying the single flow 1 -> h+1 *)
  let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (D.of_edges [ (1, h + 1) ]) in
  Syn.mesh ~rows:1 ~cols:(h + 1) acg

let test_wormhole_uncontended_latency () =
  (* h link hops, n flits: head pipelines one hop per cycle, tail exits n
     cycles after the head reaches the sink: latency = h + n *)
  List.iter
    (fun (h, n) ->
      let net = W.create (line_arch_flow h) in
      let _ = W.inject ~size_flits:n net ~src:1 ~dst:(h + 1) in
      (match W.run_until_idle net with
      | `Idle -> ()
      | `Deadlock | `Limit -> Alcotest.fail "uncontended worm must drain");
      match W.deliveries net with
      | [ { W.delivered_at; _ } ] ->
          Alcotest.(check int) (Printf.sprintf "h=%d n=%d" h n) (h + n) delivered_at
      | _ -> Alcotest.fail "one delivery")
    [ (1, 1); (1, 4); (3, 1); (3, 4); (5, 8) ]

let test_wormhole_beats_store_and_forward () =
  (* the whole point of wormhole: multi-hop multi-flit latency is h + n,
     store-and-forward pays the serialization at every hop *)
  let h = 4 and n = 6 in
  let arch = line_arch_flow h in
  let whn =
    let net = W.create arch in
    let _ = W.inject ~size_flits:n net ~src:1 ~dst:(h + 1) in
    (match W.run_until_idle net with `Idle -> () | _ -> Alcotest.fail "drain");
    (List.hd (W.deliveries net)).W.delivered_at
  in
  let saf =
    let net = Net.create arch in
    let _ = Net.inject ~size_flits:n net ~src:1 ~dst:(h + 1) in
    (match Net.run_until_idle net with `Idle -> () | `Limit _ -> Alcotest.fail "drain");
    (List.hd (Net.deliveries net)).Net.delivered_at
  in
  Alcotest.(check bool) "wormhole pipelines" true (whn < saf)

let test_wormhole_link_sharing () =
  (* two worms over the same single link: the link carries one flit per
     cycle, so together they take ~2n cycles but both make progress via the
     round-robin *)
  let arch = line_arch_flow 1 in
  let net = W.create arch in
  let _ = W.inject ~size_flits:4 net ~src:1 ~dst:2 in
  let _ = W.inject ~size_flits:4 net ~src:1 ~dst:2 in
  (match W.run_until_idle net with `Idle -> () | _ -> Alcotest.fail "drain");
  let times = List.map (fun d -> d.W.delivered_at) (W.deliveries net) in
  Alcotest.(check int) "both delivered" 2 (List.length times);
  Alcotest.(check bool) "link is serialized" true (List.fold_left max 0 times >= 8)

let test_wormhole_flit_hops () =
  let h = 3 and n = 4 in
  let net = W.create (line_arch_flow h) in
  let _ = W.inject ~size_flits:n net ~src:1 ~dst:(h + 1) in
  (match W.run_until_idle net with `Idle -> () | _ -> Alcotest.fail "drain");
  Alcotest.(check int) "every flit crosses every link" (h * n) (W.flit_hops net)

(* the classic wrap-around ring: four flows, each two hops, whose channel
   dependencies form a cycle *)
let ring_arch () =
  let topology = G.bidirectional_ring 4 in
  let routes =
    D.Edge_map.of_seq
      (List.to_seq
         [
           ((1, 3), [ 1; 2; 3 ]);
           ((2, 4), [ 2; 3; 4 ]);
           ((3, 1), [ 3; 4; 1 ]);
           ((4, 2), [ 4; 1; 2 ]);
         ])
  in
  Syn.make ~topology ~routes ()

let test_wormhole_ring_deadlocks_with_one_vc () =
  let arch = ring_arch () in
  (* static analysis predicts the deadlock risk... *)
  let report = Noc_core.Deadlock.analyze arch in
  Alcotest.(check bool) "CDG has a cycle" true (report.Noc_core.Deadlock.cdg_cycle <> None);
  Alcotest.(check int) "2 VCs prescribed" 2 report.Noc_core.Deadlock.vcs_needed;
  (* ...and the flit-level simulation realizes it with a single VC *)
  let net = W.create ~config:{ W.num_vcs = 1; flit_bits = 8 } arch in
  List.iter
    (fun (src, dst) -> ignore (W.inject ~size_flits:4 net ~src ~dst))
    [ (1, 3); (2, 4); (3, 1); (4, 2) ];
  (match W.run_until_idle net with
  | `Deadlock -> ()
  | `Idle -> Alcotest.fail "expected a deadlock with 1 VC"
  | `Limit -> Alcotest.fail "expected deadlock detection, not a timeout");
  Alcotest.(check bool) "worms stuck" true (W.pending net > 0)

let test_wormhole_ring_drains_with_two_vcs () =
  let arch = ring_arch () in
  let net = W.create ~config:{ W.num_vcs = 2; flit_bits = 8 } arch in
  List.iter
    (fun (src, dst) -> ignore (W.inject ~size_flits:4 net ~src ~dst))
    [ (1, 3); (2, 4); (3, 1); (4, 2) ];
  (match W.run_until_idle net with
  | `Idle -> ()
  | `Deadlock -> Alcotest.fail "2 VCs must break the cycle"
  | `Limit -> Alcotest.fail "unexpected timeout");
  Alcotest.(check int) "all delivered" 4 (List.length (W.deliveries net));
  Alcotest.(check int) "summary agrees" 4 (W.summary net).Stats.packets

let test_wormhole_bad_args () =
  let arch = line_arch_flow 1 in
  Alcotest.check_raises "bad vcs" (Invalid_argument "Wormhole.create: num_vcs must be >= 1")
    (fun () -> ignore (W.create ~config:{ W.num_vcs = 0; flit_bits = 8 } arch));
  let net = W.create arch in
  Alcotest.check_raises "no route" (Invalid_argument "Wormhole.inject: no route 2->1")
    (fun () -> ignore (W.inject net ~src:2 ~dst:1))

let qcheck_wormhole_always_terminates_acyclic =
  QCheck.Test.make ~name:"wormhole always drains on acyclic-CDG meshes" ~count:20
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, flits) ->
      let acg = Noc_aes.Distributed.acg () in
      let arch = Syn.mesh ~rows:4 ~cols:4 acg in
      let net = W.create arch in
      let rng = Prng.create ~seed:(seed + 4000) in
      let g = Noc_core.Acg.graph acg in
      let edges = D.edges g in
      for _ = 1 to 20 do
        let u, v = List.nth edges (Prng.int rng (List.length edges)) in
        ignore (W.inject ~size_flits:flits net ~src:u ~dst:v)
      done;
      match W.run_until_idle net with `Idle -> true | `Deadlock | `Limit -> false)

(* Property: in an uncontended network, latency equals the analytic formula
   router_delay*(h+1) + (link_delay + flits - 1)*h. *)
let qcheck_uncontended_latency =
  QCheck.Test.make ~name:"uncontended latency matches the pipeline formula" ~count:30
    QCheck.(pair (int_range 1 3) (int_range 1 4))
    (fun (rd, flits) ->
      let acg = Acg.uniform ~volume:1 ~bandwidth:0.1 (D.of_edges [ (1, 4) ]) in
      let arch = Syn.mesh ~rows:1 ~cols:4 acg in
      let config = { Net.default_config with router_delay = rd } in
      let net = Net.create ~config arch in
      let _ = Net.inject ~size_flits:flits net ~src:1 ~dst:4 in
      match Net.run_until_idle net with
      | `Limit _ -> false
      | `Idle -> (
          match Net.deliveries net with
          | [ { Net.delivered_at; _ } ] ->
              let h = 3 in
              delivered_at = (rd * (h + 1)) + ((1 + flits - 1) * h)
          | _ -> false))

let suite =
  ( "sim",
    [
      Alcotest.test_case "single packet latency" `Quick test_single_packet_latency;
      Alcotest.test_case "multi hop latency" `Quick test_multi_hop_latency;
      Alcotest.test_case "serialization delay" `Quick test_serialization_delay;
      Alcotest.test_case "contention serializes" `Quick test_contention_serializes;
      Alcotest.test_case "fifo channel order" `Quick test_fifo_order_on_channel;
      Alcotest.test_case "inject without route" `Quick test_inject_no_route;
      Alcotest.test_case "bad config rejected" `Quick test_bad_config;
      Alcotest.test_case "drain deliveries" `Quick test_drain_deliveries;
      Alcotest.test_case "activity counters" `Quick test_activity_counters;
      Alcotest.test_case "payload and tag carried" `Quick test_payload_carried;
      Alcotest.test_case "simulation deterministic" `Quick test_determinism;
      Alcotest.test_case "empty summary" `Quick test_summary_empty;
      Alcotest.test_case "summary fields" `Quick test_summary_fields;
      Alcotest.test_case "energy accounting" `Quick test_energy_accounting;
      Alcotest.test_case "buffer occupancy counted" `Quick test_buffer_occupancy_counted;
      Alcotest.test_case "traffic uniform without bandwidth" `Quick
        test_traffic_uniform_when_no_bandwidth;
      Alcotest.test_case "wormhole empty summary" `Quick test_wormhole_empty_summary;
      Alcotest.test_case "traffic rates" `Quick test_traffic_rates;
      Alcotest.test_case "traffic run delivers" `Quick test_traffic_run_delivers;
      Alcotest.test_case "fixed: route taken = planned" `Quick test_fixed_route_taken;
      Alcotest.test_case "adaptive: minimal paths" `Quick test_adaptive_minimal;
      Alcotest.test_case "adaptive: spreads load" `Quick test_adaptive_spreads_load;
      Alcotest.test_case "adaptive: faster under contention" `Quick
        test_adaptive_faster_under_contention;
      Alcotest.test_case "oblivious: deterministic + minimal" `Quick
        test_oblivious_deterministic_and_minimal;
      Alcotest.test_case "adaptive on custom topology" `Quick test_adaptive_on_custom_topology;
      Alcotest.test_case "traffic pattern structure" `Quick test_patterns_structure;
      Alcotest.test_case "pattern to acg" `Quick test_pattern_acg;
      Alcotest.test_case "latency vs load sweep" `Quick test_latency_vs_load;
      Alcotest.test_case "saturation detection" `Quick test_saturation_detection;
      Alcotest.test_case "saturation: zero-delivery baseline" `Quick
        test_saturation_skips_zero_delivery_baseline;
      Alcotest.test_case "wormhole: pipeline latency h+n" `Quick
        test_wormhole_uncontended_latency;
      Alcotest.test_case "wormhole beats store-and-forward" `Quick
        test_wormhole_beats_store_and_forward;
      Alcotest.test_case "wormhole: link time-sharing" `Quick test_wormhole_link_sharing;
      Alcotest.test_case "wormhole: flit-hop accounting" `Quick test_wormhole_flit_hops;
      Alcotest.test_case "wormhole: ring deadlocks with 1 VC" `Quick
        test_wormhole_ring_deadlocks_with_one_vc;
      Alcotest.test_case "wormhole: 2 VCs break the deadlock" `Quick
        test_wormhole_ring_drains_with_two_vcs;
      Alcotest.test_case "wormhole: argument validation" `Quick test_wormhole_bad_args;
      QCheck_alcotest.to_alcotest qcheck_wormhole_always_terminates_acyclic;
      QCheck_alcotest.to_alcotest qcheck_uncontended_latency;
    ] )
