module D = Noc_graph.Digraph
module Net = Noc_sim.Network

let node_of ~row ~col =
  if row < 0 || row > 3 || col < 0 || col > 3 then
    invalid_arg "Distributed.node_of: row/col in [0,3]";
  (row * 4) + col + 1

let pos_of v =
  if v < 1 || v > 16 then invalid_arg "Distributed.pos_of: node in [1,16]";
  ((v - 1) / 4, (v - 1) mod 4)

(* ShiftRows: state[r][c] <- state[r][(c + r) mod 4], so the node at
   (r, cs) sends its byte to (r, (cs - r) mod 4). *)
let shift_target ~row ~col = node_of ~row ~col:((col - row + 4) mod 4)

let acg () =
  let g = ref D.empty in
  for v = 1 to 16 do
    g := D.add_vertex !g v
  done;
  let volume = ref D.Edge_map.empty in
  let bandwidth = ref D.Edge_map.empty in
  let add_edge u v vol =
    g := D.add_edge !g u v;
    volume := D.Edge_map.add (u, v) vol !volume;
    bandwidth := D.Edge_map.add (u, v) 0.1 !bandwidth
  in
  (* MixColumns: all-to-all within each column, 9 rounds x 8 bits *)
  for col = 0 to 3 do
    for r1 = 0 to 3 do
      for r2 = 0 to 3 do
        if r1 <> r2 then add_edge (node_of ~row:r1 ~col) (node_of ~row:r2 ~col) 72
      done
    done
  done;
  (* ShiftRows: rows 1-3, 10 rounds x 8 bits *)
  for row = 1 to 3 do
    for col = 0 to 3 do
      let dst = shift_target ~row ~col in
      let src = node_of ~row ~col in
      if dst <> src then add_edge src dst 80
    done
  done;
  Noc_core.Acg.make ~graph:!g ~volume:!volume ~bandwidth:!bandwidth ()

type timing = {
  sub_bytes : int;
  mix_compute : int;
  add_key : int;
  packet_flits : int;
}

let default_timing = { sub_bytes = 1; mix_compute = 2; add_key = 1; packet_flits = 2 }

type result = {
  ciphertext : Bytes.t;
  cycles : int;
  summary : Noc_sim.Stats.summary;
  net : Net.t;
}

(* internal short-circuit for the non-draining path; never escapes [encrypt] *)
exception Undrained of int

let encrypt ?config ?(timing = default_timing) ?(max_cycles = 1_000_000) ~arch ~key block
    =
  if Bytes.length key <> 16 then invalid_arg "Distributed.encrypt: need a 16-byte key";
  if Bytes.length block <> 16 then invalid_arg "Distributed.encrypt: need a 16-byte block";
  let net = Net.create ?config arch in
  let rks = Aes_core.expand_key key in
  (* node v holds state[r][c]; FIPS flat index of (r, c) is r + 4c *)
  let fips_index v =
    let r, c = pos_of v in
    r + (4 * c)
  in
  let byte = Array.make 17 0 in
  for v = 1 to 16 do
    byte.(v) <- Char.code (Bytes.get block (fips_index v))
  done;
  let local_compute cycles =
    for _ = 1 to cycles do
      Net.step net
    done
  in
  let add_round_key round =
    for v = 1 to 16 do
      byte.(v) <- byte.(v) lxor Char.code (Bytes.get rks.(round) (fips_index v))
    done;
    local_compute timing.add_key
  in
  let sub_bytes () =
    for v = 1 to 16 do
      byte.(v) <- Aes_core.sbox byte.(v)
    done;
    local_compute timing.sub_bytes
  in
  let wait_all () =
    match Net.run_until_idle ~max_cycles net with
    | `Idle -> ()
    | `Limit pending -> raise (Undrained pending)
  in
  let shift_rows () =
    for row = 1 to 3 do
      for col = 0 to 3 do
        let src = node_of ~row ~col in
        let dst = shift_target ~row ~col in
        if dst <> src then
          ignore
            (Net.inject ~tag:src ~size_flits:timing.packet_flits
               ~payload:(Bytes.make 1 (Char.chr byte.(src)))
               net ~src ~dst)
      done
    done;
    wait_all ();
    List.iter
      (fun { Net.packet; delivered_at = _ } ->
        byte.(packet.Noc_sim.Packet.dst) <-
          Char.code (Bytes.get packet.Noc_sim.Packet.payload 0))
      (Net.drain_deliveries net)
  in
  let mix_columns () =
    (* every node multicasts its byte to its 3 column mates *)
    for col = 0 to 3 do
      for r1 = 0 to 3 do
        for r2 = 0 to 3 do
          if r1 <> r2 then begin
            let src = node_of ~row:r1 ~col in
            let dst = node_of ~row:r2 ~col in
            ignore
              (Net.inject ~tag:src ~size_flits:timing.packet_flits
                 ~payload:(Bytes.make 1 (Char.chr byte.(src)))
                 net ~src ~dst)
          end
        done
      done
    done;
    wait_all ();
    (* gather received column bytes at each node *)
    let columns = Array.make 17 [||] in
    for v = 1 to 16 do
      let _, c = pos_of v in
      let col = Array.make 4 (-1) in
      let r, _ = pos_of v in
      col.(r) <- byte.(v);
      ignore c;
      columns.(v) <- col
    done;
    List.iter
      (fun { Net.packet; delivered_at = _ } ->
        let src = packet.Noc_sim.Packet.tag and dst = packet.Noc_sim.Packet.dst in
        let sr, _ = pos_of src in
        columns.(dst).(sr) <- Char.code (Bytes.get packet.Noc_sim.Packet.payload 0))
      (Net.drain_deliveries net);
    for v = 1 to 16 do
      let r, _ = pos_of v in
      let mixed = Aes_core.mix_single_column columns.(v) in
      byte.(v) <- mixed.(r)
    done;
    local_compute timing.mix_compute
  in
  match
    add_round_key 0;
    for round = 1 to 9 do
      sub_bytes ();
      shift_rows ();
      mix_columns ();
      add_round_key round
    done;
    sub_bytes ();
    shift_rows ();
    add_round_key 10
  with
  | () ->
      let ciphertext = Bytes.create 16 in
      for v = 1 to 16 do
        Bytes.set ciphertext (fips_index v) (Char.chr byte.(v))
      done;
      let summary = Noc_sim.Stats.summarize (Net.deliveries net) in
      Ok { ciphertext; cycles = Net.now net; summary; net }
  | exception Undrained pending -> Error (`Undrained pending)

let throughput_mbps ~cycles_per_block ~clock_mhz =
  128.0 *. clock_mhz /. float_of_int cycles_per_block
