(** Distributed AES-128 over a 16-node NoC (Section 5.2).

    "We distributed the AES operations to a network of 16 identical nodes
    each processing one byte of the input block" — node [v] holds the state
    byte at row [(v-1)/4], column [(v-1) mod 4], so the first state column
    lives on nodes 1, 5, 9, 13, exactly the vertex groups of the paper's
    Fig. 6a decomposition listing.

    Per AES round, SubBytes and AddRoundKey are node-local; ShiftRows makes
    every node of rows 1–3 forward its byte along its row (rows shifted by
    1 and 3 form directed 4-cycles, the row shifted by 2 forms two
    2-cycles); MixColumns needs every byte of a column at every node of
    that column — the all-to-all (gossip) pattern that dominates the ACG.

    {!encrypt} executes the computation cycle-accurately on a synthesized
    architecture and returns a ciphertext that is verified bit-identical to
    {!Aes_core.encrypt_block} by the test suite. *)

val node_of : row:int -> col:int -> int
(** [row*4 + col + 1]; rows and columns in [0, 3]. *)

val pos_of : int -> int * int
(** Inverse of {!node_of}. *)

val acg : unit -> Noc_core.Acg.t
(** The application characterization graph of Fig. 6a: per-block volumes
    are 8 bits × 9 rounds on MixColumns edges and 8 bits × 10 rounds on
    ShiftRows edges; bandwidth reflects one byte per phase. *)

type timing = {
  sub_bytes : int;  (** cycles of local S-box lookup per round *)
  mix_compute : int;  (** cycles of local GF(2^8) math per MixColumns *)
  add_key : int;  (** cycles of local key XOR *)
  packet_flits : int;  (** flits per byte message (header + payload) *)
}

val default_timing : timing
(** [sub_bytes = 1], [mix_compute = 2], [add_key = 1], [packet_flits = 2]
    (one header flit, one payload flit). *)

type result = {
  ciphertext : Bytes.t;
  cycles : int;  (** total cycles to encrypt the block *)
  summary : Noc_sim.Stats.summary;  (** per-packet network statistics *)
  net : Noc_sim.Network.t;  (** final network state, for energy probing *)
}

val encrypt :
  ?config:Noc_sim.Network.config ->
  ?timing:timing ->
  ?max_cycles:int ->
  arch:Noc_core.Synthesis.t ->
  key:Bytes.t ->
  Bytes.t ->
  (result, [ `Undrained of int ]) Stdlib.result
(** Encrypts one 16-byte block on the given architecture.  The
    architecture must route every ACG flow (build it from {!acg} via
    {!Noc_core.Synthesis.custom} or {!Noc_core.Synthesis.mesh}).
    [Error (`Undrained n)] means some communication phase failed to drain
    within [max_cycles] (default 1_000_000) with [n] packets still in
    flight — e.g. an architecture degraded by faults mid-encryption —
    instead of the [Invalid_argument] escape this API used to raise.
    @raise Invalid_argument on bad key/block sizes or missing routes. *)

val throughput_mbps : cycles_per_block:int -> clock_mhz:float -> float
(** The paper's Section 5.2 throughput formula: 128 bits per block at
    [clock / cycles] blocks per second, in Mbit/s. *)
