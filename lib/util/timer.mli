(** Wall-clock timing helpers for the run-time experiments (Fig. 4), plus a
    monotonic clock and deadline abstraction shared by the search kernels. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in seconds. *)

val time_median : repeats:int -> (unit -> 'a) -> 'a * float
(** [time_median ~repeats f] runs [f] [repeats] times (at least once) and
    returns the last result with the median elapsed time. *)

val now_mono_ns : unit -> int64
(** Monotonic clock reading in nanoseconds (arbitrary epoch).  Cheap
    (noalloc C stub) and immune to wall-clock adjustments — this is what
    every search deadline should be measured against. *)

val now_mono_s : unit -> float
(** {!now_mono_ns} in seconds. *)

(** Absolute deadlines on the monotonic clock.

    The public search APIs historically take absolute wall-clock deadlines
    (as given by [Unix.gettimeofday]); {!Deadline.of_wall} converts such a
    deadline into a monotonic target {e once}, so the hot loops only ever
    touch the monotonic clock. *)
module Deadline : sig
  type t

  val none : t
  (** Never expires. *)

  val of_wall : float -> t
  (** [of_wall abs] converts an absolute wall-clock deadline (seconds, as
      given by [Unix.gettimeofday]) into a monotonic target. *)

  val of_wall_opt : float option -> t
  val after : float -> t
  (** [after s] expires [s] seconds from now. *)

  val after_opt : float option -> t
  val expired : t -> bool
end
