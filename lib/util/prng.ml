type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = bits64 g in
  { state = mix64 s }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection sampling: draws fall in [0, max_int]; reject the (at most
     bound - 1) values of the final, incomplete group so every residue is
     equally likely *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 g) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (r /. 9007199254740992.0)

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g p =
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ ->
      let a = Array.of_list xs in
      a.(int g (Array.length a))

let sample g k xs =
  let n = List.length xs in
  if k >= n then xs
  else begin
    let a = Array.of_list xs in
    shuffle g a;
    Array.to_list (Array.sub a 0 k)
  end
