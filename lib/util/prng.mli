(** Deterministic pseudo-random number generation.

    All stochastic components of the project (graph generators, traffic
    injection, simulated annealing, property tests that need auxiliary
    randomness) draw from this splittable generator so that every experiment
    is reproducible from a single integer seed.  The implementation is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which is adequate for
    simulation workloads and has no global state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay [g]'s future
    stream. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)], via rejection sampling (no
    modulo bias). @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. @raise
    Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. @raise Invalid_argument on []. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample g k xs] draws [k] distinct elements (reservoir sampling); returns
    all of [xs] if [k >= List.length xs]. *)
