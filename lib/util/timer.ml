let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, t1 -. t0)

let time_median ~repeats f =
  let repeats = max 1 repeats in
  let result = ref None in
  let samples =
    List.init repeats (fun _ ->
        let x, dt = time f in
        result := Some x;
        dt)
  in
  let sorted = List.sort compare samples in
  let median = List.nth sorted (repeats / 2) in
  match !result with
  | Some x -> (x, median)
  | None -> assert false

(* CLOCK_MONOTONIC via the bechamel stub: an unboxed, noalloc int64 of
   nanoseconds, immune to wall-clock adjustments. *)
let now_mono_ns () = Monotonic_clock.now ()
let now_mono_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

module Deadline = struct
  type t = float (* monotonic seconds; infinity = no deadline *)

  let none = infinity

  let of_wall abs = now_mono_s () +. (abs -. Unix.gettimeofday ())
  let of_wall_opt = function None -> none | Some abs -> of_wall abs
  let after s = now_mono_s () +. s
  let after_opt = function None -> none | Some s -> after s

  let expired t = t <> infinity && now_mono_s () > t
end
