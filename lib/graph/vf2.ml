module Vmap = Digraph.Vmap
module C = Compact

type mapping = int Vmap.t

type outcome = Exhausted | Stopped | Timed_out

module Instr = struct
  type t = { probes : int Atomic.t; backtracks : int Atomic.t }

  let create () = { probes = Atomic.make 0; backtracks = Atomic.make 0 }
  let probes i = Atomic.get i.probes
  let backtracks i = Atomic.get i.backtracks

  (* Engines accumulate in plain local ints (an [incr] per candidate, cheap
     enough to leave unconditional) and publish once per search, so domains
     never contend on the atomics inside the inner loop. *)
  let flush i ~probes ~backtracks =
    ignore (Atomic.fetch_and_add i.probes probes);
    ignore (Atomic.fetch_and_add i.backtracks backtracks)
end

exception Stop_search of outcome

(* How many search-tree nodes are expanded between deadline checks. *)
let deadline_check_period = 256

(* Trailing-zero count of a non-zero word, for ascending bitset iteration. *)
let[@inline] ntz64 x =
  let n = ref 0 and x = ref x in
  if Int64.logand !x 0xFFFFFFFFL = 0L then begin
    n := !n + 32;
    x := Int64.shift_right_logical !x 32
  end;
  if Int64.logand !x 0xFFFFL = 0L then begin
    n := !n + 16;
    x := Int64.shift_right_logical !x 16
  end;
  if Int64.logand !x 0xFFL = 0L then begin
    n := !n + 8;
    x := Int64.shift_right_logical !x 8
  end;
  if Int64.logand !x 0xFL = 0L then begin
    n := !n + 4;
    x := Int64.shift_right_logical !x 4
  end;
  if Int64.logand !x 0x3L = 0L then begin
    n := !n + 2;
    x := Int64.shift_right_logical !x 2
  end;
  if Int64.logand !x 1L = 0L then incr n;
  !n

(* The one deadline helper shared by the exact and approximate kernels: the
   absolute wall-clock deadline of the public API is converted to a
   monotonic target once, and the monotonic clock is polled every
   [deadline_check_period] expansions. *)
let deadline_checker deadline =
  let dl = Noc_util.Timer.Deadline.of_wall_opt deadline in
  let ticks = ref 0 in
  fun () ->
    incr ticks;
    if !ticks mod deadline_check_period = 0 && Noc_util.Timer.Deadline.expired dl
    then raise (Stop_search Timed_out)

(* Pattern vertices are matched in a connectivity-aware static order: start
   from a vertex of maximum degree, then repeatedly pick the unmatched vertex
   with the most already-ordered neighbors (ties broken by degree, then by
   lowest id).  This is the classic VF2 ordering heuristic and keeps the
   frontier connected for connected patterns.  Dense ids are assigned in
   ascending original-id order, so the tie-breaks agree with the map-based
   reference engine. *)
let pattern_order (p : C.t) =
  let n = p.C.n in
  let chosen = Array.make n false in
  let order = Array.make n 0 in
  (* members of succ(v) ∪ pred(v) already chosen: merge two sorted slices
     so a vertex that is both successor and predecessor counts once *)
  let chosen_nbrs v =
    let sa = p.C.succ_arr and se = p.C.succ_off.(v + 1) in
    let pa = p.C.pred_arr and pe = p.C.pred_off.(v + 1) in
    let i = ref p.C.succ_off.(v) and j = ref p.C.pred_off.(v) and cnt = ref 0 in
    while !i < se || !j < pe do
      let w =
        if !i >= se then begin
          let w = pa.(!j) in
          incr j;
          w
        end
        else if !j >= pe then begin
          let w = sa.(!i) in
          incr i;
          w
        end
        else begin
          let wi = sa.(!i) and wj = pa.(!j) in
          if wi < wj then begin
            incr i;
            wi
          end
          else if wj < wi then begin
            incr j;
            wj
          end
          else begin
            incr i;
            incr j;
            wi
          end
        end
      in
      if chosen.(w) then incr cnt
    done;
    !cnt
  in
  for k = 0 to n - 1 do
    let best = ref (-1) and bnc = ref (-1) and bdeg = ref (-1) in
    for v = 0 to n - 1 do
      if not chosen.(v) then begin
        let nc = chosen_nbrs v in
        let deg =
          p.C.succ_off.(v + 1) - p.C.succ_off.(v) + p.C.pred_off.(v + 1)
          - p.C.pred_off.(v)
        in
        if nc > !bnc || (nc = !bnc && deg > !bdeg) then begin
          best := v;
          bnc := nc;
          bdeg := deg
        end
      end
    done;
    chosen.(!best) <- true;
    order.(k) <- !best
  done;
  order

let iter_view ?deadline ?instr ~(pattern : C.t) ~(target : C.view) f =
  let np = pattern.C.n in
  let tb = target.C.base in
  let nt = tb.C.n in
  if np = 0 then Exhausted
  else if np > nt || pattern.C.n_edges > C.num_edges target then Exhausted
  else begin
    let order = pattern_order pattern in
    let check_deadline = deadline_checker deadline in
    (* counting is hoisted so the disabled path pays one predictable branch
       per probe instead of two ref writes in the innermost loop *)
    let counting = instr <> None in
    let n_probes = ref 0 and n_backtracks = ref 0 in
    (* core: pattern dense -> target dense (-1 unmapped) *)
    let core = Array.make np (-1) in
    let ps_off = pattern.C.succ_off and ps = pattern.C.succ_arr in
    let pp_off = pattern.C.pred_off and pp = pattern.C.pred_arr in
    (* Bitset candidate domains: one [tw]-word row per search depth (the
       recursion below a depth only touches deeper rows, so rows can live in
       one flat scratch array), plus the used-target set as a bitset. *)
    let tw = tb.C.words in
    let tadj = tb.C.adj and tradj = tb.C.radj in
    let tail_mask =
      if nt land 63 = 0 then Int64.minus_one
      else Int64.sub (Int64.shift_left 1L (nt land 63)) 1L
    in
    let used_bits = Array.make tw 0L in
    let cand = Array.make (np * tw) 0L in
    let feasible u v =
      (* degree look-ahead, then: every already-mapped pattern neighbor of u
         must have the corresponding target edge (this also re-checks the
         deletion overlay, so candidates can be drawn from base slices) *)
      C.out_degree_d target v >= ps_off.(u + 1) - ps_off.(u)
      && C.in_degree_d target v >= pp_off.(u + 1) - pp_off.(u)
      &&
      let ok = ref true in
      let i = ref ps_off.(u) in
      while !ok && !i < ps_off.(u + 1) do
        let w' = core.(ps.(!i)) in
        if w' >= 0 && not (C.mem_edge_d target v w') then ok := false;
        incr i
      done;
      let j = ref pp_off.(u) in
      while !ok && !j < pp_off.(u + 1) do
        let w' = core.(pp.(!j)) in
        if w' >= 0 && not (C.mem_edge_d target w' v) then ok := false;
        incr j
      done;
      !ok
    in
    (* Instrumentation wraps [feasible] instead of sprinkling the hot path
       with checks: with no [?instr] the search runs the exact uncounted
       closure, and [try_candidate] never captures the counters (it is a
       fresh closure per [extend] call, so that would grow every node).
       A feasible probe is always followed by exactly one extend+backtrack,
       so counting successes here equals counting backtracks at the call
       site. *)
    let feasible =
      if not counting then feasible
      else fun u v ->
        incr n_probes;
        let ok = feasible u v in
        if ok then incr n_backtracks;
        ok
    in
    let emit () =
      let m = ref Vmap.empty in
      for u = 0 to np - 1 do
        m := Vmap.add pattern.C.verts.(u) tb.C.verts.(core.(u)) !m
      done;
      match f !m with `Continue -> () | `Stop -> raise (Stop_search Stopped)
    in
    let rec extend depth =
      if depth = np then emit ()
      else begin
        check_deadline ();
        let u = order.(depth) in
        let row = depth * tw in
        (* Candidate bitset: word-parallel intersection of the base
           successor row of every mapped predecessor and the base
           predecessor row (transpose) of every mapped successor, minus the
           already-used targets.  [feasible] re-checks the deletion overlay,
           so base rows suffice; with no mapped neighbor yet, every unused
           vertex is a candidate.  Bits are scanned ascending, preserving
           the enumeration order of the map-based reference engine. *)
        let have = ref false in
        for i = pp_off.(u) to pp_off.(u + 1) - 1 do
          let w' = core.(pp.(i)) in
          if w' >= 0 then begin
            let src = w' * tw in
            if !have then
              for k = 0 to tw - 1 do
                cand.(row + k) <-
                  Int64.logand cand.(row + k) (Array.unsafe_get tadj (src + k))
              done
            else begin
              Array.blit tadj src cand row tw;
              have := true
            end
          end
        done;
        for i = ps_off.(u) to ps_off.(u + 1) - 1 do
          let w' = core.(ps.(i)) in
          if w' >= 0 then begin
            let src = w' * tw in
            if !have then
              for k = 0 to tw - 1 do
                cand.(row + k) <-
                  Int64.logand cand.(row + k) (Array.unsafe_get tradj (src + k))
              done
            else begin
              Array.blit tradj src cand row tw;
              have := true
            end
          end
        done;
        if not !have then Array.fill cand row tw Int64.minus_one;
        for k = 0 to tw - 1 do
          cand.(row + k) <- Int64.logand cand.(row + k) (Int64.lognot used_bits.(k))
        done;
        cand.(row + tw - 1) <- Int64.logand cand.(row + tw - 1) tail_mask;
        for k = 0 to tw - 1 do
          let w = ref cand.(row + k) in
          while !w <> 0L do
            let v = (k lsl 6) + ntz64 !w in
            w := Int64.logand !w (Int64.sub !w 1L);
            if feasible u v then begin
              let bit = Int64.shift_left 1L (v land 63) in
              core.(u) <- v;
              used_bits.(k) <- Int64.logor used_bits.(k) bit;
              extend (depth + 1);
              core.(u) <- -1;
              used_bits.(k) <- Int64.logand used_bits.(k) (Int64.lognot bit)
            end
          done
        done
      end
    in
    let flush () =
      match instr with
      | Some i -> Instr.flush i ~probes:!n_probes ~backtracks:!n_backtracks
      | None -> ()
    in
    match extend 0 with
    | () ->
        flush ();
        Exhausted
    | exception Stop_search o ->
        flush ();
        o
  end

let iter ?deadline ?instr ~pattern ~target f =
  iter_view ?deadline ?instr ~pattern:(C.freeze pattern)
    ~target:(C.view (C.freeze target))
    f

let find_first_view ?deadline ?instr ~pattern ~target () =
  let result = ref None in
  let _ =
    iter_view ?deadline ?instr ~pattern ~target (fun m ->
        result := Some m;
        `Stop)
  in
  !result

let find_first ?deadline ~pattern ~target () =
  find_first_view ?deadline ~pattern:(C.freeze pattern)
    ~target:(C.view (C.freeze target))
    ()

let exists ?deadline ~pattern ~target () =
  match find_first ?deadline ~pattern ~target () with Some _ -> true | None -> false

let find_all ?deadline ?max_matches ~pattern ~target () =
  let acc = ref [] in
  let count = ref 0 in
  let _ =
    iter ?deadline ~pattern ~target (fun m ->
        acc := m :: !acc;
        incr count;
        match max_matches with
        | Some k when !count >= k -> `Stop
        | Some _ | None -> `Continue)
  in
  List.rev !acc

let edge_image ~pattern m =
  Digraph.fold_edges
    (fun u v acc -> (Vmap.find u m, Vmap.find v m) :: acc)
    pattern []
  |> List.sort Digraph.Edge.compare

(* [edge_image] of a compact pattern: pattern edges in original ids, images
   sorted. *)
let edge_image_c ~(pattern : C.t) m =
  let acc = ref [] in
  for u = 0 to pattern.C.n - 1 do
    for i = pattern.C.succ_off.(u) to pattern.C.succ_off.(u + 1) - 1 do
      let v = pattern.C.succ_arr.(i) in
      acc := (Vmap.find pattern.C.verts.(u) m, Vmap.find pattern.C.verts.(v) m) :: !acc
    done
  done;
  List.sort Digraph.Edge.compare !acc

let find_distinct_images_view ?deadline ?instr ?max_matches ~pattern ~target () =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let count = ref 0 in
  let _ =
    iter_view ?deadline ?instr ~pattern ~target (fun m ->
        let key = edge_image_c ~pattern m in
        if Hashtbl.mem seen key then `Continue
        else begin
          Hashtbl.replace seen key true;
          acc := m :: !acc;
          incr count;
          match max_matches with
          | Some k when !count >= k -> `Stop
          | Some _ | None -> `Continue
        end)
  in
  List.rev !acc

let find_distinct_images ?deadline ?max_matches ~pattern ~target () =
  find_distinct_images_view ?deadline ?max_matches ~pattern:(C.freeze pattern)
    ~target:(C.view (C.freeze target))
    ()

let is_monomorphism ~pattern ~target m =
  let injective =
    let images = Vmap.fold (fun _ v acc -> v :: acc) m [] in
    List.length (List.sort_uniq Int.compare images) = List.length images
  in
  let total =
    Digraph.Vset.for_all (fun u -> Vmap.mem u m) (Digraph.vertices pattern)
  in
  injective && total
  && Digraph.fold_edges
       (fun u v ok -> ok && Digraph.mem_edge target (Vmap.find u m) (Vmap.find v m))
       pattern true

(* ---------------- approximate matching ---------------- *)

type approx = {
  approx_mapping : mapping;
  missing : Digraph.Edge.t list;
}

let iter_approx_view ?deadline ?instr ~max_missing ~(pattern : C.t) ~(target : C.view) f =
  if max_missing < 0 then invalid_arg "Vf2.iter_approx: negative budget";
  let np = pattern.C.n in
  let tb = target.C.base in
  let nt = tb.C.n in
  if np = 0 then Exhausted
  else if np > nt then Exhausted
  else if pattern.C.n_edges - max_missing > C.num_edges target then Exhausted
  else begin
    let order = pattern_order pattern in
    let check_deadline = deadline_checker deadline in
    let counting = instr <> None in
    let n_probes = ref 0 and n_backtracks = ref 0 in
    let core = Array.make np (-1) in
    let used = Bytes.make nt '\000' in
    let ps_off = pattern.C.succ_off and ps = pattern.C.succ_arr in
    let pp_off = pattern.C.pred_off and pp = pattern.C.pred_arr in
    (* number of pattern edges between mapped vertices with no target image *)
    let misses u v =
      let count = ref 0 in
      for i = ps_off.(u) to ps_off.(u + 1) - 1 do
        let w' = core.(ps.(i)) in
        if w' >= 0 && not (C.mem_edge_d target v w') then incr count
      done;
      for i = pp_off.(u) to pp_off.(u + 1) - 1 do
        let w' = core.(pp.(i)) in
        if w' >= 0 && not (C.mem_edge_d target w' v) then incr count
      done;
      !count
    in
    let emit () =
      let m = ref Vmap.empty in
      for u = 0 to np - 1 do
        m := Vmap.add pattern.C.verts.(u) tb.C.verts.(core.(u)) !m
      done;
      (* pattern dense edges iterate in lexicographic original order, so the
         missing list is born sorted by Edge.compare *)
      let missing = ref [] in
      for u = np - 1 downto 0 do
        for i = ps_off.(u + 1) - 1 downto ps_off.(u) do
          let v = ps.(i) in
          if not (C.mem_edge_d target core.(u) core.(v)) then
            missing := (pattern.C.verts.(u), pattern.C.verts.(v)) :: !missing
        done
      done;
      match f { approx_mapping = !m; missing = !missing } with
      | `Continue -> ()
      | `Stop -> raise (Stop_search Stopped)
    in
    let rec extend depth missing_so_far =
      if depth = np then emit ()
      else begin
        check_deadline ();
        let u = order.(depth) in
        let budget = max_missing - missing_so_far in
        let out_p = ps_off.(u + 1) - ps_off.(u) in
        let in_p = pp_off.(u + 1) - pp_off.(u) in
        for v = 0 to nt - 1 do
          if Bytes.unsafe_get used v = '\000' then begin
            if counting then incr n_probes;
            (* relaxed degree look-ahead: missing edges may absorb the
               degree deficit *)
            let deg_ok =
              C.out_degree_d target v >= out_p - budget
              && C.in_degree_d target v >= in_p - budget
            in
            if deg_ok then begin
              let miss = misses u v in
              if miss <= budget then begin
                core.(u) <- v;
                Bytes.unsafe_set used v '\001';
                extend (depth + 1) (missing_so_far + miss);
                if counting then incr n_backtracks;
                core.(u) <- -1;
                Bytes.unsafe_set used v '\000'
              end
            end
          end
        done
      end
    in
    let flush () =
      match instr with
      | Some i -> Instr.flush i ~probes:!n_probes ~backtracks:!n_backtracks
      | None -> ()
    in
    match extend 0 0 with
    | () ->
        flush ();
        Exhausted
    | exception Stop_search o ->
        flush ();
        o
  end

let iter_approx ?deadline ?instr ~max_missing ~pattern ~target f =
  iter_approx_view ?deadline ?instr ~max_missing ~pattern:(C.freeze pattern)
    ~target:(C.view (C.freeze target))
    f

let find_first_approx ?deadline ~max_missing ~pattern ~target () =
  let result = ref None in
  let _ =
    iter_approx ?deadline ~max_missing ~pattern ~target (fun a ->
        result := Some a;
        `Stop)
  in
  !result

let find_all_approx ?deadline ?max_matches ~max_missing ~pattern ~target () =
  let acc = ref [] in
  let count = ref 0 in
  let _ =
    iter_approx ?deadline ~max_missing ~pattern ~target (fun a ->
        acc := a :: !acc;
        incr count;
        match max_matches with
        | Some k when !count >= k -> `Stop
        | Some _ | None -> `Continue)
  in
  List.rev !acc

let covered_edge_image ~pattern ~target m =
  Digraph.fold_edges
    (fun u v acc ->
      let u' = Vmap.find u m and v' = Vmap.find v m in
      if Digraph.mem_edge target u' v' then (u', v') :: acc else acc)
    pattern []
  |> List.sort Digraph.Edge.compare

let covered_edge_image_view ~(pattern : C.t) ~(target : C.view) m =
  let acc = ref [] in
  for u = 0 to pattern.C.n - 1 do
    for i = pattern.C.succ_off.(u) to pattern.C.succ_off.(u + 1) - 1 do
      let v = pattern.C.succ_arr.(i) in
      let u' = Vmap.find pattern.C.verts.(u) m and v' = Vmap.find pattern.C.verts.(v) m in
      if C.mem_edge target u' v' then acc := (u', v') :: !acc
    done
  done;
  List.sort Digraph.Edge.compare !acc
