(** Multi-pattern matching with invariant pre-screening.

    Section 5.1 of the paper points at Messmer & Bunke's decision-tree
    approach for matching a {e collection} of model graphs (the
    communication library) against an input faster than running the
    isomorphism test once per model.  This module implements the practical
    core of that idea: the pattern set is compiled once into a table of
    cheap structural invariants (vertex/edge counts, degree bounds, sorted
    degree sequences), the target's invariants are computed once per query,
    and full VF2 search runs only for the patterns that survive the screen.

    The screen is sound for subgraph {e monomorphism}: a pattern can only
    embed if its vertex count, edge count and sorted degree sequences are
    dominated by the target's (the k-th largest pattern out-degree can not
    exceed the k-th largest target out-degree, since an embedding maps each
    pattern vertex onto a target vertex of at least its degree). *)

type t
(** A compiled pattern set. *)

val compile : (int * Digraph.t) list -> t
(** [compile [(id, pattern); ...]] precomputes the invariants.  Ids must be
    distinct. @raise Invalid_argument on duplicate ids. *)

val pattern : t -> int -> Digraph.t option
(** Retrieve a compiled pattern by id. *)

val survivors : ?slack:int -> t -> Digraph.t -> int list
(** Ids of the patterns that pass the invariant screen against the target,
    in compile order.  Every pattern with at least one monomorphism into
    the target is guaranteed to be included (no false negatives); some
    survivors may still fail the full search.  [slack] (default 0) relaxes
    the screen for approximate matching: a pattern missing up to [slack]
    edges in the target must also survive, so the edge-count and
    degree-dominance tests are loosened by that amount. *)

val survivors_view : ?slack:int -> t -> Compact.view -> int list
(** {!survivors} against a {!Compact.view} target: the degree profile is
    read straight off the CSR snapshot and its deletion overlay, without
    materializing a digraph. *)

val screened_out : ?slack:int -> t -> Digraph.t -> int list
(** Complement of {!survivors}: patterns rejected without any search. *)

val find_first :
  ?deadline:float -> t -> id:int -> Digraph.t -> Vf2.mapping option
(** Full VF2 search for one pattern — but only after the screen; returns
    [None] immediately when the screen rejects.
    @raise Invalid_argument on unknown ids. *)

val matching_patterns :
  ?deadline:float -> t -> Digraph.t -> (int * Vf2.mapping) list
(** First monomorphism for every pattern that has one, in compile order —
    the "which library graphs appear in this input" query the
    decomposition's branch step performs. *)
