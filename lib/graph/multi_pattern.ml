module Vset = Digraph.Vset

type profile = {
  n_vertices : int;
  n_edges : int;
  out_desc : int array;  (* out-degrees, descending *)
  in_desc : int array;  (* in-degrees, descending *)
}

type entry = { id : int; graph : Digraph.t; prof : profile }

type t = entry list

let profile_of g =
  let degs f =
    let a =
      Digraph.fold_vertices (fun v acc -> f v :: acc) g [] |> Array.of_list
    in
    Array.sort (fun a b -> Int.compare b a) a;
    a
  in
  {
    n_vertices = Digraph.num_vertices g;
    n_edges = Digraph.num_edges g;
    out_desc = degs (Digraph.out_degree g);
    in_desc = degs (Digraph.in_degree g);
  }

let compile patterns =
  let seen = Hashtbl.create 8 in
  List.map
    (fun (id, graph) ->
      if Hashtbl.mem seen id then
        invalid_arg (Printf.sprintf "Multi_pattern.compile: duplicate id %d" id);
      Hashtbl.replace seen id true;
      { id; graph; prof = profile_of graph })
    patterns

let pattern t id =
  List.find_map (fun e -> if e.id = id then Some e.graph else None) t

(* sorted-dominance: for every k, the k-th largest pattern degree must not
   exceed the k-th largest target degree *)
(* sorted-dominance with slack: up to [slack] missing pattern edges can
   absorb a per-vertex degree deficit of at most [slack] *)
let dominated_slack slack pat tgt =
  let np = Array.length pat in
  np <= Array.length tgt
  &&
  let ok = ref true in
  for i = 0 to np - 1 do
    if pat.(i) - slack > tgt.(i) then ok := false
  done;
  !ok

let passes ?(slack = 0) prof tprof =
  prof.n_vertices <= tprof.n_vertices
  && prof.n_edges - slack <= tprof.n_edges
  && dominated_slack slack prof.out_desc tprof.out_desc
  && dominated_slack slack prof.in_desc tprof.in_desc

let survivors ?slack t target =
  let tprof = profile_of target in
  List.filter_map (fun e -> if passes ?slack e.prof tprof then Some e.id else None) t

let profile_of_view v =
  let out_desc, in_desc = Compact.degree_profile v in
  {
    n_vertices = Compact.num_vertices v;
    n_edges = Compact.num_edges v;
    out_desc;
    in_desc;
  }

let survivors_view ?slack t target =
  let tprof = profile_of_view target in
  List.filter_map (fun e -> if passes ?slack e.prof tprof then Some e.id else None) t

let screened_out ?slack t target =
  let tprof = profile_of target in
  List.filter_map (fun e -> if passes ?slack e.prof tprof then None else Some e.id) t

let find_first ?deadline t ~id target =
  match List.find_opt (fun e -> e.id = id) t with
  | None -> invalid_arg (Printf.sprintf "Multi_pattern.find_first: unknown id %d" id)
  | Some e ->
      let tprof = profile_of target in
      if passes e.prof tprof then
        Vf2.find_first ?deadline ~pattern:e.graph ~target ()
      else None

let matching_patterns ?deadline t target =
  let tprof = profile_of target in
  List.filter_map
    (fun e ->
      if passes e.prof tprof then
        match Vf2.find_first ?deadline ~pattern:e.graph ~target () with
        | Some m -> Some (e.id, m)
        | None -> None
      else None)
    t
