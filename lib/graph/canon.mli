(** Canonical labeling of edge-labeled digraphs over the CSR kernel.

    Two graphs receive the same canonical order exactly when they are
    isomorphic (respecting edge labels), so a serialization of a graph in
    canonical order is an isomorphism-invariant certificate — the basis of
    the content-addressed synthesis cache ({!Noc_core.Acg.canonical_hash}).

    The algorithm is the classic individualization-refinement scheme
    (nauty's skeleton, without automorphism pruning):

    + {e refinement}: vertices are iteratively recolored by the multiset of
      (edge label, neighbor color) pairs over their successors and
      predecessors until the partition stabilizes — a Weisfeiler-Lehman
      pass that is already discrete for almost every irregular graph;
    + {e individualization}: if cells remain, each vertex of the first
      smallest non-singleton cell is tentatively given a fresh color, the
      partition is re-refined, and the recursion keeps the lexicographically
      smallest certificate over all discrete refinements reached.

    Without automorphism pruning the recursion can visit every
    automorphism of a highly symmetric graph, so the search carries a work
    budget: when it is exhausted the result is [`Truncated] and callers
    must fall back to an identity-only fingerprint.  ACGs — irregular,
    attribute-weighted communication graphs — essentially always refine to
    a discrete partition in one or two rounds. *)

val canonical_order :
  ?edge_label:(int -> int -> int) ->
  ?max_refines:int ->
  Compact.t ->
  [ `Canonical of int array | `Truncated ]
(** [canonical_order ?edge_label g] is [`Canonical rank] where [rank.(i)]
    is the canonical position of dense vertex [i] (a permutation of
    [0 .. n-1]), or [`Truncated] when the individualization search exceeds
    [max_refines] refinement passes (default 10_000).

    [edge_label] maps a directed edge (dense endpoint ids) to a
    non-negative label id and defaults to [fun _ _ -> 0] (unlabeled).
    Labels must themselves be isomorphism-invariant — e.g. the rank of the
    edge's attribute tuple among all distinct attribute tuples — or the
    resulting order will separate graphs that only differ by labeling.

    Invariance contract: for any relabeling of the underlying graph (and a
    consistently relabeled [edge_label]), serializing edges as
    [(rank src, rank dst, label)] triples sorted lexicographically yields
    the identical certificate. *)

val certificate :
  ?edge_label:(int -> int -> int) -> Compact.t -> int array -> (int * int * int) list
(** [certificate g rank] is that serialization: the edge list of [g] as
    [(rank src, rank dst, label)] triples in lexicographic order.  Exposed
    for the differential tests; {!Noc_core.Acg} builds its hash input from
    the same ranks plus the full attribute values. *)
