(** Reference map-based VF2 engine (the original implementation).

    This is the straightforward {!Digraph}-native VF2: [Hashtbl] search
    state, [Set]-based candidate intersection, [O(log n)] adjacency probes.
    The production engine ({!Vf2}) runs the same search on the {!Compact}
    CSR kernel and enumerates matchings in exactly the same order; this
    module is retained as the {e executable specification} — the qcheck
    differential suites check the compact engine against it on random
    graphs, and the [micro] benchmark section reports the speedup of the
    compact kernel over this baseline.  It sees no production traffic. *)

type mapping = int Digraph.Vmap.t
(** Pattern vertex [->] target vertex. *)

type outcome =
  | Exhausted  (** the whole search space was explored *)
  | Stopped  (** the callback requested an early stop *)
  | Timed_out  (** the deadline expired *)

val iter :
  ?deadline:float ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  (mapping -> [ `Continue | `Stop ]) ->
  outcome
(** [iter ~pattern ~target f] calls [f] on every subgraph monomorphism from
    [pattern] into [target], until [f] answers [`Stop], the optional
    wall-clock [deadline] (absolute, as given by [Unix.gettimeofday]) passes,
    or the space is exhausted. *)

val find_first : ?deadline:float -> pattern:Digraph.t -> target:Digraph.t -> unit -> mapping option
(** First monomorphism found, if any. *)

val exists : ?deadline:float -> pattern:Digraph.t -> target:Digraph.t -> unit -> bool

val find_all :
  ?deadline:float ->
  ?max_matches:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  mapping list
(** All monomorphisms (up to [max_matches], default unlimited), in discovery
    order. *)

val find_distinct_images :
  ?deadline:float ->
  ?max_matches:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  mapping list
(** Like {!find_all} but keeps a single representative per {e covered target
    edge set}: two monomorphisms that map the pattern's edges onto the same
    set of target edges lead to identical remaining graphs, so for
    decomposition branching only one needs to be explored (the cost of a
    matching may still depend on vertex roles; see
    [Noc_core.Matching]). *)

val edge_image : pattern:Digraph.t -> mapping -> Digraph.Edge.t list
(** The target edges covered by a monomorphism, sorted. *)

val is_monomorphism : pattern:Digraph.t -> target:Digraph.t -> mapping -> bool
(** Checks injectivity and edge preservation; used by tests. *)

(** {1 Approximate matching}

    Section 5.1 of the paper suggests relaxing "the requirement for perfect
    matching" so that graphs {e sufficiently close} to a library pattern are
    still detected.  An approximate monomorphism maps every pattern vertex
    injectively but tolerates up to [max_missing] pattern edges whose images
    are not present in the target; near-gossip traffic can then still be
    implemented by a Minimum Gossip Graph. *)

type approx = {
  approx_mapping : mapping;
  missing : Digraph.Edge.t list;
      (** pattern edges (in pattern vertex names) with no target edge *)
}

val iter_approx :
  ?deadline:float ->
  max_missing:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  (approx -> [ `Continue | `Stop ]) ->
  outcome
(** Like {!iter} but tolerating up to [max_missing] unrealized pattern
    edges.  With [max_missing = 0] it enumerates exactly the monomorphisms
    of {!iter}. *)

val find_first_approx :
  ?deadline:float ->
  max_missing:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  approx option

val find_all_approx :
  ?deadline:float ->
  ?max_matches:int ->
  max_missing:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  approx list

val covered_edge_image : pattern:Digraph.t -> target:Digraph.t -> mapping -> Digraph.Edge.t list
(** Target edges actually realized by a (possibly approximate) mapping:
    images of pattern edges that exist in the target, sorted. *)
