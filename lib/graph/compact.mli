(** Immutable CSR snapshots of {!Digraph.t}, with an edge-deletion overlay.

    The branch-and-bound decomposition spends essentially all of its time
    probing adjacency: VF2 feasibility checks, degree look-aheads and the
    [diff_edges] that produces each child's remaining graph.  On the
    persistent {!Digraph} every one of those probes is an [O(log n)] map
    lookup and every subtraction rebuilds adjacency maps.  This module
    freezes a digraph once into a dense, int-array CSR form:

    - vertices are renumbered densely [0..n-1] in increasing original-id
      order (so iterating dense ids visits original ids in ascending order —
      the VF2 kernel relies on this to enumerate matches in exactly the same
      order as the map-based engine);
    - successor/predecessor slices are sorted int arrays, degrees are O(1)
      offset differences, [mem_edge] is a single bit test against a
      multi-word adjacency bitmap (one [(n+63)/64]-word row per vertex, in
      both forward and transposed orientation, so 1024-core graphs probe as
      cheaply as 16-core ones);
    - a {!view} layers a set of {e deleted} edges over the frozen base, so
      the search can subtract covered edges in [O(k log k)] array merging
      without ever rebuilding maps.

    The representation is exposed concretely: this is a low-level kernel
    interface and the VF2 inner loop indexes the arrays directly. *)

type t = {
  n : int;  (** number of vertices *)
  verts : int array;  (** dense id -> original id, strictly increasing *)
  succ_off : int array;  (** length [n+1]; slice bounds into [succ_arr] *)
  succ_arr : int array;  (** dense successor ids, ascending per slice *)
  pred_off : int array;
  pred_arr : int array;  (** dense predecessor ids, ascending per slice *)
  words : int;  (** int64 words per bitset row, [(n + 63) / 64] *)
  adj : int64 array;
      (** forward adjacency bitmap, [n * words] int64s; row [u] starts at
          [u * words], and bit [v land 63] of word [v lsr 6] is set iff edge
          [u -> v] exists *)
  radj : int64 array;
      (** transposed adjacency bitmap, same layout: row [v] bit [u] is set
          iff edge [u -> v] exists (predecessor rows for word-parallel
          candidate intersection) *)
  n_edges : int;
}

type view = {
  base : t;
  del : int array;  (** deleted edges as sorted packed codes [u * n + v] *)
  del_bits : int64 array;
      (** deleted-edge bitmap, [n * words] int64s laid out like [adj];
          [[||]] until the first deletion *)
  del_out : int array;  (** per-vertex deleted out-degree; [[||]] if none *)
  del_in : int array;
}

val freeze : Digraph.t -> t
(** Snapshot a digraph.  O(V + E). *)

val view : t -> view
(** The identity overlay: the frozen graph with nothing deleted. *)

(** {1 Vertex numbering} *)

val vertex : t -> int -> int
(** [vertex g i] is the original id of dense vertex [i]. *)

val index : t -> int -> int
(** [index g v] is the dense id of original vertex [v], or [-1] when [v] is
    not a vertex of the frozen graph.  Binary search, O(log n). *)

(** {1 Dense-id queries on a view} *)

val out_degree_d : view -> int -> int
val in_degree_d : view -> int -> int
val mem_edge_d : view -> int -> int -> bool
(** All O(1) at any size: two bitmap probes ([adj] minus [del_bits]). *)

val fold_succ_d : view -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over the (non-deleted) dense successors of a dense vertex, in
    ascending dense order. *)

val fold_pred_d : view -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** {1 Original-id queries} *)

val mem_edge : view -> int -> int -> bool
(** By original vertex ids. *)

val num_edges : view -> int
val num_vertices : view -> int

val fold_edges : (int -> int -> 'a -> 'a) -> view -> 'a -> 'a
(** Fold over the surviving edges in lexicographic original-id order —
    the same order as {!Digraph.fold_edges} on the equivalent digraph. *)

val degree_profile : view -> int array * int array
(** [(out_desc, in_desc)]: the view's out- and in-degree sequences sorted
    descending, as consumed by the {!Multi_pattern} invariant screen. *)

(** {1 Overlay updates} *)

val delete_edges : view -> Digraph.Edge.t list -> view
(** [delete_edges v es] removes the listed edges (original ids; edges not
    present in the view are ignored, mirroring {!Digraph.diff_edges}).  The
    base snapshot is shared; only the overlay arrays are copied. *)

val to_digraph : view -> Digraph.t
(** Materialize the view as a persistent digraph.  Every vertex of the
    frozen base is kept, exactly like {!Digraph.diff_edges}. *)
