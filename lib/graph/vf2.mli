(** VF2-style subgraph isomorphism for directed graphs.

    Implements the matching semantics of Definition 3 of the paper: an
    injective map [f] from the pattern's vertices into the target's vertices
    such that every pattern edge maps to a target edge ({e subgraph
    monomorphism} — the matched subgraph need not be induced, because
    Definition 2 subtracts only the matched {e edges} from the remaining
    graph).

    The search uses the VF2 state-space construction (Cordella et al., IEEE
    TPAMI 2004, the same engine the paper calls from Matlab): vertices are
    added to the partial mapping in a connectivity-aware order, candidate
    target vertices are drawn from the frontier of the current mapping, and
    in/out-degree look-ahead prunes infeasible states.  The paper notes
    (Section 5.1) that isomorphism search should be cut off after a time-out
    rather than exhausting all permutations; {!val-iter} takes an optional
    deadline for exactly this purpose.

    The engine runs on the {!Compact} CSR kernel: int-array search state,
    O(1) degree look-ahead, bitset/binary-search adjacency probes, and no
    allocation in the inner loop (mappings are materialized as [Vmap]s only
    at the callback boundary).  The [Digraph]-typed entry points freeze
    their arguments on the way in; the [_view] entry points accept frozen
    graphs directly so the branch-and-bound search can reuse one snapshot
    across the whole tree.  Matches are enumerated in exactly the same
    order as the map-based reference engine ({!Vf2_map}): dense ids are
    assigned in ascending original-id order, ties in the pattern ordering
    and candidate enumeration resolve identically. *)

type mapping = int Digraph.Vmap.t
(** Pattern vertex [->] target vertex. *)

type outcome =
  | Exhausted  (** the whole search space was explored *)
  | Stopped  (** the callback requested an early stop *)
  | Timed_out  (** the deadline expired *)

(** Optional search instrumentation (the observability hook).

    When an [Instr.t] is passed, the engine counts candidate feasibility
    probes and backtracks in local registers and publishes them into the
    record's atomics once per search, so the same record can be shared by
    concurrent searches across domains.  Instrumentation never changes
    which matches are found or their enumeration order, and costs nothing
    beyond two register increments per candidate when absent. *)
module Instr : sig
  type t = { probes : int Atomic.t; backtracks : int Atomic.t }

  val create : unit -> t

  val probes : t -> int
  (** Candidate (pattern vertex, target vertex) pairs tested for
      feasibility. *)

  val backtracks : t -> int
  (** Search states popped after exploring an extension. *)

  val flush : t -> probes:int -> backtracks:int -> unit
  (** Adds locally-accumulated counts; used by the engines themselves. *)
end

val iter :
  ?deadline:float ->
  ?instr:Instr.t ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  (mapping -> [ `Continue | `Stop ]) ->
  outcome
(** [iter ~pattern ~target f] calls [f] on every subgraph monomorphism from
    [pattern] into [target], until [f] answers [`Stop], the optional
    wall-clock [deadline] (absolute, as given by [Unix.gettimeofday]) passes,
    or the space is exhausted. *)

val find_first : ?deadline:float -> pattern:Digraph.t -> target:Digraph.t -> unit -> mapping option
(** First monomorphism found, if any. *)

val exists : ?deadline:float -> pattern:Digraph.t -> target:Digraph.t -> unit -> bool

val find_all :
  ?deadline:float ->
  ?max_matches:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  mapping list
(** All monomorphisms (up to [max_matches], default unlimited), in discovery
    order. *)

val find_distinct_images :
  ?deadline:float ->
  ?max_matches:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  mapping list
(** Like {!find_all} but keeps a single representative per {e covered target
    edge set}: two monomorphisms that map the pattern's edges onto the same
    set of target edges lead to identical remaining graphs, so for
    decomposition branching only one needs to be explored (the cost of a
    matching may still depend on vertex roles; see
    [Noc_core.Matching]). *)

val edge_image : pattern:Digraph.t -> mapping -> Digraph.Edge.t list
(** The target edges covered by a monomorphism, sorted. *)

val is_monomorphism : pattern:Digraph.t -> target:Digraph.t -> mapping -> bool
(** Checks injectivity and edge preservation; used by tests. *)

(** {1 Approximate matching}

    Section 5.1 of the paper suggests relaxing "the requirement for perfect
    matching" so that graphs {e sufficiently close} to a library pattern are
    still detected.  An approximate monomorphism maps every pattern vertex
    injectively but tolerates up to [max_missing] pattern edges whose images
    are not present in the target; near-gossip traffic can then still be
    implemented by a Minimum Gossip Graph. *)

type approx = {
  approx_mapping : mapping;
  missing : Digraph.Edge.t list;
      (** pattern edges (in pattern vertex names) with no target edge *)
}

val iter_approx :
  ?deadline:float ->
  ?instr:Instr.t ->
  max_missing:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  (approx -> [ `Continue | `Stop ]) ->
  outcome
(** Like {!iter} but tolerating up to [max_missing] unrealized pattern
    edges.  With [max_missing = 0] it enumerates exactly the monomorphisms
    of {!iter}. *)

val find_first_approx :
  ?deadline:float ->
  max_missing:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  approx option

val find_all_approx :
  ?deadline:float ->
  ?max_matches:int ->
  max_missing:int ->
  pattern:Digraph.t ->
  target:Digraph.t ->
  unit ->
  approx list

val covered_edge_image : pattern:Digraph.t -> target:Digraph.t -> mapping -> Digraph.Edge.t list
(** Target edges actually realized by a (possibly approximate) mapping:
    images of pattern edges that exist in the target, sorted. *)

(** {1 Compact-kernel entry points}

    Same semantics and enumeration order as the functions above, but
    operating on pre-frozen {!Compact} snapshots: the pattern is a frozen
    base, the target an edge-deletion {!Compact.view}.  Mappings and missing
    edges are still expressed in {e original} vertex ids, so the results are
    interchangeable with the [Digraph] API. *)

val iter_view :
  ?deadline:float ->
  ?instr:Instr.t ->
  pattern:Compact.t ->
  target:Compact.view ->
  (mapping -> [ `Continue | `Stop ]) ->
  outcome

val find_first_view :
  ?deadline:float ->
  ?instr:Instr.t ->
  pattern:Compact.t ->
  target:Compact.view ->
  unit ->
  mapping option

val find_distinct_images_view :
  ?deadline:float ->
  ?instr:Instr.t ->
  ?max_matches:int ->
  pattern:Compact.t ->
  target:Compact.view ->
  unit ->
  mapping list

val iter_approx_view :
  ?deadline:float ->
  ?instr:Instr.t ->
  max_missing:int ->
  pattern:Compact.t ->
  target:Compact.view ->
  (approx -> [ `Continue | `Stop ]) ->
  outcome

val covered_edge_image_view :
  pattern:Compact.t -> target:Compact.view -> mapping -> Digraph.Edge.t list
