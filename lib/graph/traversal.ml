module Vset = Digraph.Vset
module Vmap = Digraph.Vmap

let bfs_distances g src =
  if not (Digraph.mem_vertex g src) then Vmap.empty
  else begin
    let dist = ref (Vmap.add src 0 Vmap.empty) in
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = Vmap.find u !dist in
      Vset.iter
        (fun v ->
          if not (Vmap.mem v !dist) then begin
            dist := Vmap.add v (du + 1) !dist;
            Queue.add v queue
          end)
        (Digraph.succ g u)
    done;
    !dist
  end

let shortest_path g src dst =
  if not (Digraph.mem_vertex g src && Digraph.mem_vertex g dst) then None
  else if src = dst then Some [ src ]
  else begin
    let parent = ref Vmap.empty in
    let visited = ref (Vset.singleton src) in
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Vset.iter
        (fun v ->
          if not (Vset.mem v !visited) then begin
            visited := Vset.add v !visited;
            parent := Vmap.add v u !parent;
            if v = dst then found := true else Queue.add v queue
          end)
        (Digraph.succ g u)
    done;
    if not !found then None
    else begin
      let rec build v acc =
        if v = src then src :: acc else build (Vmap.find v !parent) (v :: acc)
      in
      Some (build dst [])
    end
  end

let reachable g src =
  Vmap.fold (fun v _ acc -> Vset.add v acc) (bfs_distances g src) Vset.empty

let weakly_connected_components g =
  let u = Digraph.undirected_closure g in
  let seen = ref Vset.empty in
  let comps =
    Digraph.fold_vertices
      (fun v acc ->
        if Vset.mem v !seen then acc
        else begin
          let comp = reachable u v in
          seen := Vset.union !seen comp;
          comp :: acc
        end)
      g []
  in
  List.sort (fun a b -> Int.compare (Vset.cardinal b) (Vset.cardinal a)) comps

let is_weakly_connected g =
  match weakly_connected_components g with [] | [ _ ] -> true | _ -> false

(* Tarjan's strongly connected components, iterative to avoid stack
   overflows on long paths. *)
let strongly_connected_components g =
  let index = ref 0 in
  let indices = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = Stack.create () in
  let components = ref [] in
  let rec strong v =
    Hashtbl.replace indices v !index;
    Hashtbl.replace lowlink v !index;
    incr index;
    Stack.push v stack;
    Hashtbl.replace on_stack v true;
    Vset.iter
      (fun w ->
        if not (Hashtbl.mem indices w) then begin
          strong w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find indices w)))
      (Digraph.succ g v);
    if Hashtbl.find lowlink v = Hashtbl.find indices v then begin
      let comp = ref Vset.empty in
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        Hashtbl.remove on_stack w;
        comp := Vset.add w !comp;
        if w = v then continue := false
      done;
      components := !comp :: !components
    end
  in
  Digraph.fold_vertices (fun v () -> if not (Hashtbl.mem indices v) then strong v) g ();
  List.rev !components

let topological_sort g =
  let in_deg = Hashtbl.create 64 in
  Digraph.fold_vertices (fun v () -> Hashtbl.replace in_deg v (Digraph.in_degree g v)) g ();
  let queue = Queue.create () in
  Digraph.fold_vertices (fun v () -> if Digraph.in_degree g v = 0 then Queue.add v queue) g ();
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr count;
    Vset.iter
      (fun v ->
        let d = Hashtbl.find in_deg v - 1 in
        Hashtbl.replace in_deg v d;
        if d = 0 then Queue.add v queue)
      (Digraph.succ g u)
  done;
  if !count = Digraph.num_vertices g then Some (List.rev !order) else None

let is_acyclic g = match topological_sort g with Some _ -> true | None -> false

let find_cycle g =
  (* DFS with colors; returns the first back-edge cycle found. *)
  let color = Hashtbl.create 64 in
  (* 0 = white (absent), 1 = gray, 2 = black *)
  let result = ref None in
  let rec dfs path v =
    Hashtbl.replace color v 1;
    let path = v :: path in
    Vset.iter
      (fun w ->
        if !result = None then
          match Hashtbl.find_opt color w with
          | Some 1 ->
              (* back edge: cycle is the path segment from w to v *)
              let rec take acc = function
                | [] -> acc
                | x :: rest -> if x = w then x :: acc else take (x :: acc) rest
              in
              result := Some (take [] path)
          | Some _ -> ()
          | None -> dfs path w)
      (Digraph.succ g v);
    Hashtbl.replace color v 2
  in
  Digraph.fold_vertices
    (fun v () -> if !result = None && not (Hashtbl.mem color v) then dfs [] v)
    g ();
  !result

let diameter g =
  if Digraph.num_vertices g < 2 then None
  else begin
    let best = ref 0 in
    Digraph.fold_vertices
      (fun v () ->
        Vmap.iter (fun _ d -> if d > !best then best := d) (bfs_distances g v))
      g ();
    Some !best
  end

let undirected_diameter g =
  if Digraph.num_vertices g < 2 then None
  else begin
    let u = Digraph.undirected_closure g in
    let n = Digraph.num_vertices u in
    let best = ref 0 in
    let connected = ref true in
    Digraph.fold_vertices
      (fun v () ->
        let dist = bfs_distances u v in
        if Vmap.cardinal dist < n then connected := false;
        Vmap.iter (fun _ d -> if d > !best then best := d) dist)
      u ();
    if !connected then Some !best else None
  end

(* number of unordered adjacent pairs crossing the bipartition; [und] must
   already be an undirected closure, so the bisection sweeps below can reuse
   one closure instead of recomputing it per evaluation *)
let cut_size_closed und part =
  let count = ref 0 in
  Digraph.iter_edges
    (fun u v ->
      if u < v && Vset.mem u part <> Vset.mem v part then incr count)
    und;
  !count

let min_bisection_cut ?(sweeps = 8) ~rng g =
  let vs = Array.of_list (Digraph.vertex_list g) in
  let n = Array.length vs in
  if n = 0 then (Vset.empty, 0)
  else begin
    let und = Digraph.undirected_closure g in
    let half = n / 2 in
    let best_part = ref Vset.empty in
    let best_cut = ref max_int in
    for _ = 1 to max 1 sweeps do
      Noc_util.Prng.shuffle rng vs;
      let part = ref Vset.empty in
      for i = 0 to half - 1 do
        part := Vset.add vs.(i) !part
      done;
      (* greedy improvement: swap pairs that reduce the cut *)
      let improved = ref true in
      let guard = ref 0 in
      while !improved && !guard < 32 do
        improved := false;
        incr guard;
        let gain v =
          (* moving v to the other side changes the cut by (internal -
             external) undirected neighbors *)
          let internal = ref 0 and external_ = ref 0 in
          let side = Vset.mem v !part in
          Vset.iter
            (fun w ->
              if Vset.mem w !part = side then incr internal else incr external_)
            (Vset.union (Digraph.succ und v) (Digraph.pred und v));
          !internal - !external_
        in
        let inside = Vset.elements !part in
        let outside =
          List.filter (fun v -> not (Vset.mem v !part)) (Array.to_list vs)
        in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if Vset.mem a !part && not (Vset.mem b !part) then begin
                  let adj = Digraph.mem_edge und a b || Digraph.mem_edge und b a in
                  (* cut change if a and b swap sides; negative is better *)
                  let delta = gain a + gain b + (if adj then 2 else 0) in
                  if delta < 0 then begin
                    part := Vset.add b (Vset.remove a !part);
                    improved := true
                  end
                end)
              outside)
          inside
      done;
      let c = cut_size_closed und !part in
      if c < !best_cut then begin
        best_cut := c;
        best_part := !part
      end
    done;
    (!best_part, if !best_cut = max_int then 0 else !best_cut)
  end
