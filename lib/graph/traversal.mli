(** Classic graph algorithms over {!Digraph.t}.

    Used for structural analysis of ACGs and synthesized topologies:
    reachability and hop counts feed the energy model (Eq. 1 needs
    [nhops]), strongly connected components and cycle extraction feed the
    deadlock checker, and the bisection heuristic feeds the bisection
    bandwidth constraint of Section 4.2. *)

val bfs_distances : Digraph.t -> int -> int Digraph.Vmap.t
(** [bfs_distances g src] maps every vertex reachable from [src] (following
    edge direction) to its hop distance; [src] maps to 0. *)

val shortest_path : Digraph.t -> int -> int -> int list option
(** [shortest_path g src dst] is a minimum-hop directed path
    [[src; ...; dst]], or [None] if unreachable. *)

val reachable : Digraph.t -> int -> Digraph.Vset.t
(** Vertices reachable from a source, including the source itself. *)

val weakly_connected_components : Digraph.t -> Digraph.Vset.t list
(** Components of the symmetric closure, largest first. *)

val is_weakly_connected : Digraph.t -> bool
(** True for the empty graph and for graphs with one weak component. *)

val strongly_connected_components : Digraph.t -> Digraph.Vset.t list
(** Tarjan's algorithm; components in reverse topological order. *)

val topological_sort : Digraph.t -> int list option
(** [Some order] iff the graph is acyclic. *)

val is_acyclic : Digraph.t -> bool

val find_cycle : Digraph.t -> int list option
(** [find_cycle g] is [Some [v1; ...; vk]] such that [v1 -> v2 -> ... -> vk
    -> v1] are edges of [g], if any directed cycle exists. *)

val diameter : Digraph.t -> int option
(** Longest finite shortest-path distance over ordered reachable pairs
    (directed).  [None] for graphs with fewer than two vertices. *)

val undirected_diameter : Digraph.t -> int option
(** Diameter of the symmetric closure; [None] if disconnected or has fewer
    than two vertices. *)

val min_bisection_cut : ?sweeps:int -> rng:Noc_util.Prng.t -> Digraph.t -> Digraph.Vset.t * int
(** Kernighan–Lin style heuristic for minimum bisection of the symmetric
    closure: returns one half of a balanced bipartition and the number of
    unordered adjacent pairs crossing the cut.  Used for the
    bisection-bandwidth constraint check; exact bisection is NP-hard so a
    heuristic upper bound is computed, as in the paper's tool flow.

    Contract (relied on by the brute-force oracle in
    [Noc_oracle.Bisection] and its differential suite): the returned half
    has exactly ⌊n/2⌋ vertices (the empty graph yields [(empty, 0)]), the
    reported cut is exactly the crossing-pair count of the returned half,
    and — the heuristic being an upper bound — it is never smaller than
    the optimum over all ⌊n/2⌋-subsets. *)
