module Vset = Digraph.Vset
module Vmap = Digraph.Vmap

type mapping = int Vmap.t

type outcome = Exhausted | Stopped | Timed_out

exception Stop_search of outcome

(* How many search-tree nodes are expanded between deadline checks. *)
let deadline_check_period = 256

(* Pattern vertices are matched in a connectivity-aware static order: start
   from a vertex of maximum degree, then repeatedly pick the unmatched vertex
   with the most already-ordered neighbors (ties broken by degree).  This is
   the classic VF2 ordering heuristic and keeps the frontier connected for
   connected patterns. *)
let pattern_order pattern =
  let verts = Digraph.vertex_list pattern in
  match verts with
  | [] -> [||]
  | _ ->
      let n = List.length verts in
      let chosen = Hashtbl.create n in
      let order = ref [] in
      let neighbor_count v =
        let nbrs = Vset.union (Digraph.succ pattern v) (Digraph.pred pattern v) in
        Vset.fold (fun w acc -> if Hashtbl.mem chosen w then acc + 1 else acc) nbrs 0
      in
      for _ = 1 to n do
        let best = ref None in
        List.iter
          (fun v ->
            if not (Hashtbl.mem chosen v) then begin
              let key = (neighbor_count v, Digraph.degree pattern v) in
              match !best with
              | None -> best := Some (v, key)
              | Some (_, bkey) -> if key > bkey then best := Some (v, key)
            end)
          verts;
        match !best with
        | None -> ()
        | Some (v, _) ->
            Hashtbl.replace chosen v true;
            order := v :: !order
      done;
      Array.of_list (List.rev !order)

let iter ?deadline ~pattern ~target f =
  let order = pattern_order pattern in
  let np = Array.length order in
  let nodes_expanded = ref 0 in
  let check_deadline () =
    incr nodes_expanded;
    match deadline with
    | Some d when !nodes_expanded mod deadline_check_period = 0 ->
        if Unix.gettimeofday () > d then raise (Stop_search Timed_out)
    | Some _ | None -> ()
  in
  (* core: pattern -> target; used_t: target vertices already used *)
  let core = Hashtbl.create np in
  let used_t = Hashtbl.create np in
  let feasible u v =
    (* degree look-ahead *)
    Digraph.out_degree target v >= Digraph.out_degree pattern u
    && Digraph.in_degree target v >= Digraph.in_degree pattern u
    && (* every already-mapped pattern neighbor of u must have the
          corresponding target edge *)
    Vset.for_all
      (fun w ->
        match Hashtbl.find_opt core w with
        | Some w' -> Digraph.mem_edge target v w'
        | None -> true)
      (Digraph.succ pattern u)
    && Vset.for_all
         (fun w ->
           match Hashtbl.find_opt core w with
           | Some w' -> Digraph.mem_edge target w' v
           | None -> true)
         (Digraph.pred pattern u)
  in
  let candidates u =
    (* If u has an already-mapped predecessor/successor, restrict candidates
       to the corresponding target adjacency; otherwise all unused target
       vertices. *)
    let from_mapped_neighbors =
      let via_pred =
        Vset.fold
          (fun w acc ->
            match Hashtbl.find_opt core w with
            | Some w' -> Some (match acc with
                | None -> Digraph.succ target w'
                | Some s -> Vset.inter s (Digraph.succ target w'))
            | None -> acc)
          (Digraph.pred pattern u) None
      in
      Vset.fold
        (fun w acc ->
          match Hashtbl.find_opt core w with
          | Some w' -> Some (match acc with
              | None -> Digraph.pred target w'
              | Some s -> Vset.inter s (Digraph.pred target w'))
          | None -> acc)
        (Digraph.succ pattern u) via_pred
    in
    match from_mapped_neighbors with
    | Some s -> Vset.filter (fun v -> not (Hashtbl.mem used_t v)) s
    | None -> Vset.filter (fun v -> not (Hashtbl.mem used_t v)) (Digraph.vertices target)
  in
  let rec extend depth =
    if depth = np then begin
      let m = Hashtbl.fold (fun u v acc -> Vmap.add u v acc) core Vmap.empty in
      match f m with `Continue -> () | `Stop -> raise (Stop_search Stopped)
    end
    else begin
      check_deadline ();
      let u = order.(depth) in
      Vset.iter
        (fun v ->
          if feasible u v then begin
            Hashtbl.replace core u v;
            Hashtbl.replace used_t v true;
            extend (depth + 1);
            Hashtbl.remove core u;
            Hashtbl.remove used_t v
          end)
        (candidates u)
    end
  in
  if np = 0 then Exhausted
  else if np > Digraph.num_vertices target
          || Digraph.num_edges pattern > Digraph.num_edges target
  then Exhausted
  else
    match extend 0 with () -> Exhausted | exception Stop_search o -> o

let find_first ?deadline ~pattern ~target () =
  let result = ref None in
  let _ =
    iter ?deadline ~pattern ~target (fun m ->
        result := Some m;
        `Stop)
  in
  !result

let exists ?deadline ~pattern ~target () =
  match find_first ?deadline ~pattern ~target () with Some _ -> true | None -> false

let find_all ?deadline ?max_matches ~pattern ~target () =
  let acc = ref [] in
  let count = ref 0 in
  let _ =
    iter ?deadline ~pattern ~target (fun m ->
        acc := m :: !acc;
        incr count;
        match max_matches with
        | Some k when !count >= k -> `Stop
        | Some _ | None -> `Continue)
  in
  List.rev !acc

let edge_image ~pattern m =
  Digraph.fold_edges
    (fun u v acc -> (Vmap.find u m, Vmap.find v m) :: acc)
    pattern []
  |> List.sort Digraph.Edge.compare

let find_distinct_images ?deadline ?max_matches ~pattern ~target () =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let count = ref 0 in
  let _ =
    iter ?deadline ~pattern ~target (fun m ->
        let key = edge_image ~pattern m in
        if Hashtbl.mem seen key then `Continue
        else begin
          Hashtbl.replace seen key true;
          acc := m :: !acc;
          incr count;
          match max_matches with
          | Some k when !count >= k -> `Stop
          | Some _ | None -> `Continue
        end)
  in
  List.rev !acc

let is_monomorphism ~pattern ~target m =
  let injective =
    let images = Vmap.fold (fun _ v acc -> v :: acc) m [] in
    List.length (List.sort_uniq Int.compare images) = List.length images
  in
  let total =
    Vset.for_all (fun u -> Vmap.mem u m) (Digraph.vertices pattern)
  in
  injective && total
  && Digraph.fold_edges
       (fun u v ok -> ok && Digraph.mem_edge target (Vmap.find u m) (Vmap.find v m))
       pattern true

(* ---------------- approximate matching ---------------- *)

type approx = {
  approx_mapping : mapping;
  missing : Digraph.Edge.t list;
}

let iter_approx ?deadline ~max_missing ~pattern ~target f =
  if max_missing < 0 then invalid_arg "Vf2.iter_approx: negative budget";
  let order = pattern_order pattern in
  let np = Array.length order in
  let nodes_expanded = ref 0 in
  let check_deadline () =
    incr nodes_expanded;
    match deadline with
    | Some d when !nodes_expanded mod deadline_check_period = 0 ->
        if Unix.gettimeofday () > d then raise (Stop_search Timed_out)
    | Some _ | None -> ()
  in
  let core = Hashtbl.create np in
  let used_t = Hashtbl.create np in
  (* number of pattern edges between mapped vertices with no target image *)
  let misses u v =
    let count = ref 0 in
    Vset.iter
      (fun w ->
        match Hashtbl.find_opt core w with
        | Some w' -> if not (Digraph.mem_edge target v w') then incr count
        | None -> ())
      (Digraph.succ pattern u);
    Vset.iter
      (fun w ->
        match Hashtbl.find_opt core w with
        | Some w' -> if not (Digraph.mem_edge target w' v) then incr count
        | None -> ())
      (Digraph.pred pattern u);
    !count
  in
  let rec extend depth missing_so_far =
    if depth = np then begin
      let m = Hashtbl.fold (fun u v acc -> Vmap.add u v acc) core Vmap.empty in
      let missing =
        Digraph.fold_edges
          (fun u v acc ->
            if Digraph.mem_edge target (Vmap.find u m) (Vmap.find v m) then acc
            else (u, v) :: acc)
          pattern []
        |> List.sort Digraph.Edge.compare
      in
      match f { approx_mapping = m; missing } with
      | `Continue -> ()
      | `Stop -> raise (Stop_search Stopped)
    end
    else begin
      check_deadline ();
      let u = order.(depth) in
      let budget = max_missing - missing_so_far in
      Vset.iter
        (fun v ->
          if not (Hashtbl.mem used_t v) then begin
            (* relaxed degree look-ahead: missing edges may absorb the
               degree deficit *)
            let deg_ok =
              Digraph.out_degree target v >= Digraph.out_degree pattern u - budget
              && Digraph.in_degree target v >= Digraph.in_degree pattern u - budget
            in
            if deg_ok then begin
              let miss = misses u v in
              if miss <= budget then begin
                Hashtbl.replace core u v;
                Hashtbl.replace used_t v true;
                extend (depth + 1) (missing_so_far + miss);
                Hashtbl.remove core u;
                Hashtbl.remove used_t v
              end
            end
          end)
        (Digraph.vertices target)
    end
  in
  if np = 0 then Exhausted
  else if np > Digraph.num_vertices target then Exhausted
  else if Digraph.num_edges pattern - max_missing > Digraph.num_edges target then Exhausted
  else
    match extend 0 0 with () -> Exhausted | exception Stop_search o -> o

let find_first_approx ?deadline ~max_missing ~pattern ~target () =
  let result = ref None in
  let _ =
    iter_approx ?deadline ~max_missing ~pattern ~target (fun a ->
        result := Some a;
        `Stop)
  in
  !result

let find_all_approx ?deadline ?max_matches ~max_missing ~pattern ~target () =
  let acc = ref [] in
  let count = ref 0 in
  let _ =
    iter_approx ?deadline ~max_missing ~pattern ~target (fun a ->
        acc := a :: !acc;
        incr count;
        match max_matches with
        | Some k when !count >= k -> `Stop
        | Some _ | None -> `Continue)
  in
  List.rev !acc

let covered_edge_image ~pattern ~target m =
  Digraph.fold_edges
    (fun u v acc ->
      let u' = Vmap.find u m and v' = Vmap.find v m in
      if Digraph.mem_edge target u' v' then (u', v') :: acc else acc)
    pattern []
  |> List.sort Digraph.Edge.compare
