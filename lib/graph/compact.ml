type t = {
  n : int;
  verts : int array;
  succ_off : int array;
  succ_arr : int array;
  pred_off : int array;
  pred_arr : int array;
  words : int;
  adj : int64 array;
  radj : int64 array;
  n_edges : int;
}

type view = {
  base : t;
  del : int array;
  del_bits : int64 array;
  del_out : int array;
  del_in : int array;
}

let freeze g =
  let verts = Array.of_list (Digraph.vertex_list g) in
  let n = Array.length verts in
  let dense = Hashtbl.create (2 * n) in
  Array.iteri (fun i v -> Hashtbl.replace dense v i) verts;
  let succ_off = Array.make (n + 1) 0 in
  let pred_off = Array.make (n + 1) 0 in
  Digraph.iter_edges
    (fun u v ->
      let du = Hashtbl.find dense u and dv = Hashtbl.find dense v in
      succ_off.(du + 1) <- succ_off.(du + 1) + 1;
      pred_off.(dv + 1) <- pred_off.(dv + 1) + 1)
    g;
  for i = 1 to n do
    succ_off.(i) <- succ_off.(i) + succ_off.(i - 1);
    pred_off.(i) <- pred_off.(i) + pred_off.(i - 1)
  done;
  let n_edges = succ_off.(n) in
  let succ_arr = Array.make n_edges 0 in
  let pred_arr = Array.make n_edges 0 in
  let scur = Array.copy succ_off and pcur = Array.copy pred_off in
  let words = (n + 63) / 64 in
  let adj = Array.make (n * words) 0L in
  let radj = Array.make (n * words) 0L in
  (* fold_edges visits (u, v) in lexicographic order, so each succ slice is
     filled with ascending v and each pred slice with ascending u *)
  Digraph.iter_edges
    (fun u v ->
      let du = Hashtbl.find dense u and dv = Hashtbl.find dense v in
      succ_arr.(scur.(du)) <- dv;
      scur.(du) <- scur.(du) + 1;
      pred_arr.(pcur.(dv)) <- du;
      pcur.(dv) <- pcur.(dv) + 1;
      let si = (du * words) + (dv lsr 6) in
      adj.(si) <- Int64.logor adj.(si) (Int64.shift_left 1L (dv land 63));
      let pi = (dv * words) + (du lsr 6) in
      radj.(pi) <- Int64.logor radj.(pi) (Int64.shift_left 1L (du land 63)))
    g;
  { n; verts; succ_off; succ_arr; pred_off; pred_arr; words; adj; radj; n_edges }

let view base = { base; del = [||]; del_bits = [||]; del_out = [||]; del_in = [||] }

let vertex g i = g.verts.(i)

let index g v =
  let lo = ref 0 and hi = ref g.n and found = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let y = g.verts.(mid) in
    if y = v then begin
      found := mid;
      lo := !hi
    end
    else if y < v then lo := mid + 1
    else hi := mid
  done;
  !found

let out_degree_d v u =
  let g = v.base in
  g.succ_off.(u + 1) - g.succ_off.(u) - (if v.del_out = [||] then 0 else v.del_out.(u))

let in_degree_d v u =
  let g = v.base in
  g.pred_off.(u + 1) - g.pred_off.(u) - (if v.del_in = [||] then 0 else v.del_in.(u))

let[@inline] mem_base_d g u w =
  Int64.logand
    (Array.unsafe_get g.adj ((u * g.words) + (w lsr 6)))
    (Int64.shift_left 1L (w land 63))
  <> 0L

let[@inline] deleted_d v u w =
  v.del != [||]
  && Int64.logand
       (Array.unsafe_get v.del_bits ((u * v.base.words) + (w lsr 6)))
       (Int64.shift_left 1L (w land 63))
     <> 0L

let[@inline] mem_edge_d v u w = mem_base_d v.base u w && not (deleted_d v u w)

let fold_succ_d v u f acc =
  let g = v.base in
  let acc = ref acc in
  for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
    let w = g.succ_arr.(i) in
    if not (deleted_d v u w) then acc := f !acc w
  done;
  !acc

let fold_pred_d v u f acc =
  let g = v.base in
  let acc = ref acc in
  for i = g.pred_off.(u) to g.pred_off.(u + 1) - 1 do
    let w = g.pred_arr.(i) in
    if not (deleted_d v w u) then acc := f !acc w
  done;
  !acc

let mem_edge v a b =
  let u = index v.base a and w = index v.base b in
  u >= 0 && w >= 0 && mem_edge_d v u w

let num_edges v = v.base.n_edges - Array.length v.del
let num_vertices v = v.base.n

let fold_edges f v acc =
  let g = v.base in
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
      let w = g.succ_arr.(i) in
      if not (deleted_d v u w) then acc := f g.verts.(u) g.verts.(w) !acc
    done
  done;
  !acc

let degree_profile v =
  let n = v.base.n in
  let out = Array.init n (fun u -> out_degree_d v u) in
  let inn = Array.init n (fun u -> in_degree_d v u) in
  let desc a b = Int.compare b a in
  Array.sort desc out;
  Array.sort desc inn;
  (out, inn)

let delete_edges v edges =
  let g = v.base in
  let codes =
    List.filter_map
      (fun (a, b) ->
        let u = index g a and w = index g b in
        if u >= 0 && w >= 0 && mem_edge_d v u w then Some ((u * g.n) + w) else None)
      edges
    |> List.sort_uniq Int.compare
  in
  if codes = [] then v
  else begin
    let fresh = Array.of_list codes in
    let old = v.del in
    let del = Array.make (Array.length old + Array.length fresh) 0 in
    (* merge two sorted, disjoint arrays *)
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < Array.length old && !j < Array.length fresh do
      if old.(!i) < fresh.(!j) then begin
        del.(!k) <- old.(!i);
        incr i
      end
      else begin
        del.(!k) <- fresh.(!j);
        incr j
      end;
      incr k
    done;
    Array.blit old !i del !k (Array.length old - !i);
    Array.blit fresh !j del (!k + Array.length old - !i) (Array.length fresh - !j);
    let del_out = if v.del_out = [||] then Array.make g.n 0 else Array.copy v.del_out in
    let del_in = if v.del_in = [||] then Array.make g.n 0 else Array.copy v.del_in in
    let del_bits =
      if v.del_bits = [||] then Array.make (g.n * g.words) 0L else Array.copy v.del_bits
    in
    Array.iter
      (fun code ->
        let u = code / g.n and w = code mod g.n in
        del_out.(u) <- del_out.(u) + 1;
        del_in.(w) <- del_in.(w) + 1;
        let bi = (u * g.words) + (w lsr 6) in
        del_bits.(bi) <- Int64.logor del_bits.(bi) (Int64.shift_left 1L (w land 63)))
      fresh;
    { base = g; del; del_bits; del_out; del_in }
  end

let to_digraph v =
  let edges = List.rev (fold_edges (fun a b acc -> (a, b) :: acc) v []) in
  Digraph.of_edges ~vertices:(Array.to_list v.base.verts) edges
