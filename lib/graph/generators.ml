module Prng = Noc_util.Prng

let erdos_renyi ~rng ~n ~p =
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  for u = 1 to n do
    for v = 1 to n do
      if u <> v && Prng.bernoulli rng p then g := Digraph.add_edge !g u v
    done
  done;
  !g

let gnm ~rng ~n ~m =
  let all = ref [] in
  for u = 1 to n do
    for v = 1 to n do
      if u <> v then all := (u, v) :: !all
    done
  done;
  let arr = Array.of_list !all in
  Prng.shuffle rng arr;
  let m = min m (Array.length arr) in
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  for i = 0 to m - 1 do
    let u, v = arr.(i) in
    g := Digraph.add_edge !g u v
  done;
  !g

let communities ~rng ~n ~k ~p_in ~p_out =
  if k < 1 then invalid_arg "Generators.communities: need k >= 1";
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  (* round-robin membership keeps community sizes within one of each other
     for any n, k *)
  let community v = (v - 1) mod k in
  for u = 1 to n do
    for v = 1 to n do
      if u <> v then begin
        let p = if community u = community v then p_in else p_out in
        if Prng.bernoulli rng p then g := Digraph.add_edge !g u v
      end
    done
  done;
  !g

let random_dag ~rng ~n ~p =
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  for u = 1 to n do
    for v = u + 1 to n do
      if Prng.bernoulli rng p then g := Digraph.add_edge !g u v
    done
  done;
  !g

let planted ~rng ~n ~parts =
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  List.iter
    (fun part ->
      let part_verts = Digraph.vertex_list part in
      let k = List.length part_verts in
      if k > n then invalid_arg "Generators.planted: part larger than n";
      let hosts = Array.init n (fun i -> i + 1) in
      Prng.shuffle rng hosts;
      let assign = Hashtbl.create k in
      List.iteri (fun i v -> Hashtbl.replace assign v hosts.(i)) part_verts;
      Digraph.iter_edges
        (fun u v ->
          g := Digraph.add_edge !g (Hashtbl.find assign u) (Hashtbl.find assign v))
        part)
    parts;
  !g

let path n =
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  for v = 1 to n - 1 do
    g := Digraph.add_edge !g v (v + 1)
  done;
  !g

let loop n =
  if n < 2 then invalid_arg "Generators.loop: need n >= 2";
  let g = ref (path n) in
  g := Digraph.add_edge !g n 1;
  !g

let star n =
  let g = ref (Digraph.add_vertex Digraph.empty 1) in
  for v = 2 to n do
    g := Digraph.add_edge !g 1 v
  done;
  !g

let complete n =
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  for u = 1 to n do
    for v = 1 to n do
      if u <> v then g := Digraph.add_edge !g u v
    done
  done;
  !g

let bidirectional_ring n =
  if n < 2 then invalid_arg "Generators.bidirectional_ring: need n >= 2";
  let g = ref Digraph.empty in
  for v = 1 to n do
    g := Digraph.add_vertex !g v
  done;
  for v = 1 to n do
    let w = (v mod n) + 1 in
    if v <> w then g := Digraph.add_edge_pair !g v w
  done;
  !g

let mesh ~rows ~cols =
  let id r c = (r * cols) + c + 1 in
  let g = ref Digraph.empty in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      g := Digraph.add_vertex !g (id r c);
      if c + 1 < cols then g := Digraph.add_edge_pair !g (id r c) (id r (c + 1));
      if r + 1 < rows then g := Digraph.add_edge_pair !g (id r c) (id (r + 1) c)
    done
  done;
  !g

let torus ~rows ~cols =
  let id r c = (r * cols) + c + 1 in
  let g = ref (mesh ~rows ~cols) in
  if cols > 2 then
    for r = 0 to rows - 1 do
      g := Digraph.add_edge_pair !g (id r (cols - 1)) (id r 0)
    done;
  if rows > 2 then
    for c = 0 to cols - 1 do
      g := Digraph.add_edge_pair !g (id (rows - 1) c) (id 0 c)
    done;
  !g

let hypercube d =
  if d < 0 then invalid_arg "Generators.hypercube: negative dimension";
  let n = 1 lsl d in
  let g = ref Digraph.empty in
  for v = 0 to n - 1 do
    g := Digraph.add_vertex !g (v + 1)
  done;
  for v = 0 to n - 1 do
    for k = 0 to d - 1 do
      let w = v lxor (1 lsl k) in
      if v < w then g := Digraph.add_edge_pair !g (v + 1) (w + 1)
    done
  done;
  !g

let knodel n =
  if n <= 0 || n mod 2 <> 0 then invalid_arg "Generators.knodel: need positive even n";
  let half = n / 2 in
  let delta =
    let rec lg acc k = if k >= n then acc else lg (acc + 1) (k * 2) in
    lg 0 1
  in
  let delta = if 1 lsl delta > n then delta - 1 else delta in
  (* vertex numbering: (1, j) -> j + 1, (2, j) -> half + j + 1 *)
  let top j = j + 1 in
  let bottom j = half + j + 1 in
  let g = ref Digraph.empty in
  for j = 0 to half - 1 do
    g := Digraph.add_vertex (Digraph.add_vertex !g (top j)) (bottom j)
  done;
  for j = 0 to half - 1 do
    for k = 0 to max 0 (delta - 1) do
      let j' = (j + (1 lsl k) - 1) mod half in
      g := Digraph.add_edge_pair !g (top j) (bottom j')
    done
  done;
  (if n = 2 then g := Digraph.add_edge_pair !g 1 2);
  !g
