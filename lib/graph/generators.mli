(** Graph generators.

    [erdos_renyi] and [gnm] substitute for the Pajek random networks used in
    Section 5.1 (Fig. 4b); the structured constructions (mesh, ring, star,
    complete, hypercube, Knödel) are used both as library-primitive building
    blocks and as baseline topologies.  Vertices are numbered from 1, like
    the paper's figures. *)

val erdos_renyi : rng:Noc_util.Prng.t -> n:int -> p:float -> Digraph.t
(** Directed G(n, p): each ordered pair (no self-loops) independently gets an
    edge with probability [p]. *)

val gnm : rng:Noc_util.Prng.t -> n:int -> m:int -> Digraph.t
(** Directed G(n, m): exactly [min m (n(n-1))] distinct directed edges chosen
    uniformly. *)

val communities :
  rng:Noc_util.Prng.t -> n:int -> k:int -> p_in:float -> p_out:float -> Digraph.t
(** Planted-partition graph: [n] vertices split round-robin into [k]
    near-equal communities; an ordered pair gets an edge with probability
    [p_in] inside a community and [p_out] across.  With [p_in >> p_out]
    this is the clustered traffic shape of many-core ACGs — dense local
    gossip groups plus sparse global flows — the structure the
    decomposition search exploits, which makes it the scaling-tier
    benchmark generator. *)

val random_dag : rng:Noc_util.Prng.t -> n:int -> p:float -> Digraph.t
(** Acyclic: edge [i -> j] only for [i < j], present with probability [p]. *)

val planted :
  rng:Noc_util.Prng.t ->
  n:int ->
  parts:Digraph.t list ->
  Digraph.t
(** [planted ~rng ~n ~parts] embeds each graph of [parts] onto vertices drawn
    at random from [1..n] (injectively, per part) and returns the union: a
    graph that is decomposable into the given parts by construction.  Used to
    build benchmark inputs with known ground truth (Fig. 5 style). *)

val path : int -> Digraph.t
(** Directed path [1 -> 2 -> ... -> n]. *)

val loop : int -> Digraph.t
(** Directed cycle on [n >= 2] vertices ([n = 2] gives the 2-cycle). *)

val star : int -> Digraph.t
(** Out-star: edges [1 -> 2 .. 1 -> n]. *)

val complete : int -> Digraph.t
(** Complete symmetric digraph K_n (every ordered pair). *)

val bidirectional_ring : int -> Digraph.t

val mesh : rows:int -> cols:int -> Digraph.t
(** 2-D mesh with bidirectional links; vertex at (r, c) is numbered
    [r * cols + c + 1], row-major. *)

val torus : rows:int -> cols:int -> Digraph.t

val hypercube : int -> Digraph.t
(** [hypercube d] is the d-dimensional cube on [2^d] vertices (numbered from
    1) with bidirectional links. *)

val knodel : int -> Digraph.t
(** [knodel n] is the Knödel graph W(⌊log2 n⌋, n) for even [n >= 2], with
    bidirectional links: the classic minimum-gossip-graph family.
    @raise Invalid_argument for odd or non-positive [n]. *)
