module C = Compact

let certificate ?(edge_label = fun _ _ -> 0) (g : C.t) rank =
  let acc = ref [] in
  for u = 0 to g.C.n - 1 do
    for k = g.C.succ_off.(u) to g.C.succ_off.(u + 1) - 1 do
      let v = g.C.succ_arr.(k) in
      acc := (rank.(u), rank.(v), edge_label u v) :: !acc
    done
  done;
  List.sort compare !acc

exception Out_of_budget

(* One refinement pass: recolor every vertex by (old color, sorted multiset
   of (label, color) over successors, same over predecessors) and normalize
   the new colors to the ranks of the sorted distinct signatures.  The old
   color is the first signature component, so the new partition always
   refines the old one and the distinct-color count is non-decreasing;
   an unchanged count therefore means a fixed partition. *)
let refine_pass ~label (g : C.t) colors =
  let n = g.C.n in
  let signature u =
    let succs = ref [] in
    for k = g.C.succ_off.(u) to g.C.succ_off.(u + 1) - 1 do
      let v = g.C.succ_arr.(k) in
      succs := (label u v, colors.(v)) :: !succs
    done;
    let preds = ref [] in
    for k = g.C.pred_off.(u) to g.C.pred_off.(u + 1) - 1 do
      let w = g.C.pred_arr.(k) in
      preds := (label w u, colors.(w)) :: !preds
    done;
    (colors.(u), List.sort compare !succs, List.sort compare !preds)
  in
  let sigs = Array.init n signature in
  let distinct = List.sort_uniq compare (Array.to_list sigs) in
  let index = Hashtbl.create (List.length distinct) in
  List.iteri (fun i s -> Hashtbl.replace index s i) distinct;
  (Array.map (fun s -> Hashtbl.find index s) sigs, List.length distinct)

let count_colors colors =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace seen c ()) colors;
  Hashtbl.length seen

let refine ~label ~budget g colors =
  let rec loop colors ncolors =
    if !budget <= 0 then raise Out_of_budget;
    decr budget;
    let colors', ncolors' = refine_pass ~label g colors in
    if ncolors' = ncolors then colors' else loop colors' ncolors'
  in
  loop colors (count_colors colors)

(* The first smallest non-singleton cell, by (size, color id): color ids
   are signature ranks, hence isomorphism-invariant, so the branching
   target is the same cell in any relabeling of the graph. *)
let target_cell colors =
  let cells = Hashtbl.create 16 in
  Array.iteri
    (fun v c ->
      Hashtbl.replace cells c (v :: (try Hashtbl.find cells c with Not_found -> [])))
    colors;
  Hashtbl.fold
    (fun c vs best ->
      let size = List.length vs in
      if size < 2 then best
      else
        match best with
        | Some (bs, bc, _) when (bs, bc) <= (size, c) -> best
        | _ -> Some (size, c, List.rev vs))
    cells None

let canonical_order ?(edge_label = fun _ _ -> 0) ?(max_refines = 10_000) (g : C.t) =
  let n = g.C.n in
  if n = 0 then `Canonical [||]
  else begin
    let budget = ref max_refines in
    let best = ref None in
    let rec go colors =
      match target_cell colors with
      | None ->
          (* discrete: the normalized colors are a permutation of 0..n-1 *)
          let cert = certificate ~edge_label g colors in
          let keep =
            match !best with None -> true | Some (bc, _) -> cert < bc
          in
          if keep then best := Some (cert, Array.copy colors)
      | Some (_, _, cell) ->
          List.iter
            (fun v ->
              let c = Array.copy colors in
              (* individualize [v]: a fresh color above every normalized id *)
              c.(v) <- n;
              go (refine ~label:edge_label ~budget g c))
            cell
    in
    match go (refine ~label:edge_label ~budget g (Array.make n 0)) with
    | () -> (
        match !best with
        | Some (_, rank) -> `Canonical rank
        | None -> `Truncated (* unreachable: n > 0 always reaches a leaf *))
    | exception Out_of_budget -> `Truncated
  end
