(** The content-addressed result cache: canonical request key -> rendered
    response bytes.

    Keys come from {!Proto.Request.cache_key}, so identical {e and
    isomorphic} requests share an entry and hits return byte-identical
    responses.  Eviction is least-recently-used at a fixed capacity.
    Hit/miss/eviction counts are kept locally (for {!stats}) and mirrored
    into the observer's [serve.cache.hits] / [serve.cache.misses] /
    [serve.cache.evictions] counters.

    {b Persistence} is crash-only: {!snapshot} writes the whole cache to a
    checksummed, length-prefixed file (atomically, via write-then-rename),
    and {!restore} either verifies and replays the whole file or discards
    it for a cold start — it never raises and never leaves a partial
    cache, so killing the daemon at any instant costs at most the entries
    since the last snapshot.

    Not domain-safe: the daemon serves its request loop from one domain
    (the parallelism lives inside each search), which is the only client. *)

type t

type stats = { hits : int; misses : int; evictions : int; size : int }

val create : ?capacity:int -> observe:Noc_obs.Obs.t -> unit -> t
(** Default capacity 1024 entries.  Capacity 0 disables caching entirely
    (every {!find} misses, {!add} stores nothing).
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int

val find : t -> string -> (string * Proto.Response.t) option
(** Lookup, counting a hit or a miss and refreshing the entry's recency. *)

val add : t -> string -> string * Proto.Response.t -> unit
(** Insert (or overwrite), evicting the least-recently-used entries while
    over capacity.  A no-op at capacity 0. *)

val stats : t -> stats

val snapshot : t -> path:string -> unit
(** Persist every entry (oldest-first, so a restore replays them in LRU
    order) under a whole-file MD5 checksum.  The file is written to
    [path ^ ".tmp"] and renamed, so a crash mid-write leaves any previous
    snapshot intact.
    @raise Sys_error when the path is unwritable — snapshotting is an
    operator action; serving never calls it implicitly. *)

val restore : t -> path:string -> (int, [ `Msg of string ]) result
(** Verify and replay a snapshot into the cache, returning the number of
    entries restored.  Any defect — unreadable file, bad magic, checksum
    mismatch (truncation, byte corruption), malformed framing, or an entry
    whose bytes no longer parse as a {!Proto.Response.t} — discards the
    whole snapshot and returns [Error] with the cache {e unchanged} (a
    cold start when the cache was fresh).  Never raises. *)
