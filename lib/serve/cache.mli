(** The content-addressed result cache: canonical request key -> rendered
    response bytes.

    Keys come from {!Proto.Request.cache_key}, so identical {e and
    isomorphic} requests share an entry and hits return byte-identical
    responses.  Eviction is least-recently-used at a fixed capacity.
    Hit/miss/eviction counts are kept locally (for {!stats}) and mirrored
    into the observer's [serve.cache.hits] / [serve.cache.misses] /
    [serve.cache.evictions] counters.

    Not domain-safe: the daemon serves its request loop from one domain
    (the parallelism lives inside each search), which is the only client. *)

type t

type stats = { hits : int; misses : int; evictions : int; size : int }

val create : ?capacity:int -> observe:Noc_obs.Obs.t -> unit -> t
(** Default capacity 1024 entries.
    @raise Invalid_argument if [capacity < 1]. *)

val find : t -> string -> (string * Proto.Response.t) option
(** Lookup, counting a hit or a miss and refreshing the entry's recency. *)

val add : t -> string -> string * Proto.Response.t -> unit
(** Insert (or overwrite), evicting the least-recently-used entries while
    over capacity. *)

val stats : t -> stats
