module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Prng = Noc_util.Prng

type stats = {
  requests : int;
  unique : int;
  hits : int;
  misses : int;
  evictions : int;
  wall_s : float;
  rps : float;
  hit_rate : float;
  repeated_hit_rate : float;
  byte_identical : bool;
}

(* a uniformly random relabeling of the ACG's own core ids (Fisher-Yates
   over the sorted vertex list) *)
let permute ~rng acg =
  let verts =
    D.fold_vertices (fun v acc -> v :: acc) (Acg.graph acg) [] |> List.sort compare
  in
  let arr = Array.of_list verts in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  let map = Hashtbl.create n in
  List.iteri (fun i v -> Hashtbl.replace map v arr.(i)) verts;
  Acg.map_vertices (fun v -> Hashtbl.find map v) acg

let corpus_bases dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names |> List.sort compare
      |> List.filter_map (fun name ->
             let path = Filename.concat dir name in
             if Sys.is_directory path then None
             else
               match Noc_core.Acg_io.load path with
               | Ok acg -> Some acg
               | Error _ -> None)

let run ?(seed = 42) ?(cases = 12) ?corpus_dir ?cache_capacity ?library
    ?(budget = Bb.Budget.(default |> with_timeout_s (Some 2.0))) ?observe () =
  let rng = Prng.create ~seed in
  let bases =
    let loaded =
      match corpus_dir with Some dir -> corpus_bases dir | None -> []
    in
    if loaded <> [] then loaded
    else List.init cases (fun _ -> Noc_oracle.Fuzz.gen_acg ~rng)
  in
  (* per base: fresh, exact duplicate, vertex-permuted copy.  [repeated]
     marks the latter two — the half the acceptance gate measures. *)
  let stream =
    List.concat_map
      (fun acg ->
        [ (acg, false); (acg, true); (permute ~rng acg, true) ])
      bases
  in
  let daemon = Daemon.create ?cache_capacity ?observe () in
  let first_bytes : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let results, wall_s =
    Noc_util.Timer.time (fun () ->
        List.map
          (fun (acg, repeated) ->
            let o = Daemon.solve_exn daemon (Proto.Request.make ?library ~budget acg) in
            (o, repeated))
          stream)
  in
  let byte_identical =
    List.for_all
      (fun ((o : Daemon.outcome), _) ->
        match o.Daemon.status with
        | Daemon.Miss ->
            if not (Hashtbl.mem first_bytes o.Daemon.key) then
              Hashtbl.replace first_bytes o.Daemon.key o.Daemon.bytes;
            true
        | Daemon.Hit -> (
            match Hashtbl.find_opt first_bytes o.Daemon.key with
            | Some bytes -> String.equal bytes o.Daemon.bytes
            | None -> false))
      results
  in
  let c = Daemon.cache_stats daemon in
  let requests = List.length results in
  let repeated = List.filter (fun (_, r) -> r) results in
  let repeated_hits =
    List.length (List.filter (fun ((o : Daemon.outcome), _) -> o.Daemon.status = Daemon.Hit) repeated)
  in
  let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  {
    requests;
    unique = Hashtbl.length first_bytes;
    hits = c.Cache.hits;
    misses = c.Cache.misses;
    evictions = c.Cache.evictions;
    wall_s;
    rps = (if wall_s > 0.0 then float_of_int requests /. wall_s else 0.0);
    hit_rate = ratio c.Cache.hits requests;
    repeated_hit_rate = ratio repeated_hits (List.length repeated);
    byte_identical;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>replay: %d requests (%d unique) in %.3f s = %.1f req/s@ cache: %d hits / %d \
     misses / %d evictions (hit rate %.2f, repeated-half %.2f)@ hits byte-identical: \
     %b@]"
    s.requests s.unique s.wall_s s.rps s.hits s.misses s.evictions s.hit_rate
    s.repeated_hit_rate s.byte_identical
