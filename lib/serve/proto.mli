(** The typed request/response surface of the synthesis service.

    A {!Request.t} is everything one synthesis call needs: the ACG, the
    primitive library (by name, so requests serialize), the search
    {!Noc_core.Branch_bound.Budget.t} and optional bandwidth/bisection
    constraints.  A {!Response.t} is the full answer: the synthesized
    topology and routes (in {e canonical} vertex ids), the search report,
    the multi-backend comparison (custom vs 2D mesh vs sparse-Hamming) and
    provenance.

    Responses are deliberately free of volatile data (wall times, cache
    status, request ids live in {!Daemon.outcome} instead), so
    {!Response.to_string} is a pure function of the cache key: the daemon
    can hand back cached bytes and isomorphic requests receive
    byte-identical responses. *)

module Request : sig
  type t = {
    id : string;  (** client tag, echoed in the outcome; not part of the key *)
    acg : Noc_core.Acg.t;
    library : string;  (** ["default"], ["extended"] or ["minimal"] *)
    budget : Noc_core.Branch_bound.Budget.t;
    constraints : Noc_core.Constraints.t option;
  }

  val make :
    ?id:string ->
    ?library:string ->
    ?budget:Noc_core.Branch_bound.Budget.t ->
    ?constraints:Noc_core.Constraints.t ->
    Noc_core.Acg.t ->
    t
  (** Defaults: id [""], library ["default"], {!Noc_core.Branch_bound.Budget.default},
      no constraints. *)

  val cache_key : t -> string
  (** The content address: {!Noc_core.Acg.canonical_hash} of the ACG plus
      the library name, the budget's [timeout_s]/[max_nodes] and the
      constraints.  [Budget.domains] is deliberately excluded — it is an
      execution hint, and a completed search returns the same answer at any
      domain count — so a request served at [domains = 1] is a cache hit
      for the same ACG at [domains = 8]. *)

  val library_of_name : string -> Noc_primitives.Library.t option
  (** Resolves the library field; [None] for unknown names. *)
end

module Response : sig
  type backend_score = {
    backend : string;  (** ["custom"], ["mesh"] or ["sparse_hamming"] *)
    links : int;
    avg_hops : float;
    max_hops : int;
    energy_pj : float;
  }

  type provenance = {
    library : string;
    budget_timeout_s : float option;
    budget_max_nodes : int;
    canonical : bool;
        (** true when the ACG was served in canonical form; false on the
            (truncated-canonicalization) exact fallback *)
  }

  type t = {
    key : string;  (** the {!Request.cache_key} this response answers *)
    cores : int;
    flows : int;
    cost : float;  (** best decomposition cost (Eq. 4) *)
    timed_out : bool;
    constraints_met : bool;
    topology : (int * int) list;
        (** undirected links of the custom architecture as [(min, max)]
            pairs over canonical core ids, sorted *)
    routes : ((int * int) * int list) list;
        (** one route per flow, [(src, dst), path], canonical ids, sorted *)
    backends : backend_score list;  (** custom first, then mesh, then Hamming *)
    provenance : provenance;
  }

  val to_json : t -> Noc_obs.Obs.Json.t
  val to_string : t -> string
  (** [to_string r] is [Obs.Json.to_string (to_json r)]: deterministic,
      single-line — the bytes the cache stores and the daemon replies
      with. *)
end
