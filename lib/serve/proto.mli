(** The typed request/response surface of the synthesis service.

    A {!Request.t} is everything one synthesis call needs: the ACG, the
    primitive library (by name, so requests serialize), the search
    {!Noc_core.Branch_bound.Budget.t} and optional bandwidth/bisection
    constraints.  A {!Response.t} is the full answer: the synthesized
    topology and routes (in {e canonical} vertex ids), the search report,
    the multi-backend comparison (custom vs 2D mesh vs sparse-Hamming) and
    provenance.

    Responses are deliberately free of volatile data (wall times, cache
    status, request ids live in {!Daemon.outcome} instead), so
    {!Response.to_string} is a pure function of the cache key: the daemon
    can hand back cached bytes and isomorphic requests receive
    byte-identical responses. *)

module Request : sig
  type t = {
    id : string;  (** client tag, echoed in the outcome; not part of the key *)
    acg : Noc_core.Acg.t;
    library : string;  (** ["default"], ["extended"] or ["minimal"] *)
    budget : Noc_core.Branch_bound.Budget.t;
    constraints : Noc_core.Constraints.t option;
  }

  val make :
    ?id:string ->
    ?library:string ->
    ?budget:Noc_core.Branch_bound.Budget.t ->
    ?constraints:Noc_core.Constraints.t ->
    Noc_core.Acg.t ->
    t
  (** Defaults: id [""], library ["default"], {!Noc_core.Branch_bound.Budget.default},
      no constraints. *)

  val cache_key : t -> string
  (** The content address: {!Noc_core.Acg.canonical_hash} of the ACG plus
      the library name, the budget's [timeout_s]/[max_nodes] and the
      constraints.  [Budget.domains] is deliberately excluded — it is an
      execution hint, and a completed search returns the same answer at any
      domain count — so a request served at [domains = 1] is a cache hit
      for the same ACG at [domains = 8]. *)

  val library_of_name : string -> Noc_primitives.Library.t option
  (** Resolves the library field; [None] for unknown names. *)
end

(** The wire error taxonomy: every way a request can fail maps onto one of
    four classes, each with a stable [class] tag and a JSON encoding, so a
    client can always parse the reply — the daemon never answers with a
    stack trace or a closed pipe.

    - [Bad_request]: the input is unusable (unparseable ACG, self-loop,
      unknown library, oversized request) — retrying is pointless;
    - [Over_budget]: the declared deadline was unsatisfiable at admission
      (non-positive timeout) — retry with a real budget;
    - [Shed]: the admission queue was full — back off and retry;
    - [Internal]: an exception escaped the pipeline; the message is the
      exception text, the daemon survives. *)
module Error : sig
  type t =
    | Bad_request of string
    | Over_budget of string
    | Shed of string
    | Internal of string

  val class_name : t -> string
  (** ["bad_request"], ["over_budget"], ["shed"] or ["internal"]. *)

  val message : t -> string

  val counter_name : t -> string
  (** The per-class observability counter, ["serve.errors.<class>"]. *)

  val to_json : t -> Noc_obs.Obs.Json.t
  (** [{"class": ..., "message": ...}]. *)

  val to_string : t -> string

  val of_json : Noc_obs.Obs.Json.t -> t option
  (** Inverse of {!to_json}; [None] on unknown class or shape. *)
end

module Response : sig
  type backend_score = {
    backend : string;  (** ["custom"], ["mesh"] or ["sparse_hamming"] *)
    links : int;
    avg_hops : float;
    max_hops : int;
    energy_pj : float;
  }

  type provenance = {
    library : string;
    budget_timeout_s : float option;
    budget_max_nodes : int;
    canonical : bool;
        (** true when the ACG was served in canonical form; false on the
            (truncated-canonicalization) exact fallback *)
  }

  type t = {
    key : string;  (** the {!Request.cache_key} this response answers *)
    cores : int;
    flows : int;
    cost : float;  (** best decomposition cost (Eq. 4) *)
    timed_out : bool;
    degraded : bool;
        (** the answer is the greedy anytime fallback — the search found
            nothing better within its (possibly clamped) deadline *)
    gap_pct : float option;
        (** on a timed-out search, the reported cost's distance above the
            root lower bound — an upper bound on the optimality gap *)
    constraints_met : bool;
    topology : (int * int) list;
        (** undirected links of the custom architecture as [(min, max)]
            pairs over canonical core ids, sorted *)
    routes : ((int * int) * int list) list;
        (** one route per flow, [(src, dst), path], canonical ids, sorted *)
    backends : backend_score list;  (** custom first, then mesh, then Hamming *)
    provenance : provenance;
  }

  val to_json : t -> Noc_obs.Obs.Json.t
  val to_string : t -> string
  (** [to_string r] is [Obs.Json.to_string (to_json r)]: deterministic,
      single-line — the bytes the cache stores and the daemon replies
      with. *)

  val of_json : Noc_obs.Obs.Json.t -> (t, [ `Msg of string ]) result
  (** Total inverse of {!to_json} (used by the cache snapshot restore);
      malformed shapes come back as [Error], never an exception. *)

  val of_string : string -> (t, [ `Msg of string ]) result
  (** {!Noc_obs.Obs.Json.parse} composed with {!of_json}. *)
end
