module Bb = Noc_core.Branch_bound
module Acg = Noc_core.Acg
module Prng = Noc_util.Prng
module Obs = Noc_obs.Obs
module J = Obs.Json

type mix = { malformed : float; starved : float; injected : float }

let default_mix = { malformed = 0.24; starved = 0.12; injected = 0.06 }

(* One chaos request.  Request-shaped specs ride the batching path (where
   admission shedding lives); text-shaped ones go through [solve_text],
   the same funnel a service line takes. *)
type spec =
  | Well_formed of { base : int; permuted : bool }
  | Starved_dead of int  (* declared timeout 0: dead on arrival *)
  | Starved_tiny of int  (* 1 ms deadline: anytime fallback territory *)
  | Garbage of int
  | Self_loop
  | Oversized
  | Unknown_library of int
  | Injected of int

type stats = {
  requests : int;
  replies : int;
  ok : int;
  deaths : int;
  bad_request : int;
  over_budget : int;
  shed : int;
  internal : int;
  class_mismatches : int;
  unparsed_replies : int;
  hit_consistent : bool;
  byte_identical : bool;
  well_formed : int;
  well_formed_hits : int;
  well_formed_hit_rate : float;
  malformed_frac : float;
  starved_frac : float;
  injected_frac : float;
  wall_s : float;
  rps : float;
}

(* a cheap ACG above any reasonable core limit: a directed path *)
let oversized_acg n =
  Acg.of_weighted_edges (List.init (n - 1) (fun i -> (i + 1, i + 2, 1, 0.5)))

let garbage_text ~rng k =
  (* leading \255 can never start a valid token, so the parse error is
     certain whatever the tail bytes are *)
  let len = 1 + Prng.int rng (40 + (k mod 7)) in
  String.init len (fun i -> if i = 0 then '\255' else Char.chr (Prng.int rng 256))

let shuffle ~rng arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* the composition is computed by exact counts, not per-spec coin flips,
   so the declared fractions hold for any stream length *)
let build_stream ~rng ~requests ~mix ~pool ~injected_pool =
  let n = requests in
  let n_malformed = int_of_float (ceil (mix.malformed *. float_of_int n)) in
  let n_starved = int_of_float (ceil (mix.starved *. float_of_int n)) in
  let n_injected = int_of_float (ceil (mix.injected *. float_of_int n)) in
  let quarter k = (n_malformed + k) / 4 in
  let specs = ref [] in
  let push s = specs := s :: !specs in
  for k = 0 to quarter 3 - 1 do push (Garbage k) done;
  for _ = 1 to quarter 2 do push Self_loop done;
  for _ = 1 to quarter 1 do push Oversized done;
  for k = 0 to quarter 0 - 1 do push (Unknown_library (k mod pool)) done;
  for k = 0 to n_starved - 1 do
    push (if k mod 2 = 0 then Starved_dead (k mod pool) else Starved_tiny (k mod pool))
  done;
  for k = 0 to n_injected - 1 do push (Injected (k mod injected_pool)) done;
  let rest = max 0 (n - List.length !specs) in
  for k = 0 to rest - 1 do
    push (Well_formed { base = Prng.int rng pool; permuted = k mod 3 = 2 })
  done;
  let arr = Array.of_list !specs in
  shuffle ~rng arr;
  Array.to_list arr

type expected = E_ok | E_bad_request | E_over_budget | E_internal | E_shed

let expected_of_spec = function
  | Well_formed _ | Starved_tiny _ -> E_ok
  | Starved_dead _ -> E_over_budget
  | Garbage _ | Self_loop | Oversized | Unknown_library _ -> E_bad_request
  | Injected _ -> E_internal

let run ?(seed = 42) ?(requests = 1000) ?(mix = default_mix) ?(max_inflight = 8)
    ?(cache_capacity = 256) ?(pool = 16) ?(wf_timeout_s = 0.25)
    ?(observe = Obs.disabled) () =
  let rng = Prng.create ~seed in
  let injected_pool = 8 in
  let bases = Array.init pool (fun _ -> Noc_oracle.Fuzz.gen_acg ~rng) in
  let injected_bases =
    Array.init injected_pool (fun _ -> Noc_oracle.Fuzz.gen_acg ~rng)
  in
  let stream = build_stream ~rng ~requests:(max 1 requests) ~mix ~pool ~injected_pool in
  let requests = List.length stream in
  let arm = ref false in
  let config =
    {
      Daemon.default_config with
      max_inflight;
      max_cores = 32;
      max_request_bytes = 4096;
      max_timeout_s = Some 2.0;
    }
  in
  let daemon =
    Daemon.create ~cache_capacity ~config ~fault_hook:(fun () -> !arm) ~observe ()
  in
  let wf_budget = Bb.Budget.(default |> with_timeout_s (Some wf_timeout_s)) in
  let tiny_budget = Bb.Budget.(default |> with_timeout_s (Some 0.001)) in
  let dead_budget = Bb.Budget.(default |> with_timeout_s (Some 0.0)) in
  let request_of_spec = function
    | Well_formed { base; permuted } ->
        let acg = bases.(base) in
        let acg = if permuted then Replay.permute ~rng acg else acg in
        Some (Proto.Request.make ~budget:wf_budget acg)
    | Starved_tiny base -> Some (Proto.Request.make ~budget:tiny_budget bases.(base))
    | Starved_dead base -> Some (Proto.Request.make ~budget:dead_budget bases.(base))
    | Oversized -> Some (Proto.Request.make ~budget:wf_budget (oversized_acg 40))
    | Unknown_library base ->
        Some (Proto.Request.make ~library:"no-such-library" ~budget:wf_budget bases.(base))
    | Injected base -> Some (Proto.Request.make ~budget:wf_budget injected_bases.(base))
    | Garbage _ | Self_loop -> None
  in
  let text_of_spec ~rng = function
    | Garbage k -> garbage_text ~rng k
    | Self_loop -> "3 3 5 1.0\n"
    | _ -> assert false
  in
  (* accounting *)
  let replies = ref 0 and ok = ref 0 and deaths = ref 0 in
  let bad_request = ref 0 and over_budget = ref 0 and shed = ref 0 and internal = ref 0 in
  let class_mismatches = ref 0 and unparsed = ref 0 in
  let hit_consistent = ref true and byte_identical = ref true in
  let wf_total = ref 0 and wf_hits = ref 0 in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let record_reply ~spec ~expect (r : Daemon.reply) =
    incr replies;
    (* every reply must render to a wire line a client can parse back *)
    let wire =
      match r with
      | Ok o ->
          J.to_string (J.Obj [ ("id", J.Str o.Daemon.request_id);
                               ("response", Proto.Response.to_json o.Daemon.response) ])
      | Error e -> J.to_string (J.Obj [ ("error", Proto.Error.to_json e) ])
    in
    (match J.parse wire with Ok _ -> () | Error _ -> incr unparsed);
    let got =
      match r with
      | Ok _ -> E_ok
      | Error (Proto.Error.Bad_request _) -> E_bad_request
      | Error (Proto.Error.Over_budget _) -> E_over_budget
      | Error (Proto.Error.Shed _) -> E_shed
      | Error (Proto.Error.Internal _) -> E_internal
    in
    (match got with
    | E_ok -> incr ok
    | E_bad_request -> incr bad_request
    | E_over_budget -> incr over_budget
    | E_shed -> incr shed
    | E_internal -> incr internal);
    if got <> expect then incr class_mismatches;
    (* the well-formed subset keeps its cache contract under chaos: a key
       seen before must hit with the first miss's exact bytes, a fresh key
       must miss *)
    match (r, spec) with
    | Ok o, (Well_formed _ | Starved_tiny _) -> (
        incr wf_total;
        match Hashtbl.find_opt seen o.Daemon.key with
        | Some first ->
            if o.Daemon.status <> Daemon.Hit then hit_consistent := false;
            incr wf_hits;
            if not (String.equal first o.Daemon.bytes) then byte_identical := false
        | None ->
            if o.Daemon.status <> Daemon.Miss then hit_consistent := false;
            Hashtbl.replace seen o.Daemon.key o.Daemon.bytes)
    | _ -> ()
  in
  let dispatch_batch batch =
    (* batch = (spec, request) list in submission order; the daemon sheds
       members beyond max_inflight, which is then their expected class *)
    let specs = List.map fst batch in
    match Daemon.serve_batch daemon (List.map snd batch) with
    | rs ->
        List.iteri
          (fun i (spec, r) ->
            let expect = if i >= max_inflight then E_shed else expected_of_spec spec in
            record_reply ~spec ~expect r)
          (List.combine specs rs)
    | exception _ -> deaths := !deaths + List.length batch
  in
  let run_stream () =
    let batch = ref [] and batch_len = ref 0 in
    let target = ref (1 + Prng.int rng (2 * max_inflight)) in
    let flush () =
      if !batch <> [] then begin
        dispatch_batch (List.rev !batch);
        batch := [];
        batch_len := 0;
        target := 1 + Prng.int rng (2 * max_inflight)
      end
    in
    List.iter
      (fun spec ->
        match spec with
        (* text-shaped and fault-injected specs dispatch solo without
           flushing the pending batch — they never touch the batch state,
           and keeping the batch open lets it actually reach targets
           beyond [max_inflight], which is what exercises shedding *)
        | Garbage _ | Self_loop -> (
            let text = text_of_spec ~rng spec in
            match Daemon.solve_text daemon ~id:"chaos" text with
            | r -> record_reply ~spec ~expect:(expected_of_spec spec) r
            | exception _ -> incr deaths)
        | Injected _ -> (
            (* the fault window covers exactly this request *)
            arm := true;
            let r =
              match request_of_spec spec with
              | Some req -> ( try Some (Daemon.solve daemon req) with _ -> None)
              | None -> None
            in
            arm := false;
            match r with
            | Some r -> record_reply ~spec ~expect:E_internal r
            | None -> incr deaths)
        | _ -> (
            match request_of_spec spec with
            | Some req ->
                batch := (spec, req) :: !batch;
                incr batch_len;
                if !batch_len >= !target then flush ()
            | None -> assert false))
      stream;
    flush ()
  in
  let (), wall_s = Noc_util.Timer.time run_stream in
  let count p = List.length (List.filter p stream) in
  let frac k = float_of_int k /. float_of_int requests in
  {
    requests;
    replies = !replies;
    ok = !ok;
    deaths = !deaths;
    bad_request = !bad_request;
    over_budget = !over_budget;
    shed = !shed;
    internal = !internal;
    class_mismatches = !class_mismatches;
    unparsed_replies = !unparsed;
    hit_consistent = !hit_consistent;
    byte_identical = !byte_identical;
    well_formed = !wf_total;
    well_formed_hits = !wf_hits;
    well_formed_hit_rate =
      (if !wf_total = 0 then 0.0 else float_of_int !wf_hits /. float_of_int !wf_total);
    malformed_frac =
      frac
        (count (function
          | Garbage _ | Self_loop | Oversized | Unknown_library _ -> true
          | _ -> false));
    starved_frac =
      frac (count (function Starved_dead _ | Starved_tiny _ -> true | _ -> false));
    injected_frac = frac (count (function Injected _ -> true | _ -> false));
    wall_s;
    rps = (if wall_s > 0.0 then float_of_int requests /. wall_s else 0.0);
  }

let gate s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if s.deaths > 0 then fail "%d request(s) killed the daemon" s.deaths
  else if s.replies <> s.requests then
    fail "%d requests but only %d typed replies" s.requests s.replies
  else if s.unparsed_replies > 0 then
    fail "%d reply/replies did not parse back as JSON" s.unparsed_replies
  else if s.class_mismatches > 0 then
    fail "%d reply/replies had an unexpected error class" s.class_mismatches
  else if not s.hit_consistent then
    fail "well-formed subset lost its cache hit pattern under chaos"
  else if not s.byte_identical then
    fail "a well-formed cache hit was not byte-identical to its first miss"
  else if s.malformed_frac < 0.2 then
    fail "malformed fraction %.2f below the 0.20 floor" s.malformed_frac
  else if s.starved_frac < 0.1 then
    fail "starved fraction %.2f below the 0.10 floor" s.starved_frac
  else if s.injected_frac < 0.05 then
    fail "injected-fault fraction %.2f below the 0.05 floor" s.injected_frac
  else Ok ()

let pp ppf s =
  Format.fprintf ppf
    "@[<v>chaos: %d requests in %.3f s = %.1f req/s, %d daemon death(s)@ replies: %d \
     ok / %d bad_request / %d over_budget / %d shed / %d internal (%d typed of %d)@ \
     mix: %.0f%% malformed, %.0f%% starved, %.0f%% injected@ well-formed subset: %d \
     requests, hit rate %.2f, hit pattern %s, bytes %s@]"
    s.requests s.wall_s s.rps s.deaths s.ok s.bad_request s.over_budget s.shed
    s.internal s.replies s.requests
    (100.0 *. s.malformed_frac)
    (100.0 *. s.starved_frac)
    (100.0 *. s.injected_frac)
    s.well_formed s.well_formed_hit_rate
    (if s.hit_consistent then "preserved" else "BROKEN")
    (if s.byte_identical then "identical" else "DIVERGED")

let to_json s =
  J.Obj
    [
      ("requests", J.Int s.requests);
      ("replies", J.Int s.replies);
      ("ok", J.Int s.ok);
      ("deaths", J.Int s.deaths);
      ("bad_request", J.Int s.bad_request);
      ("over_budget", J.Int s.over_budget);
      ("shed", J.Int s.shed);
      ("internal", J.Int s.internal);
      ("class_mismatches", J.Int s.class_mismatches);
      ("unparsed_replies", J.Int s.unparsed_replies);
      ("hit_consistent", J.Bool s.hit_consistent);
      ("byte_identical", J.Bool s.byte_identical);
      ("well_formed_hit_rate", J.Float s.well_formed_hit_rate);
      ("malformed_frac", J.Float s.malformed_frac);
      ("starved_frac", J.Float s.starved_frac);
      ("injected_frac", J.Float s.injected_frac);
      ("wall_s", J.Float s.wall_s);
      ("rps", J.Float s.rps);
    ]
