(** The replay load driver: hammer a fresh daemon with a seeded request
    stream derived from the fuzz corpus and measure throughput and cache
    behaviour.

    The stream interleaves, per base ACG, one fresh request, one exact
    duplicate and one vertex-permuted copy — so two thirds of the stream
    (the "repeated half") should hit the cache, the permuted copies only
    via canonicalization.  Every hit's bytes are compared against the
    original miss's: {!stats.byte_identical} must come back [true]. *)

type stats = {
  requests : int;
  unique : int;  (** distinct cache keys = expected misses *)
  hits : int;
  misses : int;
  evictions : int;
  wall_s : float;
  rps : float;  (** requests / wall_s *)
  hit_rate : float;  (** hits / requests *)
  repeated_hit_rate : float;
      (** hits over the duplicated + permuted requests only — the
          acceptance gate ([>= 0.5]) *)
  byte_identical : bool;
      (** every hit returned exactly the bytes of its key's first miss *)
}

val permute : rng:Noc_util.Prng.t -> Noc_core.Acg.t -> Noc_core.Acg.t
(** A uniformly random relabeling of the ACG over its own core ids — an
    isomorphic copy whose canonical hash must match the original's.  Also
    used by the benchkit serve stage to build its request mix. *)

val run :
  ?seed:int ->
  ?cases:int ->
  ?corpus_dir:string ->
  ?cache_capacity:int ->
  ?library:string ->
  ?budget:Noc_core.Branch_bound.Budget.t ->
  ?observe:Noc_obs.Obs.t ->
  unit ->
  stats
(** [run ()] drives [3 * cases] requests (default [cases = 12], seed 42)
    through a fresh daemon.  Base ACGs come from the seeded fuzz-corpus
    generator ({!Noc_oracle.Fuzz.gen_acg}); with [corpus_dir] they are
    instead loaded from every readable ACG file in that directory (sorted
    by name; unreadable files are skipped, and the generator fills in when
    the directory yields nothing). *)

val pp : Format.formatter -> stats -> unit
