module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Syn = Noc_core.Synthesis
module Edge_map = D.Edge_map

let grid_dims n =
  let n = max 1 n in
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  let rows = (n + cols - 1) / cols in
  (rows, cols)

(* the grid (and the shared floorplan below) must cover every core id the
   ACG mentions, so size by the maximum id, not the core count *)
let max_core_id acg = D.fold_vertices (fun v m -> max v m) (Acg.graph acg) 1

let mesh acg =
  let rows, cols = grid_dims (max_core_id acg) in
  Syn.mesh ~rows ~cols acg

(* Sparse-Hamming-style topology: node (r, c) is core [r * cols + c + 1]
   (row-major, 1-based, the same convention as [Syn.mesh]), linked to the
   nodes at power-of-two column offsets in its row and power-of-two row
   offsets in its column.  The grid is fully populated ([rows * cols]
   cores), so every greedy route below only crosses existing links. *)
let sparse_hamming acg =
  let rows, cols = grid_dims (max_core_id acg) in
  let node r c = (r * cols) + c + 1 in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let k = ref 1 in
      while c + !k < cols do
        edges := (node r c, node r (c + !k)) :: !edges;
        k := !k * 2
      done;
      let k = ref 1 in
      while r + !k < rows do
        edges := (node r c, node (r + !k) c) :: !edges;
        k := !k * 2
      done
    done
  done;
  let topology = D.of_edges !edges in
  (* largest power-of-two step toward the target coordinate *)
  let rec steps_toward cur target acc =
    if cur = target then List.rev acc
    else
      let delta = target - cur in
      let mag = abs delta in
      let step = ref 1 in
      while !step * 2 <= mag do
        step := !step * 2
      done;
      let next = if delta > 0 then cur + !step else cur - !step in
      steps_toward next target (next :: acc)
  in
  let route src dst =
    let rs = (src - 1) / cols and cs = (src - 1) mod cols in
    let rd = (dst - 1) / cols and cd = (dst - 1) mod cols in
    let row_fixed = List.map (fun c -> node rs c) (steps_toward cs cd []) in
    let col_fixed = List.map (fun r -> node r cd) (steps_toward rs rd []) in
    (src :: row_fixed) @ col_fixed
  in
  let routes =
    D.fold_edges
      (fun u v acc -> Edge_map.add (u, v) (route u v) acc)
      (Acg.graph acg) Edge_map.empty
  in
  Syn.make ~topology ~routes ()

let score ~tech ~fp ~name acg arch =
  {
    Proto.Response.backend = name;
    links = Syn.link_count arch;
    avg_hops = Syn.avg_hops acg arch;
    max_hops = Syn.max_hops arch;
    energy_pj = Syn.total_energy ~tech ~fp acg arch;
  }

let compare_all acg ~custom =
  let tech = Noc_energy.Technology.cmos_180nm in
  (* mesh/Hamming routes may ride through padding cores beyond the ACG's
     maximum id, so the shared floorplan places the whole grid *)
  let rows, cols = grid_dims (max_core_id acg) in
  let fp =
    Noc_energy.Floorplan.grid ~cols
      (Noc_energy.Floorplan.uniform_cores ~n:(rows * cols) ~size_mm:2.0)
  in
  [
    score ~tech ~fp ~name:"custom" acg custom;
    score ~tech ~fp ~name:"mesh" acg (mesh acg);
    score ~tech ~fp ~name:"sparse_hamming" acg (sparse_hamming acg);
  ]
