(** The chaos harness: hammer one daemon with a seeded adversarial request
    stream and verify the crash-only contract survives.

    The stream is composed by exact counts from {!mix} — malformed inputs
    (garbage bytes, self-loops, oversized ACGs, unknown libraries),
    starved budgets (dead-on-arrival zero deadlines and 1 ms anytime
    deadlines), fault-injected requests (the daemon's [fault_hook] seam is
    armed for exactly that request, so the compute path raises), and
    well-formed requests drawn from a fixed pool (with exact and
    vertex-permuted duplicates) — then seeded-shuffled and driven through
    the daemon in randomly sized batches, so the [max_inflight] admission
    bound sheds the overflow of large bursts.

    The contract checked per request: the daemon never dies, every request
    gets exactly one typed reply, the reply renders to parseable JSON, its
    error class is the one its spec predicts (shed position beats spec),
    and the well-formed subset keeps its cache behaviour — a repeated key
    must hit with the first miss's exact bytes, a fresh key must miss —
    even with faults firing around it. *)

(** Stream composition as fractions of the total (exact counts, not coin
    flips).  The remainder is well-formed.  {!default_mix} is 24% /
    12% / 6%, above the acceptance floors (20% / 10% / 5%). *)
type mix = { malformed : float; starved : float; injected : float }

val default_mix : mix

type stats = {
  requests : int;
  replies : int;  (** typed replies produced; the gate demands [= requests] *)
  ok : int;
  deaths : int;  (** dispatches that raised past the daemon; gate demands 0 *)
  bad_request : int;
  over_budget : int;
  shed : int;
  internal : int;
  class_mismatches : int;  (** replies whose class differed from the spec's *)
  unparsed_replies : int;  (** wire lines that failed to parse back *)
  hit_consistent : bool;
      (** the well-formed subset hit exactly when its key had been served *)
  byte_identical : bool;  (** every well-formed hit returned the first miss's bytes *)
  well_formed : int;
  well_formed_hits : int;
  well_formed_hit_rate : float;
  malformed_frac : float;
  starved_frac : float;
  injected_frac : float;
  wall_s : float;
  rps : float;
}

val run :
  ?seed:int ->
  ?requests:int ->
  ?mix:mix ->
  ?max_inflight:int ->
  ?cache_capacity:int ->
  ?pool:int ->
  ?wf_timeout_s:float ->
  ?observe:Noc_obs.Obs.t ->
  unit ->
  stats
(** [run ()] drives [requests] (default 1000, seed 42) chaos requests
    through a fresh daemon configured with [max_inflight] (default 8),
    [max_cores = 32], a 4 KiB request-size limit and a 2 s deadline cap.
    [pool] (default 16) well-formed base ACGs come from the seeded fuzz
    generator; [wf_timeout_s] (default 0.25) is their search deadline.
    Deterministic for a fixed seed up to wall-clock-dependent search
    outcomes, which the checked contract does not depend on. *)

val gate : stats -> (unit, string) result
(** The acceptance gate: zero deaths, a typed parseable reply per request,
    expected error classes, preserved well-formed cache behaviour, and mix
    floors (>= 20% malformed, >= 10% starved, >= 5% injected). *)

val pp : Format.formatter -> stats -> unit
val to_json : stats -> Noc_obs.Obs.Json.t
