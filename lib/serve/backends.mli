(** Regular-topology alternatives scored against the synthesized custom
    architecture, so every service response is a comparison rather than a
    single point (Section 5.2's mesh baseline, plus a sparse-Hamming-style
    regular graph after Iff et al.).

    All three architectures are scored with the same Eq. 1/Eq. 5 energy
    model on the same shared grid floorplan (cores at identical positions),
    so the numbers are directly comparable. *)

val grid_dims : int -> int * int
(** [grid_dims n] is a near-square [(rows, cols)] with [rows * cols >= n]
    and [cols = ceil (sqrt n)]. *)

val mesh : Noc_core.Acg.t -> Noc_core.Synthesis.t
(** The standard 2D-mesh baseline ({!Noc_core.Synthesis.mesh}) sized by
    {!grid_dims} over the ACG's maximum core id, with XY routing. *)

val sparse_hamming : Noc_core.Acg.t -> Noc_core.Synthesis.t
(** A sparse-Hamming-style regular topology on the same grid: cores are
    placed row-major and linked to the cores at power-of-two offsets along
    their row and their column (the per-dimension hypercube connectivity a
    Hamming graph's cliques sparsify to).  Routes fix the column first,
    then the row, taking the largest power-of-two step available — a
    deterministic greedy that needs at most [log2 cols + log2 rows] hops
    per flow. *)

val score :
  tech:Noc_energy.Technology.t ->
  fp:Noc_energy.Floorplan.t ->
  name:string ->
  Noc_core.Acg.t ->
  Noc_core.Synthesis.t ->
  Proto.Response.backend_score

val compare_all :
  Noc_core.Acg.t -> custom:Noc_core.Synthesis.t -> Proto.Response.backend_score list
(** Scores [custom], the mesh and the sparse-Hamming alternative (in that
    order) on a shared 180nm grid floorplan. *)
