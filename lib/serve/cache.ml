module Obs = Noc_obs.Obs

type entry = { value : string * Proto.Response.t; mutable last_use : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  c_hits : Obs.Counter.t;
  c_misses : Obs.Counter.t;
  c_evictions : Obs.Counter.t;
}

type stats = { hits : int; misses : int; evictions : int; size : int }

let create ?(capacity = 1024) ~observe () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    c_hits = Obs.counter observe "serve.cache.hits";
    c_misses = Obs.counter observe "serve.cache.misses";
    c_evictions = Obs.counter observe "serve.cache.evictions";
  }

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      Obs.Counter.incr t.c_hits;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr t.c_misses;
      None

(* O(n) victim scan: capacities are small (hundreds to a few thousand
   entries) and evictions only happen once the cache is full *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e best ->
        match best with
        | Some (_, b) when b.last_use <= e.last_use -> best
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr t.c_evictions

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some e -> touch t e
  | None -> ());
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table key { value; last_use = t.tick };
  while Hashtbl.length t.table > t.capacity do
    evict_lru t
  done

let stats (t : t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; size = Hashtbl.length t.table }
