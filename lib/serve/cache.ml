module Obs = Noc_obs.Obs

type entry = { value : string * Proto.Response.t; mutable last_use : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  c_hits : Obs.Counter.t;
  c_misses : Obs.Counter.t;
  c_evictions : Obs.Counter.t;
}

type stats = { hits : int; misses : int; evictions : int; size : int }

let create ?(capacity = 1024) ~observe () =
  if capacity < 0 then invalid_arg "Cache.create: capacity must be >= 0";
  {
    capacity;
    table = Hashtbl.create (min (max capacity 1) 64);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    c_hits = Obs.counter observe "serve.cache.hits";
    c_misses = Obs.counter observe "serve.cache.misses";
    c_evictions = Obs.counter observe "serve.cache.evictions";
  }

let capacity t = t.capacity

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      Obs.Counter.incr t.c_hits;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr t.c_misses;
      None

(* O(n) victim scan: capacities are small (hundreds to a few thousand
   entries) and evictions only happen once the cache is full *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e best ->
        match best with
        | Some (_, b) when b.last_use <= e.last_use -> best
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr t.c_evictions

let add t key value =
  (* capacity 0 = caching disabled: store nothing, count nothing *)
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table key with
    | Some e -> touch t e
    | None -> ());
    t.tick <- t.tick + 1;
    Hashtbl.replace t.table key { value; last_use = t.tick };
    while Hashtbl.length t.table > t.capacity do
      evict_lru t
    done
  end

let stats (t : t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; size = Hashtbl.length t.table }

(* ------------------------------------------------------------------ *)
(* Crash-only persistence.

   Snapshot layout (all lengths in bytes, entries oldest-first so a
   restore replays them in LRU order):

     nocsynth-cache 1 <n>\n
     <key_len> <bytes_len>\n<key><bytes>\n     (n times)
     md5 <hex digest of everything above>\n

   The trailing whole-file digest makes truncation and byte corruption
   detectable: restore verifies it before touching the cache, parses every
   entry (responses must round-trip through Proto.Response.of_string), and
   only then inserts — so a bad snapshot is discarded for a cold start and
   restore never raises and never leaves a partial cache. *)

let magic = "nocsynth-cache 1"

let snapshot t ~path =
  let entries =
    Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.table []
    |> List.sort (fun (_, a) (_, b) -> compare a.last_use b.last_use)
  in
  let body = Buffer.create 4096 in
  Buffer.add_string body (Printf.sprintf "%s %d\n" magic (List.length entries));
  List.iter
    (fun (key, e) ->
      let bytes = fst e.value in
      Buffer.add_string body
        (Printf.sprintf "%d %d\n" (String.length key) (String.length bytes));
      Buffer.add_string body key;
      Buffer.add_string body bytes;
      Buffer.add_char body '\n')
    entries;
  let body = Buffer.contents body in
  let digest = Digest.to_hex (Digest.string body) in
  (* write-then-rename: a crash mid-snapshot leaves the old file intact *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc body;
      output_string oc (Printf.sprintf "md5 %s\n" digest));
  Sys.rename tmp path

let restore t ~path =
  let fail fmt = Printf.ksprintf (fun m -> Error (`Msg m)) fmt in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> fail "unreadable snapshot: %s" m
  | text -> (
      let trailer = Printf.sprintf "md5 %s\n" in
      let digest_line_len = String.length (trailer (String.make 32 '0')) in
      if String.length text < digest_line_len then fail "truncated snapshot %s" path
      else
        let body = String.sub text 0 (String.length text - digest_line_len) in
        let claimed = String.sub text (String.length body) digest_line_len in
        if not (String.equal claimed (trailer (Digest.to_hex (Digest.string body))))
        then fail "checksum mismatch in snapshot %s: cold start" path
        else
          (* checksum holds; parse strictly, collecting entries before any
             insertion so a malformed body can still be discarded whole *)
          let pos = ref 0 in
          let len = String.length body in
          let read_line () =
            match String.index_from_opt body !pos '\n' with
            | None -> None
            | Some nl ->
                let line = String.sub body !pos (nl - !pos) in
                pos := nl + 1;
                Some line
          in
          let read_exact n =
            if !pos + n > len then None
            else begin
              let s = String.sub body !pos n in
              pos := !pos + n;
              Some s
            end
          in
          let header = read_line () in
          match header with
          | Some h when String.length h > String.length magic
                        && String.sub h 0 (String.length magic) = magic -> (
              match int_of_string_opt (String.trim (String.sub h (String.length magic)
                                                      (String.length h - String.length magic)))
              with
              | None -> fail "malformed snapshot header %S" h
              | Some n ->
                  let rec entries acc i =
                    if i = n then
                      if !pos = len then Ok (List.rev acc)
                      else fail "trailing garbage in snapshot %s" path
                    else
                      match read_line () with
                      | None -> fail "truncated entry header in %s" path
                      | Some sizes -> (
                          match String.split_on_char ' ' sizes with
                          | [ klen; blen ] -> (
                              match (int_of_string_opt klen, int_of_string_opt blen) with
                              | Some klen, Some blen when klen >= 0 && blen >= 0 -> (
                                  match (read_exact klen, read_exact blen, read_exact 1) with
                                  | Some key, Some bytes, Some "\n" -> (
                                      match Proto.Response.of_string bytes with
                                      | Ok resp -> entries ((key, bytes, resp) :: acc) (i + 1)
                                      | Error (`Msg m) ->
                                          fail "unparseable cached response in %s: %s" path m)
                                  | _ -> fail "truncated entry body in %s" path)
                              | _ -> fail "malformed entry sizes %S" sizes)
                          | _ -> fail "malformed entry sizes %S" sizes)
                  in
                  (match entries [] 0 with
                  | Error e -> Error e
                  | Ok parsed ->
                      List.iter (fun (key, bytes, resp) -> add t key (bytes, resp)) parsed;
                      Ok (List.length parsed)))
          | _ -> fail "not a %s snapshot: %s" magic path)
