module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Syn = Noc_core.Synthesis
module Edge_map = D.Edge_map
module Obs = Noc_obs.Obs
module J = Obs.Json

type config = {
  max_inflight : int;
  max_cores : int;
  max_request_bytes : int;
  default_timeout_s : float option;
  max_timeout_s : float option;
}

let default_config =
  {
    max_inflight = 64;
    max_cores = 4096;
    max_request_bytes = 1 lsl 20;
    default_timeout_s = None;
    max_timeout_s = None;
  }

type error_stats = {
  replies : int;
  ok : int;
  bad_request : int;
  over_budget : int;
  shed : int;
  internal : int;
}

type t = {
  cache : Cache.t;
  observe : Obs.t;
  config : config;
  fault_hook : (unit -> bool) option;
  c_requests : Obs.Counter.t;
  c_replies : Obs.Counter.t;
  c_ok : Obs.Counter.t;
  c_errors : Obs.Counter.t;
  c_shed : Obs.Counter.t;
  mutable replies : int;
  mutable ok : int;
  mutable bad_request : int;
  mutable over_budget : int;
  mutable shed : int;
  mutable internal : int;
}

type status = Hit | Miss

type outcome = {
  request_id : string;
  key : string;
  response : Proto.Response.t;
  bytes : string;
  status : status;
  wall_s : float;
}

type reply = (outcome, Proto.Error.t) result

exception Injected_fault

let create ?cache_capacity ?(config = default_config) ?fault_hook
    ?(observe = Obs.disabled) () =
  {
    cache = Cache.create ?capacity:cache_capacity ~observe ();
    observe;
    config;
    fault_hook;
    c_requests = Obs.counter observe "serve.requests";
    c_replies = Obs.counter observe "serve.replies";
    c_ok = Obs.counter observe "serve.ok";
    c_errors = Obs.counter observe "serve.errors";
    c_shed = Obs.counter observe "serve.shed";
    replies = 0;
    ok = 0;
    bad_request = 0;
    over_budget = 0;
    shed = 0;
    internal = 0;
  }

let cache_stats t = Cache.stats t.cache
let cache t = t.cache
let config t = t.config

let error_stats t =
  {
    replies = t.replies;
    ok = t.ok;
    bad_request = t.bad_request;
    over_budget = t.over_budget;
    shed = t.shed;
    internal = t.internal;
  }

(* every reply, success or failure, funnels through here: the obs counters
   and the local mirror can never disagree with what went on the wire *)
let account t (r : reply) =
  t.replies <- t.replies + 1;
  Obs.Counter.incr t.c_replies;
  (match r with
  | Ok _ ->
      t.ok <- t.ok + 1;
      Obs.Counter.incr t.c_ok
  | Error e -> (
      Obs.Counter.incr t.c_errors;
      Obs.Counter.incr (Obs.counter t.observe (Proto.Error.counter_name e));
      match e with
      | Proto.Error.Bad_request _ -> t.bad_request <- t.bad_request + 1
      | Proto.Error.Over_budget _ -> t.over_budget <- t.over_budget + 1
      | Proto.Error.Shed _ ->
          t.shed <- t.shed + 1;
          Obs.Counter.incr t.c_shed
      | Proto.Error.Internal _ -> t.internal <- t.internal + 1));
  r

exception Bad of string

let compute t (req : Proto.Request.t) ~key =
  (match t.fault_hook with
  | Some hook when hook () -> raise Injected_fault
  | _ -> ());
  let library =
    match Proto.Request.library_of_name req.library with
    | Some l -> l
    | None -> raise (Bad (Printf.sprintf "unknown library %S" req.library))
  in
  (* synthesize on the canonical relabeling: the search is deterministic,
     so every ACG isomorphic to this one produces these exact bytes *)
  let canonical, acg =
    match Acg.canonical_form req.acg with
    | Some (acg, _mapping) -> (true, acg)
    | None -> (false, req.acg)
  in
  (* the deadline guard: any finite wall budget runs with the greedy
     anytime fallback seeded, so exhaustion downgrades to a feasible
     answer with a reported gap instead of overrunning or failing *)
  let options =
    {
      Bb.default_options with
      constraints = req.constraints;
      fallback = req.budget.Bb.Budget.timeout_s <> None;
    }
  in
  let d, stats =
    Bb.decompose ~options ~budget:req.budget ~observe:t.observe ~library acg
  in
  let arch = Syn.custom acg d in
  let topology =
    D.fold_edges
      (fun u v acc -> (min u v, max u v) :: acc)
      arch.Syn.topology []
    |> List.sort_uniq compare
  in
  let routes = Edge_map.bindings arch.Syn.routes in
  {
    Proto.Response.key;
    cores = Acg.num_cores acg;
    flows = Acg.num_flows acg;
    cost = stats.Bb.best_cost;
    timed_out = stats.Bb.timed_out;
    degraded = stats.Bb.fallback_used;
    gap_pct = stats.Bb.gap_pct;
    constraints_met = stats.Bb.constraints_met;
    topology;
    routes;
    backends = Backends.compare_all acg ~custom:arch;
    provenance =
      {
        library = req.library;
        budget_timeout_s = req.budget.Bb.Budget.timeout_s;
        budget_max_nodes = req.budget.Bb.Budget.max_nodes;
        canonical;
      };
  }

(* The isolation funnel: admission guards first (cheap, typed), then the
   pipeline under a catch-all — any escaping exception becomes an
   [Internal] reply, never a dead daemon.  Error replies are not cached:
   an injected or transient fault must not poison the content-addressed
   store. *)
let solve t (req : Proto.Request.t) : reply =
  Obs.Counter.incr t.c_requests;
  account t
    (if Bb.Budget.starved req.budget then
       Error
         (Proto.Error.Over_budget
            (Printf.sprintf "declared timeout %g s is already expired"
               (Option.value ~default:0.0 req.budget.Bb.Budget.timeout_s)))
     else if Acg.num_cores req.acg > t.config.max_cores then
       Error
         (Proto.Error.Bad_request
            (Printf.sprintf "ACG has %d cores, limit is %d"
               (Acg.num_cores req.acg) t.config.max_cores))
     else
       (* the effective budget is the guarded one: it feeds both the search
          and the cache key, so two requests the guard makes equal share an
          entry *)
       let budget =
         Bb.Budget.clamp_service ?default_timeout_s:t.config.default_timeout_s
           ?max_timeout_s:t.config.max_timeout_s req.budget
       in
       let req = { req with budget } in
       match
         Noc_util.Timer.time (fun () ->
             Obs.span t.observe ~cat:"serve" "solve" (fun () ->
                 let key = Proto.Request.cache_key req in
                 match Cache.find t.cache key with
                 | Some (bytes, response) -> (key, response, bytes, Hit)
                 | None ->
                     let response = compute t req ~key in
                     let bytes = Proto.Response.to_string response in
                     Cache.add t.cache key (bytes, response);
                     (key, response, bytes, Miss)))
       with
       | (key, response, bytes, status), wall_s ->
           Ok { request_id = req.id; key; response; bytes; status; wall_s }
       | exception Bad m -> Error (Proto.Error.Bad_request m)
       | exception Injected_fault -> Error (Proto.Error.Internal "injected fault")
       | exception e -> Error (Proto.Error.Internal (Printexc.to_string e)))

let solve_exn t req =
  match solve t req with
  | Ok o -> o
  | Error e -> failwith (Proto.Error.to_string e)

(* Bounded admission: the first [max_inflight] requests of a batch are
   queued, the rest are shed immediately — the daemon's memory is bounded
   by the admission window, never by the client's burst size. *)
let serve_batch t reqs =
  List.mapi
    (fun i req ->
      if i >= t.config.max_inflight then begin
        Obs.Counter.incr t.c_requests;
        account t
          (Error
             (Proto.Error.Shed
                (Printf.sprintf "admission queue full (max inflight %d)"
                   t.config.max_inflight)))
      end
      else solve t req)
    reqs

let solve_text t ?library ?budget ~id text : reply =
  if String.length text > t.config.max_request_bytes then begin
    Obs.Counter.incr t.c_requests;
    account t
      (Error
         (Proto.Error.Bad_request
            (Printf.sprintf "request is %d bytes, limit is %d" (String.length text)
               t.config.max_request_bytes)))
  end
  else
    match Noc_core.Acg_io.parse text with
    | Error (`Msg m) ->
        Obs.Counter.incr t.c_requests;
        account t (Error (Proto.Error.Bad_request m))
    | Ok acg -> solve t (Proto.Request.make ~id ?library ?budget acg)

type loop_stats = { served : int; ok : int; errors : int; shed : int }

let run_loop ?library ?(budget = Bb.Budget.default) t ic oc =
  let served = ref 0 and ok = ref 0 and errors = ref 0 and shed = ref 0 in
  let emit json =
    output_string oc (J.to_string json);
    output_char oc '\n';
    flush oc
  in
  let reply_json id = function
    | Ok (o : outcome) ->
        incr ok;
        J.Obj
          [
            ("id", J.Str o.request_id);
            ("cache", J.Str (match o.status with Hit -> "hit" | Miss -> "miss"));
            ("wall_s", J.Float o.wall_s);
            ("response", Proto.Response.to_json o.response);
          ]
    | Error e ->
        incr errors;
        (match e with Proto.Error.Shed _ -> incr shed | _ -> ());
        J.Obj [ ("id", J.Str id); ("error", Proto.Error.to_json e) ]
  in
  let handle line =
    (* one request line = one ACG file path; every failure mode of the
       read-parse-solve pipeline lands in the same typed funnel *)
    if String.length line > t.config.max_request_bytes then begin
      Obs.Counter.incr t.c_requests;
      account t
        (Error
           (Proto.Error.Bad_request
              (Printf.sprintf "request line is %d bytes, limit is %d"
                 (String.length line) t.config.max_request_bytes)))
    end
    else
      (* size check before the read: an oversized file is rejected from
         its metadata, never pulled into memory *)
      let size =
        match (Unix.stat line).Unix.st_size with
        | s -> Ok s
        | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
      in
      match size with
      | Error m ->
          Obs.Counter.incr t.c_requests;
          account t (Error (Proto.Error.Bad_request (line ^ ": " ^ m)))
      | Ok s when s > t.config.max_request_bytes ->
          Obs.Counter.incr t.c_requests;
          account t
            (Error
               (Proto.Error.Bad_request
                  (Printf.sprintf "%s is %d bytes, limit is %d" line s
                     t.config.max_request_bytes)))
      | Ok _ -> (
          match In_channel.with_open_bin line In_channel.input_all with
          | exception Sys_error m ->
              Obs.Counter.incr t.c_requests;
              account t (Error (Proto.Error.Bad_request m))
          | text -> solve_text t ?library ~budget ~id:line text)
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let line = String.trim line in
        if line = "" || (String.length line > 0 && line.[0] = '#') then loop ()
        else if line = "quit" then ()
        else begin
          (* the last-resort isolation layer: even a failure while
             rendering or emitting the reply must not kill the loop *)
          let r =
            try handle line
            with e -> account t (Error (Proto.Error.Internal (Printexc.to_string e)))
          in
          incr served;
          (try emit (reply_json line r)
           with e ->
             emit
               (J.Obj
                  [
                    ("id", J.Str line);
                    ( "error",
                      Proto.Error.(to_json (Internal (Printexc.to_string e))) );
                  ]));
          loop ()
        end
  in
  loop ();
  { served = !served; ok = !ok; errors = !errors; shed = !shed }
