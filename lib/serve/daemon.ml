module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Syn = Noc_core.Synthesis
module Edge_map = D.Edge_map
module Obs = Noc_obs.Obs
module J = Obs.Json

type t = { cache : Cache.t; observe : Obs.t; c_requests : Obs.Counter.t }

type status = Hit | Miss

type outcome = {
  request_id : string;
  key : string;
  response : Proto.Response.t;
  bytes : string;
  status : status;
  wall_s : float;
}

exception Bad_request of string

let create ?cache_capacity ?(observe = Obs.disabled) () =
  {
    cache = Cache.create ?capacity:cache_capacity ~observe ();
    observe;
    c_requests = Obs.counter observe "serve.requests";
  }

let cache_stats t = Cache.stats t.cache

let compute (req : Proto.Request.t) ~observe ~key =
  let library =
    match Proto.Request.library_of_name req.library with
    | Some l -> l
    | None -> raise (Bad_request (Printf.sprintf "unknown library %S" req.library))
  in
  (* synthesize on the canonical relabeling: the search is deterministic,
     so every ACG isomorphic to this one produces these exact bytes *)
  let canonical, acg =
    match Acg.canonical_form req.acg with
    | Some (acg, _mapping) -> (true, acg)
    | None -> (false, req.acg)
  in
  let options = { Bb.default_options with constraints = req.constraints } in
  let d, stats =
    Bb.decompose ~options ~budget:req.budget ~observe ~library acg
  in
  let arch = Syn.custom acg d in
  let topology =
    D.fold_edges
      (fun u v acc -> (min u v, max u v) :: acc)
      arch.Syn.topology []
    |> List.sort_uniq compare
  in
  let routes = Edge_map.bindings arch.Syn.routes in
  {
    Proto.Response.key;
    cores = Acg.num_cores acg;
    flows = Acg.num_flows acg;
    cost = stats.Bb.best_cost;
    timed_out = stats.Bb.timed_out;
    constraints_met = stats.Bb.constraints_met;
    topology;
    routes;
    backends = Backends.compare_all acg ~custom:arch;
    provenance =
      {
        library = req.library;
        budget_timeout_s = req.budget.Bb.Budget.timeout_s;
        budget_max_nodes = req.budget.Bb.Budget.max_nodes;
        canonical;
      };
  }

let solve t (req : Proto.Request.t) =
  Obs.Counter.incr t.c_requests;
  let (key, response, bytes, status), wall_s =
    Noc_util.Timer.time (fun () ->
        Obs.span t.observe ~cat:"serve" "solve" (fun () ->
            let key = Proto.Request.cache_key req in
            match Cache.find t.cache key with
            | Some (bytes, response) -> (key, response, bytes, Hit)
            | None ->
                let response = compute req ~observe:t.observe ~key in
                let bytes = Proto.Response.to_string response in
                Cache.add t.cache key (bytes, response);
                (key, response, bytes, Miss)))
  in
  { request_id = req.id; key; response; bytes; status; wall_s }

let serve_batch t reqs = List.map (solve t) reqs

let run_loop ?library ?(budget = Bb.Budget.default) t ic oc =
  let served = ref 0 in
  let emit json =
    output_string oc (J.to_string json);
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
        let line = String.trim line in
        if line = "" || String.length line > 0 && line.[0] = '#' then loop ()
        else if line = "quit" then ()
        else
          match Noc_core.Acg_io.load line with
          | Error (`Msg m) ->
              emit (J.Obj [ ("id", J.Str line); ("error", J.Str m) ]);
              loop ()
          | Ok acg ->
              let req = Proto.Request.make ~id:line ?library ~budget acg in
              let o = solve t req in
              incr served;
              emit
                (J.Obj
                   [
                     ("id", J.Str o.request_id);
                     ("cache", J.Str (match o.status with Hit -> "hit" | Miss -> "miss"));
                     ("wall_s", J.Float o.wall_s);
                     ("response", Proto.Response.to_json o.response);
                   ]);
              loop ())
  in
  loop ();
  !served
