module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Cons = Noc_core.Constraints
module L = Noc_primitives.Library
module J = Noc_obs.Obs.Json

module Request = struct
  type t = {
    id : string;
    acg : Acg.t;
    library : string;
    budget : Bb.Budget.t;
    constraints : Cons.t option;
  }

  let make ?(id = "") ?(library = "default") ?(budget = Bb.Budget.default)
      ?constraints acg =
    { id; acg; library; budget; constraints }

  let library_of_name = function
    | "default" -> Some (L.default ())
    | "extended" -> Some (L.extended ())
    | "minimal" -> Some (L.minimal ())
    | _ -> None

  (* [%h] hex floats are exact, so two budgets/constraints collide exactly
     when they are the same values *)
  let cache_key t =
    let timeout =
      match t.budget.Bb.Budget.timeout_s with
      | None -> "none"
      | Some s -> Printf.sprintf "%h" s
    in
    let cons =
      match t.constraints with
      | None -> "none"
      | Some c ->
          Printf.sprintf "%h/%d" c.Cons.link_bandwidth c.Cons.max_bisection_links
    in
    Printf.sprintf "%s|lib=%s|t=%s|n=%d|c=%s" (Acg.canonical_hash t.acg)
      t.library timeout t.budget.Bb.Budget.max_nodes cons
end

module Response = struct
  type backend_score = {
    backend : string;
    links : int;
    avg_hops : float;
    max_hops : int;
    energy_pj : float;
  }

  type provenance = {
    library : string;
    budget_timeout_s : float option;
    budget_max_nodes : int;
    canonical : bool;
  }

  type t = {
    key : string;
    cores : int;
    flows : int;
    cost : float;
    timed_out : bool;
    constraints_met : bool;
    topology : (int * int) list;
    routes : ((int * int) * int list) list;
    backends : backend_score list;
    provenance : provenance;
  }

  let backend_to_json b =
    J.Obj
      [
        ("backend", J.Str b.backend);
        ("links", J.Int b.links);
        ("avg_hops", J.Float b.avg_hops);
        ("max_hops", J.Int b.max_hops);
        ("energy_pj", J.Float b.energy_pj);
      ]

  let to_json t =
    J.Obj
      [
        ("key", J.Str t.key);
        ("cores", J.Int t.cores);
        ("flows", J.Int t.flows);
        ("cost", J.Float t.cost);
        ("timed_out", J.Bool t.timed_out);
        ("constraints_met", J.Bool t.constraints_met);
        ( "topology",
          J.List (List.map (fun (u, v) -> J.List [ J.Int u; J.Int v ]) t.topology) );
        ( "routes",
          J.List
            (List.map
               (fun ((s, d), path) ->
                 J.Obj
                   [
                     ("src", J.Int s);
                     ("dst", J.Int d);
                     ("path", J.List (List.map (fun v -> J.Int v) path));
                   ])
               t.routes) );
        ("backends", J.List (List.map backend_to_json t.backends));
        ( "provenance",
          J.Obj
            [
              ("library", J.Str t.provenance.library);
              ( "budget_timeout_s",
                match t.provenance.budget_timeout_s with
                | None -> J.Null
                | Some s -> J.Float s );
              ("budget_max_nodes", J.Int t.provenance.budget_max_nodes);
              ("canonical", J.Bool t.provenance.canonical);
            ] );
      ]

  let to_string t = J.to_string (to_json t)
end
