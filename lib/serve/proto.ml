module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Cons = Noc_core.Constraints
module L = Noc_primitives.Library
module J = Noc_obs.Obs.Json

module Request = struct
  type t = {
    id : string;
    acg : Acg.t;
    library : string;
    budget : Bb.Budget.t;
    constraints : Cons.t option;
  }

  let make ?(id = "") ?(library = "default") ?(budget = Bb.Budget.default)
      ?constraints acg =
    { id; acg; library; budget; constraints }

  let library_of_name = function
    | "default" -> Some (L.default ())
    | "extended" -> Some (L.extended ())
    | "minimal" -> Some (L.minimal ())
    | _ -> None

  (* [%h] hex floats are exact, so two budgets/constraints collide exactly
     when they are the same values *)
  let cache_key t =
    let timeout =
      match t.budget.Bb.Budget.timeout_s with
      | None -> "none"
      | Some s -> Printf.sprintf "%h" s
    in
    let cons =
      match t.constraints with
      | None -> "none"
      | Some c ->
          Printf.sprintf "%h/%d" c.Cons.link_bandwidth c.Cons.max_bisection_links
    in
    Printf.sprintf "%s|lib=%s|t=%s|n=%d|c=%s" (Acg.canonical_hash t.acg)
      t.library timeout t.budget.Bb.Budget.max_nodes cons
end

module Error = struct
  type t =
    | Bad_request of string
    | Over_budget of string
    | Shed of string
    | Internal of string

  let class_name = function
    | Bad_request _ -> "bad_request"
    | Over_budget _ -> "over_budget"
    | Shed _ -> "shed"
    | Internal _ -> "internal"

  let message = function
    | Bad_request m | Over_budget m | Shed m | Internal m -> m

  let counter_name e = "serve.errors." ^ class_name e

  let to_json e =
    J.Obj [ ("class", J.Str (class_name e)); ("message", J.Str (message e)) ]

  let to_string e = J.to_string (to_json e)

  let of_json j =
    match (J.member "class" j, J.member "message" j) with
    | Some (J.Str c), Some (J.Str m) -> (
        match c with
        | "bad_request" -> Some (Bad_request m)
        | "over_budget" -> Some (Over_budget m)
        | "shed" -> Some (Shed m)
        | "internal" -> Some (Internal m)
        | _ -> None)
    | _ -> None
end

module Response = struct
  type backend_score = {
    backend : string;
    links : int;
    avg_hops : float;
    max_hops : int;
    energy_pj : float;
  }

  type provenance = {
    library : string;
    budget_timeout_s : float option;
    budget_max_nodes : int;
    canonical : bool;
  }

  type t = {
    key : string;
    cores : int;
    flows : int;
    cost : float;
    timed_out : bool;
    degraded : bool;
    gap_pct : float option;
    constraints_met : bool;
    topology : (int * int) list;
    routes : ((int * int) * int list) list;
    backends : backend_score list;
    provenance : provenance;
  }

  let backend_to_json b =
    J.Obj
      [
        ("backend", J.Str b.backend);
        ("links", J.Int b.links);
        ("avg_hops", J.Float b.avg_hops);
        ("max_hops", J.Int b.max_hops);
        ("energy_pj", J.Float b.energy_pj);
      ]

  let to_json t =
    J.Obj
      [
        ("key", J.Str t.key);
        ("cores", J.Int t.cores);
        ("flows", J.Int t.flows);
        ("cost", J.Float t.cost);
        ("timed_out", J.Bool t.timed_out);
        ("degraded", J.Bool t.degraded);
        ("gap_pct", match t.gap_pct with None -> J.Null | Some g -> J.Float g);
        ("constraints_met", J.Bool t.constraints_met);
        ( "topology",
          J.List (List.map (fun (u, v) -> J.List [ J.Int u; J.Int v ]) t.topology) );
        ( "routes",
          J.List
            (List.map
               (fun ((s, d), path) ->
                 J.Obj
                   [
                     ("src", J.Int s);
                     ("dst", J.Int d);
                     ("path", J.List (List.map (fun v -> J.Int v) path));
                   ])
               t.routes) );
        ("backends", J.List (List.map backend_to_json t.backends));
        ( "provenance",
          J.Obj
            [
              ("library", J.Str t.provenance.library);
              ( "budget_timeout_s",
                match t.provenance.budget_timeout_s with
                | None -> J.Null
                | Some s -> J.Float s );
              ("budget_max_nodes", J.Int t.provenance.budget_max_nodes);
              ("canonical", J.Bool t.provenance.canonical);
            ] );
      ]

  let to_string t = J.to_string (to_json t)

  (* The inverse of [to_json], used by the cache snapshot restore to
     rebuild typed values from persisted bytes.  Total: every malformed
     shape comes back as [Error], never an exception. *)
  let of_json j =
    let ( let* ) = Option.bind in
    let str = function J.Str s -> Some s | _ -> None in
    let int = function J.Int i -> Some i | _ -> None in
    let float = function J.Float f -> Some f | J.Int i -> Some (float_of_int i) | _ -> None in
    let bool = function J.Bool b -> Some b | _ -> None in
    let field k conv = Option.bind (J.member k j) conv in
    let list conv = function
      | J.List xs ->
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | x :: rest -> ( match conv x with Some v -> go (v :: acc) rest | None -> None)
          in
          go [] xs
      | _ -> None
    in
    let backend_of_json b =
      let f k conv = Option.bind (J.member k b) conv in
      let* backend = f "backend" str in
      let* links = f "links" int in
      let* avg_hops = f "avg_hops" float in
      let* max_hops = f "max_hops" int in
      let* energy_pj = f "energy_pj" float in
      Some { backend; links; avg_hops; max_hops; energy_pj }
    in
    let route_of_json r =
      let f k conv = Option.bind (J.member k r) conv in
      let* src = f "src" int in
      let* dst = f "dst" int in
      let* path = Option.bind (J.member "path" r) (list int) in
      Some ((src, dst), path)
    in
    let link_of_json = function
      | J.List [ J.Int u; J.Int v ] -> Some (u, v)
      | _ -> None
    in
    let result =
      let* key = field "key" str in
      let* cores = field "cores" int in
      let* flows = field "flows" int in
      let* cost = field "cost" float in
      let* timed_out = field "timed_out" bool in
      let* degraded = field "degraded" bool in
      let gap_pct =
        match J.member "gap_pct" j with Some v -> float v | None -> None
      in
      let* constraints_met = field "constraints_met" bool in
      let* topology = Option.bind (J.member "topology" j) (list link_of_json) in
      let* routes = Option.bind (J.member "routes" j) (list route_of_json) in
      let* backends = Option.bind (J.member "backends" j) (list backend_of_json) in
      let* p = J.member "provenance" j in
      let pf k conv = Option.bind (J.member k p) conv in
      let* library = pf "library" str in
      let budget_timeout_s =
        match J.member "budget_timeout_s" p with Some v -> float v | None -> None
      in
      let* budget_max_nodes = pf "budget_max_nodes" int in
      let* canonical = pf "canonical" bool in
      Some
        {
          key;
          cores;
          flows;
          cost;
          timed_out;
          degraded;
          gap_pct;
          constraints_met;
          topology;
          routes;
          backends;
          provenance = { library; budget_timeout_s; budget_max_nodes; canonical };
        }
    in
    match result with
    | Some r -> Ok r
    | None -> Error (`Msg "Proto.Response.of_json: malformed response object")

  let of_string s =
    match J.parse s with
    | Error (`Msg m) -> Error (`Msg ("Proto.Response.of_string: " ^ m))
    | Ok j -> of_json j
end
