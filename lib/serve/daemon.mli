(** [nocsynthd]: the long-running request pipeline.

    Requests go through one funnel ({!solve}): compute the canonical cache
    key, return the cached bytes on a hit, otherwise synthesize {e on the
    canonical form of the ACG} and cache the rendered response.  Because
    the search runs on the canonical relabeling, two isomorphic requests
    don't just share a cache entry — the response computed for either is
    byte-identical, so a hit is indistinguishable from a recomputation.

    Concurrency model: the request loop runs on one domain and each search
    fans out across [Budget.domains] via the branch-and-bound
    work-stealing scheduler — parallelism lives inside requests, where the
    work is.  {!serve_batch} is the batching entry point: requests that
    share a cache key collapse onto one search (the first computes, the
    rest hit), and responses keep submission order. *)

type t

type status = Hit | Miss

type outcome = {
  request_id : string;  (** echoed {!Proto.Request.t.id} *)
  key : string;
  response : Proto.Response.t;
  bytes : string;  (** rendered response; byte-identical across hits *)
  status : status;
  wall_s : float;
}

exception Bad_request of string
(** Unknown library name in a request. *)

val create : ?cache_capacity:int -> ?observe:Noc_obs.Obs.t -> unit -> t
(** A daemon with an empty cache.  [observe] feeds the [serve.*] counters
    and per-request spans; default {!Noc_obs.Obs.disabled}. *)

val solve : t -> Proto.Request.t -> outcome
(** Serve one request.  @raise Bad_request on an unresolvable library. *)

val serve_batch : t -> Proto.Request.t list -> outcome list
(** Serve a batch in submission order; within-batch duplicates (same cache
    key) are computed once. *)

val cache_stats : t -> Cache.stats

val run_loop :
  ?library:string ->
  ?budget:Noc_core.Branch_bound.Budget.t ->
  t ->
  in_channel ->
  out_channel ->
  int
(** The line-oriented service loop behind [nocsynth serve]: each input
    line names an ACG file ({!Noc_core.Acg_io.load} format), each output
    line is one JSON object — either
    [{"id", "cache", "wall_s", "response"}] or [{"id", "error"}] for
    unreadable input.  Blank lines and [#] comments are skipped; ["quit"]
    or end-of-file ends the loop.  Returns the number of requests
    served. *)
