(** [nocsynthd]: the crash-only request pipeline.

    Requests go through one funnel ({!solve}): admission guards (starved
    deadline, oversized ACG), the service budget clamp, then compute the
    canonical cache key, return the cached bytes on a hit, otherwise
    synthesize {e on the canonical form of the ACG} and cache the rendered
    response.  Because the search runs on the canonical relabeling, two
    isomorphic requests don't just share a cache entry — the response
    computed for either is byte-identical, so a hit is indistinguishable
    from a recomputation.

    {b Fault discipline}: {!solve} is total — every failure mode becomes a
    typed {!Proto.Error.t} reply ([Bad_request] for unusable input,
    [Over_budget] for dead-on-arrival deadlines, [Shed] for admission
    overflow, [Internal] for any escaping exception) and is mirrored into
    the [serve.errors.*] counters; no exception crosses the daemon
    boundary and a failed request never kills queued ones.  Error replies
    are never cached.  Any finite wall budget runs with the greedy anytime
    fallback seeded, so deadline exhaustion degrades to a feasible answer
    with a reported optimality gap ({!Proto.Response.t.degraded} /
    [gap_pct]) instead of overrunning.

    Concurrency model: the request loop runs on one domain and each search
    fans out across [Budget.domains] via the branch-and-bound
    work-stealing scheduler — parallelism lives inside requests, where the
    work is.  {!serve_batch} is the batching entry point: requests that
    share a cache key collapse onto one search (the first computes, the
    rest hit), responses keep submission order, and batch members beyond
    {!config.max_inflight} are shed — memory stays bounded by the
    admission window, never by the client's burst size. *)

(** Daemon-wide hard limits, enforced at admission. *)
type config = {
  max_inflight : int;
      (** admission-queue bound for {!serve_batch}: batch members beyond
          this reply [Shed] (default 64) *)
  max_cores : int;
      (** largest ACG admitted; bigger ones reply [Bad_request]
          (default 4096) *)
  max_request_bytes : int;
      (** largest request line / ACG file / inline text admitted
          (default 1 MiB); oversized files are rejected from their
          metadata, never read into memory *)
  default_timeout_s : float option;
      (** deadline given to requests that declare none ([None] = allow
          unbounded searches, the library default) *)
  max_timeout_s : float option;
      (** hard per-request wall budget: declared deadlines are clamped to
          this ([None] = no cap) *)
}

val default_config : config

(** Reply accounting, mirrored from the [serve.*] counters (available even
    with observability disabled). *)
type error_stats = {
  replies : int;  (** every reply emitted, success or failure *)
  ok : int;
  bad_request : int;
  over_budget : int;
  shed : int;
  internal : int;
}

type t

type status = Hit | Miss

type outcome = {
  request_id : string;  (** echoed {!Proto.Request.t.id} *)
  key : string;
  response : Proto.Response.t;
  bytes : string;  (** rendered response; byte-identical across hits *)
  status : status;
  wall_s : float;
}

type reply = (outcome, Proto.Error.t) result

val create :
  ?cache_capacity:int ->
  ?config:config ->
  ?fault_hook:(unit -> bool) ->
  ?observe:Noc_obs.Obs.t ->
  unit ->
  t
(** A daemon with an empty cache.  [observe] feeds the [serve.*] counters
    and per-request spans; default {!Noc_obs.Obs.disabled}.  [fault_hook]
    is the chaos-testing seam: when it returns [true] the compute path
    raises before searching, which must surface as a typed [Internal]
    reply — never set in production. *)

val solve : t -> Proto.Request.t -> reply
(** Serve one request.  Total: never raises. *)

val solve_exn : t -> Proto.Request.t -> outcome
(** {!solve} for drivers that only send well-formed requests.
    @raise Failure with the rendered error on a typed failure. *)

val solve_text : t ->
  ?library:string ->
  ?budget:Noc_core.Branch_bound.Budget.t ->
  id:string -> string -> reply
(** Parse ACG text (size-guarded, {!Noc_core.Acg_io.parse} format) and
    serve it — the funnel behind one {!run_loop} line and the chaos
    harness's malformed-input classes.  Total: never raises. *)

val serve_batch : t -> Proto.Request.t list -> reply list
(** Serve a batch in submission order; within-batch duplicates (same cache
    key) are computed once, and members beyond [config.max_inflight] are
    shed with a typed [Shed] reply. *)

val cache_stats : t -> Cache.stats

val cache : t -> Cache.t
(** The daemon's result cache, exposed for {!Cache.snapshot} /
    {!Cache.restore} at process boundaries. *)

val config : t -> config
val error_stats : t -> error_stats

(** What one {!run_loop} session did. *)
type loop_stats = { served : int; ok : int; errors : int; shed : int }

val run_loop :
  ?library:string ->
  ?budget:Noc_core.Branch_bound.Budget.t ->
  t ->
  in_channel ->
  out_channel ->
  loop_stats
(** The line-oriented service loop behind [nocsynth serve]: each input
    line names an ACG file ({!Noc_core.Acg_io.load} format), each output
    line is one JSON object — either
    [{"id", "cache", "wall_s", "response"}] or
    [{"id", "error": {"class", "message"}}] with a {!Proto.Error}
    class.  Blank lines and [#] comments are skipped; ["quit"] or
    end-of-file ends the loop.  Every request line gets exactly one reply
    and every reply is counted ([served] = wire replies emitted); no
    input, however malformed, terminates the loop. *)
