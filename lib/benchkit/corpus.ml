module D = Noc_graph.Digraph
module G = Noc_graph.Generators
module Acg = Noc_core.Acg
module Prng = Noc_util.Prng

type scenario = { name : string; kind : string; acg : Acg.t }

let scenario ~name ~kind acg = { name; kind; acg }

(* ------------------------------------------------------------------ *)
(* Paper cases (Fig. 2 and Fig. 5 inputs, reconstructed)               *)

(* The paper's Fig. 2 input (drawn, not enumerated) contains one gossip
   group, one loop and some unmatched traffic; its leftmost branch
   MGG4 -> L4 -> remainder has cost 16 = 4 + 4 + 8.  We reconstruct an
   input with exactly that structure: K4 on {1..4}, a 4-loop on {5..8},
   and 8 stray edges that match nothing in the library. *)
let fig2_acg () =
  let g = G.complete 4 in
  let g =
    List.fold_left
      (fun g (u, v) -> D.add_edge g u v)
      g
      [ (5, 6); (6, 7); (7, 8); (8, 5) ]
  in
  let g =
    List.fold_left
      (fun g (u, v) -> D.add_edge g u v)
      g
      [ (1, 5); (5, 1); (2, 6); (6, 2); (3, 7); (7, 3); (4, 8); (8, 4) ]
  in
  Acg.uniform ~volume:16 ~bandwidth:0.1 g

(* The paper prints the full decomposition of its Fig. 5 input, which lets
   us reconstruct the input ACG exactly as the union of the matched
   primitives: MGG4 on (1 2 5 6), G123 rooted at 3 -> {2,5,6} and at
   7 -> {3,5,6}, G124 rooted at 8 -> {1,3,6,7} and G123 rooted at
   4 -> {5,6,7}; no remainder. *)
let fig5_acg () =
  let gossip vs g =
    List.fold_left
      (fun g u -> List.fold_left (fun g v -> if u <> v then D.add_edge g u v else g) g vs)
      g vs
  in
  let star root leaves g = List.fold_left (fun g v -> D.add_edge g root v) g leaves in
  let g =
    D.empty
    |> gossip [ 1; 2; 5; 6 ]
    |> star 3 [ 2; 5; 6 ]
    |> star 7 [ 3; 5; 6 ]
    |> star 8 [ 1; 3; 6; 7 ]
    |> star 4 [ 5; 6; 7 ]
  in
  Acg.uniform ~volume:32 ~bandwidth:0.1 g

(* ------------------------------------------------------------------ *)
(* Seeded generator cases                                              *)

let tgff ~seed params =
  Acg.of_tgff (Noc_tgff.Tgff.generate ~rng:(Prng.create ~seed) params)

(* Pajek-era random networks: sparse, average degree ~ 3, as in Fig. 4b *)
let random ~seed ~n =
  let p = 3.0 /. float_of_int (n - 1) in
  Acg.uniform ~volume:16 ~bandwidth:0.1 (G.erdos_renyi ~rng:(Prng.create ~seed) ~n ~p)

(* ------------------------------------------------------------------ *)
(* Large-scale tier: 64-1024-core ACGs for the search-scaling rows.
   Three families per size — TGFF-style layered task graphs (sparse DAG
   structure), Erdős–Rényi with constant expected degree, and clustered
   planted-community graphs (dense local gossip groups, the shape the
   primitive library matches well).  Everything is seeded; names are
   stable record keys. *)

let layered ~seed ~n =
  (* extra_edge_p scales as ~2/n so the extra-dependence pass contributes
     O(n) edges at every size instead of O(n^2) *)
  let params =
    { (Noc_tgff.Tgff.sized n) with
      Noc_tgff.Tgff.extra_edge_p = 2.0 /. float_of_int n;
      max_out = 4;
    }
  in
  Acg.of_tgff (Noc_tgff.Tgff.generate ~rng:(Prng.create ~seed) params)

let clustered ~seed ~n =
  (* communities of ~8 cores: p_in is high enough that complete 4-subsets
     (MGG4 match sites) appear in most communities, so the search has a
     real branching tree at every size; p_out keeps a constant expected
     number of cross-community flows per core *)
  let k = max 1 (n / 8) in
  let g =
    G.communities ~rng:(Prng.create ~seed) ~n ~k ~p_in:0.85
      ~p_out:(1.0 /. float_of_int n)
  in
  Acg.uniform ~volume:8 ~bandwidth:0.05 g

let scale_sizes = [ 64; 128; 256; 512; 1024 ]
let scale_smoke_sizes = [ 64; 128 ]

let scale_tier sizes =
  List.concat_map
    (fun n ->
      [
        scenario ~name:(Printf.sprintf "scale-tgff-%d-s1" n) ~kind:"scale"
          (layered ~seed:1 ~n);
        scenario ~name:(Printf.sprintf "scale-er-%d-s2" n) ~kind:"scale"
          (random ~seed:2 ~n);
        scenario ~name:(Printf.sprintf "scale-clustered-%d-s3" n) ~kind:"scale"
          (clustered ~seed:3 ~n);
      ])
    sizes

let scale () = scale_tier scale_sizes
let scale_smoke () = scale_tier scale_smoke_sizes

(* ------------------------------------------------------------------ *)

let default () =
  [
    scenario ~name:"fig2" ~kind:"paper" (fig2_acg ());
    scenario ~name:"fig5" ~kind:"paper" (fig5_acg ());
    scenario ~name:"aes" ~kind:"paper" (Noc_aes.Distributed.acg ());
    scenario ~name:"vopd" ~kind:"app" (Noc_apps.Multimedia.vopd ());
    scenario ~name:"mpeg4" ~kind:"app" (Noc_apps.Multimedia.mpeg4 ());
    scenario ~name:"fft16" ~kind:"app" (Noc_apps.Fft.acg ());
    scenario ~name:"tgff-automotive-s11" ~kind:"tgff"
      (tgff ~seed:11 Noc_tgff.Tgff.automotive);
    scenario ~name:"tgff-telecom-s7" ~kind:"tgff" (tgff ~seed:7 Noc_tgff.Tgff.telecom);
    scenario ~name:"tgff-12-s3" ~kind:"tgff" (tgff ~seed:3 (Noc_tgff.Tgff.sized 12));
    scenario ~name:"tgff-16-s5" ~kind:"tgff" (tgff ~seed:5 (Noc_tgff.Tgff.sized 16));
    scenario ~name:"rand-12-s1" ~kind:"random" (random ~seed:1 ~n:12);
    scenario ~name:"rand-16-s2" ~kind:"random" (random ~seed:2 ~n:16);
  ]

let find name scenarios = List.find_opt (fun s -> s.name = name) scenarios
