module J = Noc_obs.Obs.Json

type direction = Increase_bad | Decrease_bad

type rule = {
  suffix : string;  (* matched against the end of the flattened metric key *)
  limit_pct : float;
  min_abs : float;  (* absolute-change floor below which noise is ignored *)
  direction : direction;
}

(* The gated metrics.  Wall-clock gets its own (looser) threshold and an
   absolute floor because smoke-mode timings are milliseconds; everything
   else is deterministic given the seeds, so the default threshold is
   tight.  First matching rule wins; un-matched keys are informational. *)
let rules ~time_limit_pct ~limit_pct =
  [
    (* resilience metrics come first so the generic suffixes below can
       never shadow them; deliveries must not get worse at all, latency
       degradation tolerates a small absolute slack *)
    { suffix = ".min_delivered_fraction"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    { suffix = ".max_latency_factor"; limit_pct; min_abs = 0.05; direction = Increase_bad };
    { suffix = ".worst_disconnected_pairs"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".critical_links"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".survives_single_link"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    { suffix = "resilience.stranded"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    (* exploration stage: the sampled point set is a pure function of the
       seed and the front/hypervolume of the evaluated vectors, so both
       are exactly reproducible; a shrinking front or covered volume means
       the synthesis pipeline got worse somewhere on the trade-off surface
       (the steal count is scheduling noise and deliberately unmatched) *)
    { suffix = ".explore.front_size"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    { suffix = ".explore.hypervolume"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    (* serve stage: the hit rate and byte-identity are deterministic given
       the request mix, so they get the tight threshold; requests/sec is
       pure wall-clock, so it shares the loose timing threshold with an
       absolute floor against millisecond-run noise *)
    { suffix = ".serve.hit_rate"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    { suffix = ".serve.byte_identical"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    (* crash-only service columns: the error/shed counts of the hardened
       request mix are exact by construction, so any rise means a
       well-formed request started failing or admission got stingier; a
       lost restore_ok means snapshot persistence broke *)
    { suffix = ".serve.error_rate"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".serve.shed_rate"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".serve.restore_ok"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    { suffix = ".serve.rps"; limit_pct = time_limit_pct; min_abs = 200.0;
      direction = Decrease_bad };
    { suffix = ".wall_s"; limit_pct = time_limit_pct; min_abs = 0.02; direction = Increase_bad };
    (* scaling cliffs: search throughput and multi-domain speedup are
       wall-clock-derived, so they share the loose timing threshold, with
       absolute floors against millisecond-run noise *)
    { suffix = ".nodes_per_sec"; limit_pct = time_limit_pct; min_abs = 2_000.0;
      direction = Decrease_bad };
    { suffix = ".speedup_vs_d1"; limit_pct = time_limit_pct; min_abs = 0.3;
      direction = Decrease_bad };
    (* engine burst rows: a VC-cap truncation appearing is a soundness
       regression outright, and the deterministic flit-hop totals catch a
       route or arbitration change the latency columns might round away *)
    { suffix = ".vc_truncated"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".flit_hops"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".nodes"; limit_pct; min_abs = 8.0; direction = Increase_bad };
    { suffix = ".best_cost"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".energy_pj"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".avg_latency"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".cycles"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".links"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".vcs_needed"; limit_pct; min_abs = 0.0; direction = Increase_bad };
    { suffix = ".delivered"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
    { suffix = ".throughput"; limit_pct; min_abs = 0.0; direction = Decrease_bad };
  ]

type verdict = {
  metric : string;
  base : float;
  cur : float;
  change_pct : float;  (* positive = worse, per the metric's direction *)
  limit_pct : float;
}

type report = {
  regressions : verdict list;
  improvements : verdict list;  (* beyond-threshold changes for the better *)
  missing : string list;  (* gated in base, absent in cur *)
  checked : int;
}

let rule_for rules key = List.find_opt (fun r -> String.ends_with ~suffix:r.suffix key) rules

let signed_change direction ~base ~cur =
  match direction with Increase_bad -> cur -. base | Decrease_bad -> base -. cur

let change_pct direction ~base ~cur =
  let delta = signed_change direction ~base ~cur in
  if base <> 0.0 then 100.0 *. delta /. Float.abs base
  else if delta = 0.0 then 0.0
  else if delta > 0.0 then Float.infinity
  else Float.neg_infinity

let compare_flat ~rules base_metrics cur_metrics =
  let regressions = ref [] and improvements = ref [] and missing = ref [] in
  let checked = ref 0 in
  List.iter
    (fun (key, base) ->
      match rule_for rules key with
      | None -> ()
      | Some r -> (
          match List.assoc_opt key cur_metrics with
          | None -> missing := key :: !missing
          | Some cur ->
              incr checked;
              let pct = change_pct r.direction ~base ~cur in
              let abs_delta = Float.abs (signed_change r.direction ~base ~cur) in
              let v = { metric = key; base; cur; change_pct = pct; limit_pct = r.limit_pct } in
              if pct > r.limit_pct && abs_delta > r.min_abs then
                regressions := v :: !regressions
              else if pct < -.r.limit_pct && abs_delta > r.min_abs then
                improvements := v :: !improvements))
    base_metrics;
  {
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    missing = List.rev !missing;
    checked = !checked;
  }

let compare_records ?(time_limit_pct = 10.0) ?(limit_pct = 2.0) ~base ~cur () =
  match (Record.check_schema base, Record.check_schema cur) with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
      let rules = rules ~time_limit_pct ~limit_pct in
      Ok (compare_flat ~rules (Record.flatten base) (Record.flatten cur))

let pp_verdict ppf v =
  Format.fprintf ppf "%-55s %12.4g -> %-12.4g %+7.1f%% (limit %g%%)" v.metric v.base v.cur
    v.change_pct v.limit_pct

let pp_report ppf r =
  if r.regressions <> [] then begin
    Format.fprintf ppf "REGRESSIONS:@.";
    List.iter (fun v -> Format.fprintf ppf "  %a@." pp_verdict v) r.regressions
  end;
  if r.improvements <> [] then begin
    Format.fprintf ppf "improvements:@.";
    List.iter (fun v -> Format.fprintf ppf "  %a@." pp_verdict v) r.improvements
  end;
  if r.missing <> [] then begin
    Format.fprintf ppf "missing in current record:@.";
    List.iter (fun k -> Format.fprintf ppf "  %s@." k) r.missing
  end;
  Format.fprintf ppf "%d gated metric(s) checked, %d regression(s), %d improvement(s)@."
    r.checked (List.length r.regressions) (List.length r.improvements)

let ok r = r.regressions = [] && r.missing = []
