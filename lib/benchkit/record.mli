(** The persisted benchmark record: [BENCH_<rev>.json].

    One top-level object: [schema], [schema_version], [rev], [mode]
    ("full" or "smoke"), [created_unix_s] and a [scenarios] array with one
    object per corpus scenario (timing, search-tree, topology, energy,
    deadlock, wormhole and sweep fields).  The schema is append-only:
    tools must tolerate extra fields, and renaming or removing a field
    bumps [schema_version]. *)

val schema : string
val schema_version : int

val result_json : Runner.result -> Noc_obs.Obs.Json.t

val to_json :
  ?created_unix_s:float -> rev:string -> mode:string -> Runner.result list ->
  Noc_obs.Obs.Json.t

val write : path:string -> Noc_obs.Obs.Json.t -> unit

val load : string -> (Noc_obs.Obs.Json.t, [ `Msg of string ]) result
(** Reads and parses a record file; no schema check (see
    {!check_schema}). *)

val check_schema : Noc_obs.Obs.Json.t -> (unit, [ `Msg of string ]) result

val flatten : Noc_obs.Obs.Json.t -> (string * float) list
(** Dotted (path, numeric value) pairs, e.g.
    ["scenarios.aes.search.d1.wall_s"].  Array elements are keyed by their
    ["name"], ["domains"] or ["rate"] member when present (stable under
    insertion), by index otherwise.  Strings and nulls are skipped; bools
    flatten to 0/1. *)
