(** The benchmark scenario corpus.

    Related NoC-synthesis work evaluates over scenario corpora rather than
    single applications; this module fixes a reproducible set — the paper's
    own cases (Fig. 2, Fig. 5, the AES prototype), the application
    workloads (VOPD, MPEG-4, distributed FFT), and seeded TGFF-style and
    Pajek-style random graphs — so performance can be tracked PR over PR
    (see [Runner] and [Record]). *)

type scenario = {
  name : string;  (** unique, stable across revisions: the record key *)
  kind : string;  (** "paper", "app", "tgff" or "random" *)
  acg : Noc_core.Acg.t;
}

val scenario : name:string -> kind:string -> Noc_core.Acg.t -> scenario

val fig2_acg : unit -> Noc_core.Acg.t
(** The reconstructed Fig. 2 input: K4 + directed 4-loop + 8 stray edges
    (leftmost decomposition branch costs 16, as in the paper). *)

val fig5_acg : unit -> Noc_core.Acg.t
(** The Fig. 5 random benchmark, reconstructed exactly from the paper's
    printed decomposition (1x MGG4, 3x G123, 1x G124, no remainder). *)

val tgff : seed:int -> Noc_tgff.Tgff.params -> Noc_core.Acg.t
(** Seeded TGFF-style task-graph ACG. *)

val random : seed:int -> n:int -> Noc_core.Acg.t
(** Seeded sparse random ACG (average degree ~3, Fig. 4b style). *)

val layered : seed:int -> n:int -> Noc_core.Acg.t
(** Seeded TGFF-style layered task graph scaled to [n] cores: the
    extra-dependence probability shrinks as ~2/n so edge count stays
    linear in the core count. *)

val clustered : seed:int -> n:int -> Noc_core.Acg.t
(** Seeded planted-community ACG ({!Noc_graph.Generators.communities}):
    dense ~8-core gossip clusters plus sparse global flows — the
    decomposition-friendly shape of many-core traffic. *)

val scale : unit -> scenario list
(** The large-scale tier: {!layered}, ER ({!random}) and {!clustered}
    scenarios at 64/128/256/512/1024 cores (kind ["scale"], stable
    names).  Budget-bounded searches only — run these with
    [Runner.scale]-style settings. *)

val scale_smoke : unit -> scenario list
(** The 64/128-core prefix of {!scale}: the CI [@scale-smoke] tier. *)

val default : unit -> scenario list
(** The persisted corpus: 12 scenarios with stable names.  Appending new
    scenarios is cheap; renaming or reordering existing ones invalidates
    committed baselines. *)

val find : string -> scenario list -> scenario option
