module D = Noc_graph.Digraph
module Acg = Noc_core.Acg
module Bb = Noc_core.Branch_bound
module Syn = Noc_core.Synthesis
module L = Noc_primitives.Library
module Obs = Noc_obs.Obs
module Prng = Noc_util.Prng

type settings = {
  budget : Bb.Budget.t;
  domains : int list;
  sweep_rates : float list;
  sweep_cycles : int;
  sweep_engine : Noc_sim.Engine.kind;
  wormhole_size_flits : int;  (** packet size for every engine stage *)
  seed : int;
  simulate : bool;
  fallback : bool;
  portfolio : bool;
  serve : bool;
  explore_points : int;
}

let full =
  {
    budget = Bb.Budget.(default |> with_timeout_s (Some 5.0));
    domains = [ 1; 2 ];
    sweep_rates = [ 0.01; 0.02; 0.05; 0.10 ];
    sweep_cycles = 1000;
    (* the latency-vs-load knee is the whole point of the sweep, so it
       runs at the fidelity where serialization and HOL blocking exist *)
    sweep_engine = Noc_sim.Engine.Flit;
    wormhole_size_flits = 4;
    seed = 42;
    simulate = true;
    fallback = false;
    portfolio = false;
    serve = true;
    explore_points = 24;
  }

let smoke =
  {
    full with
    budget = Bb.Budget.(default |> with_timeout_s (Some 2.0));
    domains = [ 1 ];
    sweep_rates = [ 0.02; 0.08 ];
    sweep_cycles = 200;
  }

(* The scaling tiers run budget-bounded anytime searches (greedy fallback
   seeded, so every scenario returns a feasible decomposition) and skip
   the cycle-accurate simulation stages, whose cost would swamp the
   search-scaling signal at 512-1024 cores. *)
let scale =
  {
    full with
    budget = Bb.Budget.(default |> with_timeout_s (Some 8.0) |> with_max_nodes 2_000_000);
    domains = [ 1; 8 ];
    simulate = false;
    fallback = true;
    serve = false;
    (* a 512-core point evaluation is itself a bounded search; the
       exploration signal lives in the default corpus, not here *)
    explore_points = 0;
  }

let scale_smoke =
  {
    scale with
    budget = Bb.Budget.(default |> with_timeout_s (Some 0.6) |> with_max_nodes 60_000);
    domains = [ 1; 2 ];
  }

type search_sample = {
  domains : int;
  wall_s : float;
  nodes : int;
  pruned : int;
  matches_tried : int;
  best_cost : float;
  timed_out : bool;
  nodes_per_sec : float;
  speedup_vs_d1 : float;  (** wall-clock of the 1st sample / this sample *)
}

type sweep_sample = {
  rate : float;
  avg_latency : float;
  delivered : int;
  throughput : float;
}

type engine_sample = {
  engine : string;
  e_status : string;
  e_cycles : int;
  e_latency : float;
  e_delivered : int;
  e_flit_hops : int;
  e_vc_truncated : bool;
}

type serve_sample = {
  serve_requests : int;
  serve_ok : int;
  serve_hits : int;
  serve_hit_rate : float;
  serve_rps : float;
  serve_byte_identical : bool;
  serve_errors : int;
  serve_shed : int;
  serve_error_rate : float;
  serve_shed_rate : float;
  serve_restore_ok : bool;
}

type explore_sample = {
  explore_space : int;
  explore_points : int;
  front_size : int;
  hypervolume : float;
  explore_steals : int;
}

type resilience_sample = {
  min_delivered_fraction : float;
  max_latency_factor : float;
  worst_disconnected_pairs : int;
  critical_links : int;
  survives_single_link : bool;
  resil_stranded : int;
}

type result = {
  name : string;
  kind : string;
  cores : int;
  flows : int;
  total_volume : int;
  search : search_sample list;
  links : int;
  avg_hops : float;
  max_hops : int;
  energy_pj : float;
  deadlock_free : bool;
  vcs_needed : int;
  engines : engine_sample list;
      (** one row per simulation fidelity (wormhole, flit), same traffic *)
  sweep : sweep_sample list;
  saturation_rate : float option;
  resilience : resilience_sample;
  serve : serve_sample;
  explore : explore_sample;
}

(* the grid floorplan must place every vertex id the ACG mentions, so size
   it by the maximum id, not the vertex count (ids need not be contiguous) *)
let grid_floorplan acg =
  let max_id = D.fold_vertices (fun v m -> max v m) (Acg.graph acg) 1 in
  Noc_energy.Floorplan.grid (Noc_energy.Floorplan.uniform_cores ~n:max_id ~size_mm:2.0)

let run ?(observe = Obs.disabled) ?(library = L.default ()) ~(settings : settings)
    (s : Corpus.scenario) =
  let acg = s.acg in
  let options =
    {
      Bb.default_options with
      fallback = settings.fallback;
      portfolio = settings.portfolio;
    }
  in
  let budget_for domains = Bb.Budget.with_domains domains settings.budget in
  (* decompose once per requested domain count; for completed searches the
     reduction is deterministic, so every sample returns the same
     decomposition and the samples differ only in wall time *)
  let search_runs =
    List.map
      (fun domains ->
        Obs.span observe ~cat:"bench"
          (Printf.sprintf "%s.decompose.d%d" s.name domains)
          (fun () ->
            let (d, st), wall =
              Noc_util.Timer.time (fun () ->
                  Bb.decompose ~options ~budget:(budget_for domains) ~library acg)
            in
            ( d,
              {
                domains;
                wall_s = wall;
                nodes = st.Bb.nodes;
                pruned = st.Bb.pruned;
                matches_tried = st.Bb.matches_tried;
                best_cost = st.Bb.best_cost;
                timed_out = st.Bb.timed_out;
                nodes_per_sec =
                  (if wall > 0.0 then float_of_int st.Bb.nodes /. wall else 0.0);
                speedup_vs_d1 = 1.0 (* filled against the first sample below *);
              } )))
      (match settings.domains with [] -> [ 1 ] | ds -> ds)
  in
  let d = fst (List.hd search_runs) in
  let search =
    let samples = List.map snd search_runs in
    let wall1 = (List.hd samples).wall_s in
    List.map
      (fun sm ->
        { sm with speedup_vs_d1 = (if sm.wall_s > 0.0 then wall1 /. sm.wall_s else 1.0) })
      samples
  in
  let arch = Obs.span observe ~cat:"bench" (s.name ^ ".synth") (fun () -> Syn.custom acg d) in
  let tech = Noc_energy.Technology.cmos_180nm in
  let fp = grid_floorplan acg in
  let energy_pj = Syn.total_energy ~tech ~fp acg arch in
  let dl =
    Obs.span observe ~cat:"bench" (s.name ^ ".deadlock") (fun () ->
        Noc_core.Deadlock.analyze arch)
  in
  (* one packet per ACG flow on each fidelity level: the delivery counts
     must agree, the latencies rank coarse >= flit >= wormhole *)
  let engine_stage kind =
    let kname = Noc_sim.Engine.kind_name kind in
    Obs.span observe ~cat:"bench" (s.name ^ "." ^ kname) (fun () ->
        let net = Noc_sim.Engine.create kind arch in
        D.iter_edges
          (fun src dst ->
            ignore
              (Noc_sim.Engine.inject ~size_flits:settings.wormhole_size_flits net ~src ~dst))
          (Acg.graph acg);
        let status = Noc_sim.Engine.verdict_name (Noc_sim.Engine.run_until_idle net) in
        let summary = Noc_sim.Engine.summary net in
        {
          engine = kname;
          e_status = status;
          e_cycles = Noc_sim.Engine.now net;
          e_latency = summary.Noc_sim.Stats.avg_latency;
          e_delivered = summary.Noc_sim.Stats.packets;
          e_flit_hops = Noc_sim.Engine.flit_hops net;
          e_vc_truncated = Noc_sim.Engine.vc_truncated net;
        })
  in
  let engines =
    if not settings.simulate then []
    else [ engine_stage Noc_sim.Engine.Wormhole; engine_stage Noc_sim.Engine.Flit ]
  in
  let sweep_points =
    if not settings.simulate then []
    else
      Obs.span observe ~cat:"bench" (s.name ^ ".sweep") (fun () ->
          Noc_sim.Sweep.latency_vs_load ~engine:settings.sweep_engine
            ~rng:(Prng.create ~seed:settings.seed)
            ~arch ~acg ~cycles:settings.sweep_cycles ~rates:settings.sweep_rates ())
  in
  let resilience =
    if not settings.simulate then
      (* vacuous placeholders: the fault campaign did not run *)
      {
        min_delivered_fraction = 1.0;
        max_latency_factor = 1.0;
        worst_disconnected_pairs = 0;
        critical_links = 0;
        survives_single_link = true;
        resil_stranded = 0;
      }
    else
      let rep =
        Noc_resil.Campaign.run ~observe ~name:s.name ~seed:settings.seed
          ~spec:Noc_resil.Campaign.Single_link acg arch
      in
      {
        min_delivered_fraction = rep.Noc_resil.Campaign.min_delivered_fraction;
        max_latency_factor = rep.Noc_resil.Campaign.max_latency_factor;
        worst_disconnected_pairs = rep.Noc_resil.Campaign.worst_disconnected_pairs;
        critical_links = rep.Noc_resil.Campaign.critical_links;
        survives_single_link = rep.Noc_resil.Campaign.survives_all;
        resil_stranded = rep.Noc_resil.Campaign.stranded_total;
      }
  in
  let serve =
    if not settings.serve then
      (* vacuous placeholders: the serve stage did not run *)
      {
        serve_requests = 0;
        serve_ok = 0;
        serve_hits = 0;
        serve_hit_rate = 0.0;
        serve_rps = 0.0;
        serve_byte_identical = true;
        serve_errors = 0;
        serve_shed = 0;
        serve_error_rate = 0.0;
        serve_shed_rate = 0.0;
        serve_restore_ok = true;
      }
    else
      Obs.span observe ~cat:"bench" (s.name ^ ".serve") (fun () ->
          (* deterministic request mix against a fresh daemon: four
             well-formed requests (fresh, exact duplicate, two permuted
             copies — all one cache key via canonicalization, so 3 of 4
             hit byte-identically), two typed failures (unknown library,
             dead-on-arrival deadline), and a 3-request burst through a
             2-slot admission queue (2 hits + 1 shed).  Then the cache is
             snapshotted, restored into a fresh daemon, and the restored
             daemon must answer a duplicate from cache with the exact same
             bytes. *)
          let module Sd = Noc_serve.Daemon in
          let module Sp = Noc_serve.Proto in
          let rng = Prng.create ~seed:settings.seed in
          let config = { Sd.default_config with max_inflight = 2 } in
          let daemon = Sd.create ~config ~observe () in
          let budget = Bb.Budget.with_domains 1 settings.budget in
          let mix =
            [
              acg;
              acg;
              Noc_serve.Replay.permute ~rng acg;
              Noc_serve.Replay.permute ~rng acg;
            ]
          in
          let error_probes d =
            [
              Sd.solve d (Sp.Request.make ~library:"no-such-library" ~budget acg);
              Sd.solve d
                (Sp.Request.make
                   ~budget:Bb.Budget.(default |> with_timeout_s (Some 0.0))
                   acg);
            ]
          in
          let (outcomes, failures, burst), wall =
            Noc_util.Timer.time (fun () ->
                let outcomes =
                  List.map (fun a -> Sd.solve_exn daemon (Sp.Request.make ~budget a)) mix
                in
                let failures = error_probes daemon in
                let burst =
                  Sd.serve_batch daemon
                    (List.map (fun a -> Sp.Request.make ~budget a) [ acg; acg; acg ])
                in
                (outcomes, failures, burst))
          in
          let ok_outcomes =
            outcomes @ List.filter_map Result.to_option burst
          in
          let requests = List.length outcomes + List.length failures + List.length burst
          in
          let hits =
            List.length
              (List.filter (fun (o : Sd.outcome) -> o.Sd.status = Sd.Hit) ok_outcomes)
          in
          let errors =
            List.length
              (List.filter
                 (function Error (Sp.Error.Shed _) | Ok _ -> false | Error _ -> true)
                 (failures @ burst))
          in
          let shed =
            List.length
              (List.filter
                 (function Error (Sp.Error.Shed _) -> true | _ -> false)
                 burst)
          in
          let first = (List.hd outcomes).Sd.bytes in
          let restore_ok =
            (* crash-only persistence probe: snapshot -> cold daemon ->
               restore -> the duplicate must hit with identical bytes *)
            let path = Filename.temp_file "nocsynth-bench" ".cache" in
            Fun.protect
              ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
              (fun () ->
                Sd.cache daemon |> fun c ->
                Noc_serve.Cache.snapshot c ~path;
                let fresh = Sd.create ~config ~observe () in
                match Noc_serve.Cache.restore (Sd.cache fresh) ~path with
                | Error _ -> false
                | Ok _ -> (
                    match Sd.solve fresh (Sp.Request.make ~budget acg) with
                    | Ok o -> o.Sd.status = Sd.Hit && String.equal o.Sd.bytes first
                    | Error _ -> false))
          in
          let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
          {
            serve_requests = requests;
            serve_ok = List.length ok_outcomes;
            serve_hits = hits;
            serve_hit_rate = ratio hits (List.length ok_outcomes);
            serve_rps = (if wall > 0.0 then float_of_int requests /. wall else 0.0);
            serve_byte_identical =
              List.for_all
                (fun (o : Sd.outcome) -> String.equal o.Sd.bytes first)
                ok_outcomes;
            serve_errors = errors;
            serve_shed = shed;
            serve_error_rate = ratio errors requests;
            serve_shed_rate = ratio shed requests;
            serve_restore_ok = restore_ok;
          })
  in
  let explore =
    if settings.explore_points <= 0 then
      (* vacuous placeholders: the exploration stage did not run *)
      {
        explore_space = 0;
        explore_points = 0;
        front_size = 0;
        hypervolume = 0.0;
        explore_steals = 0;
      }
    else
      Obs.span observe ~cat:"bench" (s.name ^ ".explore") (fun () ->
          (* seed-deterministic whatever the sharding: the front and
             hypervolume are gateable, the steal count is informational *)
          let module E = Noc_explore.Explore in
          let axes = E.axes ~seed:settings.seed ~library acg in
          let r =
            E.run ~observe ~domains:(List.fold_left max 1 settings.domains)
              ~points:settings.explore_points ~seed:settings.seed axes acg
          in
          {
            explore_space = r.E.space;
            explore_points = Array.length r.E.evaluated;
            front_size = List.length r.E.front;
            hypervolume = r.E.hypervolume;
            explore_steals = r.E.steals;
          })
  in
  Obs.Counter.incr (Obs.counter observe "bench.scenarios");
  {
    name = s.name;
    kind = s.kind;
    cores = Acg.num_cores acg;
    flows = Acg.num_flows acg;
    total_volume = Acg.total_volume acg;
    search;
    links = Syn.link_count arch;
    avg_hops = Syn.avg_hops acg arch;
    max_hops = Syn.max_hops arch;
    energy_pj;
    deadlock_free = dl.Noc_core.Deadlock.cdg_cycle = None;
    vcs_needed = dl.Noc_core.Deadlock.vcs_needed;
    engines;
    sweep =
      List.map
        (fun (p : Noc_sim.Sweep.point) ->
          {
            rate = p.Noc_sim.Sweep.rate;
            avg_latency = p.Noc_sim.Sweep.avg_latency;
            delivered = p.Noc_sim.Sweep.delivered;
            throughput = p.Noc_sim.Sweep.throughput;
          })
        sweep_points;
    saturation_rate = Noc_sim.Sweep.saturation_rate sweep_points;
    resilience;
    serve;
    explore;
  }

let run_corpus ?(observe = Obs.disabled) ?library ~settings scenarios =
  List.map (fun s -> run ~observe ?library ~settings s) scenarios

let engine_row r name = List.find_opt (fun e -> e.engine = name) r.engines

let pp_row ppf r =
  let d1 =
    match r.search with
    | s :: _ -> s
    | [] -> assert false
  in
  (* the speedup column reports the last (widest) domain sample vs d1 *)
  let dn = List.nth r.search (List.length r.search - 1) in
  let lat name = match engine_row r name with Some e -> e.e_latency | None -> 0.0 in
  Format.fprintf ppf
    "%-22s %-6s %5d %6d %9.4f %8d %8d %9.0f %8.0f %5.2fx %11.1f %8.2f %8.2f %6s %8.0f %5.2f %5d %12.1f"
    r.name r.kind r.cores r.flows d1.wall_s d1.nodes d1.pruned d1.best_cost
    d1.nodes_per_sec dn.speedup_vs_d1 r.energy_pj (lat "wormhole") (lat "flit")
    (match r.saturation_rate with Some x -> Printf.sprintf "%.3f" x | None -> "-")
    r.serve.serve_rps r.serve.serve_hit_rate r.explore.front_size r.explore.hypervolume

let pp_header ppf () =
  Format.fprintf ppf
    "%-22s %-6s %5s %6s %9s %8s %8s %9s %8s %6s %11s %8s %8s %6s %8s %5s %5s %12s"
    "scenario" "kind" "cores" "flows" "wall (s)" "nodes" "pruned" "cost" "nd/s" "spdup"
    "energy (pJ)" "wh lat" "fl lat" "sat" "srv r/s" "hit" "front" "hv"
