(** Regression comparison of two benchmark records.

    Flattens both records ({!Record.flatten}), matches metric keys against
    a small rule table (wall time, search nodes, cost, energy, latency,
    cycles, links, virtual channels, delivered/throughput, exploration
    front size and hypervolume) and flags
    beyond-threshold changes in the bad direction.  Non-timing metrics are
    deterministic given the corpus seeds, so their default threshold is
    tight; wall-clock has a looser threshold plus an absolute floor to
    absorb scheduler noise on millisecond-scale samples. *)

type direction = Increase_bad | Decrease_bad

type rule = {
  suffix : string;
  limit_pct : float;
  min_abs : float;
  direction : direction;
}

val rules : time_limit_pct:float -> limit_pct:float -> rule list

type verdict = {
  metric : string;
  base : float;
  cur : float;
  change_pct : float;  (** positive means worse, per the metric's direction *)
  limit_pct : float;
}

type report = {
  regressions : verdict list;
  improvements : verdict list;
  missing : string list;  (** gated metrics present in base, absent in cur *)
  checked : int;
}

val compare_flat :
  rules:rule list -> (string * float) list -> (string * float) list -> report

val compare_records :
  ?time_limit_pct:float ->
  ?limit_pct:float ->
  base:Noc_obs.Obs.Json.t ->
  cur:Noc_obs.Obs.Json.t ->
  unit ->
  (report, [ `Msg of string ]) result
(** Defaults: 10% for wall-clock metrics, 2% for everything else.
    [Error] on schema mismatch. *)

val ok : report -> bool
(** No regressions and no missing gated metrics. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
