(** Runs the benchmark corpus through the full synthesis flow.

    Each scenario goes decompose -> glue -> deadlock analysis -> burst
    simulation on each engine fidelity (wormhole, cycle-accurate flit) ->
    offered-load sweep -> single-link fault campaign
    -> service-layer request mix, with per-stage [Noc_obs] spans
    (category ["bench"]) so a [--trace] of a bench run opens in Perfetto.
    Everything is seeded; apart from wall-clock fields the results are
    deterministic, which is what makes the regression gate possible. *)

type settings = {
  budget : Noc_core.Branch_bound.Budget.t;
      (** per-scenario decomposition budget; its [domains] field is
          overridden by each entry of {!field-domains} *)
  domains : int list;  (** decompose once per domain count (scaling row) *)
  sweep_rates : float list;
  sweep_cycles : int;
  sweep_engine : Noc_sim.Engine.kind;
      (** fidelity of the offered-load sweep; the persisted records run it
          at [Flit], where serialization and head-of-line blocking place
          the saturation knee *)
  wormhole_size_flits : int;  (** packet size for every engine burst stage *)
  seed : int;
  simulate : bool;
      (** run the wormhole burst, load sweep and fault campaign; the scale
          tiers turn this off — cycle-accurate simulation of a 1024-core
          run would swamp the search-scaling signal *)
  fallback : bool;  (** seed the search with the greedy anytime fallback *)
  portfolio : bool;  (** race the branch-ordering portfolio *)
  serve : bool;
      (** run the service-layer stage: a 4-request mix (fresh, duplicate,
          two isomorphic permutations) through a fresh [nocsynthd] daemon,
          measuring requests/sec and cache hit rate; off in the scale
          tiers, where the extra search would swamp the scaling signal *)
  explore_points : int;
      (** design points of the Pareto-exploration stage
          ({!Noc_explore.Explore}); [0] skips the stage (the scale tiers —
          every point is itself a bounded search) *)
}

val full : settings
(** The persisted-record settings: domains [1; 2], 4 sweep rates, 1000
    injection cycles. *)

val smoke : settings
(** CI-gate settings: single domain, 2 sweep rates, 200 cycles — seconds
    for the whole corpus. *)

val scale : settings
(** Scaling-tier settings for [Corpus.scale]: 8 s / 2M-node anytime
    budgets with the greedy fallback, domains [1; 8], simulation stages
    skipped. *)

val scale_smoke : settings
(** CI scaling smoke ([@scale-smoke], [Corpus.scale_smoke]): sub-second
    budgets, domains [1; 2]. *)

type search_sample = {
  domains : int;
  wall_s : float;
  nodes : int;
  pruned : int;
  matches_tried : int;
  best_cost : float;
  timed_out : bool;
  nodes_per_sec : float;  (** nodes / wall_s — the search-throughput gauge *)
  speedup_vs_d1 : float;
      (** first sample's wall-clock / this sample's: >1 means the extra
          domains helped (the first sample is its own baseline, 1.0) *)
}

type sweep_sample = {
  rate : float;
  avg_latency : float;
  delivered : int;
  throughput : float;
}

type engine_sample = {
  engine : string;  (** "wormhole" or "flit" *)
  e_status : string;  (** "idle", "deadlock" or "limit" *)
  e_cycles : int;
  e_latency : float;
  e_delivered : int;
  e_flit_hops : int;
  e_vc_truncated : bool;
      (** wormhole only: the VC cap truncated the increasing-channel
          assignment, voiding the deadlock-freedom argument *)
}

type serve_sample = {
  serve_requests : int;  (** 9 when the stage ran, 0 when skipped *)
  serve_ok : int;  (** successful outcomes — 6 (4 wf mix + 2 admitted burst) *)
  serve_hits : int;
  serve_hit_rate : float;
      (** hits / ok — 5/6 exactly when canonicalization collapses the
          duplicate, both permuted copies and the admitted burst members
          onto the fresh miss *)
  serve_rps : float;  (** requests / wall-clock of the whole mix *)
  serve_byte_identical : bool;
      (** every successful response (hit or miss) returned exactly the
          first miss's bytes — vacuously [true] when the stage is
          skipped *)
  serve_errors : int;
      (** typed non-shed failures — 2 exactly (unknown library +
          dead-on-arrival deadline probes) *)
  serve_shed : int;  (** 1 exactly: the 3-request burst through 2 slots *)
  serve_error_rate : float;  (** errors / requests *)
  serve_shed_rate : float;  (** shed / requests *)
  serve_restore_ok : bool;
      (** snapshot -> cold daemon -> restore answered a duplicate from
          cache byte-identically *)
}

type explore_sample = {
  explore_space : int;  (** design points in the scenario's full space *)
  explore_points : int;  (** points actually evaluated (0 when skipped) *)
  front_size : int;  (** non-dominated points among those evaluated *)
  hypervolume : float;
      (** dominated hypervolume against the per-scenario reference point —
          with the front size, the gated exploration column *)
  explore_steals : int;
      (** work-stealing migrations during sharded evaluation —
          scheduling-dependent, informational only *)
}

type resilience_sample = {
  min_delivered_fraction : float;
      (** worst delivered/injected over the exhaustive single-link sweep *)
  max_latency_factor : float;  (** worst latency vs the fault-free baseline *)
  worst_disconnected_pairs : int;
  critical_links : int;  (** links whose loss strands traffic or a flow *)
  survives_single_link : bool;  (** every single-link run delivered 1.0 *)
  resil_stranded : int;  (** unclassified packets across the sweep — must be 0 *)
}

type result = {
  name : string;
  kind : string;
  cores : int;
  flows : int;
  total_volume : int;
  search : search_sample list;  (** one sample per requested domain count *)
  links : int;
  avg_hops : float;
  max_hops : int;
  energy_pj : float;  (** Eq. 5 energy on a grid floorplan, 180 nm *)
  deadlock_free : bool;
  vcs_needed : int;
  engines : engine_sample list;
      (** one burst row per fidelity, same one-packet-per-flow traffic;
          empty when [simulate] is off *)
  sweep : sweep_sample list;
  saturation_rate : float option;
  resilience : resilience_sample;
      (** exhaustive single-link fault campaign ({!Noc_resil.Campaign}) *)
  serve : serve_sample;
      (** service-layer request mix through {!Noc_serve.Daemon} — the
          requests/sec and cache-hit-rate bench columns *)
  explore : explore_sample;
      (** Pareto-exploration stage ({!Noc_explore.Explore.run} over the
          scenario's mapping x library-subset x bandwidth space) — the
          front-size and hypervolume bench columns *)
}

val run :
  ?observe:Noc_obs.Obs.t ->
  ?library:Noc_primitives.Library.t ->
  settings:settings ->
  Corpus.scenario ->
  result

val run_corpus :
  ?observe:Noc_obs.Obs.t ->
  ?library:Noc_primitives.Library.t ->
  settings:settings ->
  Corpus.scenario list ->
  result list

val engine_row : result -> string -> engine_sample option
(** The burst row of the named engine, if that fidelity ran. *)

val pp_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> result -> unit
