module J = Noc_obs.Obs.Json

let schema = "nocsynth-bench"

(* v2 added the per-scenario "resilience" object (single-link fault
   campaign); v3 added the "nodes_per_sec" and "speedup_vs_d1" search
   columns (work-stealing scaling rows); v4 added the "serve" object
   (nocsynthd request mix: requests/sec and cache hit rate); v5 replaced
   the single "wormhole" object with the per-engine "engines" list
   (wormhole + cycle-accurate flit burst rows, keyed by engine name) and
   moved the offered-load sweep to the flit engine, which moves every
   saturation knee; v6 added the "explore" object (Pareto-exploration
   stage: design-space size, points evaluated, front size, dominated
   hypervolume, steal count); v7 extended the "serve" object with the
   crash-only service columns (ok/errors/shed counts, error_rate,
   shed_rate, snapshot restore_ok) from the hardened request mix, whose
   hit_rate denominator is now successful outcomes only.  Older records
   fail the schema check and must be re-recorded. *)
let schema_version = 7

let search_sample_json (s : Runner.search_sample) =
  J.Obj
    [
      ("domains", J.Int s.Runner.domains);
      ("wall_s", J.Float s.Runner.wall_s);
      ("nodes", J.Int s.Runner.nodes);
      ("pruned", J.Int s.Runner.pruned);
      ("matches_tried", J.Int s.Runner.matches_tried);
      ("best_cost", J.Float s.Runner.best_cost);
      ("timed_out", J.Bool s.Runner.timed_out);
      ("nodes_per_sec", J.Float s.Runner.nodes_per_sec);
      ("speedup_vs_d1", J.Float s.Runner.speedup_vs_d1);
    ]

let sweep_sample_json (p : Runner.sweep_sample) =
  J.Obj
    [
      ("rate", J.Float p.Runner.rate);
      ("avg_latency", J.Float p.Runner.avg_latency);
      ("delivered", J.Int p.Runner.delivered);
      ("throughput", J.Float p.Runner.throughput);
    ]

let result_json (r : Runner.result) =
  J.Obj
    [
      ("name", J.Str r.Runner.name);
      ("kind", J.Str r.Runner.kind);
      ("cores", J.Int r.Runner.cores);
      ("flows", J.Int r.Runner.flows);
      ("total_volume", J.Int r.Runner.total_volume);
      ("search", J.List (List.map search_sample_json r.Runner.search));
      ("links", J.Int r.Runner.links);
      ("avg_hops", J.Float r.Runner.avg_hops);
      ("max_hops", J.Int r.Runner.max_hops);
      ("energy_pj", J.Float r.Runner.energy_pj);
      ("deadlock_free", J.Bool r.Runner.deadlock_free);
      ("vcs_needed", J.Int r.Runner.vcs_needed);
      ( "engines",
        J.List
          (List.map
             (fun (e : Runner.engine_sample) ->
               J.Obj
                 [
                   ("name", J.Str e.Runner.engine);
                   ("status", J.Str e.Runner.e_status);
                   ("cycles", J.Int e.Runner.e_cycles);
                   ("avg_latency", J.Float e.Runner.e_latency);
                   ("delivered", J.Int e.Runner.e_delivered);
                   ("flit_hops", J.Int e.Runner.e_flit_hops);
                   ("vc_truncated", J.Bool e.Runner.e_vc_truncated);
                 ])
             r.Runner.engines) );
      ("sweep", J.List (List.map sweep_sample_json r.Runner.sweep));
      ( "saturation_rate",
        match r.Runner.saturation_rate with Some x -> J.Float x | None -> J.Null );
      ( "resilience",
        let s = r.Runner.resilience in
        J.Obj
          [
            ("min_delivered_fraction", J.Float s.Runner.min_delivered_fraction);
            ("max_latency_factor", J.Float s.Runner.max_latency_factor);
            ("worst_disconnected_pairs", J.Int s.Runner.worst_disconnected_pairs);
            ("critical_links", J.Int s.Runner.critical_links);
            ("survives_single_link", J.Bool s.Runner.survives_single_link);
            ("stranded", J.Int s.Runner.resil_stranded);
          ] );
      ( "serve",
        let s = r.Runner.serve in
        J.Obj
          [
            ("requests", J.Int s.Runner.serve_requests);
            ("ok", J.Int s.Runner.serve_ok);
            ("hits", J.Int s.Runner.serve_hits);
            ("hit_rate", J.Float s.Runner.serve_hit_rate);
            ("rps", J.Float s.Runner.serve_rps);
            ("byte_identical", J.Bool s.Runner.serve_byte_identical);
            ("errors", J.Int s.Runner.serve_errors);
            ("shed", J.Int s.Runner.serve_shed);
            ("error_rate", J.Float s.Runner.serve_error_rate);
            ("shed_rate", J.Float s.Runner.serve_shed_rate);
            ("restore_ok", J.Bool s.Runner.serve_restore_ok);
          ] );
      ( "explore",
        let s = r.Runner.explore in
        J.Obj
          [
            ("space", J.Int s.Runner.explore_space);
            ("points", J.Int s.Runner.explore_points);
            ("front_size", J.Int s.Runner.front_size);
            ("hypervolume", J.Float s.Runner.hypervolume);
            ("steals", J.Int s.Runner.explore_steals);
          ] );
    ]

let to_json ?(created_unix_s = Unix.gettimeofday ()) ~rev ~mode results =
  J.Obj
    [
      ("schema", J.Str schema);
      ("schema_version", J.Int schema_version);
      ("rev", J.Str rev);
      ("mode", J.Str mode);
      ("created_unix_s", J.Float created_unix_s);
      ("scenarios", J.List (List.map result_json results));
    ]

let write ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string json);
      output_char oc '\n')

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error (`Msg m)
  | text -> (
      match J.parse (String.trim text) with
      | Ok v -> Ok v
      | Error (`Msg m) -> Error (`Msg (Printf.sprintf "%s: %s" path m)))

let check_schema json =
  match (J.member "schema" json, J.member "schema_version" json) with
  | Some (J.Str s), Some (J.Int v) when s = schema && v = schema_version -> Ok ()
  | Some (J.Str s), Some (J.Int v) ->
      Error
        (`Msg
          (Printf.sprintf "schema mismatch: got %s v%d, expected %s v%d" s v schema
             schema_version))
  | _ -> Error (`Msg "not a nocsynth-bench record (missing schema fields)")

(* Flattens a record into dotted (path, value) metric pairs, e.g.
   "scenarios.aes.search.d1.wall_s".  Lists of objects are keyed by their
   "name" (or "domains"/"rate") member when present, by index otherwise,
   so adding a scenario never shifts another scenario's keys. *)
let flatten json =
  let acc = ref [] in
  let key_of_element e =
    match J.member "name" e with
    | Some (J.Str n) -> Some n
    | _ -> (
        match J.member "domains" e with
        | Some (J.Int d) -> Some (Printf.sprintf "d%d" d)
        | _ -> (
            match J.member "rate" e with
            | Some r -> (
                match J.to_float r with
                | Some f -> Some (Printf.sprintf "r%g" f)
                | None -> None)
            | _ -> None))
  in
  let rec go prefix v =
    let sub k = if prefix = "" then k else prefix ^ "." ^ k in
    match v with
    | J.Int i -> acc := (prefix, float_of_int i) :: !acc
    | J.Float f -> acc := (prefix, f) :: !acc
    | J.Bool b -> acc := (prefix, if b then 1.0 else 0.0) :: !acc
    | J.Obj kvs -> List.iter (fun (k, v) -> go (sub k) v) kvs
    | J.List xs ->
        List.iteri
          (fun i e ->
            let k = match key_of_element e with Some k -> k | None -> string_of_int i in
            go (sub k) e)
          xs
    | J.Null | J.Str _ -> ()
  in
  go "" json;
  List.rev !acc
