type t = {
  acg_cores : int;
  acg_flows : int;
  total_volume : int;
  listing : string;
  histogram : (string * int) list;
  remainder_edges : int;
  links : int;
  max_hops : int;
  avg_hops : float;
  deadlock_free : bool;
  vcs_needed : int;
  violations : string list;
  energy_pj : float option;
  search : Branch_bound.stats;
}

let build ?tech ?fp ?constraints ?rng ~cost ~acg ~decomposition ~stats () =
  let arch = Synthesis.of_decomposition acg decomposition in
  let listing =
    Format.asprintf "%a" (Decomposition.pp_with_cost cost acg) decomposition
  in
  let dead = Deadlock.analyze arch in
  let violations =
    match constraints with
    | None -> []
    | Some c ->
        let rng =
          match rng with Some r -> r | None -> Noc_util.Prng.create ~seed:0x5eed
        in
        List.map
          (Format.asprintf "%a" Constraints.pp_violation)
          (Constraints.check ~rng c acg arch)
  in
  let energy_pj =
    match (tech, fp) with
    | Some tech, Some fp -> Some (Synthesis.total_energy ~tech ~fp acg arch)
    | _ -> None
  in
  {
    acg_cores = Acg.num_cores acg;
    acg_flows = Acg.num_flows acg;
    total_volume = Acg.total_volume acg;
    listing;
    histogram = Decomposition.primitive_histogram decomposition;
    remainder_edges = Noc_graph.Digraph.num_edges decomposition.Decomposition.remainder;
    links = Synthesis.link_count arch;
    max_hops = Synthesis.max_hops arch;
    avg_hops = Synthesis.avg_hops acg arch;
    deadlock_free = dead.Deadlock.cdg_cycle = None;
    vcs_needed = dead.Deadlock.vcs_needed;
    violations;
    energy_pj;
    search = stats;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "application: %d cores, %d flows, %d bits total@," t.acg_cores
    t.acg_flows t.total_volume;
  Format.fprintf ppf "@,decomposition:@,%s" t.listing;
  (if t.histogram <> [] then begin
     Format.fprintf ppf "primitives:";
     List.iter (fun (n, k) -> Format.fprintf ppf " %dx %s" k n) t.histogram;
     Format.fprintf ppf "@,"
   end);
  Format.fprintf ppf "remainder: %d dedicated edge(s)@," t.remainder_edges;
  Format.fprintf ppf "@,architecture: %d links, max %d hops, %.2f avg hops@," t.links
    t.max_hops t.avg_hops;
  Format.fprintf ppf "deadlock: %s (VCs needed: %d)@,"
    (if t.deadlock_free then "free" else "channel-dependency cycle detected")
    t.vcs_needed;
  (match t.violations with
  | [] -> Format.fprintf ppf "constraints: satisfied or not checked@,"
  | vs ->
      Format.fprintf ppf "constraint violations:@,";
      List.iter (fun v -> Format.fprintf ppf "  - %s@," v) vs);
  (match t.energy_pj with
  | Some e -> Format.fprintf ppf "Eq. 5 energy: %.1f pJ@," e
  | None -> ());
  Format.fprintf ppf
    "search: %d nodes, %d matchings, %d leaves, %d pruned, %d incumbent(s), %.3f s%s@,"
    t.search.Branch_bound.nodes t.search.Branch_bound.matches_tried
    t.search.Branch_bound.leaves t.search.Branch_bound.pruned
    t.search.Branch_bound.incumbents t.search.Branch_bound.elapsed_s
    (if t.search.Branch_bound.timed_out then " (budget exhausted)" else "");
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let to_json t =
  let module J = Noc_obs.Obs.Json in
  J.Obj
    [
      ("acg_cores", J.Int t.acg_cores);
      ("acg_flows", J.Int t.acg_flows);
      ("total_volume", J.Int t.total_volume);
      ( "primitives",
        J.Obj (List.map (fun (n, k) -> (n, J.Int k)) t.histogram) );
      ("remainder_edges", J.Int t.remainder_edges);
      ("links", J.Int t.links);
      ("max_hops", J.Int t.max_hops);
      ("avg_hops", J.Float t.avg_hops);
      ("deadlock_free", J.Bool t.deadlock_free);
      ("vcs_needed", J.Int t.vcs_needed);
      ("violations", J.List (List.map (fun v -> J.Str v) t.violations));
      ( "energy_pj",
        match t.energy_pj with Some e -> J.Float e | None -> J.Null );
      ("search", Branch_bound.stats_to_json t.search);
    ]
