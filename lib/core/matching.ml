module D = Noc_graph.Digraph
module Vmap = D.Vmap
module P = Noc_primitives.Primitive
module L = Noc_primitives.Library

type t = {
  entry : L.entry;
  mapping : int Vmap.t;
  covered : D.Edge.t list;
}

let of_vf2 entry m =
  let covered = Noc_graph.Vf2.edge_image ~pattern:entry.L.prim.P.repr m in
  { entry; mapping = m; covered }

let of_approx entry ~target (a : Noc_graph.Vf2.approx) =
  let covered =
    Noc_graph.Vf2.covered_edge_image ~pattern:entry.L.prim.P.repr ~target
      a.Noc_graph.Vf2.approx_mapping
  in
  { entry; mapping = a.Noc_graph.Vf2.approx_mapping; covered }

let of_approx_view entry ~pattern ~target (a : Noc_graph.Vf2.approx) =
  let covered =
    Noc_graph.Vf2.covered_edge_image_view ~pattern ~target
      a.Noc_graph.Vf2.approx_mapping
  in
  { entry; mapping = a.Noc_graph.Vf2.approx_mapping; covered }

let primitive t = t.entry.L.prim

let impl_in_acg t =
  let f v =
    match Vmap.find_opt v t.mapping with
    | Some w -> w
    | None -> invalid_arg "Matching.impl_in_acg: implementation vertex not mapped"
  in
  D.map_vertices f (primitive t).P.impl

let inverse t =
  Vmap.fold (fun p a acc -> Vmap.add a p acc) t.mapping Vmap.empty

let acg_route t ~src ~dst =
  let inv = inverse t in
  match (Vmap.find_opt src inv, Vmap.find_opt dst inv) with
  | Some ps, Some pd -> (
      match P.route (primitive t) ~src:ps ~dst:pd with
      | Some path -> Some (List.map (fun v -> Vmap.find v t.mapping) path)
      | None -> None)
  | _ -> None

let routes t =
  List.filter_map
    (fun (u, v) ->
      match acg_route t ~src:u ~dst:v with
      | Some path -> Some ((u, v), path)
      | None -> None)
    t.covered

let cost c acg t =
  match c with
  | Cost.Edge_count -> float_of_int (P.impl_link_count (primitive t))
  | Cost.Energy _ ->
      List.fold_left
        (fun acc ((u, v), path) -> acc +. Cost.route_cost c acg ~src:u ~dst:v path)
        0.0 (routes t)

let pp ppf t =
  let pairs =
    Vmap.bindings t.mapping
    |> List.map (fun (p, a) -> Printf.sprintf "(%d %d)" p a)
    |> String.concat ", "
  in
  Format.fprintf ppf "%d: %s,\tMapping: %s" t.entry.L.id (primitive t).P.name pairs
