(** Application mapping — the third dimension of the paper's design space.

    The paper's introduction frames NoC design as three axes: communication
    infrastructure (what this library synthesizes), routing strategy, and
    "application mapping to the network nodes ... which consists of placing
    the message source/sink pairs to network nodes with the objective of
    satisfying some design constraints (e.g. energy, performance)".  The
    synthesis flow assumes the mapping is given; this module supplies it,
    implementing the energy-aware mapping of Hu & Marculescu (DATE'03,
    the paper's reference [4]) for regular architectures: find the
    core-to-tile permutation that minimizes the volume-weighted hop energy
    on a mesh.

    Optimizing the mesh baseline's mapping makes the paper's
    customized-vs-mesh comparison conservative: the customized architecture
    is measured against the mesh at its best. *)

type t = int Noc_graph.Digraph.Vmap.t
(** Core id -> tile id (a bijection on the cores). *)

val identity : Acg.t -> t

val random : rng:Noc_util.Prng.t -> Acg.t -> t
(** A uniformly random permutation of the ACG's own core ids (a seeded
    Fisher–Yates shuffle): the sampled mapping axis of the design-space
    exploration driver.  Deterministic for a given PRNG state. *)

val all : ?max_cores:int -> Acg.t -> t list
(** Every permutation of the ACG's core ids, in lexicographic order of the
    image sequence (the identity first): the exhaustively enumerable
    mapping axis for oracle-sized graphs.  @raise Invalid_argument when
    the ACG has more than [max_cores] (default 7) cores — 8! permutations
    is already past what any caller should enumerate. *)

val apply : t -> Acg.t -> Acg.t
(** Relabels the ACG's vertices by the mapping (volumes and bandwidths
    follow). @raise Invalid_argument if the mapping is not injective on the
    ACG's cores. *)

val mesh_hop_cost : rows:int -> cols:int -> Acg.t -> t -> float
(** Σ over flows of volume × Manhattan tile distance under the mapping: the
    mapping objective for a mesh with dimension-ordered routing.
    @raise Invalid_argument if some core of the ACG is unmapped (the
    historical behaviour was a bare [Not_found] escape). *)

val optimize_mesh :
  rng:Noc_util.Prng.t ->
  ?iterations:int ->
  rows:int ->
  cols:int ->
  Acg.t ->
  t
(** Simulated-annealing search over tile permutations minimizing
    {!mesh_hop_cost} (default 4000 swap attempts); deterministic for a
    given PRNG.  Cores must number at most [rows * cols].
    @raise Invalid_argument otherwise. *)
