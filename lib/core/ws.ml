module Deque = struct
  type 'a t = {
    mutex : Mutex.t;
    mutable buf : 'a option array;
    mutable head : int;
    mutable len : int;
  }

  let create () = { mutex = Mutex.create (); buf = Array.make 64 None; head = 0; len = 0 }

  let push_bottom t x =
    Mutex.lock t.mutex;
    let cap = Array.length t.buf in
    if t.len = cap then begin
      let nbuf = Array.make (2 * cap) None in
      for i = 0 to t.len - 1 do
        nbuf.(i) <- t.buf.((t.head + i) mod cap)
      done;
      t.buf <- nbuf;
      t.head <- 0
    end;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
    t.len <- t.len + 1;
    Mutex.unlock t.mutex

  let pop_bottom t =
    Mutex.lock t.mutex;
    let r =
      if t.len = 0 then None
      else begin
        let i = (t.head + t.len - 1) mod Array.length t.buf in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.len <- t.len - 1;
        x
      end
    in
    Mutex.unlock t.mutex;
    r

  let steal_top t =
    Mutex.lock t.mutex;
    let r =
      if t.len = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        x
      end
    in
    Mutex.unlock t.mutex;
    r
end

type stats = { workers : int; steals : int }

let map ?(domains = 1) f xs =
  let n = Array.length xs in
  if domains <= 1 || n <= 1 then (Array.map f xs, { workers = 1; steals = 0 })
  else begin
    let n_dom = min domains n in
    let deques = Array.init n_dom (fun _ -> Deque.create ()) in
    (* deal indices round-robin, highest first, so each owner pops its own
       work in ascending input order (pop_bottom is LIFO) *)
    for i = n - 1 downto 0 do
      Deque.push_bottom deques.(i mod n_dom) i
    done;
    let results = Array.make n None in
    let first_exn = Atomic.make None in
    let steal_count = Atomic.make 0 in
    let worker slot () =
      let my = deques.(slot) in
      let try_steal () =
        let stolen = ref None in
        let k = ref 1 in
        while Option.is_none !stolen && !k < n_dom do
          (match Deque.steal_top deques.((slot + !k) mod n_dom) with
          | Some i ->
              Atomic.incr steal_count;
              stolen := Some i
          | None -> ());
          incr k
        done;
        !stolen
      in
      let continue = ref true in
      while !continue do
        (* no task ever spawns another, so empty-everywhere means the only
           remaining work is already in flight on some other worker *)
        match (if Atomic.get first_exn <> None then None
               else match Deque.pop_bottom my with Some i -> Some i | None -> try_steal ())
        with
        | None -> continue := false
        | Some i -> (
            match f xs.(i) with
            | y -> results.(i) <- Some y
            | exception e ->
                ignore (Atomic.compare_and_set first_exn None (Some e)))
      done
    in
    let doms = Array.init (n_dom - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1) ())) in
    worker 0 ();
    Array.iter Domain.join doms;
    (match Atomic.get first_exn with Some e -> raise e | None -> ());
    ( Array.mapi
        (fun i r ->
          match r with Some y -> y | None -> raise (Invalid_argument (Printf.sprintf "Ws.map: slot %d unevaluated" i)))
        results,
      { workers = n_dom; steals = Atomic.get steal_count } )
  end
