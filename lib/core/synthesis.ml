module D = Noc_graph.Digraph
module Edge_map = D.Edge_map

type t = {
  topology : D.t;
  routes : int list Edge_map.t;
  uniform_router_ports : int option;
}

(* single pass over the path: checks the endpoints and every hop without the
   List.nth/List.length rescans (those made validation quadratic in the path
   length) *)
let path_follows topology ~src ~dst path =
  match path with
  | [] -> false
  | first :: _ ->
      first = src
      && (let rec ok = function
            | a :: (b :: _ as rest) -> D.mem_edge topology a b && ok rest
            | [ last ] -> last = dst
            | [] -> false
          in
          ok path)

let routes_valid_internal topology routes =
  Edge_map.for_all (fun (src, dst) path -> path_follows topology ~src ~dst path) routes

let make ~topology ~routes ?uniform_router_ports () =
  let topology = D.undirected_closure topology in
  if not (routes_valid_internal topology routes) then
    invalid_arg "Synthesis.make: a route does not follow the topology";
  { topology; routes; uniform_router_ports }

let of_decomposition acg decomp =
  let base =
    D.fold_vertices (fun v g -> D.add_vertex g v) (Acg.graph acg) D.empty
  in
  let topology =
    List.fold_left
      (fun g m -> D.union g (Matching.impl_in_acg m))
      base decomp.Decomposition.matchings
  in
  let topology =
    D.fold_edges (fun u v g -> D.add_edge_pair g u v) decomp.Decomposition.remainder topology
  in
  let routes =
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun acc ((u, v), path) -> Edge_map.add (u, v) path acc)
          acc (Matching.routes m))
      Edge_map.empty decomp.Decomposition.matchings
  in
  (* every covered edge must have received a route *)
  List.iter
    (fun m ->
      List.iter
        (fun (u, v) ->
          if not (Edge_map.mem (u, v) routes) then
            invalid_arg
              (Printf.sprintf "Synthesis.of_decomposition: no route for %d->%d" u v))
        m.Matching.covered)
    decomp.Decomposition.matchings;
  let routes =
    D.fold_edges
      (fun u v acc -> Edge_map.add (u, v) [ u; v ] acc)
      decomp.Decomposition.remainder routes
  in
  { topology; routes; uniform_router_ports = None }

let custom = of_decomposition

let mesh ~rows ~cols acg =
  let n = rows * cols in
  D.fold_vertices
    (fun v () ->
      if v < 1 || v > n then
        invalid_arg (Printf.sprintf "Synthesis.mesh: core %d outside %dx%d grid" v rows cols))
    (Acg.graph acg) ();
  let topology = Noc_graph.Generators.mesh ~rows ~cols in
  let coord v = ((v - 1) / cols, (v - 1) mod cols) in
  let id r c = (r * cols) + c + 1 in
  let xy_path src dst =
    (* dimension-ordered: fix column first (X), then row (Y) *)
    let r0, c0 = coord src and r1, c1 = coord dst in
    let rec go_x r c acc =
      if c = c1 then go_y r c acc
      else
        let c' = if c < c1 then c + 1 else c - 1 in
        go_x r c' (id r c' :: acc)
    and go_y r c acc =
      if r = r1 then List.rev acc
      else
        let r' = if r < r1 then r + 1 else r - 1 in
        go_y r' c (id r' c :: acc)
    in
    go_x r0 c0 [ src ]
  in
  let routes =
    D.fold_edges
      (fun u v acc -> Edge_map.add (u, v) (xy_path u v) acc)
      (Acg.graph acg) Edge_map.empty
  in
  (* mesh prototypes instantiate one identical full-radix router per tile:
     4 directions + local port *)
  { topology; routes; uniform_router_ports = Some 5 }

let link_count t = D.undirected_edge_count t.topology

let route t ~src ~dst = Edge_map.find_opt (src, dst) t.routes

let next_hop t ~node ~src ~dst =
  match route t ~src ~dst with
  | None -> None
  | Some path ->
      let rec find = function
        | a :: b :: _ when a = node -> Some b
        | _ :: rest -> find rest
        | [] -> None
      in
      find path

let hops path = List.length path - 1

let avg_hops acg t =
  let total_w, total_h =
    Edge_map.fold
      (fun (u, v) path (w, h) ->
        let vol = float_of_int (Acg.volume acg u v) in
        (w +. vol, h +. (vol *. float_of_int (hops path))))
      t.routes (0., 0.)
  in
  if total_w = 0. then 0. else total_h /. total_w

let max_hops t = Edge_map.fold (fun _ path acc -> max acc (hops path)) t.routes 0

let link_load acg t =
  Edge_map.fold
    (fun (u, v) path acc ->
      let bw = Acg.bandwidth acg u v in
      let rec walk acc = function
        | a :: (b :: _ as rest) ->
            let cur = Option.value ~default:0.0 (Edge_map.find_opt (a, b) acc) in
            walk (Edge_map.add (a, b) (cur +. bw) acc) rest
        | [ _ ] | [] -> acc
      in
      walk acc path)
    t.routes Edge_map.empty

let total_energy ~tech ~fp acg t =
  Edge_map.fold
    (fun (u, v) path acc ->
      acc
      +. Noc_energy.Energy_model.edge_energy ~tech ~fp
           ~volume_bits:(Acg.volume acg u v) path)
    t.routes 0.0

let bisection_links ~rng t =
  let _, cut = Noc_graph.Traversal.min_bisection_cut ~rng t.topology in
  cut

let routes_valid t = routes_valid_internal t.topology t.routes

(* Spare-link hardening: add minimum-cost extra links until no single link
   failure can disconnect a routed flow's endpoints.  The cost of a spare
   is its one-hop Eq. 1 bit energy over the floorplan, so spares between
   physically close cores are preferred.  Only original links ever need
   protecting — removing a spare leaves every original route intact — so
   the greedy loop terminates (the direct src-dst link always reconnects a
   broken pair). *)
let harden ~tech ~fp t =
  let pairs =
    Edge_map.fold (fun (s, d) _ acc -> (s, d) :: acc) t.routes [] |> List.sort compare
  in
  let vertices = List.sort Int.compare (D.vertex_list t.topology) in
  let connected g s d = Noc_graph.Traversal.shortest_path g s d <> None in
  let remove_link g u v = D.remove_edge (D.remove_edge g u v) v u in
  let undirected_links g =
    D.fold_edges (fun u v acc -> if u < v then (u, v) :: acc else acc) g []
    |> List.sort compare
  in
  let link_cost (u, v) = Noc_energy.Energy_model.path_bit_energy ~tech ~fp [ u; v ] in
  (* first link whose removal disconnects some routed pair, with the graph
     after removal and the pairs it breaks *)
  let broken topo =
    List.find_map
      (fun (u, v) ->
        let g = remove_link topo u v in
        match List.filter (fun (s, d) -> not (connected g s d)) pairs with
        | [] -> None
        | bs -> Some (g, bs))
      (undirected_links topo)
  in
  let rec fix topo spares =
    match broken topo with
    | None -> (topo, List.rev spares)
    | Some (g, bs) ->
        (* cheapest absent link that reconnects at least one broken pair;
           ties broken lexicographically for determinism *)
        let candidates =
          List.concat_map
            (fun a ->
              List.filter_map
                (fun b ->
                  if a >= b || D.mem_edge topo a b then None
                  else if
                    List.exists (fun (s, d) -> connected (D.add_edge_pair g a b) s d) bs
                  then Some (link_cost (a, b), a, b)
                  else None)
                vertices)
            vertices
        in
        (match List.sort compare candidates with
        | [] ->
            (* unreachable: the direct (s, d) spare always reconnects *)
            invalid_arg "Synthesis.harden: no spare link can restore connectivity"
        | (_, a, b) :: _ -> fix (D.add_edge_pair topo a b) ((a, b) :: spares))
  in
  let topo, spares = fix t.topology [] in
  if spares = [] then (t, [])
  else
    (* radix changed where spares attach: per-node port counts now *)
    ({ topology = topo; routes = t.routes; uniform_router_ports = None }, spares)

let router_ports t v =
  match t.uniform_router_ports with
  | Some p -> p
  | None -> D.Vset.cardinal (D.succ t.topology v) + 1

let pp ppf t =
  Format.fprintf ppf "architecture: %d cores, %d links, %d routes, max %d hops"
    (D.num_vertices t.topology) (link_count t) (Edge_map.cardinal t.routes) (max_hops t)
