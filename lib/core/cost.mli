(** Cost functions for matchings and decompositions (Section 4.3).

    Two costs are provided:

    - {!Edge_count} is the abstract wiring cost visible in the paper's
      printed outputs (Fig. 2's "cost 16", the AES run's "COST: 28"): a
      matching costs the number of physical links of its implementation
      graph, the remainder costs one dedicated link per remaining directed
      edge.  It is independent of vertex roles and of the floorplan.

    - {!Energy} is Eq. 5: the energy of transporting each covered ACG
      edge's volume along its route in the implementation graph, with bit
      energies from Eq. 1 and link lengths from the floorplan.  The
      remainder is charged as dedicated point-to-point links. *)

type t =
  | Edge_count
  | Energy of { tech : Noc_energy.Technology.t; fp : Noc_energy.Floorplan.t }

val remainder_cost : t -> Acg.t -> Noc_graph.Digraph.t -> float
(** Cost of leaving [remaining] uncovered: [Edge_count] counts its directed
    edges; [Energy] charges each edge volume × (2 routers + the direct
    link). *)

val remainder_cost_view : t -> Acg.t -> Noc_graph.Compact.view -> float
(** {!remainder_cost} evaluated directly on a CSR remainder view (original
    vertex ids), avoiding the digraph materialization in the search's hot
    path. *)

val route_cost : t -> Acg.t -> src:int -> dst:int -> int list -> float
(** Cost of transporting the ACG edge [src -> dst] along a vertex path in
    ACG coordinates ([Edge_count] gives 0; link counting is handled at the
    matching level). *)

val lower_bound : t -> Acg.t -> min_link_ratio:float -> Noc_graph.Digraph.t -> float
(** An admissible lower bound on the cost of decomposing [remaining] —
    used to prune branches (Section 4.4: "the current cost of a
    decomposition and the minimum possible cost decomposing the remaining
    graph").

    [Edge_count]: every directed edge needs at least [min_link_ratio]
    links, where the caller supplies the smallest links-per-covered-edge
    ratio over the library (and 1 for the remainder option is never
    smaller, so the bound holds).  [Energy]: each edge costs at least its
    volume × (2 routers + wire at direct Manhattan length, without
    repeaters) — any route visits ≥ 2 routers and, by the triangle
    inequality for Manhattan distance, total wire ≥ direct distance. *)

val lower_bound_view :
  t -> Acg.t -> min_link_ratio:float -> Noc_graph.Compact.view -> float
(** {!lower_bound} evaluated directly on a CSR remainder view. *)

val edge_remainder_cost : t -> Acg.t -> int -> int -> float
(** [edge_remainder_cost cost acg u v] is the single edge [u -> v]'s
    contribution to {!remainder_cost}: both functions are sums of
    independent per-edge terms, so the search can maintain a remainder cost
    incrementally under edge deletion (subtract the deleted edges'
    contributions) instead of re-folding the whole view at every node. *)

val edge_lower_bound : t -> Acg.t -> min_link_ratio:float -> int -> int -> float
(** The single-edge contribution to {!lower_bound}, for the same
    incremental maintenance. *)

val min_link_ratio_of_library : Noc_primitives.Library.t -> float
(** min over entries of implementation links / representation edges,
    capped at 1.0 (the remainder realizes any edge with one link). *)
