(** Plain-text serialization of ACGs for the command-line tools.

    Format: one directed edge per line, [src dst volume bandwidth]
    (vertex ids and volume are integers, bandwidth a float); blank lines
    and lines starting with [#] are ignored.  Isolated vertices can be
    declared with [vertex <id>].  Self-loops and duplicate edges are
    rejected (an ACG edge is a flow between two distinct cores, and the
    edge set is a set).

    The loaders are Result-typed: malformed input yields
    [Error (`Msg m)] where [m] pinpoints the failure as
    ["line <l>, column <c>: <what>"].  The exception-raising entry points
    remain only as a legacy surface. *)

val to_string : Acg.t -> string

val parse : string -> (Acg.t, [ `Msg of string ]) result
(** Parse an ACG from a string.  Errors carry the 1-based line and column
    of the offending token. *)

val load : string -> (Acg.t, [ `Msg of string ]) result
(** Read and parse a file.  Parse errors are prefixed with the path;
    unreadable files become [Error (`Msg ...)] too (no exceptions
    escape). *)

val write_file : path:string -> Acg.t -> unit
