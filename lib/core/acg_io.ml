module D = Noc_graph.Digraph

let to_string acg =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# src dst volume bandwidth\n";
  D.fold_vertices
    (fun v () ->
      if D.degree (Acg.graph acg) v = 0 then
        Buffer.add_string buf (Printf.sprintf "vertex %d\n" v))
    (Acg.graph acg) ();
  D.iter_edges
    (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %g\n" u v (Acg.volume acg u v) (Acg.bandwidth acg u v)))
    (Acg.graph acg);
  Buffer.contents buf

exception Parse_error of string

let err lineno col fmt =
  Printf.ksprintf
    (fun m -> raise (Parse_error (Printf.sprintf "line %d, column %d: %s" lineno col m)))
    fmt

(* Tokens of a line with their 1-based starting columns, so errors point at
   the offending field rather than just the line. *)
let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && line.[!i] <> ' ' && line.[!i] <> '\t' do incr i done;
      toks := (String.sub line start (!i - start), start + 1) :: !toks
    end
  done;
  List.rev !toks

let parse s =
  try
    let lines = String.split_on_char '\n' s in
    let quads = ref [] in
    let verts = ref [] in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        match tokenize line with
        | [] -> ()
        | (t, _) :: _ when String.length t > 0 && t.[0] = '#' -> ()
        | [ ("vertex", _); (v, vcol) ] -> (
            match int_of_string_opt v with
            | Some v -> verts := v :: !verts
            | None -> err lineno vcol "bad vertex id '%s'" v)
        | [ (u, ucol); (v, vcol); (vol, volcol); (bw, bwcol) ] ->
            let u' =
              match int_of_string_opt u with
              | Some x -> x
              | None -> err lineno ucol "bad source vertex '%s'" u
            in
            let v' =
              match int_of_string_opt v with
              | Some x -> x
              | None -> err lineno vcol "bad destination vertex '%s'" v
            in
            let vol' =
              match int_of_string_opt vol with
              | Some x -> x
              | None -> err lineno volcol "bad volume '%s'" vol
            in
            let bw' =
              match float_of_string_opt bw with
              | Some x -> x
              | None -> err lineno bwcol "bad bandwidth '%s'" bw
            in
            if u' = v' then err lineno ucol "self-loop %d -> %d is not a flow" u' v';
            if List.exists (fun (a, b, _, _) -> a = u' && b = v') !quads then
              err lineno ucol "duplicate edge %d -> %d" u' v';
            quads := (u', v', vol', bw') :: !quads
        | (_, col) :: _ ->
            err lineno col "expected 'src dst volume bandwidth' or 'vertex <id>'")
      lines;
    let acg = Acg.of_weighted_edges (List.rev !quads) in
    let graph = List.fold_left D.add_vertex (Acg.graph acg) !verts in
    Ok
      (Acg.make ~graph
         ~volume:
           (List.fold_left
              (fun m (u, v, vol, _) -> D.Edge_map.add (u, v) vol m)
              D.Edge_map.empty (List.rev !quads))
         ~bandwidth:
           (List.fold_left
              (fun m (u, v, _, bw) -> D.Edge_map.add (u, v) bw m)
              D.Edge_map.empty (List.rev !quads))
         ())
  with
  | Parse_error m -> Error (`Msg m)
  (* backstop so the Result contract holds even for constraints only the
     graph layer knows about (the line checks above should fire first) *)
  | Invalid_argument m -> Error (`Msg m)

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error (`Msg m)
  | s -> (
      match parse s with
      | Ok acg -> Ok acg
      | Error (`Msg m) -> Error (`Msg (Printf.sprintf "%s: %s" path m)))

let write_file ~path acg =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string acg))

