module D = Noc_graph.Digraph
module Tech = Noc_energy.Technology
module Fp = Noc_energy.Floorplan
module Em = Noc_energy.Energy_model

type t = Edge_count | Energy of { tech : Tech.t; fp : Fp.t }

let remainder_cost cost acg remaining =
  match cost with
  | Edge_count -> float_of_int (D.num_edges remaining)
  | Energy { tech; fp } ->
      D.fold_edges
        (fun u v acc ->
          acc
          +. Em.edge_energy ~tech ~fp ~volume_bits:(Acg.volume acg u v) [ u; v ])
        remaining 0.0

let remainder_cost_view cost acg remaining =
  match cost with
  | Edge_count -> float_of_int (Noc_graph.Compact.num_edges remaining)
  | Energy { tech; fp } ->
      Noc_graph.Compact.fold_edges
        (fun u v acc ->
          acc
          +. Em.edge_energy ~tech ~fp ~volume_bits:(Acg.volume acg u v) [ u; v ])
        remaining 0.0

let route_cost cost acg ~src ~dst path =
  match cost with
  | Edge_count -> 0.0
  | Energy { tech; fp } ->
      Em.edge_energy ~tech ~fp ~volume_bits:(Acg.volume acg src dst) path

let lower_bound cost acg ~min_link_ratio remaining =
  match cost with
  | Edge_count -> min_link_ratio *. float_of_int (D.num_edges remaining)
  | Energy { tech; fp } ->
      D.fold_edges
        (fun u v acc ->
          let direct = Fp.distance_mm fp u v in
          let wire = tech.Tech.el_bit_per_mm *. direct in
          let bit = (2.0 *. tech.Tech.es_bit) +. wire in
          acc +. (float_of_int (Acg.volume acg u v) *. bit))
        remaining 0.0

let lower_bound_view cost acg ~min_link_ratio remaining =
  match cost with
  | Edge_count -> min_link_ratio *. float_of_int (Noc_graph.Compact.num_edges remaining)
  | Energy { tech; fp } ->
      Noc_graph.Compact.fold_edges
        (fun u v acc ->
          let direct = Fp.distance_mm fp u v in
          let wire = tech.Tech.el_bit_per_mm *. direct in
          let bit = (2.0 *. tech.Tech.es_bit) +. wire in
          acc +. (float_of_int (Acg.volume acg u v) *. bit))
        remaining 0.0

let edge_remainder_cost cost acg u v =
  match cost with
  | Edge_count -> 1.0
  | Energy { tech; fp } ->
      Em.edge_energy ~tech ~fp ~volume_bits:(Acg.volume acg u v) [ u; v ]

let edge_lower_bound cost acg ~min_link_ratio u v =
  match cost with
  | Edge_count -> min_link_ratio
  | Energy { tech; fp } ->
      let direct = Fp.distance_mm fp u v in
      let wire = tech.Tech.el_bit_per_mm *. direct in
      let bit = (2.0 *. tech.Tech.es_bit) +. wire in
      float_of_int (Acg.volume acg u v) *. bit

let min_link_ratio_of_library lib =
  List.fold_left
    (fun acc e ->
      let p = e.Noc_primitives.Library.prim in
      let links = float_of_int (Noc_primitives.Primitive.impl_link_count p) in
      let covered = float_of_int (Noc_primitives.Primitive.repr_edge_count p) in
      if covered > 0. then min acc (links /. covered) else acc)
    1.0 lib
