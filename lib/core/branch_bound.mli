(** The depth-first branch-and-bound graph decomposition algorithm
    (Section 4.4, Fig. 3 pseudo-code).

    The search explores a tree in which each node is a partially-decomposed
    remaining graph; a branch instantiates one subgraph isomorphism of one
    library primitive (a {!Matching.t}) and subtracts its covered edges.  A
    branch is cut when its accumulated cost plus an admissible lower bound
    on the cost of the remaining graph ({!Cost.lower_bound}) cannot beat
    the best complete decomposition found so far.  When no primitive
    matches, the remaining graph becomes the remainder of a complete
    decomposition (Eq. 2); the minimum-cost legal decomposition is
    returned (Eq. 4).

    Following Section 5.1's advice, both the isomorphism search and the
    overall decomposition accept a wall-clock budget: on time-out the best
    incumbent found so far is returned and flagged. *)

type neutral_strategy =
  | Branch
      (** neutral primitives take part in branching like any other (the
          literal reading of the paper's pseudo-code; exponentially larger
          trees) *)
  | Greedy
      (** only "saver" primitives - those whose implementation uses fewer
          links than the edges they cover, i.e. the gossip graphs - drive
          the branching; loops, paths and broadcasts, whose matchings cost
          exactly as much as dedicated links, are re-attached by a
          deterministic greedy pass at each leaf.  Same optimal cost, same
          style of listing, dramatically smaller search tree. *)

(** Heuristic branch orderings: the order library entries are tried at
    every node.  Only the iteration order changes — the canonical multiset
    dedup filters on entry ids, so every ordering explores the same search
    space and a completed search reports the same minimal cost; what moves
    is how quickly a good incumbent is found, which is what the portfolio
    races. *)
type ordering =
  | Canonical  (** library order (the seed engine's order) *)
  | Coverage_first  (** most covered edges first — big savers early *)
  | Ratio_first  (** best links-per-covered-edge ratio first *)

val all_orderings : ordering list
(** The portfolio, in rank order: [Canonical] first. *)

val ordering_name : ordering -> string
val ordering_of_string : string -> ordering option

(** The search budget: every resource limit of one [decompose] call in a
    single record.

    Build one from {!Budget.default} with the [with_*] narrowing
    functions:
    {[
      Branch_bound.Budget.(default |> with_timeout_s (Some 5.) |> with_domains 4)
    ]} *)
module Budget : sig
  type t = {
    timeout_s : float option;  (** wall-clock budget for the whole search *)
    max_nodes : int;  (** search-tree node budget (backstop) *)
    domains : int;  (** OCaml 5 domains fanned over root branches *)
  }

  val default : t
  (** No timeout, 200k nodes, 1 domain. *)

  val with_timeout_s : float option -> t -> t
  val with_max_nodes : int -> t -> t
  val with_domains : int -> t -> t

  val starved : t -> bool
  (** [starved t] is [true] when [timeout_s] is declared non-positive: the
      deadline is unsatisfiable before any work starts, so a service should
      answer [Over_budget] instead of admitting the request. *)

  val clamp_service : ?default_timeout_s:float -> ?max_timeout_s:float ->
    ?max_nodes_cap:int -> t -> t
  (** The service-side budget guard: requests with no wall-clock deadline
      inherit [default_timeout_s], declared deadlines are clamped to
      [max_timeout_s], and [max_nodes] is capped at [max_nodes_cap] — so no
      admitted request can hold a worker longer than the daemon's hard
      per-request wall budget.  Omitted bounds leave the corresponding
      field untouched; [domains] is never changed (it is an execution
      hint). *)
end

type options = {
  cost : Cost.t;
  constraints : Constraints.t option;
      (** checked (with {!constraint_rng}) before an incumbent is accepted *)
  max_matches_per_step : int;
      (** branching factor cap: how many distinct matches of each primitive
          are expanded at one tree node.  The paper's Fig. 2 tree branches
          on one isomorphism per library graph per node, which is the
          default (1); larger values widen the search *)
  allow_early_remainder : bool;
      (** also consider stopping the decomposition at inner nodes (leaving
          a matchable graph as remainder).  A strict generalization of the
          paper's leaves-only rule — never worse, and lets the algorithm
          reject energy-losing matchings; on cost ties the deeper (more
          matched) decomposition found first is kept. *)
  role_aware : bool;
      (** under an energy cost the vertex-role assignment of a matching
          changes its cost (which pairs ride multi-hop routes); when set,
          matches with the same covered-edge set are represented by their
          cheapest role assignment rather than the first one found *)
  canonical_order : bool;
      (** explore matchings in non-decreasing library-id order along any
          root-to-leaf path: decompositions are multisets of matchings, so
          this visits each multiset once instead of once per permutation
          (default true) *)
  neutrals : neutral_strategy;  (** default [Greedy] *)
  approx_missing : int;
      (** tolerance of the relaxed matching the paper suggests in
          Section 5.1: a primitive may be matched even when up to this many
          of its pattern edges have no counterpart in the remaining graph
          (the implementation still provides the full wiring).  0 = exact
          matching only (default). *)
  ordering : ordering;
      (** branch ordering for a single-instance search (default
          [Canonical]); ignored when [portfolio] is set *)
  portfolio : bool;
      (** race one search instance per {!all_orderings} element, splitting
          [Budget.domains] across them (each instance gets at least one
          domain, so with fewer domains than orderings the machine is
          oversubscribed); all instances share the node budget and the
          incumbent bound, and the reduction prefers the lowest cost with
          ties to the canonical instance (default false) *)
  fallback : bool;
      (** before searching, run the deterministic greedy completion from
          the root and publish it as the initial incumbent: it prunes from
          the first node, and on budget exhaustion the caller is guaranteed
          a feasible decomposition with {!stats.gap_pct} reported instead
          of the bare all-remainder covering (default false) *)
}

val default_options : options
(** [Edge_count] cost, no constraints, one match per primitive per step,
    [allow_early_remainder = true], [role_aware = false],
    [canonical_order = true].  Resource limits live in {!Budget.t}. *)

val energy_options :
  tech:Noc_energy.Technology.t -> fp:Noc_energy.Floorplan.t -> options
(** Energy cost with role-aware matching, constraints from the
    technology. *)

type prim_stats = {
  attempts : int;  (** candidate enumerations run for this primitive *)
  hits : int;  (** matchings those enumerations produced *)
}

type vf2_stats = {
  probes : int;  (** candidate vertex-pair feasibility tests *)
  backtracks : int;  (** VF2 states popped after exploration *)
}

type stats = {
  nodes : int;  (** search-tree nodes expanded *)
  matches_tried : int;  (** matchings instantiated as branches *)
  leaves : int;  (** complete decompositions evaluated *)
  pruned : int;  (** branches cut by the lower bound *)
  incumbents : int;  (** accepted incumbent improvements *)
  tasks : int;  (** work-stealing tasks spawned (1 for a sequential run) *)
  steals : int;  (** tasks taken from another worker's deque *)
  elapsed_s : float;
  timed_out : bool;  (** wall-clock or node budget exhausted *)
  best_cost : float;
  constraints_met : bool;
      (** false when every complete decomposition violated constraints and
          the all-remainder fallback was returned *)
  fallback_used : bool;
      (** the returned decomposition is the greedy fallback seed — the
          search found nothing strictly better within the budget *)
  gap_pct : float option;
      (** only on a timed-out search: the reported cost's distance above
          the root admissible lower bound, in percent — an upper bound on
          the true optimality gap.  [None] when the search completed. *)
  winner : string option;
      (** portfolio mode: {!ordering_name} of the instance whose incumbent
          was returned; [None] otherwise *)
  per_primitive : (string * prim_stats) list;
      (** match attempts/hits per library primitive, in library order *)
  vf2 : vf2_stats;
      (** isomorphism-engine counters; all zero unless an enabled observer
          was passed (the hook is off by default so the inner loop stays
          uninstrumented) *)
}

val stats_to_json : stats -> Noc_obs.Obs.Json.t
(** The whole record as a JSON object (used by [--metrics] and the
    report). *)

val domain_cap : unit -> int
(** The most domains one [decompose] call may use:
    [Domain.recommended_domain_count ()] (at least 1), overridable with the
    [NOCSYNTH_MAX_DOMAINS] environment variable — the escape hatch for
    deliberately oversubscribing a small machine (tests, CI boxes). *)

val resolve_budget : ?budget:Budget.t -> unit -> Budget.t
(** The single resolution point for the search budget, applied by
    {!decompose}: [Budget.domains] is forced to at least 1 and clamped to
    {!domain_cap} (warning when the clamp bites).  [budget] defaults to
    {!Budget.default}. *)

val decompose :
  ?options:options ->
  ?budget:Budget.t ->
  ?observe:Noc_obs.Obs.t ->
  ?rng:Noc_util.Prng.t ->
  library:Noc_primitives.Library.t ->
  Acg.t ->
  Decomposition.t * stats
(** Runs the search.  [rng] seeds the constraint checker's bisection
    heuristic (default: a fixed seed, making the whole search
    deterministic).  The returned decomposition always satisfies
    {!Decomposition.is_valid_for}.

    [budget] gathers every resource limit and is clamped by
    {!resolve_budget}.

    [observe] (default {!Noc_obs.Obs.disabled}) attaches an observer:
    setup and search phases become trace spans, each root branch of the
    parallel driver becomes a span on its worker's domain, every accepted
    incumbent emits an instant event, and the final counters
    ([search.nodes], [search.pruned], [vf2.probes],
    [match.<primitive>.attempts/hits], per-domain busy-time gauges, ...)
    are published into the observer's registry.  With the observer
    disabled the search runs the exact same code path as before the hook
    existed — the differential tests assert bit-identical decompositions,
    costs and listings either way.

    With [Budget.domains > 1] the search runs on a work-stealing deque
    scheduler: every worker owns a deque of open subproblems, pushes
    branches shallower than a fixed spawn depth as stealable tasks
    (deterministically — the task set never depends on timing), pops its
    own deque depth-first and steals from other workers' tops when idle.
    Workers share the incumbent cost through an atomic and cut a subtree
    on the shared bound only when its admissible lower bound is
    {e strictly} above it, so no subtree that could attain the global
    minimum is ever lost to scheduling.  Every task carries its root-path
    (child indices), and the reduction minimizes (cost, instance rank,
    depth-first path), so the returned decomposition and [best_cost] are
    identical to the sequential run's — independent of steal order —
    whenever the search completes within its budget and the constraint
    check is deterministic (in particular always when
    [constraints = None]).  A budget-exhausted search is an anytime
    result: which subtrees were visited before the shared node counter
    ran out depends on scheduling, so only validity and feasibility of
    the incumbent are guaranteed, not bit-equality.  With randomized
    constraint checks each
    task draws from its own path-derived rng stream, so parallel runs are
    reproducible for a fixed [domains] but may accept different (equally
    feasible) incumbents than the sequential engine.  Search statistics
    ([pruned], [leaves], ...) depend on timing and are aggregated across
    workers; [steals] and per-domain busy/idle gauges expose scheduler
    health. *)
