(** Human-readable synthesis reports.

    Gathers one flow's full outcome — decomposition listing, architecture
    summary, per-primitive usage, constraint checks, deadlock analysis and
    energy figures — into a single text block for CLI output and logs. *)

type t = {
  acg_cores : int;
  acg_flows : int;
  total_volume : int;
  listing : string;  (** the paper-format decomposition listing with cost *)
  histogram : (string * int) list;
  remainder_edges : int;
  links : int;
  max_hops : int;
  avg_hops : float;
  deadlock_free : bool;
  vcs_needed : int;
  violations : string list;  (** pretty-printed constraint violations *)
  energy_pj : float option;  (** Eq. 5 energy when a floorplan is given *)
  search : Branch_bound.stats;
}

val build :
  ?tech:Noc_energy.Technology.t ->
  ?fp:Noc_energy.Floorplan.t ->
  ?constraints:Constraints.t ->
  ?rng:Noc_util.Prng.t ->
  cost:Cost.t ->
  acg:Acg.t ->
  decomposition:Decomposition.t ->
  stats:Branch_bound.stats ->
  unit ->
  t
(** Synthesizes the architecture internally; energy is reported when both
    [tech] and [fp] are supplied, constraint violations when [constraints]
    is. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val to_json : t -> Noc_obs.Obs.Json.t
(** The report as one JSON object ([search] nests
    {!Branch_bound.stats_to_json}); what [nocsynth --metrics] prints. *)
