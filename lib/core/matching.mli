(** A matching (Definition 4): a subgraph isomorphism from a library
    primitive's representation graph into the ACG, together with the ACG
    edges it covers and the routes those edges take on the primitive's
    implementation graph (transferred into ACG vertex names). *)

type t = private {
  entry : Noc_primitives.Library.entry;
  mapping : int Noc_graph.Digraph.Vmap.t;
      (** canonical primitive vertex -> ACG vertex *)
  covered : Noc_graph.Digraph.Edge.t list;
      (** ACG edges covered by this matching, sorted *)
}

val of_vf2 : Noc_primitives.Library.entry -> Noc_graph.Vf2.mapping -> t

val of_approx :
  Noc_primitives.Library.entry -> target:Noc_graph.Digraph.t -> Noc_graph.Vf2.approx -> t
(** A matching from an approximate monomorphism (Section 5.1's relaxed
    matching): only the pattern edges actually present in [target] are
    covered; the implementation graph (and hence the wiring cost) is the
    full primitive. *)

val of_approx_view :
  Noc_primitives.Library.entry ->
  pattern:Noc_graph.Compact.t ->
  target:Noc_graph.Compact.view ->
  Noc_graph.Vf2.approx ->
  t
(** {!of_approx} against a CSR remainder view; [pattern] must be the frozen
    representation graph of [entry]. *)

val primitive : t -> Noc_primitives.Primitive.t

val impl_in_acg : t -> Noc_graph.Digraph.t
(** The implementation graph transferred onto ACG vertices: the physical
    links this matching contributes to the synthesized architecture
    (a symmetric digraph). *)

val acg_route : t -> src:int -> dst:int -> int list option
(** Route (in ACG vertex names) for a covered ACG edge, derived from the
    primitive's schedule-based routing table (Section 4.5). *)

val routes : t -> (Noc_graph.Digraph.Edge.t * int list) list
(** Route for every covered edge. *)

val cost : Cost.t -> Acg.t -> t -> float
(** Eq. 5 under [Energy]; number of implementation links under
    [Edge_count]. *)

val pp : Format.formatter -> t -> unit
(** The paper's listing format:
    ["1: MGG4,   Mapping: (1 1), (2 5), (3 9), (4 13)"]. *)
