module D = Noc_graph.Digraph
module Vmap = D.Vmap

type t = int Vmap.t

let identity acg =
  D.fold_vertices (fun v acc -> Vmap.add v v acc) (Acg.graph acg) Vmap.empty

(* cores in ascending id order: the domain of every permutation mapping *)
let sorted_cores acg = List.sort compare (D.vertex_list (Acg.graph acg))

let of_image cores image =
  List.fold_left2 (fun acc v t -> Vmap.add v t acc) Vmap.empty cores image

let random ~rng acg =
  let cores = sorted_cores acg in
  let image = Array.of_list cores in
  Noc_util.Prng.shuffle rng image;
  of_image cores (Array.to_list image)

let all ?(max_cores = 7) acg =
  let cores = sorted_cores acg in
  if List.length cores > max_cores then
    invalid_arg
      (Printf.sprintf "Mapping.all: %d cores exceed the %d-core enumeration guard"
         (List.length cores) max_cores);
  (* permutations of [xs] in lexicographic order: [xs] is sorted, and each
     prefix choice scans the remaining elements in ascending order *)
  let rec perms xs =
    match xs with
    | [] -> [ [] ]
    | _ ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) xs)))
          xs
  in
  List.map (of_image cores) (perms cores)

let apply m acg =
  let f v =
    match Vmap.find_opt v m with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Mapping.apply: core %d not mapped" v)
  in
  let graph = D.map_vertices f (Acg.graph acg) in
  let remap_edges attrs =
    D.Edge_map.fold
      (fun (u, v) x acc -> D.Edge_map.add (f u, f v) x acc)
      attrs D.Edge_map.empty
  in
  Acg.make ~graph ~volume:(remap_edges acg.Acg.volume)
    ~bandwidth:(remap_edges acg.Acg.bandwidth) ()

let tile_distance cols a b =
  let ra = (a - 1) / cols and ca = (a - 1) mod cols in
  let rb = (b - 1) / cols and cb = (b - 1) mod cols in
  abs (ra - rb) + abs (ca - cb)

let mesh_hop_cost ~rows ~cols acg m =
  ignore rows;
  let tile v =
    match Vmap.find_opt v m with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Mapping.mesh_hop_cost: core %d not mapped" v)
  in
  D.fold_edges
    (fun u v acc ->
      let tu = tile u and tv = tile v in
      acc
      +. (float_of_int (Acg.volume acg u v) *. float_of_int (tile_distance cols tu tv)))
    (Acg.graph acg) 0.0

let optimize_mesh ~rng ?(iterations = 4000) ~rows ~cols acg =
  let cores = D.vertex_list (Acg.graph acg) in
  let n_tiles = rows * cols in
  if List.length cores > n_tiles then
    invalid_arg "Mapping.optimize_mesh: more cores than tiles";
  (* initial assignment: cores in order onto tiles 1..n *)
  let current = ref (List.fold_left
      (fun (i, acc) v -> (i + 1, Vmap.add v i acc))
      (1, Vmap.empty) cores |> snd)
  in
  let cost m = mesh_hop_cost ~rows ~cols acg m in
  let cur_cost = ref (cost !current) in
  let best = ref !current and best_cost = ref !cur_cost in
  let cores_arr = Array.of_list cores in
  let n = Array.length cores_arr in
  if n >= 2 then begin
    let t0 = max 1.0 (!cur_cost /. 10.0) in
    let temp = ref t0 in
    let cooling = (0.01 /. t0) ** (1.0 /. float_of_int (max 1 iterations)) in
    for _ = 1 to iterations do
      (* swap two cores' tiles, or move a core to a free tile *)
      let a = cores_arr.(Noc_util.Prng.int rng n) in
      let candidate =
        if Noc_util.Prng.bool rng || n = n_tiles then begin
          let b = cores_arr.(Noc_util.Prng.int rng n) in
          if a = b then !current
          else
            let ta = Vmap.find a !current and tb = Vmap.find b !current in
            Vmap.add a tb (Vmap.add b ta !current)
        end
        else begin
          (* move to an unoccupied tile *)
          let occupied =
            Vmap.fold (fun _ t acc -> t :: acc) !current [] |> List.sort_uniq compare
          in
          let free =
            List.filter
              (fun t -> not (List.mem t occupied))
              (List.init n_tiles (fun i -> i + 1))
          in
          match free with
          | [] -> !current
          | _ -> Vmap.add a (Noc_util.Prng.choose rng free) !current
        end
      in
      let c = cost candidate in
      let delta = c -. !cur_cost in
      if delta < 0.0 || Noc_util.Prng.float rng 1.0 < exp (-.delta /. !temp) then begin
        current := candidate;
        cur_cost := c;
        if c < !best_cost then begin
          best := candidate;
          best_cost := c
        end
      end;
      temp := !temp *. cooling
    done
  end;
  !best
