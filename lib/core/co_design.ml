module D = Noc_graph.Digraph
module Edge_map = D.Edge_map
module Fp = Noc_energy.Floorplan

type iteration = {
  round : int;
  energy_pj : float;
  wirelength : float;
}

type result = {
  fp : Fp.t;
  decomposition : Decomposition.t;
  arch : Synthesis.t;
  energy_pj : float;
  history : iteration list;
}

let link_volume_weights acg (arch : Synthesis.t) =
  Edge_map.fold
    (fun (u, v) path acc ->
      let vol = float_of_int (Acg.volume acg u v) in
      let rec walk acc = function
        | a :: (b :: _ as rest) ->
            let cur = Option.value ~default:0.0 (Edge_map.find_opt (a, b) acc) in
            walk (Edge_map.add (a, b) (cur +. vol) acc) rest
        | [ _ ] | [] -> acc
      in
      walk acc path)
    arch.Synthesis.routes Edge_map.empty

let evaluate ~tech ~library ~fp acg =
  let options =
    { (Branch_bound.energy_options ~tech ~fp) with constraints = None }
  in
  let budget = Branch_bound.Budget.(default |> with_max_nodes 20_000) in
  let decomposition, _ = Branch_bound.decompose ~options ~budget ~library acg in
  let arch = Synthesis.of_decomposition acg decomposition in
  let energy = Synthesis.total_energy ~tech ~fp acg arch in
  (decomposition, arch, energy)

let optimize ?(rounds = 4) ?(anneal_iterations = 2000) ~rng ~tech ~library ~fp acg =
  let rec go round fp best history =
    let decomposition, arch, energy = evaluate ~tech ~library ~fp acg in
    let weights = link_volume_weights acg arch in
    let wl = Fp.wirelength fp ~weights in
    let history = { round; energy_pj = energy; wirelength = wl } :: history in
    let best =
      match best with
      | Some (_, _, _, e, _) when e <= energy -> best
      | _ -> Some (fp, decomposition, arch, energy, round)
    in
    if round >= rounds then (best, history)
    else begin
      let fp' = Fp.anneal ~rng ~iterations:anneal_iterations ~weights fp in
      (* converged: the placement did not move enough to change the
         objective *)
      if Fp.wirelength fp' ~weights >= wl -. 1e-9 then (best, history)
      else go (round + 1) fp' best history
    end
  in
  let best, history = go 1 fp None [] in
  match best with
  | Some (fp, decomposition, arch, energy_pj, _) ->
      { fp; decomposition; arch; energy_pj; history = List.rev history }
  | None -> assert false
