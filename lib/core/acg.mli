(** Application Characterization Graph (Section 4).

    Vertices are cores (the application is assumed already mapped), a
    directed edge [i -> j] means core [i] sends data to core [j], annotated
    with the communication volume [v(e)] (bits) and the required bandwidth
    [b(e)] (Gbit/s). *)

type t = private {
  graph : Noc_graph.Digraph.t;
  volume : int Noc_graph.Digraph.Edge_map.t;
  bandwidth : float Noc_graph.Digraph.Edge_map.t;
}

val make :
  graph:Noc_graph.Digraph.t ->
  ?volume:int Noc_graph.Digraph.Edge_map.t ->
  ?bandwidth:float Noc_graph.Digraph.Edge_map.t ->
  unit ->
  t
(** Attributes default to volume 1 and bandwidth 0 for edges missing from
    the maps; entries for non-edges are rejected.
    @raise Invalid_argument if an attribute key is not an edge of [graph]. *)

val of_weighted_edges : (int * int * int * float) list -> t
(** [(src, dst, volume, bandwidth)] quadruples. *)

val of_tgff : Noc_tgff.Tgff.t -> t
(** Adopts a generated task graph with its volumes and bandwidths. *)

val uniform : volume:int -> bandwidth:float -> Noc_graph.Digraph.t -> t
(** Same attributes on every edge. *)

val graph : t -> Noc_graph.Digraph.t

val volume : t -> int -> int -> int
(** Volume of an edge; 0 if the edge does not exist. *)

val bandwidth : t -> int -> int -> float

val num_cores : t -> int
val num_flows : t -> int

val total_volume : t -> int

val restrict : t -> Noc_graph.Digraph.t -> t
(** [restrict acg g] keeps only the edges of [g] (which must be a subgraph
    of the ACG's graph), preserving attributes: used to carry attributes
    onto remaining graphs during decomposition. *)

val map_vertices : (int -> int) -> t -> t
(** [map_vertices f t] relabels every core by [f] (which must be injective
    on the cores of [t]), carrying volumes and bandwidths along. *)

(** {1 Canonicalization}

    An isomorphism-invariant fingerprint over the CSR canonical-labeling
    kernel ({!Noc_graph.Canon}), respecting edge attributes: two ACGs hash
    identically exactly when some vertex relabeling maps one onto the other
    with equal volumes and bandwidths edge-for-edge.  This is the key of
    the content-addressed result cache in [lib/serve]. *)

val canonical_hash : t -> string
(** ["canon:<md5hex>"] of the ACG serialized in canonical vertex order —
    equal for isomorphic ACGs, distinct (modulo MD5 collisions) otherwise.
    When the canonical-labeling search exceeds its work budget (only
    plausible on large highly symmetric graphs), falls back to
    ["exact:<md5hex>"] over the original vertex order: still deterministic,
    still equal for textually identical ACGs, and the distinct prefix
    guarantees the two families never collide. *)

val canonical_form : t -> (t * int Noc_graph.Digraph.Vmap.t) option
(** [canonical_form t] is [Some (t', mapping)] where [t'] is [t] relabeled
    onto cores [1..n] in canonical order and [mapping] sends each original
    core to its canonical id — so isomorphic ACGs produce structurally
    identical [t'].  [None] when canonical labeling was truncated (same
    budget as {!canonical_hash}). *)

val pp : Format.formatter -> t -> unit
