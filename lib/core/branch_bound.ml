module D = Noc_graph.Digraph
module C = Noc_graph.Compact
module L = Noc_primitives.Library
module P = Noc_primitives.Primitive
module Timer = Noc_util.Timer
module Obs = Noc_obs.Obs

let log_src = Logs.Src.create "noc.branch_bound" ~doc:"branch-and-bound search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type neutral_strategy = Branch | Greedy

type ordering = Canonical | Coverage_first | Ratio_first

let all_orderings = [ Canonical; Coverage_first; Ratio_first ]

let ordering_name = function
  | Canonical -> "canonical"
  | Coverage_first -> "coverage-first"
  | Ratio_first -> "ratio-first"

let ordering_of_string = function
  | "canonical" -> Some Canonical
  | "coverage-first" -> Some Coverage_first
  | "ratio-first" -> Some Ratio_first
  | _ -> None

(* Reorder the branchable entries for one search instance.  Only the
   iteration order at each node changes: the [min_id] multiset dedup below
   filters on entry ids, which is order-independent, so every ordering
   searches exactly the same space. *)
let order_entries ordering entries =
  match ordering with
  | Canonical -> entries
  | Coverage_first ->
      List.stable_sort
        (fun a b ->
          Int.compare (P.repr_edge_count b.L.prim) (P.repr_edge_count a.L.prim))
        entries
  | Ratio_first ->
      let ratio e =
        let covered = float_of_int (P.repr_edge_count e.L.prim) in
        if covered <= 0. then infinity
        else float_of_int (P.impl_link_count e.L.prim) /. covered
      in
      List.stable_sort (fun a b -> Float.compare (ratio a) (ratio b)) entries

module Budget = struct
  type t = { timeout_s : float option; max_nodes : int; domains : int }

  let default = { timeout_s = None; max_nodes = 200_000; domains = 1 }
  let with_timeout_s timeout_s t = { t with timeout_s }
  let with_max_nodes max_nodes t = { t with max_nodes }
  let with_domains domains t = { t with domains }

  let starved t = match t.timeout_s with Some s -> s <= 0.0 | None -> false

  let clamp_service ?default_timeout_s ?max_timeout_s ?max_nodes_cap t =
    let timeout_s =
      let requested =
        match t.timeout_s with None -> default_timeout_s | Some s -> Some s
      in
      match (requested, max_timeout_s) with
      | None, cap -> cap
      | Some s, None -> Some s
      | Some s, Some cap -> Some (Float.min s cap)
    in
    let max_nodes =
      match max_nodes_cap with
      | None -> t.max_nodes
      | Some cap -> min t.max_nodes (max 1 cap)
    in
    { t with timeout_s; max_nodes }
end

type options = {
  cost : Cost.t;
  constraints : Constraints.t option;
  max_matches_per_step : int;
  allow_early_remainder : bool;
  role_aware : bool;
  canonical_order : bool;
  neutrals : neutral_strategy;
  approx_missing : int;
  ordering : ordering;
  portfolio : bool;
  fallback : bool;
}

let default_options =
  {
    cost = Cost.Edge_count;
    constraints = None;
    max_matches_per_step = 1;
    allow_early_remainder = true;
    role_aware = false;
    canonical_order = true;
    neutrals = Greedy;
    approx_missing = 0;
    ordering = Canonical;
    portfolio = false;
    fallback = false;
  }

let energy_options ~tech ~fp =
  {
    default_options with
    cost = Cost.Energy { tech; fp };
    constraints = Some (Constraints.of_technology tech);
    role_aware = true;
  }

(* ------------------------------------------------------------------ *)
(* Budget resolution: the single place where the domain count is clamped
   to what the machine can run. *)

let domain_cap () =
  let recommended = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "NOCSYNTH_MAX_DOMAINS" with
  | None -> recommended
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          Log.warn (fun k ->
              k "ignoring invalid NOCSYNTH_MAX_DOMAINS=%S (want an int >= 1)" s);
          recommended)

let resolve_budget ?(budget = Budget.default) () =
  let b = budget in
  let asked = max 1 b.Budget.domains in
  let cap = domain_cap () in
  let granted = min asked cap in
  if granted <> asked then
    Log.warn (fun k ->
        k "clamping Budget.domains %d -> %d (recommended_domain_count %d)"
          asked granted cap);
  { b with Budget.domains = granted }

type prim_stats = { attempts : int; hits : int }

type vf2_stats = { probes : int; backtracks : int }

type stats = {
  nodes : int;
  matches_tried : int;
  leaves : int;
  pruned : int;
  incumbents : int;
  tasks : int;
  steals : int;
  elapsed_s : float;
  timed_out : bool;
  best_cost : float;
  constraints_met : bool;
  fallback_used : bool;
  gap_pct : float option;
  winner : string option;
  per_primitive : (string * prim_stats) list;
  vf2 : vf2_stats;
}

let stats_to_json st =
  Obs.Json.Obj
    [
      ("nodes", Obs.Json.Int st.nodes);
      ("matches_tried", Obs.Json.Int st.matches_tried);
      ("leaves", Obs.Json.Int st.leaves);
      ("pruned", Obs.Json.Int st.pruned);
      ("incumbents", Obs.Json.Int st.incumbents);
      ("tasks", Obs.Json.Int st.tasks);
      ("steals", Obs.Json.Int st.steals);
      ("elapsed_s", Obs.Json.Float st.elapsed_s);
      ("timed_out", Obs.Json.Bool st.timed_out);
      ("best_cost", Obs.Json.Float st.best_cost);
      ("constraints_met", Obs.Json.Bool st.constraints_met);
      ("fallback_used", Obs.Json.Bool st.fallback_used);
      ( "gap_pct",
        match st.gap_pct with
        | Some g -> Obs.Json.Float g
        | None -> Obs.Json.Null );
      ( "winner",
        match st.winner with
        | Some w -> Obs.Json.Str w
        | None -> Obs.Json.Null );
      ( "vf2",
        Obs.Json.Obj
          [
            ("probes", Obs.Json.Int st.vf2.probes);
            ("backtracks", Obs.Json.Int st.vf2.backtracks);
          ] );
      ( "per_primitive",
        Obs.Json.Obj
          (List.map
             (fun (name, p) ->
               ( name,
                 Obs.Json.Obj
                   [
                     ("attempts", Obs.Json.Int p.attempts);
                     ("hits", Obs.Json.Int p.hits);
                   ] ))
             st.per_primitive) );
    ]

(* Per-edge cost contributions of the root ACG, so the remainder cost and
   the admissible lower bound can be maintained incrementally under edge
   deletion (subtract the covered edges) instead of re-folded per node.
   Only materialized for the [Energy] cost — [Edge_count]'s view folds are
   already O(1) off [num_edges]. *)
type inc_tables = {
  rem_of : (int * int, float) Hashtbl.t;
  lb_of : (int * int, float) Hashtbl.t;
}

(* Everything the search shares across workers: immutable configuration,
   the frozen ACG, plus the cross-worker atomics — the node budget, the
   incumbent cost used for global pruning, and the task/steal tallies. *)
type env = {
  opts : options;
  budget : Budget.t;
  acg : Acg.t;
  library : L.t;
  branchable : L.entry list;
  compiled : Noc_graph.Multi_pattern.t;
  frozen : (int, C.t) Hashtbl.t;  (** entry id -> frozen representation graph *)
  min_ratio : float;
  inc : inc_tables option;
  wall_deadline : float option;  (** absolute wall clock, for the Vf2 API *)
  mono_deadline : Timer.Deadline.t;
  nodes : int Atomic.t;
  shared_best : float Atomic.t;
  task_count : int Atomic.t;
  steal_count : int Atomic.t;
  task_seed : int;  (** base for per-task constraint-rng derivation *)
  obs : Obs.t;
  instr : Noc_graph.Vf2.Instr.t option;  (** present iff [obs] is enabled *)
  prim_slots : int;  (** 1 + max library entry id, for per-primitive arrays *)
}

(* An open subproblem, self-contained so any worker can run it: the
   remaining graph, the partial decomposition, its exact cost, the
   incrementally-maintained remainder/lower-bound values, the canonical
   [min_id] floor, and the node's path (child indices from the root) which
   makes the final reduction independent of steal order. *)
type task = {
  t_view : C.view;
  t_matchings : Matching.t list;  (** reversed *)
  t_cost : float;
  t_min_id : int;
  t_rem_c : float;
  t_lb_c : float;
  t_path_rev : int list;
  t_depth : int;
}

(* Worker-local search state.  The sequential driver has exactly one of
   these, reproducing the seed engine's single global incumbent; the
   work-stealing driver gives each worker one, resetting the incumbent
   cell ([best]/[best_decomp]/[best_path]) at every task so a task's
   result is a pure function of the task, not of scheduling. *)
type wctx = {
  env : env;
  mutable rng : Noc_util.Prng.t;
  mutable best : float;
  mutable best_decomp : Decomposition.t option;
  mutable best_path : int list;  (** reversed leaf path of the incumbent *)
  mutable spawn : (task -> unit) option;  (** work-stealing push, when parallel *)
  mutable spawn_depth : int;  (** branches above this depth become tasks *)
  mutable matches_tried : int;
  mutable leaves : int;
  mutable pruned : int;
  mutable incumbents : int;
  mutable timed_out : bool;
  attempts : int array;  (** per library entry id: candidate enumerations *)
  hits : int array;  (** per library entry id: matchings instantiated *)
}

let mk_ctx env rng =
  {
    env;
    rng;
    best = infinity;
    best_decomp = None;
    best_path = [];
    spawn = None;
    spawn_depth = 0;
    matches_tried = 0;
    leaves = 0;
    pruned = 0;
    incumbents = 0;
    timed_out = false;
    attempts = Array.make env.prim_slots 0;
    hits = Array.make env.prim_slots 0;
  }

let rec cas_min a x =
  let cur = Atomic.get a in
  if x < cur && not (Atomic.compare_and_set a cur x) then cas_min a x

let budget_exhausted ctx =
  if Atomic.get ctx.env.nodes >= ctx.env.budget.Budget.max_nodes then begin
    ctx.timed_out <- true;
    true
  end
  else if Timer.Deadline.expired ctx.env.mono_deadline then begin
    ctx.timed_out <- true;
    true
  end
  else false

let int_set_of_list ids =
  let tbl = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace tbl id ()) ids;
  tbl

(* Child remainder cost and lower bound after deleting [covered] from a
   node's view: incrementally for [Energy] (subtract the per-edge
   contributions), directly for [Edge_count] (both folds are O(1)). *)
let child_bounds env ~rem_c ~lb_c covered view' =
  match env.inc with
  | None ->
      ( Cost.remainder_cost_view env.opts.cost env.acg view',
        Cost.lower_bound_view env.opts.cost env.acg ~min_link_ratio:env.min_ratio
          view' )
  | Some inc ->
      List.fold_left
        (fun (r, l) e ->
          let dr = try Hashtbl.find inc.rem_of e with Not_found -> 0.0 in
          let dl = try Hashtbl.find inc.lb_of e with Not_found -> 0.0 in
          (r -. dr, l -. dl))
        (rem_c, lb_c) covered

(* Enumerate up to [max_matches_per_step] candidate matchings of [entry] in
   [remaining].  Without role awareness, one representative per
   covered-edge set (the remaining graph after subtraction only depends on
   that set); with role awareness the cheapest representative per set is
   kept, because under an energy cost the vertex roles decide which flows
   ride multi-hop routes. *)
let candidate_matchings ~env entry remaining =
  let opts = env.opts in
  let deadline = env.wall_deadline in
  let instr = env.instr in
  let acg = env.acg in
  let pattern = Hashtbl.find env.frozen entry.L.id in
  let cap = opts.max_matches_per_step in
  if opts.approx_missing > 0 then begin
    (* relaxed matching: dedup by realized edge set, keep discovery order *)
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let count = ref 0 in
    let _ =
      Noc_graph.Vf2.iter_approx_view ?deadline ?instr
        ~max_missing:opts.approx_missing ~pattern ~target:remaining (fun a ->
          let matching = Matching.of_approx_view entry ~pattern ~target:remaining a in
          let key = matching.Matching.covered in
          if key = [] || Hashtbl.mem seen key then `Continue
          else begin
            Hashtbl.replace seen key true;
            acc := (matching, Matching.cost opts.cost acg matching) :: !acc;
            incr count;
            if !count >= cap then `Stop else `Continue
          end)
    in
    List.rev !acc
  end
  else if opts.role_aware then begin
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    let hard_cap = max 32 (cap * 16) in
    let count = ref 0 in
    let _ =
      Noc_graph.Vf2.iter_view ?deadline ?instr ~pattern ~target:remaining (fun m ->
          let matching = Matching.of_vf2 entry m in
          let c = Matching.cost opts.cost acg matching in
          let key = matching.Matching.covered in
          (match Hashtbl.find_opt groups key with
          | None ->
              Hashtbl.replace groups key (matching, c);
              order := key :: !order
          | Some (_, best_c) -> if c < best_c then Hashtbl.replace groups key (matching, c));
          incr count;
          if !count >= hard_cap then `Stop else `Continue)
    in
    let keys = List.rev !order in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | k :: rest -> Hashtbl.find groups k :: take (n - 1) rest
    in
    take cap keys
  end
  else
    Noc_graph.Vf2.find_distinct_images_view ?deadline ?instr ~max_matches:cap
      ~pattern ~target:remaining ()
    |> List.map (fun m ->
           let matching = Matching.of_vf2 entry m in
           (matching, Matching.cost opts.cost acg matching))

(* A library entry is a "saver" when its implementation uses strictly fewer
   physical links than the number of ACG edges it covers (gossip graphs);
   every other primitive realizes its pattern at exactly dedicated-link
   cost, so it can never make a decomposition cheaper - under [Greedy] such
   neutral primitives are excluded from branching and recovered by a
   deterministic greedy pass at each leaf, which reproduces the paper's
   listings (loops, paths, broadcasts still appear in the output) while
   keeping the search tree driven by the primitives that matter. *)
let is_saver entry =
  let p = entry.L.prim in
  float_of_int (P.impl_link_count p) < float_of_int (P.repr_edge_count p) -. 1e-9

(* Deterministic completion: repeatedly take the first matching, in library
   order, whose cost does not exceed realizing its covered edges as
   dedicated links, and subtract it.  [compiled] holds the Messmer-Bunke
   style invariant screen (Section 5.1's decision-tree suggestion), so
   impossible patterns are rejected without any VF2 search.

   At large core counts a single greedy pass can dominate wall time (each
   iteration re-screens the whole library against the shrinking view), so
   the loop honours the search's monotonic deadline: once expired it stops
   re-attaching and leaves whatever remains as dedicated links.  The
   returned flag reports truncation — a truncated pass still produces a
   valid (just costlier) completion, but the caller must downgrade the
   result to anytime semantics. *)
let greedy_finish ?(deadline = Timer.Deadline.none) ~env remaining =
  let opts = env.opts in
  let rec go rem acc_rev acc_cost =
    if Timer.Deadline.expired deadline then (acc_rev, rem, acc_cost, true)
    else
      let alive =
        int_set_of_list (Noc_graph.Multi_pattern.survivors_view env.compiled rem)
      in
      let next =
        List.find_map
          (fun entry ->
            if Hashtbl.mem alive entry.L.id then
              match
                Noc_graph.Vf2.find_first_view ?deadline:env.wall_deadline
                  ?instr:env.instr
                  ~pattern:(Hashtbl.find env.frozen entry.L.id) ~target:rem ()
              with
              | Some m ->
                  let matching = Matching.of_vf2 entry m in
                  let c = Matching.cost opts.cost env.acg matching in
                  let direct =
                    Cost.remainder_cost opts.cost env.acg
                      (D.of_edges matching.Matching.covered)
                  in
                  if c <= direct +. 1e-9 then Some (matching, c) else None
              | None -> None
            else None)
          env.library
      in
      match next with
      | Some (matching, c) ->
          go
            (C.delete_edges rem matching.Matching.covered)
            (matching :: acc_rev) (acc_cost +. c)
      | None -> (acc_rev, rem, acc_cost, false)
  in
  go remaining [] 0.0

let accept ctx matchings_rev rest_view total ~path_rev =
  let d =
    {
      Decomposition.matchings = List.rev matchings_rev;
      remainder = C.to_digraph rest_view;
    }
  in
  let ok =
    match ctx.env.opts.constraints with
    | None -> true
    | Some c ->
        Constraints.satisfied ~rng:ctx.rng c ctx.env.acg
          (Synthesis.of_decomposition ctx.env.acg d)
  in
  if ok then begin
    ctx.best_decomp <- Some d;
    ctx.best <- total;
    ctx.best_path <- path_rev;
    ctx.incumbents <- ctx.incumbents + 1;
    cas_min ctx.env.shared_best total;
    (* the incumbent timeline: one instant event per accepted improvement *)
    if Obs.enabled ctx.env.obs then
      Obs.instant ctx.env.obs "incumbent"
        ~args:
          [
            ("cost", Obs.Json.Float total);
            ("nodes", Obs.Json.Int (Atomic.get ctx.env.nodes));
            ("matchings", Obs.Json.Int (List.length matchings_rev));
          ]
  end

(* The leaf of a node: re-attach neutral primitives greedily and charge the
   rest as dedicated links.  Leaf totals are always recomputed exactly (no
   incremental float accumulation), so reported costs are independent of
   the path taken to reach the leaf. *)
let eval_leaf ctx remaining matchings_rev cost_so_far ~path_rev =
  let env = ctx.env in
  ctx.leaves <- ctx.leaves + 1;
  let extra_rev, rest, extra_cost =
    match env.opts.neutrals with
    | Branch -> ([], remaining, 0.0)
    | Greedy ->
        let extra_rev, rest, extra_cost, truncated =
          greedy_finish ~deadline:env.mono_deadline ~env remaining
        in
        (* a cut-short greedy pass means this leaf's total is budget-
           dependent: report the whole search as exhausted so callers
           don't take the determinism guarantee on it *)
        if truncated then ctx.timed_out <- true;
        (extra_rev, rest, extra_cost)
  in
  let total = cost_so_far +. extra_cost +. Cost.remainder_cost_view env.opts.cost env.acg rest in
  if total < ctx.best then accept ctx (extra_rev @ matchings_rev) rest total ~path_rev

(* [min_id]: when canonical ordering is on, only primitives with id >=
   min_id may be matched below this node.  Decompositions are multisets
   of matchings, so exploring them in non-decreasing library order visits
   each multiset once instead of once per permutation.

   A branch is explored when its bound beats both the task-local best
   (strictly — preserving the seed engine's first-of-equal-cost tie-break)
   and the cross-worker incumbent (non-strictly, so an equal-cost subtree
   in an earlier canonical branch is never lost to a later worker's
   publication).  In the sequential driver the task-local best IS the
   global best, and the rule collapses to the seed engine's [bound < best].

   [path_rev] assigns every node its sequence of child indices from the
   root — candidate enumeration is deterministic, so the index of a branch
   is too, and a node's own leaf gets index [#children], ordering it after
   its subtrees exactly like the depth-first engine visits it.  The final
   reduction minimizes (cost, path), which makes the reported result
   independent of which worker ran which task. *)
let rec explore ctx remaining matchings_rev cost_so_far min_id ~rem_c ~lb_c
    ~path_rev ~depth =
  let env = ctx.env in
  let opts = env.opts in
  ignore (Atomic.fetch_and_add env.nodes 1);
  if budget_exhausted ctx then ()
  else begin
    let alive =
      int_set_of_list
        (Noc_graph.Multi_pattern.survivors_view ~slack:opts.approx_missing
           env.compiled remaining)
    in
    let matched_any = ref false in
    let child_i = ref 0 in
    List.iter
      (fun entry ->
        if
          ((not opts.canonical_order) || entry.L.id >= min_id)
          && Hashtbl.mem alive entry.L.id
          && not (budget_exhausted ctx)
        then begin
          let cands = candidate_matchings ~env entry remaining in
          ctx.attempts.(entry.L.id) <- ctx.attempts.(entry.L.id) + 1;
          ctx.hits.(entry.L.id) <- ctx.hits.(entry.L.id) + List.length cands;
          List.iter
            (fun (matching, c) ->
              matched_any := true;
              ctx.matches_tried <- ctx.matches_tried + 1;
              let i = !child_i in
              incr child_i;
              if not (budget_exhausted ctx) then begin
                let new_cost = cost_so_far +. c in
                let view' = C.delete_edges remaining matching.Matching.covered in
                let rem_c', lb_c' =
                  child_bounds env ~rem_c ~lb_c matching.Matching.covered view'
                in
                let bound = new_cost +. lb_c' in
                if bound < ctx.best && bound <= Atomic.get env.shared_best then begin
                  match ctx.spawn with
                  | Some push when depth < ctx.spawn_depth ->
                      push
                        {
                          t_view = view';
                          t_matchings = matching :: matchings_rev;
                          t_cost = new_cost;
                          t_min_id = entry.L.id;
                          t_rem_c = rem_c';
                          t_lb_c = lb_c';
                          t_path_rev = i :: path_rev;
                          t_depth = depth + 1;
                        }
                  | Some _ | None ->
                      explore ctx view' (matching :: matchings_rev) new_cost
                        entry.L.id ~rem_c:rem_c' ~lb_c:lb_c'
                        ~path_rev:(i :: path_rev) ~depth:(depth + 1)
                end
                else ctx.pruned <- ctx.pruned + 1
              end)
            cands
        end)
      env.branchable;
    (* leaf: either nothing matched (the paper's rule) or early stop is
       allowed; neutral primitives are re-attached greedily so loops,
       paths and broadcasts still show up in the listing *)
    if (not !matched_any) || opts.allow_early_remainder then
      eval_leaf ctx remaining matchings_rev cost_so_far
        ~path_rev:(!child_i :: path_rev)
  end

(* ------------------------------------------------------------------ *)
(* Work-stealing scheduler.

   Each worker owns a deque ({!Ws.Deque}, shared with the exploration
   driver) of open subproblems: it pushes and pops at the bottom
   (depth-first, keeping the hot view overlays cache-local) while idle
   workers steal from the top (breadth-first, stealing the biggest
   subtrees).  [explore] turns a branch into a task instead of recursing
   while the node is shallower than [spawn_depth] — a deterministic,
   depth-only policy, so the set of tasks (and hence the searched tree
   shape) does not depend on queue occupancy or timing.

   Termination: [pending] counts spawned-but-unfinished tasks.  A spawn
   increments it before the push; a worker decrements it only after the
   task's subtree is fully explored and its result recorded.  Workers spin
   (with a micro-sleep once the machine is clearly oversubscribed) until
   [pending] drops to zero, at which point no task exists or can appear.
   (Ws.map's simpler exit rule does not apply here: search tasks spawn
   subtasks, so empty deques alone do not mean the tree is exhausted.) *)

module Deque = Ws.Deque

(* Branches above this depth become stealable tasks; below it a worker
   recurses inline.  Depth-only (deterministic) by design — see above. *)
let spawn_depth_for _domains = 3

(* One independent constraint-checker rng per task, derived from the task's
   path: the stream a task sees does not depend on which worker runs it. *)
let task_rng env path_rev =
  Noc_util.Prng.create ~seed:(env.task_seed lxor Hashtbl.hash path_rev)

let run_work_stealing env root_view ~domains ~rank ~rem0 ~lb0 =
  let n_dom = domains in
  let deques = Array.init n_dom (fun _ -> Deque.create ()) in
  let pending = Atomic.make 0 in
  let results = Array.make n_dom [] in
  let ctxs = Array.make n_dom None in
  let busy_s = Array.make n_dom 0.0 in
  let idle_s = Array.make n_dom 0.0 in
  Atomic.incr pending;
  ignore (Atomic.fetch_and_add env.task_count 1);
  Deque.push_bottom deques.(0)
    {
      t_view = root_view;
      t_matchings = [];
      t_cost = 0.0;
      t_min_id = 0;
      t_rem_c = rem0;
      t_lb_c = lb0;
      t_path_rev = [];
      t_depth = 0;
    };
  let worker slot () =
    let t_begin = Timer.now_mono_s () in
    let busy = ref 0.0 in
    let ctx = mk_ctx env (task_rng env [ slot ]) in
    ctx.spawn_depth <- spawn_depth_for n_dom;
    ctxs.(slot) <- Some ctx;
    let my = deques.(slot) in
    ctx.spawn <-
      Some
        (fun t ->
          Atomic.incr pending;
          ignore (Atomic.fetch_and_add env.task_count 1);
          Deque.push_bottom my t);
    let try_steal () =
      let stolen = ref None in
      let k = ref 1 in
      while Option.is_none !stolen && !k < n_dom do
        (match Deque.steal_top deques.((slot + !k) mod n_dom) with
        | Some t ->
            ignore (Atomic.fetch_and_add env.steal_count 1);
            stolen := Some t
        | None -> ());
        incr k
      done;
      !stolen
    in
    let rec obtain spins =
      match Deque.pop_bottom my with
      | Some t -> Some t
      | None -> (
          match try_steal () with
          | Some t -> Some t
          | None ->
              if Atomic.get pending = 0 then None
              else begin
                (* back off: spin briefly, then yield the hardware thread —
                   on an oversubscribed machine a spinning thief would
                   starve the one worker that has the work *)
                if spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002;
                obtain (spins + 1)
              end)
    in
    let continue = ref true in
    while !continue do
      match obtain 0 with
      | None -> continue := false
      | Some t ->
          let t0 = Timer.now_mono_s () in
          ctx.rng <- task_rng env t.t_path_rev;
          ctx.best <- infinity;
          ctx.best_decomp <- None;
          ctx.best_path <- [];
          explore ctx t.t_view t.t_matchings t.t_cost t.t_min_id
            ~rem_c:t.t_rem_c ~lb_c:t.t_lb_c ~path_rev:t.t_path_rev
            ~depth:t.t_depth;
          (match ctx.best_decomp with
          | Some d ->
              results.(slot) <-
                (ctx.best, rank, List.rev ctx.best_path, d) :: results.(slot)
          | None -> ());
          busy := !busy +. (Timer.now_mono_s () -. t0);
          ignore (Atomic.fetch_and_add pending (-1))
    done;
    busy_s.(slot) <- !busy;
    idle_s.(slot) <- Timer.now_mono_s () -. t_begin -. !busy
  in
  let run_worker slot () =
    if Obs.enabled env.obs then
      Obs.span env.obs ~cat:"search" (Printf.sprintf "worker %d" slot) (fun () ->
          worker slot ())
    else worker slot ()
  in
  let doms = Array.init (n_dom - 1) (fun k -> Domain.spawn (run_worker (k + 1))) in
  run_worker 0 ();
  Array.iter Domain.join doms;
  (* per-domain utilization for the observer *)
  if Obs.enabled env.obs then begin
    Obs.Gauge.set (Obs.gauge env.obs "search.domains") (float_of_int n_dom);
    for k = 0 to n_dom - 1 do
      Obs.Gauge.set
        (Obs.gauge env.obs (Printf.sprintf "search.domain.%d.busy_s" k))
        busy_s.(k);
      Obs.Gauge.set
        (Obs.gauge env.obs (Printf.sprintf "search.domain.%d.idle_s" k))
        idle_s.(k)
    done
  end;
  let all_results = Array.to_list results |> List.concat in
  let all_ctxs = Array.to_list ctxs |> List.filter_map Fun.id in
  (all_results, all_ctxs)

(* One search instance: sequential when it has a single domain (the exact
   seed engine — one incumbent cell, no task machinery), work-stealing
   otherwise. *)
let run_search env root_view base_rng ~domains ~rank =
  let rem0 = Cost.remainder_cost_view env.opts.cost env.acg root_view in
  let lb0 =
    Cost.lower_bound_view env.opts.cost env.acg ~min_link_ratio:env.min_ratio
      root_view
  in
  if domains <= 1 then begin
    ignore (Atomic.fetch_and_add env.task_count 1);
    let ctx = mk_ctx env base_rng in
    explore ctx root_view [] 0.0 0 ~rem_c:rem0 ~lb_c:lb0 ~path_rev:[] ~depth:0;
    let res =
      match ctx.best_decomp with
      | Some d -> [ (ctx.best, rank, List.rev ctx.best_path, d) ]
      | None -> []
    in
    (res, [ ctx ])
  end
  else run_work_stealing env root_view ~domains ~rank ~rem0 ~lb0

(* Portfolio: race one instance per branch ordering over a split of the
   domain budget.  All instances share the node budget, the incumbent bound
   (so any instance's incumbent prunes every other) and the deadline; the
   reduction prefers the lowest cost, ties to the lowest instance index —
   instance 0 is the canonical ordering, so a completed portfolio search
   reports the same cost as the plain engine. *)
let run_portfolio env root_view base_rng ~domains =
  let insts = Array.of_list all_orderings in
  let n = Array.length insts in
  let doms = Array.make n 1 in
  if domains >= n then begin
    let base = domains / n and extra = domains mod n in
    for k = 0 to n - 1 do
      doms.(k) <- base + (if k < extra then 1 else 0)
    done
  end;
  let src = Noc_util.Prng.copy base_rng in
  let rngs = Array.init n (fun _ -> Noc_util.Prng.split src) in
  let run k () =
    let env_k = { env with branchable = order_entries insts.(k) env.branchable } in
    run_search env_k root_view rngs.(k) ~domains:doms.(k) ~rank:k
  in
  let handles = Array.init (n - 1) (fun j -> Domain.spawn (run (j + 1))) in
  let r0 = run 0 () in
  let rest = Array.map Domain.join handles in
  Array.fold_left
    (fun (res, ctxs) (r, c) -> (res @ r, ctxs @ c))
    r0 rest

(* ------------------------------------------------------------------ *)

(* Lexicographic order on leaf paths = the order the sequential
   depth-first engine visits leaves. *)
let rec path_lt p q =
  match (p, q) with
  | [], [] -> false
  | [], _ :: _ -> true
  | _ :: _, [] -> false
  | a :: p', b :: q' -> a < b || (a = b && path_lt p' q')

(* Deterministic reduction over every recorded incumbent: minimum cost,
   ties to the lowest instance rank, then to the depth-first-smallest leaf
   path.  Equal to the sequential engine's pick whenever the search ran to
   completion. *)
let reduce_results results =
  List.fold_left
    (fun best ((c, r, p, _) as cand) ->
      match best with
      | None -> Some cand
      | Some (bc, br, bp, _) ->
          if c < bc || (c = bc && (r < br || (r = br && path_lt p bp))) then
            Some cand
          else best)
    None results

(* Anytime fallback: the deterministic greedy completion from the root,
   checked against the constraints, published as the initial incumbent.
   It bounds the search from the first node, and if the budget dies before
   the search finds anything better the caller still gets a feasible
   decomposition.  Ranked after every search instance, so it only wins
   when the search found nothing at least as good. *)
let fallback_rank = max_int

let fallback_seed env root_view rng =
  (* the seed honours the deadline too: truncation only enlarges the
     remainder (realized as dedicated links), so the result stays a valid
     feasible decomposition even when the budget is gone before one full
     greedy pass fits *)
  let matchings_rev, rest, cost, _truncated =
    greedy_finish ~deadline:env.mono_deadline ~env root_view
  in
  let total =
    cost +. Cost.remainder_cost_view env.opts.cost env.acg rest
  in
  let d =
    {
      Decomposition.matchings = List.rev matchings_rev;
      remainder = C.to_digraph rest;
    }
  in
  let ok =
    match env.opts.constraints with
    | None -> true
    | Some c ->
        Constraints.satisfied ~rng c env.acg (Synthesis.of_decomposition env.acg d)
  in
  if ok then begin
    cas_min env.shared_best total;
    if Obs.enabled env.obs then
      Obs.instant env.obs "fallback-seed" ~args:[ ("cost", Obs.Json.Float total) ];
    Some (total, fallback_rank, [], d)
  end
  else None

let decompose ?(options = default_options) ?budget ?(observe = Obs.disabled)
    ?rng ~library acg =
  let opts = options in
  let budget = resolve_budget ?budget () in
  let base_rng =
    match rng with Some r -> r | None -> Noc_util.Prng.create ~seed:0x5eed
  in
  let t0 = Timer.now_mono_s () in
  let wall_deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) budget.Budget.timeout_s
  in
  let mono_deadline = Timer.Deadline.after_opt budget.Budget.timeout_s in

  let min_ratio = Cost.min_link_ratio_of_library library in
  let branchable =
    match opts.neutrals with
    | Branch -> library
    | Greedy -> List.filter is_saver library
  in
  let branchable =
    if opts.portfolio then branchable else order_entries opts.ordering branchable
  in
  let compiled, frozen =
    Obs.span observe ~cat:"setup" "compile-library" (fun () ->
        let compiled =
          Noc_graph.Multi_pattern.compile
            (List.map (fun e -> (e.L.id, e.L.prim.P.repr)) library)
        in
        let frozen = Hashtbl.create 16 in
        List.iter
          (fun e ->
            if not (Hashtbl.mem frozen e.L.id) then
              Hashtbl.replace frozen e.L.id (C.freeze e.L.prim.P.repr))
          library;
        (compiled, frozen))
  in
  let instr =
    if Obs.enabled observe then Some (Noc_graph.Vf2.Instr.create ()) else None
  in
  let inc =
    match opts.cost with
    | Cost.Edge_count -> None
    | Cost.Energy _ ->
        let graph = Acg.graph acg in
        let sz = max 16 (2 * D.num_edges graph) in
        let rem_of = Hashtbl.create sz and lb_of = Hashtbl.create sz in
        D.iter_edges
          (fun u v ->
            Hashtbl.replace rem_of (u, v)
              (Cost.edge_remainder_cost opts.cost acg u v);
            Hashtbl.replace lb_of (u, v)
              (Cost.edge_lower_bound opts.cost acg ~min_link_ratio:min_ratio u v))
          graph;
        Some { rem_of; lb_of }
  in
  let task_seed =
    Int64.to_int (Noc_util.Prng.bits64 (Noc_util.Prng.copy base_rng)) land max_int
  in
  let env =
    {
      opts;
      budget;
      acg;
      library;
      branchable;
      compiled;
      frozen;
      min_ratio;
      inc;
      wall_deadline;
      mono_deadline;
      nodes = Atomic.make 0;
      shared_best = Atomic.make infinity;
      task_count = Atomic.make 0;
      steal_count = Atomic.make 0;
      task_seed;
      obs = observe;
      instr;
      prim_slots = 1 + List.fold_left (fun m e -> max m e.L.id) 0 library;
    }
  in
  let root_view = C.view (C.freeze (Acg.graph acg)) in
  let lb0 =
    Cost.lower_bound_view opts.cost acg ~min_link_ratio:min_ratio root_view
  in
  let seed =
    if opts.fallback then
      Obs.span observe ~cat:"search" "greedy-fallback-seed" (fun () ->
          fallback_seed env root_view (Noc_util.Prng.copy base_rng))
    else None
  in
  let search_results, workers =
    Obs.span observe ~cat:"search" "branch-and-bound"
      ~args:
        [
          ("domains", Obs.Json.Int budget.Budget.domains);
          ("portfolio", Obs.Json.Bool opts.portfolio);
        ]
      (fun () ->
        if opts.portfolio then
          run_portfolio env root_view base_rng ~domains:budget.Budget.domains
        else
          run_search env root_view base_rng ~domains:budget.Budget.domains
            ~rank:0)
  in
  let elapsed = Timer.now_mono_s () -. t0 in
  let all_results =
    match seed with Some s -> s :: search_results | None -> search_results
  in
  let reduced = reduce_results all_results in
  let decomp, best_cost, met, fallback_used, win_rank =
    match reduced with
    | Some (c, r, _, d) -> (d, c, true, r = fallback_rank, r)
    | None ->
        (* no complete decomposition was accepted (constraints rejected
           them all, or the budget ran out before the first leaf): fall
           back to the all-remainder decomposition so the caller still gets
           a valid covering, and report whether it satisfies the
           constraints *)
        let d = { Decomposition.matchings = []; remainder = Acg.graph acg } in
        let met =
          match opts.constraints with
          | None -> true
          | Some c ->
              Constraints.satisfied ~rng:base_rng c acg
                (Synthesis.of_decomposition acg d)
        in
        (d, Cost.remainder_cost opts.cost acg (Acg.graph acg), met, false, -1)
  in
  let winner =
    if opts.portfolio && win_rank >= 0 && win_rank < List.length all_orderings
    then Some (ordering_name (List.nth all_orderings win_rank))
    else None
  in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 workers in
  let timed_out = List.exists (fun w -> w.timed_out) workers in
  let gap_pct =
    if timed_out && lb0 > 1e-12 then
      Some (Float.max 0.0 (100.0 *. (best_cost -. lb0) /. lb0))
    else None
  in
  let seen = Hashtbl.create 8 in
  let per_primitive =
    List.filter_map
      (fun e ->
        if Hashtbl.mem seen e.L.id then None
        else begin
          Hashtbl.replace seen e.L.id ();
          Some
            ( e.L.prim.P.name,
              {
                attempts = sum (fun w -> w.attempts.(e.L.id));
                hits = sum (fun w -> w.hits.(e.L.id));
              } )
        end)
      library
  in
  let stats =
    {
      nodes = Atomic.get env.nodes;
      matches_tried = sum (fun w -> w.matches_tried);
      leaves = sum (fun w -> w.leaves);
      pruned = sum (fun w -> w.pruned);
      incumbents = sum (fun w -> w.incumbents);
      tasks = Atomic.get env.task_count;
      steals = Atomic.get env.steal_count;
      elapsed_s = elapsed;
      timed_out;
      best_cost;
      constraints_met = met;
      fallback_used;
      gap_pct;
      winner;
      per_primitive;
      vf2 =
        (match instr with
        | Some i ->
            {
              probes = Noc_graph.Vf2.Instr.probes i;
              backtracks = Noc_graph.Vf2.Instr.backtracks i;
            }
        | None -> { probes = 0; backtracks = 0 });
    }
  in
  (* mirror the final search counters into the observer so traces and
     metric dumps carry them without a second aggregation pass *)
  if Obs.enabled observe then begin
    let put name v = Obs.Counter.add (Obs.counter observe name) v in
    put "search.nodes" stats.nodes;
    put "search.matches_tried" stats.matches_tried;
    put "search.leaves" stats.leaves;
    put "search.pruned" stats.pruned;
    put "search.incumbents" stats.incumbents;
    put "search.tasks" stats.tasks;
    put "search.steals" stats.steals;
    put "vf2.probes" stats.vf2.probes;
    put "vf2.backtracks" stats.vf2.backtracks;
    List.iter
      (fun (name, (p : prim_stats)) ->
        put (Printf.sprintf "match.%s.attempts" name) p.attempts;
        put (Printf.sprintf "match.%s.hits" name) p.hits)
      stats.per_primitive;
    Obs.Gauge.set (Obs.gauge observe "search.best_cost") stats.best_cost
  end;
  (decomp, stats)
