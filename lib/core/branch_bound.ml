module D = Noc_graph.Digraph
module C = Noc_graph.Compact
module L = Noc_primitives.Library
module P = Noc_primitives.Primitive
module Timer = Noc_util.Timer
module Obs = Noc_obs.Obs

type neutral_strategy = Branch | Greedy

module Budget = struct
  type t = { timeout_s : float option; max_nodes : int; domains : int }

  let default = { timeout_s = None; max_nodes = 200_000; domains = 1 }
  let with_timeout_s timeout_s t = { t with timeout_s }
  let with_max_nodes max_nodes t = { t with max_nodes }
  let with_domains domains t = { t with domains }
end

type options = {
  cost : Cost.t;
  constraints : Constraints.t option;
  max_matches_per_step : int;
  timeout_s : float option;
  max_nodes : int;
  allow_early_remainder : bool;
  role_aware : bool;
  canonical_order : bool;
  neutrals : neutral_strategy;
  approx_missing : int;
}

let default_options =
  {
    cost = Cost.Edge_count;
    constraints = None;
    max_matches_per_step = 1;
    timeout_s = None;
    max_nodes = 200_000;
    allow_early_remainder = true;
    role_aware = false;
    canonical_order = true;
    neutrals = Greedy;
    approx_missing = 0;
  }

let energy_options ~tech ~fp =
  {
    default_options with
    cost = Cost.Energy { tech; fp };
    constraints = Some (Constraints.of_technology tech);
    role_aware = true;
  }

type prim_stats = { attempts : int; hits : int }

type vf2_stats = { probes : int; backtracks : int }

type stats = {
  nodes : int;
  matches_tried : int;
  leaves : int;
  pruned : int;
  incumbents : int;
  elapsed_s : float;
  timed_out : bool;
  best_cost : float;
  constraints_met : bool;
  per_primitive : (string * prim_stats) list;
  vf2 : vf2_stats;
}

let stats_to_json st =
  Obs.Json.Obj
    [
      ("nodes", Obs.Json.Int st.nodes);
      ("matches_tried", Obs.Json.Int st.matches_tried);
      ("leaves", Obs.Json.Int st.leaves);
      ("pruned", Obs.Json.Int st.pruned);
      ("incumbents", Obs.Json.Int st.incumbents);
      ("elapsed_s", Obs.Json.Float st.elapsed_s);
      ("timed_out", Obs.Json.Bool st.timed_out);
      ("best_cost", Obs.Json.Float st.best_cost);
      ("constraints_met", Obs.Json.Bool st.constraints_met);
      ( "vf2",
        Obs.Json.Obj
          [
            ("probes", Obs.Json.Int st.vf2.probes);
            ("backtracks", Obs.Json.Int st.vf2.backtracks);
          ] );
      ( "per_primitive",
        Obs.Json.Obj
          (List.map
             (fun (name, p) ->
               ( name,
                 Obs.Json.Obj
                   [
                     ("attempts", Obs.Json.Int p.attempts);
                     ("hits", Obs.Json.Int p.hits);
                   ] ))
             st.per_primitive) );
    ]

(* Everything the search shares across workers: immutable configuration,
   the frozen ACG, plus two atomics — the node budget and the incumbent
   cost used for cross-domain pruning. *)
type env = {
  opts : options;
  budget : Budget.t;
  acg : Acg.t;
  library : L.t;
  branchable : L.entry list;
  compiled : Noc_graph.Multi_pattern.t;
  frozen : (int, C.t) Hashtbl.t;  (** entry id -> frozen representation graph *)
  min_ratio : float;
  wall_deadline : float option;  (** absolute wall clock, for the Vf2 API *)
  mono_deadline : Timer.Deadline.t;
  nodes : int Atomic.t;
  shared_best : float Atomic.t;
  obs : Obs.t;
  instr : Noc_graph.Vf2.Instr.t option;  (** present iff [obs] is enabled *)
  prim_slots : int;  (** 1 + max library entry id, for per-primitive arrays *)
}

(* Worker-local search state.  In the sequential driver there is exactly one
   of these and [local_best] mirrors [shared_best], reproducing the seed
   engine's single global incumbent; in the parallel driver each root branch
   gets a fresh one so its result is independent of scheduling. *)
type wctx = {
  env : env;
  rng : Noc_util.Prng.t;
  mutable local_best : float;
  mutable local_decomp : Decomposition.t option;
  mutable matches_tried : int;
  mutable leaves : int;
  mutable pruned : int;
  mutable incumbents : int;
  mutable timed_out : bool;
  attempts : int array;  (** per library entry id: candidate enumerations *)
  hits : int array;  (** per library entry id: matchings instantiated *)
}

let mk_ctx env rng =
  {
    env;
    rng;
    local_best = infinity;
    local_decomp = None;
    matches_tried = 0;
    leaves = 0;
    pruned = 0;
    incumbents = 0;
    timed_out = false;
    attempts = Array.make env.prim_slots 0;
    hits = Array.make env.prim_slots 0;
  }

let rec cas_min a x =
  let cur = Atomic.get a in
  if x < cur && not (Atomic.compare_and_set a cur x) then cas_min a x

let budget_exhausted ctx =
  if Atomic.get ctx.env.nodes >= ctx.env.budget.Budget.max_nodes then begin
    ctx.timed_out <- true;
    true
  end
  else if Timer.Deadline.expired ctx.env.mono_deadline then begin
    ctx.timed_out <- true;
    true
  end
  else false

let int_set_of_list ids =
  let tbl = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace tbl id ()) ids;
  tbl

(* Enumerate up to [max_matches_per_step] candidate matchings of [entry] in
   [remaining].  Without role awareness, one representative per
   covered-edge set (the remaining graph after subtraction only depends on
   that set); with role awareness the cheapest representative per set is
   kept, because under an energy cost the vertex roles decide which flows
   ride multi-hop routes. *)
let candidate_matchings ~env entry remaining =
  let opts = env.opts in
  let deadline = env.wall_deadline in
  let instr = env.instr in
  let acg = env.acg in
  let pattern = Hashtbl.find env.frozen entry.L.id in
  let cap = opts.max_matches_per_step in
  if opts.approx_missing > 0 then begin
    (* relaxed matching: dedup by realized edge set, keep discovery order *)
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let count = ref 0 in
    let _ =
      Noc_graph.Vf2.iter_approx_view ?deadline ?instr
        ~max_missing:opts.approx_missing ~pattern ~target:remaining (fun a ->
          let matching = Matching.of_approx_view entry ~pattern ~target:remaining a in
          let key = matching.Matching.covered in
          if key = [] || Hashtbl.mem seen key then `Continue
          else begin
            Hashtbl.replace seen key true;
            acc := (matching, Matching.cost opts.cost acg matching) :: !acc;
            incr count;
            if !count >= cap then `Stop else `Continue
          end)
    in
    List.rev !acc
  end
  else if opts.role_aware then begin
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    let hard_cap = max 32 (cap * 16) in
    let count = ref 0 in
    let _ =
      Noc_graph.Vf2.iter_view ?deadline ?instr ~pattern ~target:remaining (fun m ->
          let matching = Matching.of_vf2 entry m in
          let c = Matching.cost opts.cost acg matching in
          let key = matching.Matching.covered in
          (match Hashtbl.find_opt groups key with
          | None ->
              Hashtbl.replace groups key (matching, c);
              order := key :: !order
          | Some (_, best_c) -> if c < best_c then Hashtbl.replace groups key (matching, c));
          incr count;
          if !count >= hard_cap then `Stop else `Continue)
    in
    let keys = List.rev !order in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | k :: rest -> Hashtbl.find groups k :: take (n - 1) rest
    in
    take cap keys
  end
  else
    Noc_graph.Vf2.find_distinct_images_view ?deadline ?instr ~max_matches:cap
      ~pattern ~target:remaining ()
    |> List.map (fun m ->
           let matching = Matching.of_vf2 entry m in
           (matching, Matching.cost opts.cost acg matching))

(* A library entry is a "saver" when its implementation uses strictly fewer
   physical links than the number of ACG edges it covers (gossip graphs);
   every other primitive realizes its pattern at exactly dedicated-link
   cost, so it can never make a decomposition cheaper - under [Greedy] such
   neutral primitives are excluded from branching and recovered by a
   deterministic greedy pass at each leaf, which reproduces the paper's
   listings (loops, paths, broadcasts still appear in the output) while
   keeping the search tree driven by the primitives that matter. *)
let is_saver entry =
  let p = entry.L.prim in
  float_of_int (P.impl_link_count p) < float_of_int (P.repr_edge_count p) -. 1e-9

(* Deterministic completion: repeatedly take the first matching, in library
   order, whose cost does not exceed realizing its covered edges as
   dedicated links, and subtract it.  [compiled] holds the Messmer-Bunke
   style invariant screen (Section 5.1's decision-tree suggestion), so
   impossible patterns are rejected without any VF2 search. *)
let greedy_finish ~env remaining =
  let opts = env.opts in
  let rec go rem acc_rev acc_cost =
    let alive =
      int_set_of_list (Noc_graph.Multi_pattern.survivors_view env.compiled rem)
    in
    let next =
      List.find_map
        (fun entry ->
          if Hashtbl.mem alive entry.L.id then
            match
              Noc_graph.Vf2.find_first_view ?deadline:env.wall_deadline
                ?instr:env.instr
                ~pattern:(Hashtbl.find env.frozen entry.L.id) ~target:rem ()
            with
            | Some m ->
                let matching = Matching.of_vf2 entry m in
                let c = Matching.cost opts.cost env.acg matching in
                let direct =
                  Cost.remainder_cost opts.cost env.acg
                    (D.of_edges matching.Matching.covered)
                in
                if c <= direct +. 1e-9 then Some (matching, c) else None
            | None -> None
          else None)
        env.library
    in
    match next with
    | Some (matching, c) ->
        go
          (C.delete_edges rem matching.Matching.covered)
          (matching :: acc_rev) (acc_cost +. c)
    | None -> (acc_rev, rem, acc_cost)
  in
  go remaining [] 0.0

let accept ctx matchings_rev rest_view total =
  let d =
    {
      Decomposition.matchings = List.rev matchings_rev;
      remainder = C.to_digraph rest_view;
    }
  in
  let ok =
    match ctx.env.opts.constraints with
    | None -> true
    | Some c ->
        Constraints.satisfied ~rng:ctx.rng c ctx.env.acg
          (Synthesis.of_decomposition ctx.env.acg d)
  in
  if ok then begin
    ctx.local_decomp <- Some d;
    ctx.local_best <- total;
    ctx.incumbents <- ctx.incumbents + 1;
    cas_min ctx.env.shared_best total;
    (* the incumbent timeline: one instant event per accepted improvement *)
    if Obs.enabled ctx.env.obs then
      Obs.instant ctx.env.obs "incumbent"
        ~args:
          [
            ("cost", Obs.Json.Float total);
            ("nodes", Obs.Json.Int (Atomic.get ctx.env.nodes));
            ("matchings", Obs.Json.Int (List.length matchings_rev));
          ]
  end

(* The leaf of a node: re-attach neutral primitives greedily and charge the
   rest as dedicated links. *)
let eval_leaf ctx remaining matchings_rev cost_so_far =
  let env = ctx.env in
  ctx.leaves <- ctx.leaves + 1;
  let extra_rev, rest, extra_cost =
    match env.opts.neutrals with
    | Branch -> ([], remaining, 0.0)
    | Greedy -> greedy_finish ~env remaining
  in
  let total = cost_so_far +. extra_cost +. Cost.remainder_cost_view env.opts.cost env.acg rest in
  if total < ctx.local_best then accept ctx (extra_rev @ matchings_rev) rest total

(* [min_id]: when canonical ordering is on, only primitives with id >=
   min_id may be matched below this node.  Decompositions are multisets
   of matchings, so exploring them in non-decreasing library order visits
   each multiset once instead of once per permutation.

   A branch is explored when its bound beats both the branch-local best
   (strictly — preserving the seed engine's first-of-equal-cost tie-break)
   and the cross-domain incumbent (non-strictly, so an equal-cost subtree
   in an earlier canonical branch is never lost to a later worker's
   publication).  In the sequential driver [local_best = shared_best]
   always, and the rule collapses to the seed engine's [bound < best]. *)
let rec explore ctx remaining matchings_rev cost_so_far min_id =
  let env = ctx.env in
  let opts = env.opts in
  ignore (Atomic.fetch_and_add env.nodes 1);
  if budget_exhausted ctx then ()
  else begin
    let alive =
      int_set_of_list
        (Noc_graph.Multi_pattern.survivors_view ~slack:opts.approx_missing
           env.compiled remaining)
    in
    let matched_any = ref false in
    List.iter
      (fun entry ->
        if
          ((not opts.canonical_order) || entry.L.id >= min_id)
          && Hashtbl.mem alive entry.L.id
          && not (budget_exhausted ctx)
        then begin
          let cands = candidate_matchings ~env entry remaining in
          ctx.attempts.(entry.L.id) <- ctx.attempts.(entry.L.id) + 1;
          ctx.hits.(entry.L.id) <- ctx.hits.(entry.L.id) + List.length cands;
          List.iter
            (fun (matching, c) ->
              matched_any := true;
              ctx.matches_tried <- ctx.matches_tried + 1;
              if not (budget_exhausted ctx) then begin
                let new_cost = cost_so_far +. c in
                let rem' = C.delete_edges remaining matching.Matching.covered in
                let lb =
                  Cost.lower_bound_view opts.cost env.acg ~min_link_ratio:env.min_ratio
                    rem'
                in
                let bound = new_cost +. lb in
                if bound < ctx.local_best && bound <= Atomic.get env.shared_best then
                  explore ctx rem' (matching :: matchings_rev) new_cost entry.L.id
                else ctx.pruned <- ctx.pruned + 1
              end)
            cands
        end)
      env.branchable;
    (* leaf: either nothing matched (the paper's rule) or early stop is
       allowed; neutral primitives are re-attached greedily so loops,
       paths and broadcasts still show up in the listing *)
    if (not !matched_any) || opts.allow_early_remainder then
      eval_leaf ctx remaining matchings_rev cost_so_far
  end

(* ------------------------------------------------------------------ *)
(* Parallel driver: fan the root-level branches across domains.

   The root's branches (one per library-entry x candidate-matching pair)
   are enumerated sequentially — candidate enumeration never depends on the
   incumbent, so every run sees the same branch array in the same canonical
   order.  Workers claim branch indices from an atomic counter and search
   each branch with a fresh branch-local incumbent, publishing
   constraint-feasible costs to [shared_best]; cross-domain pruning only
   cuts subtrees whose admissible bound is strictly above the shared
   incumbent, so no subtree that could attain the global minimum is ever
   cut, whatever the interleaving.  The reduction picks the minimum cost
   and breaks ties by the smallest branch index (with the "stop at the
   root" decomposition ordered last), which is exactly the decomposition
   the sequential depth-first engine returns. *)

type root_branch = {
  br_entry : L.entry;
  br_matching : Matching.t;
  br_cost : float;
}

let run_parallel env root_view base_rng ~domains =
  (* the root node itself *)
  ignore (Atomic.fetch_and_add env.nodes 1);
  let root_ctx = mk_ctx env base_rng in
  let branches = ref [] in
  if not (budget_exhausted root_ctx) then begin
    let alive =
      int_set_of_list
        (Noc_graph.Multi_pattern.survivors_view ~slack:env.opts.approx_missing
           env.compiled root_view)
    in
    List.iter
      (fun entry ->
        if Hashtbl.mem alive entry.L.id && not (budget_exhausted root_ctx) then begin
          let cands = candidate_matchings ~env entry root_view in
          root_ctx.attempts.(entry.L.id) <- root_ctx.attempts.(entry.L.id) + 1;
          root_ctx.hits.(entry.L.id) <- root_ctx.hits.(entry.L.id) + List.length cands;
          List.iter
            (fun (matching, c) ->
              root_ctx.matches_tried <- root_ctx.matches_tried + 1;
              branches :=
                { br_entry = entry; br_matching = matching; br_cost = c } :: !branches)
            cands
        end)
      env.branchable
  end;
  let branch_arr = Array.of_list (List.rev !branches) in
  let nb = Array.length branch_arr in
  let include_root_leaf = env.opts.allow_early_remainder || nb = 0 in
  let n_work = nb + if include_root_leaf then 1 else 0 in
  (* one independent, deterministically derived rng per work item, so the
     constraint checker's stream does not depend on which domain runs it *)
  let rng_src = Noc_util.Prng.copy base_rng in
  let rngs = Array.init n_work (fun _ -> Noc_util.Prng.split rng_src) in
  let results = Array.make n_work (infinity, None) in
  let ctxs = Array.make n_work None in
  let next = Atomic.make 0 in
  let n_dom = max 1 (min domains n_work) in
  let busy_s = Array.make n_dom 0.0 in
  let work i ctx =
    if i < nb then begin
      let b = branch_arr.(i) in
      if not (budget_exhausted ctx) then begin
        let rem' = C.delete_edges root_view b.br_matching.Matching.covered in
        let lb =
          Cost.lower_bound_view env.opts.cost env.acg ~min_link_ratio:env.min_ratio
            rem'
        in
        let bound = b.br_cost +. lb in
        if bound < ctx.local_best && bound <= Atomic.get env.shared_best then
          explore ctx rem' [ b.br_matching ] b.br_cost b.br_entry.L.id
        else ctx.pruned <- ctx.pruned + 1
      end
    end
    else if not (budget_exhausted ctx) then
      (* the decomposition that stops at the root; evaluated last in
         the canonical order, so it only wins on a strict improvement *)
      eval_leaf ctx root_view [] 0.0
  in
  let worker slot () =
    let t_start = Timer.now_mono_s () in
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n_work then continue := false
      else begin
        let ctx = mk_ctx env rngs.(i) in
        ctxs.(i) <- Some ctx;
        (if Obs.enabled env.obs then
           let label =
             if i < nb then
               Printf.sprintf "branch %d: %s" i
                 branch_arr.(i).br_entry.L.prim.P.name
             else Printf.sprintf "branch %d: root leaf" i
           in
           Obs.span env.obs ~cat:"search" label (fun () -> work i ctx)
         else work i ctx);
        results.(i) <- (ctx.local_best, ctx.local_decomp)
      end
    done;
    busy_s.(slot) <- Timer.now_mono_s () -. t_start
  in
  let doms = Array.init (n_dom - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join doms;
  (* per-domain utilization for the observer: busy seconds per worker *)
  if Obs.enabled env.obs then begin
    Obs.Gauge.set (Obs.gauge env.obs "search.domains") (float_of_int n_dom);
    Array.iteri
      (fun k b ->
        Obs.Gauge.set (Obs.gauge env.obs (Printf.sprintf "search.domain.%d.busy_s" k)) b)
      busy_s
  end;
  (* deterministic reduction: min cost, ties to the smallest branch index *)
  let best = ref None and best_c = ref infinity in
  Array.iter
    (fun (c, d) ->
      match d with
      | Some d when c < !best_c ->
          best := Some d;
          best_c := c
      | Some _ | None -> ())
    results;
  let merged = root_ctx :: List.filter_map Fun.id (Array.to_list ctxs) in
  (!best, !best_c, merged)

(* ------------------------------------------------------------------ *)

let decompose ?(options = default_options) ?budget ?domains ?(observe = Obs.disabled)
    ?rng ~library acg =
  let opts = options in
  let budget =
    match budget with
    | Some b -> { b with Budget.domains = max 1 b.Budget.domains }
    | None ->
        (* legacy surface: the deprecated [options] fields and [?domains] *)
        {
          Budget.timeout_s = opts.timeout_s;
          max_nodes = opts.max_nodes;
          domains = max 1 (Option.value ~default:1 domains);
        }
  in
  let base_rng =
    match rng with Some r -> r | None -> Noc_util.Prng.create ~seed:0x5eed
  in
  let t0 = Timer.now_mono_s () in
  let wall_deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) budget.Budget.timeout_s
  in
  let mono_deadline = Timer.Deadline.after_opt budget.Budget.timeout_s in
  let min_ratio = Cost.min_link_ratio_of_library library in
  let branchable =
    match opts.neutrals with
    | Branch -> library
    | Greedy -> List.filter is_saver library
  in
  let compiled, frozen =
    Obs.span observe ~cat:"setup" "compile-library" (fun () ->
        let compiled =
          Noc_graph.Multi_pattern.compile
            (List.map (fun e -> (e.L.id, e.L.prim.P.repr)) library)
        in
        let frozen = Hashtbl.create 16 in
        List.iter
          (fun e ->
            if not (Hashtbl.mem frozen e.L.id) then
              Hashtbl.replace frozen e.L.id (C.freeze e.L.prim.P.repr))
          library;
        (compiled, frozen))
  in
  let instr =
    if Obs.enabled observe then Some (Noc_graph.Vf2.Instr.create ()) else None
  in
  let env =
    {
      opts;
      budget;
      acg;
      library;
      branchable;
      compiled;
      frozen;
      min_ratio;
      wall_deadline;
      mono_deadline;
      nodes = Atomic.make 0;
      shared_best = Atomic.make infinity;
      obs = observe;
      instr;
      prim_slots = 1 + List.fold_left (fun m e -> max m e.L.id) 0 library;
    }
  in
  let root_view = C.view (C.freeze (Acg.graph acg)) in
  let best, best_cost, workers =
    Obs.span observe ~cat:"search" "branch-and-bound"
      ~args:[ ("domains", Obs.Json.Int budget.Budget.domains) ]
      (fun () ->
        if budget.Budget.domains <= 1 then begin
          let ctx = mk_ctx env base_rng in
          explore ctx root_view [] 0.0 0;
          (ctx.local_decomp, ctx.local_best, [ ctx ])
        end
        else run_parallel env root_view base_rng ~domains:budget.Budget.domains)
  in
  let elapsed = Timer.now_mono_s () -. t0 in
  let decomp, met =
    match best with
    | Some d -> (d, true)
    | None ->
        (* no complete decomposition was accepted (constraints rejected
           them all, or the budget ran out before the first leaf): fall
           back to the all-remainder decomposition so the caller still gets
           a valid covering, and report whether it satisfies the
           constraints *)
        let d = { Decomposition.matchings = []; remainder = Acg.graph acg } in
        let met =
          match opts.constraints with
          | None -> true
          | Some c ->
              Constraints.satisfied ~rng:base_rng c acg
                (Synthesis.of_decomposition acg d)
        in
        (d, met)
  in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 workers in
  let seen = Hashtbl.create 8 in
  let per_primitive =
    List.filter_map
      (fun e ->
        if Hashtbl.mem seen e.L.id then None
        else begin
          Hashtbl.replace seen e.L.id ();
          Some
            ( e.L.prim.P.name,
              {
                attempts = sum (fun w -> w.attempts.(e.L.id));
                hits = sum (fun w -> w.hits.(e.L.id));
              } )
        end)
      library
  in
  let stats =
    {
      nodes = Atomic.get env.nodes;
      matches_tried = sum (fun w -> w.matches_tried);
      leaves = sum (fun w -> w.leaves);
      pruned = sum (fun w -> w.pruned);
      incumbents = sum (fun w -> w.incumbents);
      elapsed_s = elapsed;
      timed_out = List.exists (fun w -> w.timed_out) workers;
      best_cost =
        (if Option.is_none best then Cost.remainder_cost opts.cost acg (Acg.graph acg)
         else best_cost);
      constraints_met = met;
      per_primitive;
      vf2 =
        (match instr with
        | Some i ->
            {
              probes = Noc_graph.Vf2.Instr.probes i;
              backtracks = Noc_graph.Vf2.Instr.backtracks i;
            }
        | None -> { probes = 0; backtracks = 0 });
    }
  in
  (* mirror the final search counters into the observer so traces and
     metric dumps carry them without a second aggregation pass *)
  if Obs.enabled observe then begin
    let put name v = Obs.Counter.add (Obs.counter observe name) v in
    put "search.nodes" stats.nodes;
    put "search.matches_tried" stats.matches_tried;
    put "search.leaves" stats.leaves;
    put "search.pruned" stats.pruned;
    put "search.incumbents" stats.incumbents;
    put "vf2.probes" stats.vf2.probes;
    put "vf2.backtracks" stats.vf2.backtracks;
    List.iter
      (fun (name, (p : prim_stats)) ->
        put (Printf.sprintf "match.%s.attempts" name) p.attempts;
        put (Printf.sprintf "match.%s.hits" name) p.hits)
      stats.per_primitive;
    Obs.Gauge.set (Obs.gauge observe "search.best_cost") stats.best_cost
  end;
  (decomp, stats)
