(** Work-stealing building blocks shared by the parallel drivers.

    The branch-and-bound search (PR 6) and the design-space exploration
    driver both shard independent subproblems across OCaml domains with the
    same discipline: every worker owns a deque, pushes and pops work at the
    bottom (depth-first, cache-local) and steals from other workers' tops
    when idle (breadth-first, stealing the biggest units).  This module
    holds the deque itself plus a ready-made parallel map for the common
    "N independent tasks, results by index" case. *)

(** A mutex-protected double-ended work queue.  [push_bottom]/[pop_bottom]
    are the owner's LIFO end; [steal_top] is the thieves' FIFO end.  The
    mutex is uncontended in the common case (one owner, occasional
    thieves), which keeps the implementation obviously correct without a
    lock-free protocol. *)
module Deque : sig
  type 'a t

  val create : unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom : 'a t -> 'a option
  val steal_top : 'a t -> 'a option
end

type stats = {
  workers : int;  (** domains that actually ran (1 = sequential path) *)
  steals : int;  (** tasks taken from another worker's deque *)
}

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array * stats
(** [map ~domains f xs] applies [f] to every element of [xs] on a
    work-stealing pool of [domains] workers (default 1 = plain sequential
    [Array.map]) and returns the results {e in input order}: slot [i] of
    the result is [f xs.(i)] no matter which worker computed it or in what
    order, so the output is deterministic for deterministic [f] regardless
    of the domain count or steal interleaving.  Tasks are dealt round-robin
    across the workers' deques before any worker starts; no new tasks are
    spawned mid-run, so a worker exits once its own deque and every
    steal probe come up empty.  An exception raised by [f] is re-raised
    after the pool is joined.  [domains] is used as given — callers clamp
    against {!Branch_bound.domain_cap} as appropriate. *)
