module D = Noc_graph.Digraph
module Edge_map = D.Edge_map

type t = {
  graph : D.t;
  volume : int Edge_map.t;
  bandwidth : float Edge_map.t;
}

let check_keys graph m what =
  Edge_map.iter
    (fun (u, v) _ ->
      if not (D.mem_edge graph u v) then
        invalid_arg
          (Printf.sprintf "Acg.make: %s attribute on non-edge %d->%d" what u v))
    m

let make ~graph ?(volume = Edge_map.empty) ?(bandwidth = Edge_map.empty) () =
  check_keys graph volume "volume";
  check_keys graph bandwidth "bandwidth";
  { graph; volume; bandwidth }

let of_weighted_edges quads =
  let graph = D.of_edges (List.map (fun (u, v, _, _) -> (u, v)) quads) in
  let volume =
    List.fold_left (fun m (u, v, vol, _) -> Edge_map.add (u, v) vol m) Edge_map.empty quads
  in
  let bandwidth =
    List.fold_left (fun m (u, v, _, bw) -> Edge_map.add (u, v) bw m) Edge_map.empty quads
  in
  make ~graph ~volume ~bandwidth ()

let of_tgff (tg : Noc_tgff.Tgff.t) =
  make ~graph:tg.Noc_tgff.Tgff.graph ~volume:tg.Noc_tgff.Tgff.volume
    ~bandwidth:tg.Noc_tgff.Tgff.bandwidth ()

let uniform ~volume ~bandwidth g =
  let vol, bw =
    D.fold_edges
      (fun u v (vm, bm) ->
        (Edge_map.add (u, v) volume vm, Edge_map.add (u, v) bandwidth bm))
      g
      (Edge_map.empty, Edge_map.empty)
  in
  make ~graph:g ~volume:vol ~bandwidth:bw ()

let graph t = t.graph

let volume t u v =
  if not (D.mem_edge t.graph u v) then 0
  else match Edge_map.find_opt (u, v) t.volume with Some x -> x | None -> 1

let bandwidth t u v =
  if not (D.mem_edge t.graph u v) then 0.
  else match Edge_map.find_opt (u, v) t.bandwidth with Some x -> x | None -> 0.

let num_cores t = D.num_vertices t.graph
let num_flows t = D.num_edges t.graph

let total_volume t = D.fold_edges (fun u v acc -> acc + volume t u v) t.graph 0

let restrict t g =
  D.iter_edges
    (fun u v ->
      if not (D.mem_edge t.graph u v) then
        invalid_arg (Printf.sprintf "Acg.restrict: %d->%d not in the ACG" u v))
    g;
  {
    graph = g;
    volume = Edge_map.filter (fun (u, v) _ -> D.mem_edge g u v) t.volume;
    bandwidth = Edge_map.filter (fun (u, v) _ -> D.mem_edge g u v) t.bandwidth;
  }

let map_vertices f t =
  let remap m =
    Edge_map.fold (fun (u, v) x acc -> Edge_map.add (f u, f v) x acc) m Edge_map.empty
  in
  { graph = D.map_vertices f t.graph; volume = remap t.volume; bandwidth = remap t.bandwidth }

(* ------------------------------------------------------------------ *)
(* Canonicalization: an isomorphism-invariant fingerprint (and relabeling)
   built on the CSR canonical-labeling kernel.  Edge labels fed to the
   kernel are the ranks of the distinct (volume, bandwidth) pairs — an
   invariant of the attributed graph — so the canonical order respects
   attributes, and the serialization below spells the attribute values
   out in canonical edge order. *)

module Compact = Noc_graph.Compact
module Canon = Noc_graph.Canon

let bw_bits f = Int64.bits_of_float f

let canonical_rank t =
  let frozen = Compact.freeze t.graph in
  let attrs =
    D.fold_edges (fun u v acc -> (volume t u v, bw_bits (bandwidth t u v)) :: acc) t.graph []
    |> List.sort_uniq compare
  in
  let index = Hashtbl.create (List.length attrs) in
  List.iteri (fun i a -> Hashtbl.replace index a i) attrs;
  let edge_label ud vd =
    let u = Compact.vertex frozen ud and v = Compact.vertex frozen vd in
    Hashtbl.find index (volume t u v, bw_bits (bandwidth t u v))
  in
  match Canon.canonical_order ~edge_label frozen with
  | `Canonical rank -> (frozen, Some rank)
  | `Truncated -> (frozen, None)

(* rank_of maps an original core id to its 0-based serialization position *)
let serialize t rank_of =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n=%d;e=%d;" (num_cores t) (num_flows t));
  D.fold_edges
    (fun u v acc -> (rank_of u, rank_of v, volume t u v, bw_bits (bandwidth t u v)) :: acc)
    t.graph []
  |> List.sort compare
  |> List.iter (fun (ru, rv, vol, bw) ->
         Buffer.add_string buf (Printf.sprintf "%d>%d:%d:%Lx;" ru rv vol bw));
  Buffer.contents buf

let canonical_hash t =
  let frozen, rank = canonical_rank t in
  match rank with
  | Some rank ->
      "canon:" ^ Digest.to_hex (Digest.string (serialize t (fun v -> rank.(Compact.index frozen v))))
  | None ->
      (* identity-only fallback: dense index = ascending original id, so
         textually identical ACGs still collide (and only those) *)
      "exact:" ^ Digest.to_hex (Digest.string (serialize t (fun v -> Compact.index frozen v)))

let canonical_form t =
  let frozen, rank = canonical_rank t in
  match rank with
  | None -> None
  | Some rank ->
      let f v = rank.(Compact.index frozen v) + 1 in
      let mapping =
        D.fold_vertices (fun v m -> D.Vmap.add v (f v) m) t.graph D.Vmap.empty
      in
      Some (map_vertices f t, mapping)

let pp ppf t =
  Format.fprintf ppf "@[<v>ACG: %d cores, %d flows, total volume %d bits@ " (num_cores t)
    (num_flows t) (total_volume t);
  D.iter_edges
    (fun u v ->
      Format.fprintf ppf "%d -> %d  (v=%d, b=%.3f)@ " u v (volume t u v) (bandwidth t u v))
    t.graph;
  Format.fprintf ppf "@]"
