(** Architecture synthesis: gluing the implementation graphs of a
    decomposition's matchings into the customized topology (Section 3,
    "after the decomposition step is completed, the communication primitives
    are replaced by their optimal implementations, and finally glued
    together"), plus the standard-mesh baseline used in Section 5.2.

    An architecture pairs a physical topology (a symmetric digraph over the
    ACG's cores: links are bidirectional) with one route per ACG flow. *)

type t = private {
  topology : Noc_graph.Digraph.t;
  routes : int list Noc_graph.Digraph.Edge_map.t;
      (** ACG edge (src, dst) -> vertex path [src; ...; dst] *)
  uniform_router_ports : int option;
      (** [Some p] when the architecture is built from identical [p]-port
          routers regardless of how many links each tile actually uses (the
          way regular-mesh prototypes are instantiated); [None] when every
          router has exactly the ports its links need (customized
          architectures) *)
}

val make :
  topology:Noc_graph.Digraph.t ->
  routes:int list Noc_graph.Digraph.Edge_map.t ->
  ?uniform_router_ports:int ->
  unit ->
  t
(** An architecture from explicit parts (for hand-built experiments and
    simulator tests).  Topology is symmetrized; every route must connect
    its flow's endpoints over topology links.
    @raise Invalid_argument on an invalid route. *)

val of_decomposition : Acg.t -> Decomposition.t -> t
(** Topology = union of each matching's implementation graph (transferred
    into ACG vertex names) plus one dedicated bidirectional link per
    remainder edge; routes come from the primitives' schedule-derived
    tables (remainder edges route directly).
    @raise Invalid_argument if some covered edge has no route — cannot
    happen for library primitives. *)

val mesh : rows:int -> cols:int -> Acg.t -> t
(** Standard mesh baseline with dimension-ordered XY routing.  Cores must
    be numbered row-major [1 .. rows*cols]; core [v] sits at row
    [(v-1)/cols], column [(v-1) mod cols].
    @raise Invalid_argument if the ACG mentions a vertex outside the
    grid. *)

val custom : Acg.t -> Decomposition.t -> t
(** Alias of {!of_decomposition}. *)

val link_count : t -> int
(** Physical (bidirectional) links. *)

val route : t -> src:int -> dst:int -> int list option

val next_hop : t -> node:int -> src:int -> dst:int -> int option
(** Routing-table view: where node [node] forwards a packet of flow
    [src -> dst].  [None] if the flow does not pass through [node] or
    terminates there. *)

val avg_hops : Acg.t -> t -> float
(** Volume-weighted average hop count over all flows. *)

val max_hops : t -> int
(** Longest route, in hops; 0 when there are no routes. *)

val link_load : Acg.t -> t -> float Noc_graph.Digraph.Edge_map.t
(** Aggregate bandwidth demand per directed physical link (Section 4.2's
    constraint: each link must carry the sum of the bandwidths of the flows
    routed over it). *)

val total_energy :
  tech:Noc_energy.Technology.t -> fp:Noc_energy.Floorplan.t -> Acg.t -> t -> float
(** Total communication energy (pJ): Eq. 1 applied to every flow's route,
    weighted by volume.  Works uniformly for customized and mesh
    architectures, enabling the Section 5.2 comparison. *)

val bisection_links : rng:Noc_util.Prng.t -> t -> int
(** Heuristic minimum number of physical links crossing a balanced
    bipartition of the topology. *)

val router_ports : t -> int -> int
(** Ports of one router: the uniform radix if fixed, otherwise topology
    degree + 1 local port. *)

val routes_valid : t -> bool
(** Every route follows existing physical links and connects its flow's
    endpoints. *)

val harden :
  tech:Noc_energy.Technology.t -> fp:Noc_energy.Floorplan.t -> t -> t * (int * int) list
(** Spare-link hardening against single-link failures: greedily adds the
    cheapest absent links (one-hop Eq. 1 bit energy over the floorplan,
    ties broken lexicographically — deterministic) until no single link
    removal can disconnect the endpoints of any routed flow, i.e. the
    architecture always offers a degraded path for rerouting.  Returns the
    hardened architecture (routes unchanged; [uniform_router_ports] drops
    to [None] when spares change router radices) and the spare links added
    (normalized [(min, max)], in insertion order) — empty when the
    architecture was already robust.  The floorplan must place every
    topology vertex. *)

val pp : Format.formatter -> t -> unit
