module D = Noc_graph.Digraph
module Net = Noc_sim.Network

let pi = 4.0 *. atan 1.0

(* W_n^m = exp(-2*pi*i*m/n); shared by the sequential and distributed
   implementations so both perform bit-identical arithmetic *)
let twiddle n m =
  let angle = -2.0 *. pi *. float_of_int m /. float_of_int n in
  { Complex.re = cos angle; im = sin angle }

let dft x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref Complex.zero in
      for j = 0 to n - 1 do
        acc := Complex.add !acc (Complex.mul x.(j) (twiddle n (j * k)))
      done;
      !acc)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse width i =
  let r = ref 0 in
  for b = 0 to width - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (width - 1 - b))
  done;
  !r

let log2 n =
  let rec go acc k = if k >= n then acc else go (acc + 1) (k * 2) in
  go 0 1

let fft x =
  let n = Array.length x in
  if not (is_pow2 n) then invalid_arg "Fft.fft: length must be a power of two";
  let a = Array.copy x in
  let d = ref (n / 2) in
  while !d >= 1 do
    let dd = !d in
    let k = ref 0 in
    while !k < n do
      for j = 0 to dd - 1 do
        let i = !k + j in
        let u = a.(i) and v = a.(i + dd) in
        a.(i) <- Complex.add u v;
        a.(i + dd) <- Complex.mul (Complex.sub u v) (twiddle n (j * (n / (2 * dd))))
      done;
      k := !k + (2 * dd)
    done;
    d := dd / 2
  done;
  let w = log2 n in
  Array.init n (fun m -> a.(bit_reverse w m))

let n_nodes = 16

let acg () =
  let g = ref D.empty in
  let volume = ref D.Edge_map.empty in
  let bandwidth = ref D.Edge_map.empty in
  for v = 1 to n_nodes do
    g := D.add_vertex !g v
  done;
  List.iter
    (fun d ->
      for i = 0 to n_nodes - 1 do
        let p = i lxor d in
        let src = i + 1 and dst = p + 1 in
        g := D.add_edge !g src dst;
        (* one complex sample = two 64-bit floats per stage *)
        volume := D.Edge_map.add (src, dst) 128 !volume;
        bandwidth := D.Edge_map.add (src, dst) 0.2 !bandwidth
      done)
    [ 8; 4; 2; 1 ];
  Noc_core.Acg.make ~graph:!g ~volume:!volume ~bandwidth:!bandwidth ()

type result = {
  output : Complex.t array;
  cycles : int;
  summary : Noc_sim.Stats.summary;
  net : Net.t;
}

let complex_to_bytes c =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float c.Complex.re);
  Bytes.set_int64_le b 8 (Int64.bits_of_float c.Complex.im);
  b

let complex_of_bytes b =
  {
    Complex.re = Int64.float_of_bits (Bytes.get_int64_le b 0);
    im = Int64.float_of_bits (Bytes.get_int64_le b 8);
  }

let distributed ?config ?(butterfly_cycles = 2) ~arch x =
  if Array.length x <> n_nodes then invalid_arg "Fft.distributed: need 16 samples";
  let net = Net.create ?config arch in
  (* value held by node i (0-indexed internally) *)
  let value = Array.copy x in
  let wait_all () =
    match Net.run_until_idle ~max_cycles:1_000_000 net with
    | `Idle -> ()
    | `Limit _ -> invalid_arg "Fft.distributed: network failed to drain"
  in
  List.iter
    (fun d ->
      (* every node sends its current value to its stage partner *)
      for i = 0 to n_nodes - 1 do
        let p = i lxor d in
        ignore
          (Net.inject ~tag:i ~size_flits:2
             ~payload:(complex_to_bytes value.(i))
             net ~src:(i + 1) ~dst:(p + 1))
      done;
      wait_all ();
      let received = Array.make n_nodes Complex.zero in
      List.iter
        (fun { Net.packet; delivered_at = _ } ->
          received.(packet.Noc_sim.Packet.dst - 1) <-
            complex_of_bytes packet.Noc_sim.Packet.payload)
        (Net.drain_deliveries net);
      (* butterfly: the low node computes the sum, the high node the
         twiddled difference, exactly as the sequential loop does *)
      for i = 0 to n_nodes - 1 do
        if i land d = 0 then begin
          let u = value.(i) and v = received.(i) in
          value.(i) <- Complex.add u v
        end
        else begin
          let u = received.(i) and v = value.(i) in
          let j = (i - d) mod d in
          let j = if d = 1 then 0 else j in
          value.(i) <-
            Complex.mul (Complex.sub u v) (twiddle n_nodes (j * (n_nodes / (2 * d))))
        end
      done;
      for _ = 1 to butterfly_cycles do
        Net.step net
      done)
    [ 8; 4; 2; 1 ];
  let w = log2 n_nodes in
  let output = Array.init n_nodes (fun m -> value.(bit_reverse w m)) in
  {
    output;
    cycles = Net.now net;
    summary = Noc_sim.Stats.summarize (Net.deliveries net);
    net;
  }
