(** TGFF-style task graph generation.

    The paper's Fig. 4a measures decomposition run time on benchmarks
    produced by TGFF (Dick, Rhodes & Wolf, CODES'98) — pseudo-random layered
    task DAGs with bounded fan-in/fan-out, the kind that underlies the E3S
    embedded-benchmark suites (the "automotive industry benchmark consisting
    of 18 nodes" in the paper is one of those).  This module reimplements the
    fan-out/fan-in expansion process of TGFF so run-time experiments can be
    regenerated without the original binary.

    Task graphs come with per-edge communication volumes and bandwidth
    requirements drawn from configurable ranges, ready to be turned into an
    Application Characterization Graph. *)

type params = {
  tasks : int;  (** target number of tasks (vertices) *)
  max_out : int;  (** maximum fan-out during expansion *)
  max_in : int;  (** maximum fan-in at join nodes *)
  p_join : float;  (** probability of a join step vs an expansion step *)
  extra_edge_p : float;
      (** probability, per forward vertex pair, of an extra dependence edge
          added after the skeleton is built *)
  volume_range : int * int;  (** communication volume (bits) per edge *)
  bandwidth_range : float * float;  (** bandwidth requirement per edge *)
}

val default_params : params
(** 12 tasks, fan-out 3, fan-in 2, sparse extra edges, volumes 64–512 bits. *)

type t = {
  graph : Noc_graph.Digraph.t;
  volume : int Noc_graph.Digraph.Edge_map.t;
  bandwidth : float Noc_graph.Digraph.Edge_map.t;
}
(** A generated task graph: a connected DAG rooted at vertex 1, with edge
    attributes. *)

val generate : rng:Noc_util.Prng.t -> params -> t
(** Generates one task graph.  The result is acyclic, weakly connected, has
    exactly [max 1 params.tasks] vertices numbered from 1, and respects the
    fan-in/fan-out bounds on the skeleton (extra edges may exceed them, as in
    TGFF's own post-processing). *)

(** Parameter presets patterned after the E3S/TGFF benchmark families used
    in the paper's Fig. 4a. *)

val sized : int -> params
(** [sized n] is {!default_params} with [tasks = n] — the corpus scaling
    knob used by the benchmark harness (Fig. 4a sizes). *)

val automotive : params
(** 18 tasks — the paper's largest TGFF benchmark. *)

val consumer : params
val networking : params
val office : params
val telecom : params

val presets : (string * params) list
(** All presets with their names, in the order above. *)
