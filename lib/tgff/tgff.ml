module D = Noc_graph.Digraph
module Prng = Noc_util.Prng

type params = {
  tasks : int;
  max_out : int;
  max_in : int;
  p_join : float;
  extra_edge_p : float;
  volume_range : int * int;
  bandwidth_range : float * float;
}

let default_params =
  {
    tasks = 12;
    max_out = 3;
    max_in = 2;
    p_join = 0.3;
    extra_edge_p = 0.05;
    volume_range = (64, 512);
    bandwidth_range = (0.1, 1.0);
  }

type t = {
  graph : D.t;
  volume : int D.Edge_map.t;
  bandwidth : float D.Edge_map.t;
}

(* TGFF-style skeleton: grow a DAG from a single root.  At each step either
   expand a frontier node with children (fan-out) or join several frontier
   nodes into a new node (fan-in). *)
let skeleton ~rng p =
  let n_target = max 1 p.tasks in
  let g = ref (D.add_vertex D.empty 1) in
  let next_id = ref 2 in
  let frontier = ref [ 1 ] in
  while !next_id <= n_target do
    let remaining = n_target - !next_id + 1 in
    let do_join =
      List.length !frontier >= 2 && Prng.bernoulli rng p.p_join && remaining >= 1
    in
    if do_join then begin
      (* join: a new node consumes up to max_in frontier nodes *)
      let k = min (Prng.int_in rng 2 (max 2 p.max_in)) (List.length !frontier) in
      let parents = Prng.sample rng k !frontier in
      let v = !next_id in
      incr next_id;
      List.iter (fun u -> g := D.add_edge !g u v) parents;
      frontier := v :: List.filter (fun u -> not (List.mem u parents)) !frontier
    end
    else begin
      (* expansion: one frontier node fans out *)
      let u = Prng.choose rng !frontier in
      let k = min (Prng.int_in rng 1 (max 1 p.max_out)) remaining in
      let children = List.init k (fun _ ->
          let v = !next_id in
          incr next_id;
          g := D.add_edge !g u v;
          v)
      in
      frontier := children @ List.filter (fun w -> w <> u) !frontier
    end
  done;
  !g

let generate ~rng p =
  let g = skeleton ~rng p in
  let n = D.num_vertices g in
  (* TGFF post-processing: sprinkle extra forward dependence edges *)
  let g = ref g in
  for u = 1 to n do
    for v = u + 1 to n do
      if (not (D.mem_edge !g u v)) && Prng.bernoulli rng p.extra_edge_p then
        g := D.add_edge !g u v
    done
  done;
  let lo_v, hi_v = p.volume_range in
  let lo_b, hi_b = p.bandwidth_range in
  let volume, bandwidth =
    D.fold_edges
      (fun u v (vol, bw) ->
        ( D.Edge_map.add (u, v) (Prng.int_in rng lo_v hi_v) vol,
          D.Edge_map.add (u, v) (lo_b +. Prng.float rng (hi_b -. lo_b)) bw ))
      !g
      (D.Edge_map.empty, D.Edge_map.empty)
  in
  { graph = !g; volume; bandwidth }

let sized tasks = { default_params with tasks }

let automotive =
  { default_params with tasks = 18; max_out = 3; max_in = 3; p_join = 0.35 }

let consumer = { default_params with tasks = 12; max_out = 4; max_in = 2 }

let networking = { default_params with tasks = 13; max_out = 2; max_in = 2; p_join = 0.4 }

let office = { default_params with tasks = 5; max_out = 2; max_in = 2 }

let telecom = { default_params with tasks = 16; max_out = 3; max_in = 2; p_join = 0.3 }

let presets =
  [
    ("automotive", automotive);
    ("consumer", consumer);
    ("networking", networking);
    ("office", office);
    ("telecom", telecom);
  ]
