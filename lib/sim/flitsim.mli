(** Cycle-accurate flit-level simulation over {!Router} pipelines.

    This is the high-fidelity end of the engine spectrum ({!Engine}): where
    {!Network} moves whole packets hop-by-hop and {!Wormhole} advances
    worms in lockstep, this engine clocks every flit through per-input
    virtual output queues, a round-robin switch allocator, credit-based
    link backpressure, and byte-serial link serialization — the effects
    (head-of-line blocking, buffer depth, serialization stalls) that
    decide where the saturation knee of a synthesized architecture really
    sits.

    {2 Microarchitecture}

    Each topology vertex gets a {!Router.t}.  A cycle runs in fixed
    phases, in this order:

    + {b credit returns} scheduled for this cycle land (one wire cycle
      after the downstream queue freed the slot);
    + {b link arrivals}: a flit whose serialization finished enters the
      downstream VOQ chosen by its route, becoming switch-eligible
      [router_delay] cycles later (the router pipeline);
    + {b ejection}: every router's sink port consumes one ready flit,
      round-robin over the VOQs targeting it; a packet is delivered when
      its tail flit ejects;
    + {b switch allocation}: every free link output grants one ready flit
      round-robin among its VOQs, gated on a credit for the downstream
      queue; the link stays busy for [phits_per_flit] cycles
      ([ceil (flit_bits / phit_bits)] — byte-serial links serialize each
      flit into phits);
    + {b injection}: each source NI moves at most one flit per cycle into
      its local VOQ, space permitting (NI queues are unbounded — packets
      wait at the source, not in the fabric).

    Flits of one packet follow identical VOQs and FIFO links, so they
    arrive in order and never interleave within a queue entry-wise; worms
    from different packets {e do} interleave on shared links, which is
    exactly the contention the coarse engines cannot see.

    {2 Documented latency bound}

    Uncontended, a packet of [n] flits over [h >= 1] hops with
    [p = phits_per_flit] and [rd = router_delay] delivers at

    [latency = 1 + rd + h*(rd + p) + (n - 1)*p]

    cycles after injection (zero-hop flows, served entirely by the local
    ejection port, take [1 + rd + (n - 1)]).  The bound is exact provided
    [fifo_depth >= 1 + ceil ((rd + 1) / p)] — enough buffer to cover the
    credit round trip, the standard sizing rule for credit-based flow
    control; shallower FIFOs insert credit-stall bubbles and only
    lengthen latency (the default config satisfies the rule).  With
    [rd = 1] and [p = 1] the bound reads [2h + n + 1] — above the
    wormhole model's idealized [h + n] and below store-and-forward; the
    differential suite in [test/suite_flit.ml] holds the engine to it.

    {2 Conservation}

    Every cycle, [injected_flits = delivered_flits + in_flight_flits]
    (NI + VOQ + wire occupancy); {!conservation_ok} exposes the check and
    the qcheck harness asserts it after every step.

    Routes are fixed and stalled flits hold buffer slots, so cyclic
    channel dependencies can genuinely deadlock the fabric (no virtual
    channels at this fidelity level); {!run_until_idle} detects the
    fixpoint and reports [`Deadlock]. *)

type config = {
  fifo_depth : int;  (** VOQ capacity in flits, >= 1 *)
  flit_bits : int;
  phit_bits : int;
      (** physical link width; a flit crosses a link in
          [ceil (flit_bits / phit_bits)] cycles *)
  router_delay : int;  (** buffer-write to switch-eligible pipeline depth, >= 1 *)
}

val default_config : config
(** [fifo_depth = 4], [flit_bits = 32], [phit_bits = 8] (byte-serial:
    4 phits per flit), [router_delay = 1]. *)

val phits_per_flit : config -> int

type delivery = { packet : Packet.t; delivered_at : int }

type t

val create : ?config:config -> Noc_core.Synthesis.t -> t
(** @raise Invalid_argument on a non-positive config field. *)

val now : t -> int
val config : t -> config

val inject :
  ?tag:int -> ?payload:Bytes.t -> ?size_flits:int -> t -> src:int -> dst:int -> int
(** Queues a packet ([size_flits] defaults to 1) at its source NI at the
    current cycle; returns the packet id.
    @raise Invalid_argument if the architecture has no route. *)

val step : t -> unit

val pending : t -> int
(** Injected but not yet fully ejected packets. *)

val run_until_idle : ?max_cycles:int -> t -> [ `Idle | `Deadlock | `Limit of int ]
(** Steps until the fabric drains.  [`Deadlock] is returned the moment a
    cycle moves no flit while no link transfer and no credit return is in
    flight — with fixed routes that state is a fixpoint, so waiting longer
    cannot help.  [`Limit pending] means the cycle budget ran out with
    [pending] packets still in progress. *)

val deliveries : t -> delivery list
(** In ejection order. *)

val injected_flits : t -> int
val delivered_flits : t -> int

val in_flight_flits : t -> int
(** Flits buffered in NIs and VOQs plus flits on wires. *)

val conservation_ok : t -> bool
(** [injected_flits = delivered_flits + in_flight_flits]; holds after
    every [step] unless the engine itself is broken. *)

val flit_hops : t -> int
(** Total flit-link traversals (energy-accounting compatible with
    {!Stats}-style counting). *)

val buffer_flit_cycles : t -> int
(** Sum over cycles of VOQ occupancy (buffering energy proxy). *)

val link_flits : t -> int Noc_graph.Digraph.Edge_map.t
val switch_flits : t -> int Noc_graph.Digraph.Vmap.t

val summary : t -> Stats.summary
(** {!Stats.summarize} over a compatible delivery view. *)

val metrics : t -> (string * float) list
(** Flat snapshot: cycles, injected/delivered/pending packets, flit
    totals, hops, buffer occupancy integral. *)
