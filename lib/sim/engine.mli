(** One façade over the three simulation fidelities.

    The repo grew three traffic engines with deliberately parallel APIs —
    {!Network} (coarse store-and-forward, fault-aware), {!Wormhole}
    (lockstep worms over virtual channels) and {!Flitsim} (cycle-accurate
    VOQ routers with credits and serialization).  This module packages
    them behind one dispatch type so benchkit, resilience campaigns,
    sweeps and the CLI select fidelity per run
    ([nocsynth simulate --engine coarse|wormhole|flit]) instead of hard
    -coding one model.

    Verdicts are unified: the coarse engine cannot deadlock (per-hop
    buffering with retries), so its [`Limit] maps to {!Limit}; the flit
    and wormhole engines report genuine circular waits as {!Deadlock}. *)

type kind = Coarse | Wormhole | Flit

val all_kinds : kind list
(** In increasing fidelity order: [Coarse; Wormhole; Flit]. *)

val kind_name : kind -> string
(** ["coarse"] / ["wormhole"] / ["flit"]. *)

val kind_of_name : string -> kind option

type t

val create :
  ?coarse_config:Network.config ->
  ?wormhole_config:Wormhole.config ->
  ?flit_config:Flitsim.config ->
  kind ->
  Noc_core.Synthesis.t ->
  t
(** Only the config matching [kind] is consulted; the others are accepted
    so callers can thread one record of knobs around. *)

val kind : t -> kind
val name : t -> string

val now : t -> int

val inject :
  ?tag:int -> ?payload:Bytes.t -> ?size_flits:int -> t -> src:int -> dst:int -> int
(** [size_flits] defaults to 1 on every engine.
    @raise Invalid_argument if the architecture has no route. *)

val step : t -> unit
val pending : t -> int

type verdict = Idle | Deadlock | Limit of int
(** [Limit n]: the cycle budget ran out with [n] packets outstanding. *)

val pp_verdict : Format.formatter -> verdict -> unit

val verdict_name : verdict -> string

val run_until_idle : ?max_cycles:int -> t -> verdict

val deliveries : t -> Network.delivery list
(** Unified view: every engine's deliveries as the coarse engine's record
    (packet + delivery cycle). *)

val summary : t -> Stats.summary

val flit_hops : t -> int

val metrics : t -> (string * float) list
(** The underlying engine's metric snapshot (keys are engine-specific). *)

val vc_truncated : t -> bool
(** [true] iff this is a wormhole engine whose VC allocation was capped
    below what the increasing-channel discipline required (see
    {!Wormhole.vc_truncated}) — a [Deadlock] verdict is then attributable
    to under-provisioned VCs rather than the architecture.  Always
    [false] for the other engines. *)

val coarse : t -> Network.t option
(** The underlying coarse engine, for callers that need its fault API or
    energy accounting; [None] for the other kinds. *)

val wormhole : t -> Wormhole.t option
val flitsim : t -> Flitsim.t option
