module Edge_map = Noc_graph.Digraph.Edge_map
module Vmap = Noc_graph.Digraph.Vmap

type summary = {
  packets : int;
  flits : int;
  avg_latency : float;
  min_latency : int;
  max_latency : int;
  avg_hops : float;
  makespan : int;
  throughput : float;
}

let empty_summary =
  {
    packets = 0;
    flits = 0;
    avg_latency = 0.;
    min_latency = 0;
    max_latency = 0;
    avg_hops = 0.;
    makespan = 0;
    throughput = 0.;
  }

let summarize deliveries =
  match deliveries with
  | [] -> empty_summary
  | ds ->
      let n = List.length ds in
      let flits, lat_sum, lat_min, lat_max, hop_sum, first_inject, last_deliver =
        List.fold_left
          (fun (fl, ls, lmin, lmax, hs, fi, ld) { Network.packet; delivered_at } ->
            let lat = delivered_at - packet.Packet.injected_at in
            ( fl + packet.Packet.size_flits,
              ls + lat,
              min lmin lat,
              max lmax lat,
              hs + Packet.hops packet,
              min fi packet.Packet.injected_at,
              max ld delivered_at ))
          (0, 0, max_int, min_int, 0, max_int, min_int)
          ds
      in
      let makespan = max 1 (last_deliver - first_inject) in
      {
        packets = n;
        flits;
        avg_latency = float_of_int lat_sum /. float_of_int n;
        min_latency = lat_min;
        max_latency = lat_max;
        avg_hops = float_of_int hop_sum /. float_of_int n;
        makespan;
        throughput = float_of_int flits /. float_of_int makespan;
      }

let dynamic_energy_pj ~tech ~fp net =
  let bits = float_of_int (Network.config net).Network.flit_bits in
  let switch =
    Vmap.fold
      (fun _ flits acc ->
        acc +. (float_of_int flits *. bits *. tech.Noc_energy.Technology.es_bit))
      (Network.switch_flits net) 0.0
  in
  let link =
    Edge_map.fold
      (fun (u, v) flits acc ->
        let len = Noc_energy.Floorplan.distance_mm fp u v in
        acc
        +. float_of_int flits *. bits
           *. Noc_energy.Technology.link_energy_per_bit tech ~length_mm:len)
      (Network.link_flits net) 0.0
  in
  switch +. link

let buffer_energy_pj ~tech net =
  float_of_int (Network.buffer_flit_cycles net)
  *. tech.Noc_energy.Technology.e_buffer_pj_per_flit_cycle

let total_ports_squared net =
  let arch = Network.arch net in
  let topo = arch.Noc_core.Synthesis.topology in
  Noc_graph.Digraph.fold_vertices
    (fun v acc ->
      let p = Noc_core.Synthesis.router_ports arch v in
      acc + (p * p))
    topo 0

let clock_energy_pj ~tech net =
  float_of_int (Network.now net)
  *. float_of_int (total_ports_squared net)
  *. tech.Noc_energy.Technology.router_clock_pj_per_port2_cycle

let total_energy_pj ~tech ~fp net =
  dynamic_energy_pj ~tech ~fp net +. buffer_energy_pj ~tech net
  +. clock_energy_pj ~tech net

let avg_power_mw ~tech ~fp ?(static_mw = 0.0) net =
  let cycles = Network.now net in
  if cycles <= 0 then 0.0
  else begin
    let e_pj = total_energy_pj ~tech ~fp net in
    let f_hz = tech.Noc_energy.Technology.frequency_mhz *. 1e6 in
    let time_s = float_of_int cycles /. f_hz in
    (* pJ -> mW: 1e-12 J / s * 1e3 *)
    (e_pj *. 1e-9 /. time_s) +. static_mw
  end

let energy_metrics ~tech ~fp net =
  [
    ("dynamic_energy_pj", dynamic_energy_pj ~tech ~fp net);
    ("buffer_energy_pj", buffer_energy_pj ~tech net);
    ("clock_energy_pj", clock_energy_pj ~tech net);
    ("total_energy_pj", total_energy_pj ~tech ~fp net);
    ("avg_power_mw", avg_power_mw ~tech ~fp net);
  ]

let summary_metrics s =
  [
    ("packets", float_of_int s.packets);
    ("flits", float_of_int s.flits);
    ("avg_latency", s.avg_latency);
    ("min_latency", float_of_int s.min_latency);
    ("max_latency", float_of_int s.max_latency);
    ("avg_hops", s.avg_hops);
    ("makespan", float_of_int s.makespan);
    ("throughput", s.throughput);
  ]

let pp_summary ppf s =
  Format.fprintf ppf
    "packets=%d flits=%d avg_lat=%.2f lat=[%d,%d] avg_hops=%.2f makespan=%d thpt=%.3f \
     flits/cycle"
    s.packets s.flits s.avg_latency s.min_latency s.max_latency s.avg_hops s.makespan
    s.throughput
