type t = { capacity : int; mutable available : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Credit.create: capacity must be >= 1";
  { capacity; available = capacity }

let capacity t = t.capacity
let available t = t.available

let take t =
  if t.available > 0 then begin
    t.available <- t.available - 1;
    true
  end
  else false

let put t =
  if t.available >= t.capacity then invalid_arg "Credit.put: counter already full";
  t.available <- t.available + 1

let balanced t ~outstanding = t.available + outstanding = t.capacity
