(** Cycle-accurate network simulation.

    This is the substitute for the paper's Virtex-2 FPGA prototype
    (Section 5.2): the same architectures (customized and mesh) are
    exercised with the same traffic and measured in cycles.

    Model: output-channel arbitration with store-and-forward packets.
    Every directed physical link is a channel that serializes one flit per
    cycle; a packet granted a channel at cycle T occupies it for
    [size_flits] cycles, and its tail lands in the next router at
    [T + link_delay + size_flits - 1], after which the router spends
    [router_delay] cycles before the packet contends for its next channel.
    Channels grant waiting packets in FIFO order (ties by packet id), and
    channels are scanned in a fixed lexicographic order, so simulations are
    fully deterministic.  Buffers are unbounded: protocol deadlock cannot
    occur in the simulator (deadlock risk of a routing function is analyzed
    statically by {!Noc_core.Deadlock}), which matches prototype NoCs with
    conservatively sized FIFOs.

    {b Fault injection.}  Links and switches can fail (and be repaired)
    mid-simulation, immediately or at a scheduled cycle.  The network
    degrades gracefully instead of hanging:

    - packets queued at a surviving router whose next hop died {e replan}
      with a shortest path over the surviving topology;
    - packets whose flits are on a failed wire, or buffered inside a failed
      switch, are lost and {e retried from the source NI} with bounded
      exponential backoff ({!fault_policy});
    - permanently undeliverable packets (no surviving path and no pending
      repair, dead endpoint, or retry budget exhausted) are recorded as
      {!drop}s, so {!run_until_idle} still terminates and every injected
      packet is classified as delivered or dropped. *)

type config = {
  router_delay : int;  (** cycles spent in each router, >= 1 *)
  link_delay : int;  (** wire latency of a link, >= 1 *)
  flit_bits : int;  (** physical link width *)
}

val default_config : config
(** [router_delay = 1], [link_delay = 1], [flit_bits = 8]. *)

type fault_policy = {
  max_retries : int;
      (** source-NI retransmissions per packet before it is dropped *)
  backoff_base : int;
      (** cycles of delay before the first retransmission, >= 1 *)
  backoff_cap : int;
      (** ceiling of the exponential backoff (doubles per retry) *)
}

val default_fault_policy : fault_policy
(** [max_retries = 8], [backoff_base = 2], [backoff_cap = 64]. *)

(** Routing policy (the paper's Section 6 lists "adaptive or stochastic
    routing strategies" as future work; both are provided): *)
type policy =
  | Fixed
      (** follow the architecture's precomputed route (deterministic
          routing: XY on the mesh, schedule-derived on customized
          topologies) — the default and the paper's setting *)
  | Adaptive
      (** minimal adaptive: at each router, among the neighbors that
          reduce the topology distance to the destination, pick the output
          channel with the least backlog (free beats busy, then shorter
          queue, then smaller node id) *)
  | Oblivious of Noc_util.Prng.t
      (** minimal stochastic: uniform choice among distance-reducing
          neighbors, deterministic for a given PRNG *)

type delivery = { packet : Packet.t; delivered_at : int }

(** Why a packet was dropped: *)
type drop_reason =
  | Link_failed  (** lost on a failing link with no retry budget left *)
  | Switch_failed  (** source, destination or holding switch is down *)
  | No_route  (** no surviving path and no repair pending *)
  | Retries_exhausted  (** the source NI gave up retransmitting *)

type drop = { packet : Packet.t; dropped_at : int; reason : drop_reason }

val pp_drop_reason : Format.formatter -> drop_reason -> unit

type t

val create :
  ?config:config ->
  ?policy:policy ->
  ?fault_policy:fault_policy ->
  Noc_core.Synthesis.t ->
  t
(** A fresh network over the given architecture at cycle 0.  Under
    [Adaptive] and [Oblivious] policies packets still require the flow to
    have a route in the architecture (reachability), but the path taken is
    chosen hop by hop. *)

val now : t -> int

val config : t -> config

val inject :
  ?tag:int -> ?payload:Bytes.t -> ?size_flits:int -> t -> src:int -> dst:int -> int
(** Queues a packet at its source's local port at the current cycle and
    returns its id.  The route comes from the architecture.
    [size_flits] defaults to 1.  Injecting at a currently-failed source or
    towards a failed destination records an immediate [Switch_failed] drop.
    @raise Invalid_argument if the architecture has no route
    [src -> dst]. *)

val step : t -> unit
(** Advance one cycle: due fault events strike, then packets become ready
    at routers, then channels arbitrate. *)

val pending : t -> int
(** Packets injected but neither delivered nor dropped. *)

val stranded : t -> Packet.t list
(** The still-pending packets themselves (in id order) — the ones a
    [`Limit] verdict is counting.  Empty after an [`Idle] return: every
    packet has been classified as delivered or dropped. *)

val run_until_idle : ?max_cycles:int -> t -> [ `Idle | `Limit of int ]
(** Steps until no packet is in flight (returning at the cycle the last
    delivery happened... precisely: the first cycle at which the network is
    empty) or until [max_cycles] total steps (default 1_000_000).
    [`Limit n] reports the [n = pending t] packets still in flight; see
    {!stranded} for their identities. *)

(** {2 Fault injection} *)

val fail_link : t -> int -> int -> unit
(** [fail_link t u v] takes the (undirected) physical link [u-v] down now.
    Queued packets at either endpoint replan; packets on the wire are
    retried from their source.  Idempotent while the link is down.
    @raise Invalid_argument if [u-v] is not a link of the architecture. *)

val fail_switch : t -> int -> unit
(** [fail_switch t s] takes router [s] (and all its links) down now.
    Packets buffered in [s] are retried from their sources; packets whose
    source or destination is [s] are dropped.
    @raise Invalid_argument if [s] is not a node of the architecture. *)

val repair_link : t -> int -> int -> unit
(** Brings a failed link back up now (no effect if it is up). *)

val repair_switch : t -> int -> unit
(** Brings a failed switch back up now (no effect if it is up). *)

val fail_link_at : t -> at:int -> ?repair_at:int -> int -> int -> unit
(** Schedules a link failure for cycle [at] (applied immediately when [at]
    is not in the future), with an optional repair at [repair_at]. *)

val fail_switch_at : t -> at:int -> ?repair_at:int -> int -> unit
(** Schedules a switch failure, as {!fail_link_at}. *)

val link_failed : t -> int -> int -> bool
val switch_failed : t -> int -> bool

val failed_links : t -> (int * int) list
(** Currently-failed links, normalized [(min, max)], sorted. *)

val failed_switches : t -> int list
(** Currently-failed switches, sorted. *)

val live_topology : t -> Noc_graph.Digraph.t
(** The architecture topology minus currently-failed links/switches — what
    replanning routes over. *)

val deliveries : t -> delivery list
(** All deliveries so far, in delivery order. *)

val drain_deliveries : t -> delivery list
(** Deliveries since the previous call (or since creation), in delivery
    order; clears the drain buffer but not the cumulative statistics. *)

val drops : t -> drop list
(** All packets dropped so far, in drop order. *)

val dropped_count : t -> int

val retries : t -> int
(** Total source-NI retransmissions performed so far. *)

val arch : t -> Noc_core.Synthesis.t
(** The architecture the network was built over. *)

val route_taken : t -> int -> int list option
(** The path a delivered packet actually traversed (equals its planned
    route under [Fixed] when no fault forced a replan); [None] for unknown
    or undelivered ids. *)

(** Activity counters for energy accounting: *)

val buffer_flit_cycles : t -> int
(** Total flit-cycles spent waiting in router queues (occupancy integral,
    the buffer-retention activity term). *)

val flit_hops : t -> int
(** Total flit-link traversals so far. *)

val link_flits : t -> int Noc_graph.Digraph.Edge_map.t
(** Flits carried per directed link. *)

val switch_flits : t -> int Noc_graph.Digraph.Vmap.t
(** Flits processed per router (arrivals and injections count; each packet
    visit contributes [size_flits]). *)

val contention_events : t -> int
(** Times a packet requested an output channel that was mid-transmission
    or already had waiting packets — i.e. guaranteed to stall at least one
    cycle.  The simulator's congestion signal. *)

val delivered_count : t -> int
(** Packets delivered so far. *)

val metrics : t -> (string * float) list
(** Every activity counter as a flat metric list: scalar counters
    ([cycles], [injected], [delivered], [dropped], [in_network],
    [flit_hops], [buffer_flit_cycles], [queued_flits],
    [contention_events], [retries], [faults_applied], [repairs_applied],
    [failed_links], [failed_switches]) followed by per-router
    [router.<v>.flits] and per-link [link.<u>-<v>.flits] entries, each
    group sorted by name.  Feeds [nocsynth simulate --metrics] and the
    observability layer. *)
