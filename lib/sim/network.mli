(** Cycle-accurate network simulation.

    This is the substitute for the paper's Virtex-2 FPGA prototype
    (Section 5.2): the same architectures (customized and mesh) are
    exercised with the same traffic and measured in cycles.

    Model: output-channel arbitration with store-and-forward packets.
    Every directed physical link is a channel that serializes one flit per
    cycle; a packet granted a channel at cycle T occupies it for
    [size_flits] cycles, and its tail lands in the next router at
    [T + link_delay + size_flits - 1], after which the router spends
    [router_delay] cycles before the packet contends for its next channel.
    Channels grant waiting packets in FIFO order (ties by packet id), and
    channels are scanned in a fixed lexicographic order, so simulations are
    fully deterministic.  Buffers are unbounded: protocol deadlock cannot
    occur in the simulator (deadlock risk of a routing function is analyzed
    statically by {!Noc_core.Deadlock}), which matches prototype NoCs with
    conservatively sized FIFOs. *)

type config = {
  router_delay : int;  (** cycles spent in each router, >= 1 *)
  link_delay : int;  (** wire latency of a link, >= 1 *)
  flit_bits : int;  (** physical link width *)
}

val default_config : config
(** [router_delay = 1], [link_delay = 1], [flit_bits = 8]. *)

(** Routing policy (the paper's Section 6 lists "adaptive or stochastic
    routing strategies" as future work; both are provided): *)
type policy =
  | Fixed
      (** follow the architecture's precomputed route (deterministic
          routing: XY on the mesh, schedule-derived on customized
          topologies) — the default and the paper's setting *)
  | Adaptive
      (** minimal adaptive: at each router, among the neighbors that
          reduce the topology distance to the destination, pick the output
          channel with the least backlog (free beats busy, then shorter
          queue, then smaller node id) *)
  | Oblivious of Noc_util.Prng.t
      (** minimal stochastic: uniform choice among distance-reducing
          neighbors, deterministic for a given PRNG *)

type delivery = { packet : Packet.t; delivered_at : int }

type t

val create : ?config:config -> ?policy:policy -> Noc_core.Synthesis.t -> t
(** A fresh network over the given architecture at cycle 0.  Under
    [Adaptive] and [Oblivious] policies packets still require the flow to
    have a route in the architecture (reachability), but the path taken is
    chosen hop by hop. *)

val now : t -> int

val config : t -> config

val inject :
  ?tag:int -> ?payload:Bytes.t -> ?size_flits:int -> t -> src:int -> dst:int -> int
(** Queues a packet at its source's local port at the current cycle and
    returns its id.  The route comes from the architecture.
    [size_flits] defaults to 1.
    @raise Invalid_argument if the architecture has no route
    [src -> dst]. *)

val step : t -> unit
(** Advance one cycle. *)

val pending : t -> int
(** Packets injected but not yet delivered. *)

val run_until_idle : ?max_cycles:int -> t -> [ `Idle | `Limit ]
(** Steps until no packet is in flight (returning at the cycle the last
    delivery happened... precisely: the first cycle at which the network is
    empty) or until [max_cycles] total steps (default 1_000_000). *)

val deliveries : t -> delivery list
(** All deliveries so far, in delivery order. *)

val drain_deliveries : t -> delivery list
(** Deliveries since the previous call (or since creation), in delivery
    order; clears the drain buffer but not the cumulative statistics. *)

val arch : t -> Noc_core.Synthesis.t
(** The architecture the network was built over. *)

val route_taken : t -> int -> int list option
(** The path a delivered packet actually traversed (equals its planned
    route under [Fixed]); [None] for unknown or undelivered ids. *)

(** Activity counters for energy accounting: *)

val buffer_flit_cycles : t -> int
(** Total flit-cycles spent waiting in router queues (occupancy integral,
    the buffer-retention activity term). *)

val flit_hops : t -> int
(** Total flit-link traversals so far. *)

val link_flits : t -> int Noc_graph.Digraph.Edge_map.t
(** Flits carried per directed link. *)

val switch_flits : t -> int Noc_graph.Digraph.Vmap.t
(** Flits processed per router (arrivals and injections count; each packet
    visit contributes [size_flits]). *)

val contention_events : t -> int
(** Times a packet requested an output channel that was mid-transmission
    or already had waiting packets — i.e. guaranteed to stall at least one
    cycle.  The simulator's congestion signal. *)

val delivered_count : t -> int
(** Packets delivered so far. *)

val metrics : t -> (string * float) list
(** Every activity counter as a flat metric list: scalar counters
    ([cycles], [injected], [delivered], [in_network], [flit_hops],
    [buffer_flit_cycles], [queued_flits], [contention_events]) followed by
    per-router [router.<v>.flits] and per-link [link.<u>-<v>.flits]
    entries, each group sorted by name.  Feeds [nocsynth simulate
    --metrics] and the observability layer. *)
