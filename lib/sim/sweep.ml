module D = Noc_graph.Digraph

type point = {
  rate : float;
  offered : float;
  delivered : int;
  avg_latency : float;
  throughput : float;
}

let latency_vs_load ?(engine = Engine.Coarse) ~rng ~arch ~acg ?(size_flits = 2)
    ?(cycles = 2000) ~rates () =
  let edges = D.edges (Noc_core.Acg.graph acg) in
  List.map
    (fun rate ->
      let rng = Noc_util.Prng.split rng in
      let net = Engine.create engine arch in
      for _ = 1 to cycles do
        List.iter
          (fun (src, dst) ->
            if Noc_util.Prng.bernoulli rng rate then
              ignore (Engine.inject ~size_flits net ~src ~dst))
          edges;
        Engine.step net
      done;
      (match Engine.run_until_idle ~max_cycles:200_000 net with
      | Engine.Idle | Engine.Deadlock | Engine.Limit _ -> ());
      let s = Engine.summary net in
      {
        rate;
        offered = rate *. float_of_int (List.length edges);
        delivered = s.Stats.packets;
        avg_latency = s.Stats.avg_latency;
        throughput = s.Stats.throughput;
      })
    rates

let saturation_rate points =
  (* the latency baseline must come from a point that actually delivered
     packets: a leading zero-delivery point reports avg_latency = 0., and a
     fabricated base of 1.0 yields false (or missed) saturation knees *)
  match List.find_opt (fun p -> p.delivered > 0) points with
  | None -> None
  | Some first ->
      let base = if first.avg_latency > 0. then first.avg_latency else 1.0 in
      List.find_map
        (fun p ->
          if p.delivered > 0 && p.avg_latency > 4.0 *. base then Some p.rate
          else None)
        points

let to_series points = List.map (fun p -> (p.offered, p.avg_latency)) points
