type kind = Coarse | Wormhole | Flit

let all_kinds = [ Coarse; Wormhole; Flit ]

let kind_name = function Coarse -> "coarse" | Wormhole -> "wormhole" | Flit -> "flit"

let kind_of_name = function
  | "coarse" -> Some Coarse
  | "wormhole" -> Some Wormhole
  | "flit" -> Some Flit
  | _ -> None

type t = C of Network.t | W of Wormhole.t | F of Flitsim.t

let create ?coarse_config ?wormhole_config ?flit_config kind arch =
  match kind with
  | Coarse -> C (Network.create ?config:coarse_config arch)
  | Wormhole -> W (Wormhole.create ?config:wormhole_config arch)
  | Flit -> F (Flitsim.create ?config:flit_config arch)

let kind = function C _ -> Coarse | W _ -> Wormhole | F _ -> Flit
let name t = kind_name (kind t)

let now = function C n -> Network.now n | W w -> Wormhole.now w | F f -> Flitsim.now f

let inject ?tag ?payload ?size_flits t ~src ~dst =
  match t with
  | C n -> Network.inject ?tag ?payload ?size_flits n ~src ~dst
  | W w -> Wormhole.inject ?tag ?payload ?size_flits w ~src ~dst
  | F f -> Flitsim.inject ?tag ?payload ?size_flits f ~src ~dst

let step = function C n -> Network.step n | W w -> Wormhole.step w | F f -> Flitsim.step f

let pending = function
  | C n -> Network.pending n
  | W w -> Wormhole.pending w
  | F f -> Flitsim.pending f

type verdict = Idle | Deadlock | Limit of int

let verdict_name = function Idle -> "idle" | Deadlock -> "deadlock" | Limit _ -> "limit"

let pp_verdict ppf = function
  | Idle -> Format.pp_print_string ppf "idle"
  | Deadlock -> Format.pp_print_string ppf "deadlock"
  | Limit n -> Format.fprintf ppf "limit (%d pending)" n

let run_until_idle ?max_cycles t =
  match t with
  | C n -> (
      match Network.run_until_idle ?max_cycles n with
      | `Idle -> Idle
      | `Limit p -> Limit p)
  | W w -> (
      match Wormhole.run_until_idle ?max_cycles w with
      | `Idle -> Idle
      | `Deadlock -> Deadlock
      | `Limit -> Limit (Wormhole.pending w))
  | F f -> (
      match Flitsim.run_until_idle ?max_cycles f with
      | `Idle -> Idle
      | `Deadlock -> Deadlock
      | `Limit p -> Limit p)

let deliveries = function
  | C n -> Network.deliveries n
  | W w ->
      List.map
        (fun (d : Wormhole.delivery) ->
          { Network.packet = d.Wormhole.packet; Network.delivered_at = d.Wormhole.delivered_at })
        (Wormhole.deliveries w)
  | F f ->
      List.map
        (fun (d : Flitsim.delivery) ->
          { Network.packet = d.Flitsim.packet; Network.delivered_at = d.Flitsim.delivered_at })
        (Flitsim.deliveries f)

let summary t = Stats.summarize (deliveries t)

let flit_hops = function
  | C n -> Network.flit_hops n
  | W w -> Wormhole.flit_hops w
  | F f -> Flitsim.flit_hops f

let metrics = function
  | C n -> Network.metrics n
  | W w -> Wormhole.metrics w
  | F f -> Flitsim.metrics f

let vc_truncated = function C _ | F _ -> false | W w -> Wormhole.vc_truncated w

let coarse = function C n -> Some n | _ -> None
let wormhole = function W w -> Some w | _ -> None
let flitsim = function F f -> Some f | _ -> None
