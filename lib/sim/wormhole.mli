(** Flit-level wormhole switching with virtual channels.

    The store-and-forward engine of {!Network} buffers whole packets per
    hop; real NoC prototypes of the paper's era (and its FPGA prototype's
    "packet switching") pipeline {e flits} through the network in wormhole
    fashion: the head flit reserves a virtual channel on each link it
    enters, body flits stream behind it, and the whole worm stalls in place
    — holding its channels — whenever the head blocks.  This engine models
    exactly that, with the textbook one-flit-per-VC buffer abstraction:

    - a packet of [n] flits occupies up to [n] consecutive channels of its
      (fixed) route;
    - each physical channel carries at most one flit per cycle (the VCs
      time-share the link);
    - a worm advances in lockstep — every flit moves one slot — when (a)
      its head can enter the next channel on a free virtual channel (or the
      sink consumes), and (b) it wins the link for every channel it
      occupies this cycle; otherwise it stalls in place;
    - virtual channels are allocated with the increasing-channel-order
      discipline of {!Noc_core.Deadlock.vc_of_hop}, capped at
      [num_vcs - 1];
    - a zero-hop flow ([src = dst]) never touches the fabric: its flits
      stream from the source NI straight into the sink, one per cycle, so
      an [n]-flit packet completes [n] cycles after injection.

    Because stalled worms hold their channels, routes with a cyclic channel
    dependency graph genuinely deadlock when [num_vcs] is too small —
    {!run_until_idle} returns [`Deadlock] — and become live again with the
    virtual channels {!Noc_core.Deadlock.analyze} prescribes.  The test
    suite demonstrates both outcomes on a wrap-around ring.

    The VC cap is a soundness cliff, not a free knob: when the discipline
    wants more channels than [num_vcs] provides, the capped assignment no
    longer establishes deadlock freedom, so the engine counts every such
    worm and reports it ({!vcs_required}, {!vc_truncated}) — a [`Deadlock]
    verdict with [vc_truncated = true] is attributable to under-provisioned
    VCs rather than to the architecture. *)

type config = {
  num_vcs : int;  (** virtual channels per physical link, >= 1 *)
  flit_bits : int;
}

val default_config : config
(** [num_vcs = 2], [flit_bits = 8]. *)

type delivery = { packet : Packet.t; delivered_at : int }

type t

val create : ?config:config -> Noc_core.Synthesis.t -> t

val now : t -> int

val inject :
  ?tag:int -> ?payload:Bytes.t -> ?size_flits:int -> t -> src:int -> dst:int -> int
(** Queues a worm at its source at the current cycle (amortized O(1));
    returns the packet id.
    @raise Invalid_argument if the architecture has no route. *)

val step : t -> unit

val pending : t -> int

val run_until_idle : ?max_cycles:int -> t -> [ `Idle | `Deadlock | `Limit ]
(** [`Deadlock] is returned when worms remain but a full arbitration
    round moved none of them — with fixed routes and in-place stalling
    that state is a fixpoint, so it is a genuine circular wait (check
    {!vc_truncated} to tell an under-provisioned-VC deadlock from an
    architectural one).  [`Limit] means the cycle budget ran out while
    progress was still being made. *)

val deliveries : t -> delivery list

val flit_hops : t -> int
(** Total flit-link traversals (for energy accounting, compatible with
    {!Stats}-style counting). *)

val link_flits : t -> int Noc_graph.Digraph.Edge_map.t

val vcs_required : t -> int
(** The largest VC count the increasing-channel discipline asked for over
    all worms injected so far (0 before the first multi-hop worm). *)

val vc_truncated : t -> bool
(** [true] when at least one injected worm needed more VCs than
    [config.num_vcs], i.e. its assignment was capped and the
    deadlock-freedom argument does not cover it. *)

val vc_truncated_count : t -> int
(** How many worms were capped. *)

val summary : t -> Stats.summary
(** Convenience: {!Stats.summarize} over a compatible delivery view. *)

val metrics : t -> (string * float) list
(** Flat snapshot: cycles, injected/delivered/pending worms, flit hops,
    VC requirement and truncation count. *)
