(** One cycle-accurate VOQ router: the building block of {!Flitsim}.

    The microarchitecture follows the classic input-queued router used by
    NoC prototypes of the paper's era (and by the reference RTL designs
    this engine is validated against): every input port — the local
    network interface plus one per incoming link — keeps a {e virtual
    output queue} (VOQ) per output port, so a flit blocked on one output
    never head-of-line-blocks traffic for another.  Each output port runs
    an independent round-robin arbiter over the VOQs that target it, and
    sends are gated on credit-based backpressure: the output port holds a
    {!Credit.t} mirroring the free space of the downstream VOQ its flits
    will land in (see {!Flitsim} for the wiring).

    This module owns the {e state} — queues, arbiter pointers, link
    occupancy — and the arbitration primitive; the clocking discipline
    (what moves in which phase of a cycle) lives in {!Flitsim}. *)

type flit = {
  packet : Packet.t;
  idx : int;  (** 0-based flit index; [idx = size_flits - 1] is the tail *)
  mutable hop : int;
      (** index into [packet.route] of the router currently holding (or
          about to receive) the flit *)
}

type in_key = Local | From of int
(** Input port: the router's own network interface, or the link from an
    upstream router. *)

type out_key = Eject | To of int
(** Output port: the router's ejection (sink) port, or the link to a
    downstream router. *)

type entry = { flit : flit; mutable ready_at : int }
(** A buffered flit; [ready_at] is the first cycle the switch may move it
    (models the router's internal pipeline latency). *)

type voq = {
  input : in_key;
  output : out_key;
  q : entry Queue.t;  (** bounded by the engine at [fifo_depth] *)
  credits : Credit.t;
      (** the credit counter the {e upstream} sender of [input] consults
          before putting a flit on the wire towards this queue; unused
          (always full) for [Local] inputs, which are bounded by a direct
          occupancy check instead *)
}

type port = {
  dest : out_key;
  voqs : voq array;
      (** every VOQ of this router targeting [dest], in the fixed
          arbitration order [Local], then [From u] by ascending [u] *)
  mutable rr : int;  (** round-robin pointer into [voqs] *)
  mutable busy_until : int;
      (** link serialization: the earliest cycle a new flit may start
          crossing the link (a flit occupies it for [phits_per_flit]
          cycles) *)
  mutable in_flight : (flit * int) option;
      (** the flit currently on the wire and its arrival cycle *)
}

type t = {
  node : int;
  ni : entry Queue.t;
      (** unbounded source queue: packets wait in the network interface,
          not in the fabric *)
  outputs : port array;  (** fixed order: [Eject] first, then [To v] by ascending [v] *)
}

val create : node:int -> preds:int list -> succs:int list -> depth:int -> t
(** A router with one input per element of [Local :: preds] and one output
    per element of [Eject :: succs]; every (input, output) pair gets a VOQ
    of capacity [depth] and a matching credit counter. *)

val port : t -> out_key -> port
(** @raise Not_found if the router has no such output. *)

val find_voq : t -> input:in_key -> output:out_key -> voq
(** @raise Not_found if the router has no such queue. *)

val arbitrate : port -> (voq -> bool) -> voq option
(** [arbitrate p eligible] scans [p.voqs] round-robin starting just after
    the last grant and returns the first queue [eligible] accepts,
    advancing the pointer past it (pointer moves only on a grant, so
    un-granted requests keep their priority). *)

val buffered : t -> int
(** Flits currently in this router's VOQs (NI queue excluded). *)

val ni_buffered : t -> int
