type flit = { packet : Packet.t; idx : int; mutable hop : int }
type in_key = Local | From of int
type out_key = Eject | To of int
type entry = { flit : flit; mutable ready_at : int }

type voq = { input : in_key; output : out_key; q : entry Queue.t; credits : Credit.t }

type port = {
  dest : out_key;
  voqs : voq array;
  mutable rr : int;
  mutable busy_until : int;
  mutable in_flight : (flit * int) option;
}

type t = { node : int; ni : entry Queue.t; outputs : port array }

let create ~node ~preds ~succs ~depth =
  let inputs = Local :: List.map (fun u -> From u) (List.sort_uniq compare preds) in
  let dests = Eject :: List.map (fun v -> To v) (List.sort_uniq compare succs) in
  let outputs =
    Array.of_list
      (List.map
         (fun dest ->
           let voqs =
             Array.of_list
               (List.map
                  (fun input ->
                    { input; output = dest; q = Queue.create (); credits = Credit.create ~capacity:depth })
                  inputs)
           in
           { dest; voqs; rr = 0; busy_until = 0; in_flight = None })
         dests)
  in
  { node; ni = Queue.create (); outputs }

let port t dest =
  let n = Array.length t.outputs in
  let rec go i = if i = n then raise Not_found
    else if t.outputs.(i).dest = dest then t.outputs.(i) else go (i + 1)
  in
  go 0

let find_voq t ~input ~output =
  let p = port t output in
  let n = Array.length p.voqs in
  let rec go i = if i = n then raise Not_found
    else if p.voqs.(i).input = input then p.voqs.(i) else go (i + 1)
  in
  go 0

let arbitrate p eligible =
  let n = Array.length p.voqs in
  if n = 0 then None
  else begin
    let rec go k =
      if k = n then None
      else
        let i = (p.rr + k) mod n in
        let voq = p.voqs.(i) in
        if eligible voq then begin
          p.rr <- (i + 1) mod n;
          Some voq
        end
        else go (k + 1)
    in
    go 0
  end

let buffered t =
  Array.fold_left
    (fun acc p -> Array.fold_left (fun acc voq -> acc + Queue.length voq.q) acc p.voqs)
    0 t.outputs

let ni_buffered t = Queue.length t.ni
