(** Measurement of simulation runs: the §5.2 metrics.

    Latency is measured per packet from injection to tail delivery;
    throughput over the makespan; energy from the activity counters using
    the same bit-energy technology model as the synthesis cost function,
    which is how the paper's XPower measurement is reproduced. *)

type summary = {
  packets : int;
  flits : int;
  avg_latency : float;  (** cycles, injection to delivery *)
  min_latency : int;
  max_latency : int;
  avg_hops : float;
  makespan : int;  (** cycles from first injection to last delivery *)
  throughput : float;  (** delivered flits per cycle over the makespan *)
}

val summarize : Network.delivery list -> summary
(** Summary of a delivery batch; all-zero summary for []. *)

val dynamic_energy_pj :
  tech:Noc_energy.Technology.t -> fp:Noc_energy.Floorplan.t -> Network.t -> float
(** Activity-based dynamic energy: every flit crossing a switch costs
    [flit_bits * es_bit]; every flit crossing a link costs [flit_bits *
    EL_bit(link length)] with the length from the floorplan. *)

val buffer_energy_pj : tech:Noc_energy.Technology.t -> Network.t -> float
(** Buffer-retention energy: flit-cycles of queue occupancy times the
    technology's per-flit-cycle buffer cost.  Congested architectures pay
    this; an architecture matched to its traffic barely queues. *)

val clock_energy_pj : tech:Noc_energy.Technology.t -> Network.t -> float
(** Clocked router overhead: elapsed cycles × Σ over routers of (ports²) ×
    the technology's per-port²-cycle cost.  Crossbars and arbiters grow
    quadratically with radix (Orion-style), so a mesh of identical 5-port
    routers burns more per cycle than degree-matched customized routers —
    and a faster architecture additionally finishes sooner. *)

val total_energy_pj :
  tech:Noc_energy.Technology.t -> fp:Noc_energy.Floorplan.t -> Network.t -> float
(** Dynamic + buffer + clocked energy: the quantity compared against the
    paper's per-block XPower energy measurements. *)

val avg_power_mw :
  tech:Noc_energy.Technology.t ->
  fp:Noc_energy.Floorplan.t ->
  ?static_mw:float ->
  Network.t ->
  float
(** Total energy divided by elapsed time at the technology's clock, plus
    an optional extra static floor.  0 before any cycle has elapsed. *)

val energy_metrics :
  tech:Noc_energy.Technology.t ->
  fp:Noc_energy.Floorplan.t ->
  Network.t ->
  (string * float) list
(** The four energy components plus [avg_power_mw], as named metrics (what
    [nocsynth simulate --metrics] merges with {!Network.metrics}). *)

val summary_metrics : summary -> (string * float) list
(** The summary record as named metrics, in declaration order. *)

val pp_summary : Format.formatter -> summary -> unit
