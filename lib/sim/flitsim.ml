module D = Noc_graph.Digraph
module Edge_map = D.Edge_map
module Vmap = D.Vmap
module Syn = Noc_core.Synthesis

type config = { fifo_depth : int; flit_bits : int; phit_bits : int; router_delay : int }

let default_config = { fifo_depth = 4; flit_bits = 32; phit_bits = 8; router_delay = 1 }

let phits_per_flit cfg = (cfg.flit_bits + cfg.phit_bits - 1) / cfg.phit_bits

type delivery = { packet : Packet.t; delivered_at : int }

type t = {
  arch : Syn.t;
  cfg : config;
  ppf : int;
  order : int array;  (* all router ids, ascending: the one scan order every phase uses *)
  routers : (int, Router.t) Hashtbl.t;
  credit_due : (int, Credit.t list ref) Hashtbl.t;
  mutable pending_credits : int;
  mutable cycle : int;
  mutable next_id : int;
  mutable injected_packets : int;
  mutable delivered_packets : int;
  mutable delivered_rev : delivery list;
  mutable injected_flits : int;
  mutable delivered_flits : int;
  mutable ni_occupancy : int;
  mutable voq_occupancy : int;
  mutable wire_occupancy : int;
  mutable flit_hops : int;
  mutable buffer_flit_cycles : int;
  mutable link_flits : int Edge_map.t;
  mutable switch_flits : int Vmap.t;
  mutable moved : bool;
  mutable last_ready : int;
      (* latest ready_at ever assigned: while cycle < last_ready a flit may
         still be maturing in a router pipeline, so a motionless cycle is
         not yet proof of a fixpoint *)
}

let create ?(config = default_config) arch =
  if config.fifo_depth < 1 then invalid_arg "Flitsim.create: fifo_depth must be >= 1";
  if config.flit_bits < 1 then invalid_arg "Flitsim.create: flit_bits must be >= 1";
  if config.phit_bits < 1 then invalid_arg "Flitsim.create: phit_bits must be >= 1";
  if config.router_delay < 1 then invalid_arg "Flitsim.create: router_delay must be >= 1";
  let topo = arch.Syn.topology in
  (* Routers for every topology vertex plus every route vertex: a zero-hop
     flow [v -> v] may name a core no link touches. *)
  let vset =
    Edge_map.fold
      (fun _ path acc -> List.fold_left (fun acc v -> D.Vset.add v acc) acc path)
      arch.Syn.routes (D.vertices topo)
  in
  let order = Array.of_list (D.Vset.elements vset) in
  let routers = Hashtbl.create (Array.length order) in
  Array.iter
    (fun v ->
      let preds = if D.mem_vertex topo v then D.Vset.elements (D.pred topo v) else [] in
      let succs = if D.mem_vertex topo v then D.Vset.elements (D.succ topo v) else [] in
      Hashtbl.replace routers v (Router.create ~node:v ~preds ~succs ~depth:config.fifo_depth))
    order;
  {
    arch;
    cfg = config;
    ppf = phits_per_flit config;
    order;
    routers;
    credit_due = Hashtbl.create 64;
    pending_credits = 0;
    cycle = 0;
    next_id = 0;
    injected_packets = 0;
    delivered_packets = 0;
    delivered_rev = [];
    injected_flits = 0;
    delivered_flits = 0;
    ni_occupancy = 0;
    voq_occupancy = 0;
    wire_occupancy = 0;
    flit_hops = 0;
    buffer_flit_cycles = 0;
    link_flits = Edge_map.empty;
    switch_flits = Vmap.empty;
    moved = false;
    last_ready = 0;
  }

let now t = t.cycle
let config t = t.cfg
let router t v = Hashtbl.find t.routers v

(* Output port a flit wants at the router [route.(at)]. *)
let output_at (f : Router.flit) ~at =
  let route = f.Router.packet.Packet.route in
  if at = Array.length route - 1 then Router.Eject else Router.To route.(at + 1)

(* The downstream VOQ a flit lands in when its current router puts it on
   the link — the queue whose credit the sender must hold. *)
let downstream_voq t (f : Router.flit) =
  let route = f.Router.packet.Packet.route in
  let here = route.(f.Router.hop) in
  let next = route.(f.Router.hop + 1) in
  Router.find_voq (router t next) ~input:(Router.From here) ~output:(output_at f ~at:(f.Router.hop + 1))

let schedule_credit t at credits =
  let l =
    match Hashtbl.find_opt t.credit_due at with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.credit_due at l;
        l
  in
  l := credits :: !l;
  t.pending_credits <- t.pending_credits + 1

let bump_link t key = t.link_flits <- Edge_map.update key (fun n -> Some (Option.value n ~default:0 + 1)) t.link_flits
let bump_switch t v = t.switch_flits <- Vmap.update v (fun n -> Some (Option.value n ~default:0 + 1)) t.switch_flits

let inject ?(tag = 0) ?(payload = Bytes.empty) ?(size_flits = 1) t ~src ~dst =
  if size_flits < 1 then invalid_arg "Flitsim.inject: size_flits must be >= 1";
  match Syn.route t.arch ~src ~dst with
  | None -> invalid_arg (Printf.sprintf "Flitsim.inject: no route %d -> %d" src dst)
  | Some path ->
      let route = Array.of_list path in
      let id = t.next_id in
      t.next_id <- id + 1;
      let packet =
        { Packet.id; src; dst; size_flits; tag; payload; route; injected_at = t.cycle }
      in
      let r = router t src in
      for idx = 0 to size_flits - 1 do
        Queue.add
          { Router.flit = { Router.packet; idx; hop = 0 }; ready_at = t.cycle }
          r.Router.ni
      done;
      t.injected_packets <- t.injected_packets + 1;
      t.injected_flits <- t.injected_flits + size_flits;
      t.ni_occupancy <- t.ni_occupancy + size_flits;
      id

let head_ready c (voq : Router.voq) =
  match Queue.peek_opt voq.Router.q with
  | Some e -> e.Router.ready_at <= c
  | None -> false

let step t =
  t.cycle <- t.cycle + 1;
  let c = t.cycle in
  t.buffer_flit_cycles <- t.buffer_flit_cycles + t.voq_occupancy;
  t.moved <- false;
  (* phase 1: credit returns land *)
  (match Hashtbl.find_opt t.credit_due c with
  | None -> ()
  | Some l ->
      List.iter
        (fun cr ->
          Credit.put cr;
          t.pending_credits <- t.pending_credits - 1)
        !l;
      Hashtbl.remove t.credit_due c);
  (* phase 2: link arrivals enter downstream VOQs *)
  Array.iter
    (fun u ->
      let r = router t u in
      Array.iter
        (fun (p : Router.port) ->
          match (p.Router.dest, p.Router.in_flight) with
          | Router.To v, Some (f, arrive) when arrive <= c ->
              p.Router.in_flight <- None;
              f.Router.hop <- f.Router.hop + 1;
              let voq =
                Router.find_voq (router t v) ~input:(Router.From u)
                  ~output:(output_at f ~at:f.Router.hop)
              in
              Queue.add { Router.flit = f; ready_at = c + t.cfg.router_delay } voq.Router.q;
              t.last_ready <- max t.last_ready (c + t.cfg.router_delay);
              t.wire_occupancy <- t.wire_occupancy - 1;
              t.voq_occupancy <- t.voq_occupancy + 1;
              t.flit_hops <- t.flit_hops + 1;
              bump_link t (u, v);
              t.moved <- true
          | _ -> ())
        r.Router.outputs)
    t.order;
  (* phase 3: ejection, one flit per sink per cycle *)
  Array.iter
    (fun v ->
      let r = router t v in
      match Router.port r Router.Eject with
      | exception Not_found -> ()
      | p -> (
          match Router.arbitrate p (head_ready c) with
          | None -> ()
          | Some voq ->
              let e = Queue.pop voq.Router.q in
              t.voq_occupancy <- t.voq_occupancy - 1;
              t.delivered_flits <- t.delivered_flits + 1;
              bump_switch t v;
              if voq.Router.input <> Router.Local then
                schedule_credit t (c + 1) voq.Router.credits;
              let f = e.Router.flit in
              if f.Router.idx = f.Router.packet.Packet.size_flits - 1 then begin
                t.delivered_rev <- { packet = f.Router.packet; delivered_at = c } :: t.delivered_rev;
                t.delivered_packets <- t.delivered_packets + 1
              end;
              t.moved <- true))
    t.order;
  (* phase 4: switch allocation + link sends, gated on downstream credits *)
  Array.iter
    (fun u ->
      let r = router t u in
      Array.iter
        (fun (p : Router.port) ->
          match p.Router.dest with
          | Router.Eject -> ()
          | Router.To _ ->
              if p.Router.in_flight = None && p.Router.busy_until <= c then (
                let eligible voq =
                  head_ready c voq
                  &&
                  let e = Queue.peek voq.Router.q in
                  Credit.available (downstream_voq t e.Router.flit).Router.credits > 0
                in
                match Router.arbitrate p eligible with
                | None -> ()
                | Some voq ->
                    let e = Queue.pop voq.Router.q in
                    let f = e.Router.flit in
                    ignore (Credit.take (downstream_voq t f).Router.credits);
                    if voq.Router.input <> Router.Local then
                      schedule_credit t (c + 1) voq.Router.credits;
                    p.Router.in_flight <- Some (f, c + t.ppf);
                    p.Router.busy_until <- c + t.ppf;
                    t.voq_occupancy <- t.voq_occupancy - 1;
                    t.wire_occupancy <- t.wire_occupancy + 1;
                    bump_switch t u;
                    t.moved <- true))
        r.Router.outputs)
    t.order;
  (* phase 5: NI injection, one flit per source per cycle *)
  Array.iter
    (fun v ->
      let r = router t v in
      match Queue.peek_opt r.Router.ni with
      | None -> ()
      | Some e ->
          let voq = Router.find_voq r ~input:Router.Local ~output:(output_at e.Router.flit ~at:0) in
          if Queue.length voq.Router.q < t.cfg.fifo_depth then begin
            ignore (Queue.pop r.Router.ni);
            e.Router.ready_at <- c + t.cfg.router_delay;
            t.last_ready <- max t.last_ready e.Router.ready_at;
            Queue.add e voq.Router.q;
            t.ni_occupancy <- t.ni_occupancy - 1;
            t.voq_occupancy <- t.voq_occupancy + 1;
            t.moved <- true
          end)
    t.order

let pending t = t.injected_packets - t.delivered_packets

let run_until_idle ?(max_cycles = 100_000) t =
  let limit = t.cycle + max_cycles in
  let rec go () =
    if pending t = 0 then `Idle
    else if t.cycle >= limit then `Limit (pending t)
    else begin
      step t;
      (* No movement with nothing on a wire and no credit in flight is a
         fixpoint: the same allocation decisions repeat forever. *)
      if
        (not t.moved) && t.wire_occupancy = 0 && t.pending_credits = 0
        && t.cycle >= t.last_ready && pending t > 0
      then `Deadlock
      else go ()
    end
  in
  go ()

let deliveries t = List.rev t.delivered_rev
let injected_flits t = t.injected_flits
let delivered_flits t = t.delivered_flits
let in_flight_flits t = t.ni_occupancy + t.voq_occupancy + t.wire_occupancy
let conservation_ok t = t.injected_flits = t.delivered_flits + in_flight_flits t
let flit_hops t = t.flit_hops
let buffer_flit_cycles t = t.buffer_flit_cycles
let link_flits t = t.link_flits
let switch_flits t = t.switch_flits

let summary t =
  Stats.summarize
    (List.map
       (fun d -> { Network.packet = d.packet; Network.delivered_at = d.delivered_at })
       (deliveries t))

let metrics t =
  [
    ("flit.cycles", float_of_int t.cycle);
    ("flit.injected_packets", float_of_int t.injected_packets);
    ("flit.delivered_packets", float_of_int t.delivered_packets);
    ("flit.pending_packets", float_of_int (pending t));
    ("flit.injected_flits", float_of_int t.injected_flits);
    ("flit.delivered_flits", float_of_int t.delivered_flits);
    ("flit.in_flight_flits", float_of_int (in_flight_flits t));
    ("flit.flit_hops", float_of_int t.flit_hops);
    ("flit.buffer_flit_cycles", float_of_int t.buffer_flit_cycles);
    ("flit.phits_per_flit", float_of_int t.ppf);
  ]
