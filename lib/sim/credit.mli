(** Credit counters for link-level backpressure.

    A credit counter lives with the {e upstream} side of a link and mirrors
    the free space of one downstream virtual-output queue: the sender
    {!take}s a credit when it puts a flit on the wire, and the receiver
    returns it (one router-to-router wire cycle later) when the flit
    leaves the queue.  As long as every send is gated on {!take}, the
    downstream FIFO can never overflow — the classic credit-based
    flow-control invariant

    [available + in-queue + on-wire + returns-in-flight = capacity]

    which {!val:balanced} lets callers assert. *)

type t

val create : capacity:int -> t
(** All credits available.  @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val available : t -> int

val take : t -> bool
(** Consume one credit; [false] (and no change) when none are available —
    the sender must stall. *)

val put : t -> unit
(** Return one credit.  @raise Invalid_argument if the counter would
    exceed its capacity — a protocol bug, not a runtime condition. *)

val balanced : t -> outstanding:int -> bool
(** [balanced c ~outstanding] checks the conservation invariant:
    [available c + outstanding = capacity c], where [outstanding] counts
    flits in the downstream queue, on the wire, and credit returns still
    in flight. *)
