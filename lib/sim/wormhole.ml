module D = Noc_graph.Digraph
module Edge_map = D.Edge_map

type config = {
  num_vcs : int;
  flit_bits : int;
}

let default_config = { num_vcs = 2; flit_bits = 8 }

type delivery = { packet : Packet.t; delivered_at : int }

(* A worm whose flits occupy the consecutive channel window [lo, head_ch]
   of its route (lo = 0 while flits are still entering at the source). *)
type worm = {
  packet : Packet.t;
  channels : D.Edge.t array;  (* c_0 .. c_{h-1} *)
  vcs : int array;  (* virtual channel used on each c_i *)
  mutable head_ch : int;  (* -1 before the head enters c_0 *)
  mutable src_remaining : int;
  mutable sink_received : int;
  mutable delivered : bool;
}

type t = {
  arch : Noc_core.Synthesis.t;
  cfg : config;
  mutable cycle : int;
  mutable next_id : int;
  (* (channel, vc) -> id of the worm holding it *)
  holders : (D.Edge.t * int, int) Hashtbl.t;
  (* Active worms, oldest first, in [worms.(0 .. count - 1)]: a growable
     array so injection is amortized O(1) (a sweep injects tens of
     thousands of worms; the previous [worms @ [w]] list was O(n) per
     inject, quadratic per sweep) and [step] never rebuilds a scratch
     array.  Slots past [count] may pin already-delivered worms until
     overwritten; the retention is bounded by the array capacity, itself
     at most twice the peak live population. *)
  mutable worms : worm array;
  mutable count : int;
  mutable delivered_rev : delivery list;
  mutable delivered_count : int;
  mutable flit_hops : int;
  mutable link_flits : int Edge_map.t;
  mutable vcs_required : int;
  mutable truncated_worms : int;
  mutable progressed : bool;
}

let create ?(config = default_config) arch =
  if config.num_vcs < 1 then invalid_arg "Wormhole.create: num_vcs must be >= 1";
  if config.flit_bits < 1 then invalid_arg "Wormhole.create: flit_bits must be >= 1";
  {
    arch;
    cfg = config;
    cycle = 0;
    next_id = 0;
    holders = Hashtbl.create 64;
    worms = [||];
    count = 0;
    delivered_rev = [];
    delivered_count = 0;
    flit_hops = 0;
    link_flits = Edge_map.empty;
    vcs_required = 0;
    truncated_worms = 0;
    progressed = false;
  }

let now t = t.cycle

(* channels of a vertex path *)
let channels_of path =
  let rec go = function
    | a :: (b :: _ as rest) -> (a, b) :: go rest
    | [ _ ] | [] -> []
  in
  Array.of_list (go path)

(* Increasing-channel-order virtual channel discipline
   (Noc_core.Deadlock.vc_of_hop's rule, computed locally so the engine
   does not depend on the route being an ACG flow).  Also returns how
   many VCs the discipline actually wanted: when that exceeds
   [cfg.num_vcs] the assignment is capped at [num_vcs - 1] and the
   deadlock-freedom argument no longer applies — callers must be able to
   see the truncation to attribute a [`Deadlock] verdict. *)
let vc_assignment cfg channels =
  let n = Array.length channels in
  let vcs = Array.make n 0 in
  let vc = ref 0 in
  for i = 1 to n - 1 do
    if D.Edge.compare channels.(i) channels.(i - 1) <= 0 then incr vc;
    vcs.(i) <- min !vc (cfg.num_vcs - 1)
  done;
  (vcs, if n = 0 then 0 else !vc + 1)

let push_worm t w =
  if t.count = Array.length t.worms then begin
    let grown = Array.make (max 4 (2 * t.count)) w in
    Array.blit t.worms 0 grown 0 t.count;
    t.worms <- grown
  end;
  t.worms.(t.count) <- w;
  t.count <- t.count + 1

let inject ?(tag = 0) ?(payload = Bytes.empty) ?(size_flits = 1) t ~src ~dst =
  if size_flits < 1 then invalid_arg "Wormhole.inject: size_flits must be >= 1";
  match Noc_core.Synthesis.route t.arch ~src ~dst with
  | None -> invalid_arg (Printf.sprintf "Wormhole.inject: no route %d->%d" src dst)
  | Some path ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let packet =
        {
          Packet.id;
          src;
          dst;
          size_flits;
          tag;
          payload;
          route = Array.of_list path;
          injected_at = t.cycle;
        }
      in
      let channels = channels_of path in
      let vcs, vcs_needed = vc_assignment t.cfg channels in
      t.vcs_required <- max t.vcs_required vcs_needed;
      if vcs_needed > t.cfg.num_vcs then t.truncated_worms <- t.truncated_worms + 1;
      let worm =
        {
          packet;
          channels;
          vcs;
          head_ch = -1;
          src_remaining = size_flits;
          sink_received = 0;
          delivered = false;
        }
      in
      push_worm t worm;
      id

let flits_in_net w =
  w.packet.Packet.size_flits - w.src_remaining - w.sink_received

let window w =
  (* channel indices currently holding flits of this worm *)
  let flits = flits_in_net w in
  if flits = 0 then None
  else begin
    let hi = w.head_ch in
    let lo = if w.src_remaining > 0 then 0 else hi - flits + 1 in
    Some (lo, hi)
  end

let deliver t w =
  w.delivered <- true;
  t.delivered_count <- t.delivered_count + 1;
  t.delivered_rev <- { packet = w.packet; delivered_at = t.cycle } :: t.delivered_rev

let step t =
  t.cycle <- t.cycle + 1;
  let used = Hashtbl.create 32 in
  let h_of w = Array.length w.channels in
  let try_advance w =
    if w.delivered then false
    else begin
      let h = h_of w in
      if h = 0 then begin
        (* src = dst: the worm never touches the fabric; its flits stream
           from the source NI straight into the sink, one per cycle, so a
           packet of n flits completes n cycles after injection.  (Before
           this branch existed the generic path below marked the packet
           delivered on the first cycle with sink_received = 1, silently
           losing the remaining flits from the accounting.) *)
        w.src_remaining <- w.src_remaining - 1;
        w.sink_received <- w.sink_received + 1;
        if w.sink_received = w.packet.Packet.size_flits then deliver t w;
        true
      end
      else begin
        let draining = w.head_ch = h - 1 in
        (* the new window after a hypothetical advance *)
        let new_hi = if draining then h - 1 else w.head_ch + 1 in
        let entering = w.src_remaining > 0 in
        let sink_inc = if draining then 1 else 0 in
        let new_flits =
          w.packet.Packet.size_flits
          - (w.src_remaining - if entering then 1 else 0)
          - (w.sink_received + sink_inc)
        in
        if new_flits = 0 && sink_inc = 1 then begin
          (* the last flit exits the network: no link is used, the worm
             completes *)
          (match window w with
          | Some (lo, hi) ->
              for i = lo to hi do
                Hashtbl.remove t.holders (w.channels.(i), w.vcs.(i))
              done
          | None -> ());
          w.sink_received <- w.sink_received + 1;
          deliver t w;
          true
        end
        else begin
          let new_lo =
            if w.src_remaining - (if entering then 1 else 0) > 0 then 0
            else new_hi - new_flits + 1
          in
          (* (a) a free virtual channel on the next link, when entering one *)
          let vc_ok =
            if draining then true
            else begin
              let key = (w.channels.(new_hi), w.vcs.(new_hi)) in
              match Hashtbl.find_opt t.holders key with
              | None -> true
              | Some id -> id = w.packet.Packet.id
            end
          in
          (* (b) every link of the new window is unused this cycle *)
          let links_ok =
            vc_ok
            &&
            let ok = ref true in
            for i = new_lo to new_hi do
              if Hashtbl.mem used w.channels.(i) then ok := false
            done;
            !ok
          in
          if not links_ok then false
          else begin
            (* commit: lock links, acquire/release VCs, shift flits *)
            for i = new_lo to new_hi do
              Hashtbl.replace used w.channels.(i) true;
              t.flit_hops <- t.flit_hops + 1;
              t.link_flits <-
                Edge_map.add
                  w.channels.(i)
                  (1 + Option.value ~default:0 (Edge_map.find_opt w.channels.(i) t.link_flits))
                  t.link_flits
            done;
            if not draining then
              Hashtbl.replace t.holders (w.channels.(new_hi), w.vcs.(new_hi))
                w.packet.Packet.id;
            (match window w with
            | Some (lo, _) ->
                for i = lo to new_lo - 1 do
                  Hashtbl.remove t.holders (w.channels.(i), w.vcs.(i))
                done
            | None -> ());
            w.head_ch <- new_hi;
            if entering then w.src_remaining <- w.src_remaining - 1;
            w.sink_received <- w.sink_received + sink_inc;
            true
          end
        end
      end
    end
  in
  (* round-robin arbitration: rotate the starting worm each cycle *)
  let n = t.count in
  t.progressed <- false;
  if n > 0 then begin
    let start = t.cycle mod n in
    for k = 0 to n - 1 do
      let w = t.worms.((start + k) mod n) in
      if try_advance w then t.progressed <- true
    done
  end;
  (* compact delivered worms away, preserving age order *)
  let j = ref 0 in
  for i = 0 to t.count - 1 do
    let w = t.worms.(i) in
    if not w.delivered then begin
      if !j <> i then t.worms.(!j) <- w;
      incr j
    end
  done;
  t.count <- !j

let pending t = t.count

let run_until_idle ?(max_cycles = 1_000_000) t =
  let start = t.cycle in
  let rec go () =
    if t.count = 0 then `Idle
    else if t.cycle - start >= max_cycles then `Limit
    else begin
      step t;
      (* the state is purely a function of worm positions and holds; if
         nothing moved and nothing was delivered, it never will *)
      if t.count > 0 && not t.progressed then `Deadlock else go ()
    end
  in
  go ()

let deliveries t = List.rev t.delivered_rev

let flit_hops t = t.flit_hops

let link_flits t = t.link_flits

let vcs_required t = t.vcs_required

let vc_truncated t = t.truncated_worms > 0

let vc_truncated_count t = t.truncated_worms

let summary t =
  Stats.summarize
    (List.map
       (fun { packet; delivered_at } -> { Network.packet; delivered_at })
       (deliveries t))

let metrics t =
  [
    ("wormhole.cycles", float_of_int t.cycle);
    ("wormhole.injected", float_of_int t.next_id);
    ("wormhole.delivered", float_of_int t.delivered_count);
    ("wormhole.pending", float_of_int t.count);
    ("wormhole.flit_hops", float_of_int t.flit_hops);
    ("wormhole.vcs_required", float_of_int t.vcs_required);
    ("wormhole.vc_truncated_worms", float_of_int t.truncated_worms);
  ]
