module D = Noc_graph.Digraph

type flow = { src : int; dst : int; size_flits : int; rate : float }

let flows_of_acg ?(size_flits = 1) ~rate_scale acg =
  let g = Noc_core.Acg.graph acg in
  let max_b =
    D.fold_edges (fun u v acc -> max acc (Noc_core.Acg.bandwidth acg u v)) g 0.0
  in
  D.fold_edges
    (fun u v acc ->
      let b = Noc_core.Acg.bandwidth acg u v in
      let rate = if max_b > 0. then rate_scale *. b /. max_b else rate_scale in
      { src = u; dst = v; size_flits; rate } :: acc)
    g []
  |> List.rev

let run ~rng ~net ~flows ~cycles () =
  for _ = 1 to cycles do
    List.iter
      (fun f ->
        if Noc_util.Prng.bernoulli rng f.rate then
          ignore (Network.inject ~size_flits:f.size_flits net ~src:f.src ~dst:f.dst))
      flows;
    Network.step net
  done;
  (match Network.run_until_idle ~max_cycles:100_000 net with
  | `Idle | `Limit _ -> ());
  Network.deliveries net

let offered_load flows = List.fold_left (fun acc f -> acc +. f.rate) 0.0 flows
